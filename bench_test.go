package cbi_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the transformation's design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Wall-clock ratios between the sub-benchmarks of BenchmarkTable2Overhead
// and BenchmarkFig4BCOverhead are the measured analogues of the paper's
// Table 2 and Figure 4; cmd/cbi-bench prints them as formatted tables.

import (
	"fmt"
	"sync"
	"testing"

	"cbi/internal/analysis/elim"
	"cbi/internal/analysis/logreg"
	"cbi/internal/cfg"
	"cbi/internal/core"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/report"
	"cbi/internal/sampler"
	"cbi/internal/stats"
	"cbi/internal/workloads"
)

// ----------------------------------------------------------------------------
// Table 1

func BenchmarkTable1StaticMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 13 {
			b.Fatal("rows")
		}
	}
}

// ----------------------------------------------------------------------------
// Table 2: wall-clock per benchmark per configuration. The ratio of the
// "always"/"dXXX" sub-benchmarks to "baseline" is the Table 2 cell.

var table2Programs sync.Map // name/config -> *workloads.Built

func table2Prog(b *testing.B, name, config string) *workloads.Built {
	key := name + "/" + config
	if v, ok := table2Programs.Load(key); ok {
		return v.(*workloads.Built)
	}
	var built *workloads.Built
	var err error
	switch config {
	case "baseline":
		built, err = workloads.BuildBenchmark(name, instrument.SchemeSet{}, false)
	case "always":
		built, err = workloads.BuildBenchmark(name, instrument.SchemeSet{Bounds: true}, false)
	default: // sampled
		built, err = workloads.BuildBenchmark(name, instrument.SchemeSet{Bounds: true}, true)
	}
	if err != nil {
		b.Fatal(err)
	}
	table2Programs.Store(key, built)
	return built
}

func BenchmarkTable2Overhead(b *testing.B) {
	densities := map[string]float64{"baseline": 0, "always": 0, "d100": 1.0 / 100, "d1000": 1.0 / 1000, "d1e6": 1.0 / 1e6}
	order := []string{"baseline", "always", "d100", "d1000", "d1e6"}
	for _, w := range workloads.All() {
		for _, config := range order {
			b.Run(fmt.Sprintf("%s/%s", w.Name, config), func(b *testing.B) {
				built := table2Prog(b, w.Name, config)
				d := densities[config]
				var steps uint64
				for i := 0; i < b.N; i++ {
					res := interp.Run(built.Program, interp.Config{
						Seed: 1, Density: d, CountdownSeed: int64(i),
					})
					if res.Outcome != interp.OutcomeOK {
						b.Fatalf("crash: %v", res.Trap)
					}
					steps = res.Steps
				}
				b.ReportMetric(float64(steps), "vmsteps/op")
			})
		}
	}
}

// ----------------------------------------------------------------------------
// §3.1.2 selective sampling

func BenchmarkSelectiveSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Selective("compress", 1.0/1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.FuncsMeasured == 0 {
			b.Fatal("no functions")
		}
	}
}

// ----------------------------------------------------------------------------
// §3.1.3 confidence arithmetic

func BenchmarkConfidenceTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.ConfidenceTable()
		if rows[0].Runs != 230258 {
			b.Fatal("paper value")
		}
	}
}

// ----------------------------------------------------------------------------
// §3.2 / Figure 2: ccrypt

var (
	ccryptOnce  sync.Once
	ccryptStudy *core.CcryptStudy
	ccryptErr   error
)

func ccryptFleet(b *testing.B) *core.CcryptStudy {
	ccryptOnce.Do(func() {
		ccryptStudy, ccryptErr = core.RunCcryptStudy(2000, 1.0/100, 42)
	})
	if ccryptErr != nil {
		b.Fatal(ccryptErr)
	}
	return ccryptStudy
}

func BenchmarkCcryptElimination(b *testing.B) {
	study := ccryptFleet(b)
	spans := make([]elim.SiteSpan, 0, len(study.Program.Sites))
	for _, s := range study.Program.Sites {
		spans = append(spans, elim.SiteSpan{Base: s.CounterBase, Len: s.NumCounters})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := report.NewAggregate("ccrypt", study.Program.NumCounters)
		if err := agg.FromDB(study.DB); err != nil {
			b.Fatal(err)
		}
		counts := elim.Summarize(agg, spans)
		if counts.UFandSC == 0 {
			b.Fatal("no survivors")
		}
	}
}

func BenchmarkFig2ProgressiveElimination(b *testing.B) {
	study := ccryptFleet(b)
	sizes := []int{50, 200, 800, len(study.DB.Successes())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := study.Fig2Points(sizes, 20, int64(i))
		if len(points) != len(sizes) {
			b.Fatal("points")
		}
	}
}

// ----------------------------------------------------------------------------
// §3.3: bc regression training

var (
	bcOnce sync.Once
	bcDB   *report.DB
	bcKeep []bool
	bcErr  error
)

func bcFleet(b *testing.B) (*report.DB, []bool) {
	bcOnce.Do(func() {
		built, err := workloads.BuildBC(instrument.SchemeSet{ScalarPairs: true}, false)
		if err != nil {
			bcErr = err
			return
		}
		bcDB, bcErr = workloads.BCFleet(built.Program, workloads.FleetConfig{Runs: 500, SeedBase: 11})
		if bcErr != nil {
			return
		}
		agg := report.NewAggregate("bc", built.Program.NumCounters)
		if err := agg.FromDB(bcDB); err != nil {
			bcErr = err
			return
		}
		bcKeep = elim.UniversalFalsehood(agg)
	})
	if bcErr != nil {
		b.Fatal(bcErr)
	}
	return bcDB, bcKeep
}

func BenchmarkBCRegressionTraining(b *testing.B) {
	db, keep := bcFleet(b)
	ds := logreg.BuildDataset(db.Reports, keep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := logreg.Train(ds, logreg.TrainConfig{Lambda: 0.1, StepSize: 1e-2, Epochs: 10, Seed: int64(i)})
		if len(m.TopFeatures(5)) == 0 {
			b.Fatal("no features")
		}
	}
}

// ----------------------------------------------------------------------------
// Figure 4: bc overhead

func BenchmarkFig4BCOverhead(b *testing.B) {
	// seed 1 is a non-crashing bc input (verified in setup).
	var seed int64
	base, err := workloads.BuildBC(instrument.SchemeSet{}, false)
	if err != nil {
		b.Fatal(err)
	}
	for seed = 1; seed < 50; seed++ {
		if interp.Run(base.Program, interp.Config{Seed: seed}).Outcome == interp.OutcomeOK {
			break
		}
	}
	uncond, err := workloads.BuildBC(instrument.SchemeSet{ScalarPairs: true}, false)
	if err != nil {
		b.Fatal(err)
	}
	sampled, err := workloads.BuildBC(instrument.SchemeSet{ScalarPairs: true}, true)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		built   *workloads.Built
		density float64
	}{
		{"baseline", base, 0},
		{"always", uncond, 0},
		{"d100", sampled, 1.0 / 100},
		{"d1000", sampled, 1.0 / 1000},
		{"d1e6", sampled, 1.0 / 1e6},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := interp.Run(c.built.Program, interp.Config{
					Seed: seed, Density: c.density, CountdownSeed: int64(i),
				})
				if res.Outcome != interp.OutcomeOK {
					b.Fatalf("crash: %v", res.Trap)
				}
			}
		})
	}
}

// ----------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

func BenchmarkAblationTransformVariants(b *testing.B) {
	inst, err := workloads.BuildBenchmark("compress", instrument.SchemeSet{Bounds: true}, false)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opt  instrument.Options
	}{
		{"default", instrument.DefaultOptions()},
		{"nocoalesce", instrument.Options{LocalizeCountdown: true}},
		{"global", instrument.Options{CoalesceDecrements: true}},
		{"separate", instrument.Options{CoalesceDecrements: true, LocalizeCountdown: true, SeparateCompilation: true}},
		{"persite", instrument.Options{LocalizeCountdown: true, CheckPerSite: true}},
	}
	for _, v := range variants {
		sp := instrument.Sample(inst.Program, v.opt)
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := interp.Run(sp, interp.Config{Seed: 1, Density: 1.0 / 100, CountdownSeed: int64(i)})
				if res.Outcome != interp.OutcomeOK {
					b.Fatal(res.Trap)
				}
			}
		})
	}
}

func BenchmarkSimplifyPass(b *testing.B) {
	mk := func(simplify bool) *workloads.Built {
		built, err := workloads.BuildBenchmark("compress", instrument.SchemeSet{Bounds: true}, true)
		if err != nil {
			b.Fatal(err)
		}
		if simplify {
			cfg.SimplifyProgram(built.Program)
		}
		return built
	}
	for _, tc := range []struct {
		name     string
		simplify bool
	}{{"plain", false}, {"simplified", true}} {
		built := mk(tc.simplify)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := interp.Run(built.Program, interp.Config{Seed: 1, Density: 1.0 / 100, CountdownSeed: int64(i)})
				if res.Outcome != interp.OutcomeOK {
					b.Fatal(res.Trap)
				}
			}
		})
	}
}

func BenchmarkAblationGeometricVsPeriodic(b *testing.B) {
	sources := map[string]func() sampler.Source{
		"geometric": func() sampler.Source { return sampler.NewGeometric(1, 1.0/100) },
		"periodic":  func() sampler.Source { return &sampler.Periodic{Period: 100} },
		"bernoulli": func() sampler.Source { return sampler.NewBernoulli(1, 1.0/100) },
	}
	for name, mk := range sources {
		b.Run(name, func(b *testing.B) {
			src := mk()
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += src.Next()
			}
			_ = sink
		})
	}
}

// ----------------------------------------------------------------------------
// Infrastructure micro-benches

func BenchmarkReportCodec(b *testing.B) {
	rep := &report.Report{Program: "bc", Counters: make([]uint64, 10000)}
	for i := 0; i < len(rep.Counters); i += 97 {
		rep.Counters[i] = uint64(i)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(rep.Encode()) == 0 {
				b.Fatal("empty")
			}
		}
	})
	enc := rep.Encode()
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := report.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGeometricCountdown(b *testing.B) {
	g := sampler.NewGeometric(1, 1.0/1000)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += g.Next()
	}
	_ = sink
}

func BenchmarkStatsRunsNeeded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if stats.RunsNeeded(0.9, 1.0/100, 1.0/1000) != 230258 {
			b.Fatal("value")
		}
	}
}
