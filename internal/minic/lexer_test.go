package minic

import (
	"strings"
	"testing"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("t.mc", `int x = 42; // comment
/* block
   comment */
struct s { int y; };`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{
		TokKwInt, TokIdent, TokPunct, TokInt, TokPunct,
		TokKwStruct, TokIdent, TokPunct, TokKwInt, TokIdent, TokPunct, TokPunct, TokPunct,
		TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got kind %d, want %d (%s)", i, kinds[i], want[i], toks[i])
		}
	}
}

func TestLexIntLiterals(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"42":     42,
		"0x10":   16,
		"0xff":   255,
		"123456": 123456,
	}
	for src, want := range cases {
		toks, err := LexAll("t.mc", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != TokInt || toks[0].Int != want {
			t.Errorf("%q: got %v, want %d", src, toks[0], want)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := LexAll("t.mc", `"a\nb\t\"q\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Str != "a\nb\t\"q\\" {
		t.Errorf("got %q", toks[0].Str)
	}
}

func TestLexCharLiterals(t *testing.T) {
	cases := map[string]int64{
		`'a'`:  'a',
		`'\n'`: '\n',
		`'\0'`: 0,
		`'\''`: '\'',
	}
	for src, want := range cases {
		toks, err := LexAll("t.mc", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != TokChar || toks[0].Int != want {
			t.Errorf("%q: got %v, want %d", src, toks[0], want)
		}
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks, err := LexAll("t.mc", "== != <= >= && || -> += -= ++ --")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"==", "!=", "<=", ">=", "&&", "||", "->", "+=", "-=", "++", "--"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d: got %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("f.mc", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
	if got := toks[1].Pos.String(); got != "f.mc:2:3" {
		t.Errorf("Pos.String() = %q", got)
	}
	if got := toks[1].Pos.LineString(); got != "f.mc:2" {
		t.Errorf("Pos.LineString() = %q", got)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"\"unterminated",
		"'a",
		"/* open",
		"@",
		"\"bad\\qescape\"",
	}
	for _, src := range cases {
		if _, err := LexAll("t.mc", src); err == nil {
			t.Errorf("%q: want error, got none", src)
		}
	}
}

func TestLexErrorMentionsPosition(t *testing.T) {
	_, err := LexAll("t.mc", "int x = @;")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "t.mc:1:9") {
		t.Errorf("error %q should contain position t.mc:1:9", err)
	}
}
