package minic

import (
	"fmt"
	"strings"
)

// Print renders a parsed file back to MiniC source. The output reparses to
// an equivalent AST (see the round-trip property test), which makes the
// printer usable as the "source-to-source" output channel of the
// instrumentation pipeline, mirroring the paper's source-to-source C
// transformation.
func Print(f *File) string {
	var pr printer
	for _, s := range f.Structs {
		pr.structDecl(s)
	}
	if len(f.Structs) > 0 && (len(f.Globals) > 0 || len(f.Funcs) > 0) {
		pr.nl()
	}
	for _, g := range f.Globals {
		pr.varDecl(g)
		pr.buf.WriteString(";\n")
	}
	if len(f.Globals) > 0 && len(f.Funcs) > 0 {
		pr.nl()
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.funcDecl(fn)
	}
	return pr.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) nl() { p.buf.WriteByte('\n') }

func (p *printer) line(format string, args ...any) {
	p.buf.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.buf, format, args...)
	p.nl()
}

func (p *printer) startLine() {
	p.buf.WriteString(strings.Repeat("\t", p.indent))
}

func (p *printer) structDecl(s *StructDecl) {
	p.line("struct %s {", s.Name)
	p.indent++
	for _, f := range s.Fields {
		p.line("%s %s;", f.Type, f.Name)
	}
	p.indent--
	p.line("};")
}

func (p *printer) varDecl(v *VarDecl) {
	p.startLine()
	fmt.Fprintf(&p.buf, "%s %s", v.Type, v.Name)
	if v.Init != nil {
		p.buf.WriteString(" = ")
		writeExpr(&p.buf, v.Init)
	}
}

func (p *printer) funcDecl(fn *FuncDecl) {
	p.startLine()
	fmt.Fprintf(&p.buf, "%s %s(", fn.Ret, fn.Name)
	for i, pa := range fn.Params {
		if i > 0 {
			p.buf.WriteString(", ")
		}
		fmt.Fprintf(&p.buf, "%s %s", pa.Type, pa.Name)
	}
	p.buf.WriteString(") ")
	p.block(fn.Body)
	p.nl()
}

func (p *printer) block(b *Block) {
	p.buf.WriteString("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.startLine()
	p.buf.WriteString("}")
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		p.startLine()
		p.block(x)
		p.nl()
	case *VarDecl:
		p.varDecl(x)
		p.buf.WriteString(";\n")
	case *AssignStmt:
		p.startLine()
		writeExpr(&p.buf, x.LHS)
		fmt.Fprintf(&p.buf, " %s ", x.Op)
		writeExpr(&p.buf, x.RHS)
		p.buf.WriteString(";\n")
	case *ExprStmt:
		p.startLine()
		writeExpr(&p.buf, x.X)
		p.buf.WriteString(";\n")
	case *IfStmt:
		p.startLine()
		p.buf.WriteString("if (")
		writeExpr(&p.buf, x.Cond)
		p.buf.WriteString(") ")
		p.nestedStmt(x.Then)
		if x.Else != nil {
			p.buf.WriteString(" else ")
			p.nestedStmt(x.Else)
		}
		p.nl()
	case *WhileStmt:
		p.startLine()
		p.buf.WriteString("while (")
		writeExpr(&p.buf, x.Cond)
		p.buf.WriteString(") ")
		p.nestedStmt(x.Body)
		p.nl()
	case *ForStmt:
		p.startLine()
		p.buf.WriteString("for (")
		if x.Init != nil {
			p.inlineSimple(x.Init)
		}
		p.buf.WriteString("; ")
		if x.Cond != nil {
			writeExpr(&p.buf, x.Cond)
		}
		p.buf.WriteString("; ")
		if x.Post != nil {
			p.inlineSimple(x.Post)
		}
		p.buf.WriteString(") ")
		p.nestedStmt(x.Body)
		p.nl()
	case *ReturnStmt:
		p.startLine()
		p.buf.WriteString("return")
		if x.X != nil {
			p.buf.WriteString(" ")
			writeExpr(&p.buf, x.X)
		}
		p.buf.WriteString(";\n")
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	default:
		p.line("/* unknown statement */")
	}
}

// nestedStmt prints the body of an if/while/for without a leading indent
// (the header already started the line). Blocks print inline; other
// statements are wrapped in braces for unambiguous output.
func (p *printer) nestedStmt(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.buf.WriteString("{\n")
	p.indent++
	p.stmt(s)
	p.indent--
	p.startLine()
	p.buf.WriteString("}")
}

// inlineSimple prints a for-clause statement without indent or semicolon.
func (p *printer) inlineSimple(s Stmt) {
	switch x := s.(type) {
	case *VarDecl:
		fmt.Fprintf(&p.buf, "%s %s", x.Type, x.Name)
		if x.Init != nil {
			p.buf.WriteString(" = ")
			writeExpr(&p.buf, x.Init)
		}
	case *AssignStmt:
		writeExpr(&p.buf, x.LHS)
		fmt.Fprintf(&p.buf, " %s ", x.Op)
		writeExpr(&p.buf, x.RHS)
	case *ExprStmt:
		writeExpr(&p.buf, x.X)
	}
}
