package minic

import (
	"fmt"
)

// BuiltinSig describes a host builtin callable from MiniC. The interpreter
// registers its intrinsics (print, alloc, the virtual-environment calls of
// the workload harnesses, ...) so that the checker can validate call sites.
type BuiltinSig struct {
	MinArgs int
	MaxArgs int // -1 for variadic
	Ret     *Type
}

// SemaError describes a semantic error.
type SemaError struct {
	Pos Pos
	Msg string
}

func (e *SemaError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// TypeEnv supplies declaration context for expression type computation.
type TypeEnv interface {
	// VarType returns the declared type of a visible variable, or nil.
	VarType(name string) *Type
	// StructDecl returns the struct declaration, or nil.
	StructDecl(name string) *StructDecl
	// CallRet returns the return type of a function or builtin, or nil if
	// the callee is unknown.
	CallRet(name string) *Type
}

// TypeOfExpr computes the static type of an expression under env.
// It is deliberately forgiving: nil is returned (without error) only for
// genuinely untypeable situations that Check has already rejected.
func TypeOfExpr(e Expr, env TypeEnv) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return IntType, nil
	case *StrLit:
		return StrType, nil
	case *NullLit:
		// null is a wildcard pointer; give it int* as a representative.
		return PtrTo(IntType), nil
	case *Ident:
		t := env.VarType(x.Name)
		if t == nil {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("undefined variable %q", x.Name)}
		}
		return t, nil
	case *UnaryExpr:
		xt, err := TypeOfExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-", "!":
			return IntType, nil
		case "*":
			if xt.Kind != TypePtr {
				return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("cannot dereference non-pointer type %s", xt)}
			}
			return xt.Elem, nil
		}
		return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("unknown unary operator %q", x.Op)}
	case *BinaryExpr:
		if _, err := TypeOfExpr(x.X, env); err != nil {
			return nil, err
		}
		if _, err := TypeOfExpr(x.Y, env); err != nil {
			return nil, err
		}
		// All binary operators yield int (comparisons, arithmetic, logic).
		// Pointer arithmetic (p + n) yields the pointer type.
		if x.Op == "+" || x.Op == "-" {
			xt, _ := TypeOfExpr(x.X, env)
			if xt != nil && xt.Kind == TypePtr {
				return xt, nil
			}
		}
		return IntType, nil
	case *CallExpr:
		ret := env.CallRet(x.Callee)
		if ret == nil {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("call to undefined function %q", x.Callee)}
		}
		return ret, nil
	case *IndexExpr:
		xt, err := TypeOfExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		if xt.Kind != TypePtr {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("cannot index non-pointer type %s", xt)}
		}
		return xt.Elem, nil
	case *FieldExpr:
		xt, err := TypeOfExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		st := xt
		if x.Arrow {
			if xt.Kind != TypePtr {
				return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("-> on non-pointer type %s", xt)}
			}
			st = xt.Elem
		}
		if st.Kind != TypeStruct {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("field access on non-struct type %s", st)}
		}
		sd := env.StructDecl(st.StructName)
		if sd == nil {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("unknown struct %q", st.StructName)}
		}
		i := sd.FieldIndex(x.Name)
		if i < 0 {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("struct %s has no field %q", sd.Name, x.Name)}
		}
		return sd.Fields[i].Type, nil
	case *NewExpr:
		if env.StructDecl(x.StructName) == nil {
			return nil, &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("unknown struct %q", x.StructName)}
		}
		return PtrTo(StructType(x.StructName)), nil
	}
	return nil, &SemaError{Msg: "unknown expression"}
}

// checker performs whole-file semantic validation.
type checker struct {
	file     *File
	builtins map[string]BuiltinSig
	scopes   []map[string]*Type
	curFn    *FuncDecl
	loop     int
}

var _ TypeEnv = (*checker)(nil)

func (c *checker) VarType(name string) *Type {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t
		}
	}
	return nil
}

func (c *checker) StructDecl(name string) *StructDecl { return c.file.Struct(name) }

func (c *checker) CallRet(name string) *Type {
	if fn := c.file.Func(name); fn != nil {
		return fn.Ret
	}
	if sig, ok := c.builtins[name]; ok {
		return sig.Ret
	}
	return nil
}

// Check validates a parsed file: unique declarations, resolvable names and
// struct fields, call arity, break/continue placement, return arity, and
// well-typed memory operations. builtins describes host intrinsics; pass
// DefaultBuiltins() for the standard interpreter set.
func Check(f *File, builtins map[string]BuiltinSig) error {
	c := &checker{file: f, builtins: builtins}

	seenStructs := map[string]bool{}
	for _, s := range f.Structs {
		if seenStructs[s.Name] {
			return &SemaError{Pos: s.Pos, Msg: fmt.Sprintf("duplicate struct %q", s.Name)}
		}
		seenStructs[s.Name] = true
		seenFields := map[string]bool{}
		for _, fd := range s.Fields {
			if seenFields[fd.Name] {
				return &SemaError{Pos: fd.Pos, Msg: fmt.Sprintf("duplicate field %q in struct %s", fd.Name, s.Name)}
			}
			seenFields[fd.Name] = true
			if err := c.checkTypeRef(fd.Type, fd.Pos); err != nil {
				return err
			}
		}
	}

	global := map[string]*Type{}
	c.scopes = []map[string]*Type{global}
	seenFuncs := map[string]bool{}
	for _, fn := range f.Funcs {
		if seenFuncs[fn.Name] {
			return &SemaError{Pos: fn.Pos, Msg: fmt.Sprintf("duplicate function %q", fn.Name)}
		}
		if _, ok := builtins[fn.Name]; ok {
			return &SemaError{Pos: fn.Pos, Msg: fmt.Sprintf("function %q shadows a builtin", fn.Name)}
		}
		seenFuncs[fn.Name] = true
	}
	for _, g := range f.Globals {
		if _, ok := global[g.Name]; ok {
			return &SemaError{Pos: g.Pos, Msg: fmt.Sprintf("duplicate global %q", g.Name)}
		}
		if err := c.checkTypeRef(g.Type, g.Pos); err != nil {
			return err
		}
		if g.Init != nil {
			if _, err := TypeOfExpr(g.Init, c); err != nil {
				return err
			}
		}
		global[g.Name] = g.Type
	}

	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkTypeRef(t *Type, pos Pos) error {
	for t.Kind == TypePtr {
		t = t.Elem
	}
	if t.Kind == TypeStruct && c.file.Struct(t.StructName) == nil {
		return &SemaError{Pos: pos, Msg: fmt.Sprintf("unknown struct %q", t.StructName)}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t *Type, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, ok := top[name]; ok {
		return &SemaError{Pos: pos, Msg: fmt.Sprintf("duplicate declaration of %q", name)}
	}
	top[name] = t
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.curFn = fn
	c.loop = 0
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		if err := c.checkTypeRef(p.Type, p.Pos); err != nil {
			return err
		}
		if err := c.declare(p.Name, p.Type, p.Pos); err != nil {
			return err
		}
	}
	return c.checkStmt(fn.Body)
}

func (c *checker) checkStmt(s Stmt) error {
	switch x := s.(type) {
	case *Block:
		c.push()
		defer c.pop()
		for _, st := range x.Stmts {
			if err := c.checkStmt(st); err != nil {
				return err
			}
		}
		return nil
	case *VarDecl:
		if err := c.checkTypeRef(x.Type, x.Pos); err != nil {
			return err
		}
		if x.Init != nil {
			if err := c.checkExpr(x.Init); err != nil {
				return err
			}
		}
		return c.declare(x.Name, x.Type, x.Pos)
	case *AssignStmt:
		if !IsLValue(x.LHS) {
			return &SemaError{Pos: x.Pos, Msg: "assignment target is not an lvalue"}
		}
		if err := c.checkExpr(x.LHS); err != nil {
			return err
		}
		return c.checkExpr(x.RHS)
	case *ExprStmt:
		return c.checkExpr(x.X)
	case *IfStmt:
		if err := c.checkExpr(x.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(x.Then); err != nil {
			return err
		}
		if x.Else != nil {
			return c.checkStmt(x.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(x.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(x.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if x.Init != nil {
			if err := c.checkStmt(x.Init); err != nil {
				return err
			}
		}
		if x.Cond != nil {
			if err := c.checkExpr(x.Cond); err != nil {
				return err
			}
		}
		if x.Post != nil {
			if err := c.checkStmt(x.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(x.Body)
	case *ReturnStmt:
		if x.X != nil {
			if c.curFn.Ret.Kind == TypeVoid {
				return &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("void function %q returns a value", c.curFn.Name)}
			}
			return c.checkExpr(x.X)
		}
		return nil
	case *BreakStmt:
		if c.loop == 0 {
			return &SemaError{Pos: x.Pos, Msg: "break outside loop"}
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return &SemaError{Pos: x.Pos, Msg: "continue outside loop"}
		}
		return nil
	}
	return &SemaError{Msg: "unknown statement"}
}

func (c *checker) checkExpr(e Expr) error {
	// TypeOfExpr performs full recursive validation.
	if _, err := TypeOfExpr(e, c); err != nil {
		return err
	}
	// Additionally validate call arity, which TypeOfExpr does not.
	return c.checkCallArity(e)
}

func (c *checker) checkCallArity(e Expr) error {
	switch x := e.(type) {
	case *CallExpr:
		for _, a := range x.Args {
			if err := c.checkCallArity(a); err != nil {
				return err
			}
		}
		if fn := c.file.Func(x.Callee); fn != nil {
			if len(x.Args) != len(fn.Params) {
				return &SemaError{Pos: x.Pos, Msg: fmt.Sprintf(
					"call to %s with %d args, want %d", x.Callee, len(x.Args), len(fn.Params))}
			}
			return nil
		}
		sig, ok := c.builtins[x.Callee]
		if !ok {
			return &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("call to undefined function %q", x.Callee)}
		}
		if len(x.Args) < sig.MinArgs || (sig.MaxArgs >= 0 && len(x.Args) > sig.MaxArgs) {
			return &SemaError{Pos: x.Pos, Msg: fmt.Sprintf("call to builtin %s with %d args", x.Callee, len(x.Args))}
		}
		return nil
	case *UnaryExpr:
		return c.checkCallArity(x.X)
	case *BinaryExpr:
		if err := c.checkCallArity(x.X); err != nil {
			return err
		}
		return c.checkCallArity(x.Y)
	case *IndexExpr:
		if err := c.checkCallArity(x.X); err != nil {
			return err
		}
		return c.checkCallArity(x.I)
	case *FieldExpr:
		return c.checkCallArity(x.X)
	default:
		return nil
	}
}

// DefaultBuiltins returns the signatures of the standard interpreter
// intrinsics. Workload harnesses extend this map with their own
// virtual-environment calls (file_exists, xreadline, ...).
func DefaultBuiltins() map[string]BuiltinSig {
	return map[string]BuiltinSig{
		"print":  {MinArgs: 1, MaxArgs: -1, Ret: VoidType}, // print strings/ints
		"printi": {MinArgs: 1, MaxArgs: 1, Ret: VoidType},
		"alloc":  {MinArgs: 1, MaxArgs: 1, Ret: PtrTo(IntType)},
		"free":   {MinArgs: 1, MaxArgs: 1, Ret: VoidType},
		"streq":  {MinArgs: 2, MaxArgs: 2, Ret: IntType},
		"strlen": {MinArgs: 1, MaxArgs: 1, Ret: IntType},
		"strget": {MinArgs: 2, MaxArgs: 2, Ret: IntType}, // byte at index
		"rand":   {MinArgs: 1, MaxArgs: 1, Ret: IntType}, // uniform in [0,n)
		"abort":  {MinArgs: 0, MaxArgs: 1, Ret: VoidType},
		"assert": {MinArgs: 1, MaxArgs: 1, Ret: VoidType},
		"min":    {MinArgs: 2, MaxArgs: 2, Ret: IntType},
		"max":    {MinArgs: 2, MaxArgs: 2, Ret: IntType},
	}
}
