package minic

import (
	"reflect"
	"strings"
	"testing"
)

const sampleProgram = `
struct node {
	int val;
	struct node* next;
};

int counter = 0;

int length(struct node* head) {
	int n = 0;
	while (head != null) {
		n++;
		head = head->next;
	}
	return n;
}

int main() {
	struct node* a = new node;
	a->val = 1;
	a->next = null;
	int* buf = alloc(10);
	for (int i = 0; i < 10; i++) {
		buf[i] = i * 2;
	}
	if (length(a) == 1 && buf[3] >= 6) {
		return 0;
	}
	return 1;
}
`

func TestParseSampleProgram(t *testing.T) {
	f, err := Parse("sample.mc", sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "node" {
		t.Fatalf("structs: %+v", f.Structs)
	}
	if len(f.Globals) != 1 || f.Globals[0].Name != "counter" {
		t.Fatalf("globals: %+v", f.Globals)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(f.Funcs))
	}
	if f.Func("length") == nil || f.Func("main") == nil {
		t.Fatal("missing function")
	}
	if f.Func("nope") != nil {
		t.Fatal("unexpected function")
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("t.mc", "int f() { return 1 + 2 * 3 < 4 && 5 == 6 || 7 != 8; }")
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	// Top node must be ||.
	or, ok := ret.X.(*BinaryExpr)
	if !ok || or.Op != "||" {
		t.Fatalf("top operator: %v", ExprString(ret.X))
	}
	and, ok := or.X.(*BinaryExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("second operator: %v", ExprString(or.X))
	}
	want := "(((1 + (2 * 3)) < 4) && (5 == 6))"
	if got := ExprString(and); got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseUnaryAndPostfix(t *testing.T) {
	f := MustParse("t.mc", "int f(int* p) { return -p[1] + !*p; }")
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if got := ExprString(ret.X); got != "(-p[1] + !*p)" {
		t.Errorf("got %s", got)
	}
}

func TestParseDesugarsIncDec(t *testing.T) {
	f := MustParse("t.mc", "void f() { int x = 0; x++; x--; x += 3; }")
	body := f.Funcs[0].Body.Stmts
	inc := body[1].(*AssignStmt)
	if inc.Op != "+=" {
		t.Errorf("x++ desugared to %q", inc.Op)
	}
	dec := body[2].(*AssignStmt)
	if dec.Op != "-=" {
		t.Errorf("x-- desugared to %q", dec.Op)
	}
	cmp := body[3].(*AssignStmt)
	if cmp.Op != "+=" {
		t.Errorf("x += 3 parsed as %q", cmp.Op)
	}
}

func TestParseForVariants(t *testing.T) {
	srcs := []string{
		"void f() { for (;;) { break; } }",
		"void f() { for (int i = 0; i < 10; i++) {} }",
		"void f() { int i; for (i = 0; i < 10; i = i + 2) {} }",
		"void f() { for (; 1;) { break; } }",
	}
	for _, src := range srcs {
		if _, err := Parse("t.mc", src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	f := MustParse("t.mc", "void f(int a, int b) { if (a) if (b) return; else return; }")
	outer := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if; want inner")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int f() { return 1 }",
		"int f() { 1 = x; }",
		"int f() { if 1 {} }",
		"int 3x;",
		"void v; ",
		"int f() { break; }",
		"struct s { int x };", // missing ;
		"int f() { x+; }",
	}
	for _, src := range cases {
		f, err := Parse("t.mc", src)
		if err == nil {
			err = Check(f, DefaultBuiltins())
		}
		if err == nil {
			t.Errorf("%q: want error, got none", src)
		}
	}
}

func TestParseTypes(t *testing.T) {
	f := MustParse("t.mc", "struct s { int x; }; struct s** g; int* p; string msg;")
	if got := f.Globals[0].Type.String(); got != "struct s**" {
		t.Errorf("g: %s", got)
	}
	if got := f.Globals[1].Type.String(); got != "int*" {
		t.Errorf("p: %s", got)
	}
	if got := f.Globals[2].Type.String(); got != "string" {
		t.Errorf("msg: %s", got)
	}
}

func TestTypeEqualAndScalar(t *testing.T) {
	if !PtrTo(IntType).Equal(PtrTo(IntType)) {
		t.Error("int* != int*")
	}
	if PtrTo(IntType).Equal(IntType) {
		t.Error("int* == int")
	}
	if !StructType("a").Equal(StructType("a")) || StructType("a").Equal(StructType("b")) {
		t.Error("struct equality broken")
	}
	if !IntType.IsScalar() || !PtrTo(StructType("n")).IsScalar() {
		t.Error("scalar classification broken")
	}
	if StrType.IsScalar() || VoidType.IsScalar() {
		t.Error("non-scalars classified as scalar")
	}
}

// Round-trip: parse, print, parse again; the two ASTs must be identical
// modulo positions. We compare via a position-free re-print.
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		sampleProgram,
		"void f() { for (;;) { if (1) { continue; } else { break; } } }",
		"int g(int a) { int b = a; b *= 2; return b % 7; }",
		`int h() { print("hi\n", 1); return streq("a", "b"); }`,
		"struct t { int x; struct t* n; }; void f(struct t* p) { p->n->x = (*p).x; }",
	}
	for _, src := range srcs {
		f1, err := Parse("t.mc", src)
		if err != nil {
			t.Fatalf("parse 1: %v\n%s", err, src)
		}
		out1 := Print(f1)
		f2, err := Parse("t.mc", out1)
		if err != nil {
			t.Fatalf("parse 2: %v\n%s", err, out1)
		}
		out2 := Print(f2)
		if out1 != out2 {
			t.Errorf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

func TestSemaAcceptsSample(t *testing.T) {
	f := MustParse("sample.mc", sampleProgram)
	if err := Check(f, DefaultBuiltins()); err != nil {
		t.Fatal(err)
	}
}

func TestSemaRejects(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"int f() { return y; }", "undefined variable"},
		{"int f() { g(); return 0; }", "undefined function"},
		{"int g(int a) { return a; } int f() { return g(); }", "1 args? no"},
		{"void f() { return 1; }", "returns a value"},
		{"int f() { int x; int x; return 0; }", "duplicate declaration"},
		{"struct s { int x; int x; };", "duplicate field"},
		{"int f() { continue; return 0; }", "continue outside loop"},
		{"struct s { struct t y; };", "unknown struct"},
		{"int f(int x) { return x.f; }", "non-struct"},
		{"int f(int x) { return *x; }", "non-pointer"},
		{"int f(int* p) { return p[0][0]; }", "cannot index"},
		{"struct s { int x; }; int f(struct s* p) { return p->y; }", "no field"},
		{"int print;", ""}, // global named like builtin is fine
	}
	for _, tc := range cases {
		f, err := Parse("t.mc", tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		err = Check(f, DefaultBuiltins())
		if tc.src == "int print;" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", tc.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q: want error", tc.src)
			continue
		}
		if tc.wantSub == "1 args? no" {
			if !strings.Contains(err.Error(), "0 args, want 1") {
				t.Errorf("%q: error %q", tc.src, err)
			}
			continue
		}
		if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestSemaRejectsBuiltinShadowAndArity(t *testing.T) {
	if err := Check(MustParse("t.mc", "int alloc(int n) { return n; }"), DefaultBuiltins()); err == nil {
		t.Error("shadowing builtin should fail")
	}
	if err := Check(MustParse("t.mc", "void f() { alloc(1, 2); }"), DefaultBuiltins()); err == nil {
		t.Error("alloc arity should fail")
	}
}

func TestTypeOfExprViaChecker(t *testing.T) {
	f := MustParse("t.mc", `
struct n { int v; struct n* next; };
struct n* g;
int f(int a, int* p, struct n* q) { return 0; }
`)
	c := &checker{file: f, builtins: DefaultBuiltins()}
	c.scopes = []map[string]*Type{{
		"a": IntType, "p": PtrTo(IntType), "q": PtrTo(StructType("n")), "g": PtrTo(StructType("n")),
	}}
	cases := map[string]string{
		"a":        "int",
		"p":        "int*",
		"p[2]":     "int",
		"*p":       "int",
		"q->next":  "struct n*",
		"q->v":     "int",
		"a + 1":    "int",
		"p + 1":    "int*",
		"a < 3":    "int",
		"null":     "int*",
		"new n":    "struct n*",
		"alloc(4)": "int*",
		"f(1,p,q)": "int",
		`"x"`:      "string",
	}
	for src, want := range cases {
		toks, err := LexAll("e.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		pp := &Parser{toks: toks}
		e, err := pp.parseExpr()
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		typ, err := TypeOfExpr(e, c)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if typ.String() != want {
			t.Errorf("%q: got %s, want %s", src, typ, want)
		}
	}
}

func TestIsLValue(t *testing.T) {
	lv := []Expr{
		&Ident{Name: "x"},
		&IndexExpr{X: &Ident{Name: "p"}, I: &IntLit{Value: 0}},
		&FieldExpr{X: &Ident{Name: "s"}, Name: "f"},
		&UnaryExpr{Op: "*", X: &Ident{Name: "p"}},
	}
	for _, e := range lv {
		if !IsLValue(e) {
			t.Errorf("%s should be lvalue", ExprString(e))
		}
	}
	notLV := []Expr{
		&IntLit{Value: 3},
		&BinaryExpr{Op: "+", X: &IntLit{}, Y: &IntLit{}},
		&UnaryExpr{Op: "-", X: &Ident{Name: "x"}},
		&CallExpr{Callee: "f"},
	}
	for _, e := range notLV {
		if IsLValue(e) {
			t.Errorf("%s should not be lvalue", ExprString(e))
		}
	}
}

func TestASTDeepStructure(t *testing.T) {
	f := MustParse("t.mc", "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }")
	fn := f.Funcs[0]
	if !reflect.DeepEqual(fn.Params[0].Type, IntType) {
		t.Error("param type")
	}
	ifs, ok := fn.Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatal("first stmt not if")
	}
	if _, ok := ifs.Then.(*Block); !ok {
		t.Error("then not block")
	}
}
