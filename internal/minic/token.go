// Package minic implements the front end for MiniC, the C-like language
// that serves as the instrumentation substrate for this CBI reproduction.
//
// MiniC deliberately mirrors the fragment of C that the paper's
// source-to-source transformation operates on: functions, structured
// control flow (if/while/for), scalar int variables, pointers to heap
// objects, structs, and calls. Programs are parsed into an AST
// (see ast.go) which internal/cfg lowers into control-flow graphs.
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Keywords and multi-character operators each get their own
// kind so the parser never re-examines token text.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt   // integer literal
	TokStr   // string literal
	TokChar  // character literal (lexed to its integer value)
	TokPunct // any punctuation; Tok.Text holds the exact lexeme

	// Keywords.
	TokKwInt
	TokKwVoid
	TokKwStruct
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwNull
	TokKwNew
)

var keywords = map[string]TokKind{
	"int":      TokKwInt,
	"void":     TokKwVoid,
	"struct":   TokKwStruct,
	"if":       TokKwIf,
	"else":     TokKwElse,
	"while":    TokKwWhile,
	"for":      TokKwFor,
	"return":   TokKwReturn,
	"break":    TokKwBreak,
	"continue": TokKwContinue,
	"null":     TokKwNull,
	"new":      TokKwNew,
}

// Pos is a source position. File is the logical file name given to the
// lexer; predicates reported by the analyses carry these positions, in the
// same "file.c:123" style the paper uses.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// LineString renders the position as file:line, the granularity the paper
// reports predicates at (e.g. "traverse.c:320").
func (p Pos) LineString() string {
	if p.File == "" {
		return fmt.Sprintf("line %d", p.Line)
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// Token is a single lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier name, punctuation lexeme, or raw literal text
	Int  int64  // value for TokInt and TokChar
	Str  string // decoded value for TokStr
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return fmt.Sprintf("ident(%s)", t.Text)
	case TokInt:
		return fmt.Sprintf("int(%d)", t.Int)
	case TokStr:
		return fmt.Sprintf("str(%q)", t.Str)
	case TokChar:
		return fmt.Sprintf("char(%d)", t.Int)
	case TokPunct:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}
