package minic

import (
	"fmt"
)

// Parser is a recursive-descent parser for MiniC.
//
// Grammar sketch (see DESIGN.md for the full language description):
//
//	file      = { structDecl | funcDecl | globalVar } .
//	structDecl= "struct" IDENT "{" { type IDENT ";" } "}" ";" .
//	funcDecl  = type IDENT "(" [ param { "," param } ] ")" block .
//	globalVar = type IDENT [ "=" expr ] ";" .
//	type      = ( "int" | "string" | "void" | "struct" IDENT ) { "*" } .
//	stmt      = varDecl | ifStmt | whileStmt | forStmt | returnStmt
//	          | "break" ";" | "continue" ";" | block | simpleStmt ";" .
//	simple    = lvalue asgOp expr | lvalue "++" | lvalue "--" | expr .
//
// Expressions use standard C precedence with short-circuit && and ||.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// ParseError describes a syntax error.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse lexes and parses a MiniC source file.
func Parse(file, src string) (*File, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	return p.parseFile()
}

// MustParse is Parse but panics on error. Intended for embedded workload
// sources and tests, where the source is a compile-time constant.
func MustParse(file, src string) *File {
	f, err := Parse(file, src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf(p.cur().Pos, "expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return Token{}, p.errf(t.Pos, "expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

// atType reports whether the current token starts a type.
func (p *Parser) atType() bool {
	switch p.cur().Kind {
	case TokKwInt, TokKwVoid, TokKwStruct:
		return true
	case TokIdent:
		return p.cur().Text == "string"
	}
	return false
}

func (p *Parser) parseType() (*Type, error) {
	var base *Type
	t := p.cur()
	switch t.Kind {
	case TokKwInt:
		p.pos++
		base = IntType
	case TokKwVoid:
		p.pos++
		base = VoidType
	case TokIdent:
		if t.Text != "string" {
			return nil, p.errf(t.Pos, "expected type, found %s", t)
		}
		p.pos++
		base = StrType
	case TokKwStruct:
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		base = StructType(name.Text)
	default:
		return nil, p.errf(t.Pos, "expected type, found %s", t)
	}
	for p.acceptPunct("*") {
		base = PtrTo(base)
	}
	return base, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != TokEOF {
		// struct declaration vs "struct X *name" global/function.
		if p.cur().Kind == TokKwStruct && p.toks[p.pos+1].Kind == TokIdent &&
			p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		typPos := p.cur().Pos
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		if typ.Kind == TypeVoid {
			return nil, p.errf(typPos, "global %s cannot have void type", name.Text)
		}
		g := &VarDecl{Name: name.Text, Type: typ, Pos: name.Pos}
		if p.acceptPunct("=") {
			g.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

func (p *Parser) parseStructDecl() (*StructDecl, error) {
	kw := p.next() // struct
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: name.Text, Pos: kw.Pos}
	for !p.isPunct("}") {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, Field{Name: fname.Text, Type: ft, Pos: fname.Pos})
	}
	p.pos++ // }
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return sd, nil
}

func (p *Parser) parseFuncRest(ret *Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Ret: ret, Pos: name.Pos}
	p.pos++ // (
	if !p.isPunct(")") {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Name: pname.Text, Type: pt, Pos: pname.Pos})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	start := p.cur().Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: start}
	for !p.isPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf(start, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case t.Kind == TokKwIf:
		return p.parseIf()
	case t.Kind == TokKwWhile:
		return p.parseWhile()
	case t.Kind == TokKwFor:
		return p.parseFor()
	case t.Kind == TokKwReturn:
		p.pos++
		rs := &ReturnStmt{Pos: t.Pos}
		if !p.isPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		return rs, p.expectPunct(";")
	case t.Kind == TokKwBreak:
		p.pos++
		return &BreakStmt{Pos: t.Pos}, p.expectPunct(";")
	case t.Kind == TokKwContinue:
		p.pos++
		return &ContinueStmt{Pos: t.Pos}, p.expectPunct(";")
	case p.atType():
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return vd, p.expectPunct(";")
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	return s, p.expectPunct(";")
}

func (p *Parser) parseVarDecl() (*VarDecl, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ.Kind == TypeVoid {
		return nil, p.errf(p.cur().Pos, "variable cannot have void type")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	vd := &VarDecl{Name: name.Text, Type: typ, Pos: name.Pos}
	if p.acceptPunct("=") {
		vd.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return vd, nil
}

var compoundOps = map[string]string{"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}

// parseSimpleStmt parses an assignment, increment/decrement, or bare
// expression statement, without the trailing semicolon.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.isPunct("="):
		p.pos++
		if !IsLValue(x) {
			return nil, p.errf(start, "left side of assignment is not an lvalue")
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Op: "=", LHS: x, RHS: rhs, Pos: start}, nil
	case p.cur().Kind == TokPunct && compoundOps[p.cur().Text] != "":
		op := p.next().Text
		if !IsLValue(x) {
			return nil, p.errf(start, "left side of %s is not an lvalue", op)
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Op: op, LHS: x, RHS: rhs, Pos: start}, nil
	case p.isPunct("++"), p.isPunct("--"):
		op := p.next().Text
		if !IsLValue(x) {
			return nil, p.errf(start, "operand of %s is not an lvalue", op)
		}
		bin := "+"
		if op == "--" {
			bin = "-"
		}
		return &AssignStmt{Op: bin + "=", LHS: x, RHS: &IntLit{Value: 1, Pos: start}, Pos: start}, nil
	default:
		return &ExprStmt{X: x, Pos: start}, nil
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.cur().Kind == TokKwElse {
		p.pos++
		is.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return is, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: kw.Pos}
	var err error
	if !p.isPunct(";") {
		if p.atType() {
			fs.Init, err = p.parseVarDecl()
		} else {
			fs.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		fs.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		fs.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	fs.Body, err = p.parseStmt()
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// ----------------------------------------------------------------------------
// Expression parsing (precedence climbing)

// binary operator precedence, higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.Text, X: lhs, Y: rhs, Pos: t.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "!" || t.Text == "*") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			lb := p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, I: i, Pos: lb.Pos}
		case p.isPunct("."):
			dot := p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{X: x, Name: name.Text, Pos: dot.Pos}
		case p.isPunct("->"):
			arrow := p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{X: x, Name: name.Text, Arrow: true, Pos: arrow.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt, TokChar:
		p.pos++
		return &IntLit{Value: t.Int, Pos: t.Pos}, nil
	case TokStr:
		p.pos++
		return &StrLit{Value: t.Str, Pos: t.Pos}, nil
	case TokKwNull:
		p.pos++
		return &NullLit{Pos: t.Pos}, nil
	case TokKwNew:
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &NewExpr{StructName: name.Text, Pos: t.Pos}, nil
	case TokIdent:
		p.pos++
		if p.isPunct("(") {
			p.pos++
			call := &CallExpr{Callee: t.Text, Pos: t.Pos}
			if !p.isPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	}
	if p.isPunct("(") {
		p.pos++
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	}
	return nil, p.errf(t.Pos, "expected expression, found %s", t)
}
