package minic

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics, and that whenever it
// accepts an input, printing and reparsing converge (print ∘ parse is
// idempotent). Run with `go test -fuzz=FuzzParse ./internal/minic` for a
// live fuzzing session; the seed corpus runs in ordinary `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int x;",
		"int f() { return 0; }",
		"struct s { int x; }; int g(struct s* p) { return p->x; }",
		"void f(int n) { while (n) { n--; } }",
		"void f() { for (int i = 0; i < 3; i++) { if (i == 1) { continue; } } }",
		`int main() { print("hi\n"); return streq("a", "b"); }`,
		"int f(int* p) { return p != null && p[0] > 'a'; }",
		"int f() { return 0x10 % 3; }",
		"/* comment */ int x = -5; // trailing",
		"int f( { }",
		"int f() { return (1 + ; }",
		"\"unterminated",
		"int \xff;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz.mc", src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		out1 := Print(file)
		file2, err := Parse("fuzz.mc", out1)
		if err != nil {
			t.Fatalf("printed output does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, out1)
		}
		out2 := Print(file2)
		if out1 != out2 {
			t.Fatalf("print not idempotent:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}

// FuzzLexer checks the lexer never panics and always terminates.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{"int x;", "'\\", "\"\\q\"", "0x", "a+++++b", strings.Repeat("(", 100)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := LexAll("fuzz.mc", src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
