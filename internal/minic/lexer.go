package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer turns MiniC source text into a token stream. It supports //- and
// /* */-style comments, decimal and hexadecimal integer literals, character
// literals with the usual escapes, and string literals.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src. The file name is recorded in token
// positions and flows through to predicate names in analysis output.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// LexError describes a lexical error at a specific position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuation, longest first.
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||", "->", "+=", "-=", "*=", "/=", "%=", "++", "--"}

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		return l.lexNumber(p)
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && isAlnum(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Text: word, Pos: p}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: p}, nil
	case c == '"':
		return l.lexString(p)
	case c == '\'':
		return l.lexChar(p)
	}
	// Punctuation: try two-character operators first.
	if l.off+1 < len(l.src) {
		two := l.src[l.off : l.off+2]
		for _, op := range punct2 {
			if two == op {
				l.advance()
				l.advance()
				return Token{Kind: TokPunct, Text: op, Pos: p}, nil
			}
		}
	}
	if strings.IndexByte("+-*/%<>=!&|(){}[];,.", c) >= 0 {
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: p}, nil
	}
	return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) lexNumber(p Pos) (Token, error) {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && (isDigit(l.peek()) || (l.peek() >= 'a' && l.peek() <= 'f') || (l.peek() >= 'A' && l.peek() <= 'F')) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("bad integer literal %q", text)}
	}
	return Token{Kind: TokInt, Text: text, Int: v, Pos: p}, nil
}

func (l *Lexer) decodeEscape(p Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, &LexError{Pos: p, Msg: "unterminated escape"}
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	default:
		return 0, &LexError{Pos: p, Msg: fmt.Sprintf("unknown escape \\%c", c)}
	}
}

func (l *Lexer) lexString(p Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return Token{}, &LexError{Pos: p, Msg: "newline in string literal"}
		}
		if c == '\\' {
			e, err := l.decodeEscape(p)
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokStr, Str: sb.String(), Pos: p}, nil
}

func (l *Lexer) lexChar(p Pos) (Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return Token{}, &LexError{Pos: p, Msg: "unterminated character literal"}
	}
	c := l.advance()
	if c == '\\' {
		e, err := l.decodeEscape(p)
		if err != nil {
			return Token{}, err
		}
		c = e
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return Token{}, &LexError{Pos: p, Msg: "unterminated character literal"}
	}
	return Token{Kind: TokChar, Int: int64(c), Pos: p}, nil
}

// LexAll tokenizes the whole input, ending with a TokEOF token.
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
