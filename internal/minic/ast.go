package minic

import (
	"fmt"
	"strings"
)

// ----------------------------------------------------------------------------
// Types

// TypeKind classifies MiniC types.
type TypeKind int

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeStr    // host string handle (immutable)
	TypePtr    // pointer to Elem
	TypeStruct // named struct
)

// Type is a MiniC type. Types are compared structurally; the scalar-pairs
// instrumentation scheme uses Type.Equal to find "other variables of the
// same type in scope" exactly as §3.3.1 of the paper specifies.
type Type struct {
	Kind       TypeKind
	Elem       *Type  // for TypePtr
	StructName string // for TypeStruct
}

// Convenience singletons for the non-parameterized types.
var (
	VoidType = &Type{Kind: TypeVoid}
	IntType  = &Type{Kind: TypeInt}
	StrType  = &Type{Kind: TypeStr}
)

// PtrTo returns the pointer type *t.
func PtrTo(t *Type) *Type { return &Type{Kind: TypePtr, Elem: t} }

// StructType returns the named struct type.
func StructType(name string) *Type { return &Type{Kind: TypeStruct, StructName: name} }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePtr:
		return t.Elem.Equal(o.Elem)
	case TypeStruct:
		return t.StructName == o.StructName
	default:
		return true
	}
}

// IsScalar reports whether t is a scalar for instrumentation purposes.
// The paper's scalar-pairs scheme covers "arithmetic types as well as
// pointers"; in MiniC that is int and every pointer type.
func (t *Type) IsScalar() bool {
	return t != nil && (t.Kind == TypeInt || t.Kind == TypePtr)
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t != nil && t.Kind == TypePtr }

// String renders the type in C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeStr:
		return "string"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeStruct:
		return "struct " + t.StructName
	default:
		return "<bad type>"
	}
}

// ----------------------------------------------------------------------------
// Declarations

// File is a parsed MiniC translation unit.
type File struct {
	Name    string
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// Struct returns the struct declaration with the given name, or nil.
func (f *File) Struct(name string) *StructDecl {
	for _, s := range f.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// StructDecl declares a struct with named fields.
type StructDecl struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructDecl) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field is a single struct field.
type Field struct {
	Name string
	Type *Type
	Pos  Pos
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    *Type
	Body   *Block
	Pos    Pos
}

// Param is a formal parameter.
type Param struct {
	Name string
	Type *Type
	Pos  Pos
}

// ----------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Block is a brace-delimited statement list introducing a scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDecl declares a variable, optionally initialized. It appears both as a
// statement (locals) and in File.Globals.
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt assigns RHS to an lvalue. Op is "=" or a compound operator
// ("+=", "-=", "*=", "/=", "%="); the parser also desugars x++ / x-- here.
type AssignStmt struct {
	Op  string
	LHS Expr // must be an lvalue form: Ident, Index, Field, Unary(*)
	RHS Expr
	Pos Pos
}

// ExprStmt evaluates an expression for effect (typically a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// ForStmt is a C-style for loop. Init and Post are restricted to
// assignment or expression statements (or nil); Cond may be nil (infinite).
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X   Expr // nil for bare return
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*Block) stmtNode()        {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

func (s *Block) StmtPos() Pos        { return s.Pos }
func (s *VarDecl) StmtPos() Pos      { return s.Pos }
func (s *AssignStmt) StmtPos() Pos   { return s.Pos }
func (s *ExprStmt) StmtPos() Pos     { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *ForStmt) StmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }

// ----------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// StrLit is a string literal.
type StrLit struct {
	Value string
	Pos   Pos
}

// NullLit is the null pointer literal.
type NullLit struct{ Pos Pos }

// Ident references a variable by name.
type Ident struct {
	Name string
	Pos  Pos
}

// UnaryExpr applies a prefix operator: "-", "!", or "*" (dereference).
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// BinaryExpr applies a binary operator. "&&" and "||" short-circuit.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Pos  Pos
}

// CallExpr calls a named function or builtin.
type CallExpr struct {
	Callee string
	Args   []Expr
	Pos    Pos
}

// IndexExpr indexes a pointer: X[I].
type IndexExpr struct {
	X, I Expr
	Pos  Pos
}

// FieldExpr selects a struct field: X.Name or X->Name (Arrow).
type FieldExpr struct {
	X     Expr
	Name  string
	Arrow bool
	Pos   Pos
}

// NewExpr allocates a struct on the heap: new name.
type NewExpr struct {
	StructName string
	Pos        Pos
}

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*FieldExpr) exprNode()  {}
func (*NewExpr) exprNode()    {}

func (e *IntLit) ExprPos() Pos     { return e.Pos }
func (e *StrLit) ExprPos() Pos     { return e.Pos }
func (e *NullLit) ExprPos() Pos    { return e.Pos }
func (e *Ident) ExprPos() Pos      { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *FieldExpr) ExprPos() Pos  { return e.Pos }
func (e *NewExpr) ExprPos() Pos    { return e.Pos }

// IsLValue reports whether e is a syntactically valid assignment target.
func IsLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *IndexExpr:
		return true
	case *FieldExpr:
		return true
	case *UnaryExpr:
		return x.Op == "*"
	default:
		return false
	}
}

// QuoteString renders s as a MiniC string literal, using only the escape
// sequences the lexer understands (\n \t \r \0 \\ \" — not Go's \x
// escapes). All other bytes are emitted raw; the lexer accepts any byte
// inside a string except a newline or an unescaped quote.
func QuoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		case 0:
			sb.WriteString(`\0`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// ExprString renders an expression in compact C-like syntax. It is used for
// predicate names in analysis reports.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *IntLit:
		fmt.Fprintf(sb, "%d", x.Value)
	case *StrLit:
		sb.WriteString(QuoteString(x.Value))
	case *NullLit:
		sb.WriteString("null")
	case *Ident:
		sb.WriteString(x.Name)
	case *UnaryExpr:
		sb.WriteString(x.Op)
		writeExpr(sb, x.X)
	case *BinaryExpr:
		sb.WriteString("(")
		writeExpr(sb, x.X)
		sb.WriteString(" " + x.Op + " ")
		writeExpr(sb, x.Y)
		sb.WriteString(")")
	case *CallExpr:
		sb.WriteString(x.Callee + "(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteString(")")
	case *IndexExpr:
		writeExpr(sb, x.X)
		sb.WriteString("[")
		writeExpr(sb, x.I)
		sb.WriteString("]")
	case *FieldExpr:
		writeExpr(sb, x.X)
		if x.Arrow {
			sb.WriteString("->")
		} else {
			sb.WriteString(".")
		}
		sb.WriteString(x.Name)
	case *NewExpr:
		sb.WriteString("new " + x.StructName)
	default:
		sb.WriteString("<bad expr>")
	}
}
