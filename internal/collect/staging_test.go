package collect

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/monitor"
	"cbi/internal/quality"
	"cbi/internal/report"
	"cbi/internal/telemetry"
)

// TestStagedIngestMatchesSerialOracle hammers a staged server with 8
// concurrent batched submitters and checks, under -race:
//
//	(a) the final Aggregate, ScoreState, and DB equal a serial fold of
//	    the same reports (the synchronous oracle), and
//	(b) ScoreStateAndDB taken at arbitrary instants mid-ingest is
//	    internally consistent — the accumulator and the report store
//	    always describe the same report subset.
func TestStagedIngestMatchesSerialOracle(t *testing.T) {
	const submitters, per, batch = 8, 250, 16
	var all []*report.Report
	for id := 0; id < submitters*per; id++ {
		all = append(all, mkReport(uint64(id), id%5 == 0))
	}

	srv := NewServer("p", 3, StoreAll)
	srv.Shards = 4
	srv.Monitor = monitor.New(monitor.Config{TopK: 3, EveryReports: 100})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			acc, db := srv.ScoreStateAndDB()
			if acc.Runs != db.Len() {
				t.Errorf("mid-ingest snapshot tore: accum has %d runs, DB has %d", acc.Runs, db.Len())
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClient("http://" + addr)
			client.BatchSize = batch
			for _, r := range all[w*per : (w+1)*per] {
				if err := client.Submit(r); err != nil {
					t.Error(err)
					return
				}
			}
			if err := client.Flush(context.Background()); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	close(stopPoll)
	pollWG.Wait()

	assertSameAggregate(t, srv.Aggregate(), serialAggregate(t, all))

	oracle := score.NewAccum(3, nil)
	for _, r := range all {
		if err := oracle.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	acc := srv.ScoreState()
	if acc.Runs != oracle.Runs {
		t.Fatalf("ScoreState runs = %d, want %d", acc.Runs, oracle.Runs)
	}
	if !reflect.DeepEqual(score.Rank(acc.Predicates()), score.Rank(oracle.Predicates())) {
		t.Fatal("staged ScoreState ranking diverges from serial-fold oracle")
	}

	db := srv.DB()
	if db.Len() != len(all) {
		t.Fatalf("DB has %d reports, want %d", db.Len(), len(all))
	}
	for i, got := range db.Reports {
		want := all[i] // run IDs were assigned in order, DB sorts by run ID
		if got.RunID != want.RunID || got.Crashed != want.Crashed ||
			!reflect.DeepEqual(got.Counters, want.Counters) {
			t.Fatalf("DB report %d = run %d (crashed=%v), want run %d (crashed=%v)",
				i, got.RunID, got.Crashed, want.RunID, want.Crashed)
		}
	}
}

// TestStopMidBurstLosesNoAcceptedReport fires batches at a staged
// server, stops it mid-burst, and verifies every report the server
// acknowledged with a 202 is present afterwards: the 202 is a durable
// accept, surviving shutdown because Stop drains the rings before
// retiring the folders.
func TestStopMidBurstLosesNoAcceptedReport(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	const submitters, batch = 6, 8
	var accepted sync.Map // run ID -> true, recorded only on a 202
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 5 * time.Second}
			for seq := 0; seq < 100000; seq++ {
				reps := make([]*report.Report, batch)
				for j := range reps {
					id := uint64(w)<<32 | uint64(seq*batch+j)
					reps[j] = mkReport(id, id%3 == 0)
				}
				resp, err := hc.Post(base+"/reports", "application/octet-stream",
					bytes.NewReader(report.EncodeBatch(reps)))
				if err != nil {
					return // server gone: the burst outlived Stop
				}
				code := resp.StatusCode
				resp.Body.Close()
				switch code {
				case http.StatusAccepted:
					for _, r := range reps {
						accepted.Store(r.RunID, true)
					}
				case http.StatusServiceUnavailable:
					// Shed: retriable, not accepted — keep going.
				default:
					t.Errorf("unexpected status %d", code)
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let the burst develop
	if err := srv.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	present := make(map[uint64]bool)
	for _, r := range srv.DB().Reports {
		present[r.RunID] = true
	}
	missing := 0
	accepted.Range(func(k, _ any) bool {
		if !present[k.(uint64)] {
			missing++
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("%d reports acknowledged with 202 are missing after Stop", missing)
	}
}

// TestStageRingWrapAroundFIFO pushes variable-size reservations through
// a tiny ring for several laps, checking FIFO order and slot reuse
// across the wrap boundary.
func TestStageRingWrapAroundFIFO(t *testing.T) {
	r := newStageRing(8)
	buf := make([]stageItem, 8)
	var next, want uint64
	for step, n := range []int{5, 3, 8, 1, 7, 8, 2, 6} { // 40 items: five laps of an 8-slot ring
		pos, ok := r.tryReserve(n)
		if !ok {
			t.Fatalf("step %d: reserve(%d) failed on an empty ring", step, n)
		}
		for i := 0; i < n; i++ {
			r.publish(pos+uint64(i), stageItem{rep: &report.Report{RunID: next}})
			next++
		}
		got := r.drainInto(buf)
		if got != n {
			t.Fatalf("step %d: drained %d, want %d", step, got, n)
		}
		for i := 0; i < got; i++ {
			if buf[i].rep.RunID != want {
				t.Fatalf("step %d: position %d yielded run %d, want %d", step, i, buf[i].rep.RunID, want)
			}
			want++
		}
	}
	for i := range r.slots {
		if r.slots[i].item.rep != nil {
			t.Fatalf("slot %d still holds a report after drain", i)
		}
	}
}

// TestStageRingCapacityBoundaries pins reservation semantics at the
// edges: exactly-capacity fits, capacity+1 never does, and partially
// drained rings admit exactly the freed space. It also checks the
// consumer stops cleanly at a reserved-but-unpublished slot.
func TestStageRingCapacityBoundaries(t *testing.T) {
	r := newStageRing(8)
	if _, ok := r.tryReserve(9); ok {
		t.Fatal("reserve(9) succeeded on an 8-slot ring")
	}
	pos, ok := r.tryReserve(8)
	if !ok || pos != 0 {
		t.Fatalf("reserve(8) = (%d, %v), want (0, true)", pos, ok)
	}
	if _, ok := r.tryReserve(1); ok {
		t.Fatal("reserve(1) succeeded on a full ring")
	}
	for i := uint64(0); i < 8; i++ {
		r.publish(i, stageItem{rep: &report.Report{RunID: i}})
	}
	small := make([]stageItem, 3)
	if got := r.drainInto(small); got != 3 {
		t.Fatalf("drained %d, want 3", got)
	}
	if _, ok := r.tryReserve(4); ok {
		t.Fatal("reserve(4) succeeded with only 3 free slots")
	}
	pos, ok = r.tryReserve(3)
	if !ok || pos != 8 {
		t.Fatalf("reserve(3) = (%d, %v), want (8, true)", pos, ok)
	}
	// Positions 3..7 are published, 8..10 reserved but not yet
	// published: the consumer must take the five and stop.
	big := make([]stageItem, 8)
	if got := r.drainInto(big); got != 5 {
		t.Fatalf("drained %d, want 5 (stop at the unpublished slot)", got)
	}
	if big[0].rep.RunID != 3 {
		t.Fatalf("first drained run = %d, want 3", big[0].rep.RunID)
	}
}

// TestFullRingShedsWithRetryAfter drives the server-level shed path
// deterministically: the shard lock is held so the folder parks
// mid-batch, the ring is filled to capacity, and the capacity+1 POST
// must come back 503 with Retry-After — never block — while everything
// accepted before it survives.
func TestFullRingShedsWithRetryAfter(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	srv.Shards = 1
	srv.StageCapacity = 8
	srv.StageWait = -1 // shed as soon as the bounded spin fails
	srv.Quality = quality.New(quality.Config{Interval: -1})
	h := srv.Handler()
	defer srv.Stop()

	post := func(id uint64) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/report",
			bytes.NewReader(mkReport(id, false).Encode()))
		h.ServeHTTP(rec, req)
		return rec
	}

	// Park the folder: it will drain whatever is already published,
	// then block on the shard lock, leaving later arrivals in the ring.
	srv.shards[0].mu.Lock()
	if rec := post(0); rec.Code != http.StatusAccepted {
		t.Fatalf("report 0: %d", rec.Code)
	}
	ring := &srv.rings[0]
	for deadline := time.Now().Add(5 * time.Second); ring.tail.Load() != 1; {
		if time.Now().After(deadline) {
			t.Fatal("folder never picked up report 0")
		}
		time.Sleep(100 * time.Microsecond)
	}

	for id := uint64(1); id <= 8; id++ { // fill the ring exactly to capacity
		if rec := post(id); rec.Code != http.StatusAccepted {
			t.Fatalf("report %d: %d, want 202", id, rec.Code)
		}
	}
	rec := post(9) // capacity + 1: must shed, not block
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow report: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed 503 carries no Retry-After header")
	}
	if got := srv.m.shed.Value(); got != 1 {
		t.Errorf("collect_reports_shed_total = %d, want 1", got)
	}
	if snap := srv.Quality.TakeSnapshot(); snap.Rejected["shed"] != 1 {
		t.Errorf("quality shed rejections = %d, want 1", snap.Rejected["shed"])
	}

	// Release the folder: every accepted report folds, the shed one is
	// absent, and ingest resumes.
	srv.shards[0].mu.Unlock()
	if agg := srv.Aggregate(); agg.Runs != 9 {
		t.Fatalf("after release: %d runs, want 9", agg.Runs)
	}
	if rec := post(10); rec.Code != http.StatusAccepted {
		t.Fatalf("post-recovery report: %d, want 202", rec.Code)
	}
	if agg := srv.Aggregate(); agg.Runs != 10 {
		t.Fatalf("after recovery: %d runs, want 10", agg.Runs)
	}
}

// TestClientHonorsRetryAfter pins the client side of the back-pressure
// contract: a 503 carrying Retry-After is retried after the advertised
// (capped) delay and counted in client_backpressure_total.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls int32
	var mu sync.Mutex
	var gaps []time.Time
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		gaps = append(gaps, time.Now())
		n := calls
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer backend.Close()

	client := NewClient(backend.URL)
	client.Metrics = telemetry.NewRegistry()
	client.RetryAfterCap = 20 * time.Millisecond // cap the 1s header for test speed
	if err := client.Submit(mkReport(1, false)); err != nil {
		t.Fatalf("submit with one shed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("server saw %d calls, want 2", calls)
	}
	if gap := gaps[1].Sub(gaps[0]); gap < 20*time.Millisecond {
		t.Errorf("retry came after %v, before the capped Retry-After elapsed", gap)
	}
	if got := client.Metrics.Counter("client_backpressure_total").Value(); got != 1 {
		t.Errorf("client_backpressure_total = %d, want 1", got)
	}
	if got := client.Metrics.Counter("client_submit_retries_total").Value(); got != 1 {
		t.Errorf("client_submit_retries_total = %d, want 1", got)
	}
}
