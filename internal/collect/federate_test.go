package collect

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/report"
)

// newTestEdge builds an edge collector pointed at a running root, with
// the push timer parked so tests drive cuts deterministically through
// FederateNow.
func newTestEdge(t *testing.T, rootAddr, edgeID string) *Server {
	t.Helper()
	edge := NewServer("p", 3, AggregateOnly)
	edge.Federation = &Federation{
		Parent:   "http://" + rootAddr,
		EdgeID:   edgeID,
		Interval: time.Hour,
	}
	return edge
}

// TestFederatedTreeMatchesSerialFold is the core merge-legality check:
// two edges ingesting disjoint report streams and pushing delta merges
// over several epochs leave the root bit-identical to one collector
// folding the union serially.
func TestFederatedTreeMatchesSerialFold(t *testing.T) {
	root := NewServer("p", 3, AggregateOnly)
	root.AcceptMerges = true
	addr, err := root.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Stop()

	edges := []*Server{
		newTestEdge(t, addr, "edge-a"),
		newTestEdge(t, addr, "edge-b"),
	}
	oracleAgg := report.NewAggregate("p", 3)
	oracleAcc := score.NewAccum(3, nil)

	id := uint64(0)
	feed := func(e *Server, n int) {
		for i := 0; i < n; i++ {
			id++
			r := mkReport(id, id%4 == 0)
			if err := e.Submit(r); err != nil {
				t.Fatal(err)
			}
			if err := oracleAgg.Fold(r); err != nil {
				t.Fatal(err)
			}
			if err := oracleAcc.Fold(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Three epochs per edge, interleaved, with an empty cut in the
	// middle (FederateNow with nothing new must be a no-op, not a
	// zero-run push).
	for round := 0; round < 3; round++ {
		for _, e := range edges {
			feed(e, 17)
			if err := e.FederateNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := edges[0].FederateNow(); err != nil {
		t.Fatal(err)
	}

	rootAgg := root.Aggregate()
	rootAgg.Program = oracleAgg.Program // the oracle names the program locally
	if !reflect.DeepEqual(rootAgg, oracleAgg) {
		t.Fatalf("root aggregate diverges from serial fold:\n root: %+v\noracle: %+v", rootAgg, oracleAgg)
	}
	rootAcc := root.ScoreState()
	if rootAcc.Runs != oracleAcc.Runs {
		t.Fatalf("root accum runs %d, oracle %d", rootAcc.Runs, oracleAcc.Runs)
	}
	if !reflect.DeepEqual(score.Rank(rootAcc.Predicates()), score.Rank(oracleAcc.Predicates())) {
		t.Fatal("root predicate ranking diverges from serial fold")
	}

	for _, e := range edges {
		if err := e.Stop(); err != nil {
			t.Fatal(err)
		}
	}
}

func postMerge(t *testing.T, h http.Handler, payload []byte) (*httptest.ResponseRecorder, MergeAck) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/merge", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var ack MergeAck
	if rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(&ack); err != nil {
			t.Fatalf("merge ack: %v", err)
		}
	}
	return rec, ack
}

func testEnvelope(edgeID string, epoch uint64, runs int) []byte {
	agg := report.NewAggregate("p", 3)
	for i := 0; i < runs; i++ {
		r := &report.Report{RunID: uint64(1000*epoch) + uint64(i), Program: "p", Crashed: i == 0, Counters: []uint64{1, 0, uint64(i)}}
		if err := agg.Fold(r); err != nil {
			panic(err)
		}
	}
	return encodeMergeEnvelope(&mergeEnvelope{
		edgeID:      edgeID,
		epoch:       epoch,
		program:     "p",
		numCounters: 3,
		aggRaw:      agg.EncodeStats(),
	})
}

// TestMergeEpochDedupe pins the exactly-once contract: replaying an
// already-acknowledged epoch (a push whose ack was lost in transit)
// acks again without folding, and stale epochs never regress the
// cursor.
func TestMergeEpochDedupe(t *testing.T) {
	root := NewServer("p", 3, AggregateOnly)
	root.AcceptMerges = true
	h := root.Handler()

	rec, ack := postMerge(t, h, testEnvelope("e1", 1, 5))
	if rec.Code != http.StatusOK || ack.Duplicate {
		t.Fatalf("first epoch: %d, dup=%v", rec.Code, ack.Duplicate)
	}
	// Verbatim replay: acked as duplicate, not folded.
	rec, ack = postMerge(t, h, testEnvelope("e1", 1, 5))
	if rec.Code != http.StatusOK || !ack.Duplicate {
		t.Fatalf("replayed epoch: %d, dup=%v", rec.Code, ack.Duplicate)
	}
	if got := root.Aggregate().Runs; got != 5 {
		t.Fatalf("runs after replay: %d, want 5 (epoch folded twice)", got)
	}

	// The next epoch folds normally.
	rec, ack = postMerge(t, h, testEnvelope("e1", 2, 7))
	if rec.Code != http.StatusOK || ack.Duplicate {
		t.Fatalf("second epoch: %d, dup=%v", rec.Code, ack.Duplicate)
	}
	// A stale epoch arriving late is also a duplicate.
	if _, ack = postMerge(t, h, testEnvelope("e1", 1, 5)); !ack.Duplicate {
		t.Fatal("stale epoch folded")
	}
	// Another edge has its own cursor.
	if rec, ack = postMerge(t, h, testEnvelope("e2", 1, 3)); rec.Code != http.StatusOK || ack.Duplicate {
		t.Fatalf("other edge epoch 1: %d, dup=%v", rec.Code, ack.Duplicate)
	}
	if got := root.Aggregate().Runs; got != 15 {
		t.Fatalf("runs: %d, want 15", got)
	}
	if got := root.m.mergeDuplicates.Value(); got != 2 {
		t.Fatalf("collect_merge_duplicates_total = %d, want 2", got)
	}
}

// TestMergeRejectsBadPushes covers the shape-authentication surface of
// /merge: malformed envelopes, wrong method, and program / counter /
// span disagreements are all 4xx rejections that never touch state.
func TestMergeRejectsBadPushes(t *testing.T) {
	root := NewServer("p", 3, AggregateOnly)
	root.AcceptMerges = true
	h := root.Handler()

	expect := func(payload []byte, want int, why string) {
		t.Helper()
		rec, _ := postMerge(t, h, payload)
		if rec.Code != want {
			t.Errorf("%s: status %d, want %d", why, rec.Code, want)
		}
	}

	expect([]byte("not a merge envelope"), http.StatusBadRequest, "garbage body")
	expect(nil, http.StatusBadRequest, "empty body")

	// Truncated envelope: valid magic, torn payload.
	good := testEnvelope("e1", 1, 2)
	expect(good[:len(good)-3], http.StatusBadRequest, "truncated envelope")

	// Wrong version byte.
	bad := append([]byte{}, good...)
	bad[4] = 99
	expect(bad, http.StatusBadRequest, "wrong version")

	// Program mismatch.
	env := &mergeEnvelope{edgeID: "e1", epoch: 1, program: "other", numCounters: 3}
	expect(encodeMergeEnvelope(env), http.StatusBadRequest, "program mismatch")

	// Counter-shape mismatch.
	env = &mergeEnvelope{edgeID: "e1", epoch: 1, program: "p", numCounters: 99}
	expect(encodeMergeEnvelope(env), http.StatusBadRequest, "counter mismatch")

	// Span-cardinality mismatch (root has no site spans).
	env = &mergeEnvelope{edgeID: "e1", epoch: 1, program: "p", numCounters: 3, numSpans: 4}
	expect(encodeMergeEnvelope(env), http.StatusBadRequest, "span mismatch")

	// Aggregate section disagreeing with the envelope's shape claim.
	wrong := report.NewAggregate("p", 7)
	wrong.Runs = 1
	env = &mergeEnvelope{edgeID: "e1", epoch: 1, program: "p", numCounters: 3, aggRaw: wrong.EncodeStats()}
	expect(encodeMergeEnvelope(env), http.StatusBadRequest, "aggregate/envelope shape disagreement")

	// Wrong method.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/merge", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /merge: %d", rec.Code)
	}

	if got := root.Aggregate().Runs; got != 0 {
		t.Fatalf("rejected pushes mutated state: %d runs", got)
	}
	if got := root.m.mergeRejected.Value(); got == 0 {
		t.Fatal("collect_merge_rejected_total not incremented")
	}
}

// TestEdgeStopMidPushLosesNoAcknowledgedReport is the edge half of the
// shutdown-drain contract: reports acknowledged with a 202 while the
// edge is being stopped mid-burst must all reach the root — Stop drains
// the staging rings, then runs a final cut-and-push flush.
func TestEdgeStopMidPushLosesNoAcknowledgedReport(t *testing.T) {
	root := NewServer("p", 3, AggregateOnly)
	root.AcceptMerges = true
	rootAddr, err := root.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Stop()

	edge := newTestEdge(t, rootAddr, "edge-stop")
	edge.Federation.Interval = 2 * time.Millisecond // push continuously under the burst
	edgeAddr, err := edge.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + edgeAddr

	// A batch whose connection died mid-request is undetermined: the
	// edge may have folded it and closed the connection before the 202
	// made it back. Each worker stops at its first error, so at most one
	// batch per worker is in that state.
	var acked, undetermined atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 5 * time.Second}
			for seq := 0; seq < 100000; seq++ {
				reps := make([]*report.Report, 8)
				for j := range reps {
					reps[j] = mkReport(uint64(w)<<32|uint64(seq*8+j), j == 0)
				}
				resp, err := hc.Post(base+"/reports", "application/octet-stream",
					bytes.NewReader(report.EncodeBatch(reps)))
				if err != nil {
					undetermined.Add(8)
					return // edge gone: the burst outlived Stop
				}
				code := resp.StatusCode
				resp.Body.Close()
				switch code {
				case http.StatusAccepted:
					acked.Add(8)
				case http.StatusServiceUnavailable:
					// Shed: not acknowledged, keep going.
				default:
					t.Errorf("unexpected status %d", code)
					return
				}
			}
		}(w)
	}
	time.Sleep(15 * time.Millisecond) // let pushes interleave with ingest
	if err := edge.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	got := root.Aggregate().Runs
	lo, hi := int(acked.Load()), int(acked.Load()+undetermined.Load())
	if got < lo {
		t.Fatalf("root has %d runs, edge acknowledged %d — acked reports lost", got, lo)
	}
	if got > hi {
		t.Fatalf("root has %d runs, at most %d were submitted — reports double-counted", got, hi)
	}
}

// TestRootStopMidMergeNeverDoubleCounts is the root half: killing the
// root while an edge is pushing cannot lose an acked epoch or fold one
// twice. The accounting invariant is
//
//	root runs == runs cut at the edge - runs still pending (unacked)
//
// which fails low if an acked epoch was dropped and fails high if a
// push was folded twice.
func TestRootStopMidMergeNeverDoubleCounts(t *testing.T) {
	root := NewServer("p", 3, AggregateOnly)
	root.AcceptMerges = true
	rootAddr, err := root.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	edge := newTestEdge(t, rootAddr, "edge-rootstop")
	edge.Federation.MaxPending = 1 << 10

	// Feed and push concurrently with the root's shutdown: some pushes
	// land, some hit the dying server and stay pending.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := uint64(0)
		for i := 0; i < 40; i++ {
			for j := 0; j < 25; j++ {
				id++
				if err := edge.Submit(mkReport(id, id%5 == 0)); err != nil {
					t.Error(err)
					return
				}
			}
			_ = edge.FederateNow() // failures expected once the root stops
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := root.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	f := edge.fed
	f.mu.Lock()
	cutRuns := 0
	if f.baseAgg != nil {
		cutRuns = f.baseAgg.Runs
	}
	pendingRuns := 0
	for _, p := range f.pending {
		env, err := decodeMergeEnvelope(p.payload)
		if err != nil {
			t.Fatalf("pending payload corrupt: %v", err)
		}
		if env.aggRaw != nil {
			agg, err := report.DecodeAggregateStats(env.aggRaw)
			if err != nil {
				t.Fatalf("pending aggregate corrupt: %v", err)
			}
			pendingRuns += agg.Runs
		}
	}
	f.mu.Unlock()

	if got, want := root.Aggregate().Runs, cutRuns-pendingRuns; got != want {
		t.Fatalf("root has %d runs; edge cut %d with %d unacked — want %d",
			got, cutRuns, pendingRuns, want)
	}
	// The edge itself lost nothing: its own state still covers every
	// acked submission, and Stop (with the root down) keeps the unacked
	// epochs pending rather than dropping them.
	if err := edge.Stop(); err != nil {
		t.Fatal(err)
	}
}
