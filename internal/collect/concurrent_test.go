package collect

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"cbi/internal/report"
)

// serialAggregate folds reports one by one — the reference the sharded
// server must match exactly.
func serialAggregate(t *testing.T, reports []*report.Report) *report.Aggregate {
	t.Helper()
	agg := report.NewAggregate("p", 3)
	for _, r := range reports {
		if err := agg.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	return agg
}

func assertSameAggregate(t *testing.T, got, want *report.Aggregate) {
	t.Helper()
	if got.Runs != want.Runs || got.Crashes != want.Crashes || got.NumCounters != want.NumCounters {
		t.Fatalf("got runs=%d crashes=%d shape=%d, want runs=%d crashes=%d shape=%d",
			got.Runs, got.Crashes, got.NumCounters, want.Runs, want.Crashes, want.NumCounters)
	}
	for i := 0; i < want.NumCounters; i++ {
		if got.Totals[i] != want.Totals[i] ||
			got.NonzeroInSuccess[i] != want.NonzeroInSuccess[i] ||
			got.NonzeroInFailure[i] != want.NonzeroInFailure[i] {
			t.Fatalf("counter %d diverges", i)
		}
	}
}

// TestConcurrentShardedIngestMatchesSerialFold hammers Submit and the
// batched /reports endpoint from many goroutines in both retention
// modes, then checks the merged aggregate is identical to a serial fold
// of the same reports — the order-freedom that makes sharding legal.
func TestConcurrentShardedIngestMatchesSerialFold(t *testing.T) {
	for _, mode := range []Mode{StoreAll, AggregateOnly} {
		name := map[Mode]string{StoreAll: "StoreAll", AggregateOnly: "AggregateOnly"}[mode]
		t.Run(name, func(t *testing.T) {
			const workers, per = 8, 50
			var all []*report.Report
			for id := 0; id < workers*per; id++ {
				all = append(all, mkReport(uint64(id), id%5 == 0))
			}

			srv := NewServer("p", 3, mode)
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Stop()

			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					mine := all[w*per : (w+1)*per]
					if w%2 == 0 {
						// Direct in-process submission.
						for _, r := range mine {
							if err := srv.Submit(r); err != nil {
								errs <- err
								return
							}
						}
						return
					}
					// Batched HTTP ingest, ten reports per POST.
					client := NewClient("http://" + addr)
					client.BatchSize = 10
					for _, r := range mine {
						if err := client.Submit(r); err != nil {
							errs <- err
							return
						}
					}
					if err := client.Flush(context.Background()); err != nil {
						errs <- err
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			assertSameAggregate(t, srv.Aggregate(), serialAggregate(t, all))
			if mode == StoreAll {
				db := srv.DB()
				if db.Len() != len(all) {
					t.Fatalf("stored %d reports, want %d", db.Len(), len(all))
				}
				// Snapshot is merged in run-ID order, deterministically.
				for i, r := range db.Reports {
					if r.RunID != uint64(i) {
						t.Fatalf("report %d has run ID %d; snapshot not in run-ID order", i, r.RunID)
					}
				}
			} else if srv.DB().Len() != 0 {
				t.Error("aggregate-only server must not retain reports")
			}
		})
	}
}

func TestBatchEndpointAcceptsAndCounts(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	client := NewClient("http://" + addr)
	client.BatchSize = 8
	for i := 0; i < 20; i++ {
		if err := client.Submit(mkReport(uint64(i), i%4 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if p := client.Pending(); p != 4 {
		t.Errorf("pending = %d, want 4 (two batches of 8 shipped)", p)
	}
	if err := client.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := client.Pending(); p != 0 {
		t.Errorf("pending after flush = %d", p)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 20 || st.Crashes != 5 {
		t.Errorf("stats: %+v", st)
	}
	if st.Batches != 3 || st.BatchReports != 20 {
		t.Errorf("batch totals: batches=%d reports=%d, want 3/20", st.Batches, st.BatchReports)
	}
	if st.NumCounters != 3 {
		t.Errorf("num_counters = %d, want 3", st.NumCounters)
	}
	if got := srv.Registry().Histogram("collect_batch_reports", BatchSizeBuckets).Count(); got != 3 {
		t.Errorf("batch size histogram count = %d, want 3", got)
	}
}

// TestBatchRejectionIsAtomic: one bad report rejects the whole batch and
// nothing from it is folded.
func TestBatchRejectionIsAtomic(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	batch := []*report.Report{
		mkReport(1, false),
		{RunID: 2, Program: "p", Counters: make([]uint64, 99)}, // wrong shape
		mkReport(3, false),
	}
	resp, err := http.Post("http://"+addr+"/reports", "application/octet-stream",
		bytes.NewReader(report.EncodeBatch(batch)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed batch: %s, want 400", resp.Status)
	}
	if got := srv.Aggregate().Runs; got != 0 {
		t.Errorf("rejected batch folded %d reports", got)
	}
}

func TestBatchEndpointAcceptsSingleReportFraming(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	resp, err := http.Post("http://"+addr+"/reports", "application/octet-stream",
		bytes.NewReader(mkReport(7, true).Encode()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("single-report framing on /reports: %s", resp.Status)
	}
	if srv.Aggregate().Runs != 1 {
		t.Error("report not folded")
	}
}

func TestOversizeBodyRejectedWith413(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	for _, path := range []string{"/report", "/reports"} {
		// A valid report padded far past the limit exercises the
		// oversize rejection, not the decoder.
		huge := make([]byte, MaxBodyBytes+2)
		resp, err := http.Post("http://"+addr+path, "application/octet-stream",
			bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversize: %s, want 413", path, resp.Status)
		}
	}
	if got := srv.Registry().Counter(`collect_reports_rejected_total{reason="too-large"}`).Value(); got != 2 {
		t.Errorf(`too-large rejection counter = %d, want 2`, got)
	}
	if got := srv.Registry().Counter(`collect_reports_rejected_total{reason="decode"}`).Value(); got != 0 {
		t.Errorf("oversize misreported as decode error (%d)", got)
	}
}

func TestStatsRequiresGET(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	resp, err := http.Post("http://"+addr+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats: %s, want 405", resp.Status)
	}
}

// TestShardCountIsConfigurable pins the Shards override and the
// power-of-two rounding.
func TestShardCountIsConfigurable(t *testing.T) {
	for _, tc := range []struct{ set, want int }{{1, 1}, {4, 4}, {5, 8}, {1 << 20, maxShards}} {
		srv := NewServer("p", 3, AggregateOnly)
		srv.Shards = tc.set
		if err := srv.Submit(mkReport(1, false)); err != nil {
			t.Fatal(err)
		}
		if got := len(srv.shards); got != tc.want {
			t.Errorf("Shards=%d: %d shards, want %d", tc.set, got, tc.want)
		}
		if got := int(srv.Registry().Gauge("collect_shards").Value()); got != tc.want {
			t.Errorf("Shards=%d: collect_shards gauge = %d, want %d", tc.set, got, tc.want)
		}
	}
}

// TestShardsSpreadRuns sanity-checks the run-ID hash: a contiguous fleet
// must not land every report on one stripe.
func TestShardsSpreadRuns(t *testing.T) {
	srv := NewServer("p", 3, AggregateOnly)
	srv.Shards = 8
	for id := 0; id < 800; id++ {
		if err := srv.Submit(mkReport(uint64(id), false)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range srv.shards {
		if n := srv.shards[i].agg.Runs; n == 0 || n == 800 {
			t.Errorf("shard %d holds %d of 800 runs; hash not spreading", i, n)
		}
	}
	if srv.Aggregate().Runs != 800 {
		t.Errorf("merged runs = %d", srv.Aggregate().Runs)
	}
}

// TestAcceptAnyShapeIsSharedAcrossShards: an "accept any" server must
// fix one counter shape for every shard, even under concurrency.
func TestAcceptAnyShapeIsSharedAcrossShards(t *testing.T) {
	srv := NewServer("", 0, AggregateOnly)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// Every goroutine submits 3-counter reports; losers of the
				// shape race must still agree.
				_ = srv.Submit(mkReport(uint64(w*25+i), false))
			}
		}(w)
	}
	wg.Wait()
	agg := srv.Aggregate()
	if agg.NumCounters != 3 || agg.Runs != 200 {
		t.Errorf("adopted shape %d with %d runs, want 3/200", agg.NumCounters, agg.Runs)
	}
	// A mismatched report is now rejected everywhere.
	bad := &report.Report{RunID: 999, Counters: make([]uint64, 7)}
	if err := srv.Submit(bad); err == nil {
		t.Error("mismatched report accepted after shape adoption")
	}
}

func BenchmarkShardedSubmit(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv := NewServer("p", 3, AggregateOnly)
			srv.Shards = shards
			b.RunParallel(func(pb *testing.PB) {
				id := uint64(0)
				for pb.Next() {
					id++
					if err := srv.Submit(mkReport(id, id%5 == 0)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
