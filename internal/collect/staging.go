// Staged ingest: the lock-free hot path between the HTTP handlers and
// the shard folds.
//
// With Staging on (the default), /report and /reports handlers only
// decode, validate, and enqueue into fixed-size per-shard MPSC ring
// buffers — no mutex on the producer side. One background folder
// goroutine per shard drains its ring in batches and performs the
// agg/accum/DB folds under the shard lock, amortizing one lock
// acquisition over a whole batch. The idiom is the biscuit kernel's
// bounded circular trap buffer: a hot producer decoupled from a slower
// consumer by atomic head/tail cursors over a power-of-two slot array.
//
// Under overload the ring applies back-pressure instead of growing:
// producers spin briefly, then park in short sleeps up to StageWait,
// then shed the request with 503 + Retry-After. Memory is bounded by
// the ring capacity and throughput degrades to fast rejection, never to
// unbounded queueing — the shed-never-block invariant (DESIGN §13).
//
// Every snapshot consumer passes through drainStaging, a barrier that
// waits until all reports enqueued before the call have folded, so each
// published snapshot remains a serial fold of a definite report subset
// (DESIGN §13 extends §11's argument). Reordering relative to arrival
// is legal because the §2.5 feedback statistics are order-free.
package collect

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"cbi/internal/report"
	"cbi/internal/telemetry/trace"
)

const (
	// defaultStageCapacity is the per-shard ring size when the server
	// does not set StageCapacity.
	defaultStageCapacity = 1024
	// defaultStageWait bounds how long an enqueue waits for ring space
	// before shedding, when the server does not set StageWait.
	defaultStageWait = 100 * time.Millisecond
	// stageFoldBatch caps how many reports a folder drains per lock
	// acquisition: large enough to amortize the lock, small enough that
	// producers regain ring space promptly.
	stageFoldBatch = 256
	// stageSpin is how many Gosched yields a blocked producer burns
	// before falling back to parked sleeps.
	stageSpin = 64
	// stagePark is the sleep quantum of a parked producer; with the
	// folder freeing hundreds of slots per wake, a handful of parks
	// cover any transient ring-full episode.
	stagePark = 50 * time.Microsecond
	// shedRetryAfter is the Retry-After value (seconds) on a 503: long
	// enough for the folders to turn over the rings several times.
	shedRetryAfter = "1"
)

// stageItem is one enqueued report: the decoded report plus the
// server.ingest span the folder parents its server.fold span to (nil
// without a Tracer).
type stageItem struct {
	rep  *report.Report
	span *trace.Span
}

type stageSlot struct {
	// seq publishes the slot: a producer that reserved absolute
	// position p stores p+1 after writing item, and the folder reads
	// item only once it observes p+1. Freshness across laps needs no
	// reset — position p+cap waits for p+cap+1, which only its own
	// producer ever stores.
	seq  atomic.Uint64
	item stageItem
}

// stageRing is a bounded multi-producer single-consumer queue. head and
// tail are absolute (monotonically increasing) positions; slot index is
// position & mask. Producers CAS-reserve [head, head+n) after checking
// head+n-tail <= capacity, so a reserved slot is always free: tail only
// advances after the folder has copied a slot out. The cursors live on
// separate cache lines so producer CAS traffic does not bounce the
// consumer's line.
type stageRing struct {
	slots []stageSlot
	mask  uint64
	_     [40]byte
	head  atomic.Uint64 // next position producers reserve
	_     [56]byte
	tail atomic.Uint64 // next position the folder copies out
	// folded trails tail: it advances only after the copied reports
	// have been folded into shard state, so folded >= h proves every
	// report enqueued before head reached h is visible in snapshots.
	folded atomic.Uint64
	_      [40]byte
	// kick wakes the folder; capacity 1 so a burst of publishes
	// coalesces into one pending wake.
	kick chan struct{}
}

func newStageRing(capacity int) stageRing {
	return stageRing{
		slots: make([]stageSlot, capacity),
		mask:  uint64(capacity - 1),
		kick:  make(chan struct{}, 1),
	}
}

// tryReserve claims n contiguous slots, returning the first absolute
// position. It fails (without blocking) when the ring lacks space.
func (r *stageRing) tryReserve(n int) (uint64, bool) {
	for {
		head := r.head.Load()
		if head+uint64(n)-r.tail.Load() > uint64(len(r.slots)) {
			return 0, false
		}
		if r.head.CompareAndSwap(head, head+uint64(n)) {
			return head, true
		}
	}
}

// publish writes one reserved slot and makes it visible to the folder.
func (r *stageRing) publish(pos uint64, it stageItem) {
	slot := &r.slots[pos&r.mask]
	slot.item = it
	slot.seq.Store(pos + 1)
}

// wake nudges the folder without blocking.
func (r *stageRing) wake() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// drainInto copies up to len(buf) contiguously published items out of
// the ring and frees their slots. Single consumer only. It stops at the
// first unpublished slot (a producer mid-publish), which preserves
// reservation order.
func (r *stageRing) drainInto(buf []stageItem) int {
	tail := r.tail.Load()
	n := 0
	for n < len(buf) {
		slot := &r.slots[(tail+uint64(n))&r.mask]
		if slot.seq.Load() != tail+uint64(n)+1 {
			break
		}
		buf[n] = slot.item
		slot.item = stageItem{} // release report/span references
		n++
	}
	if n > 0 {
		r.tail.Store(tail + uint64(n))
	}
	return n
}

// pendingBefore reports whether any report enqueued before the captured
// head position has not yet been folded.
func (r *stageRing) pendingBefore(h uint64) bool { return r.folded.Load() < h }

// ----------------------------------------------------------------------------
// Server-side wiring

// stagingActive reports whether handlers should enqueue rather than
// fold inline. After Stop the folders are gone, so late handler calls
// (tests driving a stopped server's Handler directly) fall back to the
// synchronous path instead of stranding reports in the rings.
func (s *Server) stagingActive() bool {
	return s.rings != nil && !s.stageStopped.Load()
}

// initStaging allocates the rings and launches one folder per shard.
// Called under initOnce, before the Monitor starts (its snapshot worker
// calls drainStaging through ScoreState).
func (s *Server) initStaging() {
	capacity := s.StageCapacity
	if capacity <= 0 {
		capacity = defaultStageCapacity
	}
	if capacity&(capacity-1) != 0 {
		capacity = 1 << bits.Len(uint(capacity))
	}
	s.stageCap = capacity
	s.stageWaitFor = s.StageWait
	if s.stageWaitFor == 0 {
		s.stageWaitFor = defaultStageWait
	}
	s.rings = make([]stageRing, len(s.shards))
	for i := range s.rings {
		s.rings[i] = newStageRing(capacity)
	}
	s.reg.Gauge("collect_stage_capacity").Set(float64(capacity))
	s.reg.Gauge("collect_stage_rings").Set(float64(len(s.rings)))
	s.stageStop = make(chan struct{})
	s.stageWG.Add(len(s.rings))
	for i := range s.rings {
		go s.foldLoop(i)
	}
}

// stageEnqueue places reps — already validated — onto ring r as one
// atomic reservation: the whole batch lands or none of it does, so a
// shed request leaves no partial state and the client can safely retry
// it wholesale. It waits (spin, then parked sleeps) up to StageWait for
// space and returns false when the ring stayed full past the deadline.
func (s *Server) stageEnqueue(r *stageRing, reps []*report.Report, span *trace.Span) bool {
	pos, ok := r.tryReserve(len(reps))
	if !ok {
		s.m.stageWaits.Inc()
		var deadline time.Time // set lazily: the spin phase usually wins
		for spin := 0; ; spin++ {
			if spin < stageSpin {
				runtime.Gosched()
			} else {
				if deadline.IsZero() {
					if s.stageWaitFor < 0 { // shed immediately once the spin is spent
						return false
					}
					deadline = time.Now().Add(s.stageWaitFor)
				} else if !time.Now().Before(deadline) {
					return false
				}
				time.Sleep(stagePark)
			}
			if pos, ok = r.tryReserve(len(reps)); ok {
				break
			}
		}
	}
	for i, rep := range reps {
		r.publish(pos+uint64(i), stageItem{rep: rep, span: span})
	}
	r.wake()
	return true
}

// foldLoop is shard i's background folder: it drains ring i in batches
// and folds them into shard i's state under one lock acquisition per
// batch. Which shard a staged report folds into is irrelevant to every
// snapshot — the statistics are order-free and snapshots merge all
// shards — so the folder never re-hashes by run ID.
func (s *Server) foldLoop(i int) {
	defer s.stageWG.Done()
	r := &s.rings[i]
	sh := &s.shards[i]
	sc := &folderScratch{
		buf:   make([]stageItem, stageFoldBatch),
		spans: make([]*trace.Span, stageFoldBatch),
	}
	for {
		n := r.drainInto(sc.buf)
		if n == 0 {
			select {
			case <-r.kick:
				continue
			case <-s.stageStop:
				// Stop drains before signaling, but sweep once more in
				// case a straggling handler raced the stop flag.
				for {
					if n := r.drainInto(sc.buf); n == 0 {
						return
					}
					s.foldStaged(r, sh, sc, n)
				}
			}
		}
		s.foldStaged(r, sh, sc, n)
	}
}

// folderScratch is one folder goroutine's reusable working memory: the
// drain buffer, the per-batch merged statistics, and the per-report
// fold-span slots. Owned by exactly one foldLoop, never shared.
type folderScratch struct {
	buf   []stageItem
	bs    report.BatchStats
	spans []*trace.Span
}

// foldStaged folds one drained batch under a single shard-lock
// acquisition, then advances the ring's folded cursor — the order that
// makes the drain barrier sound: a snapshot that observed folded >= h
// sees every fold (and its trace span) from positions below h.
//
// When the server has no site spans configured, the batch is pre-merged
// into per-counter deltas outside the lock (report.BatchStats) and
// applied with one pass per consumer structure — bit-identical to
// per-report folds because every statistic is an order-free integer
// sum, but traversing each report's nonzeros once instead of once per
// structure and touching the big per-counter arrays once per distinct
// index per batch. Site-span accumulators count per-report site
// observations, which a per-counter merge cannot reconstruct, so they
// take the per-report path.
func (s *Server) foldStaged(r *stageRing, sh *ingestShard, sc *folderScratch, n int) {
	items := sc.buf[:n]
	if len(s.Sites) == 0 && n > 1 {
		s.foldStagedMerged(sh, sc, items)
	} else {
		sh.mu.Lock()
		for idx := range items {
			it := &items[idx]
			foldSpan := it.span.StartChild("server.fold")
			t0 := time.Now()
			err := s.foldShardLocked(sh, it.rep)
			s.m.foldSeconds.Observe(time.Since(t0).Seconds())
			foldSpan.End()
			if err != nil {
				// Unreachable: the handler validated before enqueueing, and
				// validation pins the one shape and program every shard folds.
				panic(fmt.Sprintf("collect: staged fold: %v", err))
			}
		}
		sh.mu.Unlock()
	}
	s.m.stageBatches.Observe(float64(len(items)))
	for range items {
		s.Monitor.ReportFolded()
	}
	r.folded.Add(uint64(len(items)))
}

// foldStagedMerged is the batch-amortized fold path. The merge runs
// outside the shard lock; the lock is held only for the per-index
// apply (and the DB appends in StoreAll mode). fold_seconds keeps its
// per-report semantics — each report observes its share of the batch
// fold time, so the histogram count stays "reports folded" and the sum
// stays "seconds spent folding" in both fold paths.
func (s *Server) foldStagedMerged(sh *ingestShard, sc *folderScratch, items []stageItem) {
	t0 := time.Now()
	sc.bs.Reset(len(items[0].rep.Counters))
	for idx := range items {
		it := &items[idx]
		sc.spans[idx] = it.span.StartChild("server.fold")
		if err := sc.bs.Observe(it.rep); err != nil {
			// Unreachable: validation pinned one shape before enqueue.
			panic(fmt.Sprintf("collect: staged fold: %v", err))
		}
	}
	sh.mu.Lock()
	errAgg := sh.agg.FoldBatch(&sc.bs)
	var errAcc error
	if sh.acc != nil {
		errAcc = sh.acc.FoldBatch(&sc.bs)
	}
	var errDB error
	if s.mode == StoreAll {
		if sh.db.NumCounters == 0 {
			sh.db.NumCounters = sh.agg.NumCounters
		}
		for idx := range items {
			if errDB = sh.db.Add(items[idx].rep); errDB != nil {
				break
			}
		}
	}
	sh.mu.Unlock()
	if errAgg != nil || errAcc != nil || errDB != nil {
		// Unreachable, as in the per-report path.
		panic(fmt.Sprintf("collect: staged batch fold: %v %v %v", errAgg, errAcc, errDB))
	}
	share := time.Since(t0).Seconds() / float64(len(items))
	for idx := range items {
		s.m.foldSeconds.Observe(share)
		sc.spans[idx].End()
		sc.spans[idx] = nil
	}
}

// drainStaging is the snapshot drain barrier: it blocks until every
// report enqueued before the call has been folded into shard state.
// Each published snapshot (Aggregate, DB, ScoreState, ScoreStateAndDB,
// fresh /stats, /quality) is therefore a serial fold of a definite
// subset of the accepted reports — exactly the reports whose 202 was
// sent before the barrier, plus possibly some newer ones. No-op when
// staging is off.
func (s *Server) drainStaging() {
	if s.rings == nil {
		return
	}
	for i := range s.rings {
		r := &s.rings[i]
		h := r.head.Load()
		if !r.pendingBefore(h) {
			continue
		}
		r.wake()
		for spin := 0; r.pendingBefore(h); spin++ {
			if spin < stageSpin {
				runtime.Gosched()
			} else {
				time.Sleep(stagePark)
			}
		}
	}
}

// stopStaging drains the rings and retires the folder goroutines; part
// of Stop, after the HTTP server has shut down (so no handler is still
// enqueueing) and before the Monitor stops (folders notify it).
func (s *Server) stopStaging() {
	if s.rings == nil {
		return
	}
	s.stageStopOnce.Do(func() {
		s.stageStopped.Store(true)
		s.drainStaging()
		close(s.stageStop)
	})
	s.stageWG.Wait()
}
