// Federated collection: the tree tier between edge collectors and a
// root collector.
//
// Feedback reports are order-free sufficient statistics (DESIGN §8), so
// collection composes hierarchically: N edge collectors ingest reports
// exactly as a standalone server does, and periodically push *delta
// merges* of their state — report.Aggregate + score.Accum + the quality
// engine's exact-counter digest — upstream to a root collector's /merge
// endpoint. The root folds each delta into its own shards and serves
// the usual /stats, /rankings, /watch, and /quality surfaces from the
// merged state, so live triage and population health work unchanged at
// tree scale.
//
// The wire format is the "CBA1" envelope: magic, version, edge
// identity, epoch cursor, shape claim (program, counter count, site
// span count), then tagged length-prefixed sections. Receivers skip
// unknown tags, so the envelope can grow new sections without breaking
// old roots. The endpoint is authenticated by shape, like report
// ingest: a delta folds only if its program, counter count, and span
// cardinality match the root's expectation (adopted from the first
// contact when the root is started "accept any").
//
// Exactly-once folding comes from epoch cursors, not idempotent
// payloads: each cut increments the edge's epoch, the payload bytes for
// an epoch never change once cut, pushes go upstream strictly in epoch
// order and stop at the first failure, and the root folds an edge's
// epoch only if it is greater than the last epoch it has seen from that
// edge (answering duplicates with an ack but no fold). A push whose ack
// was lost is therefore safe to repeat verbatim, and a spill-enabled
// edge that crashes and restarts re-pushes its persisted unacked epochs
// without double-counting. The merge-legality and crash-recovery
// arguments live in DESIGN §14.
package collect

import (
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/quality"
	"cbi/internal/report"
)

// Federation configures a server as an edge of a collector tree. Set
// before the first submission or Handler call; a server with a non-nil
// Federation starts a background loop that cuts and pushes deltas.
type Federation struct {
	// Parent is the base URL of the upstream collector
	// (e.g. "http://root:8123"). Required.
	Parent string
	// EdgeID is this edge's stable identity at the root; the root's
	// epoch dedup cursor is per-EdgeID, so it must be unique in the
	// tree. Empty means: reuse the identity persisted in SpillDir if
	// there is one, else generate a random one.
	EdgeID string
	// Interval is the cut-and-push cadence (default 1s).
	Interval time.Duration
	// MaxPending caps unacknowledged epochs held in memory (and in the
	// spill state file). When the parent is unreachable long enough to
	// hit the cap, the edge stops cutting new epochs — deltas simply
	// accumulate into the next cut, so nothing is lost, the edge just
	// coarsens — and resumes once pushes drain (default 64).
	MaxPending int
	// HTTP is the client used for pushes (default: 30s timeout).
	HTTP *http.Client
}

// fedPending is one cut-but-unacknowledged epoch: the exact payload
// bytes to (re)push. Payloads are immutable once cut — that is what
// makes a repeated push of the same epoch safe.
type fedPending struct {
	epoch   uint64
	payload []byte
}

// fedState is the edge-side runtime of the federation loop.
type fedState struct {
	// mu serializes cut/push/flush cycles (the background loop,
	// FederateNow, and the Stop flush).
	mu         sync.Mutex
	edgeID     string
	epoch      uint64 // last cut epoch
	baseAgg    *report.Aggregate
	baseAcc    *score.Accum
	baseQual   quality.Digest
	pending    []fedPending
	interval   time.Duration
	maxPending int
	parent     string
	client     *http.Client
	stop       chan struct{}
	stopOnce   sync.Once
	done       chan struct{}
}

// ----------------------------------------------------------------------------
// CBA1 envelope codec

var mergeMagic = []byte("CBA1")

const (
	mergeVersion     = 1
	mergeSectionAgg  = 1 // report.Aggregate.EncodeStats
	mergeSectionAcc  = 2 // score.Accum.EncodeStats
	mergeSectionQual = 3 // quality.Digest.Encode
	maxMergeSections = 64
)

// ErrBadMerge is returned when a merge envelope is malformed.
var ErrBadMerge = errors.New("collect: malformed merge envelope")

type wireEnc struct{ buf []byte }

func (e *wireEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *wireEnc) byteVal(b byte)   { e.buf = append(e.buf, b) }
func (e *wireEnc) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

type wireDec struct {
	buf []byte
	off int
	err bool
}

func (d *wireDec) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = true
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) byteVal() byte {
	if d.err || d.off >= len(d.buf) {
		d.err = true
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *wireDec) bytes() []byte {
	size := d.uvarint()
	if d.err || size > uint64(len(d.buf)-d.off) {
		d.err = true
		return nil
	}
	b := d.buf[d.off : d.off+int(size)]
	d.off += int(size)
	return b
}

// mergeEnvelope is a decoded "CBA1" push: identity, epoch cursor, shape
// claim, and the raw section payloads (decoded lazily by the receiver,
// which supplies its own site spans to the Accum codec).
type mergeEnvelope struct {
	edgeID      string
	epoch       uint64
	program     string
	numCounters int
	numSpans    int
	aggRaw      []byte
	accRaw      []byte
	qualRaw     []byte
}

func encodeMergeEnvelope(env *mergeEnvelope) []byte {
	e := &wireEnc{buf: append([]byte(nil), mergeMagic...)}
	e.byteVal(mergeVersion)
	e.bytes([]byte(env.edgeID))
	e.uvarint(env.epoch)
	e.bytes([]byte(env.program))
	e.uvarint(uint64(env.numCounters))
	e.uvarint(uint64(env.numSpans))
	sections := 0
	for _, raw := range [][]byte{env.aggRaw, env.accRaw, env.qualRaw} {
		if raw != nil {
			sections++
		}
	}
	e.uvarint(uint64(sections))
	emit := func(tag byte, raw []byte) {
		if raw != nil {
			e.byteVal(tag)
			e.bytes(raw)
		}
	}
	emit(mergeSectionAgg, env.aggRaw)
	emit(mergeSectionAcc, env.accRaw)
	emit(mergeSectionQual, env.qualRaw)
	return e.buf
}

func decodeMergeEnvelope(data []byte) (*mergeEnvelope, error) {
	if len(data) < len(mergeMagic) || !bytes.Equal(data[:len(mergeMagic)], mergeMagic) {
		return nil, ErrBadMerge
	}
	d := &wireDec{buf: data, off: len(mergeMagic)}
	if v := d.byteVal(); d.err || v != mergeVersion {
		return nil, fmt.Errorf("collect: merge envelope version %d, want %d", v, mergeVersion)
	}
	env := &mergeEnvelope{}
	env.edgeID = string(d.bytes())
	env.epoch = d.uvarint()
	env.program = string(d.bytes())
	env.numCounters = int(d.uvarint())
	env.numSpans = int(d.uvarint())
	sections := d.uvarint()
	if d.err || env.edgeID == "" || env.numCounters < 0 || env.numCounters > 1<<28 ||
		sections > maxMergeSections {
		return nil, ErrBadMerge
	}
	for i := uint64(0); i < sections; i++ {
		tag := d.byteVal()
		raw := d.bytes()
		if d.err {
			return nil, ErrBadMerge
		}
		switch tag {
		case mergeSectionAgg:
			env.aggRaw = raw
		case mergeSectionAcc:
			env.accRaw = raw
		case mergeSectionQual:
			env.qualRaw = raw
		default:
			// Unknown section: skip. A newer edge may ship state this
			// root does not understand yet; the sections it does know
			// still fold.
		}
	}
	if d.off != len(data) {
		return nil, ErrBadMerge
	}
	return env, nil
}

// ----------------------------------------------------------------------------
// Edge side: cut, push, lifecycle

func randomEdgeID() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("edge-%d", time.Now().UnixNano())
	}
	return "edge-" + hex.EncodeToString(b[:])
}

// initFederation wires the edge role; called once from init, after the
// spill state (if any) has been loaded — the persisted identity, epoch
// cursor, baselines, and unacked epochs carry across restarts so the
// root's dedup keeps working.
func (s *Server) initFederation() {
	cfg := s.Federation
	if cfg == nil {
		return
	}
	if cfg.Parent == "" {
		panic("collect: Federation.Parent is required")
	}
	f := &fedState{
		interval:   cfg.Interval,
		maxPending: cfg.MaxPending,
		parent:     cfg.Parent,
		client:     cfg.HTTP,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if f.interval <= 0 {
		f.interval = time.Second
	}
	if f.maxPending <= 0 {
		f.maxPending = 64
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: 30 * time.Second}
	}
	f.edgeID = cfg.EdgeID
	var restored *fedRestore
	if s.spill != nil {
		restored = s.spill.restored
	}
	if restored != nil && (f.edgeID == "" || f.edgeID == restored.edgeID) {
		f.edgeID = restored.edgeID
		f.epoch = restored.epoch
		f.baseAgg = restored.baseAgg
		f.baseAcc = restored.baseAcc
		f.baseQual = restored.baseQual
		f.pending = restored.pending
	}
	if f.edgeID == "" {
		f.edgeID = randomEdgeID()
	}
	s.fed = f
	s.reg.Gauge("collect_merge_epoch").Set(float64(f.epoch))
	s.reg.Gauge("collect_merge_pending_epochs").Set(float64(len(f.pending)))
	go s.runFederation()
}

func (s *Server) runFederation() {
	f := s.fed
	defer close(f.done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.mu.Lock()
			s.federateCut()
			s.federatePushAll()
			f.mu.Unlock()
		}
	}
}

// serverCut is a consistent snapshot of the server's mergeable state:
// each shard's aggregate and accumulator captured under one lock
// acquisition per shard, behind the staging drain barrier, plus the
// quality engine's exact-counter totals.
type serverCut struct {
	agg  *report.Aggregate
	acc  *score.Accum // nil when the server keeps no accumulators
	qual quality.Digest
}

// captureCut merges every shard into a fresh cut. The caller owns the
// result outright (nothing is shared with live shard state except the
// immutable span slice), so it can become the next diff baseline
// without cloning.
func (s *Server) captureCut() serverCut {
	s.drainStaging()
	agg := report.NewAggregate(s.program, int(s.shape.Load()))
	var acc *score.Accum
	if s.accumsEnabled() {
		acc = score.NewAccum(int(s.shape.Load()), s.Sites)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := agg.Merge(sh.agg)
		if err == nil && acc != nil && sh.acc != nil {
			err = acc.Merge(sh.acc)
		}
		sh.mu.Unlock()
		if err != nil {
			// Unreachable: validate() fixes one shape for every shard.
			panic(fmt.Sprintf("collect: cut merge: %v", err))
		}
	}
	return serverCut{agg: agg, acc: acc, qual: s.Quality.TotalsDigest()}
}

// federateCut captures the current state, diffs it against the last
// cut's baseline, and — when the delta is non-empty — seals it as the
// next epoch's immutable payload. With spill enabled the cut and the
// state persist happen under the spill write-gate, so the persisted
// seed always equals the new baseline and the truncated log only ever
// contains reports the seed already covers (AggregateOnly mode).
// Caller holds f.mu.
func (s *Server) federateCut() {
	f := s.fed
	if len(f.pending) >= f.maxPending {
		return
	}
	sp := s.spill
	if sp != nil {
		sp.gate.Lock()
		defer sp.gate.Unlock()
	}
	cut := s.captureCut()
	aggDelta, err := cut.agg.Diff(f.baseAgg)
	var accDelta *score.Accum
	if err == nil && cut.acc != nil {
		accDelta, err = cut.acc.Diff(f.baseAcc)
	}
	if err != nil {
		// Unreachable in a healthy edge: the baseline is a past capture
		// of the same monotone state. Surface loudly rather than ship a
		// corrupt delta.
		panic(fmt.Sprintf("collect: federate cut: %v", err))
	}
	qualDelta := cut.qual.Sub(f.baseQual)
	if aggDelta.Runs == 0 && qualDelta.IsZero() {
		return // nothing since the last cut; no epoch, no persist
	}
	f.epoch++
	env := &mergeEnvelope{
		edgeID:      f.edgeID,
		epoch:       f.epoch,
		program:     cut.agg.Program,
		numCounters: cut.agg.NumCounters,
		numSpans:    len(s.Sites),
	}
	if env.program == "" {
		env.program = s.program
	}
	if aggDelta.Runs > 0 {
		env.aggRaw = aggDelta.EncodeStats()
		if accDelta != nil {
			env.accRaw = accDelta.EncodeStats()
		}
	}
	if !qualDelta.IsZero() {
		env.qualRaw = qualDelta.Encode()
	}
	f.pending = append(f.pending, fedPending{epoch: f.epoch, payload: encodeMergeEnvelope(env)})
	f.baseAgg = cut.agg
	f.baseAcc = cut.acc
	f.baseQual = cut.qual
	if sp != nil {
		if err := s.persistSpillLocked(cut); err != nil {
			s.m.spillErrors.Inc()
		}
	}
	s.reg.Gauge("collect_merge_epoch").Set(float64(f.epoch))
	s.reg.Gauge("collect_merge_pending_epochs").Set(float64(len(f.pending)))
}

// federatePushAll ships unacked epochs strictly in order, stopping at
// the first failure (later epochs must not overtake an earlier one —
// the root folds only ascending epochs). Caller holds f.mu.
func (s *Server) federatePushAll() {
	f := s.fed
	acked := 0
	for len(f.pending) > 0 {
		if !s.federatePush(f.pending[0]) {
			break
		}
		f.pending = f.pending[1:]
		acked++
	}
	if acked > 0 {
		s.reg.Gauge("collect_merge_pending_epochs").Set(float64(len(f.pending)))
		if s.spill != nil {
			// Trim acked epochs from the persisted state so a restart
			// does not re-push them (harmless — the root answers
			// duplicates without folding — just wasteful). Seed and log
			// are untouched, so no gate is needed: f.mu already
			// serializes every state-file writer in federation mode.
			if err := s.writeSpillState(s.buildSpillState(serverCut{
				agg: f.baseAgg, acc: f.baseAcc, qual: f.baseQual,
			})); err != nil {
				s.m.spillErrors.Inc()
			}
		}
	}
}

// federatePush ships one epoch payload. Any outcome other than a 200
// ack counts as a failure and leaves the epoch pending for the next
// cycle; repeating the identical payload is safe (the root dedupes on
// the epoch cursor), so a push whose ack was lost in transit does not
// double-count.
func (s *Server) federatePush(p fedPending) bool {
	f := s.fed
	req, err := http.NewRequest(http.MethodPost, f.parent+"/merge", bytes.NewReader(p.payload))
	if err != nil {
		s.m.mergePushFailures.Inc()
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := f.client.Do(req)
	if err != nil {
		s.m.mergePushFailures.Inc()
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		s.m.mergePushFailures.Inc()
		return false
	}
	s.m.mergePushes.Inc()
	return true
}

// FederateNow forces one synchronous cut-and-push cycle, returning an
// error if any epoch remains unacknowledged afterwards. Tests and
// scripted drivers use it to flush an edge deterministically instead of
// waiting out the interval timer.
func (s *Server) FederateNow() error {
	s.init()
	f := s.fed
	if f == nil {
		return errors.New("collect: server has no federation configured")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.federateCut()
	s.federatePushAll()
	if n := len(f.pending); n > 0 {
		return fmt.Errorf("collect: %d epoch(s) still unacknowledged by %s", n, f.parent)
	}
	return nil
}

// stopFederation retires the push loop. With flush set it runs one
// final cut-and-push so state folded before Stop reaches the root when
// the parent is reachable; anything still unacked stays in the spill
// state (when enabled) for the next boot.
func (s *Server) stopFederation(flush bool) {
	f := s.fed
	if f == nil {
		return
	}
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	if flush {
		f.mu.Lock()
		s.federateCut()
		s.federatePushAll()
		f.mu.Unlock()
	}
}

// ----------------------------------------------------------------------------
// Root side: the /merge endpoint

// MergeAck is the JSON body a root answers a /merge push with.
type MergeAck struct {
	Edge      string `json:"edge"`
	Epoch     uint64 `json:"epoch"`
	Duplicate bool   `json:"duplicate"`
}

// mergeShardIndex pins an edge to one shard so its deltas never contend
// with other edges' merges (report ingest keeps its own run-ID hash).
func (s *Server) mergeShardIndex(edgeID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(edgeID))
	return h.Sum64() & s.shardMask
}

func (s *Server) rejectMerge(w http.ResponseWriter, code int, msg string) {
	s.m.mergeRejected.Inc()
	http.Error(w, msg, code)
}

// handleMerge folds one edge delta into the root's state. The endpoint
// is authenticated by shape — program, counter count, and site-span
// cardinality must match — and dedupes on the per-edge epoch cursor
// under mergeMu, so a replayed push acks without folding twice.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.rejectMerge(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes+1))
	if err != nil {
		s.rejectMerge(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > MaxBodyBytes {
		s.rejectMerge(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("merge body exceeds %d bytes", MaxBodyBytes))
		return
	}
	env, err := decodeMergeEnvelope(body)
	if err != nil {
		s.rejectMerge(w, http.StatusBadRequest, err.Error())
		return
	}
	s.init()
	// Shape authentication, mirroring validate(): an "accept any" root
	// adopts the first claimed shape atomically, then every later merge
	// must agree.
	if s.program != "" && env.program != "" && env.program != s.program {
		s.rejectMerge(w, http.StatusBadRequest,
			fmt.Sprintf("merge: program %q does not match collector %q", env.program, s.program))
		return
	}
	want := s.shape.Load()
	if want == 0 && env.numCounters > 0 {
		if !s.shape.CompareAndSwap(0, int64(env.numCounters)) {
			want = s.shape.Load()
		} else {
			want = int64(env.numCounters)
		}
	}
	if env.numCounters > 0 && int64(env.numCounters) != want {
		s.rejectMerge(w, http.StatusBadRequest,
			fmt.Sprintf("merge: counter shape %d, want %d", env.numCounters, want))
		return
	}
	if env.numSpans != len(s.Sites) {
		s.rejectMerge(w, http.StatusBadRequest,
			fmt.Sprintf("merge: %d site spans, want %d", env.numSpans, len(s.Sites)))
		return
	}
	var agg *report.Aggregate
	if env.aggRaw != nil {
		if agg, err = report.DecodeAggregateStats(env.aggRaw); err != nil {
			s.rejectMerge(w, http.StatusBadRequest, err.Error())
			return
		}
		if agg.NumCounters != env.numCounters {
			s.rejectMerge(w, http.StatusBadRequest, "merge: aggregate shape disagrees with envelope")
			return
		}
		agg.Program = env.program
	}
	var acc *score.Accum
	if env.accRaw != nil {
		if acc, err = score.DecodeAccumStats(env.accRaw, s.Sites); err != nil {
			s.rejectMerge(w, http.StatusBadRequest, err.Error())
			return
		}
		if acc.NumCounters != env.numCounters {
			s.rejectMerge(w, http.StatusBadRequest, "merge: accumulator shape disagrees with envelope")
			return
		}
	}
	var dig quality.Digest
	if env.qualRaw != nil {
		if dig, err = quality.DecodeDigest(env.qualRaw); err != nil {
			s.rejectMerge(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	s.mergeMu.Lock()
	last, seen := s.mergeSeen[env.edgeID]
	if seen && env.epoch <= last {
		s.mergeMu.Unlock()
		s.m.mergeDuplicates.Inc()
		writeMergeAck(w, MergeAck{Edge: env.edgeID, Epoch: env.epoch, Duplicate: true})
		return
	}
	sh := &s.shards[s.mergeShardIndex(env.edgeID)]
	sh.mu.Lock()
	if agg != nil {
		err = sh.agg.Merge(agg)
	}
	if err == nil && acc != nil && sh.acc != nil {
		err = sh.acc.Merge(acc)
	}
	sh.mu.Unlock()
	if err != nil {
		s.mergeMu.Unlock()
		s.rejectMerge(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.mergeSeen == nil {
		s.mergeSeen = make(map[string]uint64)
	}
	s.mergeSeen[env.edgeID] = env.epoch
	s.reg.Gauge("collect_merge_edges").Set(float64(len(s.mergeSeen)))
	s.mergeMu.Unlock()
	s.Quality.Absorb(dig)
	runs := 0
	if agg != nil {
		runs = agg.Runs
	}
	s.m.mergeRequests.Inc()
	s.m.mergeReports.Add(uint64(runs))
	s.Monitor.ReportsFolded(runs)
	if s.reg.LogEnabled() {
		s.reg.Event("merge_accepted", map[string]any{
			"edge": env.edgeID, "epoch": env.epoch, "runs": runs,
		})
	}
	writeMergeAck(w, MergeAck{Edge: env.edgeID, Epoch: env.epoch})
}

func writeMergeAck(w http.ResponseWriter, ack MergeAck) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ack)
}
