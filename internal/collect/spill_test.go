package collect

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cbi/internal/report"
)

// postAccepted posts one encoded report through the handler and reports
// whether the server acknowledged it with a 202.
func postAccepted(t *testing.T, h http.Handler, rep *report.Report) bool {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/report", bytes.NewReader(rep.Encode()))
	req.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code == http.StatusAccepted
}

// feedSpill posts n reports (IDs from+1..from+n) and fails the test on
// any shed — spill tests need a deterministic acknowledged set.
func feedSpill(t *testing.T, h http.Handler, from uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := from + uint64(i) + 1
		if !postAccepted(t, h, mkReport(id, id%4 == 0)) {
			t.Fatalf("report %d not accepted", id)
		}
	}
}

// TestSpillCrashReplayStoreAll kills a StoreAll collector abruptly and
// verifies a successor on the same spill directory rebuilds every
// acknowledged report from the append-only log: the 202 is durable
// across a crash, not just across a graceful Stop.
func TestSpillCrashReplayStoreAll(t *testing.T) {
	dir := t.TempDir()

	srv := NewServer("p", 3, StoreAll)
	srv.SpillDir = dir
	feedSpill(t, srv.Handler(), 0, 40)
	srv.Crash() // no drain, no snapshot, no flush

	again := NewServer("p", 3, StoreAll)
	again.SpillDir = dir
	defer again.Stop()
	if got := again.Aggregate().Runs; got != 40 {
		t.Fatalf("recovered %d runs, want 40", got)
	}
	if got := again.DB().Len(); got != 40 {
		t.Fatalf("recovered %d stored reports, want 40", got)
	}
	if got := again.m.spillReplayed.Value(); got != 40 {
		t.Fatalf("collect_spill_replayed_total = %d, want 40", got)
	}
}

// TestSpillSnapshotCompactsAggregateOnly checks the snapshot/compaction
// cycle: after a snapshot the log holds only reports accepted since,
// and recovery is seed (snapshot) plus replay (fresh log tail).
func TestSpillSnapshotCompactsAggregateOnly(t *testing.T) {
	dir := t.TempDir()

	srv := NewServer("p", 3, AggregateOnly)
	srv.SpillDir = dir
	h := srv.Handler()
	feedSpill(t, h, 0, 30)
	srv.spillSnapshot()
	logSize := func() int64 {
		st, err := os.Stat(filepath.Join(dir, "reports.log"))
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	if got := logSize(); got != 0 {
		t.Fatalf("log not compacted after snapshot: %d bytes", got)
	}
	if got := srv.m.spillSnapshots.Value(); got != 1 {
		t.Fatalf("collect_spill_snapshots_total = %d, want 1", got)
	}
	feedSpill(t, h, 30, 20)
	srv.Crash()

	again := NewServer("p", 3, AggregateOnly)
	again.SpillDir = dir
	defer again.Stop()
	agg := again.Aggregate()
	if agg.Runs != 50 {
		t.Fatalf("recovered %d runs, want 50 (30 from snapshot + 20 replayed)", agg.Runs)
	}
	if got := again.m.spillReplayed.Value(); got != 20 {
		t.Fatalf("collect_spill_replayed_total = %d, want 20 (snapshot absorbed the rest)", got)
	}
}

// TestSpillTornTailTruncatedOnReplay simulates a power-cut write: a
// partial frame at the end of the log. Replay must keep every complete
// (acknowledged) frame, drop the torn tail, and truncate the file so
// the next append starts at a clean boundary.
func TestSpillTornTailTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()

	srv := NewServer("p", 3, StoreAll)
	srv.SpillDir = dir
	feedSpill(t, srv.Handler(), 0, 25)
	srv.Crash()

	logPath := filepath.Join(dir, "reports.log")
	clean, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A 64-byte frame announced, three bytes delivered.
	if _, err := f.Write([]byte{0x40, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	again := NewServer("p", 3, StoreAll)
	again.SpillDir = dir
	defer again.Stop()
	if got := again.Aggregate().Runs; got != 25 {
		t.Fatalf("recovered %d runs, want 25", got)
	}
	if st, err := os.Stat(logPath); err != nil || st.Size() != clean.Size() {
		t.Fatalf("torn tail not truncated: %d bytes, want %d (err %v)", st.Size(), clean.Size(), err)
	}
}

// TestSpillEdgeRestartResumesFederation is the end-to-end recovery
// story: a federated edge crashes between pushes, a successor on the
// same spill directory restores the edge identity and epoch cursor,
// replays the log, and delivers exactly the un-pushed remainder — the
// root ends bit-exact with zero acknowledged reports lost and zero
// double-counted.
func TestSpillEdgeRestartResumesFederation(t *testing.T) {
	dir := t.TempDir()
	root := NewServer("p", 3, AggregateOnly)
	root.AcceptMerges = true
	rootAddr, err := root.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Stop()

	newEdge := func() *Server {
		e := NewServer("p", 3, AggregateOnly)
		e.Federation = &Federation{Parent: "http://" + rootAddr, Interval: time.Hour}
		e.SpillDir = dir
		return e
	}

	edge := newEdge()
	feedSpill(t, edge.Handler(), 0, 15)
	if err := edge.FederateNow(); err != nil {
		t.Fatal(err)
	}
	firstID := edge.fed.edgeID
	feedSpill(t, edge.Handler(), 15, 10) // acked but never pushed
	edge.Crash()

	edge2 := newEdge()
	defer edge2.Stop()
	if err := edge2.FederateNow(); err != nil {
		t.Fatal(err)
	}
	if edge2.fed.edgeID != firstID {
		t.Fatalf("edge identity not restored: %q -> %q", firstID, edge2.fed.edgeID)
	}
	if got := root.Aggregate().Runs; got != 25 {
		t.Fatalf("root has %d runs, want 25 (15 pushed + 10 recovered)", got)
	}
	if got := root.reg.Gauge("collect_merge_edges").Value(); got != 1 {
		t.Fatalf("root tracks %v edges, want 1 (identity survived the restart)", got)
	}
	// The epoch cut persisted a seed covering the first 15 and compacted
	// the log, so only the 10 post-cut reports needed replay.
	if got := edge2.m.spillReplayed.Value(); got != 10 {
		t.Fatalf("collect_spill_replayed_total = %d, want 10", got)
	}
}
