// Package collect implements the remote-collection side of the
// infrastructure: an HTTP server that receives encoded run reports from
// deployed clients and either stores them or folds them into sufficient
// statistics, and the client used by instrumented runs to phone home.
//
// The server exposes the operational surface a deployed collector needs:
// Prometheus metrics at /metrics, a liveness/drain signal at /healthz,
// and per-request ingest counters and latency histograms (package
// telemetry).
package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"cbi/internal/report"
	"cbi/internal/telemetry"
	"cbi/internal/telemetry/trace"
)

// Mode selects how the server retains data.
type Mode int

const (
	// StoreAll keeps every report (needed for logistic-regression
	// training, which consumes per-run feature vectors).
	StoreAll Mode = iota
	// AggregateOnly folds each report into sufficient statistics and
	// discards it (§5's privacy posture: a compromised collector cannot
	// reveal any individual trace).
	AggregateOnly
)

// ShutdownTimeout bounds how long Stop waits for in-flight report POSTs
// to drain before forcing connections closed.
const ShutdownTimeout = 5 * time.Second

// serverMetrics caches the hot-path metric handles so request handling
// never takes the registry lock.
type serverMetrics struct {
	accepted       *telemetry.Counter
	rejectedMethod *telemetry.Counter
	rejectedRead   *telemetry.Counter
	rejectedDecode *telemetry.Counter
	rejectedFold   *telemetry.Counter
	bytesIngested  *telemetry.Counter
	reportBytes    *telemetry.Histogram
	decodeSeconds  *telemetry.Histogram
	foldSeconds    *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		accepted:       reg.Counter("collect_reports_accepted_total"),
		rejectedMethod: reg.Counter(`collect_reports_rejected_total{reason="method"}`),
		rejectedRead:   reg.Counter(`collect_reports_rejected_total{reason="read"}`),
		rejectedDecode: reg.Counter(`collect_reports_rejected_total{reason="decode"}`),
		rejectedFold:   reg.Counter(`collect_reports_rejected_total{reason="fold"}`),
		bytesIngested:  reg.Counter("collect_bytes_ingested_total"),
		reportBytes:    reg.Histogram("collect_report_bytes", telemetry.SizeBuckets),
		decodeSeconds:  reg.Histogram("collect_decode_seconds", telemetry.DefBuckets),
		foldSeconds:    reg.Histogram("collect_fold_seconds", telemetry.DefBuckets),
	}
}

// Server is the central collection endpoint.
type Server struct {
	mode Mode

	// ExposeTelemetry controls whether Handler mounts /metrics and
	// /healthz (default true; set before calling Handler or Start).
	ExposeTelemetry bool

	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the same
	// mux (default false; set before calling Handler or Start). Off by
	// default because profile endpoints can stall a loaded collector and
	// leak operational detail.
	EnablePprof bool

	// Tracer, when set, records server-side ingest spans: each /report
	// POST gets a server.ingest span with server.decode and server.fold
	// children, continuing the client's trace when the request carries
	// an X-CBI-Trace header. Set before traffic arrives.
	Tracer *trace.Collector

	mu  sync.Mutex
	db  *report.DB
	agg *report.Aggregate

	reg    *telemetry.Registry
	health telemetry.Health
	m      serverMetrics

	httpServer *http.Server
	listener   net.Listener
}

// NewServer creates a collection server for one program build. Each
// server owns its own telemetry registry (see Registry) so concurrent
// servers — and tests — do not share counters.
func NewServer(program string, numCounters int, mode Mode) *Server {
	reg := telemetry.NewRegistry()
	return &Server{
		mode:            mode,
		ExposeTelemetry: true,
		db:              report.NewDB(program, numCounters),
		agg:             report.NewAggregate(program, numCounters),
		reg:             reg,
		m:               newServerMetrics(reg),
	}
}

// Registry returns the server's telemetry registry (scraped at /metrics).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Health returns the server's lifecycle flag (served at /healthz).
func (s *Server) Health() *telemetry.Health { return &s.health }

// Handler returns the HTTP handler (also usable without a live listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/stats", s.handleStats)
	if s.ExposeTelemetry {
		mux.Handle("/metrics", s.reg.Handler())
		mux.Handle("/healthz", &s.health)
	}
	if s.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.m.rejectedMethod.Inc()
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Continue the client's trace across the wire (nil-safe throughout:
	// with no Tracer every span below is nil and records nothing).
	ingest := s.Tracer.ContinueSpan("server.ingest", r.Header.Get(trace.Header))
	defer ingest.End()
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		s.m.rejectedRead.Inc()
		ingest.SetAttr("outcome", "rejected-read")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ingest.SetAttr("bytes", strconv.Itoa(len(body)))
	s.m.bytesIngested.Add(uint64(len(body)))
	s.m.reportBytes.Observe(float64(len(body)))
	decodeSpan := ingest.StartChild("server.decode")
	t0 := time.Now()
	rep, err := report.Decode(body)
	s.m.decodeSeconds.Observe(time.Since(t0).Seconds())
	decodeSpan.End()
	if err != nil {
		s.m.rejectedDecode.Inc()
		ingest.SetAttr("outcome", "rejected-decode")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ingest.SetAttr("run_id", strconv.FormatUint(rep.RunID, 10))
	foldSpan := ingest.StartChild("server.fold")
	err = s.Submit(rep)
	foldSpan.End()
	if err != nil {
		ingest.SetAttr("outcome", "rejected-fold")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ingest.SetAttr("outcome", "accepted")
	if s.reg.LogEnabled() {
		s.reg.Event("report_accepted", map[string]any{
			"run_id": rep.RunID, "program": rep.Program,
			"crashed": rep.Crashed, "bytes": len(body),
		})
	}
	w.WriteHeader(http.StatusAccepted)
}

// Stats is the JSON summary served at /stats.
type Stats struct {
	Runs    int `json:"runs"`
	Crashes int `json:"crashes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{Runs: s.agg.Runs, Crashes: s.agg.Crashes}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Submit folds a report into the server state directly (used by in-process
// fleets and by the HTTP handler). It records fold latency and the
// accepted/rejected counters, so both ingestion paths are measured.
func (s *Server) Submit(rep *report.Report) error {
	t0 := time.Now()
	s.mu.Lock()
	err := s.agg.Fold(rep)
	if err == nil && s.db.NumCounters == 0 {
		// "Accept any" server: the first report fixes the counter shape
		// for both retention paths.
		s.db.NumCounters = s.agg.NumCounters
	}
	if err == nil && s.mode == StoreAll {
		err = s.db.Add(rep)
	}
	s.mu.Unlock()
	s.m.foldSeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.m.rejectedFold.Inc()
		return err
	}
	s.m.accepted.Inc()
	return nil
}

// DB returns a snapshot of the stored reports (StoreAll mode).
func (s *Server) DB() *report.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	snapshot := *s.db
	snapshot.Reports = append([]*report.Report(nil), s.db.Reports...)
	return &snapshot
}

// Aggregate returns a snapshot of the sufficient statistics.
func (s *Server) Aggregate() *report.Aggregate {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *s.agg
	cp.NonzeroInSuccess = append([]bool(nil), s.agg.NonzeroInSuccess...)
	cp.NonzeroInFailure = append([]bool(nil), s.agg.NonzeroInFailure...)
	cp.Totals = append([]uint64(nil), s.agg.Totals...)
	return &cp
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Stop. It returns the bound address and flips /healthz to ok.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpServer.Serve(ln) }()
	s.health.Set(telemetry.HealthOK)
	return ln.Addr().String(), nil
}

// Stop drains the server: /healthz flips to shutting-down so load
// balancers stop routing, then in-flight report POSTs are allowed up to
// ShutdownTimeout to complete before connections are forced closed.
func (s *Server) Stop() error {
	if s.httpServer == nil {
		return nil
	}
	s.health.Set(telemetry.HealthShuttingDown)
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	if err := s.httpServer.Shutdown(ctx); err != nil {
		return s.httpServer.Close()
	}
	return nil
}

// Client submits reports to a remote collection server, with bounded
// jittered retries for transient failures.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxAttempts bounds submission tries (default 3). Only transport
	// errors and 5xx responses are retried; a 4xx rejection is final.
	MaxAttempts int
	// RetryBackoff is the base delay before the first retry (default
	// 50ms), doubled per attempt with ±50% jitter.
	RetryBackoff time.Duration
	// Metrics receives submit latency/outcome metrics (default
	// telemetry.Default).
	Metrics *telemetry.Registry
}

// NewClient creates a client for the server at baseURL
// (e.g. "http://127.0.0.1:8123").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) registry() *telemetry.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return telemetry.Default
}

// Submit posts one report, retrying transient failures.
func (c *Client) Submit(rep *report.Report) error {
	return c.SubmitContext(context.Background(), rep)
}

// SubmitContext posts one report, retrying transient failures. When ctx
// carries a trace span (trace.NewContext), the submission is recorded as
// a client.submit child span with one client.attempt child per POST, and
// the attempt's span context rides the X-CBI-Trace header so the
// collector continues the same trace.
func (c *Client) SubmitContext(ctx context.Context, rep *report.Report) error {
	reg := c.registry()
	sub := trace.FromContext(ctx).StartChild("client.submit")
	sub.SetAttr("run_id", strconv.FormatUint(rep.RunID, 10))
	defer sub.End()
	body := rep.Encode()
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	start := time.Now()
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			reg.Counter("client_submit_retries_total").Inc()
			// Exponential backoff with ±50% jitter so a rebooting
			// collector is not hammered in lockstep by the whole fleet.
			d := backoff << (attempt - 1)
			time.Sleep(time.Duration(float64(d) * (0.5 + rand.Float64())))
		}
		att := sub.StartChild("client.attempt")
		att.SetAttr("attempt", strconv.Itoa(attempt+1))
		var retryable bool
		retryable, err = c.trySubmit(ctx, att, body)
		att.End()
		if err == nil {
			sub.SetAttr("attempts", strconv.Itoa(attempt+1))
			sub.SetAttr("outcome", "accepted")
			reg.Histogram("client_submit_seconds", telemetry.DefBuckets).
				Observe(time.Since(start).Seconds())
			reg.Counter("client_submits_total").Inc()
			return nil
		}
		if !retryable {
			break
		}
	}
	sub.SetAttr("outcome", "error")
	reg.Counter("client_submit_errors_total").Inc()
	return err
}

// trySubmit performs one POST and reports whether a failure is worth
// retrying. The attempt span's context (not the whole submission's)
// rides the trace header, so server-side spans parent to the POST that
// actually reached them.
func (c *Client) trySubmit(ctx context.Context, att *trace.Span, body []byte) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/report",
		bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if hv := att.HeaderValue(); hv != "" {
		req.Header.Set(trace.Header, hv)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		return false, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode >= 500, fmt.Errorf("collect: server rejected report: %s: %s", resp.Status, msg)
}

// Stats fetches the server's run summary.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := c.HTTP.Get(c.BaseURL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("collect: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
