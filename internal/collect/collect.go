// Package collect implements the remote-collection side of the
// infrastructure: an HTTP server that receives encoded run reports from
// deployed clients and either stores them or folds them into sufficient
// statistics, and the client used by instrumented runs to phone home.
package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"cbi/internal/report"
)

// Mode selects how the server retains data.
type Mode int

const (
	// StoreAll keeps every report (needed for logistic-regression
	// training, which consumes per-run feature vectors).
	StoreAll Mode = iota
	// AggregateOnly folds each report into sufficient statistics and
	// discards it (§5's privacy posture: a compromised collector cannot
	// reveal any individual trace).
	AggregateOnly
)

// Server is the central collection endpoint.
type Server struct {
	mode Mode

	mu  sync.Mutex
	db  *report.DB
	agg *report.Aggregate

	httpServer *http.Server
	listener   net.Listener
}

// NewServer creates a collection server for one program build.
func NewServer(program string, numCounters int, mode Mode) *Server {
	return &Server{
		mode: mode,
		db:   report.NewDB(program, numCounters),
		agg:  report.NewAggregate(program, numCounters),
	}
}

// Handler returns the HTTP handler (also usable without a live listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep, err := report.Decode(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.Submit(rep); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// Stats is the JSON summary served at /stats.
type Stats struct {
	Runs    int `json:"runs"`
	Crashes int `json:"crashes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{Runs: s.agg.Runs, Crashes: s.agg.Crashes}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Submit folds a report into the server state directly (used by in-process
// fleets and by the HTTP handler).
func (s *Server) Submit(rep *report.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.agg.Fold(rep); err != nil {
		return err
	}
	if s.mode == StoreAll {
		return s.db.Add(rep)
	}
	return nil
}

// DB returns a snapshot of the stored reports (StoreAll mode).
func (s *Server) DB() *report.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	snapshot := *s.db
	snapshot.Reports = append([]*report.Report(nil), s.db.Reports...)
	return &snapshot
}

// Aggregate returns a snapshot of the sufficient statistics.
func (s *Server) Aggregate() *report.Aggregate {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *s.agg
	cp.NonzeroInSuccess = append([]bool(nil), s.agg.NonzeroInSuccess...)
	cp.NonzeroInFailure = append([]bool(nil), s.agg.NonzeroInFailure...)
	cp.Totals = append([]uint64(nil), s.agg.Totals...)
	return &cp
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Stop. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpServer.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Stop shuts the listener down.
func (s *Server) Stop() error {
	if s.httpServer == nil {
		return nil
	}
	return s.httpServer.Close()
}

// Client submits reports to a remote collection server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client for the server at baseURL
// (e.g. "http://127.0.0.1:8123").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Submit posts one report.
func (c *Client) Submit(rep *report.Report) error {
	resp, err := c.HTTP.Post(c.BaseURL+"/report", "application/octet-stream",
		readerOf(rep.Encode()))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("collect: server rejected report: %s: %s", resp.Status, msg)
	}
	return nil
}

// Stats fetches the server's run summary.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := c.HTTP.Get(c.BaseURL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("collect: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

type byteReader struct {
	data []byte
	off  int
}

func readerOf(b []byte) io.Reader { return &byteReader{data: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
