// Package collect implements the remote-collection side of the
// infrastructure: an HTTP server that receives encoded run reports from
// deployed clients and either stores them or folds them into sufficient
// statistics, and the client used by instrumented runs to phone home.
//
// Ingest is striped: reports hash on RunID onto independent shards, each
// holding its own aggregate (and report store in StoreAll mode), so
// concurrent submissions scale with cores instead of serializing on one
// mutex. Shards are merged lazily when a snapshot is taken — legal
// because the §2.5 feedback statistics are order-free. Clients may POST
// one report per request (/report) or amortize the round-trip by
// batching many reports into a single /reports request.
//
// By default HTTP ingest is additionally staged (see staging.go): the
// handlers only decode, validate, and enqueue into per-shard ring
// buffers, background folders do the folding in lock-amortized batches,
// and overload is answered with 503 + Retry-After instead of unbounded
// queueing. Set Staging to StagingOff for the synchronous fold-in-handler
// path, which the staged pipeline is bit-identical to.
//
// The server exposes the operational surface a deployed collector needs:
// Prometheus metrics at /metrics, a liveness/drain signal at /healthz,
// and per-request ingest counters and latency histograms (package
// telemetry).
package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/monitor"
	"cbi/internal/quality"
	"cbi/internal/report"
	"cbi/internal/telemetry"
	"cbi/internal/telemetry/trace"
)

// Mode selects how the server retains data.
type Mode int

const (
	// StoreAll keeps every report (needed for logistic-regression
	// training, which consumes per-run feature vectors).
	StoreAll Mode = iota
	// AggregateOnly folds each report into sufficient statistics and
	// discards it (§5's privacy posture: a compromised collector cannot
	// reveal any individual trace).
	AggregateOnly
)

// Staging selects the ingest pipeline the HTTP handlers use.
type Staging int

const (
	// StagingOn (the zero value) stages HTTP ingest through per-shard
	// ring buffers drained by background folder goroutines; handlers
	// only decode, validate, and enqueue.
	StagingOn Staging = iota
	// StagingOff folds synchronously inside the handler — the
	// bit-identity oracle the staged pipeline is tested and benchmarked
	// against.
	StagingOff
)

// ShutdownTimeout bounds how long Stop waits for in-flight report POSTs
// to drain before forcing connections closed.
const ShutdownTimeout = 5 * time.Second

// MaxBodyBytes is the largest request body /report and /reports accept;
// anything bigger is rejected with 413 Request Entity Too Large.
const MaxBodyBytes = 64 << 20

// maxShards caps the stripe count; beyond this the fixed cost of
// merging shards on snapshot outweighs any contention win.
const maxShards = 256

// serverMetrics caches the hot-path metric handles so request handling
// never takes the registry lock.
type serverMetrics struct {
	accepted        *telemetry.Counter
	rejectedMethod  *telemetry.Counter
	rejectedRead    *telemetry.Counter
	rejectedDecode  *telemetry.Counter
	rejectedFold    *telemetry.Counter
	rejectedSize    *telemetry.Counter
	quarantined     *telemetry.Counter
	batchesAccepted *telemetry.Counter
	batchReportsIn  *telemetry.Counter
	batchReports    *telemetry.Histogram
	bytesIngested   *telemetry.Counter
	requestBytes    *telemetry.Histogram
	reportBytes     *telemetry.Histogram
	decodeSeconds   *telemetry.Histogram
	foldSeconds     *telemetry.Histogram
	reportNonzeros  *telemetry.Histogram
	// Staged-ingest instruments: reports shed by back-pressure, enqueues
	// that had to wait for ring space, and reports folded per
	// lock acquisition (the batching the staged path exists to buy).
	shed        *telemetry.Counter
	stageWaits  *telemetry.Counter
	stageBatches *telemetry.Histogram
	// Federation instruments: the root's /merge endpoint (requests,
	// reports carried, epoch duplicates, rejections) and the edge's push
	// loop (pushes, failures).
	mergeRequests     *telemetry.Counter
	mergeReports      *telemetry.Counter
	mergeDuplicates   *telemetry.Counter
	mergeRejected     *telemetry.Counter
	mergePushes       *telemetry.Counter
	mergePushFailures *telemetry.Counter
	// Spill instruments: journal appends/bytes, snapshots, reports
	// replayed on restart, and persistence errors.
	spillAppends   *telemetry.Counter
	spillBytes     *telemetry.Counter
	spillSnapshots *telemetry.Counter
	spillReplayed  *telemetry.Counter
	spillErrors    *telemetry.Counter
}

// BatchSizeBuckets are histogram buckets for reports-per-batch.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NonzeroBuckets are histogram buckets for nonzero counters per report —
// the quantity the sparse decode→fold→analysis path scales with (dense
// vectors cost O(counters) regardless of what the run touched).
var NonzeroBuckets = []float64{0, 8, 32, 128, 512, 2048, 8192, 32768, 131072}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		accepted:        reg.Counter("collect_reports_accepted_total"),
		rejectedMethod:  reg.Counter(`collect_reports_rejected_total{reason="method"}`),
		rejectedRead:    reg.Counter(`collect_reports_rejected_total{reason="read"}`),
		rejectedDecode:  reg.Counter(`collect_reports_rejected_total{reason="decode"}`),
		rejectedFold:    reg.Counter(`collect_reports_rejected_total{reason="fold"}`),
		rejectedSize:    reg.Counter(`collect_reports_rejected_total{reason="too-large"}`),
		quarantined:     reg.Counter("collect_reports_quarantined_total"),
		batchesAccepted: reg.Counter("collect_batches_accepted_total"),
		batchReportsIn:  reg.Counter("collect_batch_reports_total"),
		batchReports:    reg.Histogram("collect_batch_reports", BatchSizeBuckets),
		bytesIngested:   reg.Counter("collect_bytes_ingested_total"),
		requestBytes:    reg.Histogram("collect_request_bytes", telemetry.SizeBuckets),
		reportBytes:     reg.Histogram("collect_report_bytes", telemetry.SizeBuckets),
		decodeSeconds:   reg.Histogram("collect_decode_seconds", telemetry.DefBuckets),
		foldSeconds:     reg.Histogram("collect_fold_seconds", telemetry.DefBuckets),
		reportNonzeros:  reg.Histogram("collect_report_nonzeros", NonzeroBuckets),
		shed:            reg.Counter("collect_reports_shed_total"),
		stageWaits:      reg.Counter("collect_stage_waits_total"),
		stageBatches:    reg.Histogram("collect_stage_fold_batch", BatchSizeBuckets),

		mergeRequests:     reg.Counter("collect_merge_requests_total"),
		mergeReports:      reg.Counter("collect_merge_reports_total"),
		mergeDuplicates:   reg.Counter("collect_merge_duplicates_total"),
		mergeRejected:     reg.Counter("collect_merge_rejected_total"),
		mergePushes:       reg.Counter("collect_merge_pushes_total"),
		mergePushFailures: reg.Counter("collect_merge_push_failures_total"),

		spillAppends:   reg.Counter("collect_spill_appends_total"),
		spillBytes:     reg.Counter("collect_spill_bytes_total"),
		spillSnapshots: reg.Counter("collect_spill_snapshots_total"),
		spillReplayed:  reg.Counter("collect_spill_replayed_total"),
		spillErrors:    reg.Counter("collect_spill_errors_total"),
	}
}

// ingestShard is one stripe of the collector state: a mutex narrow
// enough that concurrent submissions for different run IDs rarely meet.
type ingestShard struct {
	mu  sync.Mutex
	db  *report.DB
	agg *report.Aggregate
	// acc holds the live-triage scoring statistics (nil unless the server
	// has a Monitor), folded under the same lock as agg so each report is
	// atomic within its shard.
	acc *score.Accum
}

// Server is the central collection endpoint.
type Server struct {
	mode Mode

	// ExposeTelemetry controls whether Handler mounts /metrics and
	// /healthz (default true; set before calling Handler or Start).
	ExposeTelemetry bool

	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the same
	// mux (default false; set before calling Handler or Start). Off by
	// default because profile endpoints can stall a loaded collector and
	// leak operational detail.
	EnablePprof bool

	// Tracer, when set, records server-side ingest spans: each /report
	// or /reports POST gets a server.ingest span with server.decode and
	// server.fold children, continuing the client's trace when the
	// request carries an X-CBI-Trace header. Set before traffic arrives.
	Tracer *trace.Collector

	// Shards is the number of ingest stripes, rounded up to a power of
	// two (default: smallest power of two ≥ NumCPU, capped at 256). Set
	// before the first submission; later writes are ignored.
	Shards int

	// Monitor, when set before the first submission (or Handler call),
	// enables the live triage console: the server maintains incremental
	// scoring statistics per shard, notifies the monitor as reports fold,
	// and mounts /rankings, /watch (SSE), and /dashboard.
	Monitor *monitor.Monitor

	// Sites gives the instrumented program's counter spans so live scores
	// have site context (Context(P)); nil degrades to span-free scoring,
	// exactly like score.Score with nil spans. Set alongside Monitor.
	Sites []score.SiteSpan

	// Quality, when set before the first submission (or Handler call),
	// enables the ingest-quality engine: every accept/reject folds into
	// its streaming sketches, /quality and /debug/badreports are mounted,
	// and (with a Monitor) anomaly/recovered events ride the /watch SSE
	// stream. All engine calls are nil-safe, so the hot path pays one nil
	// check when disabled.
	Quality *quality.Engine

	// Staging selects staged (default) or synchronous HTTP ingest; see
	// staging.go. Direct Submit calls always fold synchronously either
	// way. Set before the first submission or Handler call.
	Staging Staging

	// StageCapacity is the per-shard staging-ring size in reports,
	// rounded up to a power of two (default 1024). A /reports batch
	// larger than the ring bypasses staging and folds synchronously
	// rather than being unconditionally shed.
	StageCapacity int

	// StageWait bounds how long an enqueue waits for ring space before
	// the request is shed with 503 + Retry-After (default 100ms);
	// negative sheds as soon as the initial spin fails.
	StageWait time.Duration

	// StatsMaxAge bounds how stale a cached /stats response may be
	// (default 250ms). GET /stats?fresh=1 always recomputes.
	StatsMaxAge time.Duration

	// AcceptMerges makes this server a federation root (or mid-tier):
	// Handler mounts /merge, and edge collectors push delta merges of
	// their sufficient statistics there (see federate.go). Set before
	// the first submission or Handler call.
	AcceptMerges bool

	// Federation, when set, makes this server an edge of a collector
	// tree: a background loop periodically cuts a delta of everything
	// folded since the last cut and pushes it to Federation.Parent,
	// with epoch cursors for exactly-once folding. Implies live scoring
	// accumulators (the root serves /rankings from merged state). Set
	// before the first submission or Handler call.
	Federation *Federation

	// SpillDir enables spill-to-disk persistence (see spill.go): every
	// acknowledged report is journaled before its 202, and state
	// snapshots make restart recovery cheap. Empty disables. Set before
	// the first submission or Handler call.
	SpillDir string

	// SpillSnapshotInterval is the snapshot cadence for a spill-enabled
	// server WITHOUT federation (default 30s); federated edges persist
	// at every epoch cut instead.
	SpillSnapshotInterval time.Duration

	program     string
	numCounters int
	// shape is the expected counter-vector length; 0 until an
	// "accept any" server sees its first non-empty report, after which
	// every shard folds against the same fixed shape.
	shape atomic.Int64

	initOnce  sync.Once
	shardMask uint64
	shards    []ingestShard

	// Staged-ingest state (nil/zero when Staging is off); see staging.go.
	rings         []stageRing
	stageCap      int
	stageWaitFor  time.Duration
	stageRR       atomic.Uint64 // round-robin ring cursor for batches
	stageStop     chan struct{}
	stageStopOnce sync.Once
	stageStopped  atomic.Bool
	stageWG       sync.WaitGroup

	// Cached /stats response; see handleStats.
	statsMu sync.Mutex
	statsAt time.Time
	statsCache Stats

	// Federation runtime (nil unless Federation is set); see federate.go.
	fed *fedState
	// Root-side merge dedup: last epoch folded per edge, under mergeMu
	// (which also serializes whole merges — they are rare and coarse).
	mergeMu   sync.Mutex
	mergeSeen map[string]uint64
	// Spill runtime (nil unless SpillDir is set); see spill.go.
	spill *spillState

	reg      *telemetry.Registry
	health   telemetry.Health
	m        serverMetrics
	httpReqs sync.Map // "endpoint\x00code" -> *telemetry.Counter

	httpServer *http.Server
	listener   net.Listener
}

// NewServer creates a collection server for one program build. Each
// server owns its own telemetry registry (see Registry) so concurrent
// servers — and tests — do not share counters.
func NewServer(program string, numCounters int, mode Mode) *Server {
	reg := telemetry.NewRegistry()
	s := &Server{
		mode:            mode,
		ExposeTelemetry: true,
		program:         program,
		numCounters:     numCounters,
		reg:             reg,
		m:               newServerMetrics(reg),
	}
	s.shape.Store(int64(numCounters))
	return s
}

// init lazily allocates the shard array, honoring a Shards override set
// after NewServer but before the first submission.
func (s *Server) init() {
	s.initOnce.Do(func() {
		n := s.Shards
		if n <= 0 {
			n = runtime.NumCPU()
		}
		if n > maxShards {
			n = maxShards
		}
		if n&(n-1) != 0 {
			n = 1 << bits.Len(uint(n))
		}
		s.shardMask = uint64(n - 1)
		s.shards = make([]ingestShard, n)
		for i := range s.shards {
			s.shards[i].db = report.NewDB(s.program, s.numCounters)
			s.shards[i].agg = report.NewAggregate(s.program, s.numCounters)
			if s.accumsEnabled() {
				s.shards[i].acc = score.NewAccum(s.numCounters, s.Sites)
			}
		}
		s.reg.Gauge("collect_shards").Set(float64(n))
		// Recover persisted state before staging and the monitor exist:
		// replay folds directly into the freshly allocated shards.
		s.initSpill()
		if s.Staging == StagingOn {
			// Before the Monitor starts: its snapshot worker reaches the
			// drain barrier through ScoreState, so the rings and folders
			// must exist first.
			s.initStaging()
		}
		if s.Monitor != nil {
			s.Monitor.Bind(s, s.reg)
			s.Monitor.Start()
		}
		if sp := s.spill; sp != nil && sp.replayed > 0 {
			// The replay predates Monitor.Start, so notify now that the
			// snapshot worker exists.
			s.Monitor.ReportsFolded(sp.replayed)
		}
		if s.Quality != nil {
			s.Quality.Bind(s.reg)
			if s.Monitor != nil {
				s.Quality.Events = s.Monitor
			}
			s.Quality.Start()
		}
		s.initFederation()
		s.startSpillLoop()
	})
}

// accumsEnabled reports whether shards keep live scoring accumulators:
// for the local monitor, for federation deltas (the root serves
// /rankings from merged accumulators), or for merged-in edge state.
func (s *Server) accumsEnabled() bool {
	return s.Monitor != nil || s.Federation != nil || s.AcceptMerges
}

// shardIndex picks the stripe for a run ID (Fibonacci hashing so
// sequential fleet IDs spread evenly).
func (s *Server) shardIndex(runID uint64) uint64 {
	return (runID * 0x9E3779B97F4A7C15) >> 32 & s.shardMask
}

func (s *Server) shardFor(runID uint64) *ingestShard {
	return &s.shards[s.shardIndex(runID)]
}

// Registry returns the server's telemetry registry (scraped at /metrics).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Health returns the server's lifecycle flag (served at /healthz).
func (s *Server) Health() *telemetry.Health { return &s.health }

// Handler returns the HTTP handler (also usable without a live listener).
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	mux.Handle("/report", s.instrument("/report", http.HandlerFunc(s.handleReport)))
	mux.Handle("/reports", s.instrument("/reports", http.HandlerFunc(s.handleReports)))
	mux.Handle("/stats", s.instrument("/stats", http.HandlerFunc(s.handleStats)))
	if s.AcceptMerges {
		mux.Handle("/merge", s.instrument("/merge", http.HandlerFunc(s.handleMerge)))
	}
	if s.Monitor != nil {
		mux.Handle("/rankings", s.instrument("/rankings", http.HandlerFunc(s.Monitor.ServeRankings)))
		mux.Handle("/watch", s.instrument("/watch", http.HandlerFunc(s.Monitor.ServeWatch)))
		mux.Handle("/dashboard", s.instrument("/dashboard", http.HandlerFunc(s.Monitor.ServeDashboard)))
	}
	if s.Quality != nil {
		// /quality sits behind the drain barrier too, so its accepted/
		// rejected totals line up with the fold-derived snapshots a
		// caller may fetch next.
		mux.Handle("/quality", s.instrument("/quality", s.drained(http.HandlerFunc(s.Quality.ServeQuality))))
		mux.Handle("/debug/badreports", s.instrument("/debug/badreports", http.HandlerFunc(s.Quality.ServeBadReports)))
	}
	if s.ExposeTelemetry {
		mux.Handle("/metrics", s.instrument("/metrics", s.reg.Handler()))
		mux.Handle("/healthz", s.instrument("/healthz", &s.health))
	}
	if s.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// drained runs the staging drain barrier before the wrapped handler.
func (s *Server) drained(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.drainStaging()
		h.ServeHTTP(w, r)
	})
}

// statusCapture remembers the response code so instrument can label its
// counter. It passes http.Flusher through — /watch streams SSE and dies
// without it.
type statusCapture struct {
	http.ResponseWriter
	code int
}

func (c *statusCapture) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *statusCapture) Write(b []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.ResponseWriter.Write(b)
}

func (c *statusCapture) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument counts every response on every route — success and error
// paths alike — as collect_http_requests_total{endpoint,code} and times
// each request into collect_handler_seconds{endpoint}. The latency
// histogram uses FineBuckets: the staged ingest handlers answer in
// microseconds, far below DefBuckets' resolution.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	lat := s.reg.Histogram("collect_handler_seconds"+telemetry.Labels("endpoint", endpoint),
		telemetry.FineBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sc := &statusCapture{ResponseWriter: w}
		h.ServeHTTP(sc, r)
		lat.Observe(time.Since(t0).Seconds())
		if sc.code == 0 {
			sc.code = http.StatusOK
		}
		s.countRequest(endpoint, sc.code)
	})
}

// countRequest bumps the per-{endpoint,code} counter, caching handles so
// the steady state never re-renders labels or takes the registry lock.
func (s *Server) countRequest(endpoint string, code int) {
	key := endpoint + "\x00" + strconv.Itoa(code)
	if c, ok := s.httpReqs.Load(key); ok {
		c.(*telemetry.Counter).Inc()
		return
	}
	c := s.reg.Counter("collect_http_requests_total" +
		telemetry.Labels("endpoint", endpoint, "code", strconv.Itoa(code)))
	actual, _ := s.httpReqs.LoadOrStore(key, c)
	actual.(*telemetry.Counter).Inc()
}

// readBody pulls in a request body up to MaxBodyBytes, rejecting
// oversize payloads with 413 instead of silently truncating them into a
// confusing decode error. The bool result reports success.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, ingest *trace.Span) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes+1))
	if err != nil {
		s.m.rejectedRead.Inc()
		s.Quality.ObserveRejected(quality.ReasonRead, body)
		ingest.SetAttr("outcome", "rejected-read")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > MaxBodyBytes {
		s.m.rejectedSize.Inc()
		s.Quality.ObserveRejected(quality.ReasonTooLarge, body)
		ingest.SetAttr("outcome", "rejected-too-large")
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return nil, false
	}
	ingest.SetAttr("bytes", strconv.Itoa(len(body)))
	s.m.bytesIngested.Add(uint64(len(body)))
	s.m.requestBytes.Observe(float64(len(body)))
	return body, true
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.Quality.ObserveEndpoint(false)
	if r.Method != http.MethodPost {
		s.m.rejectedMethod.Inc()
		s.Quality.ObserveRejected(quality.ReasonMethod, nil)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Continue the client's trace across the wire (nil-safe throughout:
	// with no Tracer every span below is nil and records nothing).
	ingest := s.Tracer.ContinueSpan("server.ingest", r.Header.Get(trace.Header))
	defer ingest.End()
	body, ok := s.readBody(w, r, ingest)
	if !ok {
		return
	}
	decodeSpan := ingest.StartChild("server.decode")
	t0 := time.Now()
	rep, err := report.Decode(body)
	s.m.decodeSeconds.Observe(time.Since(t0).Seconds())
	decodeSpan.End()
	if err != nil {
		s.m.rejectedDecode.Inc()
		s.Quality.ObserveRejected(quality.ReasonDecode, body)
		ingest.SetAttr("outcome", "rejected-decode")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ingest.SetAttr("run_id", strconv.FormatUint(rep.RunID, 10))
	if s.stagingActive() {
		// Staged hot path: validate and enqueue; the shard folder does
		// the fold. The 202 below is a durable accept — the drain
		// barrier guarantees the report reaches every later snapshot.
		if err := s.validate(rep); err != nil {
			s.m.rejectedFold.Inc()
			s.Quality.ObserveRejected(quality.ReasonFold, nil)
			ingest.SetAttr("outcome", "rejected-fold")
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Build the sparse cache before the report crosses goroutines:
		// Nonzeros mutates on first call, and after the enqueue both the
		// handler (accounting) and the folder (fold) read the report.
		rep.Nonzeros()
		ring := &s.rings[s.shardIndex(rep.RunID)]
		sp := s.spill
		if sp != nil {
			sp.gate.RLock()
		}
		ok := s.stageEnqueue(ring, []*report.Report{rep}, ingest)
		var spErr error
		if ok && sp != nil {
			spErr = s.spillAppend(frameReport(body))
		}
		if sp != nil {
			sp.gate.RUnlock()
		}
		if !ok {
			s.shed(w, ingest, 1)
			return
		}
		if spErr != nil {
			s.spillFail(w, ingest, spErr)
			return
		}
		s.accountAccepted(rep)
	} else {
		foldSpan := ingest.StartChild("server.fold")
		sp := s.spill
		if sp != nil {
			sp.gate.RLock()
		}
		err = s.Submit(rep)
		var spErr error
		if err == nil && sp != nil {
			spErr = s.spillAppend(frameReport(body))
		}
		if sp != nil {
			sp.gate.RUnlock()
		}
		foldSpan.End()
		if err != nil {
			ingest.SetAttr("outcome", "rejected-fold")
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if spErr != nil {
			s.spillFail(w, ingest, spErr)
			return
		}
	}
	ingest.SetAttr("outcome", "accepted")
	if s.reg.LogEnabled() {
		s.reg.Event("report_accepted", map[string]any{
			"run_id": rep.RunID, "program": rep.Program,
			"crashed": rep.Crashed, "bytes": len(body),
		})
	}
	w.WriteHeader(http.StatusAccepted)
}

// shed answers a request whose reports could not be enqueued before the
// back-pressure deadline: 503 + Retry-After, counted per report in
// collect_reports_shed_total and observed by the quality engine as a
// rejection (a shed storm trips the reject-surge anomaly). Shedding is
// the overload contract — the collector refuses fast rather than
// queueing without bound, and the client retries the whole batch.
func (s *Server) shed(w http.ResponseWriter, ingest *trace.Span, reports int) {
	s.m.shed.Add(uint64(reports))
	for i := 0; i < reports; i++ {
		s.Quality.ObserveRejected(quality.ReasonShed, nil)
	}
	ingest.SetAttr("outcome", "shed")
	w.Header().Set("Retry-After", shedRetryAfter)
	http.Error(w, "collector overloaded: staging rings full, retry later",
		http.StatusServiceUnavailable)
}

// spillFail answers a request whose reports were taken in (staged or
// folded) but could not be journaled: 500, no acknowledgment. The
// report IS in memory — unstaging it would be worse — so a client retry
// can double-count, degrading this request to at-least-once. That is
// the documented corner of the durability contract (DESIGN §14), paid
// only when the disk itself fails mid-append.
func (s *Server) spillFail(w http.ResponseWriter, ingest *trace.Span, err error) {
	s.m.spillErrors.Inc()
	ingest.SetAttr("outcome", "spill-error")
	http.Error(w, "spill append failed: "+err.Error(), http.StatusInternalServerError)
}

// accountAccepted records the accept-time metrics and quality
// observations for one staged report. It runs in the handler after the
// enqueue succeeds and before the 202, so client-visible accounting
// (accepted counts, quarantine forensics, quality sketches) never lags
// the acknowledgment; only fold latency and the monitor's fold
// notifications happen later, in the folder.
func (s *Server) accountAccepted(rep *report.Report) {
	s.m.accepted.Inc()
	nz := rep.Nonzeros()
	s.m.reportNonzeros.Observe(float64(len(nz)))
	if wire := rep.WireLen(); wire > 0 {
		s.m.reportBytes.Observe(float64(wire))
	}
	if rep.Lenient() {
		s.m.quarantined.Inc()
		s.Quality.ObserveQuarantined(rep.RunID, rep.WireLen())
	}
	if s.Quality != nil {
		var total uint64
		for _, c := range nz {
			total += c.Value
		}
		s.Quality.ObserveAccepted(rep.RunID, len(rep.Counters), rep.WireLen(), len(nz), total, rep.Crashed)
	}
}

// handleReports ingests a batched payload (report.EncodeBatch) in one
// round-trip. The batch is validated as a whole before any report is
// folded, so a rejected batch leaves no partial state behind. A plain
// single-report body is also accepted, so old clients can be pointed at
// /reports unchanged.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	s.Quality.ObserveEndpoint(true)
	if r.Method != http.MethodPost {
		s.m.rejectedMethod.Inc()
		s.Quality.ObserveRejected(quality.ReasonMethod, nil)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ingest := s.Tracer.ContinueSpan("server.ingest", r.Header.Get(trace.Header))
	defer ingest.End()
	body, ok := s.readBody(w, r, ingest)
	if !ok {
		return
	}
	decodeSpan := ingest.StartChild("server.decode")
	t0 := time.Now()
	var reps []*report.Report
	var err error
	if report.IsBatch(body) {
		reps, err = report.DecodeBatch(body)
	} else {
		var rep *report.Report
		rep, err = report.Decode(body)
		reps = []*report.Report{rep}
	}
	s.m.decodeSeconds.Observe(time.Since(t0).Seconds())
	decodeSpan.End()
	if err != nil {
		s.m.rejectedDecode.Inc()
		s.Quality.ObserveRejected(quality.ReasonDecode, body)
		ingest.SetAttr("outcome", "rejected-decode")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ingest.SetAttr("batch", strconv.Itoa(len(reps)))
	s.init()
	// Validate the whole batch up front: shape and program mismatches
	// reject everything, so concurrent batches never half-apply.
	for _, rep := range reps {
		if err := s.validate(rep); err != nil {
			s.m.rejectedFold.Inc()
			s.Quality.ObserveRejected(quality.ReasonFold, body)
			ingest.SetAttr("outcome", "rejected-fold")
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	// Spill framing for the whole request: a batch body's frame region
	// is byte-identical to the log framing and splices in verbatim; a
	// plain single-report body gets one frame built around it.
	var spFrames []byte
	if s.spill != nil {
		if fr, isBatch := report.BatchFrames(body); isBatch {
			spFrames = fr
		} else {
			spFrames = frameReport(body)
		}
	}
	if s.stagingActive() && len(reps) <= s.stageCap {
		// Whole batch onto one round-robin ring in a single atomic
		// reservation: all-or-nothing, one folder lock acquisition, and
		// a shed batch can be retried wholesale. Any ring is as good as
		// the run-ID shard — the statistics are order-free and snapshots
		// merge every shard (DESIGN §13). Oversize batches (> ring
		// capacity) fall through to the synchronous path below.
		for _, rep := range reps {
			// Pre-build each report's sparse cache: Nonzeros mutates on
			// first call, and after the enqueue the report is shared
			// with the folder goroutine.
			rep.Nonzeros()
		}
		ring := &s.rings[s.stageRR.Add(1)&s.shardMask]
		sp := s.spill
		if sp != nil {
			sp.gate.RLock()
		}
		ok := s.stageEnqueue(ring, reps, ingest)
		var spErr error
		if ok && sp != nil {
			spErr = s.spillAppend(spFrames)
		}
		if sp != nil {
			sp.gate.RUnlock()
		}
		if !ok {
			s.shed(w, ingest, len(reps))
			return
		}
		if spErr != nil {
			s.spillFail(w, ingest, spErr)
			return
		}
		for _, rep := range reps {
			s.accountAccepted(rep)
		}
	} else {
		foldSpan := ingest.StartChild("server.fold")
		sp := s.spill
		if sp != nil {
			sp.gate.RLock()
		}
		var spErr error
		for _, rep := range reps {
			if err := s.Submit(rep); err != nil {
				if sp != nil {
					sp.gate.RUnlock()
				}
				foldSpan.End()
				ingest.SetAttr("outcome", "rejected-fold")
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		if sp != nil {
			spErr = s.spillAppend(spFrames)
			sp.gate.RUnlock()
		}
		foldSpan.End()
		if spErr != nil {
			s.spillFail(w, ingest, spErr)
			return
		}
	}
	s.m.batchesAccepted.Inc()
	s.m.batchReportsIn.Add(uint64(len(reps)))
	s.m.batchReports.Observe(float64(len(reps)))
	ingest.SetAttr("outcome", "accepted")
	if s.reg.LogEnabled() {
		s.reg.Event("batch_accepted", map[string]any{
			"reports": len(reps), "bytes": len(body),
		})
	}
	w.WriteHeader(http.StatusAccepted)
}

// Stats is the JSON summary served at /stats.
type Stats struct {
	Runs    int `json:"runs"`
	Crashes int `json:"crashes"`
	// NumCounters is the counter-vector length the server is folding
	// (0 until an "accept any" server sees its first report).
	NumCounters int `json:"num_counters"`
	// Batches and BatchReports count accepted /reports payloads and the
	// reports they carried.
	Batches      int `json:"batches"`
	BatchReports int `json:"batch_reports"`
	// Live-triage summary (all zero when the server has no Monitor), so
	// scripted runs can poll convergence without parsing the SSE stream.
	monitor.TriageStats
}

// defaultStatsMaxAge is the /stats cache lifetime when StatsMaxAge is
// unset: roughly the monitor's snapshot cadence, so pollers see fresh
// numbers without re-merging every shard per GET.
const defaultStatsMaxAge = 250 * time.Millisecond

// handleStats serves the run summary. Computing it locks every shard,
// so under heavy polling (dashboards, convergence loops) the response is
// cached and reused until it ages out or the monitor publishes a new
// rankings snapshot; ?fresh=1 forces a recompute, mirroring /rankings.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.init()
	fresh := r.URL.Query().Get("fresh") != ""
	maxAge := s.StatsMaxAge
	if maxAge <= 0 {
		maxAge = defaultStatsMaxAge
	}
	tri := s.Monitor.TriageStats()
	if !fresh {
		s.statsMu.Lock()
		if !s.statsAt.IsZero() && time.Since(s.statsAt) < maxAge &&
			tri.RankingsSnapshots == s.statsCache.RankingsSnapshots {
			st := s.statsCache
			s.statsMu.Unlock()
			writeStats(w, st)
			return
		}
		s.statsMu.Unlock()
	}
	st := s.computeStats(tri)
	s.statsMu.Lock()
	s.statsCache, s.statsAt = st, time.Now()
	s.statsMu.Unlock()
	writeStats(w, st)
}

// computeStats merges every shard into one Stats snapshot, behind the
// staging drain barrier so the counts cover every acknowledged report.
func (s *Server) computeStats(tri monitor.TriageStats) Stats {
	s.drainStaging()
	st := Stats{
		NumCounters:  int(s.shape.Load()),
		Batches:      int(s.m.batchesAccepted.Value()),
		BatchReports: int(s.m.batchReportsIn.Value()),
		TriageStats:  tri,
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Runs += sh.agg.Runs
		st.Crashes += sh.agg.Crashes
		sh.mu.Unlock()
	}
	return st
}

func writeStats(w http.ResponseWriter, st Stats) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// validate checks a report against the server's program and counter
// shape without folding it. An "accept any" server fixes its shape from
// the first non-empty report, atomically, so every shard folds against
// the same expectation.
func (s *Server) validate(rep *report.Report) error {
	if s.program != "" && rep.Program != "" && rep.Program != s.program {
		return fmt.Errorf("report: program %q does not match collector %q", rep.Program, s.program)
	}
	want := s.shape.Load()
	if want == 0 && len(rep.Counters) > 0 {
		if !s.shape.CompareAndSwap(0, int64(len(rep.Counters))) {
			want = s.shape.Load()
		} else {
			want = int64(len(rep.Counters))
		}
	}
	if int64(len(rep.Counters)) != want {
		return fmt.Errorf("report: counter vector length %d, want %d", len(rep.Counters), want)
	}
	return nil
}

// Submit folds a report into the server state directly (used by
// in-process fleets and by the HTTP handlers). It records fold latency
// and the accepted/rejected counters, so every ingestion path is
// measured. Safe for concurrent use: reports stripe across shards by
// run ID.
func (s *Server) Submit(rep *report.Report) error {
	s.init()
	t0 := time.Now()
	err := s.fold(rep)
	s.m.foldSeconds.Observe(time.Since(t0).Seconds())
	nz := rep.Nonzeros()
	s.m.reportNonzeros.Observe(float64(len(nz)))
	if err != nil {
		s.m.rejectedFold.Inc()
		s.Quality.ObserveRejected(quality.ReasonFold, nil)
		return err
	}
	s.m.accepted.Inc()
	if wire := rep.WireLen(); wire > 0 {
		// Per-report wire size (batch members individually; requests as a
		// whole are collect_request_bytes). In-process submissions have no
		// wire form and are skipped.
		s.m.reportBytes.Observe(float64(wire))
	}
	if rep.Lenient() {
		s.m.quarantined.Inc()
		s.Quality.ObserveQuarantined(rep.RunID, rep.WireLen())
	}
	if s.Quality != nil {
		var total uint64
		for _, c := range nz {
			total += c.Value
		}
		s.Quality.ObserveAccepted(rep.RunID, len(rep.Counters), rep.WireLen(), len(nz), total, rep.Crashed)
	}
	s.Monitor.ReportFolded()
	return nil
}

func (s *Server) fold(rep *report.Report) error {
	if err := s.validate(rep); err != nil {
		return err
	}
	sh := s.shardFor(rep.RunID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.foldShardLocked(sh, rep)
}

// foldShardLocked folds one already-validated report into a shard's
// aggregate, accumulator, and report store. The caller holds sh.mu —
// the synchronous path takes it per report, the staged folder once per
// drained batch.
func (s *Server) foldShardLocked(sh *ingestShard, rep *report.Report) error {
	if err := sh.agg.Fold(rep); err != nil {
		return err
	}
	if sh.acc != nil {
		if err := sh.acc.Fold(rep); err != nil {
			// Unreachable: validate() accepted the same shape agg.Fold just
			// folded, and Accum applies the identical shape rule.
			panic(fmt.Sprintf("collect: score fold: %v", err))
		}
	}
	if sh.db.NumCounters == 0 {
		// "Accept any" server: the adopted shape fixes the shard's
		// retention path too.
		sh.db.NumCounters = sh.agg.NumCounters
	}
	if s.mode == StoreAll {
		return sh.db.Add(rep)
	}
	return nil
}

// DB returns a snapshot of the stored reports (StoreAll mode). Shard
// stores are merged and ordered by run ID (stable for ties), so the
// snapshot is deterministic regardless of ingest interleaving.
func (s *Server) DB() *report.DB {
	s.init()
	s.drainStaging()
	db := report.NewDB(s.program, int(s.shape.Load()))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		db.Reports = append(db.Reports, sh.db.Reports...)
		sh.mu.Unlock()
	}
	sort.SliceStable(db.Reports, func(i, j int) bool {
		return db.Reports[i].RunID < db.Reports[j].RunID
	})
	return db
}

// Aggregate returns a snapshot of the sufficient statistics: the
// order-free merge of every shard's fold, identical to a serial fold of
// the same reports.
func (s *Server) Aggregate() *report.Aggregate {
	s.init()
	s.drainStaging()
	agg := report.NewAggregate(s.program, int(s.shape.Load()))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := agg.Merge(sh.agg)
		sh.mu.Unlock()
		if err != nil {
			// Unreachable: validate() fixes one shape for every shard.
			panic(fmt.Sprintf("collect: shard merge: %v", err))
		}
	}
	return agg
}

// ScoreState returns a snapshot of the live scoring statistics: the
// order-free merge of every shard's accumulator. The staging drain
// barrier runs first, then shards are locked one at a time (each report
// folds atomically within its shard), so the result is a serial fold of
// a definite subset of the submitted reports that includes everything
// acknowledged before the call — the consistency argument is DESIGN
// §11, extended to staged ingest in §13. It implements monitor.Source.
func (s *Server) ScoreState() *score.Accum {
	s.init()
	s.drainStaging()
	acc := score.NewAccum(int(s.shape.Load()), s.Sites)
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.acc == nil {
			continue
		}
		sh.mu.Lock()
		err := acc.Merge(sh.acc)
		sh.mu.Unlock()
		if err != nil {
			// Unreachable: validate() fixes one shape for every shard.
			panic(fmt.Sprintf("collect: score merge: %v", err))
		}
	}
	return acc
}

// ScoreStateAndDB captures the scoring statistics and the stored
// reports in one pass, taking each shard's accumulator and report slice
// under a single lock acquisition. Because every report enters both
// structures under that same lock, the pair describes exactly the same
// report subset — the verification hook concurrency tests use to check
// live rankings against the offline oracle mid-ingest (StoreAll only).
func (s *Server) ScoreStateAndDB() (*score.Accum, *report.DB) {
	s.init()
	s.drainStaging()
	acc := score.NewAccum(int(s.shape.Load()), s.Sites)
	db := report.NewDB(s.program, int(s.shape.Load()))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		var err error
		if sh.acc != nil {
			err = acc.Merge(sh.acc)
		}
		db.Reports = append(db.Reports, sh.db.Reports...)
		sh.mu.Unlock()
		if err != nil {
			panic(fmt.Sprintf("collect: score merge: %v", err))
		}
	}
	sort.SliceStable(db.Reports, func(i, j int) bool {
		return db.Reports[i].RunID < db.Reports[j].RunID
	})
	return acc, db
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Stop. It returns the bound address and flips /healthz to ok.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpServer.Serve(ln) }()
	s.health.Set(telemetry.HealthOK)
	return ln.Addr().String(), nil
}

// Stop drains the server: /healthz flips to shutting-down so load
// balancers stop routing, in-flight report POSTs are allowed up to
// ShutdownTimeout to complete before connections are forced closed, and
// then the staging rings are drained and the folder goroutines retired
// — every report acknowledged with a 202 is folded before Stop returns.
// A federated edge then takes one final cut and best-effort push (what
// the parent does not ack stays in the spill state for the next boot),
// spill persistence closes cleanly, and the monitor and quality workers
// stop last, after the final folds have notified them.
func (s *Server) Stop() error {
	var err error
	if s.httpServer != nil {
		s.health.Set(telemetry.HealthShuttingDown)
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
		defer cancel()
		if e := s.httpServer.Shutdown(ctx); e != nil {
			err = s.httpServer.Close()
		}
	}
	s.stopStaging()
	s.stopFederation(true)
	s.stopSpill()
	s.Monitor.Stop()
	s.Quality.Stop()
	return err
}

// Crash terminates the server abruptly: connections are severed, the
// federation loop dies without a flush, and the spill files are left
// exactly as the last append/cut wrote them — no final snapshot, no
// compaction. It is the crash-recovery test hook: a server restarted on
// the same SpillDir must recover every report acknowledged before the
// Crash call. (Background goroutines are still retired so tests do not
// leak them; the in-memory state they maintain is discarded unpersisted,
// which is exactly what a dead process would have left.)
func (s *Server) Crash() {
	if s.httpServer != nil {
		s.health.Set(telemetry.HealthShuttingDown)
		s.httpServer.Close()
	}
	s.stopFederation(false)
	s.stopStaging()
	s.Monitor.Stop()
	s.Quality.Stop()
	s.spillCloseAbrupt()
}

// Client submits reports to a remote collection server, with bounded
// jittered retries for transient failures. With BatchSize > 1 it
// buffers reports and ships them in one /reports POST per batch; it is
// safe for concurrent use from many fleet workers either way.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxAttempts bounds submission tries (default 3). Only transport
	// errors and 5xx responses are retried; a 4xx rejection is final.
	MaxAttempts int
	// RetryBackoff is the base delay before the first retry (default
	// 50ms), doubled per attempt with ±50% jitter.
	RetryBackoff time.Duration
	// RetryAfterCap bounds how long a server's Retry-After header (sent
	// with the 503 shed response under collector overload) can delay a
	// retry (default 2s). When a 503 carries the header the client
	// honors it — sleeping the advertised duration with up-only jitter
	// and counting client_backpressure_total — instead of its own
	// exponential backoff; 5xx responses without the header keep the
	// plain jittered-backoff schedule.
	RetryAfterCap time.Duration
	// Metrics receives submit latency/outcome metrics (default
	// telemetry.Default).
	Metrics *telemetry.Registry
	// BatchSize, when > 1, buffers submitted reports and POSTs them as
	// one batch to /reports whenever the buffer fills. Call Flush after
	// the last submission to ship the remainder. Set before first use.
	BatchSize int

	batchMu sync.Mutex
	pending []*report.Report
}

// NewClient creates a client for the server at baseURL
// (e.g. "http://127.0.0.1:8123").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) registry() *telemetry.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return telemetry.Default
}

// Submit posts one report, retrying transient failures. In batched mode
// the report may only be buffered; see SubmitContext.
func (c *Client) Submit(rep *report.Report) error {
	return c.SubmitContext(context.Background(), rep)
}

// SubmitContext posts one report, retrying transient failures. When ctx
// carries a trace span (trace.NewContext), the submission is recorded as
// a client.submit child span with one client.attempt child per POST, and
// the attempt's span context rides the X-CBI-Trace header so the
// collector continues the same trace.
//
// With BatchSize > 1 the report is buffered instead, and a filled
// buffer is shipped as one batched POST (whose spans and trace header
// parent to the submission that triggered the flush).
func (c *Client) SubmitContext(ctx context.Context, rep *report.Report) error {
	if c.BatchSize > 1 {
		c.batchMu.Lock()
		c.pending = append(c.pending, rep)
		if len(c.pending) < c.BatchSize {
			c.batchMu.Unlock()
			return nil
		}
		batch := c.pending
		c.pending = nil
		c.batchMu.Unlock()
		return c.postBatch(ctx, batch)
	}
	reg := c.registry()
	sub := trace.FromContext(ctx).StartChild("client.submit")
	sub.SetAttr("run_id", strconv.FormatUint(rep.RunID, 10))
	defer sub.End()
	start := time.Now()
	err := c.post(ctx, sub, "/report", rep.Encode())
	if err != nil {
		sub.SetAttr("outcome", "error")
		reg.Counter("client_submit_errors_total").Inc()
		return err
	}
	sub.SetAttr("outcome", "accepted")
	reg.Histogram("client_submit_seconds", telemetry.DefBuckets).
		Observe(time.Since(start).Seconds())
	reg.Counter("client_submits_total").Inc()
	return nil
}

// Flush ships any buffered reports (batched mode). Call it after the
// last submission; a fleet that exits without flushing strands its tail.
func (c *Client) Flush(ctx context.Context) error {
	c.batchMu.Lock()
	batch := c.pending
	c.pending = nil
	c.batchMu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	return c.postBatch(ctx, batch)
}

// Pending returns the number of buffered, unshipped reports.
func (c *Client) Pending() int {
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	return len(c.pending)
}

// postBatch encodes and ships one batch, with the same retry policy and
// trace propagation as single submissions.
func (c *Client) postBatch(ctx context.Context, batch []*report.Report) error {
	reg := c.registry()
	sub := trace.FromContext(ctx).StartChild("client.submit_batch")
	sub.SetAttr("batch", strconv.Itoa(len(batch)))
	defer sub.End()
	start := time.Now()
	err := c.post(ctx, sub, "/reports", report.EncodeBatch(batch))
	if err != nil {
		sub.SetAttr("outcome", "error")
		reg.Counter("client_batch_errors_total").Inc()
		return err
	}
	sub.SetAttr("outcome", "accepted")
	reg.Histogram("client_submit_seconds", telemetry.DefBuckets).
		Observe(time.Since(start).Seconds())
	reg.Counter("client_batch_flushes_total").Inc()
	reg.Counter("client_batch_reports_total").Add(uint64(len(batch)))
	return nil
}

// post drives the bounded-retry loop for one payload against one
// endpoint, recording a client.attempt span per POST under sub.
func (c *Client) post(ctx context.Context, sub *trace.Span, path string, body []byte) error {
	reg := c.registry()
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var err error
	var retryAfter time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			reg.Counter("client_submit_retries_total").Inc()
			if retryAfter > 0 {
				// The collector shed us with explicit back-pressure:
				// honor its Retry-After (capped in tryPost) with up-only
				// jitter so the fleet's retries spread out but never
				// return before the server asked.
				reg.Counter("client_backpressure_total").Inc()
				time.Sleep(time.Duration(float64(retryAfter) * (1.0 + 0.5*rand.Float64())))
			} else {
				// Exponential backoff with ±50% jitter so a rebooting
				// collector is not hammered in lockstep by the whole fleet.
				d := backoff << (attempt - 1)
				time.Sleep(time.Duration(float64(d) * (0.5 + rand.Float64())))
			}
		}
		att := sub.StartChild("client.attempt")
		att.SetAttr("attempt", strconv.Itoa(attempt+1))
		var retryable bool
		retryable, retryAfter, err = c.tryPost(ctx, att, path, body)
		att.End()
		if err == nil {
			sub.SetAttr("attempts", strconv.Itoa(attempt+1))
			return nil
		}
		if !retryable {
			break
		}
	}
	return err
}

// tryPost performs one POST and reports whether a failure is worth
// retrying, plus any server-advertised Retry-After delay (0 when the
// response carried none). The attempt span's context (not the whole
// submission's) rides the trace header, so server-side spans parent to
// the POST that actually reached them.
func (c *Client) tryPost(ctx context.Context, att *trace.Span, path string, body []byte) (retryable bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path,
		bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if hv := att.HeaderValue(); hv != "" {
		req.Header.Set(trace.Header, hv)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return true, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		return false, 0, nil
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			retryAfter = d
			capAt := c.RetryAfterCap
			if capAt <= 0 {
				capAt = 2 * time.Second
			}
			if retryAfter > capAt {
				retryAfter = capAt
			}
		}
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode >= 500, retryAfter, fmt.Errorf("collect: server rejected report: %s: %s", resp.Status, msg)
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3, which allows both delay-seconds and an HTTP-date. The date
// forms accepted are the three http.ParseTime layouts (IMF-fixdate,
// obsolete RFC 850, ANSI C asctime); a date already in the past means
// "retry now" (zero delay), and anything unparseable reports ok=false
// so the caller falls back to its own backoff schedule.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Stats fetches the server's run summary.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := c.HTTP.Get(c.BaseURL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("collect: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
