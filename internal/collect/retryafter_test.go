package collect

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cbi/internal/report"
)

func TestParseRetryAfterDelaySeconds(t *testing.T) {
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"0", 0, true},
		{"1", time.Second, true},
		{"120", 2 * time.Minute, true},
		{"-1", 0, false}, // negative delay-seconds is not valid RFC 9110
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	future := now.Add(90 * time.Second)

	// All three layouts http.ParseTime accepts: IMF-fixdate, obsolete
	// RFC 850, and ANSI C asctime.
	for _, layout := range []string{http.TimeFormat, time.RFC850, time.ANSIC} {
		v := future.Format(layout)
		got, ok := parseRetryAfter(v, now)
		if !ok {
			t.Errorf("date %q (%s) not accepted", v, layout)
			continue
		}
		if got != 90*time.Second {
			t.Errorf("date %q: delay %v, want 90s", v, got)
		}
	}

	// A date already in the past means "retry now", not an error and not
	// a negative sleep.
	past := now.Add(-time.Hour).Format(http.TimeFormat)
	if got, ok := parseRetryAfter(past, now); !ok || got != 0 {
		t.Errorf("past date: %v, %v; want 0, true", got, ok)
	}
}

func TestParseRetryAfterGarbage(t *testing.T) {
	now := time.Now()
	for _, v := range []string{
		"",
		"soon",
		"12.5",
		"1h",
		"Mon, 99 Xxx 2026 99:99:99 GMT",
		"∞",
	} {
		if d, ok := parseRetryAfter(v, now); ok || d != 0 {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want 0, false", v, d, ok)
		}
	}
}

// retryAfterServer answers every POST with 503 and the given
// Retry-After header value until `fail` responses have been sent, then
// accepts with 202.
type retryAfterServer struct {
	header string
	fail   int
	posts  int
}

func (s *retryAfterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.posts++
	if s.posts <= s.fail {
		w.Header().Set("Retry-After", s.header)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// TestClientCapsRetryAfterBothForms proves RetryAfterCap bounds the
// honored delay for the delay-seconds form and for the HTTP-date form
// alike: a server demanding an hour-long pause must not stall a client
// capped at a few milliseconds.
func TestClientCapsRetryAfterBothForms(t *testing.T) {
	forms := map[string]string{
		"delay-seconds": "3600",
		"http-date":     time.Now().Add(time.Hour).UTC().Format(http.TimeFormat),
	}
	for name, header := range forms {
		t.Run(name, func(t *testing.T) {
			backend := &retryAfterServer{header: header, fail: 2}
			ts := httptest.NewServer(backend)
			defer ts.Close()

			c := NewClient(ts.URL)
			c.MaxAttempts = 5
			c.RetryBackoff = time.Millisecond
			c.RetryAfterCap = 5 * time.Millisecond

			start := time.Now()
			err := c.Submit(&report.Report{Program: "p", Counters: []uint64{1}})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("submit after retries: %v", err)
			}
			if backend.posts != 3 {
				t.Errorf("posts = %d, want 3 (two 503s then a 202)", backend.posts)
			}
			// Two capped waits (5ms each) plus jitter and scheduling slack:
			// anywhere near the server's requested hour means the cap failed.
			if elapsed > 2*time.Second {
				t.Errorf("submission took %v; Retry-After cap not applied", elapsed)
			}
		})
	}
}
