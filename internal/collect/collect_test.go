package collect

import (
	"net/http"
	"strings"
	"testing"

	"cbi/internal/report"
)

func mkReport(id uint64, crashed bool) *report.Report {
	return &report.Report{
		RunID:    id,
		Program:  "p",
		Crashed:  crashed,
		Counters: []uint64{id, 0, 1},
	}
}

func TestServerRoundTripOverHTTP(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	client := NewClient("http://" + addr)
	for i := 0; i < 20; i++ {
		if err := client.Submit(mkReport(uint64(i), i%4 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 20 || st.Crashes != 5 {
		t.Errorf("stats: %+v", st)
	}
	db := srv.DB()
	if db.Len() != 20 {
		t.Errorf("stored: %d", db.Len())
	}
}

func TestServerAggregateOnlyDiscardsReports(t *testing.T) {
	srv := NewServer("p", 3, AggregateOnly)
	for i := 0; i < 10; i++ {
		if err := srv.Submit(mkReport(uint64(i+1), i == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if srv.DB().Len() != 0 {
		t.Error("aggregate-only server must not retain reports")
	}
	agg := srv.Aggregate()
	if agg.Runs != 10 || agg.Crashes != 1 {
		t.Errorf("aggregate: %+v", agg)
	}
	// Counter 0 was nonzero in every run with id>0; counter 2 always.
	if !agg.NonzeroInSuccess[2] || !agg.NonzeroInFailure[2] {
		t.Error("bit tracking broken")
	}
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	// Garbage body.
	resp, err := http.Post(base+"/report", "application/octet-stream", strings.NewReader("nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage: %s", resp.Status)
	}

	// Wrong method.
	resp, err = http.Get(base + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report: %s", resp.Status)
	}

	// Mismatched counter space.
	bad := &report.Report{Program: "p", Counters: make([]uint64, 99)}
	if err := NewClient(base).Submit(bad); err == nil {
		t.Error("mismatched report accepted")
	}
}

func TestServerSnapshotsAreIsolated(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	if err := srv.Submit(mkReport(1, false)); err != nil {
		t.Fatal(err)
	}
	db := srv.DB()
	agg := srv.Aggregate()
	if err := srv.Submit(mkReport(2, true)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 || agg.Runs != 1 {
		t.Error("snapshots must not see later submissions")
	}
}
