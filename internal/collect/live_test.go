package collect

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/monitor"
	"cbi/internal/report"
)

// liveReport builds a sparse synthetic report in an n-counter space.
func liveReport(rng *rand.Rand, id uint64, n int) *report.Report {
	counters := make([]uint64, n)
	for c := 0; c < n; c++ {
		if rng.Float64() < 0.15 {
			counters[c] = uint64(rng.Intn(4) + 1)
		}
	}
	return &report.Report{
		RunID:    id,
		Program:  "p",
		Crashed:  rng.Float64() < 0.3,
		Counters: counters,
	}
}

// TestLiveRankingsDuringConcurrentIngest is the satellite concurrency
// test: batched clients hammer a sharded collector while one goroutine
// streams /watch and another repeatedly checks the consistency oracle —
// at any instant, the live scoring state must rank identically to an
// offline score.Score over the exact report subset it covers
// (ScoreStateAndDB captures both under the same shard locks). Run it
// under -race.
func TestLiveRankingsDuringConcurrentIngest(t *testing.T) {
	const (
		n          = 64
		submitters = 8
		perWorker  = 250
	)
	spans := make([]score.SiteSpan, n/2)
	for i := range spans {
		spans[i] = score.SiteSpan{Base: 2 * i, Len: 2}
	}
	srv := NewServer("p", n, StoreAll)
	srv.Shards = 8
	srv.Sites = spans
	srv.Monitor = monitor.New(monitor.Config{TopK: 5, EveryReports: 50, StableFor: 3})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	// SSE watcher: runs must be nondecreasing across snapshot emissions
	// (each snapshot is a later consistent cut than the one before).
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	var watchWG sync.WaitGroup
	var snapshotEvents atomic.Int64
	watchErr := make(chan error, 1)
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		req, _ := http.NewRequestWithContext(watchCtx, http.MethodGet, base+"/watch", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			watchErr <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		event, lastRuns := "", -1
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "snapshot":
				var snap monitor.Snapshot
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
					watchErr <- err
					return
				}
				if snap.Runs < lastRuns {
					watchErr <- fmt.Errorf("snapshot runs went backwards: %d after %d", snap.Runs, lastRuns)
					return
				}
				lastRuns = snap.Runs
				snapshotEvents.Add(1)
			}
		}
		watchErr <- nil
	}()

	// Consistency oracle: whatever subset of reports the shards hold at
	// this instant, the live rankings over it equal the offline pass.
	oracleCtx, stopOracle := context.WithCancel(context.Background())
	oracleErr := make(chan error, 1)
	var oracleWG sync.WaitGroup
	var oracleChecks int
	oracleWG.Add(1)
	go func() {
		defer oracleWG.Done()
		for oracleCtx.Err() == nil {
			acc, db := srv.ScoreStateAndDB()
			if acc.Runs != db.Len() {
				oracleErr <- fmt.Errorf("inconsistent cut: accum has %d runs, db %d", acc.Runs, db.Len())
				return
			}
			live := score.Rank(acc.Predicates())
			offline := score.Rank(score.Score(db, spans))
			if !reflect.DeepEqual(live, offline) {
				oracleErr <- fmt.Errorf("live rankings diverge from serial-fold oracle at %d runs", acc.Runs)
				return
			}
			oracleChecks++
			time.Sleep(time.Millisecond)
		}
		oracleErr <- nil
	}()

	var ingestWG sync.WaitGroup
	for g := 0; g < submitters; g++ {
		ingestWG.Add(1)
		go func(g int) {
			defer ingestWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			client := NewClient(base)
			client.BatchSize = 16
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				rep := liveReport(rng, uint64(g*1_000_000+i), n)
				if err := client.SubmitContext(ctx, rep); err != nil {
					t.Error(err)
					return
				}
			}
			if err := client.Flush(ctx); err != nil {
				t.Error(err)
			}
		}(g)
	}
	ingestWG.Wait()

	stopOracle()
	oracleWG.Wait()
	if err := <-oracleErr; err != nil {
		t.Fatal(err)
	}
	if oracleChecks == 0 {
		t.Fatal("oracle never ran")
	}

	// Final check over the complete DB: the HTTP rankings (fresh) equal
	// offline score.Score+Rank on everything ingested.
	srv.Monitor.Snapshot()
	resp, err := http.Get(base + "/rankings?fresh=1&top=0")
	if err != nil {
		t.Fatal(err)
	}
	var fresh struct {
		Runs int `json:"runs"`
		Top  []struct {
			Counter    int     `json:"counter"`
			Importance float64 `json:"importance"`
		} `json:"top"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fresh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fresh.Runs != submitters*perWorker {
		t.Fatalf("final rankings cover %d runs, want %d", fresh.Runs, submitters*perWorker)
	}
	offline := score.Rank(score.Score(srv.DB(), spans))
	if len(offline) != len(fresh.Top) {
		t.Fatalf("final rankings: %d live, %d offline", len(fresh.Top), len(offline))
	}
	for i := range offline {
		if fresh.Top[i].Counter != offline[i].Counter || fresh.Top[i].Importance != offline[i].Importance {
			t.Fatalf("final ranking #%d: live (%d, %v) != offline (%d, %v)",
				i+1, fresh.Top[i].Counter, fresh.Top[i].Importance,
				offline[i].Counter, offline[i].Importance)
		}
	}

	// Give the watcher a moment to see the final snapshot, then stop it.
	deadline := time.Now().Add(5 * time.Second)
	for snapshotEvents.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stopWatch()
	watchWG.Wait()
	if err := <-watchErr; err != nil && !strings.Contains(err.Error(), "context canceled") {
		t.Fatal(err)
	}
	if snapshotEvents.Load() == 0 {
		t.Fatal("watcher saw no snapshot events")
	}
}

// TestStatsIncludesTriageFields: /stats carries the live-triage summary
// when a monitor is attached (and zero values when not).
func TestStatsIncludesTriageFields(t *testing.T) {
	srv := NewServer("p", 3, AggregateOnly)
	srv.Monitor = monitor.New(monitor.Config{TopK: 3, EveryReports: 0})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	rep := &report.Report{RunID: 1, Program: "p", Crashed: true, Counters: []uint64{1, 0, 2}}
	if err := srv.Submit(rep); err != nil {
		t.Fatal(err)
	}
	srv.Monitor.Snapshot()

	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Runs              int   `json:"runs"`
		RankingsSnapshots int   `json:"rankings_snapshots"`
		LastSnapshotUnix  int64 `json:"last_snapshot_unix"`
		Converged         bool  `json:"converged"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.RankingsSnapshots != 1 || st.LastSnapshotUnix == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Converged {
		t.Fatal("one snapshot must not be converged")
	}
}

// TestHTTPRequestMetrics: every route — including 405/413 error paths —
// lands in collect_http_requests_total{endpoint,code}.
func TestHTTPRequestMetrics(t *testing.T) {
	srv := NewServer("p", 3, AggregateOnly)
	srv.Monitor = monitor.New(monitor.Config{TopK: 3})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	// 405s on POST-only and GET-only endpoints.
	if resp, err := http.Get(base + "/report"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /report = %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(base+"/stats", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(base+"/rankings", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// 413 on an oversized body.
	big := strings.NewReader(strings.Repeat("x", MaxBodyBytes+1))
	if resp, err := http.Post(base+"/report", "application/octet-stream", big); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized POST /report = %d", resp.StatusCode)
		}
	}
	// A successful submission and a stats read.
	rep := &report.Report{RunID: 1, Program: "p", Counters: []uint64{1, 0, 0}}
	client := NewClient(base)
	if err := client.Submit(rep); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		`collect_http_requests_total{endpoint="/report",code="405"} 1`,
		`collect_http_requests_total{endpoint="/report",code="413"} 1`,
		`collect_http_requests_total{endpoint="/report",code="202"} 1`,
		`collect_http_requests_total{endpoint="/stats",code="405"} 1`,
		`collect_http_requests_total{endpoint="/stats",code="200"} 1`,
		`collect_http_requests_total{endpoint="/rankings",code="405"} 1`,
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
