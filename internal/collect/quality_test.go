package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"cbi/internal/quality"
	"cbi/internal/report"
)

// TestQualityEndpointsMounted verifies the collector mounts /quality and
// /debug/badreports when an engine is attached, and not otherwise.
func TestQualityEndpointsMounted(t *testing.T) {
	srv := NewServer("p", 3, AggregateOnly)
	srv.Quality = quality.New(quality.Config{Interval: -1})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	for _, path := range []string{"/quality", "/debug/badreports"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}

	bare := NewServer("p", 3, AggregateOnly)
	bareAddr, err := bare.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Stop()
	resp, err := http.Get("http://" + bareAddr + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /quality without engine: %s, want 404", resp.Status)
	}
}

// TestQualityConcurrentBatchedSubmitters hammers the collector with 8
// concurrent batched submitters while other goroutines inject malformed
// payloads and poll /quality, then asserts the final snapshot adds up
// exactly — no torn or lost counts. Run under -race this also proves the
// hot-path observation points are data-race free.
func TestQualityConcurrentBatchedSubmitters(t *testing.T) {
	const (
		submitters   = 8
		perSubmitter = 400
		malformed    = 60
	)
	srv := NewServer("p", 8, AggregateOnly)
	srv.Quality = quality.New(quality.Config{Interval: -1}) // manual ticks only
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	var wg sync.WaitGroup
	errs := make(chan error, submitters+2)

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClient(base)
			client.BatchSize = 32
			for i := 0; i < perSubmitter; i++ {
				rep := &report.Report{
					RunID:    uint64(w*perSubmitter + i + 1),
					Program:  "p",
					Counters: []uint64{uint64(i), 0, 1, 0, uint64(w), 0, 0, 2},
				}
				if err := client.Submit(rep); err != nil {
					errs <- fmt.Errorf("submitter %d: %w", w, err)
					return
				}
			}
			if err := client.Flush(context.Background()); err != nil {
				errs <- fmt.Errorf("submitter %d flush: %w", w, err)
			}
		}(w)
	}

	// Malformed traffic interleaved with the real submitters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < malformed; i++ {
			resp, err := http.Post(base+"/report", "application/octet-stream",
				strings.NewReader(fmt.Sprintf("garbage %d", i)))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				errs <- fmt.Errorf("garbage POST: %s", resp.Status)
				return
			}
		}
	}()

	// Snapshot reader racing the writers: every observed snapshot must be
	// internally coherent (monotone totals, never more than submitted).
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastAcc, lastRej uint64
		for i := 0; i < 50; i++ {
			srv.Quality.Tick()
			snap := srv.Quality.TakeSnapshot()
			if snap.Accepted < lastAcc || snap.RejectedTotal < lastRej {
				errs <- fmt.Errorf("snapshot went backwards: accepted %d->%d rejected %d->%d",
					lastAcc, snap.Accepted, lastRej, snap.RejectedTotal)
				return
			}
			if snap.Accepted > submitters*perSubmitter {
				errs <- fmt.Errorf("accepted %d > %d submitted", snap.Accepted, submitters*perSubmitter)
				return
			}
			lastAcc, lastRej = snap.Accepted, snap.RejectedTotal
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final accounting must be exact.
	resp, err := http.Get(base + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap quality.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if want := uint64(submitters * perSubmitter); snap.Accepted != want {
		t.Errorf("accepted = %d, want %d", snap.Accepted, want)
	}
	if snap.RejectedTotal != malformed || snap.Rejected["decode"] != malformed {
		t.Errorf("rejected = %d (%v), want %d decode", snap.RejectedTotal, snap.Rejected, malformed)
	}
	if snap.Quarantined != 0 {
		t.Errorf("quarantined = %d, want 0", snap.Quarantined)
	}
	if snap.ReportBytes.Count != uint64(submitters*perSubmitter) {
		t.Errorf("bytes sketch count = %d", snap.ReportBytes.Count)
	}
	if agg := srv.Aggregate(); agg.Runs != submitters*perSubmitter {
		t.Errorf("aggregate runs = %d", agg.Runs)
	}
}

// TestQualityQuarantineCounting submits a decode-lenient payload and
// checks it is accepted, counted as quarantined, and lands in the
// forensic ring with its run ID.
func TestQualityQuarantineCounting(t *testing.T) {
	srv := NewServer("p", 4, AggregateOnly)
	srv.Quality = quality.New(quality.Config{Interval: -1})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	// A well-formed report with a redundant trailing zero pair: decodes
	// leniently (cacheOK=false) and must be quarantined, not rejected.
	enc := (&report.Report{RunID: 77, Program: "p", Counters: make([]uint64, 4)}).Encode()
	sloppy := append(enc[:len(enc)-2], 1, 0, 0, 0)
	resp, err := http.Post(base+"/report", "application/octet-stream", strings.NewReader(string(sloppy)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("lenient payload: %s, want 202", resp.Status)
	}

	snap := srv.Quality.TakeSnapshot()
	if snap.Accepted != 1 || snap.Quarantined != 1 {
		t.Errorf("accepted %d quarantined %d, want 1/1", snap.Accepted, snap.Quarantined)
	}
	bad, total := srv.Quality.BadReports()
	if total != 1 || len(bad) != 1 || bad[0].Reason != "quarantine" || bad[0].RunID != 77 {
		t.Errorf("forensic ring: total %d, entries %+v", total, bad)
	}
}
