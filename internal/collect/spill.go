// Spill-to-disk persistence: an edge collector's crash-durability
// layer.
//
// Two files live under SpillDir. "reports.log" is an append-only
// journal of accepted report bodies in the store.go framing (uvarint
// length prefix + encoded report — a /reports batch body is spliced in
// verbatim after its header, since its frame region is byte-identical).
// "state.cbs" is a periodic snapshot ("CBS1"): the cumulative
// aggregate/accumulator/quality seed, the federation identity (edge ID,
// epoch cursor, unacknowledged epoch payloads), and — on a root — the
// per-edge merge cursors. Snapshots are written tmp+rename, so the
// state file is always a complete image.
//
// The ordering contract that makes recovery exact is a reader-writer
// gate: HTTP handlers enqueue-then-append under gate.RLock, and a
// snapshot takes gate.Lock, runs the staging drain barrier, captures
// the merged state, writes it, and only then compacts the log
// (AggregateOnly mode). Holding the write gate across that whole
// sequence guarantees every logged report is folded into the captured
// seed before the log is truncated, and every report accepted after the
// capture lands in the fresh log — so seed ∪ log always covers
// everything acknowledged with a 202. In StoreAll mode the log is never
// truncated (it doubles as the report database) and replay rebuilds the
// shards from scratch. The crash-recovery accounting argument is
// DESIGN §14.
//
// Appends are write(2) calls on an O_APPEND descriptor — no user-space
// buffering, no fsync. Durability is therefore "up to the OS page
// cache": a process kill loses nothing acknowledged, a whole-machine
// power cut can lose the cache tail. A torn final frame from such a
// crash is detected on replay (report.ReadAllPrefix) and truncated
// away; it was never acknowledged, because the 202 happens strictly
// after the write returns.
package collect

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"encoding/binary"

	"cbi/internal/analysis/score"
	"cbi/internal/quality"
	"cbi/internal/report"
)

// defaultSpillSnapshotInterval is the standalone snapshot cadence when
// SpillSnapshotInterval is unset. Federated edges ignore it: they
// persist at every epoch cut instead.
const defaultSpillSnapshotInterval = 30 * time.Second

var spillMagic = []byte("CBS1")

const (
	spillVersion          = 1
	spillSectionAgg       = 1 // seed report.Aggregate.EncodeStats
	spillSectionAcc       = 2 // seed score.Accum.EncodeStats
	spillSectionQual      = 3 // seed quality.Digest.Encode
	spillSectionPending   = 4 // unacked federation epochs
	spillSectionMergeSeen = 5 // root-side per-edge epoch cursors
	maxSpillSections      = 64
	maxSpillPending       = 1 << 16
	maxSpillEdges         = 1 << 20
)

// spillState is the runtime of the persistence layer.
type spillState struct {
	// gate is the append/snapshot ordering contract: handlers hold the
	// read side around enqueue+append, snapshots hold the write side
	// around drain+capture+persist+compact.
	gate      sync.RWMutex
	logPath   string
	statePath string
	logF      *os.File
	closed    bool // write side of gate
	replayed  int
	restored  *fedRestore // non-nil when a state file was loaded

	loopStop     chan struct{}
	loopStopOnce sync.Once
	loopDone     chan struct{}
}

// fedRestore is the federation identity recovered from a state file,
// handed to initFederation so epochs and dedup survive a restart.
type fedRestore struct {
	edgeID   string
	epoch    uint64
	baseAgg  *report.Aggregate
	baseAcc  *score.Accum
	baseQual quality.Digest
	pending  []fedPending
}

// spillPersisted is the raw decoded form of a "CBS1" state file.
type spillPersisted struct {
	edgeID      string
	epoch       uint64
	program     string
	numCounters int
	numSpans    int
	aggRaw      []byte
	accRaw      []byte
	qualRaw     []byte
	pending     []fedPending
	mergeSeen   map[string]uint64
}

// frameReport wraps one encoded report body in the log framing.
func frameReport(body []byte) []byte {
	buf := binary.AppendUvarint(make([]byte, 0, len(body)+binary.MaxVarintLen64), uint64(len(body)))
	return append(buf, body...)
}

// initSpill loads any persisted state and replays the report log, then
// opens the append handle. Called once from init, after the shards are
// allocated and before staging, the monitor, and federation start. A
// spill directory that exists but cannot be decoded or folded is a
// boot-time fault and panics loudly — starting fresh would silently
// discard acknowledged reports.
func (s *Server) initSpill() {
	if s.SpillDir == "" {
		return
	}
	if err := os.MkdirAll(s.SpillDir, 0o755); err != nil {
		panic(fmt.Sprintf("collect: spill dir: %v", err))
	}
	sp := &spillState{
		logPath:   filepath.Join(s.SpillDir, "reports.log"),
		statePath: filepath.Join(s.SpillDir, "state.cbs"),
	}
	s.spill = sp
	if data, err := os.ReadFile(sp.statePath); err == nil {
		st, derr := decodeSpillState(data)
		if derr != nil {
			panic(fmt.Sprintf("collect: spill state %s: %v", sp.statePath, derr))
		}
		s.restoreSpillState(sp, st)
	} else if !os.IsNotExist(err) {
		panic(fmt.Sprintf("collect: spill state: %v", err))
	}
	s.replaySpillLog(sp)
	logF, err := os.OpenFile(sp.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		panic(fmt.Sprintf("collect: spill log: %v", err))
	}
	sp.logF = logF
}

// restoreSpillState applies a decoded snapshot: shape adoption, shard
// seeding (AggregateOnly — in StoreAll the untruncated log rebuilds the
// shards), quality totals, merge cursors, and the federation identity.
func (s *Server) restoreSpillState(sp *spillState, st *spillPersisted) {
	if s.program != "" && st.program != "" && st.program != s.program {
		panic(fmt.Sprintf("collect: spill state is for program %q, server collects %q", st.program, s.program))
	}
	if st.numCounters > 0 {
		if want := s.shape.Load(); want == 0 {
			s.shape.Store(int64(st.numCounters))
		} else if int64(st.numCounters) != want {
			panic(fmt.Sprintf("collect: spill state has counter shape %d, server expects %d", st.numCounters, want))
		}
	}
	restored := &fedRestore{edgeID: st.edgeID, epoch: st.epoch, pending: st.pending}
	if st.aggRaw != nil {
		seedAgg, err := report.DecodeAggregateStats(st.aggRaw)
		if err != nil {
			panic(fmt.Sprintf("collect: spill state aggregate: %v", err))
		}
		seedAgg.Program = st.program
		restored.baseAgg = seedAgg
	}
	if st.accRaw != nil && s.accumsEnabled() {
		if st.numSpans != len(s.Sites) {
			panic(fmt.Sprintf("collect: spill state has %d site spans, server has %d", st.numSpans, len(s.Sites)))
		}
		seedAcc, err := score.DecodeAccumStats(st.accRaw, s.Sites)
		if err != nil {
			panic(fmt.Sprintf("collect: spill state accumulator: %v", err))
		}
		restored.baseAcc = seedAcc
	}
	if st.qualRaw != nil {
		dig, err := quality.DecodeDigest(st.qualRaw)
		if err != nil {
			panic(fmt.Sprintf("collect: spill state quality digest: %v", err))
		}
		restored.baseQual = dig
	}
	if s.mode == AggregateOnly {
		sh := &s.shards[0]
		if restored.baseAgg != nil {
			if err := sh.agg.Merge(restored.baseAgg); err != nil {
				panic(fmt.Sprintf("collect: spill seed: %v", err))
			}
		}
		if restored.baseAcc != nil && sh.acc != nil {
			if err := sh.acc.Merge(restored.baseAcc); err != nil {
				panic(fmt.Sprintf("collect: spill seed: %v", err))
			}
		}
		// Merge cursors are only restored alongside the seed that holds
		// the merged state; a StoreAll root rebuilds from its own log
		// only, so stale cursors there would refuse re-pushed epochs it
		// no longer has.
		if len(st.mergeSeen) > 0 {
			s.mergeSeen = st.mergeSeen
		}
	}
	// The totals restore deliberately skips the tick windows: hours of
	// pre-crash history must not hit the rate trackers as one instant.
	s.Quality.AbsorbTotals(restored.baseQual)
	sp.restored = restored
}

// replaySpillLog folds every intact logged report back into the shards.
// A torn tail (the frame a crash interrupted) is truncated away — it
// predates any acknowledgment by construction.
func (s *Server) replaySpillLog(sp *spillState) {
	f, err := os.Open(sp.logPath)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		panic(fmt.Sprintf("collect: spill log: %v", err))
	}
	reps, good, rerr := report.ReadAllPrefix(f)
	f.Close()
	for _, rep := range reps {
		if ferr := s.fold(rep); ferr != nil {
			s.m.spillErrors.Inc()
			continue
		}
		sp.replayed++
	}
	if rerr != nil {
		if terr := os.Truncate(sp.logPath, good); terr != nil {
			panic(fmt.Sprintf("collect: spill log truncate: %v", terr))
		}
	}
	s.m.spillReplayed.Add(uint64(sp.replayed))
	if s.reg.LogEnabled() {
		s.reg.Event("spill_replayed", map[string]any{
			"reports": sp.replayed, "torn_tail": rerr != nil,
		})
	}
}

// spillAppend journals pre-framed report bytes. The caller holds
// gate.RLock, so no snapshot can interleave between the staging enqueue
// (or synchronous fold) and this append. One Write call per request
// keeps concurrent appenders' frames contiguous (O_APPEND).
func (s *Server) spillAppend(frames []byte) error {
	sp := s.spill
	if sp.closed {
		return nil
	}
	if _, err := sp.logF.Write(frames); err != nil {
		return err
	}
	s.m.spillAppends.Inc()
	s.m.spillBytes.Add(uint64(len(frames)))
	return nil
}

// buildSpillState serializes a snapshot image: the seed cut, the
// federation identity (caller holds fed.mu when federation is active),
// and the merge cursors (copied under mergeMu).
func (s *Server) buildSpillState(cut serverCut) []byte {
	if cut.agg == nil {
		cut.agg = report.NewAggregate(s.program, int(s.shape.Load()))
	}
	var edgeID string
	var epoch uint64
	var pending []fedPending
	if f := s.fed; f != nil {
		edgeID, epoch, pending = f.edgeID, f.epoch, f.pending
	}
	prog := s.program
	if prog == "" {
		prog = cut.agg.Program
	}
	e := &wireEnc{buf: append([]byte(nil), spillMagic...)}
	e.byteVal(spillVersion)
	e.bytes([]byte(edgeID))
	e.uvarint(epoch)
	e.bytes([]byte(prog))
	e.uvarint(uint64(cut.agg.NumCounters))
	e.uvarint(uint64(len(s.Sites)))
	type section struct {
		tag byte
		raw []byte
	}
	sections := []section{{spillSectionAgg, cut.agg.EncodeStats()}}
	if cut.acc != nil {
		sections = append(sections, section{spillSectionAcc, cut.acc.EncodeStats()})
	}
	sections = append(sections, section{spillSectionQual, cut.qual.Encode()})
	if len(pending) > 0 {
		pe := &wireEnc{}
		pe.uvarint(uint64(len(pending)))
		for _, p := range pending {
			pe.uvarint(p.epoch)
			pe.bytes(p.payload)
		}
		sections = append(sections, section{spillSectionPending, pe.buf})
	}
	if s.AcceptMerges {
		s.mergeMu.Lock()
		var me *wireEnc
		if len(s.mergeSeen) > 0 {
			me = &wireEnc{}
			me.uvarint(uint64(len(s.mergeSeen)))
			for id, ep := range s.mergeSeen {
				me.bytes([]byte(id))
				me.uvarint(ep)
			}
		}
		s.mergeMu.Unlock()
		if me != nil {
			sections = append(sections, section{spillSectionMergeSeen, me.buf})
		}
	}
	e.uvarint(uint64(len(sections)))
	for _, sec := range sections {
		e.byteVal(sec.tag)
		e.bytes(sec.raw)
	}
	return e.buf
}

func decodeSpillState(data []byte) (*spillPersisted, error) {
	if len(data) < len(spillMagic) || string(data[:len(spillMagic)]) != string(spillMagic) {
		return nil, fmt.Errorf("bad magic")
	}
	d := &wireDec{buf: data, off: len(spillMagic)}
	if v := d.byteVal(); d.err || v != spillVersion {
		return nil, fmt.Errorf("version %d, want %d", v, spillVersion)
	}
	st := &spillPersisted{}
	st.edgeID = string(d.bytes())
	st.epoch = d.uvarint()
	st.program = string(d.bytes())
	st.numCounters = int(d.uvarint())
	st.numSpans = int(d.uvarint())
	sections := d.uvarint()
	if d.err || sections > maxSpillSections {
		return nil, fmt.Errorf("malformed header")
	}
	for i := uint64(0); i < sections; i++ {
		tag := d.byteVal()
		raw := d.bytes()
		if d.err {
			return nil, fmt.Errorf("malformed section")
		}
		switch tag {
		case spillSectionAgg:
			st.aggRaw = raw
		case spillSectionAcc:
			st.accRaw = raw
		case spillSectionQual:
			st.qualRaw = raw
		case spillSectionPending:
			pd := &wireDec{buf: raw}
			n := pd.uvarint()
			if pd.err || n > maxSpillPending {
				return nil, fmt.Errorf("malformed pending section")
			}
			for j := uint64(0); j < n; j++ {
				ep := pd.uvarint()
				payload := pd.bytes()
				if pd.err {
					return nil, fmt.Errorf("malformed pending epoch")
				}
				st.pending = append(st.pending, fedPending{epoch: ep, payload: payload})
			}
			if pd.off != len(raw) {
				return nil, fmt.Errorf("malformed pending section")
			}
		case spillSectionMergeSeen:
			md := &wireDec{buf: raw}
			n := md.uvarint()
			if md.err || n > maxSpillEdges {
				return nil, fmt.Errorf("malformed merge-cursor section")
			}
			st.mergeSeen = make(map[string]uint64, n)
			for j := uint64(0); j < n; j++ {
				id := string(md.bytes())
				ep := md.uvarint()
				if md.err {
					return nil, fmt.Errorf("malformed merge cursor")
				}
				st.mergeSeen[id] = ep
			}
			if md.off != len(raw) {
				return nil, fmt.Errorf("malformed merge-cursor section")
			}
		default:
			// Unknown section from a newer build: ignore.
		}
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("trailing bytes")
	}
	return st, nil
}

// writeSpillState lands a snapshot image atomically (tmp + rename).
func (s *Server) writeSpillState(data []byte) error {
	sp := s.spill
	tmp := sp.statePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, sp.statePath); err != nil {
		os.Remove(tmp)
		return err
	}
	s.m.spillSnapshots.Inc()
	return nil
}

// persistSpillLocked writes the snapshot for a cut and compacts the log
// (AggregateOnly mode: every logged report is folded into the seed by
// the time the caller captured it, so the log restarts empty). Caller
// holds gate.Lock and — when federation is active — fed.mu.
func (s *Server) persistSpillLocked(cut serverCut) error {
	if err := s.writeSpillState(s.buildSpillState(cut)); err != nil {
		return err
	}
	if s.mode == AggregateOnly {
		if err := s.spill.logF.Truncate(0); err != nil {
			return err
		}
	}
	return nil
}

// spillSnapshot runs one standalone snapshot cycle: block appends,
// drain staging, capture, persist, compact. Federated edges never call
// this — their snapshots ride the epoch cuts so the persisted seed
// always equals the diff baseline.
func (s *Server) spillSnapshot() {
	sp := s.spill
	sp.gate.Lock()
	defer sp.gate.Unlock()
	if sp.closed {
		return
	}
	if err := s.persistSpillLocked(s.captureCut()); err != nil {
		s.m.spillErrors.Inc()
	}
}

// startSpillLoop launches the periodic standalone snapshotter. No-op
// for federated edges (cuts persist) and spill-less servers. Called
// from init after federation is wired.
func (s *Server) startSpillLoop() {
	sp := s.spill
	if sp == nil || s.fed != nil {
		return
	}
	interval := s.SpillSnapshotInterval
	if interval <= 0 {
		interval = defaultSpillSnapshotInterval
	}
	sp.loopStop = make(chan struct{})
	sp.loopDone = make(chan struct{})
	go func() {
		defer close(sp.loopDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-sp.loopStop:
				return
			case <-t.C:
				s.spillSnapshot()
			}
		}
	}()
}

// stopSpill finishes persistence cleanly: stop the snapshot loop, take
// a final snapshot (standalone — a federated edge's Stop flush already
// persisted at its final cut), and close the log.
func (s *Server) stopSpill() {
	sp := s.spill
	if sp == nil {
		return
	}
	if sp.loopStop != nil {
		sp.loopStopOnce.Do(func() { close(sp.loopStop) })
		<-sp.loopDone
	}
	if s.fed == nil {
		s.spillSnapshot()
	}
	sp.gate.Lock()
	sp.closed = true
	if sp.logF != nil {
		sp.logF.Close()
	}
	sp.gate.Unlock()
}

// spillCloseAbrupt is the Crash() path: release the descriptor without
// snapshotting, leaving exactly what a dead process would leave —
// whatever state file the last cut wrote plus the raw log.
func (s *Server) spillCloseAbrupt() {
	sp := s.spill
	if sp == nil {
		return
	}
	if sp.loopStop != nil {
		sp.loopStopOnce.Do(func() { close(sp.loopStop) })
		<-sp.loopDone
	}
	sp.gate.Lock()
	sp.closed = true
	if sp.logF != nil {
		sp.logF.Close()
	}
	sp.gate.Unlock()
}
