package collect

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"cbi/internal/telemetry"
)

func TestMetricsEndpointExposition(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	base := "http://" + addr

	client := NewClient(base)
	client.Metrics = telemetry.NewRegistry()
	for i := 0; i < 20; i++ {
		if err := client.Submit(mkReport(uint64(i), i%4 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	// One decode rejection so the labeled counter moves.
	resp, err := http.Post(base+"/report", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Staged ingest acknowledges before folding; the barrier makes
	// collect_fold_seconds_count deterministic below.
	srv.drainStaging()

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Exact lines for the deterministic counters; structural checks for
	// the latency histograms (their bucket spread is timing-dependent).
	for _, line := range []string{
		"# TYPE collect_reports_accepted_total counter",
		"collect_reports_accepted_total 20",
		`collect_reports_rejected_total{reason="decode"} 1`,
		`collect_reports_rejected_total{reason="method"} 0`,
		"# TYPE collect_decode_seconds histogram",
		"collect_decode_seconds_count 21",
		"collect_fold_seconds_count 20",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("missing %q in /metrics:\n%s", line, text)
		}
	}
	if m := regexp.MustCompile(`collect_bytes_ingested_total (\d+)`).FindStringSubmatch(text); m == nil || m[1] == "0" {
		t.Errorf("bytes ingested not counted:\n%s", text)
	}
	if !regexp.MustCompile(`collect_decode_seconds_bucket\{le="\+Inf"\} 21`).MatchString(text) {
		t.Errorf("missing +Inf decode bucket:\n%s", text)
	}
	// Client-side metrics landed in the client's registry.
	var b strings.Builder
	if err := client.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "client_submits_total 20") {
		t.Errorf("client metrics:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "client_submit_seconds_count 20") {
		t.Errorf("client submit latency not recorded:\n%s", b.String())
	}
}

func TestHealthzTransitions(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	get := func(h http.Handler) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code
	}
	if code := get(srv.Handler()); code != http.StatusServiceUnavailable {
		t.Errorf("before Start: %d, want 503", code)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after Start: %s, want 200", resp.Status)
	}
	if err := srv.Stop(); err != nil {
		t.Fatal(err)
	}
	if code := get(srv.Handler()); code != http.StatusServiceUnavailable {
		t.Errorf("after Stop: %d, want 503", code)
	}
	if srv.Health().State() != telemetry.HealthShuttingDown {
		t.Errorf("state = %v", srv.Health().State())
	}
}

func TestTelemetryEndpointsCanBeDisabled(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	srv.ExposeTelemetry = false
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("/metrics with telemetry disabled: %d, want 404", rec.Code)
	}
}

func TestConcurrentSubmit(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(w*per + i)
				if err := srv.Submit(mkReport(id, id%5 == 0)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	agg := srv.Aggregate()
	if agg.Runs != workers*per {
		t.Errorf("runs = %d, want %d", agg.Runs, workers*per)
	}
	if got := srv.Registry().Counter("collect_reports_accepted_total").Value(); got != workers*per {
		t.Errorf("accepted counter = %d, want %d", got, workers*per)
	}
	if got := srv.Registry().Histogram("collect_fold_seconds", telemetry.DefBuckets).Count(); got != workers*per {
		t.Errorf("fold histogram count = %d, want %d", got, workers*per)
	}
}

func TestClientRetriesTransientErrors(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	client := NewClient(ts.URL)
	client.RetryBackoff = time.Millisecond
	client.Metrics = telemetry.NewRegistry()
	if err := client.Submit(mkReport(1, false)); err != nil {
		t.Fatalf("submit after retries: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if got := client.Metrics.Counter("client_submit_retries_total").Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	if got := client.Metrics.Counter("client_submit_errors_total").Value(); got != 0 {
		t.Errorf("errors counter = %d, want 0", got)
	}
}

func TestClientDoesNotRetryRejections(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "bad report", http.StatusBadRequest)
	}))
	defer ts.Close()

	client := NewClient(ts.URL)
	client.RetryBackoff = time.Millisecond
	client.Metrics = telemetry.NewRegistry()
	if err := client.Submit(mkReport(1, false)); err == nil {
		t.Fatal("expected rejection error")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (4xx must not retry)", calls)
	}
	if got := client.Metrics.Counter("client_submit_errors_total").Value(); got != 1 {
		t.Errorf("errors counter = %d, want 1", got)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	client := NewClient(ts.URL)
	client.RetryBackoff = time.Millisecond
	client.Metrics = telemetry.NewRegistry()
	if err := client.Submit(mkReport(1, false)); err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if got := client.Metrics.Counter("client_submit_retries_total").Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

// slowBody feeds a request body in two chunks with a pause, so the POST
// is mid-flight when the server begins shutting down.
type slowBody struct {
	chunks [][]byte
	delay  time.Duration
	i      int
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.i >= len(s.chunks) {
		return 0, io.EOF
	}
	if s.i > 0 {
		time.Sleep(s.delay)
	}
	n := copy(p, s.chunks[s.i])
	s.i++
	return n, nil
}

func TestStopDrainsInFlightSubmissions(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	enc := mkReport(9, true).Encode()
	body := &slowBody{chunks: [][]byte{enc[:1], enc[1:]}, delay: 300 * time.Millisecond}

	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest("POST", "http://"+addr+"/report", body)
		req.ContentLength = int64(len(enc))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{0, err}
			return
		}
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()

	time.Sleep(100 * time.Millisecond) // let the POST start streaming
	if err := srv.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight POST dropped during shutdown: %v", r.err)
	}
	if r.status != http.StatusAccepted {
		t.Errorf("in-flight POST status = %d, want 202", r.status)
	}
	if srv.DB().Len() != 1 {
		t.Errorf("report not folded: db len %d", srv.DB().Len())
	}
}
