package collect

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cbi/internal/telemetry/trace"
)

// spanIndex maps span IDs to records for link-checking.
func spanIndex(recs []trace.Record) map[string]trace.Record {
	byID := make(map[string]trace.Record, len(recs))
	for _, r := range recs {
		byID[r.SpanID] = r
	}
	return byID
}

func findSpan(t *testing.T, recs []trace.Record, name string) trace.Record {
	t.Helper()
	for _, r := range recs {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no %q span in %d records", name, len(recs))
	return trace.Record{}
}

// TestTracePropagatesAcrossTheWire follows one report end to end:
// fleet.run → client.submit → client.attempt on the client side, then
// server.ingest → server.decode / server.fold on the server side, with
// the two processes holding separate collectors (as a real deployment
// would) joined only by the X-CBI-Trace header.
func TestTracePropagatesAcrossTheWire(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	serverTracer := trace.NewCollector()
	srv.Tracer = serverTracer
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	clientTracer := trace.NewCollector()
	run := clientTracer.StartSpan("fleet.run")
	client := NewClient("http://" + addr)
	if err := client.SubmitContext(trace.NewContext(context.Background(), run), mkReport(7, true)); err != nil {
		t.Fatal(err)
	}
	run.End()

	// The staged pipeline records server.fold from the background
	// folder; drain so all three server spans have landed.
	srv.drainStaging()

	clientRecs := clientTracer.Records()
	serverRecs := serverTracer.Records()
	if len(clientRecs) != 3 {
		t.Fatalf("client spans = %d, want 3 (fleet.run, client.submit, client.attempt)", len(clientRecs))
	}
	if len(serverRecs) != 3 {
		t.Fatalf("server spans = %d, want 3 (server.ingest, server.decode, server.fold)", len(serverRecs))
	}

	all := append(append([]trace.Record(nil), clientRecs...), serverRecs...)
	root := findSpan(t, all, "fleet.run")
	for _, r := range all {
		if r.TraceID != root.TraceID {
			t.Errorf("span %s has trace %s, want %s", r.Name, r.TraceID, root.TraceID)
		}
	}

	// Parent links form the documented chain.
	byID := spanIndex(all)
	wantParent := map[string]string{
		"client.submit":  "fleet.run",
		"client.attempt": "client.submit",
		"server.ingest":  "client.attempt",
		"server.decode":  "server.ingest",
		"server.fold":    "server.ingest",
	}
	for child, parent := range wantParent {
		c := findSpan(t, all, child)
		p, ok := byID[c.ParentID]
		if !ok {
			t.Errorf("%s: parent %s not among collected spans", child, c.ParentID)
			continue
		}
		if p.Name != parent {
			t.Errorf("%s: parent = %s, want %s", child, p.Name, parent)
		}
	}

	ingest := findSpan(t, serverRecs, "server.ingest")
	if ingest.Attrs["outcome"] != "accepted" {
		t.Errorf("ingest outcome = %q", ingest.Attrs["outcome"])
	}
	if ingest.Attrs["run_id"] != "7" {
		t.Errorf("ingest run_id = %q", ingest.Attrs["run_id"])
	}
}

// TestTraceRecordsEachRetryAttempt flakes the first two POSTs and checks
// that every attempt appears as its own span, with the server's ingest
// parented to the POST that actually reached it.
func TestTraceRecordsEachRetryAttempt(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	serverTracer := trace.NewCollector()
	srv.Tracer = serverTracer
	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()

	clientTracer := trace.NewCollector()
	run := clientTracer.StartSpan("fleet.run")
	client := NewClient(flaky.URL)
	client.RetryBackoff = time.Millisecond
	if err := client.SubmitContext(trace.NewContext(context.Background(), run), mkReport(1, false)); err != nil {
		t.Fatal(err)
	}
	run.End()

	attempts := 0
	var last trace.Record
	for _, r := range clientTracer.Records() {
		if r.Name == "client.attempt" {
			attempts++
			if r.Start.After(last.Start) {
				last = r
			}
		}
	}
	if attempts != 3 {
		t.Fatalf("attempt spans = %d, want 3", attempts)
	}
	sub := findSpan(t, clientTracer.Records(), "client.submit")
	if sub.Attrs["attempts"] != "3" || sub.Attrs["outcome"] != "accepted" {
		t.Errorf("submit attrs = %v", sub.Attrs)
	}
	ingest := findSpan(t, serverTracer.Records(), "server.ingest")
	if ingest.ParentID != last.SpanID {
		t.Errorf("ingest parent = %s, want last attempt %s", ingest.ParentID, last.SpanID)
	}
	if ingest.TraceID != sub.TraceID {
		t.Errorf("ingest trace = %s, want %s", ingest.TraceID, sub.TraceID)
	}
}

// TestServerIgnoresTracingWhenDisabled: no Tracer, traced client — the
// submission must still succeed and the server keeps no spans.
func TestServerIgnoresTracingWhenDisabled(t *testing.T) {
	srv := NewServer("p", 3, StoreAll)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	clientTracer := trace.NewCollector()
	run := clientTracer.StartSpan("fleet.run")
	client := NewClient("http://" + addr)
	if err := client.SubmitContext(trace.NewContext(context.Background(), run), mkReport(1, false)); err != nil {
		t.Fatal(err)
	}
	run.End()
	if srv.Tracer.Len() != 0 {
		t.Error("disabled tracer recorded spans")
	}
	if got := clientTracer.Len(); got != 3 {
		t.Errorf("client spans = %d, want 3", got)
	}
}

func TestPprofMountedOnlyWhenEnabled(t *testing.T) {
	plain := httptest.NewServer(NewServer("p", 3, StoreAll).Handler())
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", resp.StatusCode)
	}

	withPprof := NewServer("p", 3, StoreAll)
	withPprof.EnablePprof = true
	enabled := httptest.NewServer(withPprof.Handler())
	defer enabled.Close()
	resp, err = http.Get(enabled.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status = %d, want 200", resp.StatusCode)
	}
}
