// Package sampler implements the statistically fair sampling machinery of
// §2.1: geometrically distributed next-sample countdowns that make sparse
// Bernoulli sampling cheap, pre-generated countdown banks, and a periodic
// sampler used only to demonstrate the fairness failure of fixed-period
// sampling.
package sampler

import (
	"math"
	"math/rand"
)

// NeverSample is the countdown value used when the sampling density is
// zero: no site will ever fire.
const NeverSample = math.MaxInt64

// Source produces next-sample countdowns. A countdown of k means: skip
// k-1 sampling opportunities, then sample the k-th.
type Source interface {
	Next() int64
}

// Geometric draws countdowns from the geometric distribution with success
// probability equal to the sampling density 1/d. This models the
// inter-arrival times of a Bernoulli process — each dynamic site
// independently has a 1/d chance of being sampled — which is what makes
// the reported counter frequencies statistically fair (§2.1).
type Geometric struct {
	rng     *rand.Rand
	density float64
	ln1mp   float64 // ln(1 - density), cached
}

// NewGeometric returns a geometric countdown source with the given
// sampling density in (0, 1]. A density of 0 yields NeverSample forever.
func NewGeometric(seed int64, density float64) *Geometric {
	g := &Geometric{rng: rand.New(rand.NewSource(seed)), density: density}
	if density > 0 && density < 1 {
		g.ln1mp = math.Log1p(-density)
	}
	return g
}

// Density returns the sampling density.
func (g *Geometric) Density() float64 { return g.density }

// Next draws the next countdown by inverse-transform sampling:
// k = floor(ln(U)/ln(1-p)) + 1 for uniform U in (0,1).
func (g *Geometric) Next() int64 {
	switch {
	case g.density <= 0:
		return NeverSample
	case g.density >= 1:
		return 1
	}
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	k := int64(math.Log(u)/g.ln1mp) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// Bank is a pre-generated circular bank of countdowns. The paper's
// implementation uses banks of 1024 geometrically distributed random
// countdowns; because countdowns are consumed d times more slowly than raw
// coin tosses, a modest bank lasts a long time (§2.1).
type Bank struct {
	vals []int64
	idx  int
}

// NewBank draws n countdowns from src.
func NewBank(src Source, n int) *Bank {
	if n <= 0 {
		n = 1
	}
	b := &Bank{vals: make([]int64, n)}
	for i := range b.vals {
		b.vals[i] = src.Next()
	}
	return b
}

// Next returns the next banked countdown, cycling.
func (b *Bank) Next() int64 {
	v := b.vals[b.idx]
	b.idx++
	if b.idx == len(b.vals) {
		b.idx = 0
	}
	return v
}

// Len returns the bank size.
func (b *Bank) Len() int { return len(b.vals) }

// Periodic is a fixed-period countdown source: exactly one sample every
// Period opportunities. It reproduces the strictly periodic triggers of
// classical profilers, which the paper rejects because they can
// systematically miss (or systematically hit) events that are correlated
// with the period (§2.1's "every fiftieth iteration" pathology).
type Periodic struct {
	Period int64
}

// Next returns the fixed period.
func (p *Periodic) Next() int64 {
	if p.Period < 1 {
		return 1
	}
	return p.Period
}

// Bernoulli is the reference implementation of fair sampling: toss a
// biased coin at every opportunity. It is the behaviour the countdown
// machinery must be indistinguishable from, and the slow baseline the
// fast-path transformation exists to avoid.
type Bernoulli struct {
	rng     *rand.Rand
	density float64
}

// NewBernoulli returns a Bernoulli sampler with the given density.
func NewBernoulli(seed int64, density float64) *Bernoulli {
	return &Bernoulli{rng: rand.New(rand.NewSource(seed)), density: density}
}

// Sample tosses the coin once.
func (b *Bernoulli) Sample() bool { return b.rng.Float64() < b.density }

// Next makes Bernoulli a Source by counting tosses until the first head,
// which is by construction geometric.
func (b *Bernoulli) Next() int64 {
	if b.density <= 0 {
		return NeverSample
	}
	var k int64 = 1
	for !b.Sample() {
		k++
	}
	return k
}
