package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"cbi/internal/stats"
)

func TestGeometricMeanMatchesDensity(t *testing.T) {
	// §2.1: countdown values form a geometric distribution whose mean is
	// the inverse of the sampling density.
	for _, d := range []float64{1.0 / 10, 1.0 / 100, 1.0 / 1000} {
		g := NewGeometric(1, d)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(g.Next())
		}
		mean := sum / n
		want := 1 / d
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("density %g: mean %.1f, want ~%.1f", d, mean, want)
		}
	}
}

func TestGeometricEdgeDensities(t *testing.T) {
	if got := NewGeometric(1, 0).Next(); got != NeverSample {
		t.Errorf("density 0: %d", got)
	}
	g := NewGeometric(1, 1)
	for i := 0; i < 10; i++ {
		if got := g.Next(); got != 1 {
			t.Errorf("density 1: %d", got)
		}
	}
	if got := NewGeometric(1, -0.5).Next(); got != NeverSample {
		t.Errorf("negative density: %d", got)
	}
}

func TestGeometricAlwaysPositive(t *testing.T) {
	err := quick.Check(func(seed int64, di uint8) bool {
		d := 1.0 / float64(int(di)%1000+2)
		g := NewGeometric(seed, d)
		for i := 0; i < 100; i++ {
			if g.Next() < 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestGeometricMatchesPMF(t *testing.T) {
	// Empirical distribution of small countdowns must match the geometric
	// PMF: P(k) = (1-p)^(k-1) p.
	p := 1.0 / 5
	g := NewGeometric(7, p)
	const n = 300000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for k := int64(1); k <= 5; k++ {
		want := stats.GeometricPMF(p, k)
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(X=%d): got %.4f, want %.4f", k, got, want)
		}
	}
}

func TestGeometricMemorylessness(t *testing.T) {
	// P(X > a+b | X > a) should equal P(X > b): the hallmark of a fair
	// Bernoulli process, and exactly what the periodic sampler lacks.
	p := 1.0 / 8
	g := NewGeometric(11, p)
	const n = 400000
	var gtA, gtAB, gtB, total int
	a, b := int64(4), int64(6)
	for i := 0; i < n; i++ {
		k := g.Next()
		total++
		if k > a {
			gtA++
			if k > a+b {
				gtAB++
			}
		}
		if k > b {
			gtB++
		}
	}
	condProb := float64(gtAB) / float64(gtA)
	margProb := float64(gtB) / float64(total)
	if math.Abs(condProb-margProb) > 0.01 {
		t.Errorf("memorylessness violated: P(X>a+b|X>a)=%.4f, P(X>b)=%.4f", condProb, margProb)
	}
}

func TestBankCyclesDeterministically(t *testing.T) {
	g := NewGeometric(3, 0.25)
	b := NewBank(g, 16)
	if b.Len() != 16 {
		t.Fatalf("len: %d", b.Len())
	}
	first := make([]int64, 16)
	for i := range first {
		first[i] = b.Next()
	}
	for i := 0; i < 16; i++ {
		if got := b.Next(); got != first[i] {
			t.Errorf("cycle %d: got %d, want %d", i, got, first[i])
		}
	}
}

func TestBankRejectsNonPositiveSize(t *testing.T) {
	b := NewBank(NewGeometric(1, 0.5), 0)
	if b.Len() != 1 {
		t.Errorf("len: %d", b.Len())
	}
}

func TestPeriodic(t *testing.T) {
	p := &Periodic{Period: 50}
	for i := 0; i < 5; i++ {
		if got := p.Next(); got != 50 {
			t.Errorf("got %d", got)
		}
	}
	zero := &Periodic{}
	if zero.Next() != 1 {
		t.Error("zero period should clamp to 1")
	}
}

// The paper's motivating pathology: with two sites in a loop body and
// strictly periodic 1-in-50 sampling, one site is sampled every 25th
// iteration and the other never. Geometric sampling hits both.
func TestPeriodicUnfairnessVsGeometricFairness(t *testing.T) {
	simulate := func(src Source) [2]int64 {
		var hits [2]int64
		countdown := src.Next()
		for iter := 0; iter < 100000; iter++ {
			for site := 0; site < 2; site++ {
				countdown--
				if countdown == 0 {
					hits[site]++
					countdown = src.Next()
				}
			}
		}
		return hits
	}
	per := simulate(&Periodic{Period: 50})
	if per[0] != 0 && per[1] != 0 {
		t.Errorf("periodic sampling should starve one site: %v", per)
	}
	geo := simulate(NewGeometric(5, 1.0/50))
	if geo[0] == 0 || geo[1] == 0 {
		t.Fatalf("geometric sampling starved a site: %v", geo)
	}
	ratio := float64(geo[0]) / float64(geo[1])
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("geometric sites should be hit equally: %v (ratio %.3f)", geo, ratio)
	}
	// Chi-square confirms the same: periodic is wildly non-uniform.
	if stats.ChiSquareUniform(per[:]) < stats.ChiSquareUniform(geo[:]) {
		t.Error("periodic should be less uniform than geometric")
	}
}

// chiSquareGeometric draws n countdowns and computes the chi-square
// goodness-of-fit statistic against the exact geometric PMF with
// success probability p, over the cells k=1..maxK plus one tail cell
// for k>maxK (so the cell probabilities sum to 1 and every expected
// count stays well above the usual >=5 validity floor).
func chiSquareGeometric(src Source, p float64, n int, maxK int64) float64 {
	counts := make([]int64, maxK+1) // counts[k-1] for k<=maxK; counts[maxK] = tail
	for i := 0; i < n; i++ {
		if k := src.Next(); k > maxK {
			counts[maxK]++
		} else {
			counts[k-1]++
		}
	}
	chi := 0.0
	for k := int64(1); k <= maxK; k++ {
		e := stats.GeometricPMF(p, k) * float64(n)
		o := float64(counts[k-1])
		chi += (o - e) * (o - e) / e
	}
	e := math.Pow(1-p, float64(maxK)) * float64(n) // P(X > maxK)
	o := float64(counts[maxK])
	return chi + (o-e)*(o-e)/e
}

// TestGeometricChiSquareFairnessGate is the statistical fairness gate:
// the countdown distribution must be indistinguishable from the ideal
// geometric law (the inter-arrival distribution of a fair Bernoulli
// process), and the test must have the power to reject an unfair
// sampler — the periodic source fails the identical statistic by
// orders of magnitude. Seeds are fixed, so the test is deterministic.
func TestGeometricChiSquareFairnessGate(t *testing.T) {
	const (
		n    = 200000
		maxK = 60
		p    = 1.0 / 20
		// chi-square critical value at significance 0.001 for 60 degrees
		// of freedom (61 cells): a fair sampler exceeds this one run in a
		// thousand, and the seeds are fixed.
		crit = 99.61
	)
	for _, tc := range []struct {
		name string
		src  Source
	}{
		{"geometric", NewGeometric(13, p)},
		// Bank sized to the sample count: cycling a smaller bank would
		// multiply-count each draw and inflate the statistic.
		{"bank", NewBank(NewGeometric(17, p), n)},
		{"bernoulli", NewBernoulli(19, p)},
	} {
		if chi := chiSquareGeometric(tc.src, p, n, maxK); chi > crit {
			t.Errorf("%s: chi-square %.1f exceeds the df=60 critical value %.2f — "+
				"countdowns are not geometrically distributed", tc.name, chi, crit)
		}
	}

	// Power: the periodic sampler (all mass on one cell) must fail the
	// same test overwhelmingly, or the gate is vacuous.
	if chi := chiSquareGeometric(&Periodic{Period: 20}, p, n, maxK); chi < 1000*crit {
		t.Errorf("periodic sampler only scored chi-square %.1f — the fairness gate has no power", chi)
	}
}

func TestBernoulliNextIsGeometric(t *testing.T) {
	b := NewBernoulli(9, 1.0/20)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(b.Next())
	}
	mean := sum / n
	if math.Abs(mean-20) > 1 {
		t.Errorf("mean %.2f, want ~20", mean)
	}
	if (&Bernoulli{density: 0}).Next() != NeverSample {
		t.Error("density 0")
	}
}

// Fairness property: the expected number of samples collected equals
// density × opportunities, for the countdown implementation, matching the
// direct Bernoulli implementation.
func TestCountdownSamplingMatchesBernoulliRate(t *testing.T) {
	const opportunities = 2000000
	d := 1.0 / 100

	g := NewGeometric(21, d)
	var samples int64
	countdown := g.Next()
	for i := 0; i < opportunities; i++ {
		countdown--
		if countdown == 0 {
			samples++
			countdown = g.Next()
		}
	}

	bern := NewBernoulli(22, d)
	var direct int64
	for i := 0; i < opportunities; i++ {
		if bern.Sample() {
			direct++
		}
	}

	want := d * opportunities
	for name, got := range map[string]int64{"countdown": samples, "bernoulli": direct} {
		if math.Abs(float64(got)-want)/want > 0.05 {
			t.Errorf("%s: %d samples, want ~%.0f", name, got, want)
		}
	}
}
