package progen

import (
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/minic"
)

// Simplify (jump threading, block merging, constant folding) must
// preserve the observable behaviour of random programs, both on plain
// lowered code and on fully sampled code.
func TestSimplifyPreservesSemanticsDifferentially(t *testing.T) {
	nSeeds := int64(25)
	if testing.Short() {
		nSeeds = 6
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		src := Generate(seed, DefaultConfig())
		f, err := minic.Parse("gen.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		base, err := instrument.BuildBaseline(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := interp.Run(base, interp.Config{})

		// Simplified baseline.
		base2, err := instrument.BuildBaseline(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		sizeBefore := instrument.CodeSize(base2)
		cfg.SimplifyProgram(base2)
		if instrument.CodeSize(base2) > sizeBefore {
			t.Errorf("seed %d: simplify grew the program", seed)
		}
		got := interp.Run(base2, interp.Config{})
		if got.Output != want.Output || got.ExitCode != want.ExitCode || got.Outcome != want.Outcome {
			t.Fatalf("seed %d: simplified baseline diverged\n%s", seed, src)
		}

		// Simplified sampled program.
		inst, err := instrument.Build(f, nil, instrument.SchemeSet{Bounds: true, Branches: true})
		if err != nil {
			t.Fatal(err)
		}
		sp := instrument.Sample(inst, instrument.DefaultOptions())
		cfg.SimplifyProgram(sp)
		for _, density := range []float64{1, 1.0 / 9} {
			got := interp.Run(sp, interp.Config{Density: density, CountdownSeed: seed})
			if got.Outcome != interp.OutcomeOK || got.Output != want.Output || got.ExitCode != want.ExitCode {
				t.Fatalf("seed %d density %g: simplified sampled program diverged (%v)\n%s",
					seed, density, got.Trap, src)
			}
		}
	}
}

// Simplifying a sampled program must not change how often sites fire.
func TestSimplifyPreservesSamplingRate(t *testing.T) {
	src := Generate(11, DefaultConfig())
	f, err := minic.Parse("gen.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *cfg.Program {
		inst, err := instrument.Build(f, nil, instrument.SchemeSet{Bounds: true})
		if err != nil {
			t.Fatal(err)
		}
		return instrument.Sample(inst, instrument.DefaultOptions())
	}
	plain := build()
	simplified := build()
	cfg.SimplifyProgram(simplified)
	for seed := int64(0); seed < 30; seed++ {
		a := interp.Run(plain, interp.Config{Density: 1.0 / 7, CountdownSeed: seed})
		b := interp.Run(simplified, interp.Config{Density: 1.0 / 7, CountdownSeed: seed})
		if a.SamplesTaken != b.SamplesTaken {
			t.Fatalf("seed %d: samples %d vs %d", seed, a.SamplesTaken, b.SamplesTaken)
		}
		for i := range a.Counters {
			if a.Counters[i] != b.Counters[i] {
				t.Fatalf("seed %d: counter %d differs", seed, i)
			}
		}
	}
}
