package progen

import (
	"strings"
	"testing"

	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/minic"
)

func TestGeneratedProgramsParseAndCheck(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(seed, DefaultConfig())
		f, err := minic.Parse("gen.mc", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := minic.Check(f, minic.DefaultBuiltins()); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
	}
}

func TestGeneratedProgramsTerminateCleanly(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(seed, DefaultConfig())
		f, err := minic.Parse("gen.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := instrument.BuildBaseline(f, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := interp.Run(prog, interp.Config{Fuel: 50_000_000})
		if res.Outcome != interp.OutcomeOK {
			t.Fatalf("seed %d: generated program trapped: %v\n%s", seed, res.Trap, src)
		}
		if !strings.Contains(res.Output, "\n") {
			t.Fatalf("seed %d: no observable output", seed)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	if Generate(7, DefaultConfig()) != Generate(7, DefaultConfig()) {
		t.Error("generator must be deterministic per seed")
	}
	if Generate(7, DefaultConfig()) == Generate(8, DefaultConfig()) {
		t.Error("different seeds should differ")
	}
}

// The flagship differential test: for many random programs, every
// instrumentation scheme and every transformation variant must preserve
// the program's observable behaviour (output and exit code) at every
// sampling density.
func TestDifferentialSemanticPreservation(t *testing.T) {
	schemes := []instrument.SchemeSet{
		{Bounds: true},
		{Returns: true},
		{ScalarPairs: true},
		{Branches: true},
		{Bounds: true, Returns: true, ScalarPairs: true, Branches: true},
	}
	variants := []instrument.Options{
		instrument.DefaultOptions(),
		{},
		{CoalesceDecrements: true},
		{LocalizeCountdown: true, SeparateCompilation: true},
		{LocalizeCountdown: true, CheckPerSite: true},
	}
	nSeeds := int64(30)
	if testing.Short() {
		nSeeds = 8
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		src := Generate(seed, DefaultConfig())
		f, err := minic.Parse("gen.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		base, err := instrument.BuildBaseline(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := interp.Run(base, interp.Config{})
		if want.Outcome != interp.OutcomeOK {
			t.Fatalf("seed %d: baseline trapped: %v", seed, want.Trap)
		}

		scheme := schemes[seed%int64(len(schemes))]
		uncond, err := instrument.Build(f, nil, scheme)
		if err != nil {
			t.Fatal(err)
		}
		got := interp.Run(uncond, interp.Config{})
		if got.Output != want.Output || got.ExitCode != want.ExitCode {
			t.Fatalf("seed %d: unconditional diverged\n%s", seed, src)
		}

		opt := variants[seed%int64(len(variants))]
		sp := instrument.Sample(uncond, opt)
		for _, density := range []float64{1, 1.0 / 13, 1.0 / 500} {
			got := interp.Run(sp, interp.Config{Density: density, CountdownSeed: seed})
			if got.Outcome != interp.OutcomeOK || got.Output != want.Output || got.ExitCode != want.ExitCode {
				t.Fatalf("seed %d scheme %+v opt %+v density %g: sampled run diverged (trap %v)\nprogram:\n%s",
					seed, scheme, opt, density, got.Trap, src)
			}
		}
	}
}

// Sampled counter totals must scale with density on generated programs
// (fairness at whole-program level).
func TestDifferentialSamplingRate(t *testing.T) {
	src := Generate(3, DefaultConfig())
	f, err := minic.Parse("gen.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	uncond, err := instrument.Build(f, nil, instrument.SchemeSet{Bounds: true, Branches: true})
	if err != nil {
		t.Fatal(err)
	}
	full := interp.Run(uncond, interp.Config{})
	if full.SamplesTaken == 0 {
		t.Skip("no dynamic sites in this generated program")
	}
	sp := instrument.Sample(uncond, instrument.DefaultOptions())
	density := 1.0 / 5
	const runs = 400
	var total uint64
	for seed := int64(0); seed < runs; seed++ {
		res := interp.Run(sp, interp.Config{Density: density, CountdownSeed: seed})
		if res.Outcome != interp.OutcomeOK {
			t.Fatal(res.Trap)
		}
		total += res.SamplesTaken
	}
	mean := float64(total) / runs
	want := float64(full.SamplesTaken) * density
	if mean < want*0.85 || mean > want*1.15 {
		t.Errorf("mean samples %.1f, want ~%.1f (full %d)", mean, want, full.SamplesTaken)
	}
}
