// Package progen generates random, well-formed, terminating MiniC
// programs for differential testing: the sampling transformation must
// preserve the semantics of *every* program, so the test suite compiles
// random programs in baseline, unconditional, and sampled configurations
// and requires identical observable behaviour.
//
// Generated programs are deterministic (no rand() calls), loop with
// constant bounds, guard every division, and keep heap indices in range,
// so a generated program never traps and always terminates — differences
// between configurations are therefore always transformation bugs.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Funcs        int // helper functions (besides main), default 3
	MaxStmts     int // statements per block, default 5
	MaxDepth     int // nesting depth, default 3
	MaxLoopTrip  int // constant loop bound, default 8
	Arrays       bool
	PtrsAndNulls bool
}

// DefaultConfig returns the standard generator shape.
func DefaultConfig() Config {
	return Config{Funcs: 3, MaxStmts: 5, MaxDepth: 3, MaxLoopTrip: 8, Arrays: true, PtrsAndNulls: true}
}

// Generate produces a MiniC source string from the seed.
func Generate(seed int64, conf Config) string {
	if conf.Funcs == 0 {
		conf = DefaultConfig()
	}
	g := &gen{rng: rand.New(rand.NewSource(seed)), conf: conf, protected: map[string]bool{}}
	return g.program()
}

type gen struct {
	rng  *rand.Rand
	conf Config
	sb   strings.Builder

	funcs     []string        // helper function names, arity 2 (int, int) -> int
	vars      []string        // in-scope int variables
	protected map[string]bool // loop induction variables: never assigned
	arrs      []string        // in-scope int* arrays (each of size arrSize)
	indent    int
	tmp       int
}

const arrSize = 16

func (g *gen) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) program() string {
	for i := 0; i < g.conf.Funcs; i++ {
		g.funcs = append(g.funcs, fmt.Sprintf("helper%d", i))
	}
	// A couple of globals participate in the mix.
	g.w("int gA = 3;")
	g.w("int gB = -7;")
	g.sb.WriteByte('\n')
	for _, name := range g.funcs {
		g.emitHelper(name)
		g.sb.WriteByte('\n')
	}
	g.emitMain()
	return g.sb.String()
}

func (g *gen) emitHelper(name string) {
	g.vars = []string{"a", "b", "gA", "gB"}
	g.arrs = nil
	g.tmp = 0
	g.w("int %s(int a, int b) {", name)
	g.indent++
	g.block(g.conf.MaxDepth, name)
	g.w("return %s;", g.expr(2))
	g.indent--
	g.w("}")
}

func (g *gen) emitMain() {
	g.vars = []string{"gA", "gB"}
	g.arrs = nil
	g.tmp = 0
	g.w("int main() {")
	g.indent++
	g.w("int acc = 0;")
	g.vars = append(g.vars, "acc")
	if g.conf.Arrays {
		g.w("int* buf = alloc(%d);", arrSize)
		g.arrs = append(g.arrs, "buf")
		g.w("for (int i0 = 0; i0 < %d; i0++) { buf[i0] = i0 * 3 - 5; }", arrSize)
	}
	g.block(g.conf.MaxDepth, "main")
	// Make every variable observable.
	for _, v := range g.vars {
		g.w("acc = acc * 31 + %s;", v)
	}
	if len(g.arrs) > 0 {
		g.w("for (int i9 = 0; i9 < %d; i9++) { acc = acc * 7 + buf[i9]; }", arrSize)
	}
	g.w("printi(acc %% 100000);")
	g.w("return acc %% 251;")
	g.indent--
	g.w("}")
}

// block emits 1..MaxStmts statements.
func (g *gen) block(depth int, fn string) {
	n := 1 + g.rng.Intn(g.conf.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth, fn)
	}
}

func (g *gen) newVar() string {
	g.tmp++
	name := fmt.Sprintf("v%d", g.tmp)
	return name
}

func (g *gen) pick(list []string) string { return list[g.rng.Intn(len(list))] }

// pickAssignable picks a variable that is safe to overwrite (not a loop
// induction variable, which would break termination).
func (g *gen) pickAssignable() string {
	for tries := 0; tries < 10; tries++ {
		v := g.pick(g.vars)
		if !g.protected[v] {
			return v
		}
	}
	return "gA"
}

// nestedBlock emits a block in a child scope: variables declared inside
// (and the extra names, e.g. a loop induction variable) are invisible to
// statements emitted after it.
func (g *gen) nestedBlock(depth int, fn string, extra []string) {
	saved := append([]string(nil), g.vars...)
	g.vars = append(g.vars, extra...)
	g.block(depth, fn)
	g.vars = saved
}

func (g *gen) stmt(depth int, fn string) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 3: // declaration with initializer
		v := g.newVar()
		g.w("int %s = %s;", v, g.expr(2))
		g.vars = append(g.vars, v)
	case choice < 5: // assignment (possibly compound)
		v := g.pickAssignable()
		switch g.rng.Intn(3) {
		case 0:
			g.w("%s = %s;", v, g.expr(2))
		case 1:
			g.w("%s += %s;", v, g.expr(1))
		default:
			g.w("%s++;", v)
		}
	case choice < 6 && len(g.arrs) > 0: // array store with safe index
		a := g.pick(g.arrs)
		g.w("%s[(%s %% %d + %d) %% %d] = %s;", a, g.expr(1), arrSize, arrSize, arrSize, g.expr(2))
	case choice < 7 && depth > 0: // if/else
		g.w("if (%s) {", g.cond())
		g.indent++
		g.nestedBlock(depth-1, fn, nil)
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			g.nestedBlock(depth-1, fn, nil)
			g.indent--
		}
		g.w("}")
	case choice < 8 && depth > 0: // constant-bound for loop
		iv := g.newVar()
		trip := 1 + g.rng.Intn(g.conf.MaxLoopTrip)
		g.w("for (int %s = 0; %s < %d; %s++) {", iv, iv, trip, iv)
		g.indent++
		g.protected[iv] = true
		g.nestedBlock(depth-1, fn, []string{iv})
		delete(g.protected, iv)
		if g.rng.Intn(4) == 0 {
			g.w("if (%s == %d) { continue; }", iv, g.rng.Intn(trip+1))
		}
		if g.rng.Intn(4) == 0 {
			g.w("if (%s > %d) { break; }", iv, g.rng.Intn(trip+1))
		}
		g.indent--
		g.w("}")
	case choice < 9 && fn == "main" && len(g.funcs) > 0: // helper call
		v := g.newVar()
		g.w("int %s = %s(%s, %s);", v, g.pick(g.funcs), g.expr(1), g.expr(1))
		g.vars = append(g.vars, v)
	default: // pointer null-dance (guarded) or plain assignment
		if g.conf.PtrsAndNulls && len(g.arrs) > 0 && g.rng.Intn(2) == 0 {
			p := g.newVar()
			a := g.pick(g.arrs)
			g.w("int* %s = %s;", p, a)
			g.w("if (%s != null && %s[0] > %d) { %s = %s; }",
				p, p, g.rng.Intn(20)-10, g.pickAssignable(), g.expr(1))
		} else {
			g.w("%s = %s;", g.pickAssignable(), g.expr(2))
		}
	}
}

// expr generates a pure expression of bounded depth. Division is always
// guarded by "% k + k" denominators so it cannot trap.
func (g *gen) expr(depth int) string {
	if depth == 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(41)-20)
		default:
			return g.pick(g.vars)
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		k := 2 + g.rng.Intn(9)
		return fmt.Sprintf("(%s / ((%s %% %d) * (%s %% %d) + %d))", a, b, k, b, k, k*k+1)
	case 4:
		return fmt.Sprintf("(%s %% %d)", a, 2+g.rng.Intn(20))
	case 5:
		return fmt.Sprintf("-(%s)", a)
	case 6:
		if len(g.arrs) > 0 {
			return fmt.Sprintf("%s[(%s %% %d + %d) %% %d]", g.pick(g.arrs), a, arrSize, arrSize, arrSize)
		}
		return fmt.Sprintf("(%s + %s)", a, b)
	default:
		return fmt.Sprintf("(%s)", g.cond())
	}
}

// cond generates a boolean-ish expression, possibly short-circuiting.
func (g *gen) cond() string {
	a := g.expr(1)
	b := g.expr(1)
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", a, ops[g.rng.Intn(len(ops))], b)
	switch g.rng.Intn(4) {
	case 0:
		d := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.rng.Intn(len(ops))], g.expr(1))
		return fmt.Sprintf("%s && %s", c, d)
	case 1:
		d := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.rng.Intn(len(ops))], g.expr(1))
		return fmt.Sprintf("%s || %s", c, d)
	default:
		return c
	}
}
