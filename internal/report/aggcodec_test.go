package report

import (
	"reflect"
	"testing"
)

func foldedAggregate(t *testing.T, n, runs int) *Aggregate {
	t.Helper()
	a := NewAggregate("", n)
	for i := 0; i < runs; i++ {
		r := &Report{RunID: uint64(i + 1), Program: "", Crashed: i%3 == 0, Counters: make([]uint64, n)}
		r.Counters[i%n] = uint64(i + 1)
		r.Counters[(i*7)%n] += 2
		if err := a.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestAggregateStatsRoundTrip(t *testing.T) {
	a := foldedAggregate(t, 64, 30)
	got, err := DecodeAggregateStats(a.EncodeStats())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}

	// An empty aggregate survives too (a quiet delta interval).
	empty := NewAggregate("", 64)
	if got, err = DecodeAggregateStats(empty.EncodeStats()); err != nil || !reflect.DeepEqual(empty, got) {
		t.Fatalf("empty aggregate round trip: %v", err)
	}
}

func TestAggregateCloneIsIndependent(t *testing.T) {
	a := foldedAggregate(t, 16, 10)
	c := a.Clone()
	if !reflect.DeepEqual(a, c) {
		t.Fatal("clone differs from original")
	}
	c.Totals[3] += 99
	c.Runs++
	c.NonzeroInFailure[5] = !c.NonzeroInFailure[5]
	if a.Totals[3] == c.Totals[3] || a.Runs == c.Runs {
		t.Fatal("clone shares storage with the original")
	}
}

// TestAggregateDiffMergeIdentity is the delta-push algebra: for
// cumulative states base ⊆ cur, merging Diff(cur, base) into a copy of
// base reproduces cur exactly. This is what makes epoch-cursor delta
// merges bit-identical to shipping the full aggregate.
func TestAggregateDiffMergeIdentity(t *testing.T) {
	cur := foldedAggregate(t, 32, 40)
	base := foldedAggregate(t, 32, 25) // same fold prefix: runs 1..25

	delta, err := cur.Diff(base)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := base.Clone()
	if err := rebuilt.Merge(delta); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt, cur) {
		t.Fatal("base + Diff(cur, base) != cur")
	}

	// Diff against nil is the state itself.
	full, err := cur.Diff(nil)
	if err != nil || !reflect.DeepEqual(full, cur) {
		t.Fatalf("Diff(nil) should clone: %v", err)
	}

	// A base ahead of the current state is a hard error, not a negative
	// delta.
	if _, err := base.Diff(cur); err == nil {
		t.Error("regressed diff accepted")
	}
	other := foldedAggregate(t, 8, 5)
	if _, err := cur.Diff(other); err == nil {
		t.Error("shape-mismatched diff accepted")
	}
}

func TestDecodeAggregateStatsRejectsMalformed(t *testing.T) {
	good := foldedAggregate(t, 16, 8).EncodeStats()
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)-2],
		"trailing bytes": append(append([]byte{}, good...), 0),
		"absurd shape":   {0xff, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := DecodeAggregateStats(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// crashes > runs is internally inconsistent.
	bad := NewAggregate("", 4)
	bad.Runs = 1
	bad.Crashes = 5
	if _, err := DecodeAggregateStats(bad.EncodeStats()); err == nil {
		t.Error("crashes > runs accepted")
	}
}
