package report

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// fuzzReports derives a deterministic report slice from fuzz input: the
// seed bytes choose counts, shapes, and counter values. Keeping the
// construction total (any byte string maps to some valid slice) lets
// the fuzzer explore the codec instead of fighting a parser.
func fuzzReports(data []byte) []*Report {
	at := func(i int) uint64 {
		if len(data) == 0 {
			return 0
		}
		return uint64(data[i%len(data)])
	}
	n := int(at(0)) % 20
	width := int(at(1))%64 + 1
	reports := make([]*Report, 0, n)
	for i := 0; i < n; i++ {
		r := &Report{
			RunID:    at(i) + uint64(i)<<8,
			Program:  "fuzz-p",
			Crashed:  at(i+2)%3 == 0,
			Counters: make([]uint64, width),
		}
		for j := range r.Counters {
			r.Counters[j] = at(i+j) * at(j)
		}
		r.Nonzeros() // decoded reports carry the sparse cache; match it
		reports = append(reports, r)
	}
	return reports
}

func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 8, 1, 2, 3})
	f.Add([]byte{19, 63, 0xff, 0, 0xff, 0, 7})
	f.Add(bytes.Repeat([]byte{0xaa, 1}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		reports := fuzzReports(data)
		var buf bytes.Buffer
		if err := WriteAll(&buf, reports); err != nil {
			t.Fatalf("WriteAll: %v", err)
		}
		stream := buf.Bytes()

		got, err := ReadAll(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("ReadAll of own output: %v", err)
		}
		for _, r := range got {
			r.wire = 0 // in-process reports have no wire size
		}
		if len(got) != len(reports) || (len(got) > 0 && !reflect.DeepEqual(reports, got)) {
			t.Fatalf("round trip mismatch: wrote %d, read %d", len(reports), len(got))
		}

		// Every truncation of a valid stream must be recoverable by the
		// tolerant reader: the intact prefix comes back, goodBytes marks
		// exactly where it ends, and the remainder re-reads cleanly.
		for _, cut := range []int{len(stream) / 3, len(stream) / 2, len(stream) - 1} {
			if cut < 0 || cut >= len(stream) {
				continue
			}
			// err is ErrBadFrame when the cut lands mid-frame and nil when
			// it happens to land on a boundary; both are fine — what
			// matters is the recovered prefix.
			prefix, goodBytes, _ := ReadAllPrefix(bytes.NewReader(stream[:cut]))
			if goodBytes > int64(cut) {
				t.Fatalf("goodBytes %d beyond truncation point %d", goodBytes, cut)
			}
			if len(prefix) > len(reports) {
				t.Fatalf("prefix read %d reports from a %d-report stream", len(prefix), len(reports))
			}
			reread, err := ReadAll(bytes.NewReader(stream[:goodBytes]))
			if err != nil || len(reread) != len(prefix) {
				t.Fatalf("goodBytes prefix not self-consistent: %v (%d vs %d)", err, len(reread), len(prefix))
			}
		}
	})
}

func FuzzReadAllPrefixArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte("CBR1 this is not a report stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic the tolerant reader, and
		// whatever prefix it accepts must re-read as full frames. A
		// non-nil error just reports that a tail was dropped.
		reports, goodBytes, _ := ReadAllPrefix(bytes.NewReader(data))
		if goodBytes < 0 || goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d out of range [0,%d]", goodBytes, len(data))
		}
		reread, err := ReadAll(bytes.NewReader(data[:goodBytes]))
		if err != nil {
			t.Fatalf("accepted prefix does not re-read: %v", err)
		}
		if len(reread) != len(reports) {
			t.Fatalf("prefix re-read %d reports, first pass saw %d", len(reread), len(reports))
		}
	})
}

// TestReadAllPrefixCorruptTail pins the spill-replay contract: a log
// whose final frame was torn by a crash yields every complete frame and
// a goodBytes offset the caller can truncate the file to.
func TestReadAllPrefixCorruptTail(t *testing.T) {
	var reports []*Report
	for i := 0; i < 8; i++ {
		r := &Report{RunID: uint64(i + 1), Program: "p", Counters: []uint64{uint64(i), 3, 0}}
		r.Nonzeros()
		reports = append(reports, r)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, reports); err != nil {
		t.Fatal(err)
	}
	clean := int64(buf.Len())

	// A torn frame: a plausible length prefix followed by too few bytes.
	// The tolerant reader recovers the prefix and reports the drop.
	torn := append(append([]byte{}, buf.Bytes()...), 0x20, 0xde, 0xad)
	got, goodBytes, err := ReadAllPrefix(bytes.NewReader(torn))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn tail: err = %v, want ErrBadFrame", err)
	}
	if len(got) != len(reports) || goodBytes != clean {
		t.Fatalf("torn tail: %d reports, goodBytes %d; want %d, %d", len(got), goodBytes, len(reports), clean)
	}

	// Garbage inside the last full frame: the frame decodes or it
	// doesn't, but the seven intact frames before it must survive.
	corrupt := append([]byte{}, buf.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0xff
	got, goodBytes, _ = ReadAllPrefix(bytes.NewReader(corrupt))
	if len(got) < len(reports)-1 {
		t.Fatalf("lost intact frames before the corrupt one: %d of %d", len(got), len(reports))
	}
	if _, err := ReadAll(bytes.NewReader(corrupt[:goodBytes])); err != nil {
		t.Fatalf("goodBytes prefix not clean after corruption: %v", err)
	}

	// The strict reader must refuse the same corruption outright.
	if _, err := ReadAll(bytes.NewReader(torn)); err == nil {
		t.Error("strict ReadAll accepted a torn tail")
	}
}
