package report

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomReports(rng *rand.Rand, runs, n int, density float64) []*Report {
	reps := make([]*Report, runs)
	for i := range reps {
		counters := make([]uint64, n)
		for c := 0; c < n; c++ {
			if rng.Float64() < density {
				counters[c] = uint64(rng.Intn(9) + 1)
			}
		}
		reps[i] = &Report{
			RunID:    uint64(i),
			Program:  "p",
			Crashed:  rng.Float64() < 0.3,
			Counters: counters,
		}
	}
	return reps
}

// TestFoldBatchMatchesSerialFold is the bit-identity property the staged
// folders rest on: pre-merging a batch through BatchStats and applying
// it with FoldBatch must leave the aggregate exactly as folding each
// report individually — across uneven batch sizes, mixed crash/success
// populations, and one BatchStats reused (Reset) for every batch.
func TestFoldBatchMatchesSerialFold(t *testing.T) {
	for _, density := range []float64{0.02, 0.3, 1.0} {
		rng := rand.New(rand.NewSource(int64(density * 100)))
		const n, runs = 64, 257 // odd count: the last batch is ragged
		reps := randomReports(rng, runs, n, density)

		serial := NewAggregate("p", n)
		for _, r := range reps {
			if err := serial.Fold(r); err != nil {
				t.Fatal(err)
			}
		}

		batched := NewAggregate("p", n)
		var bs BatchStats
		for at := 0; at < runs; {
			end := at + 1 + rng.Intn(32)
			if end > runs {
				end = runs
			}
			bs.Reset(n)
			for _, r := range reps[at:end] {
				if err := bs.Observe(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := batched.FoldBatch(&bs); err != nil {
				t.Fatal(err)
			}
			at = end
		}
		if !reflect.DeepEqual(batched, serial) {
			t.Fatalf("density %v: batched fold diverges from serial fold\n got: %+v\nwant: %+v",
				density, batched, serial)
		}
	}
}

// TestFoldBatchAdoptsShape mirrors Fold: an aggregate created with zero
// counters adopts the first batch's shape, and shape mismatches error
// on both Observe and FoldBatch.
func TestFoldBatchAdoptsShape(t *testing.T) {
	var bs BatchStats
	bs.Reset(3)
	if err := bs.Observe(&Report{RunID: 1, Counters: []uint64{0, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := bs.Observe(&Report{RunID: 2, Counters: []uint64{1}}); err == nil {
		t.Fatal("observe with mismatched shape should error")
	}

	agg := NewAggregate("p", 0)
	if err := agg.FoldBatch(&bs); err != nil {
		t.Fatal(err)
	}
	if agg.NumCounters != 3 || agg.Runs != 1 {
		t.Fatalf("adopted shape %d runs %d, want 3 and 1", agg.NumCounters, agg.Runs)
	}
	bs.Reset(5)
	if err := agg.FoldBatch(&bs); err == nil {
		t.Fatal("fold with mismatched batch shape should error")
	}
}

// TestBatchStatsResetReuse: Reset keeps the dense arrays but forgets the
// previous batch entirely — including when the counter space changes and
// when the generation counter wraps (the lazy-zeroing edge).
func TestBatchStatsResetReuse(t *testing.T) {
	var bs BatchStats
	bs.Reset(4)
	if err := bs.Observe(&Report{RunID: 1, Crashed: true, Counters: []uint64{5, 0, 7, 0}}); err != nil {
		t.Fatal(err)
	}
	bs.Reset(4)
	if len(bs.Touched) != 0 || bs.Runs != 0 || bs.Crashes != 0 {
		t.Fatalf("reset kept state: %+v", bs)
	}
	// A stale Sums slot must not leak into the next batch's fold.
	if err := bs.Observe(&Report{RunID: 2, Counters: []uint64{3, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	agg := NewAggregate("p", 4)
	if err := agg.FoldBatch(&bs); err != nil {
		t.Fatal(err)
	}
	if agg.Totals[0] != 3 || agg.Totals[2] != 0 || agg.NonzeroInFailure[0] {
		t.Fatalf("stale slots leaked across Reset: %+v", agg)
	}

	// Changing the counter space reallocates.
	bs.Reset(2)
	if err := bs.Observe(&Report{RunID: 3, Counters: []uint64{0, 9}}); err != nil {
		t.Fatal(err)
	}
	if bs.NumCounters != 2 || bs.Sums[1] != 9 {
		t.Fatalf("resize failed: %+v", bs)
	}

	// Generation wrap: the marks hard-clear instead of treating every
	// stale slot as live.
	bs.Reset(4)
	_ = bs.Observe(&Report{RunID: 4, Counters: []uint64{1, 1, 1, 1}})
	bs.gen = ^uint32(0) - 1
	for i := range bs.mark {
		bs.mark[i] = bs.gen
	}
	bs.Reset(4) // gen -> MaxUint32
	bs.Reset(4) // gen wraps -> hard clear, gen = 1
	if bs.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", bs.gen)
	}
	if err := bs.Observe(&Report{RunID: 5, Counters: []uint64{0, 4, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if len(bs.Touched) != 1 || bs.Sums[1] != 4 {
		t.Fatalf("post-wrap observe corrupted: %+v", bs)
	}
}

// TestFoldBatchEmpty: folding a batch that observed no reports is a
// no-op.
func TestFoldBatchEmpty(t *testing.T) {
	var bs BatchStats
	bs.Reset(8)
	agg := NewAggregate("p", 8)
	if err := agg.FoldBatch(&bs); err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 0 || agg.Crashes != 0 {
		t.Fatalf("empty batch changed the aggregate: %+v", agg)
	}
}
