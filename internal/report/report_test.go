package report

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleReport() *Report {
	return &Report{
		RunID:    42,
		Program:  "ccrypt",
		Crashed:  true,
		TrapKind: "null dereference",
		ExitCode: -3,
		Counters: []uint64{0, 0, 5, 0, 1, 0, 0, 0, 0, 77},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleReport()
	enc := r.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.WireLen() != len(enc) {
		t.Errorf("WireLen = %d, want %d", got.WireLen(), len(enc))
	}
	if got.Lenient() {
		t.Error("Encode output must not decode leniently")
	}
	got.wire = 0 // in-process reports have no wire size; ignore for equality
	r.Nonzeros() // decoded reports carry the sparse cache; match it
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip:\n%+v\n%+v", r, got)
	}
}

func TestEncodeIsSparse(t *testing.T) {
	// A 100k-counter vector with 3 nonzero entries must encode small.
	r := &Report{Program: "bc", Counters: make([]uint64, 100000)}
	r.Counters[5] = 1
	r.Counters[77777] = 3
	r.Counters[99999] = 12
	enc := r.Encode()
	if len(enc) > 64 {
		t.Errorf("sparse encoding is %d bytes", len(enc))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("CBR2....."),
		[]byte("CBR1"),
		append(sampleReport().Encode()[:8], 0xff),
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("%q: want error", c)
		}
	}
}

func TestDecodeRejectsOutOfRangeIndices(t *testing.T) {
	// Hand-craft: valid prefix, then counter index past the vector. The
	// encoding ends with [#nonzero=0, traceLen=0]; replace it with a
	// nonzero entry whose index delta (10) exceeds the 2-counter vector.
	r := &Report{Program: "p", Counters: []uint64{0, 0}}
	enc := r.Encode()
	enc = enc[:len(enc)-2]
	enc = append(enc, 1 /*nonzero*/, 10 /*delta*/, 1 /*value*/, 0 /*traceLen*/)
	if _, err := Decode(enc); err == nil {
		t.Error("want error for out-of-range index")
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	err := quick.Check(func(id uint64, crashed bool, exit int64, n uint8) bool {
		r := &Report{
			RunID:    id,
			Program:  "prog",
			Crashed:  crashed,
			TrapKind: "t",
			ExitCode: exit,
			Counters: make([]uint64, int(n)+1),
		}
		for i := range r.Counters {
			if rng.Intn(4) == 0 {
				r.Counters[i] = uint64(rng.Int63n(1000))
			}
		}
		got, err := Decode(r.Encode())
		if err != nil {
			return false
		}
		got.wire = 0 // in-process reports have no wire size; ignore for equality
		r.Nonzeros() // decoded reports carry the sparse cache; match it
		return !got.lenient && reflect.DeepEqual(r, got)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestDBFilters(t *testing.T) {
	db := NewDB("p", 3)
	for i := 0; i < 10; i++ {
		err := db.Add(&Report{
			RunID:    uint64(i),
			Program:  "p",
			Crashed:  i%3 == 0,
			Counters: []uint64{uint64(i), 0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 10 {
		t.Error("len")
	}
	if len(db.Failures()) != 4 || len(db.Successes()) != 6 {
		t.Errorf("failures %d successes %d", len(db.Failures()), len(db.Successes()))
	}
	totals := db.TotalCounts()
	if totals[0] != 45 || totals[1] != 0 || totals[2] != 10 {
		t.Errorf("totals: %v", totals)
	}
}

func TestDBValidation(t *testing.T) {
	db := NewDB("p", 3)
	if err := db.Add(&Report{Program: "other", Counters: make([]uint64, 3)}); err == nil {
		t.Error("program mismatch should fail")
	}
	if err := db.Add(&Report{Program: "p", Counters: make([]uint64, 5)}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestLabel(t *testing.T) {
	if (&Report{Crashed: true}).Label() != 1 || (&Report{}).Label() != 0 {
		t.Error("labels")
	}
}

func TestAggregateMatchesDB(t *testing.T) {
	db := NewDB("p", 4)
	mk := func(crashed bool, counters ...uint64) {
		if err := db.Add(&Report{Program: "p", Crashed: crashed, Counters: counters}); err != nil {
			t.Fatal(err)
		}
	}
	mk(false, 1, 0, 0, 0)
	mk(false, 0, 2, 0, 0)
	mk(true, 0, 0, 3, 0)
	mk(true, 1, 0, 0, 0)

	agg := NewAggregate("p", 4)
	if err := agg.FromDB(db); err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 4 || agg.Crashes != 2 {
		t.Errorf("runs=%d crashes=%d", agg.Runs, agg.Crashes)
	}
	wantSucc := []bool{true, true, false, false}
	wantFail := []bool{true, false, true, false}
	if !reflect.DeepEqual(agg.NonzeroInSuccess, wantSucc) {
		t.Errorf("success bits: %v", agg.NonzeroInSuccess)
	}
	if !reflect.DeepEqual(agg.NonzeroInFailure, wantFail) {
		t.Errorf("failure bits: %v", agg.NonzeroInFailure)
	}
	if !reflect.DeepEqual(agg.Totals, []uint64{2, 2, 3, 0}) {
		t.Errorf("totals: %v", agg.Totals)
	}
}

func TestAggregateRejectsBadShape(t *testing.T) {
	agg := NewAggregate("p", 2)
	if err := agg.Fold(&Report{Counters: make([]uint64, 3)}); err == nil {
		t.Error("want shape error")
	}
}

func TestNonzerosSparseForm(t *testing.T) {
	r := &Report{Counters: []uint64{0, 5, 0, 0, 7, 1}}
	want := []CounterNZ{{1, 5}, {4, 7}, {5, 1}}
	if got := r.Nonzeros(); !reflect.DeepEqual(got, want) {
		t.Errorf("Nonzeros: %v", got)
	}
	// ForEachNonzero visits the same pairs in the same order, cached or not.
	for _, rep := range []*Report{r, {Counters: []uint64{0, 5, 0, 0, 7, 1}}} {
		var got []CounterNZ
		rep.ForEachNonzero(func(i int, c uint64) {
			got = append(got, CounterNZ{int32(i), c})
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ForEachNonzero: %v", got)
		}
	}
	// All-zero report: cached empty, never revisited.
	z := &Report{Counters: make([]uint64, 3)}
	if nz := z.Nonzeros(); len(nz) != 0 {
		t.Errorf("zero report nonzeros: %v", nz)
	}
}

func TestDecodePopulatesSparseForm(t *testing.T) {
	orig := &Report{RunID: 9, Program: "p", Counters: []uint64{0, 0, 3, 0, 9}}
	dec, err := Decode(orig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.nz == nil {
		t.Fatal("decode did not populate the sparse form")
	}
	if want := []CounterNZ{{2, 3}, {4, 9}}; !reflect.DeepEqual(dec.nz, want) {
		t.Errorf("decoded nonzeros: %v", dec.nz)
	}
}

// Folding a decoded (sparse-cached) report must equal folding the dense
// original.
func TestFoldSparseMatchesDense(t *testing.T) {
	reps := []*Report{
		{Program: "p", Crashed: false, Counters: []uint64{1, 0, 0, 4}},
		{Program: "p", Crashed: true, Counters: []uint64{0, 2, 0, 0}},
		{Program: "p", Crashed: true, Counters: []uint64{0, 0, 0, 0}},
	}
	dense := NewAggregate("p", 4)
	sparse := NewAggregate("p", 4)
	dbDense, dbSparse := NewDB("p", 4), NewDB("p", 4)
	for _, r := range reps {
		if err := dense.Fold(r); err != nil {
			t.Fatal(err)
		}
		_ = dbDense.Add(r)
		dec, err := Decode(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := sparse.Fold(dec); err != nil {
			t.Fatal(err)
		}
		_ = dbSparse.Add(dec)
	}
	if !reflect.DeepEqual(dense, sparse) {
		t.Errorf("aggregates differ:\n%+v\n%+v", dense, sparse)
	}
	if !reflect.DeepEqual(dbDense.TotalCounts(), dbSparse.TotalCounts()) {
		t.Errorf("totals differ: %v vs %v", dbDense.TotalCounts(), dbSparse.TotalCounts())
	}
}
