package report

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWriteReadAllRoundTrip(t *testing.T) {
	var reports []*Report
	for i := 0; i < 25; i++ {
		r := &Report{
			RunID:    uint64(i),
			Program:  "p",
			Crashed:  i%5 == 0,
			Counters: make([]uint64, 40),
		}
		r.Counters[i%40] = uint64(i * 3)
		r.Nonzeros() // decoded reports carry the sparse cache; match it
		reports = append(reports, r)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, reports); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.WireLen() == 0 {
			t.Fatal("decoded report lost its wire size")
		}
		r.wire = 0 // in-process reports have no wire size; ignore for equality
	}
	if !reflect.DeepEqual(reports, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadAllRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []*Report{{Program: "p", Counters: []uint64{1, 2, 3}}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := ReadAll(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})); err == nil {
		t.Error("absurd frame length accepted")
	}
	// Empty stream is an empty database.
	if got, err := ReadAll(bytes.NewReader(nil)); err != nil || len(got) != 0 {
		t.Error("empty stream")
	}
}

func TestFileAndDirStore(t *testing.T) {
	dir := t.TempDir()
	db1 := NewDB("p", 3)
	db2 := NewDB("p", 3)
	for i := 0; i < 10; i++ {
		r := &Report{RunID: uint64(i), Program: "p", Crashed: i == 0, Counters: []uint64{uint64(i), 0, 1}}
		if i < 6 {
			_ = db1.Add(r)
		} else {
			_ = db2.Add(r)
		}
	}
	if err := db1.WriteFile(filepath.Join(dir, "a.cbr")); err != nil {
		t.Fatal(err)
	}
	if err := db2.WriteFile(filepath.Join(dir, "b.cbr")); err != nil {
		t.Fatal(err)
	}
	// A non-report file must be ignored by LoadDir.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	one, err := LoadFile(filepath.Join(dir, "a.cbr"), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Len() != 6 || one.Program != "p" || one.NumCounters != 3 {
		t.Fatalf("loaded: %+v", one)
	}

	all, err := LoadDir(dir, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 10 {
		t.Fatalf("dir load: %d reports", all.Len())
	}
	if len(all.Failures()) != 1 {
		t.Error("outcome lost in persistence")
	}
}

func TestLoadFileValidatesShape(t *testing.T) {
	dir := t.TempDir()
	db := NewDB("p", 3)
	_ = db.Add(&Report{Program: "p", Counters: []uint64{1, 2, 3}})
	path := filepath.Join(dir, "x.cbr")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, "other-program", 3); err == nil {
		t.Error("program mismatch accepted")
	}
	if _, err := LoadFile(path, "p", 99); err == nil {
		t.Error("counter mismatch accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.cbr"), "", 0); err == nil {
		t.Error("missing file accepted")
	}
}
