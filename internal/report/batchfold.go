package report

import "fmt"

// BatchStats pre-merges a batch of same-shape reports into per-counter
// sufficient-statistic deltas: the value sum, and the number of
// successful / failing runs in which the counter was nonzero. Every
// downstream statistic in Aggregate (and score.Accum, when it carries
// no site spans) is a sum of exactly these per-run facts, and integer
// sums commute — so applying the merged deltas with FoldBatch is
// bit-identical to folding each observed report individually, while
// traversing each report's nonzeros once (instead of once per consumer
// structure) and touching the big per-counter arrays once per distinct
// index per batch (instead of once per report).
//
// This is the fold-side payoff of staged ingest: a synchronous handler
// folds reports one at a time because no batch exists, but a background
// folder drains whole batches and can amortize them here.
//
// Not safe for concurrent use; each folder owns one BatchStats and
// reuses it across batches (Reset is O(touched), not O(counter space)).
type BatchStats struct {
	NumCounters int
	Runs        int
	Crashes     int
	// Touched lists the counter indices with at least one nonzero in
	// the batch, in first-touch order. Sums, SuccRuns, and FailRuns are
	// dense per-counter arrays whose entries are meaningful only at the
	// touched indices.
	Touched  []int32
	Sums     []uint64
	SuccRuns []uint32
	FailRuns []uint32

	// Generation marks make Reset O(1) on the dense arrays: a slot is
	// live only if mark[i] == gen, and stale slots are lazily zeroed on
	// first touch.
	mark []uint32
	gen  uint32
}

// Reset prepares the scratch for a new batch over a counter space of
// the given size. Reusing one BatchStats across batches keeps the dense
// arrays allocated and cache-warm.
func (b *BatchStats) Reset(numCounters int) {
	if len(b.mark) != numCounters {
		b.NumCounters = numCounters
		b.Sums = make([]uint64, numCounters)
		b.SuccRuns = make([]uint32, numCounters)
		b.FailRuns = make([]uint32, numCounters)
		b.mark = make([]uint32, numCounters)
		b.gen = 0
	}
	b.Runs, b.Crashes = 0, 0
	b.Touched = b.Touched[:0]
	b.gen++
	if b.gen == 0 { // generation counter wrapped: hard-clear the marks
		for i := range b.mark {
			b.mark[i] = 0
		}
		b.gen = 1
	}
}

// Observe merges one report into the batch. The report's shape must
// match the Reset size.
func (b *BatchStats) Observe(r *Report) error {
	if len(r.Counters) != b.NumCounters {
		return fmt.Errorf("report: counter vector length %d, want %d", len(r.Counters), b.NumCounters)
	}
	b.Runs++
	cnt := b.SuccRuns
	if r.Crashed {
		b.Crashes++
		cnt = b.FailRuns
	}
	g := b.gen
	r.ForEachNonzero(func(i int, c uint64) {
		if b.mark[i] != g {
			b.mark[i] = g
			b.Sums[i], b.SuccRuns[i], b.FailRuns[i] = 0, 0, 0
			b.Touched = append(b.Touched, int32(i))
		}
		b.Sums[i] += c
		cnt[i]++
	})
	return nil
}

// FoldBatch applies pre-merged batch statistics to the aggregate. The
// result is bit-identical to calling Fold on each report the batch
// observed, in any order: totals are sums, run/crash tallies are sums,
// and "ever nonzero in outcome" is true exactly when the batch saw the
// counter nonzero in at least one run of that outcome. An aggregate
// created with zero counters adopts the batch's shape, mirroring Fold.
func (a *Aggregate) FoldBatch(b *BatchStats) error {
	if a.NumCounters == 0 && a.Runs == 0 && b.NumCounters > 0 {
		a.NumCounters = b.NumCounters
		a.NonzeroInSuccess = make([]bool, a.NumCounters)
		a.NonzeroInFailure = make([]bool, a.NumCounters)
		a.Totals = make([]uint64, a.NumCounters)
	}
	if b.NumCounters != a.NumCounters {
		return fmt.Errorf("report: batch counter space %d, want %d", b.NumCounters, a.NumCounters)
	}
	a.Runs += b.Runs
	a.Crashes += b.Crashes
	for _, i := range b.Touched {
		a.Totals[i] += b.Sums[i]
		if b.SuccRuns[i] > 0 {
			a.NonzeroInSuccess[i] = true
		}
		if b.FailRuns[i] > 0 {
			a.NonzeroInFailure[i] = true
		}
	}
	return nil
}
