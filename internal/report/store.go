package report

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"cbi/internal/telemetry"
)

// This file implements durable report storage: a length-prefixed framing
// of the wire codec, so fleets can append reports to a file (or one file
// per run in a directory) and analyses can re-load them later. This is
// the "central database" of §1 in its simplest durable form.

// ErrBadFrame is returned when a report file is truncated or corrupt.
var ErrBadFrame = errors.New("report: bad frame")

// WriteAll writes reports to w, each as a uvarint length prefix followed
// by the encoded report.
func WriteAll(w io.Writer, reports []*Report) error {
	bw := bufio.NewWriter(w)
	var lenBuf [binary.MaxVarintLen64]byte
	for _, r := range reports {
		enc := r.Encode()
		n := binary.PutUvarint(lenBuf[:], uint64(len(enc)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(enc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll reads every framed report from r.
func ReadAll(r io.Reader) ([]*Report, error) {
	br := bufio.NewReader(r)
	var out []*Report
	for {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, ErrBadFrame
		}
		if size > 1<<30 {
			return nil, ErrBadFrame
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, ErrBadFrame
		}
		rep, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
}

// ReadAllPrefix reads framed reports from r like ReadAll, but tolerates
// a torn tail: on truncation or corruption it returns every report
// decoded so far plus the byte offset just past the last good frame,
// with ErrBadFrame (or the decode error) signalling that the tail was
// dropped. A collector replaying its crash-spilled append-only log uses
// the offset to truncate the torn write instead of discarding the log
// wholesale.
func ReadAllPrefix(r io.Reader) (reports []*Report, goodBytes int64, err error) {
	br := bufio.NewReader(r)
	var lenBuf [binary.MaxVarintLen64]byte
	for {
		size, n, rerr := readUvarintCounted(br, lenBuf[:])
		if rerr == io.EOF && n == 0 {
			return reports, goodBytes, nil
		}
		if rerr != nil || size > 1<<30 {
			return reports, goodBytes, ErrBadFrame
		}
		buf := make([]byte, size)
		if _, rerr := io.ReadFull(br, buf); rerr != nil {
			return reports, goodBytes, ErrBadFrame
		}
		rep, derr := Decode(buf)
		if derr != nil {
			return reports, goodBytes, derr
		}
		reports = append(reports, rep)
		goodBytes += int64(n) + int64(size)
	}
}

// readUvarintCounted is binary.ReadUvarint plus a count of bytes
// consumed, so ReadAllPrefix can track exact frame boundaries.
func readUvarintCounted(br *bufio.Reader, scratch []byte) (v uint64, n int, err error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, n, err
		}
		scratch[n] = b
		n++
		if b < 0x80 {
			u, w := binary.Uvarint(scratch[:n])
			if w != n {
				return 0, n, ErrBadFrame
			}
			return u, n, nil
		}
		if n == len(scratch) {
			return 0, n, ErrBadFrame
		}
	}
}

// WriteFile saves a database to path.
func (db *DB) WriteFile(path string) error {
	defer telemetry.StartSpan("report.write_file").End()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAll(f, db.Reports); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a report file into a database. program and numCounters
// may be empty/zero to accept whatever the file contains (the first
// report then fixes the expected shape).
func LoadFile(path, program string, numCounters int) (*DB, error) {
	defer telemetry.StartSpan("report.load_file").End()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reports, err := ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	telemetry.C("report_loaded_total").Add(uint64(len(reports)))
	db := NewDB(program, numCounters)
	for _, r := range reports {
		if db.NumCounters == 0 {
			db.NumCounters = len(r.Counters)
		}
		if db.Program == "" {
			db.Program = r.Program
		}
		if err := db.Add(r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return db, nil
}

// LoadDir loads every "*.cbr" file under dir (sorted for determinism)
// into one database.
func LoadDir(dir, program string, numCounters int) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".cbr" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	db := NewDB(program, numCounters)
	for _, name := range names {
		sub, err := LoadFile(filepath.Join(dir, name), db.Program, db.NumCounters)
		if err != nil {
			return nil, err
		}
		if db.NumCounters == 0 {
			db.NumCounters = sub.NumCounters
		}
		if db.Program == "" {
			db.Program = sub.Program
		}
		for _, r := range sub.Reports {
			if err := db.Add(r); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
