// Package report defines the per-run feedback record of §2.5 — a vector
// of predicate counters plus a success/crash flag — together with a
// compact wire codec, an in-memory database, and aggregate ("sufficient
// statistics") summaries that support the elimination strategies without
// retaining individual runs (§5's privacy mechanism).
package report

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Report is the result of one remote run. Its size is dominated by the
// counter vector, whose length is fixed by the instrumented program, "
// largely independent of the sampling density or running time" (§2.5).
type Report struct {
	// RunID identifies the run (assigned by the generator or collector).
	RunID uint64
	// Program names the instrumented program build, so a collector can
	// reject mismatched counter spaces.
	Program string
	// Crashed records whether the run was aborted by a fatal signal
	// (§3.3.1's binary outcome label).
	Crashed bool
	// TrapKind describes the crash ("out-of-bounds access", ...).
	TrapKind string
	// ExitCode is main's return value for successful runs.
	ExitCode int64
	// Counters holds how often each predicate was observed true.
	Counters []uint64
	// Trace optionally holds the site IDs of the last few sampled probe
	// firings in order (the bounded partial trace the paper defers to
	// future work in §2.5).
	Trace []int

	// nz caches the nonzero (index, value) pairs of Counters in ascending
	// index order. At realistic sampling densities a counter vector is
	// overwhelmingly zeros, so consumers that only care about observed
	// predicates (Aggregate.Fold, DB.TotalCounts, elimination trials,
	// sparse regression datasets) iterate this instead of scanning the
	// dense vector. Decode populates it for free from the wire pairs;
	// Nonzeros builds it on demand. The cache assumes Counters is not
	// mutated after it is built — every pipeline path treats reports as
	// immutable once constructed.
	nz []CounterNZ

	// wire is the encoded size in bytes this report arrived as (set by
	// Decode; 0 for reports constructed in process), and lenient records
	// whether Decode accepted it only through the leniency path
	// (duplicate counter indices or explicit zero pairs — see Decode).
	// Ingest-quality accounting reads both via WireLen and Lenient.
	wire    int
	lenient bool
}

// WireLen returns the encoded size in bytes the report was decoded
// from, or 0 if it was constructed in process.
func (r *Report) WireLen() int { return r.wire }

// Lenient reports whether Decode accepted this report through the
// leniency path: duplicate counter indices or explicit zero pairs,
// encodings no real client produces. Such reports still fold, but the
// collector quarantine-counts them.
func (r *Report) Lenient() bool { return r.lenient }

// CounterNZ is one nonzero counter: its index in the program's counter
// space and its observed count.
type CounterNZ struct {
	Index int32
	Value uint64
}

// Nonzeros returns the report's nonzero counters in ascending index
// order, building and caching the sparse form on first call. The build
// mutates the report, so concurrent callers must ensure the cache exists
// (call Nonzeros once, or Decode the report) before sharing it across
// goroutines; ForEachNonzero never mutates and is always safe.
func (r *Report) Nonzeros() []CounterNZ {
	if r.nz == nil {
		n := 0
		for _, c := range r.Counters {
			if c != 0 {
				n++
			}
		}
		nz := make([]CounterNZ, 0, n)
		for i, c := range r.Counters {
			if c != 0 {
				nz = append(nz, CounterNZ{Index: int32(i), Value: c})
			}
		}
		r.nz = nz
	}
	return r.nz
}

// ForEachNonzero calls f for every nonzero counter in ascending index
// order. It uses the cached sparse form when one exists and falls back
// to a dense scan otherwise, never mutating the report — safe for
// concurrent use on a report that is no longer being written.
func (r *Report) ForEachNonzero(f func(i int, c uint64)) {
	if r.nz != nil {
		for _, e := range r.nz {
			f(int(e.Index), e.Value)
		}
		return
	}
	for i, c := range r.Counters {
		if c != 0 {
			f(i, c)
		}
	}
}

// Label returns the logistic-regression outcome: 1 for a crash, 0 for a
// successful run.
func (r *Report) Label() int {
	if r.Crashed {
		return 1
	}
	return 0
}

// ----------------------------------------------------------------------------
// Wire codec

// The format is deliberately sparse: most counters are zero in any given
// sampled run, so counters are encoded as (index delta, value) varint
// pairs.
//
//	magic "CBR1"
//	varint RunID
//	varint len(Program), bytes
//	byte   crashed (0/1)
//	varint len(TrapKind), bytes
//	varint zigzag(ExitCode)
//	varint NumCounters
//	varint #nonzero
//	repeated: varint indexDelta, varint value
//	varint len(Trace)
//	repeated: varint siteID

var magic = []byte("CBR1")

// ErrBadReport is returned by Decode for malformed input.
var ErrBadReport = errors.New("report: malformed encoding")

type encoder struct{ buf []byte }

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) bytes(b []byte)   { e.uvarint(uint64(len(b))); e.buf = append(e.buf, b...) }
func (e *encoder) byteVal(b byte)   { e.buf = append(e.buf, b) }

// Encode serializes the report.
func (r *Report) Encode() []byte {
	e := &encoder{buf: append([]byte(nil), magic...)}
	e.uvarint(r.RunID)
	e.bytes([]byte(r.Program))
	if r.Crashed {
		e.byteVal(1)
	} else {
		e.byteVal(0)
	}
	e.bytes([]byte(r.TrapKind))
	e.varint(r.ExitCode)
	e.uvarint(uint64(len(r.Counters)))
	nonzero := 0
	for _, c := range r.Counters {
		if c != 0 {
			nonzero++
		}
	}
	e.uvarint(uint64(nonzero))
	prev := 0
	for i, c := range r.Counters {
		if c == 0 {
			continue
		}
		e.uvarint(uint64(i - prev))
		e.uvarint(c)
		prev = i
	}
	e.uvarint(uint64(len(r.Trace)))
	for _, id := range r.Trace {
		e.uvarint(uint64(id))
	}
	return e.buf
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = ErrBadReport
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = ErrBadReport
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = ErrBadReport
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *decoder) byteVal() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = ErrBadReport
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Decode parses a report encoded by Encode.
func Decode(data []byte) (*Report, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, ErrBadReport
	}
	d := &decoder{buf: data, off: len(magic)}
	r := &Report{wire: len(data)}
	r.RunID = d.uvarint()
	r.Program = string(d.bytes())
	r.Crashed = d.byteVal() != 0
	r.TrapKind = string(d.bytes())
	r.ExitCode = d.varint()
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > 1<<28 {
		return nil, ErrBadReport
	}
	r.Counters = make([]uint64, n)
	nz := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nz > n {
		return nil, ErrBadReport
	}
	// The wire format is already sparse (index-delta, value pairs), so the
	// in-memory sparse form comes for free during decoding: downstream
	// folds and analyses iterate it instead of rescanning the dense vector.
	r.nz = make([]CounterNZ, 0, nz)
	cacheOK := true
	idx := 0
	for i := uint64(0); i < nz; i++ {
		delta := d.uvarint()
		val := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		idx += int(delta)
		if idx < 0 || idx >= len(r.Counters) {
			return nil, ErrBadReport
		}
		r.Counters[idx] = val
		if val != 0 {
			r.nz = append(r.nz, CounterNZ{Index: int32(idx), Value: val})
		}
		// A duplicate index (delta 0 past the first pair) or an explicit
		// zero never comes from Encode but was historically accepted;
		// keep accepting it, but drop the cache rather than let it
		// disagree with the dense vector.
		if val == 0 || (i > 0 && delta == 0) {
			cacheOK = false
		}
	}
	if !cacheOK {
		r.nz = nil
		r.lenient = true
	}
	tn := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if tn > 1<<20 {
		return nil, ErrBadReport
	}
	for i := uint64(0); i < tn; i++ {
		id := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		r.Trace = append(r.Trace, int(id))
	}
	return r, nil
}

// ----------------------------------------------------------------------------
// Database

// DB is an in-memory collection of reports for one program build.
type DB struct {
	Program     string
	NumCounters int
	Reports     []*Report
}

// NewDB creates an empty database for a program with the given counter
// space.
func NewDB(program string, numCounters int) *DB {
	return &DB{Program: program, NumCounters: numCounters}
}

// Add appends a report, validating its shape.
func (db *DB) Add(r *Report) error {
	if db.Program != "" && r.Program != "" && r.Program != db.Program {
		return fmt.Errorf("report: program %q does not match database %q", r.Program, db.Program)
	}
	if db.NumCounters != 0 && len(r.Counters) != db.NumCounters {
		return fmt.Errorf("report: counter vector length %d, want %d", len(r.Counters), db.NumCounters)
	}
	db.Reports = append(db.Reports, r)
	return nil
}

// Len returns the number of reports.
func (db *DB) Len() int { return len(db.Reports) }

// Successes returns the successful runs.
func (db *DB) Successes() []*Report { return db.filter(false) }

// Failures returns the crashed runs.
func (db *DB) Failures() []*Report { return db.filter(true) }

func (db *DB) filter(crashed bool) []*Report {
	var out []*Report
	for _, r := range db.Reports {
		if r.Crashed == crashed {
			out = append(out, r)
		}
	}
	return out
}

// TotalCounts merges all counter vectors by summation, visiting only
// each report's nonzero counters.
func (db *DB) TotalCounts() []uint64 {
	total := make([]uint64, db.NumCounters)
	for _, r := range db.Reports {
		r.ForEachNonzero(func(i int, c uint64) {
			total[i] += c
		})
	}
	return total
}

// ----------------------------------------------------------------------------
// Sufficient statistics

// Aggregate maintains exactly the statistics the elimination strategies
// need, without retaining individual runs: per-counter "ever observed
// true" bits split by outcome, plus totals. Once folded in, a report can
// be discarded — the §5 privacy property ("if the analysis host is
// compromised, an attacker cannot recover the precise details of any
// single past trace").
type Aggregate struct {
	Program          string
	NumCounters      int
	Runs             int
	Crashes          int
	NonzeroInSuccess []bool
	NonzeroInFailure []bool
	Totals           []uint64
}

// NewAggregate creates an empty aggregate.
func NewAggregate(program string, numCounters int) *Aggregate {
	return &Aggregate{
		Program:          program,
		NumCounters:      numCounters,
		NonzeroInSuccess: make([]bool, numCounters),
		NonzeroInFailure: make([]bool, numCounters),
		Totals:           make([]uint64, numCounters),
	}
}

// Fold absorbs one report. An aggregate created with zero counters (a
// collector run with "accept any" shape) adopts the shape of the first
// report folded into it.
func (a *Aggregate) Fold(r *Report) error {
	if a.NumCounters == 0 && a.Runs == 0 && len(r.Counters) > 0 {
		a.NumCounters = len(r.Counters)
		a.NonzeroInSuccess = make([]bool, a.NumCounters)
		a.NonzeroInFailure = make([]bool, a.NumCounters)
		a.Totals = make([]uint64, a.NumCounters)
	}
	if len(r.Counters) != a.NumCounters {
		return fmt.Errorf("report: counter vector length %d, want %d", len(r.Counters), a.NumCounters)
	}
	a.Runs++
	if r.Crashed {
		a.Crashes++
	}
	// Iterate the sparse form when the report carries one (every decoded
	// report does): at 1/100 sampling a counter vector is overwhelmingly
	// zeros, so folding nonzeros is the difference between O(observed)
	// and O(counter space) per report.
	hit := a.NonzeroInSuccess
	if r.Crashed {
		hit = a.NonzeroInFailure
	}
	r.ForEachNonzero(func(i int, c uint64) {
		a.Totals[i] += c
		hit[i] = true
	})
	return nil
}

// FromDB folds an entire database.
func (a *Aggregate) FromDB(db *DB) error {
	for _, r := range db.Reports {
		if err := a.Fold(r); err != nil {
			return err
		}
	}
	return nil
}

// Merge absorbs another aggregate into a. Because every statistic here
// is order-free (run/crash counts sum, "ever nonzero" bits OR, totals
// sum), folding reports into shards and merging the shards yields
// exactly the same aggregate as folding every report serially — the
// property that makes concurrent sharded collection legal. An aggregate
// that has not yet fixed its counter shape adopts o's, mirroring Fold.
func (a *Aggregate) Merge(o *Aggregate) error {
	if o.Runs == 0 && o.NumCounters == 0 {
		return nil
	}
	if a.NumCounters == 0 && a.Runs == 0 && o.NumCounters > 0 {
		a.NumCounters = o.NumCounters
		a.NonzeroInSuccess = make([]bool, o.NumCounters)
		a.NonzeroInFailure = make([]bool, o.NumCounters)
		a.Totals = make([]uint64, o.NumCounters)
	}
	if o.NumCounters != a.NumCounters {
		return fmt.Errorf("report: aggregate shape %d, want %d", o.NumCounters, a.NumCounters)
	}
	if a.Program == "" {
		a.Program = o.Program
	}
	a.Runs += o.Runs
	a.Crashes += o.Crashes
	for i := 0; i < o.NumCounters; i++ {
		a.Totals[i] += o.Totals[i]
		a.NonzeroInSuccess[i] = a.NonzeroInSuccess[i] || o.NonzeroInSuccess[i]
		a.NonzeroInFailure[i] = a.NonzeroInFailure[i] || o.NonzeroInFailure[i]
	}
	return nil
}
