package report

import (
	"encoding/binary"
	"errors"
)

// This file implements the batched wire protocol: many reports framed
// into one payload, so a client can amortize an HTTP round-trip over a
// whole buffer of runs. The framing reuses the store.go convention —
// uvarint length prefix, then one Encode()d report per frame — behind a
// distinct magic so a collector can tell a batch from a single report.
//
//	magic "CBB1"
//	varint #reports
//	repeated: varint len, report bytes (Encode format)

var batchMagic = []byte("CBB1")

// ErrBadBatch is returned by DecodeBatch for malformed input.
var ErrBadBatch = errors.New("report: malformed batch encoding")

// MaxBatchReports bounds how many frames DecodeBatch will accept, so a
// hostile length prefix cannot force a huge allocation.
const MaxBatchReports = 1 << 20

// EncodeBatch serializes many reports into one length-prefixed payload.
func EncodeBatch(reports []*Report) []byte {
	e := &encoder{buf: append([]byte(nil), batchMagic...)}
	e.uvarint(uint64(len(reports)))
	for _, r := range reports {
		e.bytes(r.Encode())
	}
	return e.buf
}

// DecodeBatch parses a payload produced by EncodeBatch.
func DecodeBatch(data []byte) ([]*Report, error) {
	if len(data) < len(batchMagic) || string(data[:len(batchMagic)]) != string(batchMagic) {
		return nil, ErrBadBatch
	}
	off := len(batchMagic)
	n, w := binary.Uvarint(data[off:])
	if w <= 0 || n > MaxBatchReports {
		return nil, ErrBadBatch
	}
	off += w
	out := make([]*Report, 0, n)
	for i := uint64(0); i < n; i++ {
		size, w := binary.Uvarint(data[off:])
		if w <= 0 {
			return nil, ErrBadBatch
		}
		off += w
		if size > uint64(len(data)-off) {
			return nil, ErrBadBatch
		}
		rep, err := Decode(data[off : off+int(size)])
		if err != nil {
			return nil, err
		}
		off += int(size)
		out = append(out, rep)
	}
	if off != len(data) {
		return nil, ErrBadBatch
	}
	return out, nil
}

// IsBatch reports whether data carries the batch magic (as opposed to a
// single report's "CBR1"), letting an endpoint accept either framing.
func IsBatch(data []byte) bool {
	return len(data) >= len(batchMagic) && string(data[:len(batchMagic)]) == string(batchMagic)
}

// BatchFrames returns the frame region of a batch payload — everything
// after the magic and count, which is byte-for-byte the WriteAll/ReadAll
// framing used by report logs. A collector spilling an already-validated
// batch body to its append-only log can splice this region in directly
// instead of re-encoding every report. ok is false when data is not a
// well-formed batch header.
func BatchFrames(data []byte) (frames []byte, ok bool) {
	if !IsBatch(data) {
		return nil, false
	}
	off := len(batchMagic)
	n, w := binary.Uvarint(data[off:])
	if w <= 0 || n > MaxBatchReports {
		return nil, false
	}
	return data[off+w:], true
}
