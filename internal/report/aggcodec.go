package report

// Aggregate wire codec: the section payload carried inside the "CBA1"
// merge envelope a federated edge collector pushes upstream (package
// collect), and inside the edge's spilled state snapshot. The encoding
// is sparse — only counters with a nonzero total or a set
// observed-in-success/failure bit get an entry — so a delta that covers
// a quiet interval costs bytes proportional to what actually changed,
// not to the counter space.
//
//	uvarint NumCounters
//	uvarint Runs
//	uvarint Crashes
//	uvarint #entries
//	repeated: uvarint indexDelta, byte bits (1 = success, 2 = failure),
//	          uvarint total
//
// The same codec serializes a full aggregate and a delta: a delta is
// just an Aggregate holding the difference of two cumulative states
// (Diff), and merging it into the upstream cumulative state (Merge) is
// legal because every field is an order-free sum or monotone bit
// (DESIGN §8, extended to trees in §14).

import (
	"errors"
	"fmt"
)

// ErrBadAggregate is returned when an encoded aggregate is malformed.
var ErrBadAggregate = errors.New("report: malformed aggregate encoding")

// EncodeStats serializes the aggregate's sufficient statistics (the
// program name travels in the enclosing envelope, not here).
func (a *Aggregate) EncodeStats() []byte {
	e := &encoder{}
	e.uvarint(uint64(a.NumCounters))
	e.uvarint(uint64(a.Runs))
	e.uvarint(uint64(a.Crashes))
	entries := 0
	for i := 0; i < a.NumCounters; i++ {
		if a.Totals[i] != 0 || a.NonzeroInSuccess[i] || a.NonzeroInFailure[i] {
			entries++
		}
	}
	e.uvarint(uint64(entries))
	prev := 0
	for i := 0; i < a.NumCounters; i++ {
		if a.Totals[i] == 0 && !a.NonzeroInSuccess[i] && !a.NonzeroInFailure[i] {
			continue
		}
		e.uvarint(uint64(i - prev))
		prev = i
		var bits byte
		if a.NonzeroInSuccess[i] {
			bits |= 1
		}
		if a.NonzeroInFailure[i] {
			bits |= 2
		}
		e.byteVal(bits)
		e.uvarint(a.Totals[i])
	}
	return e.buf
}

// DecodeAggregateStats parses a payload produced by EncodeStats.
func DecodeAggregateStats(data []byte) (*Aggregate, error) {
	d := &decoder{buf: data}
	n := d.uvarint()
	runs := d.uvarint()
	crashes := d.uvarint()
	entries := d.uvarint()
	if d.err != nil {
		return nil, ErrBadAggregate
	}
	if n > 1<<28 || entries > n || crashes > runs {
		return nil, ErrBadAggregate
	}
	a := NewAggregate("", int(n))
	a.Runs = int(runs)
	a.Crashes = int(crashes)
	idx := 0
	for i := uint64(0); i < entries; i++ {
		delta := d.uvarint()
		bits := d.byteVal()
		total := d.uvarint()
		if d.err != nil {
			return nil, ErrBadAggregate
		}
		idx += int(delta)
		if idx < 0 || idx >= a.NumCounters || bits > 3 {
			return nil, ErrBadAggregate
		}
		a.NonzeroInSuccess[idx] = bits&1 != 0
		a.NonzeroInFailure[idx] = bits&2 != 0
		a.Totals[idx] = total
	}
	if d.off != len(data) {
		return nil, ErrBadAggregate
	}
	return a, nil
}

// Clone deep-copies the aggregate. Federated edges keep a clone of the
// cumulative state at each epoch cut as the baseline the next delta is
// diffed against.
func (a *Aggregate) Clone() *Aggregate {
	c := &Aggregate{
		Program:          a.Program,
		NumCounters:      a.NumCounters,
		Runs:             a.Runs,
		Crashes:          a.Crashes,
		NonzeroInSuccess: append([]bool(nil), a.NonzeroInSuccess...),
		NonzeroInFailure: append([]bool(nil), a.NonzeroInFailure...),
		Totals:           append([]uint64(nil), a.Totals...),
	}
	return c
}

// Diff returns the delta from base to a: integer statistics subtract,
// and the observed bits carry only the positions newly set since base
// (now AND NOT before — legal because the bits are monotone under
// Fold). Merging the result into a cumulative state equal to base
// reproduces a exactly, which is what makes epoch-cursor delta pushes
// bit-identical to shipping the full aggregate every time. base may be
// nil or empty, in which case the delta is a itself.
func (a *Aggregate) Diff(base *Aggregate) (*Aggregate, error) {
	if base == nil || (base.Runs == 0 && base.NumCounters == 0) {
		return a.Clone(), nil
	}
	if base.NumCounters != a.NumCounters {
		return nil, fmt.Errorf("report: diff shape %d, want %d", base.NumCounters, a.NumCounters)
	}
	if base.Runs > a.Runs || base.Crashes > a.Crashes {
		return nil, fmt.Errorf("report: diff base ahead of current state (%d runs > %d)", base.Runs, a.Runs)
	}
	d := NewAggregate(a.Program, a.NumCounters)
	d.Runs = a.Runs - base.Runs
	d.Crashes = a.Crashes - base.Crashes
	for i := 0; i < a.NumCounters; i++ {
		if a.Totals[i] < base.Totals[i] {
			return nil, fmt.Errorf("report: diff counter %d went backwards", i)
		}
		d.Totals[i] = a.Totals[i] - base.Totals[i]
		d.NonzeroInSuccess[i] = a.NonzeroInSuccess[i] && !base.NonzeroInSuccess[i]
		d.NonzeroInFailure[i] = a.NonzeroInFailure[i] && !base.NonzeroInFailure[i]
	}
	return d, nil
}
