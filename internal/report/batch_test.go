package report

import (
	"bytes"
	"testing"
)

func batchReports(n int) []*Report {
	out := make([]*Report, 0, n)
	for i := 0; i < n; i++ {
		r := &Report{
			RunID:    uint64(i),
			Program:  "p",
			Crashed:  i%3 == 0,
			ExitCode: int64(i - 2),
			Counters: make([]uint64, 50),
		}
		if r.Crashed {
			r.TrapKind = "out-of-bounds access"
		}
		for j := i % 7; j < len(r.Counters); j += 7 {
			r.Counters[j] = uint64(i*j + 1)
		}
		out = append(out, r)
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	reports := batchReports(17)
	enc := EncodeBatch(reports)
	if !IsBatch(enc) {
		t.Fatal("IsBatch(EncodeBatch(...)) = false")
	}
	if IsBatch(reports[0].Encode()) {
		t.Fatal("single report misdetected as batch")
	}
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(reports) {
		t.Fatalf("decoded %d reports, want %d", len(dec), len(reports))
	}
	for i, r := range reports {
		if !bytes.Equal(r.Encode(), dec[i].Encode()) {
			t.Errorf("report %d not identical after round trip", i)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	dec, err := DecodeBatch(EncodeBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d reports from empty batch", len(dec))
	}
}

func TestBatchRejectsCorruption(t *testing.T) {
	enc := EncodeBatch(batchReports(3))
	cases := map[string][]byte{
		"wrong magic":    append([]byte("XXXX"), enc[4:]...),
		"single report":  batchReports(1)[0].Encode(),
		"truncated":      enc[:len(enc)-5],
		"trailing bytes": append(append([]byte(nil), enc...), 0xff),
		"empty":          nil,
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestAggregateMergeMatchesSerialFold(t *testing.T) {
	reports := batchReports(40)
	serial := NewAggregate("p", 50)
	for _, r := range reports {
		if err := serial.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	// Fold into 4 shards by run ID, then merge in shard order.
	shards := make([]*Aggregate, 4)
	for i := range shards {
		shards[i] = NewAggregate("p", 50)
	}
	for _, r := range reports {
		if err := shards[r.RunID%4].Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	merged := NewAggregate("p", 50)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	assertAggregatesEqual(t, merged, serial)
}

func assertAggregatesEqual(t *testing.T, got, want *Aggregate) {
	t.Helper()
	if got.Runs != want.Runs || got.Crashes != want.Crashes || got.NumCounters != want.NumCounters {
		t.Fatalf("got runs=%d crashes=%d counters=%d, want runs=%d crashes=%d counters=%d",
			got.Runs, got.Crashes, got.NumCounters, want.Runs, want.Crashes, want.NumCounters)
	}
	for i := 0; i < want.NumCounters; i++ {
		if got.Totals[i] != want.Totals[i] ||
			got.NonzeroInSuccess[i] != want.NonzeroInSuccess[i] ||
			got.NonzeroInFailure[i] != want.NonzeroInFailure[i] {
			t.Fatalf("counter %d diverges: totals %d/%d succ %v/%v fail %v/%v", i,
				got.Totals[i], want.Totals[i],
				got.NonzeroInSuccess[i], want.NonzeroInSuccess[i],
				got.NonzeroInFailure[i], want.NonzeroInFailure[i])
		}
	}
}

func TestAggregateMergeAdoptsShape(t *testing.T) {
	a := NewAggregate("", 0)
	o := NewAggregate("p", 3)
	if err := o.Fold(&Report{Program: "p", Crashed: true, Counters: []uint64{1, 0, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(o); err != nil {
		t.Fatal(err)
	}
	if a.NumCounters != 3 || a.Runs != 1 || a.Crashes != 1 || a.Program != "p" {
		t.Errorf("adopted aggregate: %+v", a)
	}
	// Merging an empty unshaped aggregate is a no-op.
	before := a.Runs
	if err := a.Merge(NewAggregate("", 0)); err != nil {
		t.Fatal(err)
	}
	if a.Runs != before {
		t.Error("empty merge changed run count")
	}
}

func TestAggregateMergeRejectsShapeMismatch(t *testing.T) {
	a := NewAggregate("p", 3)
	o := NewAggregate("p", 4)
	if err := o.Fold(&Report{Program: "p", Counters: []uint64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(o); err == nil {
		t.Error("mismatched merge accepted")
	}
}
