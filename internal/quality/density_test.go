package quality

import (
	"math/rand"
	"testing"
)

// binomial draws Binomial(n, p) — the per-run total a fair
// Bernoulli-per-opportunity sampler produces.
func binomial(rng *rand.Rand, n int, p float64) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			total++
		}
	}
	return total
}

func TestDensityCheckFairCohortConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var d densityCheck
	const density = 1.0 / 100
	for run := 0; run < 500; run++ {
		d.observe(binomial(rng, 2000, density))
	}
	v := d.verdict(density, 0.25, 200)
	if v.Verdict != "consistent" {
		t.Errorf("fair cohort verdict %q (tv %.3f), want consistent", v.Verdict, v.TVDistance)
	}
	if v.TVDistance > 0.15 {
		t.Errorf("fair cohort tv = %.3f, want near 0", v.TVDistance)
	}
	if v.Dispersion < 0.7 || v.Dispersion > 1.3 {
		t.Errorf("fair cohort dispersion = %.3f, want ~1", v.Dispersion)
	}
	if v.ImpliedOpportunities < 1500 || v.ImpliedOpportunities > 2500 {
		t.Errorf("implied opportunities = %.0f, want ~2000", v.ImpliedOpportunities)
	}
}

func TestDensityCheckPeriodicCohortDrifts(t *testing.T) {
	// A periodic sampler reports the identical total every run: all mass
	// on one bucket, nowhere near a Poisson law.
	var d densityCheck
	for run := 0; run < 500; run++ {
		d.observe(20)
	}
	v := d.verdict(1.0/100, 0.25, 200)
	if v.Verdict != "drift" {
		t.Errorf("periodic cohort verdict %q (tv %.3f), want drift", v.Verdict, v.TVDistance)
	}
	if v.TVDistance < 0.5 {
		t.Errorf("periodic cohort tv = %.3f, want large", v.TVDistance)
	}
	if v.Dispersion != 0 {
		t.Errorf("periodic cohort dispersion = %.3f, want 0", v.Dispersion)
	}
}

func TestDensityCheckWrongDensityDrifts(t *testing.T) {
	// A half-fair cohort: 50% of clients sample at 10x the advertised
	// density. The mixture is overdispersed and far from Poisson(mean).
	rng := rand.New(rand.NewSource(5))
	var d densityCheck
	for run := 0; run < 600; run++ {
		p := 1.0 / 1000
		if run%2 == 0 {
			p = 1.0 / 100
		}
		d.observe(binomial(rng, 20_000, p))
	}
	v := d.verdict(1.0/1000, 0.25, 200)
	if v.Verdict != "drift" {
		t.Errorf("mixed-density cohort verdict %q (tv %.3f, dispersion %.2f), want drift",
			v.Verdict, v.TVDistance, v.Dispersion)
	}
	if v.Dispersion < 2 {
		t.Errorf("mixed-density dispersion = %.2f, want overdispersed", v.Dispersion)
	}
}

func TestDensityCheckInsufficient(t *testing.T) {
	var d densityCheck
	v := d.verdict(0.1, 0.25, 200)
	if v.Verdict != "insufficient" || v.Reports != 0 {
		t.Errorf("empty check: %+v", v)
	}
	for i := 0; i < 100; i++ {
		d.observe(5)
	}
	if v := d.verdict(0.1, 0.25, 200); v.Verdict != "insufficient" {
		t.Errorf("below MinCheckReports: verdict %q, want insufficient", v.Verdict)
	}
}

func TestDensityCheckOverflowBucket(t *testing.T) {
	// Totals beyond the histogram cap land in the overflow bucket and are
	// compared against the Poisson tail, not dropped: a cohort entirely
	// in overflow with a concentrated distribution must still drift.
	var d densityCheck
	for i := 0; i < 300; i++ {
		d.observe(densityHistCap + 100)
	}
	v := d.verdict(0.5, 0.25, 200)
	if v.Reports != 300 {
		t.Fatalf("reports = %d", v.Reports)
	}
	// All mass in overflow; Poisson(mean) tail at 2x the cap is ~0.5 per
	// side... compute: verdict just needs to be well-defined and in [0,1].
	if v.TVDistance < 0 || v.TVDistance > 1 {
		t.Errorf("tv out of range: %v", v.TVDistance)
	}
}
