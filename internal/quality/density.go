package quality

// density.go is the online check that ingested reports are consistent
// with the advertised 1/d geometric sampling density, in the spirit of
// the "Assessing the Quality of Binomial Samplers" statistical-distance
// framework (PAPERS.md): instead of trusting that clients sample fairly,
// measure the distance between what they report and what a fair sampler
// would produce.
//
// Under fair geometric-countdown sampling every dynamic site occurrence
// is an independent Bernoulli(1/d) trial (§2.1), so a completed run's
// total sampled-event count — the sum of its counter vector — is
// Binomial(N, 1/d) for that run's opportunity count N. For the small
// densities deployments use, Binomial(N, p) is within total-variation
// distance p of Poisson(Np), so a healthy cohort of comparable runs
// produces totals indistinguishable from a Poisson law at the empirical
// mean. The check therefore maintains a fixed-size histogram of
// per-report totals plus Welford mean/variance, and on demand computes
// the total-variation distance between the empirical distribution and
// Poisson(mean):
//
//   - a fair geometric sampler scores near 0 (plus O(sqrt(support/n))
//     estimation noise and the run-length-mixture term);
//   - a periodic sampler concentrates all mass on one or two totals and
//     scores near 1 — the §2.1 fairness pathology, caught at the
//     collector without any access to the client;
//   - a cohort sampling at a different density than advertised shifts
//     and reshapes the histogram (a density mixture is overdispersed),
//     inflating both the distance and the dispersion index.
//
// Crashed runs are excluded: a crash truncates the run at an arbitrary
// point, so its opportunity count is not comparable. The check assumes a
// cohort of roughly comparable run lengths (a scripted fleet, a fixed
// test input); strongly heterogeneous workloads inflate the distance
// through the mixture term and need per-cohort checks — see DESIGN §12.

import "math"

// densityHistCap bounds the per-report-total histogram; totals at or
// above it land in an overflow bucket and degrade the check gracefully.
const densityHistCap = 4096

type densityCheck struct {
	hist     [densityHistCap]uint64
	overflow uint64
	n        uint64
	mean     float64
	m2       float64 // Welford sum of squared deviations
}

// observe folds one completed run's total sampled-event count.
func (d *densityCheck) observe(total uint64) {
	if total < densityHistCap {
		d.hist[total]++
	} else {
		d.overflow++
	}
	d.n++
	delta := float64(total) - d.mean
	d.mean += delta / float64(d.n)
	d.m2 += delta * (float64(total) - d.mean)
}

// SamplingVerdict is the /quality sampling-distance report.
type SamplingVerdict struct {
	// Density is the advertised sampling density 1/d (0 when the
	// collector was not told one; the shape check still runs).
	Density float64 `json:"density"`
	// Reports is how many completed (non-crashed) runs were checked.
	Reports uint64  `json:"reports"`
	Mean    float64 `json:"mean_samples"`
	Var     float64 `json:"var_samples"`
	// Dispersion is Var/Mean: ~1 for a fair sampler on comparable runs,
	// ~0 for periodic sampling, inflated by density mixtures.
	Dispersion float64 `json:"dispersion"`
	// ImpliedOpportunities is Mean/Density — the implied per-run dynamic
	// site-occurrence count (0 when Density is unknown).
	ImpliedOpportunities float64 `json:"implied_opportunities"`
	// TVDistance is the total-variation distance between the empirical
	// per-run total distribution and Poisson(Mean), in [0, 1].
	TVDistance float64 `json:"tv_distance"`
	Threshold  float64 `json:"threshold"`
	// Verdict is "insufficient" (fewer than MinCheckReports runs),
	// "consistent", or "drift" (TVDistance above Threshold).
	Verdict string `json:"verdict"`
}

// verdict computes the statistical-distance report. O(densityHistCap).
func (d *densityCheck) verdict(density, threshold float64, minReports uint64) SamplingVerdict {
	v := SamplingVerdict{Density: density, Reports: d.n, Threshold: threshold, Verdict: "insufficient"}
	if d.n == 0 {
		return v
	}
	v.Mean = d.mean
	if d.n > 1 {
		v.Var = d.m2 / float64(d.n-1)
	}
	if d.mean > 0 {
		v.Dispersion = v.Var / v.Mean
	}
	if density > 0 {
		v.ImpliedOpportunities = v.Mean / density
	}
	// TV(empirical, Poisson(mean)) = 1/2 Σ_k |p̂(k) - poi(k)|, with the
	// overflow bucket compared against the Poisson tail mass. Poisson
	// pmf in log space so large means do not underflow.
	n := float64(d.n)
	lam := d.mean
	tv, tail := 0.0, 1.0
	for k := 0; k < densityHistCap; k++ {
		var pk float64
		if lam > 0 {
			lg, _ := math.Lgamma(float64(k + 1))
			pk = math.Exp(-lam + float64(k)*math.Log(lam) - lg)
		} else if k == 0 {
			pk = 1
		}
		tail -= pk
		tv += math.Abs(float64(d.hist[k])/n - pk)
	}
	if tail < 0 {
		tail = 0
	}
	tv += math.Abs(float64(d.overflow)/n - tail)
	v.TVDistance = tv / 2
	if d.n < minReports {
		return v
	}
	if v.TVDistance > threshold {
		v.Verdict = "drift"
	} else {
		v.Verdict = "consistent"
	}
	return v
}
