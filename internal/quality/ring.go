package quality

// ring.go is the forensic ring buffer: a bounded window of recently
// rejected (or quarantined) payloads, each retained as a truncated hex
// dump with its rejection reason and timestamp. In a ~60M-user
// deployment the collector cannot keep every bad payload, but keeping
// the last few dozen turns "rejection counter moved" into "here is what
// the misbehaving client actually sent" — served at /debug/badreports.

import (
	"encoding/hex"
	"sync"
	"time"
)

// BadReport is one retained forensic sample.
type BadReport struct {
	Seq    uint64 `json:"seq"`
	UnixMs int64  `json:"unix_ms"`
	Reason string `json:"reason"`
	// RunID is set when the payload decoded far enough to carry one
	// (quarantined reports); 0 otherwise.
	RunID uint64 `json:"run_id,omitempty"`
	// Size is the original payload length; Hex holds at most SampleBytes
	// of it, Truncated says whether anything was cut.
	Size      int    `json:"size"`
	Truncated bool   `json:"truncated"`
	Hex       string `json:"hex"`
}

type ring struct {
	mu          sync.Mutex
	buf         []BadReport
	next        int
	total       uint64
	sampleBytes int
}

func newRing(size, sampleBytes int) *ring {
	if size < 1 {
		size = 1
	}
	if sampleBytes < 1 {
		sampleBytes = 128
	}
	return &ring{buf: make([]BadReport, 0, size), sampleBytes: sampleBytes}
}

// record retains one bad payload, overwriting the oldest entry when
// full. The hex dump is rendered here, off the reject path's error
// response but before the payload buffer is reused. size is the
// original payload length when the caller no longer holds the bytes
// (quarantined reports are recorded after folding, by wire length).
func (r *ring) record(reason Reason, runID uint64, size int, payload []byte) {
	sample := payload
	truncated := false
	if len(sample) > r.sampleBytes {
		sample = sample[:r.sampleBytes]
		truncated = true
	}
	if size < len(payload) {
		size = len(payload)
	}
	entry := BadReport{
		UnixMs:    time.Now().UnixMilli(),
		Reason:    reason.String(),
		RunID:     runID,
		Size:      size,
		Truncated: truncated || size > len(sample),
		Hex:       hex.EncodeToString(sample),
	}
	r.mu.Lock()
	r.total++
	entry.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, entry)
	} else {
		r.buf[r.next] = entry
		r.next = (r.next + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// snapshot returns the retained samples, newest first, plus the total
// ever recorded.
func (r *ring) snapshot() ([]BadReport, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BadReport, 0, len(r.buf))
	for i := len(r.buf) - 1; i >= 0; i-- {
		out = append(out, r.buf[(r.next+i)%len(r.buf)])
	}
	return out, r.total
}
