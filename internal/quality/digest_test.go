package quality

import (
	"testing"
)

func testDigest(scale uint64) Digest {
	d := Digest{
		ReportPosts:  10 * scale,
		ReportsPosts: 3 * scale,
		Accepted:     9 * scale,
		BytesCount:   9 * scale,
		BytesSum:     4096 * scale,
		NzSum:        77 * scale,
	}
	for i := range d.Rejected {
		d.Rejected[i] = uint64(i) * scale
	}
	return d
}

func TestDigestEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range []Digest{{}, testDigest(1), testDigest(1 << 40)} {
		got, err := DecodeDigest(d.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("round trip mismatch: %+v != %+v", got, d)
		}
	}
}

func TestDigestDecodeRejectsMalformed(t *testing.T) {
	good := testDigest(3).Encode()
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	// A digest from a build with a different reason vocabulary must be
	// refused rather than misattributed.
	wrongReasons := append([]byte{}, good...)
	wrongReasons[0] = byte(NumReasons + 1)
	cases["reason-count mismatch"] = wrongReasons
	for name, data := range cases {
		if _, err := DecodeDigest(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDigestSubAndIsZero(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Error("zero digest not IsZero")
	}
	if d := testDigest(2); d.IsZero() {
		t.Error("populated digest IsZero")
	}
	// Only a rejection reason set: still not zero.
	var rej Digest
	rej.Rejected[NumReasons-1] = 1
	if rej.IsZero() {
		t.Error("rejection-only digest IsZero")
	}

	cur, base := testDigest(5), testDigest(2)
	delta := cur.Sub(base)
	if delta != testDigest(3) {
		t.Fatalf("Sub: %+v", delta)
	}
	if !cur.Sub(cur).IsZero() {
		t.Error("self-difference not zero")
	}
}

// TestEngineAbsorbFeedsTotalsAndWindows pins the two absorption paths:
// Absorb (a live delta from a downstream edge) lands in the cumulative
// totals AND the current tick windows, while AbsorbTotals (restart
// seeding) must leave the windows untouched so replayed history cannot
// masquerade as an instant of live traffic.
func TestEngineAbsorbFeedsTotalsAndWindows(t *testing.T) {
	e := New(Config{Interval: -1})
	d := testDigest(1)

	e.Absorb(d)
	if got := e.TotalsDigest(); got != d {
		t.Fatalf("totals after Absorb: %+v, want %+v", got, d)
	}
	if got := e.windows[trkAccept].Load(); got != d.Accepted {
		t.Fatalf("accept window after Absorb: %d, want %d", got, d.Accepted)
	}

	e.AbsorbTotals(d)
	if got := e.TotalsDigest(); got != testDigest(2) {
		t.Fatalf("totals after AbsorbTotals: %+v", got)
	}
	if got := e.windows[trkAccept].Load(); got != d.Accepted {
		t.Fatalf("AbsorbTotals leaked into the window: %d, want %d", got, d.Accepted)
	}

	// Digest deltas are also monotone snapshots: absorbing then
	// subtracting reproduces the delta.
	if got := e.TotalsDigest().Sub(testDigest(1)); got != testDigest(1) {
		t.Fatalf("totals algebra: %+v", got)
	}

	// Nil engine: all three are safe no-ops.
	var nilEngine *Engine
	nilEngine.Absorb(d)
	nilEngine.AbsorbTotals(d)
	if !nilEngine.TotalsDigest().IsZero() {
		t.Error("nil engine digest not zero")
	}
}
