package quality

// Digest is the mergeable slice of the quality engine's state: the
// exact event totals (endpoint posts, accepts, per-reason rejections,
// quarantines) plus the exact byte/nonzero sums behind the snapshot's
// count/mean columns. A federated edge ships the delta of two digests
// upstream inside each "CBA1" merge envelope, and the root absorbs it,
// so population health at the root covers the whole tree.
//
// Only the exact counters travel. The P² quantile, Space-Saving
// heavy-hitter, and density sketches are approximate stream summaries
// with no exact merge; they stay per-collector, and the root's own
// sketches describe only its local traffic (DESIGN §14).

import (
	"encoding/binary"
	"errors"
)

// NumReasons is the number of rejection reasons a Digest carries.
const NumReasons = int(numReasons)

// ErrBadDigest is returned when an encoded digest is malformed.
var ErrBadDigest = errors.New("quality: malformed digest encoding")

// Digest is a snapshot (or delta) of the engine's exact counters.
type Digest struct {
	ReportPosts  uint64
	ReportsPosts uint64
	Accepted     uint64
	Rejected     [NumReasons]uint64
	BytesCount   uint64
	BytesSum     uint64
	NzSum        uint64
}

// IsZero reports whether the digest carries no events at all.
func (d Digest) IsZero() bool {
	if d.ReportPosts != 0 || d.ReportsPosts != 0 || d.Accepted != 0 ||
		d.BytesCount != 0 || d.BytesSum != 0 || d.NzSum != 0 {
		return false
	}
	for _, v := range d.Rejected {
		if v != 0 {
			return false
		}
	}
	return true
}

// Sub returns the delta from base to d (field-wise subtraction; every
// counter is monotone, so the caller's cumulative snapshots only grow).
func (d Digest) Sub(base Digest) Digest {
	out := Digest{
		ReportPosts:  d.ReportPosts - base.ReportPosts,
		ReportsPosts: d.ReportsPosts - base.ReportsPosts,
		Accepted:     d.Accepted - base.Accepted,
		BytesCount:   d.BytesCount - base.BytesCount,
		BytesSum:     d.BytesSum - base.BytesSum,
		NzSum:        d.NzSum - base.NzSum,
	}
	for i := range d.Rejected {
		out.Rejected[i] = d.Rejected[i] - base.Rejected[i]
	}
	return out
}

// Encode serializes the digest. A reason-count prefix keeps the format
// evolvable: a receiver with fewer known reasons rejects rather than
// misattributing counts.
func (d Digest) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(NumReasons))
	buf = binary.AppendUvarint(buf, d.ReportPosts)
	buf = binary.AppendUvarint(buf, d.ReportsPosts)
	buf = binary.AppendUvarint(buf, d.Accepted)
	for _, v := range d.Rejected {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, d.BytesCount)
	buf = binary.AppendUvarint(buf, d.BytesSum)
	buf = binary.AppendUvarint(buf, d.NzSum)
	return buf
}

// DecodeDigest parses a payload produced by Encode.
func DecodeDigest(data []byte) (Digest, error) {
	var d Digest
	off := 0
	next := func() uint64 {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			off = -1 << 30 // poison: every later read fails too
			return 0
		}
		off += n
		return v
	}
	if nr := next(); off < 0 || nr != uint64(NumReasons) {
		return d, ErrBadDigest
	}
	d.ReportPosts = next()
	d.ReportsPosts = next()
	d.Accepted = next()
	for i := range d.Rejected {
		d.Rejected[i] = next()
	}
	d.BytesCount = next()
	d.BytesSum = next()
	d.NzSum = next()
	if off != len(data) {
		return d, ErrBadDigest
	}
	return d, nil
}

// TotalsDigest captures the engine's exact cumulative counters. Safe on
// a nil engine (zero digest). The result is a consistent-enough
// snapshot for delta computation: each counter is read once and only
// grows, so successive digests are field-wise monotone.
func (e *Engine) TotalsDigest() Digest {
	var d Digest
	if e == nil {
		return d
	}
	d.ReportPosts = e.totals[trkReportPosts].Load()
	d.ReportsPosts = e.totals[trkReportsPosts].Load()
	d.Accepted = e.totals[trkAccept].Load()
	for r := 0; r < NumReasons; r++ {
		d.Rejected[r] = e.totals[trkReject0+r].Load()
	}
	d.BytesCount = e.bytesCount.Load()
	d.BytesSum = e.bytesSum.Load()
	d.NzSum = e.nzSum.Load()
	return d
}

// Absorb folds a delta digest from a downstream collector into this
// engine: totals (what /quality reports) and the current tick windows
// (what the EWMA rate trackers and anomaly rules see), so a rejection
// surge on an edge trips the root's reject-surge rule just as local
// traffic would. Safe on a nil engine.
func (e *Engine) Absorb(d Digest) {
	if e == nil || d.IsZero() {
		return
	}
	add := func(i int, v uint64) {
		if v != 0 {
			e.windows[i].Add(v)
			e.totals[i].Add(v)
		}
	}
	add(trkReportPosts, d.ReportPosts)
	add(trkReportsPosts, d.ReportsPosts)
	add(trkAccept, d.Accepted)
	for r := 0; r < NumReasons; r++ {
		add(trkReject0+r, d.Rejected[r])
	}
	e.bytesCount.Add(d.BytesCount)
	e.bytesSum.Add(d.BytesSum)
	e.nzSum.Add(d.NzSum)
}

// AbsorbTotals restores cumulative counters without touching the tick
// windows — the restart path: an edge replaying its spilled state must
// not present hours of history to the rate trackers as one instant of
// traffic. Safe on a nil engine.
func (e *Engine) AbsorbTotals(d Digest) {
	if e == nil || d.IsZero() {
		return
	}
	add := func(i int, v uint64) {
		if v != 0 {
			e.totals[i].Add(v)
		}
	}
	add(trkReportPosts, d.ReportPosts)
	add(trkReportsPosts, d.ReportsPosts)
	add(trkAccept, d.Accepted)
	for r := 0; r < NumReasons; r++ {
		add(trkReject0+r, d.Rejected[r])
	}
	e.bytesCount.Add(d.BytesCount)
	e.bytesSum.Add(d.BytesSum)
	e.nzSum.Add(d.NzSum)
}
