package quality

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// rankError scores estimate est for target quantile p against the sorted
// data: the distance from p to the empirical CDF interval of est (an
// interval, because the CDF jumps at ties).
func rankError(sorted []float64, est, p float64) float64 {
	n := float64(len(sorted))
	lo := float64(sort.SearchFloat64s(sorted, est)) / n
	hi := float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > est })) / n
	switch {
	case p < lo:
		return lo - p
	case p > hi:
		return p - hi
	}
	return 0
}

// exactQuantile returns the empirical p-quantile of sorted data.
func exactQuantile(sorted []float64, p float64) float64 {
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestP2AccuracyProperty checks every tracked quantile against exact
// order statistics across qualitatively different stream shapes. The
// documented bound (DESIGN §12) is rank error <= 0.05 for large
// streams; n=100 gets slack because five markers can't do better. P²
// interpolates between markers, so on discrete or bimodal data the
// estimate can land a hair off a tie plateau — a large rank error but a
// negligible value error. Either metric within bound passes.
func TestP2AccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	streams := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 1000 },
		"exponential": func() float64 { return rng.ExpFloat64() * 50 },
		"normal":      func() float64 { return 500 + 80*rng.NormFloat64() },
		"heavy-tail":  func() float64 { return 64 * (1 + rng.ExpFloat64()*rng.ExpFloat64()*30) },
		"discrete":    func() float64 { return float64(rng.Intn(12)) },
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return 10 + rng.Float64()
			}
			return 1000 + rng.Float64()*100
		},
	}
	for name, gen := range streams {
		for _, n := range []int{100, 5_000, 50_000} {
			sk := NewQuantileSketch()
			data := make([]float64, n)
			for i := range data {
				data[i] = gen()
				sk.Observe(data[i])
			}
			sort.Float64s(data)
			bound := 0.05
			if n < 1000 {
				bound = 0.10
			}
			for _, p := range SketchQuantiles {
				est := sk.Quantile(p)
				rErr := rankError(data, est, p)
				exact := exactQuantile(data, p)
				// Normalize value error by the data range: bimodal gaps make
				// ratios to the exact quantile meaningless near the low mode.
				vErr := math.Abs(est-exact) / math.Max(data[n-1]-data[0], 1e-9)
				if rErr > bound && vErr > 0.05 {
					t.Errorf("%s n=%d p=%.2f: rank error %.4f > %.2f and value error %.4f > 0.05 (estimate %.2f, exact %.2f)",
						name, n, p, rErr, bound, vErr, est, exact)
				}
			}
		}
	}
}

func TestP2SmallStreams(t *testing.T) {
	// Below five observations the estimate is the exact order statistic.
	sk := NewQuantileSketch()
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch quantile = %v", got)
	}
	for _, x := range []float64{30, 10, 20} {
		sk.Observe(x)
	}
	if got := sk.Quantile(0.5); got != 20 {
		t.Errorf("median of {10,20,30} = %v, want 20", got)
	}
	if got := sk.Quantile(0.99); got != 30 {
		t.Errorf("p99 of {10,20,30} = %v, want 30", got)
	}
}

func TestQuantileSketchSummary(t *testing.T) {
	sk := NewQuantileSketch()
	for i := 1; i <= 100; i++ {
		sk.Observe(float64(i))
	}
	s := sk.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	if s.P25 >= s.P50 || s.P50 >= s.P75 || s.P75 >= s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	if math.Abs(s.P50-50) > 5 {
		t.Errorf("p50 = %v, want ~50", s.P50)
	}
}

func TestQuantilePanicsOnUntracked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("untracked quantile did not panic")
		}
	}()
	NewQuantileSketch().Quantile(0.33)
}
