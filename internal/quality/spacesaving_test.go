package quality

import (
	"math/rand"
	"testing"
)

// TestSpaceSavingGuarantees verifies the two published bounds against
// exact counts on a Zipf-skewed stream much wider than the sketch:
// every tracked key satisfies count-maxError <= true <= count, and every
// key with true count > N/m is tracked.
func TestSpaceSavingGuarantees(t *testing.T) {
	const capacity = 32
	const n = 100_000
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 1, 999)
	sk := NewSpaceSaving(capacity)
	exact := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		k := zipf.Uint64()
		exact[k]++
		sk.Offer(Source{Kind: SourceRun, Value: k})
	}
	if sk.N() != n {
		t.Fatalf("N = %d, want %d", sk.N(), n)
	}
	if sk.Len() > capacity {
		t.Fatalf("tracking %d keys, capacity %d", sk.Len(), capacity)
	}
	tracked := make(map[string]HeavyHitter)
	for _, h := range sk.Top(0) {
		tracked[h.Key] = h
	}
	bound := uint64(n / capacity)
	for k, truth := range exact {
		key := Source{Kind: SourceRun, Value: k}.String()
		h, ok := tracked[key]
		if !ok {
			if truth > bound {
				t.Errorf("key %s: true count %d > N/m %d but not tracked", key, truth, bound)
			}
			continue
		}
		if h.Count < truth {
			t.Errorf("key %s: estimate %d < true %d (must overestimate)", key, h.Count, truth)
		}
		if h.Count-h.MaxError > truth {
			t.Errorf("key %s: estimate %d - maxError %d > true %d", key, h.Count, h.MaxError, truth)
		}
	}
}

func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	// Fewer distinct keys than capacity: counts are exact, errors zero.
	sk := NewSpaceSaving(16)
	for i := 0; i < 300; i++ {
		sk.Offer(Source{Kind: SourceShape, Value: uint64(i % 3)})
	}
	top := sk.Top(10)
	if len(top) != 3 {
		t.Fatalf("tracked %d keys, want 3", len(top))
	}
	for _, h := range top {
		if h.Count != 100 || h.MaxError != 0 {
			t.Errorf("%s: count %d (want 100), maxError %d (want 0)", h.Key, h.Count, h.MaxError)
		}
	}
}

func TestSpaceSavingTopOrderStable(t *testing.T) {
	sk := NewSpaceSaving(8)
	for i := 0; i < 5; i++ {
		sk.Offer(Source{Kind: SourceRun, Value: 1})
	}
	for i := 0; i < 3; i++ {
		sk.Offer(Source{Kind: SourceRun, Value: 2})
	}
	sk.Offer(Source{Kind: SourceReject, Value: uint64(ReasonDecode)})
	top := sk.Top(2)
	if len(top) != 2 || top[0].Key != "run:1" || top[1].Key != "run:2" {
		t.Errorf("top = %+v", top)
	}
}

func TestSourceString(t *testing.T) {
	cases := map[Source]string{
		{SourceRun, 7}:                           "run:7",
		{SourceShape, 1710}:                      "shape:1710",
		{SourceReject, uint64(ReasonDecode)}:     "reject:decode",
		{SourceReject, uint64(ReasonTooLarge)}:   "reject:too-large",
		{SourceReject, uint64(ReasonQuarantine)}: "reject:quarantine",
	}
	for src, want := range cases {
		if got := src.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", src, got, want)
		}
	}
}
