package quality

// p2.go implements the P² streaming quantile estimator (Jain &
// Chlamtac, "The P² algorithm for dynamic calculation of quantiles and
// histograms without storing observations", CACM 1985): five markers per
// target quantile, adjusted by a piecewise-parabolic interpolation as
// observations arrive, so each estimate costs O(1) time and O(1) space
// regardless of stream length. The collector uses it to track report
// body-size and counter-nonzero distributions on the ingest hot path,
// where storing (or sorting) per-report observations is off the table.

import "sort"

// p2 estimates one quantile p of a stream.
type p2 struct {
	p    float64
	q    [5]float64 // marker heights
	n    [5]float64 // actual marker positions (1-based)
	d    [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
	cnt  int
	init [5]float64 // buffer for the first five observations
}

func newP2(p float64) *p2 {
	e := &p2{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

func (e *p2) observe(x float64) {
	if e.cnt < 5 {
		e.init[e.cnt] = x
		e.cnt++
		if e.cnt == 5 {
			vals := e.init
			sort.Float64s(vals[:])
			for i := 0; i < 5; i++ {
				e.q[i] = vals[i]
				e.n[i] = float64(i + 1)
			}
			e.d = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.cnt++
	// Find the cell k with q[k] <= x < q[k+1], widening the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.d[i] += e.inc[i]
	}
	// Nudge interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.d[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			q := e.parabolic(i, s)
			if !(e.q[i-1] < q && q < e.q[i+1]) {
				q = e.linear(i, s)
			}
			e.q[i] = q
			e.n[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height update.
func (e *p2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback when the parabolic update would break marker
// monotonicity.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// quantile returns the current estimate. Before five observations the
// markers are not initialized, so the estimate falls back to the exact
// order statistic of the buffered prefix.
func (e *p2) quantile() float64 {
	if e.cnt == 0 {
		return 0
	}
	if e.cnt < 5 {
		vals := append([]float64(nil), e.init[:e.cnt]...)
		sort.Float64s(vals)
		i := int(e.p * float64(e.cnt))
		if i >= len(vals) {
			i = len(vals) - 1
		}
		return vals[i]
	}
	return e.q[2]
}

// SketchQuantiles are the target quantiles every QuantileSketch tracks.
var SketchQuantiles = []float64{0.25, 0.5, 0.75, 0.9, 0.99}

// QuantileSketch tracks a fixed set of quantiles of a stream in O(1)
// space, plus exact count/sum/min/max. Not safe for concurrent use; the
// Engine serializes access.
type QuantileSketch struct {
	count uint64
	sum   float64
	min   float64
	max   float64
	est   []*p2
}

// NewQuantileSketch creates a sketch tracking SketchQuantiles.
func NewQuantileSketch() *QuantileSketch {
	s := &QuantileSketch{}
	for _, p := range SketchQuantiles {
		s.est = append(s.est, newP2(p))
	}
	return s
}

// Observe folds one value.
func (s *QuantileSketch) Observe(x float64) {
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.sum += x
	for _, e := range s.est {
		e.observe(x)
	}
}

// QuantileSummary is the JSON snapshot of a QuantileSketch.
type QuantileSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the sketch.
func (s *QuantileSketch) Summary() QuantileSummary {
	out := QuantileSummary{Count: s.count, Min: s.min, Max: s.max}
	if s.count > 0 {
		out.Mean = s.sum / float64(s.count)
	}
	qs := make([]float64, len(s.est))
	for i, e := range s.est {
		qs[i] = e.quantile()
	}
	out.P25, out.P50, out.P75, out.P90, out.P99 = qs[0], qs[1], qs[2], qs[3], qs[4]
	return out
}

// Quantile returns the estimate for one of the tracked quantiles
// (exactly the values in SketchQuantiles); it panics on any other p —
// targets are fixed at construction, that is what makes the sketch O(1).
func (s *QuantileSketch) Quantile(p float64) float64 {
	for i, q := range SketchQuantiles {
		if q == p {
			return s.est[i].quantile()
		}
	}
	panic("quality: untracked quantile")
}
