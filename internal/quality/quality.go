// Package quality is the collector's streaming ingest-quality engine:
// eyes on the population of reporting clients, at O(1) amortized cost
// per report.
//
// The paper's setting is a ~60M-user deployment (§2.5) where reports
// arrive from an untrusted, churning population: malformed payloads,
// skewed run rates, and misbehaving clients are the norm. The engine
// folds every ingest event into fixed-size streaming state:
//
//   - EWMA rate trackers per endpoint and per rejection reason, with
//     windowed anomaly rules (rate spikes, rejection-ratio surges,
//     ingest stalls) evaluated on a tick cadence;
//   - P² quantile sketches over report body bytes and counter nonzeros
//     (p2.go) — the body-size and sparsity distribution of the
//     population without storing observations;
//   - a Space-Saving heavy-hitters sketch over run-ID / shape /
//     rejection fingerprints (spacesaving.go) — duplicate-spamming or
//     dominating sources surface in the top-K;
//   - an online statistical-distance check of per-run sampled-event
//     totals against the advertised 1/d geometric-sampling profile
//     (density.go), flagging density drift per the binomial-samplers
//     framework;
//   - a bounded forensic ring buffer of truncated hex-dumped rejected
//     payloads (ring.go).
//
// The surface: GET /quality (JSON snapshot), GET /debug/badreports
// (forensics), `anomaly` / `recovered` events on the collector's /watch
// SSE stream, and a "Population health" panel on /dashboard. DESIGN §12
// states the sketch error bounds and the drift argument.
package quality

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/telemetry"
)

// Reason enumerates why ingest refused (or quarantined) a payload. It
// mirrors the collect_reports_rejected_total reason labels.
type Reason uint8

const (
	ReasonMethod Reason = iota
	ReasonRead
	ReasonTooLarge
	ReasonDecode
	ReasonFold
	// ReasonShed marks a report refused by ingest back-pressure: the
	// collector's staging rings stayed full past the enqueue deadline
	// and the request was answered 503 + Retry-After. Shed reports were
	// never folded, so they count as real rejections — a shed storm
	// trips the reject-surge rule like any other rejection wave.
	ReasonShed
	// ReasonQuarantine marks a payload the decoder accepted leniently
	// (duplicate counter indices or explicit zero pairs — encodings no
	// real client produces). The report is still folded, but counted and
	// retained for forensics instead of passing silently.
	ReasonQuarantine
	numReasons
)

var reasonNames = [numReasons]string{"method", "read", "too-large", "decode", "fold", "shed", "quarantine"}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "unknown"
}

// EventSink receives anomaly lifecycle events; monitor.Monitor
// implements it, putting `anomaly`/`recovered` on the /watch SSE stream.
type EventSink interface {
	Publish(event string, v any)
}

// Config parameterizes an Engine. The zero value gets sane defaults.
type Config struct {
	// Interval is the anomaly-evaluation tick cadence once Start is
	// called (default 1s; <= 0 disables the ticker — tests and scripted
	// drivers call Tick directly).
	Interval time.Duration
	// HalfLife is the EWMA half-life of the rate baselines (default 30s):
	// how much history a spike is judged against.
	HalfLife time.Duration
	// SpikeFactor: a window rate above SpikeFactor x the EWMA baseline
	// (floored at MinRate) flags a rate-spike anomaly (default 8).
	SpikeFactor float64
	// MinEvents is the minimum events in a window before spike/surge
	// rules fire — tiny absolute counts are never anomalies (default 20).
	MinEvents uint64
	// RejectRatio: rejected/(accepted+rejected) in one window above this
	// flags a reject-surge anomaly (default 0.5).
	RejectRatio float64
	// MinRate (events/sec) floors spike baselines and arms the stall
	// detector (default 0.5).
	MinRate float64
	// StallTicks consecutive empty accept windows after traffic was
	// flowing flag an ingest-stall anomaly (default 3).
	StallTicks int
	// RecoverTicks consecutive clear ticks retire an active anomaly with
	// a `recovered` event (default 2).
	RecoverTicks int
	// SketchCap is the Space-Saving capacity m: error bound N/m, and any
	// source above N/m occurrences is guaranteed tracked (default 64).
	SketchCap int
	// TopK bounds the top-sources list in the /quality snapshot
	// (default 10).
	TopK int
	// RingSize / SampleBytes size the forensic ring buffer (default 64
	// entries, 128 retained bytes each).
	RingSize    int
	SampleBytes int
	// Density is the advertised sampling density 1/d for the
	// statistical-distance check (0 = unknown; the shape check still
	// runs).
	Density float64
	// TVThreshold is the total-variation distance above which the
	// sampling verdict is "drift" (default 0.25).
	TVThreshold float64
	// MinCheckReports is how many completed runs the density check needs
	// before it renders a verdict (default 200).
	MinCheckReports uint64
	// SketchBudget bounds sketch updates per tick: when more accepted
	// reports than this arrive in one tick interval, the engine doubles
	// its sketch stride (up to 256) and feeds the quantile/heavy-hitter/
	// density sketches a uniform 1-in-stride subsample, keeping ingest
	// overhead flat under load. Totals and rate trackers stay exact.
	// The stride halves again on quiet ticks. Default 8192; negative
	// disables adaptation (stride pinned at 1).
	SketchBudget int
}

func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = 30 * time.Second
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 8
	}
	if c.MinEvents == 0 {
		c.MinEvents = 20
	}
	if c.RejectRatio <= 0 {
		c.RejectRatio = 0.5
	}
	if c.MinRate <= 0 {
		c.MinRate = 0.5
	}
	if c.StallTicks <= 0 {
		c.StallTicks = 3
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 2
	}
	if c.SketchCap <= 0 {
		c.SketchCap = 64
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.SampleBytes <= 0 {
		c.SampleBytes = 128
	}
	if c.TVThreshold <= 0 {
		c.TVThreshold = 0.25
	}
	if c.MinCheckReports == 0 {
		c.MinCheckReports = 200
	}
	if c.SketchBudget == 0 {
		c.SketchBudget = 8192
	}
	return c
}

// maxSketchStride caps adaptive sketch degradation: even a flooded
// collector still sketches at least 1 in 256 accepted reports.
const maxSketchStride = 256

// trackerNames indexes the window counters: the two ingest endpoints,
// accepted reports, then one tracker per rejection reason.
const (
	trkReportPosts = iota
	trkReportsPosts
	trkAccept
	trkReject0  // + Reason
	numTrackers = trkReject0 + int(numReasons)
)

func trackerName(i int) string {
	switch i {
	case trkReportPosts:
		return "endpoint:/report"
	case trkReportsPosts:
		return "endpoint:/reports"
	case trkAccept:
		return "accept"
	}
	return "reject:" + Reason(i-trkReject0).String()
}

// RateStat is one tracker's view in the /quality snapshot.
type RateStat struct {
	// EWMA is the smoothed events/sec baseline; Last the most recent
	// window's rate; Window that window's raw count.
	EWMA   float64 `json:"ewma_per_sec"`
	Last   float64 `json:"last_per_sec"`
	Window uint64  `json:"window_events"`
}

// Anomaly is one active (or just-retired) anomaly, as published on the
// SSE stream and listed in the /quality snapshot.
type Anomaly struct {
	// Kind is "rate-spike", "reject-surge", "ingest-stall", or
	// "density-drift".
	Kind string `json:"kind"`
	// Target names what misbehaves: a tracker ("reject:decode",
	// "accept"), "ingest" for the surge ratio, "sampling" for drift.
	Target      string  `json:"target"`
	SinceUnixMs int64   `json:"since_unix_ms"`
	LastUnixMs  int64   `json:"last_unix_ms"`
	Value       float64 `json:"value"`
	Baseline    float64 `json:"baseline"`
}

type anomalyKey struct{ kind, target string }

type activeAnomaly struct {
	Anomaly
	clearStreak int
}

type engineMetrics struct {
	ticks        *telemetry.Counter
	active       *telemetry.Gauge
	recovered    *telemetry.Counter
	badRecorded  *telemetry.Counter
	samplingTV   *telemetry.Gauge
	samplingDisp *telemetry.Gauge
	anomalies    map[string]*telemetry.Counter
}

// Engine is the streaming ingest-quality state. Create with New, attach
// with Bind (collect.Server does both wiring steps for you), feed it
// Observe* calls from the ingest path, and either Start its ticker or
// drive Tick directly.
type Engine struct {
	cfg   Config
	start time.Time

	// Events, when set before traffic arrives, receives `anomaly` and
	// `recovered` events (the collector wires its Monitor here so they
	// ride the /watch SSE stream).
	Events EventSink

	// Hot-path state: window counters are plain atomics — one Add per
	// event — drained by the tick; totals mirror them for snapshots.
	windows [numTrackers]atomic.Uint64
	totals  [numTrackers]atomic.Uint64

	// Exact aggregates for the snapshot's count/mean columns: these stay
	// precise even when the sketches below fall back to stride sampling.
	bytesCount atomic.Uint64
	bytesSum   atomic.Uint64
	nzSum      atomic.Uint64

	// Adaptive sketch stride: accepted reports enter the mutex-guarded
	// sketch block only every stride-th time. sketchUpdates counts block
	// entries since the last tick; crossing SketchBudget doubles the
	// stride (AIMD up), quiet ticks halve it (AIMD down).
	stride        atomic.Uint64
	seq           atomic.Uint64
	sketchUpdates atomic.Uint64

	// Sketches share one mutex with a critical section of a few hundred
	// nanoseconds; everything inside is O(1) per report.
	mu       sync.Mutex
	bytes    *QuantileSketch
	nonzeros *QuantileSketch
	sources  *SpaceSaving
	dens     densityCheck

	ring *ring

	// Tick state: owned by the ticker goroutine (or explicit Tick
	// callers); tickMu serializes them, stateMu guards what snapshots
	// read.
	tickMu   sync.Mutex
	lastTick time.Time
	ewma     [numTrackers]float64
	lastRate [numTrackers]float64
	lastWin  [numTrackers]uint64
	ticked   [numTrackers]int
	zeroRun  int
	frozen   float64 // accept EWMA frozen at stall onset

	stateMu        sync.Mutex
	active         map[anomalyKey]*activeAnomaly
	anomaliesTotal uint64

	reg *telemetry.Registry
	m   engineMetrics

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
}

// New creates an engine. Bind it (or let collect.Server do it) before
// traffic arrives.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		start:    time.Now(),
		bytes:    NewQuantileSketch(),
		nonzeros: NewQuantileSketch(),
		sources:  NewSpaceSaving(cfg.SketchCap),
		ring:     newRing(cfg.RingSize, cfg.SampleBytes),
		active:   make(map[anomalyKey]*activeAnomaly),
		stopCh:   make(chan struct{}),
	}
	e.stride.Store(1)
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Bind attaches the telemetry registry (nil = telemetry.Default). Later
// calls are ignored. Safe on a nil engine.
func (e *Engine) Bind(reg *telemetry.Registry) {
	if e == nil || e.reg != nil {
		return
	}
	if reg == nil {
		reg = telemetry.Default
	}
	e.reg = reg
	e.m = engineMetrics{
		ticks:        reg.Counter("quality_ticks_total"),
		active:       reg.Gauge("quality_active_anomalies"),
		recovered:    reg.Counter("quality_anomalies_recovered_total"),
		badRecorded:  reg.Counter("quality_bad_reports_recorded_total"),
		samplingTV:   reg.Gauge("quality_sampling_tv_distance"),
		samplingDisp: reg.Gauge("quality_sampling_dispersion"),
		anomalies:    make(map[string]*telemetry.Counter),
	}
	for _, kind := range []string{"rate-spike", "reject-surge", "ingest-stall", "density-drift"} {
		e.m.anomalies[kind] = reg.Counter("quality_anomalies_total" + telemetry.Labels("kind", kind))
	}
}

// Start launches the tick goroutine, if an Interval is configured.
// Safe on a nil engine; later calls are ignored.
func (e *Engine) Start() {
	if e == nil || e.cfg.Interval <= 0 {
		return
	}
	e.startOnce.Do(func() {
		go func() {
			t := time.NewTicker(e.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					e.Tick()
				case <-e.stopCh:
					return
				}
			}
		}()
	})
}

// Stop halts the ticker. Safe on a nil or never-started engine.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.startOnce.Do(func() {}) // a stopped engine must not start its ticker
	e.stopOnce.Do(func() { close(e.stopCh) })
}

// ----------------------------------------------------------------------------
// Hot path

// ObserveEndpoint counts one POST hitting an ingest endpoint (batch is
// true for /reports). One atomic add.
func (e *Engine) ObserveEndpoint(batch bool) {
	if e == nil {
		return
	}
	i := trkReportPosts
	if batch {
		i = trkReportsPosts
	}
	e.windows[i].Add(1)
	e.totals[i].Add(1)
}

// ObserveAccepted folds one accepted report: wireBytes is the report's
// encoded size (0 for in-process submissions with no wire form),
// nonzeros its nonzero-counter count, sampleTotal the sum of its
// counters, crashed whether the run crashed. Everything inside is O(1),
// and under load the sketch block amortizes to O(1/stride): counters and
// exact sums are always a handful of atomic adds, while the mutex-guarded
// sketches see a uniform 1-in-stride subsample once SketchBudget is
// exceeded within a tick. Heavy-hitter offers carry the stride as a
// weight so their counts stay calibrated to the full stream.
func (e *Engine) ObserveAccepted(runID uint64, shape, wireBytes, nonzeros int, sampleTotal uint64, crashed bool) {
	if e == nil {
		return
	}
	e.windows[trkAccept].Add(1)
	e.totals[trkAccept].Add(1)
	if wireBytes > 0 {
		e.bytesCount.Add(1)
		e.bytesSum.Add(uint64(wireBytes))
	}
	e.nzSum.Add(uint64(nonzeros))

	k := e.stride.Load()
	if k > 1 && e.seq.Add(1)%k != 0 {
		return
	}
	if n := e.sketchUpdates.Add(1); e.cfg.SketchBudget > 0 &&
		n > uint64(e.cfg.SketchBudget) && k < maxSketchStride {
		if e.stride.CompareAndSwap(k, k*2) {
			e.sketchUpdates.Store(0)
		}
	}
	e.mu.Lock()
	if wireBytes > 0 {
		e.bytes.Observe(float64(wireBytes))
	}
	e.nonzeros.Observe(float64(nonzeros))
	e.sources.OfferN(Source{Kind: SourceRun, Value: runID}, k)
	e.sources.OfferN(Source{Kind: SourceShape, Value: uint64(shape)}, k)
	if !crashed {
		e.dens.observe(sampleTotal)
	}
	e.mu.Unlock()
}

// ObserveRejected counts one rejected payload and retains a forensic
// sample of it (payload may be nil when nothing was read, e.g. a method
// rejection).
func (e *Engine) ObserveRejected(reason Reason, payload []byte) {
	if e == nil {
		return
	}
	i := trkReject0 + int(reason)
	e.windows[i].Add(1)
	e.totals[i].Add(1)
	e.mu.Lock()
	e.sources.Offer(Source{Kind: SourceReject, Value: uint64(reason)})
	e.mu.Unlock()
	if len(payload) > 0 {
		e.ring.record(reason, 0, len(payload), payload)
		e.m.recordBad()
	}
}

// ObserveQuarantined counts one leniently decoded report — folded, but
// no longer silently: it lands in the quarantine tracker and the
// forensic ring. The wire bytes are gone by fold time, so the ring
// entry carries the run ID and encoded size instead of a hex dump.
func (e *Engine) ObserveQuarantined(runID uint64, wireLen int) {
	if e == nil {
		return
	}
	i := trkReject0 + int(ReasonQuarantine)
	e.windows[i].Add(1)
	e.totals[i].Add(1)
	e.mu.Lock()
	e.sources.Offer(Source{Kind: SourceReject, Value: uint64(ReasonQuarantine)})
	e.mu.Unlock()
	e.ring.record(ReasonQuarantine, runID, wireLen, nil)
	e.m.recordBad()
}

func (m *engineMetrics) recordBad() {
	if m.badRecorded != nil {
		m.badRecorded.Inc()
	}
}

// ----------------------------------------------------------------------------
// Tick: EWMA update + anomaly rules

// Tick drains the window counters, updates the EWMA baselines, and
// evaluates the anomaly rules once. The collector's ticker calls it
// every Interval; tests and scripted drivers call it directly. Safe on
// a nil engine.
func (e *Engine) Tick() {
	if e == nil {
		return
	}
	e.tickMu.Lock()
	defer e.tickMu.Unlock()

	now := time.Now()
	dt := e.cfg.Interval.Seconds()
	if !e.lastTick.IsZero() {
		dt = now.Sub(e.lastTick).Seconds()
	}
	if dt <= 0 {
		dt = 1
	}
	e.lastTick = now

	// EWMA weight for this window from the half-life: after HalfLife of
	// quiet the baseline has decayed by half, regardless of tick cadence.
	decay := math.Exp2(-dt / e.cfg.HalfLife.Seconds())

	// Sketch-stride AIMD down: a tick that used well under its sketch
	// budget halves the stride. Zero updates means no traffic at all —
	// no evidence about rate, so the stride holds until traffic resumes.
	if upd := e.sketchUpdates.Swap(0); e.cfg.SketchBudget > 0 && upd > 0 {
		if k := e.stride.Load(); k > 1 && upd*4 < uint64(e.cfg.SketchBudget) {
			e.stride.CompareAndSwap(k, k/2)
		}
	}

	type finding struct {
		kind, target    string
		value, baseline float64
	}
	var found []finding

	var rejWin uint64
	var acceptBaseline float64
	for i := 0; i < numTrackers; i++ {
		w := e.windows[i].Swap(0)
		rate := float64(w) / dt
		baseline := e.ewma[i]
		if i == trkAccept {
			acceptBaseline = baseline
		}
		// Spike rule: judged against the pre-update baseline, floored at
		// MinRate so a first burst after silence still registers, and
		// only with a meaningful absolute count. The accept tracker is
		// exempt — more traffic than usual is load, not an anomaly.
		if i != trkAccept && e.ticked[i] > 0 && w >= e.cfg.MinEvents &&
			rate > e.cfg.SpikeFactor*math.Max(baseline, e.cfg.MinRate) {
			found = append(found, finding{"rate-spike", trackerName(i), rate, baseline})
		}
		e.ewma[i] = decay*baseline + (1-decay)*rate
		e.lastRate[i] = rate
		e.lastWin[i] = w
		e.ticked[i]++
		if i >= trkReject0 && Reason(i-trkReject0) != ReasonQuarantine {
			rejWin += w
		}
	}

	// Reject-surge rule: the window's rejection ratio across all real
	// rejections (quarantined reports were folded, so they don't count).
	accWin := e.lastWin[trkAccept]
	if total := accWin + rejWin; total >= e.cfg.MinEvents {
		if ratio := float64(rejWin) / float64(total); ratio > e.cfg.RejectRatio {
			found = append(found, finding{"reject-surge", "ingest", ratio, e.cfg.RejectRatio})
		}
	}

	// Ingest-stall rule: traffic was flowing (EWMA above MinRate), then
	// StallTicks consecutive empty windows. The baseline freezes at
	// onset so the stall keeps re-asserting until traffic resumes,
	// rather than "recovering" because the EWMA decayed to nothing.
	if accWin == 0 {
		if e.zeroRun == 0 {
			// Freeze the pre-update baseline: this tick's EWMA update has
			// already decayed toward zero on the empty window.
			e.frozen = acceptBaseline
		}
		e.zeroRun++
	} else {
		e.zeroRun = 0
	}
	if e.zeroRun >= e.cfg.StallTicks && math.Max(e.frozen, e.ewma[trkAccept]) > e.cfg.MinRate {
		found = append(found, finding{"ingest-stall", "accept", 0, e.frozen})
	}

	// Density-drift rule: the statistical-distance verdict (density.go).
	e.mu.Lock()
	sv := e.dens.verdict(e.cfg.Density, e.cfg.TVThreshold, e.cfg.MinCheckReports)
	e.mu.Unlock()
	if sv.Verdict == "drift" {
		found = append(found, finding{"density-drift", "sampling", sv.TVDistance, sv.Threshold})
	}
	if e.m.samplingTV != nil {
		e.m.samplingTV.Set(sv.TVDistance)
		e.m.samplingDisp.Set(sv.Dispersion)
	}

	// Reconcile against the active set: new findings open anomalies (and
	// publish), persisting ones refresh, absent ones age out after
	// RecoverTicks clear ticks (and publish recovery).
	nowMs := now.UnixMilli()
	e.stateMu.Lock()
	seen := make(map[anomalyKey]bool, len(found))
	var opened, recovered []Anomaly
	for _, f := range found {
		k := anomalyKey{f.kind, f.target}
		seen[k] = true
		if a, ok := e.active[k]; ok {
			a.LastUnixMs = nowMs
			a.Value = f.value
			a.Baseline = f.baseline
			a.clearStreak = 0
			continue
		}
		a := &activeAnomaly{Anomaly: Anomaly{
			Kind: f.kind, Target: f.target,
			SinceUnixMs: nowMs, LastUnixMs: nowMs,
			Value: f.value, Baseline: f.baseline,
		}}
		e.active[k] = a
		e.anomaliesTotal++
		opened = append(opened, a.Anomaly)
	}
	for k, a := range e.active {
		if seen[k] {
			continue
		}
		a.clearStreak++
		if a.clearStreak >= e.cfg.RecoverTicks {
			delete(e.active, k)
			recovered = append(recovered, a.Anomaly)
		}
	}
	nActive := len(e.active)
	e.stateMu.Unlock()

	if e.m.ticks != nil {
		e.m.ticks.Inc()
		e.m.active.Set(float64(nActive))
		for _, a := range opened {
			if c, ok := e.m.anomalies[a.Kind]; ok {
				c.Inc()
			}
		}
		e.m.recovered.Add(uint64(len(recovered)))
	}
	if e.Events != nil {
		for _, a := range opened {
			e.Events.Publish("anomaly", a)
		}
		for _, a := range recovered {
			e.Events.Publish("recovered", a)
		}
	}
}

// ----------------------------------------------------------------------------
// Snapshot + HTTP surface

// Snapshot is the GET /quality JSON document.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Accepted      uint64  `json:"accepted_total"`
	RejectedTotal uint64  `json:"rejected_total"`
	Quarantined   uint64  `json:"quarantined_total"`
	// Rejected maps reason -> total (quarantine excluded: those reports
	// were folded).
	Rejected map[string]uint64 `json:"rejected"`
	// Rates holds the EWMA trackers, keyed by tracker name
	// ("endpoint:/report", "accept", "reject:decode", ...).
	Rates          map[string]RateStat `json:"rates"`
	ReportBytes    QuantileSummary     `json:"report_bytes"`
	ReportNonzeros QuantileSummary     `json:"report_nonzeros"`
	TopSources     []HeavyHitter       `json:"top_sources"`
	// SourcesTracked / SourceEvents state the Space-Saving bound: any
	// source with more than SourceEvents/SketchCap occurrences is listed.
	SourcesTracked int    `json:"sources_tracked"`
	SourceEvents   uint64 `json:"source_events"`
	SketchCap      int    `json:"sketch_cap"`
	// SketchStride is the current adaptive subsampling stride: 1 means
	// every accepted report reaches the sketches; higher values mean the
	// engine is shedding sketch work under load (counts stay exact).
	SketchStride   uint64          `json:"sketch_stride"`
	Sampling       SamplingVerdict `json:"sampling"`
	Anomalies      []Anomaly       `json:"anomalies"`
	AnomaliesTotal uint64          `json:"anomalies_total"`
	BadReports     uint64          `json:"bad_reports_recorded"`
	Ticks          uint64          `json:"ticks"`
}

// TakeSnapshot assembles the current quality view. The sketch mutex is
// held once for all sketch reads, so the bytes/nonzeros/top-K/sampling
// sections describe one instant — snapshots cannot tear against
// concurrent folds.
func (e *Engine) TakeSnapshot() Snapshot {
	snap := Snapshot{
		UptimeSeconds: time.Since(e.start).Seconds(),
		Rejected:      make(map[string]uint64, numReasons),
		Rates:         make(map[string]RateStat, numTrackers),
	}
	snap.Accepted = e.totals[trkAccept].Load()
	for r := Reason(0); r < numReasons; r++ {
		v := e.totals[trkReject0+int(r)].Load()
		if r == ReasonQuarantine {
			snap.Quarantined = v
			continue
		}
		snap.Rejected[r.String()] = v
		snap.RejectedTotal += v
	}

	e.tickMu.Lock()
	for i := 0; i < numTrackers; i++ {
		snap.Rates[trackerName(i)] = RateStat{
			EWMA: e.ewma[i], Last: e.lastRate[i], Window: e.lastWin[i],
		}
	}
	e.tickMu.Unlock()

	e.mu.Lock()
	snap.ReportBytes = e.bytes.Summary()
	snap.ReportNonzeros = e.nonzeros.Summary()
	// Count and mean come from the exact atomic aggregates: the sketches
	// may be stride-sampling under load, but these columns never drift.
	snap.ReportBytes.Count = e.bytesCount.Load()
	if c := snap.ReportBytes.Count; c > 0 {
		snap.ReportBytes.Mean = float64(e.bytesSum.Load()) / float64(c)
	}
	snap.ReportNonzeros.Count = snap.Accepted
	if snap.Accepted > 0 {
		snap.ReportNonzeros.Mean = float64(e.nzSum.Load()) / float64(snap.Accepted)
	}
	snap.SketchStride = e.stride.Load()
	snap.TopSources = e.sources.Top(e.cfg.TopK)
	snap.SourcesTracked = e.sources.Len()
	snap.SourceEvents = e.sources.N()
	snap.SketchCap = e.cfg.SketchCap
	snap.Sampling = e.dens.verdict(e.cfg.Density, e.cfg.TVThreshold, e.cfg.MinCheckReports)
	e.mu.Unlock()

	e.stateMu.Lock()
	for _, a := range e.active {
		snap.Anomalies = append(snap.Anomalies, a.Anomaly)
	}
	snap.AnomaliesTotal = e.anomaliesTotal
	e.stateMu.Unlock()
	sort.Slice(snap.Anomalies, func(i, j int) bool {
		if snap.Anomalies[i].SinceUnixMs != snap.Anomalies[j].SinceUnixMs {
			return snap.Anomalies[i].SinceUnixMs < snap.Anomalies[j].SinceUnixMs
		}
		if snap.Anomalies[i].Kind != snap.Anomalies[j].Kind {
			return snap.Anomalies[i].Kind < snap.Anomalies[j].Kind
		}
		return snap.Anomalies[i].Target < snap.Anomalies[j].Target
	})

	_, snap.BadReports = e.ring.snapshot()
	if e.m.ticks != nil {
		snap.Ticks = e.m.ticks.Value()
	}
	return snap
}

// ActiveAnomalies returns the current active set (sorted like the
// snapshot's). Safe on a nil engine.
func (e *Engine) ActiveAnomalies() []Anomaly {
	if e == nil {
		return nil
	}
	return e.TakeSnapshot().Anomalies
}

// BadReports returns the forensic ring contents, newest first, and the
// total ever recorded.
func (e *Engine) BadReports() ([]BadReport, uint64) {
	return e.ring.snapshot()
}

// ServeQuality handles GET /quality.
func (e *Engine) ServeQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(e.TakeSnapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// badReportsResponse is the GET /debug/badreports JSON document.
type badReportsResponse struct {
	Size     int         `json:"size"`
	Recorded uint64      `json:"recorded_total"`
	Reports  []BadReport `json:"reports"`
}

// ServeBadReports handles GET /debug/badreports.
func (e *Engine) ServeBadReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reports, total := e.ring.snapshot()
	if reports == nil {
		reports = []BadReport{}
	}
	w.Header().Set("Content-Type", "application/json")
	resp := badReportsResponse{Size: cap(e.ring.buf), Recorded: total, Reports: reports}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
