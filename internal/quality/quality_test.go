package quality

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"cbi/internal/telemetry"
)

// sinkEvent records one Publish call.
type sinkEvent struct {
	Event string
	Kind  string
}

type testSink struct{ events []sinkEvent }

func (s *testSink) Publish(event string, v any) {
	kind := ""
	if a, ok := v.(Anomaly); ok {
		kind = a.Kind
	}
	s.events = append(s.events, sinkEvent{event, kind})
}

func newTestEngine(sink *testSink) *Engine {
	e := New(Config{
		HalfLife:  100, // ~instant decay is fine; rules are ratio-based
		MinEvents: 10,
		// Rate/stall tests feed synthetic constant-total reports that a
		// real density check would rightly flag; push it out of reach.
		MinCheckReports: 1 << 30,
	})
	e.Bind(telemetry.NewRegistry())
	if sink != nil {
		e.Events = sink
	}
	return e
}

func hasAnomaly(e *Engine, kind string) bool {
	for _, a := range e.ActiveAnomalies() {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

func acceptN(e *Engine, n int) {
	for i := 0; i < n; i++ {
		e.ObserveAccepted(uint64(i), 12, 100, 3, 3, false)
	}
}

func TestRejectSurgeAndRecovery(t *testing.T) {
	sink := &testSink{}
	e := newTestEngine(sink)
	acceptN(e, 100)
	e.Tick() // healthy baseline
	if n := len(e.ActiveAnomalies()); n != 0 {
		t.Fatalf("%d anomalies on a healthy window", n)
	}
	for i := 0; i < 80; i++ {
		e.ObserveRejected(ReasonDecode, []byte("junk"))
	}
	acceptN(e, 20)
	e.Tick() // 80/(80+20) = 0.8 > 0.5
	if !hasAnomaly(e, "reject-surge") {
		t.Fatalf("no reject-surge; active: %+v", e.ActiveAnomalies())
	}
	// RecoverTicks (default 2) clean windows retire it with an event.
	acceptN(e, 100)
	e.Tick()
	if !hasAnomaly(e, "reject-surge") {
		t.Fatal("surge retired after one clean tick, want two")
	}
	acceptN(e, 100)
	e.Tick()
	if hasAnomaly(e, "reject-surge") {
		t.Fatal("surge still active after two clean ticks")
	}
	var kinds []string
	for _, ev := range sink.events {
		if ev.Kind == "reject-surge" {
			kinds = append(kinds, ev.Event)
		}
	}
	if want := []string{"anomaly", "recovered"}; !reflect.DeepEqual(kinds, want) {
		t.Errorf("surge event sequence %v, want %v", kinds, want)
	}
}

func TestRateSpike(t *testing.T) {
	e := newTestEngine(nil)
	// A small steady rejection trickle sets the baseline...
	for tick := 0; tick < 3; tick++ {
		acceptN(e, 100)
		e.ObserveRejected(ReasonDecode, nil)
		e.Tick()
	}
	if len(e.ActiveAnomalies()) != 0 {
		t.Fatalf("anomalies on trickle: %+v", e.ActiveAnomalies())
	}
	// ...and a 500-event burst outruns it by far more than SpikeFactor.
	acceptN(e, 100)
	for i := 0; i < 500; i++ {
		e.ObserveRejected(ReasonDecode, nil)
	}
	e.Tick()
	if !hasAnomaly(e, "rate-spike") {
		t.Fatalf("no rate-spike; active: %+v", e.ActiveAnomalies())
	}
	found := false
	for _, a := range e.ActiveAnomalies() {
		if a.Kind == "rate-spike" && a.Target == "reject:decode" {
			found = true
		}
	}
	if !found {
		t.Errorf("spike target wrong: %+v", e.ActiveAnomalies())
	}
}

func TestAcceptTrafficIsNeverASpike(t *testing.T) {
	e := newTestEngine(nil)
	acceptN(e, 10)
	e.Tick()
	acceptN(e, 10_000) // load, not an anomaly
	e.Tick()
	if len(e.ActiveAnomalies()) != 0 {
		t.Errorf("accept burst flagged: %+v", e.ActiveAnomalies())
	}
}

func TestIngestStallAndRecovery(t *testing.T) {
	e := newTestEngine(nil)
	for tick := 0; tick < 3; tick++ {
		acceptN(e, 100)
		e.Tick()
	}
	// StallTicks (default 3) empty windows: no stall before, stall after.
	e.Tick()
	e.Tick()
	if hasAnomaly(e, "ingest-stall") {
		t.Fatal("stall flagged too early")
	}
	e.Tick()
	if !hasAnomaly(e, "ingest-stall") {
		t.Fatalf("no stall after 3 empty windows: %+v", e.ActiveAnomalies())
	}
	// The stall must persist while silence continues, even though the
	// EWMA baseline has long since decayed (the frozen-baseline rule).
	for i := 0; i < 10; i++ {
		e.Tick()
	}
	if !hasAnomaly(e, "ingest-stall") {
		t.Fatal("stall self-recovered during continuing silence")
	}
	// Traffic resumes: recovered after RecoverTicks clean windows.
	acceptN(e, 100)
	e.Tick()
	acceptN(e, 100)
	e.Tick()
	if hasAnomaly(e, "ingest-stall") {
		t.Fatal("stall still active after traffic resumed")
	}
}

func TestDensityDriftAnomaly(t *testing.T) {
	e := New(Config{MinCheckReports: 50})
	e.Bind(telemetry.NewRegistry())
	for i := 0; i < 100; i++ {
		e.ObserveAccepted(uint64(i), 12, 100, 20, 20, false) // constant totals
	}
	e.Tick()
	if !hasAnomaly(e, "density-drift") {
		t.Fatalf("no density-drift on a degenerate cohort: %+v", e.ActiveAnomalies())
	}
}

func TestCrashedRunsExcludedFromDensityCheck(t *testing.T) {
	e := New(Config{MinCheckReports: 50})
	e.Bind(telemetry.NewRegistry())
	for i := 0; i < 100; i++ {
		e.ObserveAccepted(uint64(i), 12, 100, 20, 20, true)
	}
	if v := e.TakeSnapshot().Sampling; v.Reports != 0 {
		t.Errorf("crashed runs entered the density check: %d reports", v.Reports)
	}
}

func TestSnapshotTotals(t *testing.T) {
	e := newTestEngine(nil)
	acceptN(e, 7)
	e.ObserveRejected(ReasonDecode, []byte("xx"))
	e.ObserveRejected(ReasonMethod, nil)
	e.ObserveQuarantined(99, 42)
	snap := e.TakeSnapshot()
	if snap.Accepted != 7 {
		t.Errorf("accepted = %d", snap.Accepted)
	}
	if snap.RejectedTotal != 2 || snap.Rejected["decode"] != 1 || snap.Rejected["method"] != 1 {
		t.Errorf("rejected = %d %v", snap.RejectedTotal, snap.Rejected)
	}
	if snap.Quarantined != 1 {
		t.Errorf("quarantined = %d", snap.Quarantined)
	}
	if _, ok := snap.Rejected["quarantine"]; ok {
		t.Error("quarantine listed under rejected: those reports were folded")
	}
	if snap.ReportBytes.Count != 7 || snap.ReportNonzeros.Count != 7 {
		t.Errorf("sketch counts: bytes %d nonzeros %d", snap.ReportBytes.Count, snap.ReportNonzeros.Count)
	}
	// 7 runs + 1 shape + decode + quarantine reject fingerprints.
	if len(snap.TopSources) == 0 || snap.TopSources[0].Key != "shape:12" {
		t.Errorf("top sources: %+v", snap.TopSources)
	}
	bad, total := e.BadReports()
	if total != 2 || len(bad) != 2 { // decode payload + quarantine
		t.Errorf("bad reports: %d entries, %d total", len(bad), total)
	}
	if bad[0].Reason != "quarantine" || bad[0].RunID != 99 || bad[0].Size != 42 {
		t.Errorf("newest forensic entry: %+v", bad[0])
	}
}

// TestSketchStrideAdapts drives the engine past its sketch budget and
// checks the stride climbs, exact aggregates stay exact, heavy-hitter
// counts stay calibrated, and a quiet tick walks the stride back down.
func TestSketchStrideAdapts(t *testing.T) {
	e := New(Config{SketchBudget: 100, MinCheckReports: 1 << 30})
	e.Bind(telemetry.NewRegistry())
	const n = 2000
	for i := 0; i < n; i++ {
		e.ObserveAccepted(uint64(i), 12, 50, 3, 3, false)
	}
	snap := e.TakeSnapshot()
	if snap.SketchStride <= 1 {
		t.Fatalf("stride = %d after %d reports with budget 100", snap.SketchStride, n)
	}
	if snap.Accepted != n || snap.ReportBytes.Count != n || snap.ReportBytes.Mean != 50 {
		t.Errorf("exact aggregates drifted: accepted %d bytes count %d mean %v",
			snap.Accepted, snap.ReportBytes.Count, snap.ReportBytes.Mean)
	}
	// The shape key saw a weighted offer per sampled report; its
	// calibrated count must be within the Space-Saving error of n.
	var shape *HeavyHitter
	for i := range snap.TopSources {
		if snap.TopSources[i].Key == "shape:12" {
			shape = &snap.TopSources[i]
		}
	}
	if shape == nil {
		t.Fatalf("shape key missing from top sources: %+v", snap.TopSources)
	}
	if shape.Count < n/2 || shape.Count > 2*n {
		t.Errorf("weighted shape count %d, want near %d", shape.Count, n)
	}
	// Quiet ticks (little traffic) halve the stride back toward 1; a
	// zero-traffic tick must hold it instead.
	hold := e.TakeSnapshot().SketchStride
	e.Tick()
	e.Tick()
	if got := e.TakeSnapshot().SketchStride; got != hold {
		t.Errorf("stride moved on zero-traffic ticks: %d -> %d", hold, got)
	}
	for i := 0; i < 20; i++ {
		e.ObserveAccepted(uint64(i), 12, 50, 3, 3, false)
		e.Tick()
	}
	if got := e.TakeSnapshot().SketchStride; got != 1 {
		t.Errorf("stride = %d after quiet ticks, want 1", got)
	}
}

func TestSketchBudgetDisabled(t *testing.T) {
	e := New(Config{SketchBudget: -1, MinCheckReports: 1 << 30})
	e.Bind(telemetry.NewRegistry())
	for i := 0; i < 50_000; i++ {
		e.ObserveAccepted(uint64(i), 12, 50, 3, 3, false)
	}
	if got := e.TakeSnapshot().SketchStride; got != 1 {
		t.Errorf("stride = %d with adaptation disabled, want 1", got)
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	e.ObserveEndpoint(false)
	e.ObserveAccepted(1, 2, 3, 4, 5, false)
	e.ObserveRejected(ReasonDecode, []byte("x"))
	e.ObserveQuarantined(1, 2)
	e.Bind(nil)
	e.Start()
	e.Tick()
	e.Stop()
	if e.ActiveAnomalies() != nil {
		t.Error("nil engine has anomalies")
	}
}

func TestStartStopTicker(t *testing.T) {
	e := New(Config{Interval: 1}) // 1ns: ticks as fast as possible
	e.Bind(telemetry.NewRegistry())
	e.Start()
	e.Stop()
	e.Stop() // idempotent
	// Stop before Start must prevent the ticker from ever starting.
	e2 := New(Config{Interval: 1})
	e2.Stop()
	e2.Start()
}

// jsonKeys unmarshals into a map and returns the sorted top-level keys.
func jsonKeys(t *testing.T, data []byte) []string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestServeQualityGoldenShape pins the /quality JSON document shape:
// dashboards and scripts parse these exact keys.
func TestServeQualityGoldenShape(t *testing.T) {
	e := newTestEngine(nil)
	acceptN(e, 5)
	e.ObserveRejected(ReasonDecode, []byte("junk"))
	e.Tick()

	rec := httptest.NewRecorder()
	e.ServeQuality(rec, httptest.NewRequest("GET", "/quality", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /quality: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	want := []string{
		"accepted_total", "anomalies", "anomalies_total", "bad_reports_recorded",
		"quarantined_total", "rates", "rejected", "rejected_total",
		"report_bytes", "report_nonzeros", "sampling", "sketch_cap",
		"sketch_stride", "source_events", "sources_tracked", "ticks",
		"top_sources", "uptime_seconds",
	}
	if got := jsonKeys(t, rec.Body.Bytes()); !reflect.DeepEqual(got, want) {
		t.Errorf("/quality keys:\n got %v\nwant %v", got, want)
	}

	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Accepted != 5 || snap.Rejected["decode"] != 1 {
		t.Errorf("decoded snapshot: %+v", snap)
	}
	wantRates := []string{
		"accept", "endpoint:/report", "endpoint:/reports",
		"reject:decode", "reject:fold", "reject:method",
		"reject:quarantine", "reject:read", "reject:shed",
		"reject:too-large",
	}
	var rates []string
	for k := range snap.Rates {
		rates = append(rates, k)
	}
	sort.Strings(rates)
	if !reflect.DeepEqual(rates, wantRates) {
		t.Errorf("rate trackers:\n got %v\nwant %v", rates, wantRates)
	}

	rec = httptest.NewRecorder()
	e.ServeQuality(rec, httptest.NewRequest("POST", "/quality", nil))
	if rec.Code != 405 {
		t.Errorf("POST /quality: %d, want 405", rec.Code)
	}
}

// TestServeBadReportsGoldenShape pins the /debug/badreports document and
// per-entry shape.
func TestServeBadReportsGoldenShape(t *testing.T) {
	e := newTestEngine(nil)
	e.ObserveRejected(ReasonDecode, []byte("not a report"))

	rec := httptest.NewRecorder()
	e.ServeBadReports(rec, httptest.NewRequest("GET", "/debug/badreports", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/badreports: %d", rec.Code)
	}
	if got, want := jsonKeys(t, rec.Body.Bytes()), []string{"recorded_total", "reports", "size"}; !reflect.DeepEqual(got, want) {
		t.Errorf("document keys: %v, want %v", got, want)
	}
	var doc struct {
		Recorded uint64            `json:"recorded_total"`
		Reports  []json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Recorded != 1 || len(doc.Reports) != 1 {
		t.Fatalf("doc: %+v", doc)
	}
	// run_id is omitempty (rejected payloads decoded no run ID).
	if got, want := jsonKeys(t, doc.Reports[0]), []string{"hex", "reason", "seq", "size", "truncated", "unix_ms"}; !reflect.DeepEqual(got, want) {
		t.Errorf("entry keys: %v, want %v", got, want)
	}

	// Empty engine: reports must be [], not null.
	rec = httptest.NewRecorder()
	New(Config{}).ServeBadReports(rec, httptest.NewRequest("GET", "/debug/badreports", nil))
	var empty struct {
		Reports json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &empty); err != nil {
		t.Fatal(err)
	}
	if string(empty.Reports) != "[]" {
		t.Errorf("empty ring serializes as %s, want []", empty.Reports)
	}
}

func TestRingEviction(t *testing.T) {
	r := newRing(3, 4)
	for i := 0; i < 5; i++ {
		r.record(ReasonDecode, 0, 0, []byte{byte(i), 0xaa, 0xbb, 0xcc, 0xdd})
	}
	entries, total := r.snapshot()
	if total != 5 || len(entries) != 3 {
		t.Fatalf("%d entries, %d total", len(entries), total)
	}
	// Newest first: seq 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if entries[i].Seq != want {
			t.Errorf("entry %d seq = %d, want %d", i, entries[i].Seq, want)
		}
	}
	if !entries[0].Truncated || entries[0].Size != 5 || entries[0].Hex != "04aabbcc" {
		t.Errorf("truncation: %+v", entries[0])
	}
}
