package quality

// spacesaving.go implements the Space-Saving heavy-hitters sketch
// (Metwally, Agrawal & El Abbadi, "Efficient computation of frequent and
// top-k elements in data streams", ICDT 2005) over compact source
// fingerprints. The collector feeds it one fingerprint per ingest event
// (run ID, counter-vector shape, rejection reason) so a client spamming
// duplicate run IDs, a cohort submitting a foreign counter shape, or a
// dominating rejection reason surfaces in the /quality top-K even though
// the stream itself is unbounded.
//
// Guarantees (m = capacity, N = stream length): every key with true
// count > N/m is in the sketch, and for any tracked key
// count - maxError <= true count <= count.

import (
	"fmt"
	"sort"
)

// SourceKind says what a fingerprint identifies.
type SourceKind uint8

const (
	// SourceRun fingerprints a report's run ID — duplicates mean one
	// client is resubmitting (or forging) the same run.
	SourceRun SourceKind = iota
	// SourceShape fingerprints a report's counter-vector length; a heavy
	// foreign shape means a mis-built or hostile cohort.
	SourceShape
	// SourceReject fingerprints a rejection reason (Value is a Reason).
	SourceReject
)

// Source is a compact ingest-event fingerprint: small enough to be a map
// key with no per-event allocation on the hot path.
type Source struct {
	Kind  SourceKind
	Value uint64
}

func (s Source) String() string {
	switch s.Kind {
	case SourceRun:
		return fmt.Sprintf("run:%d", s.Value)
	case SourceShape:
		return fmt.Sprintf("shape:%d", s.Value)
	case SourceReject:
		return "reject:" + Reason(s.Value).String()
	}
	return fmt.Sprintf("source:%d:%d", s.Kind, s.Value)
}

type ssEntry struct {
	key      Source
	count    uint64
	maxError uint64
}

// SpaceSaving is the fixed-capacity counter summary. Not safe for
// concurrent use; the Engine serializes access.
type SpaceSaving struct {
	cap     int
	n       uint64
	idx     map[Source]int
	entries []ssEntry
}

// NewSpaceSaving creates a sketch tracking at most capacity keys.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{cap: capacity, idx: make(map[Source]int, capacity)}
}

// Offer folds one occurrence of k. A tracked key increments in O(1); a
// new key beyond capacity evicts the current minimum (O(capacity) scan —
// capacity is a small constant, and the scan only runs on misses).
func (s *SpaceSaving) Offer(k Source) { s.OfferN(k, 1) }

// OfferN folds w occurrences of k at once. The engine uses this when its
// sketch stride is above 1: each sampled event stands for w real ones,
// so counts stay calibrated to the full stream. The Space-Saving bounds
// hold for the weighted stream (N grows by w, the evicted minimum still
// caps the overestimate).
func (s *SpaceSaving) OfferN(k Source, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	if i, ok := s.idx[k]; ok {
		s.entries[i].count += w
		return
	}
	if len(s.entries) < s.cap {
		s.idx[k] = len(s.entries)
		s.entries = append(s.entries, ssEntry{key: k, count: w})
		return
	}
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].count < s.entries[min].count {
			min = i
		}
	}
	old := s.entries[min]
	delete(s.idx, old.key)
	s.idx[k] = min
	// The evicted count becomes the new key's overestimate bound: the
	// true count is somewhere in [w, old.count+w].
	s.entries[min] = ssEntry{key: k, count: old.count + w, maxError: old.count}
}

// Len returns the number of tracked keys; N returns the stream length.
func (s *SpaceSaving) Len() int  { return len(s.entries) }
func (s *SpaceSaving) N() uint64 { return s.n }

// HeavyHitter is one /quality top-K row.
type HeavyHitter struct {
	Key      string `json:"key"`
	Count    uint64 `json:"count"`
	MaxError uint64 `json:"max_error"`
}

// Top returns up to k tracked keys by descending estimated count (ties
// broken by smaller error, then key text, so snapshots are stable).
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, HeavyHitter{Key: e.key.String(), Count: e.count, MaxError: e.maxError})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].MaxError != out[j].MaxError {
			return out[i].MaxError < out[j].MaxError
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
