package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"cbi/internal/instrument"
	"cbi/internal/minic"
	"cbi/internal/sampler"
)

func TestValueTruthy(t *testing.T) {
	obj := &Object{ID: 1, Data: make([]Value, 1), Size: 1}
	cases := []struct {
		v    Value
		want bool
	}{
		{IntVal(0), false},
		{IntVal(-2), true},
		{StrVal(""), false},
		{StrVal("x"), true},
		{NullVal(), false},
		{PtrVal(obj, 0), true},
	}
	for _, tc := range cases {
		if tc.v.Truthy() != tc.want {
			t.Errorf("%v.Truthy() != %v", tc.v, tc.want)
		}
	}
}

func TestValueSign(t *testing.T) {
	obj := &Object{ID: 1, Data: make([]Value, 1), Size: 1}
	cases := []struct {
		v    Value
		want int
	}{
		{IntVal(-9), -1},
		{IntVal(0), 0},
		{IntVal(9), 1},
		{NullVal(), 0},
		{PtrVal(obj, 0), 1},
		{StrVal(""), 0},
		{StrVal("a"), 1},
	}
	for _, tc := range cases {
		if tc.v.Sign() != tc.want {
			t.Errorf("%v.Sign() = %d, want %d", tc.v, tc.v.Sign(), tc.want)
		}
	}
}

func TestValueEqualAndLess(t *testing.T) {
	a := &Object{ID: 1, Data: make([]Value, 4), Size: 4}
	b := &Object{ID: 2, Data: make([]Value, 4), Size: 4}
	if !PtrVal(a, 1).Equal(PtrVal(a, 1)) || PtrVal(a, 1).Equal(PtrVal(a, 2)) || PtrVal(a, 0).Equal(PtrVal(b, 0)) {
		t.Error("pointer equality")
	}
	if !NullVal().Equal(NullVal()) || NullVal().Equal(PtrVal(a, 0)) {
		t.Error("null equality")
	}
	if !NullVal().Equal(IntVal(0)) || !IntVal(0).Equal(NullVal()) {
		t.Error("null/zero equality (C-style)")
	}
	if !StrVal("a").Equal(StrVal("a")) || StrVal("a").Equal(StrVal("b")) {
		t.Error("string equality")
	}
	if StrVal("a").Equal(IntVal(1)) {
		t.Error("cross-kind equality")
	}

	if !NullVal().Less(PtrVal(a, 0)) {
		t.Error("null < pointer")
	}
	if !PtrVal(a, 0).Less(PtrVal(a, 3)) || !PtrVal(a, 0).Less(PtrVal(b, 0)) {
		t.Error("pointer ordering")
	}
	if !StrVal("a").Less(StrVal("b")) || StrVal("b").Less(StrVal("a")) {
		t.Error("string ordering")
	}
	if !IntVal(-1).Less(NullVal()) || IntVal(1).Less(NullVal()) {
		t.Error("int vs null ordering")
	}
	if !NullVal().Less(IntVal(1)) || NullVal().Less(IntVal(-1)) {
		t.Error("null vs int ordering")
	}
	// Less is a strict order on ints: irreflexive and transitive-ish.
	err := quick.Check(func(x, y int64) bool {
		vx, vy := IntVal(x), IntVal(y)
		if x == y {
			return !vx.Less(vy) && !vy.Less(vx)
		}
		return vx.Less(vy) != vy.Less(vx)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	obj := &Object{ID: 7, Data: make([]Value, 1), Size: 1}
	cases := map[string]Value{
		"42":      IntVal(42),
		"hi":      StrVal("hi"),
		"null":    NullVal(),
		"ptr#7+2": PtrVal(obj, 2),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind, v.String(), want)
		}
	}
}

func TestZeroFor(t *testing.T) {
	if ZeroFor(minic.IntType).Kind != KInt {
		t.Error("int zero")
	}
	if ZeroFor(minic.PtrTo(minic.IntType)).Kind != KNull {
		t.Error("ptr zero")
	}
	if ZeroFor(minic.StrType).Kind != KStr {
		t.Error("str zero")
	}
	if ZeroFor(nil).Kind != KInt {
		t.Error("nil type zero")
	}
}

func TestTrapStringsAndErrors(t *testing.T) {
	kinds := []TrapKind{
		TrapNullDeref, TrapOutOfBounds, TrapUseAfterFree, TrapDivByZero,
		TrapAssertFailed, TrapAbort, TrapStackOverflow, TrapFuelExhausted, TrapBadProgram,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown trap" || seen[s] {
			t.Errorf("kind %d: %q", k, s)
		}
		seen[s] = true
	}
	if TrapKind(99).String() != "unknown trap" {
		t.Error("unknown kind")
	}
	tr := &Trap{Kind: TrapAbort, Msg: "boom"}
	if !strings.Contains(tr.Error(), "abort") || !strings.Contains(tr.Error(), "boom") {
		t.Errorf("Error(): %q", tr.Error())
	}
	bare := &Trap{Kind: TrapDivByZero}
	if !strings.Contains(bare.Error(), "division by zero") {
		t.Errorf("Error(): %q", bare.Error())
	}
}

func TestBuiltinEdgeCases(t *testing.T) {
	// abort with a message.
	res := run(t, `int main() { abort("bad state"); return 0; }`, Config{})
	if res.Trap == nil || !strings.Contains(res.Trap.Msg, "bad state") {
		t.Errorf("abort message: %+v", res.Trap)
	}
	// min/max.
	res = run(t, `int main() { return min(3, max(7, 5)); }`, Config{})
	if res.ExitCode != 3 {
		t.Errorf("min/max: %d", res.ExitCode)
	}
	// strget out of bounds traps.
	res = run(t, `int main() { return strget("ab", 5); }`, Config{})
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapOutOfBounds {
		t.Errorf("strget oob: %+v", res.Trap)
	}
	// rand(0) is 0.
	res = run(t, `int main() { return rand(0); }`, Config{})
	if res.ExitCode != 0 {
		t.Error("rand(0)")
	}
	// alloc with negative size is a program error.
	res = run(t, `int main() { int* p = alloc(0 - 4); return 0; }`, Config{})
	if res.Outcome != OutcomeCrash {
		t.Error("alloc(-4) should trap")
	}
	// free(null) is harmless.
	res = run(t, `int main() { free(null); return 0; }`, Config{})
	if res.Outcome != OutcomeOK {
		t.Error("free(null)")
	}
}

func TestPeriodicSourceOverride(t *testing.T) {
	// Install a periodic countdown source directly: with period 1 every
	// site fires, like density 1.
	p := instrumented(t, probeProgram, instrument.SchemeSet{Bounds: true})
	sp := instrument.Sample(p, instrument.DefaultOptions())
	res := Run(sp, Config{Source: &sampler.Periodic{Period: 1}})
	if res.Outcome != OutcomeOK {
		t.Fatal(res.Trap)
	}
	if res.SamplesTaken != 6464 {
		t.Errorf("period-1 sampling took %d samples, want all 6464", res.SamplesTaken)
	}
}

func TestVMAccessors(t *testing.T) {
	p := instrumented(t, probeProgram, instrument.SchemeSet{Bounds: true})
	vm := New(p, Config{})
	if vm.Rand() == nil || vm.Out() == nil {
		t.Error("accessors")
	}
	if len(vm.Counters()) != p.NumCounters {
		t.Error("counters length")
	}
	v := vm.Alloc(5)
	if v.Kind != KPtr || v.Obj.Size != 5 || len(v.Obj.Data) != 8 {
		t.Errorf("Alloc: %+v", v.Obj)
	}
}

func TestCrashReportStillCarriesCounters(t *testing.T) {
	// Counters sampled before the crash must survive into the result —
	// that is the whole point of §3.2's crashed-run reports.
	src := `
int main() {
	int* p = alloc(4);
	for (int i = 0; i < 4; i++) { p[i] = i; }
	int* q = null;
	return q[0];
}`
	p := instrumented(t, src, instrument.SchemeSet{Bounds: true})
	res := Run(p, Config{})
	if res.Outcome != OutcomeCrash {
		t.Fatal("should crash")
	}
	if res.SamplesTaken == 0 {
		t.Error("probes before the crash must have fired")
	}
	// The final bounds probe saw the null pointer: its "pointer is null"
	// counter must be set.
	var nullObs uint64
	for _, s := range p.Sites {
		nullObs += res.Counters[s.CounterBase]
	}
	if nullObs == 0 {
		t.Error("null observation not recorded before crash")
	}
}
