package interp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cbi/internal/cfg"
)

// PathKind classifies where an interpreter step was spent, in the
// vocabulary of the sampling transformation: the program's own work,
// the fast path's countdown bookkeeping, the slow path's site checks,
// and the region threshold checks that pick between the two. Per-kind
// attribution is what turns the Table 2 / Figure 4 overhead ratios from
// a single number into an explanation.
type PathKind int

const (
	// PathBaseline is the program's own computation.
	PathBaseline PathKind = iota
	// PathFastDec is fast-path countdown maintenance: coalesced
	// decrements plus the import/export shuffling of a frame-local
	// countdown (§2.4).
	PathFastDec
	// PathSlowSite is slow-path and unconditional site work: guarded
	// site checks, probe argument evaluation, and counter bumps.
	PathSlowSite
	// PathThreshold is the acyclic-region threshold checks that choose
	// between the fast and slow clones (§2.2).
	PathThreshold

	numPathKinds
)

func (k PathKind) String() string {
	switch k {
	case PathBaseline:
		return "baseline"
	case PathFastDec:
		return "fast-dec"
	case PathSlowSite:
		return "slow-site"
	case PathThreshold:
		return "threshold"
	default:
		return "unknown"
	}
}

// instrKind maps an instruction to the path kind its steps belong to.
func instrKind(in cfg.Instr) PathKind {
	switch in.(type) {
	case *cfg.CountdownDec, *cfg.CDImport, *cfg.CDExport:
		return PathFastDec
	case *cfg.GuardedSite, *cfg.SiteInstr:
		return PathSlowSite
	default:
		return PathBaseline
	}
}

// profNode is one node of the calling-context tree: a function name in
// the context of its whole call stack, with per-path-kind step counts.
type profNode struct {
	name     string
	parent   *profNode
	children map[string]*profNode
	kinds    [numPathKinds]uint64
}

func (n *profNode) child(name string) *profNode {
	if c, ok := n.children[name]; ok {
		return c
	}
	c := &profNode{name: name, parent: n}
	if n.children == nil {
		n.children = make(map[string]*profNode, 4)
	}
	n.children[name] = c
	return c
}

// profiler attributes every VM step to exactly one (call-stack,
// path-kind) pair. The VM synchronizes it at instruction and terminator
// granularity: take() charges all steps executed since the previous
// synchronization point to the current node, so nested calls (whose
// steps were already attributed at deeper nodes) are never
// double-counted — the caller's take only sees what the callee left
// unclaimed.
type profiler struct {
	root *profNode
	cur  *profNode
	last uint64 // steps attributed so far
}

func newProfiler() *profiler {
	root := &profNode{name: "(vm)"}
	return &profiler{root: root, cur: root}
}

// take charges steps-last to the current node under kind.
func (p *profiler) take(kind PathKind, steps uint64) {
	if d := steps - p.last; d > 0 {
		p.cur.kinds[kind] += d
		p.last = steps
	}
}

// enter descends into fn: pending caller-side steps (argument
// evaluation, the call instruction's own fuel charge) are baseline work
// of the caller.
func (p *profiler) enter(fn string, steps uint64) {
	p.take(PathBaseline, steps)
	p.cur = p.cur.child(fn)
}

// exit ascends after a call returns (or unwinds on a trap): whatever
// the callee has not yet claimed — return-expression evaluation,
// trailing terminator steps — is its baseline work.
func (p *profiler) exit(steps uint64) {
	p.take(PathBaseline, steps)
	p.cur = p.cur.parent
}

// profile freezes the tree into the exported Profile.
func (p *profiler) profile() *Profile {
	return &Profile{root: p.root, Steps: p.last}
}

// Profile is the per-run step-attribution profile produced by
// Config.Profile: a calling-context tree whose per-kind counts sum to
// the run's exact step count (Result.Steps).
type Profile struct {
	root *profNode
	// Steps is the total attributed steps; equals Result.Steps.
	Steps uint64
}

// FuncProfile aggregates one function's steps across every call path.
type FuncProfile struct {
	Name  string
	Kinds [numPathKinds]uint64
	Total uint64
}

// walk visits the tree depth-first with children in name order.
func (p *Profile) walk(visit func(stack []string, n *profNode)) {
	var rec func(stack []string, n *profNode)
	rec = func(stack []string, n *profNode) {
		visit(stack, n)
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			rec(append(stack, c.name), c)
		}
	}
	// The synthetic "(vm)" root carries no steps of its own; start the
	// visible stacks at its children.
	names := make([]string, 0, len(p.root.children))
	for name := range p.root.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := p.root.children[name]
		rec([]string{c.name}, c)
	}
}

// ByFunc flattens the tree into per-function totals, sorted by total
// steps descending (ties by name).
func (p *Profile) ByFunc() []FuncProfile {
	byName := make(map[string]*FuncProfile)
	p.walk(func(_ []string, n *profNode) {
		fp, ok := byName[n.name]
		if !ok {
			fp = &FuncProfile{Name: n.name}
			byName[n.name] = fp
		}
		for k := 0; k < int(numPathKinds); k++ {
			fp.Kinds[k] += n.kinds[k]
			fp.Total += n.kinds[k]
		}
	})
	out := make([]FuncProfile, 0, len(byName))
	for _, fp := range byName {
		out = append(out, *fp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Totals sums attributed steps per path kind across the whole run.
func (p *Profile) Totals() [numPathKinds]uint64 {
	var t [numPathKinds]uint64
	p.walk(func(_ []string, n *profNode) {
		for k := 0; k < int(numPathKinds); k++ {
			t[k] += n.kinds[k]
		}
	})
	return t
}

// Format renders the per-function, per-path-kind breakdown table. The
// TOTAL row equals Result.Steps exactly — every cycle the VM charged is
// attributed to one cell.
func (p *Profile) Format() string {
	funcs := p.ByFunc()
	wide := len("TOTAL")
	for _, f := range funcs {
		if len(f.Name) > wide {
			wide = len(f.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-function step attribution (sampling-overhead profile):\n")
	fmt.Fprintf(&b, "  %-*s %12s %12s %12s %12s %14s %8s\n",
		wide, "function", "baseline", "fast-dec", "slow-site", "threshold", "total", "overhead")
	var totals [numPathKinds]uint64
	var grand uint64
	for _, f := range funcs {
		fmt.Fprintf(&b, "  %-*s %12d %12d %12d %12d %14d %7.1f%%\n",
			wide, f.Name, f.Kinds[PathBaseline], f.Kinds[PathFastDec],
			f.Kinds[PathSlowSite], f.Kinds[PathThreshold], f.Total,
			percent(f.Total-f.Kinds[PathBaseline], f.Total))
		for k := 0; k < int(numPathKinds); k++ {
			totals[k] += f.Kinds[k]
		}
		grand += f.Total
	}
	fmt.Fprintf(&b, "  %-*s %12d %12d %12d %12d %14d %7.1f%%\n",
		wide, "TOTAL", totals[PathBaseline], totals[PathFastDec],
		totals[PathSlowSite], totals[PathThreshold], grand,
		percent(grand-totals[PathBaseline], grand))
	return b.String()
}

func percent(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteFolded emits the profile in folded flame-stack format (one
// "frame;frame;... count" line per stack), the input format of
// flamegraph.pl and speedscope. Baseline steps stay on the function's
// own stack; sampling overhead gets a synthetic leaf frame per path
// kind — `(fast-dec)`, `(slow-site)`, `(threshold)` — so the overhead
// shows up as its own towers on top of the functions that pay it.
func (p *Profile) WriteFolded(w io.Writer) error {
	var b strings.Builder
	p.walk(func(stack []string, n *profNode) {
		prefix := strings.Join(stack, ";")
		if v := n.kinds[PathBaseline]; v > 0 {
			fmt.Fprintf(&b, "%s %d\n", prefix, v)
		}
		for _, k := range []PathKind{PathFastDec, PathSlowSite, PathThreshold} {
			if v := n.kinds[k]; v > 0 {
				fmt.Fprintf(&b, "%s;(%s) %d\n", prefix, k, v)
			}
		}
	})
	_, err := io.WriteString(w, b.String())
	return err
}
