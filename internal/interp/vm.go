package interp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"cbi/internal/cfg"
	"cbi/internal/minic"
	"cbi/internal/sampler"
)

// TrapKind classifies run-terminating faults.
type TrapKind int

const (
	TrapNullDeref TrapKind = iota
	TrapOutOfBounds
	TrapUseAfterFree
	TrapDivByZero
	TrapAssertFailed
	TrapAbort
	TrapStackOverflow
	TrapFuelExhausted
	TrapBadProgram // internal inconsistency (missing main, bad callee, ...)
)

func (k TrapKind) String() string {
	switch k {
	case TrapNullDeref:
		return "null dereference"
	case TrapOutOfBounds:
		return "out-of-bounds access"
	case TrapUseAfterFree:
		return "use after free"
	case TrapDivByZero:
		return "division by zero"
	case TrapAssertFailed:
		return "assertion failed"
	case TrapAbort:
		return "abort"
	case TrapStackOverflow:
		return "stack overflow"
	case TrapFuelExhausted:
		return "fuel exhausted"
	case TrapBadProgram:
		return "bad program"
	default:
		return "unknown trap"
	}
}

// Trap is the fatal-signal analogue: it terminates the run and marks the
// report as a crash.
type Trap struct {
	Kind TrapKind
	Pos  minic.Pos
	Msg  string
}

func (t *Trap) Error() string {
	if t.Msg != "" {
		return fmt.Sprintf("%s: %s: %s", t.Pos, t.Kind, t.Msg)
	}
	return fmt.Sprintf("%s: %s", t.Pos, t.Kind)
}

// Intrinsic is a host-provided builtin. Implementations may return a Trap
// to crash the run.
type Intrinsic func(vm *VM, args []Value) (Value, error)

// Config configures one run.
type Config struct {
	// Engine selects the execution engine: the fused/threaded bytecode VM
	// (EngineFused, the zero value and default), the unfused enum-switch
	// bytecode VM (EngineCompiled), or the reference tree-walking
	// interpreter (EngineTree). The latter two are kept as differential
	// oracles. All three produce bit-identical Results.
	Engine Engine
	// Seed drives the program-visible rand() builtin.
	Seed int64
	// Density is the sampling density for sampled programs (e.g. 1.0/1000).
	Density float64
	// CountdownSeed seeds the geometric countdown bank; the paper varies
	// this per run ("each run used a different pre-generated bank").
	CountdownSeed int64
	// BankSize is the countdown bank size (default 1024, as in §3.1.1).
	BankSize int
	// Source overrides the countdown source entirely (e.g. a Periodic
	// sampler for the fairness ablation). Density/CountdownSeed are then
	// ignored.
	Source sampler.Source
	// Fuel bounds the number of VM steps (default 200M).
	Fuel uint64
	// MaxDepth bounds the call stack (default 4096).
	MaxDepth int
	// Stdout receives print output; nil discards it into the Result.
	Stdout io.Writer
	// Intrinsics supplies host builtins beyond the standard set. Keys
	// must match the builtins the program was checked against.
	Intrinsics map[string]Intrinsic
	// AbortOnBoundsViolation makes a sampled bounds probe (§3.1) abort
	// the program when it observes a violation, like a CCured check.
	AbortOnBoundsViolation bool
	// TraceCapacity, when positive, keeps an ordered ring buffer of the
	// last N sampled probe firings (site IDs). The paper defers ordered
	// partial traces to future work (§2.5); this is the minimal version:
	// a bounded flight recorder whose memory cost is fixed, preserving
	// the §2.5 scalability constraint.
	TraceCapacity int
	// CountOps enables the per-opcode execution-frequency histogram
	// (Result.OpCounts) on the bytecode engines, so fusion candidates are
	// chosen from dispatch data. Ignored by the tree walker (no opcodes).
	// Costs one nil check per dispatch when off.
	CountOps bool
	// Profile enables the per-function, per-path-kind step profiler
	// (Result.Profile). It attributes every VM step to a calling-context
	// tree node, so Table 2 / Figure 4 overhead ratios decompose into
	// baseline vs fast-path vs slow-path vs threshold work. Costs one
	// nil check per instruction when off, a map-free array bump when on.
	Profile bool
}

// Outcome is the final disposition of a run.
type Outcome int

const (
	// OutcomeOK means main returned normally.
	OutcomeOK Outcome = iota
	// OutcomeCrash means the run died on a trap (the "aborted by a fatal
	// signal" flag of §3.3.1).
	OutcomeCrash
)

// Result summarizes one run: the §2.5 report vector plus diagnostics.
type Result struct {
	Outcome  Outcome
	Trap     *Trap
	ExitCode int64
	// Counters is the predicate counter vector (one per counter across
	// all sites; order matches Program.Sites).
	Counters []uint64
	Steps    uint64
	Output   string
	// SamplesTaken counts probe firings, for fairness diagnostics.
	SamplesTaken uint64
	// Trace holds the site IDs of the last TraceCapacity sampled probe
	// firings, oldest first (empty unless Config.TraceCapacity > 0).
	Trace []int
	// Profile is the step-attribution profile (nil unless
	// Config.Profile). Its totals sum to Steps exactly.
	Profile *Profile
	// OpCounts is the per-opcode dispatch histogram, keyed by opcode
	// name (nil unless Config.CountOps on a bytecode engine).
	OpCounts map[string]uint64
}

// VM executes one program run.
type VM struct {
	prog          *cfg.Program
	globals       []Value
	counters      []uint64
	rng           *rand.Rand
	source        sampler.Source
	cd            int64 // global countdown
	out           io.Writer
	buf           *strings.Builder
	fuel          uint64
	steps         uint64
	samples       uint64
	maxDepth      int
	depth         int
	intr          map[string]Intrinsic
	nextObj       int64
	abortOnBounds bool
	trace         []int // ring buffer of sampled site IDs
	traceLen      int
	traceNext     int
	prof          *profiler

	engine Engine
	code   *Compiled // compiled form (EngineCompiled); shared, read-only
	// Per-run execution state of the compiled engine: frames are pooled
	// per call depth and locals arenas are reused across calls, so a run
	// allocates at most one frame per stack depth ever reached instead of
	// one frame + locals slice per call.
	cframes  []*cframe
	argStack []Value // user-call argument scratch; LIFO with the call stack
	scratch  []Value // probe/std-builtin argument scratch; never nests
	fret     Value   // fused-engine return-value slot (see retPC)
	ops      []uint64 // per-opcode dispatch counts (Config.CountOps)

	// Bump arenas for guest heap objects (vm.alloc): headers and cell
	// slices are carved from chunks so allocation-heavy guests cost two
	// host allocations per chunk, not per object. Chunks start small and
	// double up to a cap so light allocators don't pay for zeroing big
	// chunks they never fill. Carved slices are full-capacity sub-slices
	// that are never recycled, so the guest memory model (slack,
	// use-after-free flags, IDs) is unchanged.
	cellArena []Value
	objArena  []Object
	cellChunk int
	objChunk  int
}

type frame struct {
	fn     *cfg.Func
	locals []Value
	cd     int64
}

// Run executes prog's main function under cfg. With the default
// EngineFused (or EngineCompiled) the program is lowered to bytecode
// first; callers that execute the same program many times should
// Compile once and reuse the result (see Compiled.Run).
func Run(prog *cfg.Program, conf Config) Result {
	vm := New(prog, conf)
	return vm.Run()
}

// New prepares a VM without running it (used by harnesses that install
// intrinsics referring to the VM).
func New(prog *cfg.Program, conf Config) *VM {
	vm := &VM{
		prog:          prog,
		engine:        conf.Engine,
		counters:      make([]uint64, prog.NumCounters),
		rng:           rand.New(rand.NewSource(conf.Seed)),
		fuel:          conf.Fuel,
		maxDepth:      conf.MaxDepth,
		intr:          conf.Intrinsics,
		out:           conf.Stdout,
		abortOnBounds: conf.AbortOnBoundsViolation,
	}
	if vm.fuel == 0 {
		vm.fuel = 200_000_000
	}
	if vm.maxDepth == 0 {
		vm.maxDepth = 4096
	}
	if vm.out == nil {
		vm.buf = &strings.Builder{}
		vm.out = vm.buf
	}
	if conf.TraceCapacity > 0 {
		vm.trace = make([]int, conf.TraceCapacity)
	}
	if conf.Profile {
		vm.prof = newProfiler()
	}
	if conf.CountOps && conf.Engine != EngineTree {
		vm.ops = make([]uint64, nOpcodes)
	}
	src := conf.Source
	if src == nil && conf.Density > 0 {
		bankSize := conf.BankSize
		if bankSize == 0 {
			bankSize = 1024
		}
		src = sampler.NewBank(sampler.NewGeometric(conf.CountdownSeed, conf.Density), bankSize)
	}
	if src == nil {
		src = sampler.NewGeometric(0, 0) // never sample
	}
	vm.source = src
	vm.cd = src.Next()
	vm.globals = make([]Value, len(prog.Globals))
	for i, g := range prog.Globals {
		vm.globals[i] = ZeroFor(g.Type)
	}
	for i, g := range prog.File.Globals {
		if g.Init != nil {
			vm.globals[i] = vm.constValue(cfg.LowerGlobalInit(g.Init))
		}
	}
	return vm
}

func (vm *VM) constValue(e cfg.Expr) Value {
	switch x := e.(type) {
	case *cfg.Const:
		return IntVal(x.V)
	case *cfg.StrConst:
		return StrVal(x.S)
	default:
		return NullVal()
	}
}

// Counters exposes the live counter vector (for sufficient-statistics
// collection modes).
func (vm *VM) Counters() []uint64 { return vm.counters }

// Rand exposes the program-visible RNG to intrinsics.
func (vm *VM) Rand() *rand.Rand { return vm.rng }

// Run executes main and builds the report.
func (vm *VM) Run() Result {
	res := Result{}
	var v Value
	var err error
	if vm.engine == EngineTree {
		main := vm.prog.Funcs["main"]
		if main == nil {
			res.Outcome = OutcomeCrash
			res.Trap = &Trap{Kind: TrapBadProgram, Msg: "no main function"}
			return vm.finish(res)
		}
		v, err = vm.call(main, nil)
	} else {
		if vm.code == nil {
			vm.code = Compile(vm.prog)
		}
		if vm.code.main == nil {
			res.Outcome = OutcomeCrash
			res.Trap = &Trap{Kind: TrapBadProgram, Msg: "no main function"}
			return vm.finish(res)
		}
		v, err = vm.callC(vm.code.main, nil)
	}
	if err != nil {
		res.Outcome = OutcomeCrash
		if tr, ok := err.(*Trap); ok {
			res.Trap = tr
		} else {
			res.Trap = &Trap{Kind: TrapBadProgram, Msg: err.Error()}
		}
		return vm.finish(res)
	}
	res.Outcome = OutcomeOK
	if v.Kind == KInt {
		res.ExitCode = v.I
	}
	return vm.finish(res)
}

func (vm *VM) finish(res Result) Result {
	res.Counters = vm.counters
	res.Steps = vm.steps
	res.SamplesTaken = vm.samples
	if vm.traceLen > 0 {
		res.Trace = make([]int, 0, vm.traceLen)
		start := 0
		if vm.traceLen == len(vm.trace) {
			start = vm.traceNext
		}
		for i := 0; i < vm.traceLen; i++ {
			res.Trace = append(res.Trace, vm.trace[(start+i)%len(vm.trace)])
		}
	}
	if vm.buf != nil {
		res.Output = vm.buf.String()
	}
	if vm.prof != nil {
		// By now every vm.call frame has unwound (its deferred exit
		// claimed trailing steps), so the tree accounts for Steps exactly.
		res.Profile = vm.prof.profile()
	}
	if vm.ops != nil {
		res.OpCounts = make(map[string]uint64)
		for op, n := range vm.ops {
			if n > 0 {
				res.OpCounts[copcode(op).String()] = n
			}
		}
	}
	return res
}

func (vm *VM) step(pos minic.Pos) error {
	vm.steps++
	if vm.steps > vm.fuel {
		return &Trap{Kind: TrapFuelExhausted, Pos: pos}
	}
	return nil
}

// call runs fn with args and returns its value.
func (vm *VM) call(fn *cfg.Func, args []Value) (Value, error) {
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > vm.maxDepth {
		return Value{}, &Trap{Kind: TrapStackOverflow, Msg: fn.Name}
	}
	if vm.prof != nil {
		vm.prof.enter(fn.Name, vm.steps)
		// The deferred exit also runs on trap unwinding, so every step
		// charged below this frame is attributed before the tree pops.
		defer func() { vm.prof.exit(vm.steps) }()
	}
	fr := &frame{fn: fn, locals: make([]Value, len(fn.Locals))}
	for i, l := range fn.Locals {
		fr.locals[i] = ZeroFor(l.Type)
	}
	for i, p := range fn.Params {
		if i < len(args) {
			fr.locals[p.Slot] = args[i]
		}
	}
	b := fn.Entry
	for {
		for _, in := range b.Instrs {
			err := vm.execInstr(fr, in)
			if vm.prof != nil {
				// Charge everything since the last sync point — this
				// instruction's fuel, its expression evaluations, probe
				// work — to the instruction's path kind. A nested call
				// already claimed its own steps at deeper nodes, so the
				// delta here is caller-side work only.
				vm.prof.take(instrKind(in), vm.steps)
			}
			if err != nil {
				return Value{}, err
			}
		}
		if err := vm.step(minic.Pos{}); err != nil {
			if vm.prof != nil {
				vm.prof.take(PathBaseline, vm.steps)
			}
			return Value{}, err
		}
		term := b.Term
		switch t := term.(type) {
		case *cfg.Goto:
			b = t.To
		case *cfg.If:
			v, err := vm.eval(fr, t.Cond)
			if err != nil {
				return Value{}, err
			}
			if v.Truthy() {
				b = t.Then
			} else {
				b = t.Else
			}
		case *cfg.Ret:
			if t.X == nil {
				return IntVal(0), nil
			}
			return vm.eval(fr, t.X)
		case *cfg.Threshold:
			if vm.cdGet(fr) > int64(t.Weight) {
				b = t.Fast
			} else {
				b = t.Slow
			}
		default:
			return Value{}, &Trap{Kind: TrapBadProgram, Msg: "missing terminator"}
		}
		if vm.prof != nil {
			// The block's terminator charge (one step, plus any branch
			// condition evaluation). Threshold checks are the sampling
			// transformation's region dispatch; everything else is the
			// program's own control flow. Ret returns above, where the
			// deferred exit claims its trailing steps.
			if _, ok := term.(*cfg.Threshold); ok {
				vm.prof.take(PathThreshold, vm.steps)
			} else {
				vm.prof.take(PathBaseline, vm.steps)
			}
		}
	}
}

func (vm *VM) cdGet(fr *frame) int64 {
	if fr.fn.LocalCountdown {
		return fr.cd
	}
	return vm.cd
}

func (vm *VM) cdSet(fr *frame, v int64) {
	if fr.fn.LocalCountdown {
		fr.cd = v
	} else {
		vm.cd = v
	}
}

func (vm *VM) execInstr(fr *frame, in cfg.Instr) error {
	if err := vm.step(minic.Pos{}); err != nil {
		return err
	}
	switch x := in.(type) {
	case *cfg.Assign:
		v, err := vm.eval(fr, x.X)
		if err != nil {
			return err
		}
		return vm.store(fr, x.LV, v, x.Pos)
	case *cfg.Call:
		return vm.execCall(fr, x)
	case *cfg.SiteInstr:
		return vm.fireProbe(fr, x.Site)
	case *cfg.GuardedSite:
		cd := vm.cdGet(fr) - 1
		if cd == 0 {
			if err := vm.fireProbe(fr, x.Site); err != nil {
				return err
			}
			cd = vm.source.Next()
		}
		vm.cdSet(fr, cd)
		return nil
	case *cfg.CountdownDec:
		vm.cdSet(fr, vm.cdGet(fr)-int64(x.N))
		return nil
	case *cfg.CDImport:
		fr.cd = vm.cd
		return nil
	case *cfg.CDExport:
		vm.cd = fr.cd
		return nil
	default:
		return &Trap{Kind: TrapBadProgram, Msg: fmt.Sprintf("unknown instruction %T", in)}
	}
}

func (vm *VM) execCall(fr *frame, c *cfg.Call) error {
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := vm.eval(fr, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	var ret Value
	var err error
	if c.Builtin {
		ret, err = vm.callBuiltin(c.Callee, args, c.Pos)
	} else {
		callee := vm.prog.Funcs[c.Callee]
		if callee == nil {
			return &Trap{Kind: TrapBadProgram, Pos: c.Pos, Msg: "unknown function " + c.Callee}
		}
		ret, err = vm.call(callee, args)
	}
	if err != nil {
		return err
	}
	if c.Dst != nil {
		if c.Dst.Global {
			vm.globals[c.Dst.Slot] = ret
		} else {
			fr.locals[c.Dst.Slot] = ret
		}
	}
	return nil
}

// fireProbe executes a site's probe and bumps the chosen counter (§2.5:
// the report is a vector of predicate counters).
func (vm *VM) fireProbe(fr *frame, s *cfg.Site) error {
	vm.recordSample(s)
	args := make([]Value, len(s.Args))
	for i, a := range s.Args {
		v, err := vm.eval(fr, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	return vm.probe(s, args)
}

// recordSample counts a probe firing and records it in the flight
// recorder, before argument evaluation (which may trap) — shared by both
// engines so SamplesTaken and Trace agree on trapping runs.
func (vm *VM) recordSample(s *cfg.Site) {
	vm.samples++
	if vm.trace != nil {
		vm.trace[vm.traceNext] = s.ID
		vm.traceNext = (vm.traceNext + 1) % len(vm.trace)
		if vm.traceLen < len(vm.trace) {
			vm.traceLen++
		}
	}
}

// probe bumps the site's chosen counter given its evaluated arguments.
// Shared by the tree and compiled engines.
func (vm *VM) probe(s *cfg.Site, args []Value) error {
	bump := func(i int) { vm.counters[s.CounterBase+i]++ }
	switch s.Kind {
	case cfg.SiteReturns:
		switch args[0].Sign() {
		case -1:
			bump(0)
		case 0:
			bump(1)
		default:
			bump(2)
		}
	case cfg.SiteScalarPair:
		// Single three-way comparison; unordered pairs land in the
		// "greater" bucket, matching the old Less-then-Equal cascade.
		switch args[0].Cmp(args[1]) {
		case -1:
			bump(0)
		case 0:
			bump(1)
		default:
			bump(2)
		}
	case cfg.SiteNullCheck:
		if args[0].Kind == KNull {
			bump(0)
		} else {
			bump(1)
		}
	case cfg.SiteBranch:
		if args[0].Truthy() {
			bump(1)
		} else {
			bump(0)
		}
	case cfg.SiteBounds:
		ptr, idx := args[0], args[1]
		switch {
		case ptr.Kind == KNull:
			bump(0)
			if vm.abortOnBounds {
				return &Trap{Kind: TrapNullDeref, Pos: s.Pos, Msg: "bounds check"}
			}
		case ptr.Kind == KPtr && idx.Kind == KInt &&
			(ptr.Off+int(idx.I) < 0 || ptr.Off+int(idx.I) >= ptr.Obj.Size):
			bump(1)
			if vm.abortOnBounds {
				return &Trap{Kind: TrapOutOfBounds, Pos: s.Pos, Msg: "bounds check"}
			}
		}
	case cfg.SiteAssert:
		if args[0].Truthy() {
			bump(0)
		} else {
			bump(1)
			return &Trap{Kind: TrapAssertFailed, Pos: s.Pos, Msg: s.Text}
		}
	}
	return nil
}

// store writes v into an lvalue.
func (vm *VM) store(fr *frame, lv cfg.LValue, v Value, pos minic.Pos) error {
	switch x := lv.(type) {
	case *cfg.VarRef:
		if x.V.Global {
			vm.globals[x.V.Slot] = v
		} else {
			fr.locals[x.V.Slot] = v
		}
		return nil
	case *cfg.CellRef:
		cell, err := vm.cell(fr, x.Ptr, x.Idx, pos)
		if err != nil {
			return err
		}
		*cell = v
		return nil
	default:
		return &Trap{Kind: TrapBadProgram, Pos: pos, Msg: "unknown lvalue"}
	}
}

// cell resolves a heap cell address, enforcing the slack-capacity memory
// model: indices within physical capacity succeed even past the logical
// size; beyond capacity (or on null/freed objects) the run traps.
func (vm *VM) cell(fr *frame, ptrE, idxE cfg.Expr, pos minic.Pos) (*Value, error) {
	ptr, err := vm.eval(fr, ptrE)
	if err != nil {
		return nil, err
	}
	idx, err := vm.eval(fr, idxE)
	if err != nil {
		return nil, err
	}
	return resolveCell(ptr, idx, pos)
}

// resolveCell checks an evaluated pointer/index pair against the memory
// model and returns the cell address. Shared by the tree and compiled
// engines.
func resolveCell(ptr, idx Value, pos minic.Pos) (*Value, error) {
	if ptr.Kind == KNull {
		return nil, &Trap{Kind: TrapNullDeref, Pos: pos}
	}
	if ptr.Kind != KPtr {
		return nil, &Trap{Kind: TrapBadProgram, Pos: pos, Msg: "indexing non-pointer"}
	}
	if ptr.Obj.Freed {
		return nil, &Trap{Kind: TrapUseAfterFree, Pos: pos}
	}
	if idx.Kind != KInt {
		return nil, &Trap{Kind: TrapBadProgram, Pos: pos, Msg: "non-integer index"}
	}
	off := ptr.Off + int(idx.I)
	if off < 0 || off >= len(ptr.Obj.Data) {
		return nil, &Trap{Kind: TrapOutOfBounds, Pos: pos,
			Msg: fmt.Sprintf("offset %d outside capacity %d", off, len(ptr.Obj.Data))}
	}
	return &ptr.Obj.Data[off], nil
}

// alloc creates a heap object with allocator slack: capacity is the
// request rounded up to the next power of two (minimum 4), like common
// size-class allocators. The gap between Size and capacity is what lets
// small overruns go unnoticed.
func (vm *VM) alloc(n int) Value {
	capacity := 4
	for capacity < n {
		capacity *= 2
	}
	vm.nextObj++
	// Cells start as IntVal(0), which is Value's zero value (KInt == 0),
	// so freshly carved (or freshly made) slices need no initialization
	// pass. Oversized requests bypass the arena.
	var data []Value
	if capacity <= cellArenaMax {
		if len(vm.cellArena) < capacity {
			switch vm.cellChunk *= 2; {
			case vm.cellChunk < cellArenaMin:
				vm.cellChunk = cellArenaMin
			case vm.cellChunk > cellArenaMax:
				vm.cellChunk = cellArenaMax
			}
			if vm.cellChunk < capacity {
				vm.cellChunk = capacity // ≤ cellArenaMax here
			}
			vm.cellArena = make([]Value, vm.cellChunk)
		}
		data = vm.cellArena[:capacity:capacity]
		vm.cellArena = vm.cellArena[capacity:]
	} else {
		data = make([]Value, capacity)
	}
	if len(vm.objArena) == 0 {
		if vm.objChunk < objArenaMax {
			if vm.objChunk = vm.objChunk * 2; vm.objChunk < objArenaMin {
				vm.objChunk = objArenaMin
			}
		}
		vm.objArena = make([]Object, vm.objChunk)
	}
	obj := &vm.objArena[0]
	vm.objArena = vm.objArena[1:]
	obj.ID = vm.nextObj
	obj.Data = data
	obj.Size = n
	return PtrVal(obj, 0)
}

const (
	cellArenaMin = 256   // Values in the first cell-arena chunk
	cellArenaMax = 16384 // chunk-size cap; larger requests bypass the arena
	objArenaMin  = 32    // headers in the first object-arena chunk
	objArenaMax  = 2048  // header chunk-size cap
)

// eval evaluates a pure expression.
func (vm *VM) eval(fr *frame, e cfg.Expr) (Value, error) {
	vm.steps++
	switch x := e.(type) {
	case *cfg.Const:
		return IntVal(x.V), nil
	case *cfg.StrConst:
		return StrVal(x.S), nil
	case *cfg.Null:
		return NullVal(), nil
	case *cfg.VarUse:
		if x.V.Global {
			return vm.globals[x.V.Slot], nil
		}
		return fr.locals[x.V.Slot], nil
	case *cfg.Un:
		v, err := vm.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		return unop(x.Op, v)
	case *cfg.Bin:
		return vm.evalBin(fr, x)
	case *cfg.Load:
		cell, err := vm.cell(fr, x.Ptr, x.Idx, x.Pos)
		if err != nil {
			return Value{}, err
		}
		return *cell, nil
	case *cfg.NewObj:
		v := vm.alloc(x.NumFields)
		// Structs get exactly their field count: field access cannot
		// overrun, matching C struct semantics.
		v.Obj.Data = v.Obj.Data[:x.NumFields]
		v.Obj.Size = x.NumFields
		return v, nil
	}
	return Value{}, &Trap{Kind: TrapBadProgram, Msg: fmt.Sprintf("unknown expression %T", e)}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (vm *VM) evalBin(fr *frame, x *cfg.Bin) (Value, error) {
	a, err := vm.eval(fr, x.X)
	if err != nil {
		return Value{}, err
	}
	b, err := vm.eval(fr, x.Y)
	if err != nil {
		return Value{}, err
	}
	return binop(x.Op, a, b, x.Pos)
}

// unop applies a unary operator to an evaluated operand. Shared by the
// tree and compiled engines.
func unop(op cfg.UnOp, v Value) (Value, error) {
	switch op {
	case cfg.UnNeg:
		return IntVal(-v.I), nil
	case cfg.UnNot:
		if v.Truthy() {
			return IntVal(0), nil
		}
		return IntVal(1), nil
	}
	return Value{}, &Trap{Kind: TrapBadProgram, Msg: "unary " + op.String()}
}

// binop applies a binary operator to evaluated operands. Shared by the
// tree and compiled engines. Orderings dispatch through the single-pass
// Value.Cmp rather than a Less-then-Equal double comparison.
func binop(op cfg.BinOp, a, b Value, pos minic.Pos) (Value, error) {
	switch op {
	case cfg.BinEq:
		return boolVal(a.Equal(b)), nil
	case cfg.BinNe:
		return boolVal(!a.Equal(b)), nil
	case cfg.BinLt:
		return boolVal(a.Cmp(b) == -1), nil
	case cfg.BinLe:
		c := a.Cmp(b)
		return boolVal(c == -1 || c == 0), nil
	case cfg.BinGt:
		return boolVal(a.Cmp(b) == 1), nil
	case cfg.BinGe:
		c := a.Cmp(b)
		return boolVal(c == 1 || c == 0), nil
	}
	// Pointer arithmetic.
	if a.Kind == KPtr && b.Kind == KInt {
		switch op {
		case cfg.BinAdd:
			return PtrVal(a.Obj, a.Off+int(b.I)), nil
		case cfg.BinSub:
			return PtrVal(a.Obj, a.Off-int(b.I)), nil
		}
	}
	if a.Kind != KInt || b.Kind != KInt {
		return Value{}, &Trap{Kind: TrapBadProgram, Pos: pos,
			Msg: fmt.Sprintf("operator %s on %s and %s", op, a, b)}
	}
	switch op {
	case cfg.BinAdd:
		return IntVal(a.I + b.I), nil
	case cfg.BinSub:
		return IntVal(a.I - b.I), nil
	case cfg.BinMul:
		return IntVal(a.I * b.I), nil
	case cfg.BinDiv:
		if b.I == 0 {
			return Value{}, &Trap{Kind: TrapDivByZero, Pos: pos}
		}
		return IntVal(a.I / b.I), nil
	case cfg.BinMod:
		if b.I == 0 {
			return Value{}, &Trap{Kind: TrapDivByZero, Pos: pos}
		}
		return IntVal(a.I % b.I), nil
	}
	return Value{}, &Trap{Kind: TrapBadProgram, Pos: pos, Msg: "operator " + op.String()}
}
