package interp

import "testing"

// The source language emits an explicit zero-assign for every
// declaration, so real compiled functions should prove the elision;
// the refusal paths are pinned on hand-built streams below.

func TestSkipZeroProvenForCompiledSources(t *testing.T) {
	src := `
int leaf(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s = s + i; }
	return s;
}
int main() {
	int* a = alloc(8);
	int acc;
	for (int i = 0; i < 8; i++) { a[i] = leaf(i); }
	acc = 0;
	for (int i = 0; i < 8; i++) { acc = acc + a[i]; }
	return acc;
}`
	for variant, p := range buildVariants(t, src) {
		code := Compile(p)
		for _, fn := range code.funcs {
			if len(fn.zero) > 0 && !fn.skipZero {
				t.Errorf("%s/%s: expected zero-copy elision to be proven", variant, fn.name)
			}
		}
	}
	diffAllVariants(t, "skipzero/source", src, 5)
}

// node builds a tiny pool by hand: nodes[0] reads local 0, nodes[1] is
// the constant 1.
func handPool() []enode {
	return []enode{
		{kind: eLocal, slot: 0},
		{kind: eConst, val: IntVal(1)},
	}
}

func TestSkipZeroRefusesReadBeforeWrite(t *testing.T) {
	// return local0 — read with no dominating write.
	fn := &compiledFunc{
		zero:  make([]Value, 1),
		nodes: handPool(),
		code:  []cinstr{{op: opRet, a: 0}},
	}
	if computeSkipZero(fn) {
		t.Fatal("read of unwritten local must refuse the elision")
	}

	// local0 = 1; return local0 — write dominates the read.
	fn.code = []cinstr{
		{op: opAssignLocal, slot: 0, a: 1},
		{op: opRet, a: 0},
	}
	if !computeSkipZero(fn) {
		t.Fatal("write-before-read must prove the elision")
	}

	// Branch where only one arm writes before the merged read:
	//   pc0 Threshold -> 1 / 2
	//   pc1 local0 = 1; goto 3
	//   pc2 goto 3
	//   pc3 return local0
	fn.code = []cinstr{
		{op: opThreshold, slot: 0, b: 1, c: 3},
		{op: opAssignLocal, slot: 0, a: 1},
		{op: opGoto, b: 4},
		{op: opGoto, b: 4},
		{op: opRet, a: 0},
	}
	if computeSkipZero(fn) {
		t.Fatal("partially-written local must refuse the elision")
	}

	// Params start initialized: return local0 with slot 0 a param.
	fn.code = []cinstr{{op: opRet, a: 0}}
	fn.paramSlots = []int32{0}
	if !computeSkipZero(fn) {
		t.Fatal("param slots start written; elision must be proven")
	}

	// An unknown opcode refuses outright.
	fn.code = []cinstr{{op: nOpcodes}, {op: opRetVoid}}
	fn.paramSlots = nil
	if computeSkipZero(fn) {
		t.Fatal("unknown opcode must refuse the elision")
	}
}
