package interp

import (
	"fmt"
	"io"

	"cbi/internal/minic"
)

// callBuiltin dispatches the standard intrinsics and any host-provided
// ones from Config.Intrinsics.
func (vm *VM) callBuiltin(name string, args []Value, pos minic.Pos) (Value, error) {
	switch name {
	case "print":
		for _, a := range args {
			fmt.Fprint(vm.out, a.String())
		}
		return Value{}, nil
	case "printi":
		fmt.Fprintf(vm.out, "%d\n", args[0].I)
		return Value{}, nil
	case "alloc":
		n := int(args[0].I)
		if args[0].Kind != KInt || n < 0 {
			return Value{}, &Trap{Kind: TrapBadProgram, Pos: pos, Msg: "alloc with bad size"}
		}
		return vm.alloc(n), nil
	case "free":
		if args[0].Kind == KPtr {
			args[0].Obj.Freed = true
		}
		return Value{}, nil
	case "streq":
		return boolVal(args[0].Kind == KStr && args[1].Kind == KStr && args[0].S == args[1].S), nil
	case "strlen":
		return IntVal(int64(len(args[0].S))), nil
	case "strget":
		i := int(args[1].I)
		if args[0].Kind != KStr || i < 0 || i >= len(args[0].S) {
			return Value{}, &Trap{Kind: TrapOutOfBounds, Pos: pos, Msg: "strget"}
		}
		return IntVal(int64(args[0].S[i])), nil
	case "rand":
		n := args[0].I
		if n <= 0 {
			return IntVal(0), nil
		}
		return IntVal(vm.rng.Int63n(n)), nil
	case "abort":
		msg := ""
		if len(args) > 0 {
			msg = args[0].String()
		}
		return Value{}, &Trap{Kind: TrapAbort, Pos: pos, Msg: msg}
	case "assert":
		if !args[0].Truthy() {
			return Value{}, &Trap{Kind: TrapAssertFailed, Pos: pos}
		}
		return Value{}, nil
	case "min":
		if args[0].I < args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "max":
		if args[0].I > args[1].I {
			return args[0], nil
		}
		return args[1], nil
	}
	if fn, ok := vm.intr[name]; ok {
		return fn(vm, args)
	}
	return Value{}, &Trap{Kind: TrapBadProgram, Pos: pos, Msg: "unknown builtin " + name}
}

// Out exposes the VM's output writer to intrinsics.
func (vm *VM) Out() io.Writer { return vm.out }

// Alloc exposes heap allocation to intrinsics (e.g. a virtual readline
// returning a character buffer).
func (vm *VM) Alloc(n int) Value { return vm.alloc(n) }
