package interp

import (
	"fmt"
	"reflect"
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/minic"
	"cbi/internal/progen"
)

// The bytecode engines (switch-dispatch and fused/threaded) must be
// bit-identical to the tree walker: same counters, outcome, exit code,
// output, trap kind/position/message, step totals, sample counts, and
// flight-recorder traces. These tests run the same program through all
// three engines and require the full Result to match pairwise.

var allSchemes = instrument.SchemeSet{
	Returns: true, ScalarPairs: true, Branches: true, Bounds: true, Asserts: true,
}

// buildVariants parses src and returns it lowered three ways: baseline
// (no instrumentation), unconditionally instrumented, and sampled.
func buildVariants(t testing.TB, src string) map[string]*cfg.Program {
	t.Helper()
	variants := map[string]*cfg.Program{}
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	base, err := cfg.Build(f, nil, nil)
	if err != nil {
		t.Fatalf("build baseline: %v", err)
	}
	variants["baseline"] = base
	f2, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	uncond, err := cfg.Build(f2, nil, &instrument.Schemes{Set: allSchemes})
	if err != nil {
		t.Fatalf("build instrumented: %v", err)
	}
	variants["unconditional"] = uncond
	variants["sampled"] = instrument.Sample(uncond, instrument.DefaultOptions())
	return variants
}

// diffEngines runs p under conf on all three engines and fails on any
// difference in the observable Result, with the tree walker as the
// reference.
func diffEngines(t testing.TB, label string, p *cfg.Program, conf Config) {
	t.Helper()
	tc := conf
	tc.Engine = EngineTree
	tree := Run(p, tc)
	for _, eng := range []Engine{EngineCompiled, EngineFused} {
		ec := conf
		ec.Engine = eng
		assertSameResult(t, label+"/"+eng.String(), tree, Run(p, ec))
	}
}

func assertSameResult(t testing.TB, label string, tree, compiled Result) {
	t.Helper()
	if tree.Outcome != compiled.Outcome {
		t.Errorf("%s: outcome tree=%v compiled=%v", label, tree.Outcome, compiled.Outcome)
	}
	if tree.ExitCode != compiled.ExitCode {
		t.Errorf("%s: exit code tree=%d compiled=%d", label, tree.ExitCode, compiled.ExitCode)
	}
	if tree.Steps != compiled.Steps {
		t.Errorf("%s: steps tree=%d compiled=%d", label, tree.Steps, compiled.Steps)
	}
	if tree.Output != compiled.Output {
		t.Errorf("%s: output tree=%q compiled=%q", label, tree.Output, compiled.Output)
	}
	if tree.SamplesTaken != compiled.SamplesTaken {
		t.Errorf("%s: samples tree=%d compiled=%d", label, tree.SamplesTaken, compiled.SamplesTaken)
	}
	if !reflect.DeepEqual(tree.Counters, compiled.Counters) {
		t.Errorf("%s: counter vectors differ\ntree:     %v\ncompiled: %v",
			label, tree.Counters, compiled.Counters)
	}
	if !reflect.DeepEqual(tree.Trace, compiled.Trace) {
		t.Errorf("%s: traces differ\ntree:     %v\ncompiled: %v", label, tree.Trace, compiled.Trace)
	}
	switch {
	case (tree.Trap == nil) != (compiled.Trap == nil):
		t.Errorf("%s: trap tree=%v compiled=%v", label, tree.Trap, compiled.Trap)
	case tree.Trap != nil && *tree.Trap != *compiled.Trap:
		t.Errorf("%s: traps differ tree=%v compiled=%v", label, tree.Trap, compiled.Trap)
	}
	if tree.Profile != nil || compiled.Profile != nil {
		if (tree.Profile == nil) != (compiled.Profile == nil) {
			t.Fatalf("%s: profile presence differs", label)
		}
		tt, ct := tree.Profile.Totals(), compiled.Profile.Totals()
		if tt != ct {
			t.Errorf("%s: profile totals differ tree=%v compiled=%v", label, tt, ct)
		}
		var sum uint64
		for _, v := range ct {
			sum += v
		}
		if sum != compiled.Steps {
			t.Errorf("%s: compiled profile sums to %d, steps %d", label, sum, compiled.Steps)
		}
	}
}

func diffAllVariants(t testing.TB, name, src string, seed int64) {
	for variant, p := range buildVariants(t, src) {
		conf := Config{
			Seed:          seed,
			CountdownSeed: seed * 7,
			Density:       1.0 / 29,
			TraceCapacity: 8,
		}
		diffEngines(t, name+"/"+variant, p, conf)
		// Same again with the profiler attached: its exact-total
		// guarantee must hold on the compiled engine too.
		conf.Profile = true
		diffEngines(t, name+"/"+variant+"/profiled", p, conf)
	}
}

func TestEnginesAgreeOnProgenPrograms(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		diffAllVariants(t, fmt.Sprintf("seed%d", seed), src, seed)
	}
}

// FuzzEnginesDifferential is the open-ended version: any seed must
// produce engine-identical behaviour on all three variants. CI runs it
// for a fixed budget under -race.
func FuzzEnginesDifferential(f *testing.F) {
	for _, seed := range []int64{1, 2, 17, 1234, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := progen.Generate(seed, progen.DefaultConfig())
		diffAllVariants(t, fmt.Sprintf("seed%d", seed), src, seed)
	})
}

// TestEnginesAgreeOnTraps exercises the mid-expression and mid-probe
// trap points progen deliberately avoids: the engines must agree on the
// trap kind, position, message, and the exact step count at the fault.
func TestEnginesAgreeOnTraps(t *testing.T) {
	cases := map[string]string{
		"null deref":     `int main() { int* p = null; return p[0]; }`,
		"out of bounds":  `int main() { int* p = alloc(2); return p[40]; }`,
		"div by zero":    `int main() { int z = 0; return 4 / z; }`,
		"mod by zero":    `int main() { int z = 0; return 4 % z; }`,
		"use after free": `int main() { int* p = alloc(2); free(p); return p[0]; }`,
		"abort":          `int main() { abort("boom"); return 0; }`,
		"assert":         `int main() { int x = 2; assert(x > 5); return 0; }`,
		"deep recursion": `int f(int n) { return f(n + 1); } int main() { return f(0); }`,
		"trap in cell store": `
int main() { int* p = alloc(2); int z = 0; p[1 / z] = 3; return 0; }`,
		"trap in call arg": `
int g(int x) { return x; } int main() { int z = 0; return g(7 / z); }`,
		"trap in return expr": `
int main() { int* p = alloc(1); free(p); return p[0] + 1; }`,
		"lucky overrun then fatal": `
int main() {
	int* p = alloc(5);
	p[6] = 1;
	int s = p[6];
	return s + p[900];
}`,
	}
	for name, src := range cases {
		diffAllVariants(t, name, src, 11)
	}
}

// TestEnginesAgreeOnFuelExhaustion pins the fuel-trap boundary: fuel can
// run out at an instruction or terminator charge, and both engines must
// stop on the same step with the same trap.
func TestEnginesAgreeOnFuelExhaustion(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 1000000; i++) { s = s + i; }
	return s;
}`
	for variant, p := range buildVariants(t, src) {
		for _, fuel := range []uint64{1, 2, 3, 50, 51, 52, 53, 54, 1000} {
			conf := Config{Fuel: fuel, Density: 1.0 / 13, CountdownSeed: 5, Profile: true}
			diffEngines(t, fmt.Sprintf("%s/fuel%d", variant, fuel), p, conf)
		}
	}
}

// TestEnginesAgreeWithIntrinsics covers host intrinsics (compiled as
// "fresh" builtin calls) including one that retains its argument slice.
func TestEnginesAgreeWithIntrinsics(t *testing.T) {
	src := `
int main() {
	int acc = 0;
	for (int i = 0; i < 10; i++) { acc = acc + probe2(i, acc); }
	return acc;
}`
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	builtins := map[string]minic.BuiltinSig{
		"probe2": {MinArgs: 2, MaxArgs: 2, Ret: minic.IntType},
	}
	p, err := cfg.Build(f, builtins, nil)
	if err != nil {
		t.Fatal(err)
	}
	var retained [][]Value
	conf := Config{
		Intrinsics: map[string]Intrinsic{
			"probe2": func(vm *VM, args []Value) (Value, error) {
				retained = append(retained, args) // must not alias scratch
				return IntVal(args[0].I + args[1].I%3), nil
			},
		},
	}
	tc := conf
	tc.Engine = EngineTree
	tree := Run(p, tc)
	treeRetained := retained
	for _, eng := range []Engine{EngineCompiled, EngineFused} {
		retained = nil
		ec := conf
		ec.Engine = eng
		assertSameResult(t, "intrinsics/"+eng.String(), tree, Run(p, ec))
		if !reflect.DeepEqual(treeRetained, retained) {
			t.Errorf("retained intrinsic args differ:\ntree: %v\n%s:   %v",
				treeRetained, eng, retained)
		}
	}
}

// TestCompiledSharedAcrossRuns checks the compile-once contract: one
// Compiled value reused for many runs with different seeds — on either
// bytecode engine — matches per-run tree-walker executions exactly.
func TestCompiledSharedAcrossRuns(t *testing.T) {
	src := progen.Generate(42, progen.DefaultConfig())
	p := buildVariants(t, src)["sampled"]
	code := Compile(p)
	for seed := int64(0); seed < 10; seed++ {
		conf := Config{Seed: seed, CountdownSeed: seed, Density: 1.0 / 17, TraceCapacity: 4}
		tc := conf
		tc.Engine = EngineTree
		tree := Run(p, tc)
		for _, eng := range []Engine{EngineCompiled, EngineFused} {
			ec := conf
			ec.Engine = eng
			assertSameResult(t, fmt.Sprintf("shared/seed%d/%s", seed, eng), tree, code.Run(ec))
		}
	}
}

// TestCmpMatchesLessEqual is the property behind the single-pass
// comparison fix: Cmp must agree with the historical Less/Equal pair on
// every kind combination.
func TestCmpMatchesLessEqual(t *testing.T) {
	obj1 := &Object{ID: 1, Data: make([]Value, 4), Size: 4}
	obj2 := &Object{ID: 2, Data: make([]Value, 4), Size: 4}
	vals := []Value{
		IntVal(-3), IntVal(0), IntVal(5),
		StrVal(""), StrVal("a"), StrVal("b"),
		NullVal(),
		PtrVal(obj1, 0), PtrVal(obj1, 2), PtrVal(obj2, 0),
	}
	for _, a := range vals {
		for _, b := range vals {
			c := a.Cmp(b)
			if got, want := c == -1, a.Less(b); got != want {
				t.Errorf("Cmp(%v,%v)=%d: lt=%v want %v", a, b, c, got, want)
			}
			if got, want := c == 0, a.Equal(b); got != want {
				t.Errorf("Cmp(%v,%v)=%d: eq=%v want %v", a, b, c, got, want)
			}
			if got, want := c == 1, b.Less(a); got != want {
				t.Errorf("Cmp(%v,%v)=%d: gt=%v want %v", a, b, c, got, want)
			}
			// Antisymmetry, including the unordered marker.
			rc := b.Cmp(a)
			if c == CmpUnordered != (rc == CmpUnordered) || (c != CmpUnordered && rc != -c) {
				t.Errorf("Cmp(%v,%v)=%d but Cmp(%v,%v)=%d", a, b, c, b, a, rc)
			}
		}
	}
}
