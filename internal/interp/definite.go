package interp

// Definite-assignment analysis over the unfused instruction stream.
//
// callC's prologue copies fn.zero into the pooled locals arena on every
// call; on call-heavy workloads that copy (a typedslicecopy of 48-byte
// Values plus its write barriers) is a measurable share of the run. The
// copy is unobservable when every local slot is written before it can
// be read on every path from entry: the stale values left in the reused
// arena are then dead on arrival. computeSkipZero proves that property
// with a forward may-be-uninitialized dataflow over the instruction
// CFG, and callC skips the copy for functions where it holds.
//
// The analysis runs on the unfused stream (fn.code): fusion neither
// adds nor removes local reads or writes, so the proof carries over to
// the fused stream, and the unfused opcode set is small enough to
// enumerate exactly. Anything unrecognized — an opcode or expression
// node kind outside the enumeration — conservatively keeps the copy.

// uninitSet is a bitset of local slots that may still hold arena
// garbage (rather than their declared zero value) at a program point.
type uninitSet []uint64

func (s uninitSet) has(slot int32) bool { return s[slot/64]&(1<<(uint(slot)%64)) != 0 }
func (s uninitSet) clear(slot int32)    { s[slot/64] &^= 1 << (uint(slot) % 64) }

// union merges src into s, reporting whether s grew.
func (s uninitSet) union(src uninitSet) bool {
	grew := false
	for i, w := range src {
		if s[i]|w != s[i] {
			s[i] |= w
			grew = true
		}
	}
	return grew
}

// computeSkipZero reports whether every read of a local slot in fn is
// dominated by a write to that slot, making the prologue's zero copy
// dead. Param slots are written by the prologue itself and start
// initialized.
func computeSkipZero(fn *compiledFunc) bool {
	nSlots := len(fn.zero)
	if nSlots == 0 {
		return true
	}
	code := fn.code
	nodes := fn.nodes
	words := (nSlots + 63) / 64

	// May-be-uninit set at entry to each pc; nil = not yet reached.
	states := make([]uninitSet, len(code))
	entry := make(uninitSet, words)
	for i := 0; i < nSlots; i++ {
		entry[i/64] |= 1 << (uint(i) % 64)
	}
	for _, s := range fn.paramSlots {
		entry.clear(s)
	}
	states[fn.entry] = entry

	// readsUninit walks an expression tree checking eLocal reads
	// against the current may-uninit set. Unknown node kinds fail the
	// analysis (reported as an uninit read).
	var readsUninit func(i int32, st uninitSet) bool
	readsUninit = func(i int32, st uninitSet) bool {
		n := &nodes[i]
		switch n.kind {
		case eConst, eStr, eNull, eGlobal, eNew:
			return false
		case eLocal:
			return st.has(n.slot)
		case eUn:
			return readsUninit(n.a, st)
		case eBin, eLoad:
			return readsUninit(n.a, st) || readsUninit(n.b, st)
		}
		return true
	}

	work := []int{fn.entry}
	// flow merges the out-state st into succ's in-state, enqueueing it
	// when the state grew (or was first reached). ok is cleared by the
	// transfer function below on any possibly-uninit read or on an
	// opcode outside the unfused set.
	flow := func(succ int32, st uninitSet) {
		if states[succ] == nil {
			states[succ] = append(uninitSet(nil), st...)
			work = append(work, int(succ))
		} else if states[succ].union(st) {
			work = append(work, int(succ))
		}
	}
	out := make(uninitSet, words)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		copy(out, states[pc])
		in := &code[pc]
		switch in.op {
		case opAssignLocal:
			if readsUninit(in.a, out) {
				return false
			}
			out.clear(in.slot)
			flow(int32(pc+1), out)
		case opAssignGlobal:
			if readsUninit(in.a, out) {
				return false
			}
			flow(int32(pc+1), out)
		case opAssignCell:
			if readsUninit(in.a, out) || readsUninit(in.b, out) || readsUninit(in.c, out) {
				return false
			}
			flow(int32(pc+1), out)
		case opCall, opCallBuiltin:
			for _, a := range in.args {
				if readsUninit(a, out) {
					return false
				}
			}
			if in.slot >= 0 && !in.dstGlobal {
				out.clear(in.slot)
			}
			flow(int32(pc+1), out)
		case opSite, opGuardedSite:
			for _, a := range in.args {
				if readsUninit(a, out) {
					return false
				}
			}
			flow(int32(pc+1), out)
		case opCountdownDec, opCDImport, opCDExport:
			flow(int32(pc+1), out)
		case opBad:
			// Traps unconditionally: no successor, no reads.
		case opGoto:
			flow(in.b, out)
		case opIf:
			if readsUninit(in.a, out) {
				return false
			}
			flow(in.b, out)
			flow(in.c, out)
		case opThreshold:
			flow(in.b, out)
			flow(in.c, out)
		case opRet:
			if readsUninit(in.a, out) {
				return false
			}
		case opRetVoid, opBadTerm:
			// No successor, no reads.
		default:
			return false
		}
	}
	return true
}
