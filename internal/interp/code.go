package interp

import (
	"fmt"

	"cbi/internal/cfg"
	"cbi/internal/minic"
)

// Engine selects which execution engine runs a program.
type Engine uint8

const (
	// EngineFused is the fused/threaded bytecode VM: the compiled
	// instruction stream is peephole-fused into superinstructions
	// (compare+branch, load+binop+store, constant-operand arithmetic, and
	// the sampling fast path countdown-decrement+branch) and dispatched
	// through a per-opcode handler table (direct threading) instead of an
	// enum switch. It is the zero value, i.e. the default.
	EngineFused Engine = iota
	// EngineCompiled is the compile-once bytecode VM with plain enum
	// switch dispatch and no fusion, retained as a differential oracle
	// for the fused engine (and as the speedup baseline in cbi-bench).
	EngineCompiled
	// EngineTree is the reference tree-walking interpreter, retained as
	// the differential oracle for both bytecode engines.
	EngineTree
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineTree:
		return "tree"
	case EngineCompiled:
		return "compiled"
	}
	return "fused"
}

// EngineOf parses an engine flag value ("" means the default).
func EngineOf(s string) (Engine, bool) {
	switch s {
	case "fused", "":
		return EngineFused, true
	case "compiled":
		return EngineCompiled, true
	case "tree":
		return EngineTree, true
	}
	return 0, false
}

// ----------------------------------------------------------------------------
// Compiled representation
//
// The tree walker spends most of its time on dispatch: interface type
// switches per instruction and per expression node, string comparisons
// per operator, map lookups per call, and a frame + locals allocation per
// call. The compiled form eliminates all four while preserving the tree
// walker's observable behaviour *exactly* — same counters, outcome, trap
// kind/position, step totals, sample counts, and profiler attribution.
//
// Step-count parity dictates the shape. The tree walker charges one step
// per instruction, one per block terminator, and one per expression node
// in pre-order, and a run can trap mid-expression; so expressions cannot
// be flattened to post-order stack code (an enclosing operator's
// pre-order charge would be missing at the trap point). Instead each
// function gets a pool of expression nodes evaluated recursively in the
// same pre-order — identical charging, but with enum dispatch, interned
// operators, and resolved slots instead of interface walks.

// copcode is a compiled instruction or terminator opcode. Terminator
// opcodes are grouped at the end so the exec loop can classify with one
// compare (op >= opGoto).
type copcode uint8

const (
	// Instructions (cfg.Instr analogues).
	opAssignLocal  copcode = iota // locals[slot] = eval(a)
	opAssignGlobal                // globals[slot] = eval(a)
	opAssignCell                  // eval(a)[...] — X=a, Ptr=b, Idx=c
	opCall                        // user function call
	opCallBuiltin                 // builtin / host-intrinsic call
	opSite                        // unconditional probe
	opGuardedSite                 // countdown-guarded probe (slow path)
	opCountdownDec                // countdown -= slot
	opCDImport                    // frame countdown = global countdown
	opCDExport                    // global countdown = frame countdown
	opBad                         // malformed instruction; traps when reached

	// Terminators (cfg.Term analogues).
	opGoto      // pc = b
	opIf        // if eval(a) then pc = b else pc = c
	opRet       // return eval(a)
	opRetVoid   // return 0
	opThreshold // if countdown > slot then pc = b else pc = c
	opBadTerm   // missing/malformed terminator; traps when reached

	// Superinstructions. These appear only in the fused stream (fcode)
	// built by fuseFunc and are executed only by the threaded engine's
	// handler table — the switch engine never sees them, and grouping
	// them after opBadTerm keeps its terminator classification
	// (op >= opGoto) untouched. Each fused handler replicates the exact
	// per-step fuel checks and profiler charges of the unfused sequence
	// it replaces (see fused.go), so fusion changes dispatch counts only,
	// never observable behaviour.
	opFAssignBin     // dst = binop(bop, leaf a, leaf b)
	opFAssignBinImm  // dst = binop(bop, leaf a, imm) — rhs was an int const
	opFAssignLoad    // dst = leaf(a)[leaf(b)]
	opFAssignLoadBin // dst = binop(bop, load-node a, leaf b)
	opFAssignCell    // leaf(b)[leaf(c)] = leaf(a)
	opFAssignCellBin // leaf(b)[leaf(c)] = binop(bin-node a)
	opFIfBin         // if binop(bop, leaf slot, leaf a) then pc=b else pc=c
	opFIfLeaf        // if leaf(a) then pc = b else pc = c
	opFRetLeaf       // return leaf(a)
	opFDecGoto       // countdown -= slot; pc = b (the sampling fast path)
	opFDecThreshold  // countdown -= slot; if countdown > imm then pc=b else pc=c
	opFDecIf         // countdown -= imm; then opIf on node a
	opFDecIfBin      // countdown -= imm; then opFIfBin
	opFDecIfLeaf     // countdown -= imm; then opFIfLeaf

	// Deeper assignment specializations for the RHS shapes the fleet
	// histogram shows dominating the remaining generic assigns.
	opFAssignLeaf     // dst = leaf(a)
	opFAssignBin3     // dst = binop(bop, binop(inner bin), leaf) — node a
	opFAssignLoadLoad // dst = binop(bop, load, load) — node a

	// Countdown-plumbing and call glue fusions. The instrumented streams
	// are dominated by the frame-countdown import/export dance around
	// calls and checkpoints (see the cbi-bench fleet histogram); these
	// fold those fixed pairs into single dispatches. Goto tails need no
	// opcodes at all: any sequential instruction followed by its block's
	// Goto carries the target in gtail and the dispatch loop runs the
	// goto step inline (fallthrough threading).
	opFDecExport       // countdown -= slot; global countdown = frame countdown
	opFExportCall      // cd export; then opCall
	opFImportThreshold // cd import; then opThreshold
	opFExportRet       // cd export; return eval(a)
	opFExportRetVoid   // cd export; return 0
	opFExportRetLeaf   // cd export; return leaf(a)

	// nOpcodes sizes the threaded engine's handler table and the
	// per-opcode execution histogram.
	nOpcodes
)

// opNames spells opcodes for the cbi-bench per-opcode histogram.
var opNames = [nOpcodes]string{
	opAssignLocal:    "assign_local",
	opAssignGlobal:   "assign_global",
	opAssignCell:     "assign_cell",
	opCall:           "call",
	opCallBuiltin:    "call_builtin",
	opSite:           "site",
	opGuardedSite:    "guarded_site",
	opCountdownDec:   "countdown_dec",
	opCDImport:       "cd_import",
	opCDExport:       "cd_export",
	opBad:            "bad",
	opGoto:           "goto",
	opIf:             "if",
	opRet:            "ret",
	opRetVoid:        "ret_void",
	opThreshold:      "threshold",
	opBadTerm:        "bad_term",
	opFAssignBin:     "f_assign_bin",
	opFAssignBinImm:  "f_assign_bin_imm",
	opFAssignLoad:    "f_assign_load",
	opFAssignLoadBin: "f_assign_load_bin",
	opFAssignCell:    "f_assign_cell",
	opFAssignCellBin: "f_assign_cell_bin",
	opFIfBin:         "f_if_bin",
	opFIfLeaf:        "f_if_leaf",
	opFRetLeaf:       "f_ret_leaf",
	opFDecGoto:       "f_dec_goto",
	opFDecThreshold:  "f_dec_threshold",
	opFDecIf:         "f_dec_if",
	opFDecIfBin:      "f_dec_if_bin",
	opFDecIfLeaf:     "f_dec_if_leaf",

	opFAssignLeaf:     "f_assign_leaf",
	opFAssignBin3:     "f_assign_bin3",
	opFAssignLoadLoad: "f_assign_load_load",

	opFDecExport:       "f_dec_export",
	opFExportCall:      "f_export_call",
	opFImportThreshold: "f_import_threshold",
	opFExportRet:       "f_export_ret",
	opFExportRetVoid:   "f_export_ret_void",
	opFExportRetLeaf:   "f_export_ret_leaf",
}

func (op copcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// opKinds maps instruction opcodes to the profiler path kind their steps
// belong to, mirroring instrKind on the cfg.Instr forms.
var opKinds = [opBadTerm + 1]PathKind{
	opAssignLocal:  PathBaseline,
	opAssignGlobal: PathBaseline,
	opAssignCell:   PathBaseline,
	opCall:         PathBaseline,
	opCallBuiltin:  PathBaseline,
	opSite:         PathSlowSite,
	opGuardedSite:  PathSlowSite,
	opCountdownDec: PathFastDec,
	opCDImport:     PathFastDec,
	opCDExport:     PathFastDec,
	opBad:          PathBaseline,
}

// cinstr is one compiled instruction or terminator.
type cinstr struct {
	op        copcode
	fresh     bool  // opCallBuiltin: host intrinsic — args need a fresh slice
	dstGlobal bool  // call result goes to a global slot
	bop       uint8 // fused ops: interned cfg.BinOp
	slot      int32 // dst slot (calls/assigns), countdown delta, threshold weight
	a, b, c   int32 // expression node indices or jump-target pcs (see opcodes)
	gtail     int32 // fused stream: 1 + pc of a fused trailing Goto (0 = none)
	imm       int64 // fused ops: constant operand / threshold weight
	args      []int32
	site      *cfg.Site
	callee    *compiledFunc
	name      string // callee/builtin name, or opBad diagnostic
	pos       minic.Pos
}

// ekind discriminates compiled expression nodes.
type ekind uint8

const (
	eConst ekind = iota
	eStr
	eNull
	eLocal
	eGlobal
	eUn
	eBin
	eLoad
	eNew
	eBad
)

// enode is one compiled expression node. Children are indices into the
// owning function's node pool; evaluation recurses in the same pre-order
// as the tree walker so step charges land node-for-node identically.
type enode struct {
	kind ekind
	op   uint8 // cfg.UnOp or cfg.BinOp
	slot int32 // variable slot (eLocal/eGlobal) or field count (eNew)
	a, b int32 // child node indices
	val  Value  // precomputed constant (eConst/eStr/eNull)
	sval string // eBad diagnostic
	pos  minic.Pos
}

// compiledFunc is one function lowered to a flat instruction stream.
// code/entry is the unfused stream the switch engine runs; fcode/fentry
// is the superinstruction stream the threaded engine runs (built from
// code by fuseFunc, sharing the same node pool).
type compiledFunc struct {
	name           string
	code           []cinstr
	nodes          []enode
	zero           []Value // locals template: declared-type zero values
	skipZero       bool    // every local written before read: prologue copy dead
	paramSlots     []int32
	localCountdown bool
	entry          int // pc of the entry block
	fcode          []cinstr
	fentry         int
}

// Compiled is a program lowered once to bytecode. It is immutable after
// Compile returns and safe to share across any number of concurrent
// runs — the fleet compiles once and hands the same Compiled to every
// worker goroutine.
type Compiled struct {
	prog  *cfg.Program
	funcs map[string]*compiledFunc
	main  *compiledFunc
}

// Run executes the compiled program's main under conf and builds the
// report. Concurrent calls are safe; all per-run state lives in the VM.
func (c *Compiled) Run(conf Config) Result {
	return c.NewVM(conf).Run()
}

// NewVM prepares a VM bound to this compiled program without running it
// (used by harnesses that install intrinsics referring to the VM). The
// bytecode engine is taken from conf (EngineFused by default); a tree
// request falls back to the default, since Compiled has no tree form.
func (c *Compiled) NewVM(conf Config) *VM {
	if conf.Engine == EngineTree {
		conf.Engine = EngineFused
	}
	vm := New(c.prog, conf)
	vm.code = c
	return vm
}

// cframe is a pooled call frame of the compiled engine. Frames are
// reused per call depth and the locals arena is reused across calls, so
// a run allocates at most one frame per stack depth ever reached.
type cframe struct {
	fn     *compiledFunc
	locals []Value
	cd     int64
}

// frameAt returns the pooled frame for call depth d (1-based).
func (vm *VM) frameAt(d int) *cframe {
	for len(vm.cframes) < d {
		vm.cframes = append(vm.cframes, &cframe{})
	}
	return vm.cframes[d-1]
}

func (vm *VM) cdGetC(fr *cframe) int64 {
	if fr.fn.localCountdown {
		return fr.cd
	}
	return vm.cd
}

func (vm *VM) cdSetC(fr *cframe, v int64) {
	if fr.fn.localCountdown {
		fr.cd = v
	} else {
		vm.cd = v
	}
}

// ----------------------------------------------------------------------------
// Execution

// callC runs a compiled function and returns its value. Both bytecode
// engines mirror vm.call step for step: the same fuel charges in the
// same order, the same profiler synchronization points, and the same
// trap positions. The frame prologue is shared; the body dispatches to
// the enum-switch loop (EngineCompiled) or the fused/threaded loop
// (EngineFused, see fused.go).
func (vm *VM) callC(fn *compiledFunc, args []Value) (Value, error) {
	// The epilogue (profiler exit, depth pop) runs explicitly on every
	// return path rather than via defer: nothing in the engines panics
	// past this frame (traps are error returns), and the two defers are
	// measurable per-call overhead on call-heavy workloads.
	vm.depth++
	if vm.depth > vm.maxDepth {
		vm.depth--
		return Value{}, &Trap{Kind: TrapStackOverflow, Msg: fn.name}
	}
	if vm.prof != nil {
		vm.prof.enter(fn.name, vm.steps)
	}
	fr := vm.frameAt(vm.depth)
	fr.fn = fn
	if cap(fr.locals) >= len(fn.zero) {
		fr.locals = fr.locals[:len(fn.zero)]
	} else {
		fr.locals = make([]Value, len(fn.zero))
	}
	if !fn.skipZero {
		// Functions where some local may be read before it is written
		// get the declared-zero template; the rest skip the copy — the
		// stale values left in the reused arena are proven dead by
		// computeSkipZero (definite.go).
		copy(fr.locals, fn.zero)
	}
	for i, s := range fn.paramSlots {
		if i < len(args) {
			fr.locals[s] = args[i]
		} else {
			fr.locals[s] = fn.zero[s]
		}
	}
	fr.cd = 0

	var ret Value
	var err error
	if vm.engine == EngineCompiled {
		ret, err = vm.execSwitch(fn, fr)
	} else {
		ret, err = vm.execFused(fn, fr)
	}
	if vm.prof != nil {
		vm.prof.exit(vm.steps)
	}
	vm.depth--
	return ret, err
}

// execSwitch is the unfused enum-switch dispatch loop.
func (vm *VM) execSwitch(fn *compiledFunc, fr *cframe) (Value, error) {
	code := fn.code
	nodes := fn.nodes
	pc := fn.entry
	for {
		in := &code[pc]
		if vm.ops != nil {
			vm.ops[in.op]++
		}
		if in.op >= opGoto {
			// Terminator: one fuel-checked step, then dispatch. On fuel
			// exhaustion the charge is baseline, as in the tree walker.
			if err := vm.step(minic.Pos{}); err != nil {
				if vm.prof != nil {
					vm.prof.take(PathBaseline, vm.steps)
				}
				return Value{}, err
			}
			thresh := false
			switch in.op {
			case opGoto:
				pc = int(in.b)
			case opIf:
				v, err := vm.evalC(fr, nodes, in.a)
				if err != nil {
					// No take: the deferred profiler exit claims these
					// steps as baseline, exactly like the tree walker.
					return Value{}, err
				}
				if v.Truthy() {
					pc = int(in.b)
				} else {
					pc = int(in.c)
				}
			case opRetVoid:
				return IntVal(0), nil
			case opRet:
				return vm.evalC(fr, nodes, in.a)
			case opThreshold:
				thresh = true
				if vm.cdGetC(fr) > int64(in.slot) {
					pc = int(in.b)
				} else {
					pc = int(in.c)
				}
			default:
				return Value{}, &Trap{Kind: TrapBadProgram, Msg: "missing terminator"}
			}
			if vm.prof != nil {
				if thresh {
					vm.prof.take(PathThreshold, vm.steps)
				} else {
					vm.prof.take(PathBaseline, vm.steps)
				}
			}
			continue
		}

		// Instruction: one fuel-checked step, the op body, then the
		// profiler charge — which, as in the tree walker, runs even when
		// the body (or the fuel check itself) produced the error.
		err := vm.step(minic.Pos{})
		if err == nil {
			switch in.op {
			case opAssignLocal:
				var v Value
				if v, err = vm.evalC(fr, nodes, in.a); err == nil {
					fr.locals[in.slot] = v
				}
			case opAssignGlobal:
				var v Value
				if v, err = vm.evalC(fr, nodes, in.a); err == nil {
					vm.globals[in.slot] = v
				}
			case opAssignCell:
				err = vm.assignCellC(fr, nodes, in)
			case opCall:
				err = vm.callUserC(fr, nodes, in)
			case opCallBuiltin:
				err = vm.callBuiltinC(fr, nodes, in)
			case opSite:
				err = vm.fireProbeC(fr, nodes, in.site, in.args)
			case opGuardedSite:
				cd := vm.cdGetC(fr) - 1
				if cd == 0 {
					if err = vm.fireProbeC(fr, nodes, in.site, in.args); err != nil {
						break // countdown write skipped, as in the tree walker
					}
					cd = vm.source.Next()
				}
				vm.cdSetC(fr, cd)
			case opCountdownDec:
				vm.cdSetC(fr, vm.cdGetC(fr)-int64(in.slot))
			case opCDImport:
				fr.cd = vm.cd
			case opCDExport:
				vm.cd = fr.cd
			default:
				err = &Trap{Kind: TrapBadProgram, Msg: in.name}
			}
		}
		if vm.prof != nil {
			vm.prof.take(opKinds[in.op], vm.steps)
		}
		if err != nil {
			return Value{}, err
		}
		pc++
	}
}

// assignCellC stores eval(X) into Ptr[Idx], evaluating X, Ptr, Idx in
// the tree walker's order.
func (vm *VM) assignCellC(fr *cframe, nodes []enode, in *cinstr) error {
	v, err := vm.evalC(fr, nodes, in.a)
	if err != nil {
		return err
	}
	ptr, err := vm.evalC(fr, nodes, in.b)
	if err != nil {
		return err
	}
	idx, err := vm.evalC(fr, nodes, in.c)
	if err != nil {
		return err
	}
	// Valid stores resolve in place, mirroring evalC's load fast path.
	if ptr.Kind == KPtr && idx.Kind == KInt && !ptr.Obj.Freed {
		if off := ptr.Off + int(idx.I); off >= 0 && off < len(ptr.Obj.Data) {
			ptr.Obj.Data[off] = v
			return nil
		}
	}
	cell, err := resolveCell(ptr, idx, in.pos)
	if err != nil {
		return err
	}
	*cell = v
	return nil
}

// callUserC evaluates arguments into the LIFO scratch stack and invokes
// the pre-resolved callee. The scratch window is safe to reuse because
// callC copies arguments into the callee's locals before evaluating
// anything that could push further arguments.
func (vm *VM) callUserC(fr *cframe, nodes []enode, in *cinstr) error {
	base := len(vm.argStack)
	for _, a := range in.args {
		// Leaf arguments (the common case at call sites) skip the evalC
		// call; the step charge is identical.
		var v Value
		if c := &nodes[a]; c.kind <= eGlobal {
			vm.steps++
			v = vm.leafC(fr, c)
		} else {
			var err error
			if v, err = vm.evalC(fr, nodes, a); err != nil {
				vm.argStack = vm.argStack[:base]
				return err
			}
		}
		vm.argStack = append(vm.argStack, v)
	}
	if in.callee == nil {
		vm.argStack = vm.argStack[:base]
		return &Trap{Kind: TrapBadProgram, Pos: in.pos, Msg: "unknown function " + in.name}
	}
	ret, err := vm.callC(in.callee, vm.argStack[base:])
	vm.argStack = vm.argStack[:base]
	if err != nil {
		return err
	}
	if in.slot >= 0 {
		if in.dstGlobal {
			vm.globals[in.slot] = ret
		} else {
			fr.locals[in.slot] = ret
		}
	}
	return nil
}

// callBuiltinC invokes a builtin. Standard builtins never retain their
// argument slice, so they share the non-nesting scratch buffer; host
// intrinsics (fresh) get a fresh slice since they may keep it.
func (vm *VM) callBuiltinC(fr *cframe, nodes []enode, in *cinstr) error {
	var args []Value
	if in.fresh {
		args = make([]Value, 0, len(in.args))
	} else {
		args = vm.scratch[:0]
	}
	for _, a := range in.args {
		var v Value
		if c := &nodes[a]; c.kind <= eGlobal {
			vm.steps++
			v = vm.leafC(fr, c)
		} else {
			var err error
			if v, err = vm.evalC(fr, nodes, a); err != nil {
				return err
			}
		}
		args = append(args, v)
	}
	if !in.fresh {
		vm.scratch = args[:0]
	}
	ret, err := vm.callBuiltin(in.name, args, in.pos)
	if err != nil {
		return err
	}
	if in.slot >= 0 {
		if in.dstGlobal {
			vm.globals[in.slot] = ret
		} else {
			fr.locals[in.slot] = ret
		}
	}
	return nil
}

// fireProbeC is fireProbe for the compiled engine: sample accounting
// first (argument evaluation may trap), then the shared probe body.
func (vm *VM) fireProbeC(fr *cframe, nodes []enode, s *cfg.Site, argNodes []int32) error {
	vm.recordSample(s)
	args := vm.scratch[:0]
	for _, a := range argNodes {
		v, err := vm.evalC(fr, nodes, a)
		if err != nil {
			return err
		}
		args = append(args, v)
	}
	vm.scratch = args[:0]
	return vm.probe(s, args)
}

// leafC fetches a leaf node's (kind <= eGlobal) value. Kept small so it
// inlines into evalC's operand fast paths.
func (vm *VM) leafC(fr *cframe, n *enode) Value {
	if n.kind == eLocal {
		return fr.locals[n.slot]
	}
	if n.kind == eGlobal {
		return vm.globals[n.slot]
	}
	return n.val
}

// evalC evaluates a compiled expression node. The pre-order step charge
// at entry makes step totals — including at mid-expression trap points —
// identical to the tree walker's eval.
//
// Operand positions take a non-recursive fast path when the child is a
// leaf: the child's +1 charge is applied in place. This cannot be
// observed — leaves never trap, and expression charges are not
// fuel-checked, so the step total at every possible stop point (an
// operator trap, an instruction boundary) is unchanged.
func (vm *VM) evalC(fr *cframe, nodes []enode, i int32) (Value, error) {
	vm.steps++
	n := &nodes[i]
	switch n.kind {
	case eConst, eStr, eNull:
		return n.val, nil
	case eLocal:
		return fr.locals[n.slot], nil
	case eGlobal:
		return vm.globals[n.slot], nil
	case eUn:
		var v Value
		var err error
		if c := &nodes[n.a]; c.kind <= eGlobal {
			vm.steps++
			v = vm.leafC(fr, c)
		} else if v, err = vm.evalC(fr, nodes, n.a); err != nil {
			return Value{}, err
		}
		return unop(cfg.UnOp(n.op), v)
	case eBin:
		var a, b Value
		var err error
		if c := &nodes[n.a]; c.kind <= eGlobal {
			vm.steps++
			a = vm.leafC(fr, c)
		} else if a, err = vm.evalC(fr, nodes, n.a); err != nil {
			return Value{}, err
		}
		if c := &nodes[n.b]; c.kind <= eGlobal {
			vm.steps++
			b = vm.leafC(fr, c)
		} else if b, err = vm.evalC(fr, nodes, n.b); err != nil {
			return Value{}, err
		}
		if a.Kind == KInt && b.Kind == KInt {
			// Integer operators resolved in place; the semantics are those
			// of binop on two KInt values (Cmp on int pairs is the plain
			// three-way compare). Div and mod fall through for the
			// zero-divisor trap.
			switch cfg.BinOp(n.op) {
			case cfg.BinAdd:
				return IntVal(a.I + b.I), nil
			case cfg.BinSub:
				return IntVal(a.I - b.I), nil
			case cfg.BinMul:
				return IntVal(a.I * b.I), nil
			case cfg.BinEq:
				return boolVal(a.I == b.I), nil
			case cfg.BinNe:
				return boolVal(a.I != b.I), nil
			case cfg.BinLt:
				return boolVal(a.I < b.I), nil
			case cfg.BinLe:
				return boolVal(a.I <= b.I), nil
			case cfg.BinGt:
				return boolVal(a.I > b.I), nil
			case cfg.BinGe:
				return boolVal(a.I >= b.I), nil
			}
		}
		return binop(cfg.BinOp(n.op), a, b, n.pos)
	case eLoad:
		var ptr, idx Value
		var err error
		if c := &nodes[n.a]; c.kind <= eGlobal {
			vm.steps++
			ptr = vm.leafC(fr, c)
		} else if ptr, err = vm.evalC(fr, nodes, n.a); err != nil {
			return Value{}, err
		}
		if c := &nodes[n.b]; c.kind <= eGlobal {
			vm.steps++
			idx = vm.leafC(fr, c)
		} else if idx, err = vm.evalC(fr, nodes, n.b); err != nil {
			return Value{}, err
		}
		// Valid loads resolve in place; anything else (null, freed,
		// out-of-bounds, non-int index) re-derives its trap in resolveCell.
		if ptr.Kind == KPtr && idx.Kind == KInt && !ptr.Obj.Freed {
			if off := ptr.Off + int(idx.I); off >= 0 && off < len(ptr.Obj.Data) {
				return ptr.Obj.Data[off], nil
			}
		}
		cell, err := resolveCell(ptr, idx, n.pos)
		if err != nil {
			return Value{}, err
		}
		return *cell, nil
	case eNew:
		v := vm.alloc(int(n.slot))
		// Structs get exactly their field count: field access cannot
		// overrun, matching C struct semantics.
		v.Obj.Data = v.Obj.Data[:n.slot]
		v.Obj.Size = int(n.slot)
		return v, nil
	}
	return Value{}, &Trap{Kind: TrapBadProgram, Msg: n.sval}
}
