package interp

import (
	"strings"
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/minic"
)

func run(t *testing.T, src string, conf Config) Result {
	t.Helper()
	p := buildProg(t, src, nil)
	return Run(p, conf)
}

func buildProg(t *testing.T, src string, inst cfg.Instrumenter) *cfg.Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(f, nil, inst)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunArithmetic(t *testing.T) {
	res := run(t, `
int main() {
	int a = 6;
	int b = 7;
	return a * b - 2 + 10 / 5 - 8 % 3;
}`, Config{})
	if res.Outcome != OutcomeOK || res.ExitCode != 40 {
		t.Fatalf("%+v", res)
	}
}

func TestRunControlFlow(t *testing.T) {
	res := run(t, `
int fib(int n) {
	if (n <= 1) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`, Config{})
	if res.ExitCode != 144 {
		t.Fatalf("fib(12) = %d", res.ExitCode)
	}
}

func TestRunLoopsAndArrays(t *testing.T) {
	res := run(t, `
int main() {
	int* buf = alloc(10);
	for (int i = 0; i < 10; i++) { buf[i] = i * i; }
	int s = 0;
	int i = 0;
	while (i < 10) { s += buf[i]; i++; }
	return s;
}`, Config{})
	if res.ExitCode != 285 {
		t.Fatalf("sum of squares = %d", res.ExitCode)
	}
}

func TestRunStructsAndLists(t *testing.T) {
	res := run(t, `
struct node { int val; struct node* next; };
int main() {
	struct node* head = null;
	for (int i = 1; i <= 5; i++) {
		struct node* n = new node;
		n->val = i;
		n->next = head;
		head = n;
	}
	int s = 0;
	while (head != null) {
		s += head->val;
		head = head->next;
	}
	return s;
}`, Config{})
	if res.ExitCode != 15 {
		t.Fatalf("list sum = %d", res.ExitCode)
	}
}

func TestRunShortCircuit(t *testing.T) {
	// p[0] must not be evaluated when p is null.
	res := run(t, `
int main() {
	int* p = null;
	if (p != null && p[0] == 3) { return 1; }
	if (p == null || p[1] == 9) { return 7; }
	return 2;
}`, Config{})
	if res.Outcome != OutcomeOK || res.ExitCode != 7 {
		t.Fatalf("%+v %v", res, res.Trap)
	}
}

func TestRunOutput(t *testing.T) {
	res := run(t, `
int main() {
	print("x=", 0 + 3, "\n");
	printi(42);
	return 0;
}`, Config{})
	if res.Output != "x=3\n42\n" {
		t.Fatalf("output: %q", res.Output)
	}
}

func TestRunStringBuiltins(t *testing.T) {
	res := run(t, `
int main() {
	string s = "hello";
	if (streq(s, "hello") && strlen(s) == 5 && strget(s, 1) == 'e') { return 0; }
	return 1;
}`, Config{})
	if res.ExitCode != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		src  string
		kind TrapKind
	}{
		{"int main() { int* p = null; return p[0]; }", TrapNullDeref},
		{"int main() { int* p = alloc(4); return p[100]; }", TrapOutOfBounds},
		{"int main() { int* p = alloc(4); free(p); return p[0]; }", TrapUseAfterFree},
		{"int main() { int z = 0; return 5 / z; }", TrapDivByZero},
		{"int main() { int z = 0; return 5 % z; }", TrapDivByZero},
		{"int main() { assert(1 == 2); return 0; }", TrapAssertFailed},
		{"int main() { abort(); return 0; }", TrapAbort},
		{"int r(int n) { return r(n + 1); } int main() { return r(0); }", TrapStackOverflow},
		{"int main() { while (1) { } return 0; }", TrapFuelExhausted},
	}
	for _, tc := range cases {
		conf := Config{}
		if tc.kind == TrapFuelExhausted {
			conf.Fuel = 10000
		}
		res := run(t, tc.src, conf)
		if res.Outcome != OutcomeCrash || res.Trap == nil || res.Trap.Kind != tc.kind {
			t.Errorf("%q: got %+v, want trap %v", tc.src, res.Trap, tc.kind)
		}
	}
}

func TestAllocatorSlackAllowsLuckyOverrun(t *testing.T) {
	// alloc(5) has capacity 8: indices 5..7 are silent overruns, index 8
	// crashes. This is the §3.3.3 "C programs can get lucky" model.
	res := run(t, `
int main() {
	int* p = alloc(5);
	p[6] = 1;
	return p[6];
}`, Config{})
	if res.Outcome != OutcomeOK || res.ExitCode != 1 {
		t.Fatalf("lucky overrun crashed: %+v %v", res, res.Trap)
	}
	res = run(t, `
int main() {
	int* p = alloc(5);
	p[8] = 1;
	return 0;
}`, Config{})
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapOutOfBounds {
		t.Fatalf("unlucky overrun did not crash: %+v", res)
	}
}

func TestPointerArithmeticAndComparison(t *testing.T) {
	res := run(t, `
int main() {
	int* p = alloc(8);
	int* q = p + 3;
	*q = 11;
	if (p < q && q > p && p != q && p == q - 3) { return p[3]; }
	return -1;
}`, Config{})
	if res.ExitCode != 11 {
		t.Fatalf("%+v %v", res, res.Trap)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	src := "int main() { return rand(1000000); }"
	a := run(t, src, Config{Seed: 5})
	b := run(t, src, Config{Seed: 5})
	c := run(t, src, Config{Seed: 6})
	if a.ExitCode != b.ExitCode {
		t.Error("same seed should repeat")
	}
	if a.ExitCode == c.ExitCode {
		t.Error("different seeds should differ (almost surely)")
	}
}

func TestIntrinsics(t *testing.T) {
	f, err := minic.Parse("t.mc", "int main() { return magic(); }")
	if err != nil {
		t.Fatal(err)
	}
	builtins := minic.DefaultBuiltins()
	builtins["magic"] = minic.BuiltinSig{Ret: minic.IntType}
	p, err := cfg.Build(f, builtins, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{Intrinsics: map[string]Intrinsic{
		"magic": func(vm *VM, args []Value) (Value, error) { return IntVal(99), nil },
	}})
	if res.ExitCode != 99 {
		t.Fatalf("%+v", res)
	}
}

func TestGlobalsInitialization(t *testing.T) {
	res := run(t, `
int g = 41;
int* gp;
string gs = "ok";
int main() {
	if (gp == null && streq(gs, "ok")) { g++; }
	return g;
}`, Config{})
	if res.ExitCode != 42 {
		t.Fatalf("%+v", res)
	}
}

// ----------------------------------------------------------------------------
// Instrumented execution

const probeProgram = `
int work(int* buf, int n) {
	int total = 0;
	for (int i = 0; i < n; i++) {
		total += buf[i];
	}
	return total;
}
int main() {
	int* buf = alloc(64);
	for (int i = 0; i < 64; i++) {
		buf[i] = i - 32;
	}
	int r = 0;
	for (int k = 0; k < 100; k++) {
		r = work(buf, 64);
	}
	return r;
}
`

func instrumented(t *testing.T, src string, set instrument.SchemeSet) *cfg.Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := instrument.Build(f, nil, set)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnconditionalCountersAreExact(t *testing.T) {
	p := instrumented(t, probeProgram, instrument.SchemeSet{Bounds: true})
	res := Run(p, Config{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("%+v %v", res, res.Trap)
	}
	// Total bounds probes: 64 stores + 100*64 loads = 6464 observations,
	// none violating, so all counters stay zero but samples fire.
	if res.SamplesTaken != 6464 {
		t.Errorf("samples: %d, want 6464", res.SamplesTaken)
	}
	for i, c := range res.Counters {
		if c != 0 {
			t.Errorf("counter %d (%s) = %d on a correct program", i, p.PredicateName(i), c)
		}
	}
}

func TestReturnsCountersObserveSigns(t *testing.T) {
	p := instrumented(t, `
int f(int x) { return x; }
int main() {
	int a = f(-5);
	int b = f(0);
	int c = f(3);
	int d = f(9);
	return a + b + c + d;
}`, instrument.SchemeSet{Returns: true})
	res := Run(p, Config{})
	// Sites: 4 calls to f. Each has 3 counters. Find per-sign totals.
	var neg, zero, pos uint64
	for _, s := range p.Sites {
		neg += res.Counters[s.CounterBase]
		zero += res.Counters[s.CounterBase+1]
		pos += res.Counters[s.CounterBase+2]
	}
	if neg != 1 || zero != 1 || pos != 2 {
		t.Errorf("neg=%d zero=%d pos=%d", neg, zero, pos)
	}
}

func TestSampledExecutionPreservesSemantics(t *testing.T) {
	srcs := []string{
		probeProgram,
		`int main() { int* p = alloc(3); p[0] = 7; int i = 1; while (i < 3) { p[i] = p[i-1] * 2; i++; } return p[2]; }`,
		`struct n { int v; struct n* nx; };
		 int main() {
			struct n* h = null;
			for (int i = 0; i < 20; i++) { struct n* x = new n; x->v = i; x->nx = h; h = x; }
			int s = 0;
			while (h != null) { s += h->v; h = h->nx; }
			return s;
		 }`,
	}
	for _, src := range srcs {
		f, err := minic.Parse("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		base, err := instrument.BuildBaseline(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := Run(base, Config{Seed: 1})
		if want.Outcome != OutcomeOK {
			t.Fatalf("baseline crashed: %v", want.Trap)
		}

		uncond, err := instrument.Build(f, nil, instrument.SchemeSet{Bounds: true, ScalarPairs: true})
		if err != nil {
			t.Fatal(err)
		}
		gotU := Run(uncond, Config{Seed: 1})
		if gotU.Outcome != OutcomeOK || gotU.ExitCode != want.ExitCode || gotU.Output != want.Output {
			t.Errorf("unconditional changed semantics: %d vs %d", gotU.ExitCode, want.ExitCode)
		}

		for _, density := range []float64{1, 1.0 / 3, 1.0 / 100} {
			for seed := int64(0); seed < 4; seed++ {
				sp := instrument.Sample(uncond, instrument.DefaultOptions())
				got := Run(sp, Config{Seed: 1, Density: density, CountdownSeed: seed})
				if got.Outcome != OutcomeOK || got.ExitCode != want.ExitCode || got.Output != want.Output {
					t.Errorf("density %g seed %d changed semantics: exit %d vs %d (trap %v)",
						density, seed, got.ExitCode, want.ExitCode, got.Trap)
				}
			}
		}
	}
}

func TestSampledCountersApproximateDensityTimesOccurrences(t *testing.T) {
	p := instrumented(t, probeProgram, instrument.SchemeSet{Bounds: true})
	sp := instrument.Sample(p, instrument.DefaultOptions())
	const runs = 300
	density := 1.0 / 10
	var total uint64
	for seed := int64(0); seed < runs; seed++ {
		res := Run(sp, Config{Seed: 1, Density: density, CountdownSeed: seed})
		if res.Outcome != OutcomeOK {
			t.Fatalf("crash: %v", res.Trap)
		}
		total += res.SamplesTaken
	}
	// 6464 dynamic site crossings per run; expect ~646 samples per run.
	mean := float64(total) / runs
	want := 6464 * density
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean samples per run %.1f, want ~%.1f", mean, want)
	}
}

func TestSampledVariantsAgree(t *testing.T) {
	// All transformation variants must preserve semantics and sample at
	// statistically similar rates.
	p := instrumented(t, probeProgram, instrument.SchemeSet{Bounds: true})
	variants := map[string]instrument.Options{
		"default":    instrument.DefaultOptions(),
		"nocoalesce": {LocalizeCountdown: true},
		"global":     {CoalesceDecrements: true},
		"separate":   {CoalesceDecrements: true, LocalizeCountdown: true, SeparateCompilation: true},
		"persite":    {LocalizeCountdown: true, CheckPerSite: true},
	}
	wantExit := Run(p, Config{Seed: 1}).ExitCode
	density := 1.0 / 7
	const runs = 120
	totals := map[string]float64{}
	for name, opt := range variants {
		sp := instrument.Sample(p, opt)
		var samples uint64
		for seed := int64(0); seed < runs; seed++ {
			res := Run(sp, Config{Seed: 1, Density: density, CountdownSeed: seed})
			if res.Outcome != OutcomeOK || res.ExitCode != wantExit {
				t.Fatalf("%s: semantics broken: exit %d want %d (%v)", name, res.ExitCode, wantExit, res.Trap)
			}
			samples += res.SamplesTaken
		}
		totals[name] = float64(samples) / runs
	}
	want := 6464 * density
	for name, mean := range totals {
		if mean < want*0.85 || mean > want*1.15 {
			t.Errorf("%s: mean samples %.1f, want ~%.1f", name, mean, want)
		}
	}
}

func TestAssertSchemeSampledAbortsOnViolation(t *testing.T) {
	src := `
int main() {
	for (int i = 0; i < 1000; i++) {
		assert(i < 990);
	}
	return 0;
}`
	p := instrumented(t, src, instrument.SchemeSet{Asserts: true})
	// Unconditional: the assert fires eagerly.
	res := Run(p, Config{})
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapAssertFailed {
		t.Fatalf("unconditional assert: %+v", res)
	}
	// Sampled at density 1: every probe fires, still crashes.
	sp := instrument.Sample(p, instrument.DefaultOptions())
	res = Run(sp, Config{Density: 1})
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapAssertFailed {
		t.Fatalf("density-1 sampled assert: %+v", res)
	}
	// Sampled sparsely: usually survives (10 violating iterations out of
	// 1000, density 1/1000 -> ~1% crash chance per run).
	sp2 := instrument.Sample(p, instrument.DefaultOptions())
	crashes := 0
	for seed := int64(0); seed < 50; seed++ {
		r := Run(sp2, Config{Density: 1.0 / 1000, CountdownSeed: seed})
		if r.Outcome == OutcomeCrash {
			crashes++
		}
	}
	if crashes > 25 {
		t.Errorf("sparse sampling crashed %d/50 runs; assertions are not being skipped", crashes)
	}
}

func TestNoMainIsBadProgram(t *testing.T) {
	res := run(t, "int f() { return 0; }", Config{})
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapBadProgram {
		t.Fatalf("%+v", res)
	}
}

func TestOutputGoesToConfiguredWriter(t *testing.T) {
	f, err := minic.Parse("t.mc", `int main() { print("hi"); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res := Run(p, Config{Stdout: &sb})
	if sb.String() != "hi" {
		t.Errorf("writer got %q", sb.String())
	}
	if res.Output != "" {
		t.Errorf("result should not duplicate output: %q", res.Output)
	}
}
