package interp

import (
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/minic"
)

// benchProgram is a sampled workload shaped like the hot paths the
// fusion pass targets: tight loops of scalar arithmetic, array
// loads/stores, and comparisons, under bounds+branches instrumentation
// so the countdown fast path dominates.
func benchProgram(b *testing.B) *cfg.Program {
	src := `
int work(int n) {
	int* a = alloc(64);
	int s = 0;
	for (int i = 0; i < 64; i++) { a[i] = i * 3; }
	for (int r = 0; r < n; r++) {
		for (int i = 0; i < 64; i++) {
			int v = a[i];
			s = s + v;
			if (s > 100000) { s = s - 100000; }
			a[i] = v + 1;
		}
	}
	return s;
}
int main() { return work(200); }`
	f, err := minic.Parse("bench.mc", src)
	if err != nil {
		b.Fatal(err)
	}
	p, err := cfg.Build(f, nil, &instrument.Schemes{Set: SchemeSetAll()})
	if err != nil {
		b.Fatal(err)
	}
	return instrument.Sample(p, instrument.DefaultOptions())
}

// SchemeSetAll mirrors the differential suite's allSchemes for benches.
func SchemeSetAll() instrument.SchemeSet {
	return instrument.SchemeSet{
		Returns: true, ScalarPairs: true, Branches: true, Bounds: true, Asserts: true,
	}
}

// BenchmarkEngineSteps compares steps/s of the three engines on the
// same sampled program; the CI speedup gate lives in cbi-bench fleet,
// this is the inner-loop view.
func BenchmarkEngineSteps(b *testing.B) {
	p := benchProgram(b)
	code := Compile(p)
	for _, eng := range []Engine{EngineTree, EngineCompiled, EngineFused} {
		b.Run(eng.String(), func(b *testing.B) {
			var steps uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				conf := Config{Seed: int64(i), CountdownSeed: int64(i), Density: 1.0 / 100, Engine: eng}
				var res Result
				if eng == EngineTree {
					res = Run(p, conf)
				} else {
					res = code.Run(conf)
				}
				if res.Outcome != OutcomeOK {
					b.Fatalf("run failed: %v", res.Trap)
				}
				steps += res.Steps
			}
			b.SetBytes(0)
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}
