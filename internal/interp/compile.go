package interp

import (
	"fmt"

	"cbi/internal/cfg"
)

// stdBuiltins is the set of builtins callBuiltin handles before
// consulting host intrinsics. Membership is decided at compile time so
// the compiled engine knows which calls may retain their argument slice
// (host intrinsics) and which can share the scratch buffer.
var stdBuiltins = map[string]bool{
	"print": true, "printi": true, "alloc": true, "free": true,
	"streq": true, "strlen": true, "strget": true, "rand": true,
	"abort": true, "assert": true, "min": true, "max": true,
}

// Compile lowers a CFG program to the compiled bytecode form. The result
// is immutable and safe to share across concurrent runs; harnesses that
// execute the same program many times (the fleet, benchmarks) should
// compile once and reuse it.
func Compile(p *cfg.Program) *Compiled {
	c := &Compiled{prog: p, funcs: make(map[string]*compiledFunc, len(p.Funcs))}
	// Shells first, so calls resolve forward and mutually recursive
	// references to stable pointers.
	for _, fn := range p.FuncList {
		c.funcs[fn.Name] = &compiledFunc{name: fn.Name}
	}
	for name, fn := range p.Funcs {
		if c.funcs[name] == nil { // registered outside FuncList
			c.funcs[name] = &compiledFunc{name: fn.Name}
		}
	}
	for _, fn := range p.FuncList {
		c.compileFunc(fn, c.funcs[fn.Name])
	}
	for name, fn := range p.Funcs {
		if c.funcs[name].code == nil {
			c.compileFunc(fn, c.funcs[name])
		}
	}
	c.main = c.funcs["main"]
	return c
}

// funcCompiler accumulates one function's instruction stream and
// expression node pool.
type funcCompiler struct {
	c     *Compiled
	nodes []enode
	pcOf  map[*cfg.Block]int
}

func (c *Compiled) compileFunc(fn *cfg.Func, out *compiledFunc) {
	out.localCountdown = fn.LocalCountdown
	out.zero = make([]Value, len(fn.Locals))
	for i, l := range fn.Locals {
		out.zero[i] = ZeroFor(l.Type)
	}
	out.paramSlots = make([]int32, len(fn.Params))
	for i, p := range fn.Params {
		out.paramSlots[i] = int32(p.Slot)
	}
	if fn.Entry == nil {
		out.code = []cinstr{{op: opBadTerm}}
		out.entry = 0
		out.fcode = out.code
		out.fentry = 0
		return
	}

	// Lay out every block reachable from the entry (the tree walker
	// follows block pointers, so the Blocks list is not authoritative),
	// in discovery order. Each block contributes its instructions plus
	// exactly one terminator op, preserving the walker's one-step-per-
	// terminator charge even for fall-through gotos.
	fc := &funcCompiler{c: c, pcOf: make(map[*cfg.Block]int)}
	var blocks []*cfg.Block
	seen := map[*cfg.Block]bool{fn.Entry: true}
	queue := []*cfg.Block{fn.Entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		blocks = append(blocks, b)
		for _, s := range cfg.Succs(b.Term) {
			if s != nil && !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	pc := 0
	for _, b := range blocks {
		fc.pcOf[b] = pc
		pc += len(b.Instrs) + 1
	}
	code := make([]cinstr, 0, pc)
	for _, b := range blocks {
		for _, in := range b.Instrs {
			code = append(code, fc.instr(in))
		}
		code = append(code, fc.term(b.Term))
	}
	out.code = code
	out.nodes = fc.nodes
	out.entry = fc.pcOf[fn.Entry]

	// Second pass: peephole-fuse the stream for the threaded engine.
	starts := make([]int, len(blocks))
	for i, b := range blocks {
		starts[i] = fc.pcOf[b]
	}
	fuseFunc(out, starts)

	// With the streams final, prove (or refuse) the prologue zero-copy
	// elision; see definite.go.
	out.skipZero = computeSkipZero(out)
}

func (fc *funcCompiler) instr(in cfg.Instr) cinstr {
	switch x := in.(type) {
	case *cfg.Assign:
		switch lv := x.LV.(type) {
		case *cfg.VarRef:
			op := opAssignLocal
			if lv.V.Global {
				op = opAssignGlobal
			}
			return cinstr{op: op, slot: int32(lv.V.Slot), a: fc.expr(x.X), pos: x.Pos}
		case *cfg.CellRef:
			// Evaluation order (X, Ptr, Idx) and the Assign position for
			// cell traps both mirror the tree walker's store path.
			return cinstr{op: opAssignCell,
				a: fc.expr(x.X), b: fc.expr(lv.Ptr), c: fc.expr(lv.Idx), pos: x.Pos}
		default:
			// Unknown lvalues still evaluate X before trapping in the
			// walker, but no such lvalue is constructible outside cfg;
			// compile to a plain trap.
			return cinstr{op: opBad, name: "unknown lvalue", pos: x.Pos}
		}
	case *cfg.Call:
		args := make([]int32, len(x.Args))
		for i, a := range x.Args {
			args[i] = fc.expr(a)
		}
		in := cinstr{slot: -1, args: args, name: x.Callee, pos: x.Pos}
		if x.Dst != nil {
			in.slot = int32(x.Dst.Slot)
			in.dstGlobal = x.Dst.Global
		}
		if x.Builtin {
			in.op = opCallBuiltin
			in.fresh = !stdBuiltins[x.Callee]
		} else {
			in.op = opCall
			in.callee = fc.c.funcs[x.Callee] // nil → runtime "unknown function" trap
		}
		return in
	case *cfg.SiteInstr:
		return cinstr{op: opSite, site: x.Site, args: fc.siteArgs(x.Site)}
	case *cfg.GuardedSite:
		return cinstr{op: opGuardedSite, site: x.Site, args: fc.siteArgs(x.Site)}
	case *cfg.CountdownDec:
		return cinstr{op: opCountdownDec, slot: int32(x.N)}
	case *cfg.CDImport:
		return cinstr{op: opCDImport}
	case *cfg.CDExport:
		return cinstr{op: opCDExport}
	default:
		return cinstr{op: opBad, name: fmt.Sprintf("unknown instruction %T", in)}
	}
}

func (fc *funcCompiler) siteArgs(s *cfg.Site) []int32 {
	args := make([]int32, len(s.Args))
	for i, a := range s.Args {
		args[i] = fc.expr(a)
	}
	return args
}

func (fc *funcCompiler) term(t cfg.Term) cinstr {
	switch x := t.(type) {
	case *cfg.Goto:
		return cinstr{op: opGoto, b: fc.pc(x.To)}
	case *cfg.If:
		return cinstr{op: opIf, a: fc.expr(x.Cond), b: fc.pc(x.Then), c: fc.pc(x.Else)}
	case *cfg.Ret:
		if x.X == nil {
			return cinstr{op: opRetVoid}
		}
		return cinstr{op: opRet, a: fc.expr(x.X)}
	case *cfg.Threshold:
		return cinstr{op: opThreshold, slot: int32(x.Weight), b: fc.pc(x.Fast), c: fc.pc(x.Slow)}
	default:
		return cinstr{op: opBadTerm}
	}
}

func (fc *funcCompiler) pc(b *cfg.Block) int32 {
	pc, ok := fc.pcOf[b]
	if !ok {
		// Unreachable: every terminator target was discovered by the
		// layout walk. Kept as a defensive trap rather than a panic.
		return -1
	}
	return int32(pc)
}

// expr lowers one expression tree into the node pool and returns its
// root index. Node indices are allocated pre-order (parent before
// children), matching the walker's charge order under evalC.
func (fc *funcCompiler) expr(e cfg.Expr) int32 {
	i := int32(len(fc.nodes))
	fc.nodes = append(fc.nodes, enode{})
	switch x := e.(type) {
	case *cfg.Const:
		fc.nodes[i] = enode{kind: eConst, val: IntVal(x.V)}
	case *cfg.StrConst:
		fc.nodes[i] = enode{kind: eStr, val: StrVal(x.S)}
	case *cfg.Null:
		fc.nodes[i] = enode{kind: eNull, val: NullVal()}
	case *cfg.VarUse:
		k := eLocal
		if x.V.Global {
			k = eGlobal
		}
		fc.nodes[i] = enode{kind: k, slot: int32(x.V.Slot)}
	case *cfg.Un:
		a := fc.expr(x.X)
		fc.nodes[i] = enode{kind: eUn, op: uint8(x.Op), a: a}
	case *cfg.Bin:
		a := fc.expr(x.X)
		b := fc.expr(x.Y)
		fc.nodes[i] = enode{kind: eBin, op: uint8(x.Op), a: a, b: b, pos: x.Pos}
	case *cfg.Load:
		a := fc.expr(x.Ptr)
		b := fc.expr(x.Idx)
		fc.nodes[i] = enode{kind: eLoad, a: a, b: b, pos: x.Pos}
	case *cfg.NewObj:
		fc.nodes[i] = enode{kind: eNew, slot: int32(x.NumFields)}
	default:
		fc.nodes[i] = enode{kind: eBad, sval: fmt.Sprintf("unknown expression %T", e)}
	}
	return i
}
