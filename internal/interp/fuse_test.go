package interp

import (
	"fmt"
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/minic"
)

// Lowering edge cases the fusion pass must not break. Each case is run
// through diffAllVariants (baseline / unconditional / sampled, with and
// without the profiler) so any divergence in steps, traps, counters, or
// profiler attribution between the fused engine and the two oracles
// fails the test.

// TestFusionJumpTargetsLandOnBlockEntries pins the invariant fusion
// relies on: every jump target in the compiled stream is a block entry,
// so a fused pair can never be entered mid-pair. The sources are shaped
// so that branch targets land immediately after fusable tails (loop
// back edges onto dec+if blocks, breaks out of them).
func TestFusionJumpTargetsLandOnBlockEntries(t *testing.T) {
	cases := map[string]string{
		"backedge onto fused tail": `
int main() {
	int s = 0;
	for (int i = 0; i < 50; i++) {
		s = s + i;
		if (s > 40) { s = s - 7; }
	}
	return s;
}`,
		"nested loops sharing header": `
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) {
		for (int j = 0; j < 8; j++) {
			if (j == i) { s = s + 1; } else { s = s + 2; }
		}
	}
	return s;
}`,
		"while with mid-loop exit": `
int main() {
	int i = 0;
	int s = 0;
	while (i < 100) {
		i = i + 3;
		if (i > 60) { return s; }
		s = s + i;
	}
	return s;
}`,
	}
	for name, src := range cases {
		diffAllVariants(t, "jump/"+name, src, 3)
	}

	// Structural check: every branch target in every fused stream is a
	// pc that the remap produced (i.e. a fused block entry), in range.
	for name, src := range cases {
		for variant, p := range buildVariants(t, src) {
			code := Compile(p)
			for _, fn := range code.funcs {
				entries := map[int32]bool{int32(fn.fentry): true}
				// Recover entries from the branch targets themselves,
				// then verify each is in range and starts an instruction.
				for i := range fn.fcode {
					in := &fn.fcode[i]
					if in.gtail != 0 {
						entries[in.gtail-1] = true
					}
					switch in.op {
					case opGoto, opFDecGoto:
						entries[in.b] = true
					case opIf, opThreshold, opFIfBin, opFIfLeaf,
						opFDecThreshold, opFDecIf, opFDecIfBin, opFDecIfLeaf,
						opFImportThreshold:
						entries[in.b] = true
						entries[in.c] = true
					}
				}
				for pc := range entries {
					if pc < 0 || int(pc) >= len(fn.fcode) {
						t.Errorf("%s/%s/%s: fused branch target %d out of range [0,%d)",
							name, variant, fn.name, pc, len(fn.fcode))
					}
				}
			}
		}
	}
}

// TestFusionSitesAndThresholdsAtBlockEntry exercises sampled streams
// where instrumentation puts sites, guarded sites, and threshold
// checkpoints at the very start of blocks — directly adjacent to the
// fused tails of their predecessors.
func TestFusionSitesAndThresholdsAtBlockEntry(t *testing.T) {
	cases := map[string]string{
		"sites at loop entry": `
int f(int* a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s = s + a[i]; }
	return s;
}
int main() {
	int* a = alloc(16);
	for (int i = 0; i < 16; i++) { a[i] = i; }
	return f(a, 16);
}`,
		"checkpoint-heavy recursion": `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`,
		"branchy scalar pairs": `
int main() {
	int a = 3;
	int b = 9;
	int s = 0;
	for (int i = 0; i < 40; i++) {
		if (a < b) { s = s + 1; }
		if (s != i) { b = b - 1; }
		a = a + 1;
	}
	return s;
}`,
	}
	for name, src := range cases {
		diffAllVariants(t, "entry/"+name, src, 7)
	}
}

// TestFusionShortCircuitConditions covers nested && / || conditions:
// the lowering expands them into chains of single-condition blocks, so
// fusion sees many tiny blocks whose terminators are leaf or
// comparison ifs, frequently preceded by coalesced decrements.
func TestFusionShortCircuitConditions(t *testing.T) {
	cases := map[string]string{
		"nested and-or": `
int main() {
	int s = 0;
	for (int i = 0; i < 30; i++) {
		if (i > 3 && (i < 20 || s > 50) && i != 11) { s = s + i; }
	}
	return s;
}`,
		"short-circuit with traps avoided": `
int main() {
	int* p = alloc(4);
	p[0] = 1;
	int s = 0;
	for (int i = 0; i < 12; i++) {
		if (i < 4 && p[i] != 0) { s = s + 1; }
		if (i >= 4 || p[i] == 0) { s = s + 2; }
		p[i % 4] = s;
	}
	return s;
}`,
		"or chain in while": `
int main() {
	int i = 0;
	int j = 100;
	while (i < 20 || j > 90) {
		i = i + 1;
		j = j - 1;
	}
	return i + j;
}`,
	}
	for name, src := range cases {
		diffAllVariants(t, "shortcircuit/"+name, src, 13)
	}
}

// TestFusionFuelTrapInsideSuperinstruction sweeps fuel one step at a
// time across a sampled program whose hot stream is dominated by
// superinstructions. Every fuel value makes some run die at a different
// charge — including between the two fuel-checked halves of dec+branch
// fusions and mid-batch inside assign fusions — and the step count,
// trap, counters, and profiler totals must match the unfused engines
// exactly at each one.
func TestFusionFuelTrapInsideSuperinstruction(t *testing.T) {
	sweep(t, "super", `
int main() {
	int* a = alloc(8);
	int s = 0;
	for (int i = 0; i < 8; i++) { a[i] = i * 2; }
	for (int r = 0; r < 6; r++) {
		for (int i = 0; i < 8; i++) {
			int v = a[i];
			s = s + v;
			if (s > 37) { s = s - 19; }
			a[i] = v + 1;
		}
	}
	return s;
}`)

	// A block ending in a generic (unspecialized, unbounded-charge)
	// assignment followed by its back-edge Goto: the assignment carries a
	// fused goto tail, and its expression charges can cross the fuel
	// limit before the tail's own fuel-checked step runs — the tail must
	// still trap at exactly the unfused step total.
	sweep(t, "gtail-after-unbounded-assign", `
int main() {
	int s = 1;
	int i = 0;
	while (i < 6) {
		i = i + 1;
		s = (s + i) + (s + i + 1);
	}
	return s;
}`)
}

func sweep(t *testing.T, name, src string) {
	for variant, p := range buildVariants(t, src) {
		// Find the full run length, then sweep every prefix.
		full := Run(p, Config{Engine: EngineTree, Density: 1.0 / 11, CountdownSeed: 9})
		if full.Outcome != OutcomeOK {
			t.Fatalf("%s/%s: full run failed: %v", name, variant, full.Trap)
		}
		for fuel := uint64(1); fuel <= full.Steps; fuel++ {
			conf := Config{Fuel: fuel, Density: 1.0 / 11, CountdownSeed: 9, Profile: true}
			diffEngines(t, fmt.Sprintf("%s/%s/fuel%d", name, variant, fuel), p, conf)
			// And without the profiler: that is the configuration where
			// the fused engine's in-loop fast paths are live, so the fuel
			// boundary lands inside (and right after) their batched
			// charges.
			conf.Profile = false
			diffEngines(t, fmt.Sprintf("%s/%s/noprof/fuel%d", name, variant, fuel), p, conf)
		}
	}
}

// TestFusionFormsExpectedSuperinstructions is the structural view: the
// canonical hot shapes actually fuse. A sampled loop over array
// loads/stores must contain dec+branch fusions (the one-dispatch fast
// path), fused compare-and-branch, and fused load/store arithmetic.
func TestFusionFormsExpectedSuperinstructions(t *testing.T) {
	src := `
int main() {
	int* a = alloc(32);
	int s = 0;
	for (int i = 0; i < 32; i++) { a[i] = i * 3; }
	for (int i = 0; i < 32; i++) {
		int v = a[i];
		s = s + v;
		if (s > 100) { s = s - 50; }
		a[i] = v + 1;
	}
	return s;
}`
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	uncond, err := cfg.Build(f, nil, &instrument.Schemes{Set: allSchemes})
	if err != nil {
		t.Fatal(err)
	}
	p := instrument.Sample(uncond, instrument.DefaultOptions())
	code := Compile(p)
	counts := map[copcode]int{}
	for _, fn := range code.funcs {
		for i := range fn.fcode {
			counts[fn.fcode[i].op]++
		}
	}
	for _, want := range []copcode{
		opFDecGoto, opFDecIfBin, opFAssignBinImm, opFAssignBin,
		opFAssignLoad, opFAssignCellBin, opFIfBin,
	} {
		if counts[want] == 0 {
			t.Errorf("expected fused stream to contain %v; got histogram %v", want, counts)
		}
	}
	// And fusion must leave no decrement unfused ahead of a branch: the
	// sampling fast path is one dispatch wherever the transform put the
	// coalesced dec at block end.
	if n := counts[opCountdownDec]; n > counts[opFDecGoto]+counts[opFDecIfBin] {
		t.Errorf("unfused CountdownDec count %d suspiciously high: %v", n, counts)
	}
}
