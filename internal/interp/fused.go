package interp

import (
	"cbi/internal/cfg"
	"cbi/internal/minic"
)

// The fused/threaded execution engine (EngineFused). Dispatch is direct
// threaded: one indexed call through a per-opcode handler table per
// instruction, over the superinstruction stream built by fuseFunc.
//
// The engine preserves the observable-equivalence contract of DESIGN
// §9/§15 against both oracles: every handler charges the exact fuel
// steps, in the exact order and with the exact profiler path kinds, of
// the unfused sequence it replaces. Superinstructions batch only the
// expression-node charges that cannot be observed individually (leaves
// never trap and expression charges are not fuel-checked), and split
// the batch at every point where a trap can surface, so the step total
// at any stop point — a mid-superinstruction trap included — is
// bit-identical to the switch engine and the tree walker.

// fhandler executes one fused instruction at pc and returns the next
// pc, or retPC when the function returns (value left in vm.fret).
type fhandler func(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error)

// retPC is the handler sentinel for "function returned".
const retPC = -1

// fhandlers is the direct-threading dispatch table. Filled in init to
// break the package-level reference cycle handlers → callC → fhandlers.
// Sized 256 so indexing by the uint8 opcode needs no bounds check in
// the dispatch loop; slots past nOpcodes are unreachable.
var fhandlers [256]fhandler

func init() {
	table := [nOpcodes]fhandler{
		opAssignLocal:    fhAssign,
		opAssignGlobal:   fhAssign,
		opAssignCell:     fhAssignCell,
		opCall:           fhCall,
		opCallBuiltin:    fhCallBuiltin,
		opSite:           fhSite,
		opGuardedSite:    fhGuardedSite,
		opCountdownDec:   fhCountdownDec,
		opCDImport:       fhCDImport,
		opCDExport:       fhCDExport,
		opBad:            fhBad,
		opGoto:           fhGoto,
		opIf:             fhIf,
		opRet:            fhRet,
		opRetVoid:        fhRetVoid,
		opThreshold:      fhThreshold,
		opBadTerm:        fhBadTerm,
		opFAssignBin:     fhFAssignBin,
		opFAssignBinImm:  fhFAssignBinImm,
		opFAssignLoad:    fhFAssignLoad,
		opFAssignLoadBin: fhFAssignLoadBin,
		opFAssignCell:    fhFAssignCell,
		opFAssignCellBin: fhFAssignCellBin,
		opFIfBin:         fhFIfBin,
		opFIfLeaf:        fhFIfLeaf,
		opFRetLeaf:       fhFRetLeaf,
		opFDecGoto:       fhFDecGoto,
		opFDecThreshold:  fhFDecThreshold,
		opFDecIf:         fhFDecIf,
		opFDecIfBin:      fhFDecIfBin,
		opFDecIfLeaf:     fhFDecIfLeaf,

		opFAssignLeaf:     fhFAssignLeaf,
		opFAssignBin3:     fhFAssignBin3,
		opFAssignLoadLoad: fhFAssignLoadLoad,

		opFDecExport:       fhFDecExport,
		opFExportCall:      fhFExportCall,
		opFImportThreshold: fhFImportThreshold,
		opFExportRet:       fhFExportRet,
		opFExportRetVoid:   fhFExportRetVoid,
		opFExportRetLeaf:   fhFExportRetLeaf,
	}
	copy(fhandlers[:], table[:])
}

// execFused is the threaded dispatch loop. The stream and node pool are
// cached at the top of the frame; handlers receive both so the hot path
// never reloads them through fn.
func (vm *VM) execFused(fn *compiledFunc, fr *cframe) (Value, error) {
	if vm.ops != nil {
		return vm.execFusedCounting(fn, fr)
	}
	code := fn.fcode
	nodes := fn.nodes
	pc := fn.fentry
	// fastLim gates the in-loop fast-path bodies below: `vm.steps <
	// fastLim` holds exactly when no profiler is attached and at least 16
	// more fuel-checked steps cannot exhaust fuel — and no fast arm
	// charges more than 15 steps before its optional gtail step. Within
	// the guard an op's only observable effects are its steps delta and
	// its state writes, which the slim bodies share with the exact
	// handlers, so the shortcut is unobservable. The handlers remain the
	// reference — and the path every op takes under a profiler, near the
	// fuel limit, on a cold opcode, or on an operand shape the fast body
	// doesn't cover.
	var fastLim uint64
	if vm.prof == nil && vm.fuel >= 16 {
		fastLim = vm.fuel - 15
	}
	for {
		in := &code[pc]
		if vm.steps < fastLim {
			// Fast arms for the hottest ops per the fleet dispatch
			// histogram. Arms that complete `continue` directly; arms
			// whose operand shape falls outside the slim body fall
			// through to the exact dispatch below. Ops whose charges are
			// bounded (≤ 15 before the tail) may take the gtail goto step
			// inline; ops that run unbounded expression or call work
			// (assign, call, ret, if) must re-check the guard first, since
			// their un-fuel-checked expression charges may have crossed it.
			switch in.op {
			case opFIfBin:
				l, r := vm.leafC(fr, &nodes[in.slot]), vm.leafC(fr, &nodes[in.a])
				if l.Kind == KInt && r.Kind == KInt {
					if t, ok := binIntCond(cfg.BinOp(in.bop), l.I, r.I); ok {
						vm.steps += 4
						if pc = int(in.c); t {
							pc = int(in.b)
						}
						continue
					}
				}
			case opAssignLocal, opAssignGlobal:
				vm.steps++
				v, err := vm.evalC(fr, nodes, in.a)
				if err != nil {
					return Value{}, err
				}
				if in.op == opAssignGlobal {
					vm.globals[in.slot] = v
				} else {
					fr.locals[in.slot] = v
				}
				if in.gtail == 0 {
					pc++
					continue
				}
				if vm.steps < fastLim {
					vm.steps++
					pc = int(in.gtail - 1)
					continue
				}
				next, err := gotoHalf(vm, in.gtail-1)
				if err != nil {
					return Value{}, err
				}
				pc = next
				continue
			case opFImportThreshold:
				vm.steps += 2
				fr.cd = vm.cd
				if pc = int(in.c); vm.cdGetC(fr) > int64(in.slot) {
					pc = int(in.b)
				}
				continue
			case opThreshold:
				vm.steps++
				if pc = int(in.c); vm.cdGetC(fr) > int64(in.slot) {
					pc = int(in.b)
				}
				continue
			case opFAssignCell:
				vm.steps += 4
				if err := storeCell(vm.leafC(fr, &nodes[in.b]), vm.leafC(fr, &nodes[in.c]),
					vm.leafC(fr, &nodes[in.a]), in.pos); err != nil {
					return Value{}, err
				}
				if in.gtail != 0 {
					vm.steps++
					pc = int(in.gtail - 1)
				} else {
					pc++
				}
				continue
			case opFDecExport:
				vm.steps += 2
				vm.cdSetC(fr, vm.cdGetC(fr)-int64(in.slot))
				vm.cd = fr.cd
				if in.gtail != 0 {
					vm.steps++
					pc = int(in.gtail - 1)
				} else {
					pc++
				}
				continue
			case opFAssignBinImm:
				if a := vm.leafC(fr, &nodes[in.a]); a.Kind == KInt {
					if v, ok := binIntVal(cfg.BinOp(in.bop), a.I, in.imm); ok {
						vm.steps += 4
						if in.dstGlobal {
							vm.globals[in.slot] = v
						} else {
							fr.locals[in.slot] = v
						}
						if in.gtail != 0 {
							vm.steps++
							pc = int(in.gtail - 1)
						} else {
							pc++
						}
						continue
					}
				}
			case opFAssignBin:
				l, r := vm.leafC(fr, &nodes[in.a]), vm.leafC(fr, &nodes[in.b])
				if l.Kind == KInt && r.Kind == KInt {
					if v, ok := binIntVal(cfg.BinOp(in.bop), l.I, r.I); ok {
						vm.steps += 4
						if in.dstGlobal {
							vm.globals[in.slot] = v
						} else {
							fr.locals[in.slot] = v
						}
						if in.gtail != 0 {
							vm.steps++
							pc = int(in.gtail - 1)
						} else {
							pc++
						}
						continue
					}
				}
			case opGoto:
				vm.steps++
				pc = int(in.b)
				continue
			case opCall, opFExportCall:
				vm.steps++
				if in.op == opFExportCall {
					vm.steps++ // the export half's own step
					vm.cd = fr.cd
				}
				if err := vm.callUserC(fr, nodes, in); err != nil {
					return Value{}, err
				}
				if in.gtail == 0 {
					pc++
					continue
				}
				if vm.steps < fastLim {
					vm.steps++
					pc = int(in.gtail - 1)
					continue
				}
				next, err := gotoHalf(vm, in.gtail-1)
				if err != nil {
					return Value{}, err
				}
				pc = next
				continue
			case opFAssignLeaf:
				vm.steps += 2
				v := vm.leafC(fr, &nodes[in.a])
				if in.dstGlobal {
					vm.globals[in.slot] = v
				} else {
					fr.locals[in.slot] = v
				}
				if in.gtail != 0 {
					vm.steps++
					pc = int(in.gtail - 1)
				} else {
					pc++
				}
				continue
			case opFDecGoto:
				vm.steps += 2
				vm.cdSetC(fr, vm.cdGetC(fr)-int64(in.slot))
				pc = int(in.b)
				continue
			case opFDecIfBin:
				l, r := vm.leafC(fr, &nodes[in.slot]), vm.leafC(fr, &nodes[in.a])
				if l.Kind == KInt && r.Kind == KInt {
					if t, ok := binIntCond(cfg.BinOp(in.bop), l.I, r.I); ok {
						vm.steps += 5
						vm.cdSetC(fr, vm.cdGetC(fr)-in.imm)
						if pc = int(in.c); t {
							pc = int(in.b)
						}
						continue
					}
				}
			case opFDecIfLeaf:
				vm.steps += 3
				vm.cdSetC(fr, vm.cdGetC(fr)-in.imm)
				if pc = int(in.c); vm.leafC(fr, &nodes[in.a]).Truthy() {
					pc = int(in.b)
				}
				continue
			case opFDecThreshold:
				vm.steps += 2
				vm.cdSetC(fr, vm.cdGetC(fr)-int64(in.slot))
				if pc = int(in.c); vm.cdGetC(fr) > in.imm {
					pc = int(in.b)
				}
				continue
			case opFIfLeaf:
				vm.steps += 2
				if pc = int(in.c); vm.leafC(fr, &nodes[in.a]).Truthy() {
					pc = int(in.b)
				}
				continue
			case opFRetLeaf:
				vm.steps += 2
				return vm.leafC(fr, &nodes[in.a]), nil
			case opRetVoid:
				vm.steps++
				return IntVal(0), nil
			case opFExportRetLeaf:
				vm.steps += 3
				vm.cd = fr.cd
				return vm.leafC(fr, &nodes[in.a]), nil
			case opFExportRetVoid:
				vm.steps += 2
				vm.cd = fr.cd
				return IntVal(0), nil
			case opRet:
				vm.steps++
				v, err := vm.evalC(fr, nodes, in.a)
				if err != nil {
					return Value{}, err
				}
				return v, nil
			case opFExportRet:
				vm.steps += 2
				vm.cd = fr.cd
				v, err := vm.evalC(fr, nodes, in.a)
				if err != nil {
					return Value{}, err
				}
				return v, nil
			case opIf:
				vm.steps++
				v, err := vm.evalC(fr, nodes, in.a)
				if err != nil {
					return Value{}, err
				}
				if pc = int(in.c); v.Truthy() {
					pc = int(in.b)
				}
				continue
			case opFDecIf:
				vm.steps += 2
				vm.cdSetC(fr, vm.cdGetC(fr)-in.imm)
				v, err := vm.evalC(fr, nodes, in.a)
				if err != nil {
					return Value{}, err
				}
				if pc = int(in.c); v.Truthy() {
					pc = int(in.b)
				}
				continue
			case opAssignCell:
				vm.steps++
				if err := vm.assignCellC(fr, nodes, in); err != nil {
					return Value{}, err
				}
				if in.gtail == 0 {
					pc++
					continue
				}
				if vm.steps < fastLim {
					vm.steps++
					pc = int(in.gtail - 1)
					continue
				}
				next, err := gotoHalf(vm, in.gtail-1)
				if err != nil {
					return Value{}, err
				}
				pc = next
				continue
			case opCallBuiltin:
				vm.steps++
				if err := vm.callBuiltinC(fr, nodes, in); err != nil {
					return Value{}, err
				}
				if in.gtail == 0 {
					pc++
					continue
				}
				if vm.steps < fastLim {
					vm.steps++
					pc = int(in.gtail - 1)
					continue
				}
				next, err := gotoHalf(vm, in.gtail-1)
				if err != nil {
					return Value{}, err
				}
				pc = next
				continue
			case opCountdownDec:
				vm.steps++
				vm.cdSetC(fr, vm.cdGetC(fr)-int64(in.slot))
				if in.gtail != 0 {
					vm.steps++
					pc = int(in.gtail - 1)
				} else {
					pc++
				}
				continue
			case opCDImport:
				vm.steps++
				fr.cd = vm.cd
				if in.gtail != 0 {
					vm.steps++
					pc = int(in.gtail - 1)
				} else {
					pc++
				}
				continue
			case opCDExport:
				vm.steps++
				vm.cd = fr.cd
				if in.gtail != 0 {
					vm.steps++
					pc = int(in.gtail - 1)
				} else {
					pc++
				}
				continue
			case opFAssignLoad:
				if v, ok := loadFast(vm.leafC(fr, &nodes[in.a]), vm.leafC(fr, &nodes[in.b])); ok {
					vm.steps += 4
					if in.dstGlobal {
						vm.globals[in.slot] = v
					} else {
						fr.locals[in.slot] = v
					}
					if in.gtail != 0 {
						vm.steps++
						pc = int(in.gtail - 1)
					} else {
						pc++
					}
					continue
				}
			case opFAssignLoadBin:
				ln := &nodes[in.a]
				if av, ok := loadFast(vm.leafC(fr, &nodes[ln.a]), vm.leafC(fr, &nodes[ln.b])); ok && av.Kind == KInt {
					if r := vm.leafC(fr, &nodes[in.b]); r.Kind == KInt {
						if v, ok := binIntVal(cfg.BinOp(in.bop), av.I, r.I); ok {
							vm.steps += 6
							if in.dstGlobal {
								vm.globals[in.slot] = v
							} else {
								fr.locals[in.slot] = v
							}
							if in.gtail != 0 {
								vm.steps++
								pc = int(in.gtail - 1)
							} else {
								pc++
							}
							continue
						}
					}
				}
			case opFAssignCellBin:
				n := &nodes[in.a]
				l, r := vm.leafC(fr, &nodes[n.a]), vm.leafC(fr, &nodes[n.b])
				if l.Kind == KInt && r.Kind == KInt {
					if v, ok := binIntVal(cfg.BinOp(n.op), l.I, r.I); ok {
						vm.steps += 6
						if err := storeCell(vm.leafC(fr, &nodes[in.b]), vm.leafC(fr, &nodes[in.c]),
							v, in.pos); err != nil {
							return Value{}, err
						}
						if in.gtail != 0 {
							vm.steps++
							pc = int(in.gtail - 1)
						} else {
							pc++
						}
						continue
					}
				}
			case opFAssignBin3:
				n := &nodes[in.a]
				inner := &nodes[n.a]
				il, ir := vm.leafC(fr, &nodes[inner.a]), vm.leafC(fr, &nodes[inner.b])
				if il.Kind == KInt && ir.Kind == KInt {
					if l, ok := binIntVal(cfg.BinOp(inner.op), il.I, ir.I); ok {
						if r := vm.leafC(fr, &nodes[n.b]); r.Kind == KInt {
							if v, ok := binIntVal(cfg.BinOp(in.bop), l.I, r.I); ok {
								vm.steps += 6
								if in.dstGlobal {
									vm.globals[in.slot] = v
								} else {
									fr.locals[in.slot] = v
								}
								if in.gtail != 0 {
									vm.steps++
									pc = int(in.gtail - 1)
								} else {
									pc++
								}
								continue
							}
						}
					}
				}
			case opFAssignLoadLoad:
				n := &nodes[in.a]
				ln, rn := &nodes[n.a], &nodes[n.b]
				if l, ok := loadFast(vm.leafC(fr, &nodes[ln.a]), vm.leafC(fr, &nodes[ln.b])); ok && l.Kind == KInt {
					if r, ok := loadFast(vm.leafC(fr, &nodes[rn.a]), vm.leafC(fr, &nodes[rn.b])); ok && r.Kind == KInt {
						if v, ok := binIntVal(cfg.BinOp(in.bop), l.I, r.I); ok {
							vm.steps += 8
							if in.dstGlobal {
								vm.globals[in.slot] = v
							} else {
								fr.locals[in.slot] = v
							}
							if in.gtail != 0 {
								vm.steps++
								pc = int(in.gtail - 1)
							} else {
								pc++
							}
							continue
						}
					}
				}
			}
		}
		// Exact dispatch through the handler table.
		next, err := fhandlers[in.op](vm, fr, nodes, in, pc)
		if err != nil {
			return Value{}, err
		}
		if in.gtail != 0 {
			// Fused goto tail (set only on sequential instructions, whose
			// handlers fell through to pc+1): run the block-ending Goto's
			// step inline instead of dispatching it.
			if next, err = gotoHalf(vm, in.gtail-1); err != nil {
				return Value{}, err
			}
		}
		if next < 0 {
			return vm.fret, nil
		}
		pc = next
	}
}

// execFusedCounting is the dispatch-histogram variant of the loop
// (Config.CountOps): every op goes through its exact handler, with the
// per-opcode counter bump the hot loop is freed of. The dispatch mix is
// the same stream either way, and the handlers are the observably
// identical reference for the fast arms, so histogram runs differ only
// in the counting itself.
func (vm *VM) execFusedCounting(fn *compiledFunc, fr *cframe) (Value, error) {
	code := fn.fcode
	nodes := fn.nodes
	pc := fn.fentry
	for {
		in := &code[pc]
		vm.ops[in.op]++
		next, err := fhandlers[in.op](vm, fr, nodes, in, pc)
		if err != nil {
			return Value{}, err
		}
		if in.gtail != 0 {
			if next, err = gotoHalf(vm, in.gtail-1); err != nil {
				return Value{}, err
			}
		}
		if next < 0 {
			return vm.fret, nil
		}
		pc = next
	}
}

// binIntCond evaluates a branch condition binop on two KInt operands for
// the in-loop fast paths: the comparison result, or the truthiness of
// the arithmetic result (overflow-exact, matching binLeaves). ok is
// false for Div/Mod, which can trap and take the exact handler instead.
func binIntCond(op cfg.BinOp, a, b int64) (t, ok bool) {
	switch op {
	case cfg.BinEq:
		return a == b, true
	case cfg.BinNe:
		return a != b, true
	case cfg.BinLt:
		return a < b, true
	case cfg.BinLe:
		return a <= b, true
	case cfg.BinGt:
		return a > b, true
	case cfg.BinGe:
		return a >= b, true
	case cfg.BinAdd:
		return a+b != 0, true
	case cfg.BinSub:
		return a-b != 0, true
	case cfg.BinMul:
		return a*b != 0, true
	}
	return false, false
}

// binIntVal applies a binop to two KInt operands for the in-loop fast
// paths, mirroring binLeaves' resolved-in-place arm. ok is false for
// Div/Mod, which can trap and take the exact handler instead.
func binIntVal(op cfg.BinOp, a, b int64) (Value, bool) {
	switch op {
	case cfg.BinAdd:
		return IntVal(a + b), true
	case cfg.BinSub:
		return IntVal(a - b), true
	case cfg.BinMul:
		return IntVal(a * b), true
	case cfg.BinEq:
		return boolVal(a == b), true
	case cfg.BinNe:
		return boolVal(a != b), true
	case cfg.BinLt:
		return boolVal(a < b), true
	case cfg.BinLe:
		return boolVal(a <= b), true
	case cfg.BinGt:
		return boolVal(a > b), true
	case cfg.BinGe:
		return boolVal(a >= b), true
	}
	return Value{}, false
}

// ----------------------------------------------------------------------------
// Generic handlers: one per unfused opcode, mirroring execSwitch's arms
// (and through them the tree walker) charge for charge.

func fhAssign(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		var v Value
		if v, err = vm.evalC(fr, nodes, in.a); err == nil {
			if in.op == opAssignGlobal {
				vm.globals[in.slot] = v
			} else {
				fr.locals[in.slot] = v
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhAssignCell(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		err = vm.assignCellC(fr, nodes, in)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhCall(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		err = vm.callUserC(fr, nodes, in)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhCallBuiltin(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		err = vm.callBuiltinC(fr, nodes, in)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhSite(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		err = vm.fireProbeC(fr, nodes, in.site, in.args)
	}
	if vm.prof != nil {
		vm.prof.take(PathSlowSite, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhGuardedSite(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		cd := vm.cdGetC(fr) - 1
		if cd == 0 {
			if err = vm.fireProbeC(fr, nodes, in.site, in.args); err == nil {
				cd = vm.source.Next()
				vm.cdSetC(fr, cd)
			}
			// On probe error the countdown write is skipped, as in the
			// tree walker.
		} else {
			vm.cdSetC(fr, cd)
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathSlowSite, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhCountdownDec(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.cdSetC(fr, vm.cdGetC(fr)-int64(in.slot))
	}
	if vm.prof != nil {
		vm.prof.take(PathFastDec, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// importHalf / exportHalf are the CDImport/CDExport step shared by the
// standalone handlers and the plumbing fusions: one fuel-checked step,
// the countdown move, and a fast-dec charge (which, as everywhere, runs
// even when the fuel check failed).
func importHalf(vm *VM, fr *cframe) error {
	err := vm.step(minic.Pos{})
	if err == nil {
		fr.cd = vm.cd
	}
	if vm.prof != nil {
		vm.prof.take(PathFastDec, vm.steps)
	}
	return err
}

func exportHalf(vm *VM, fr *cframe) error {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.cd = fr.cd
	}
	if vm.prof != nil {
		vm.prof.take(PathFastDec, vm.steps)
	}
	return err
}

func fhCDImport(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := importHalf(vm, fr); err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhCDExport(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := exportHalf(vm, fr); err != nil {
		return 0, err
	}
	return pc + 1, nil
}

func fhBad(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		err = &Trap{Kind: TrapBadProgram, Msg: in.name}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	return 0, err
}

// gotoHalf is the Goto terminator step shared by fhGoto and every
// *+goto fusion: one fuel-checked step, a baseline charge, jump.
func gotoHalf(vm *VM, target int32) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	return int(target), nil
}

func fhGoto(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	return gotoHalf(vm, in.b)
}

func fhIf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	v, err := vm.evalC(fr, nodes, in.a)
	if err != nil {
		// No take: the deferred profiler exit claims these steps as
		// baseline, exactly like the tree walker.
		return 0, err
	}
	next := int(in.c)
	if v.Truthy() {
		next = int(in.b)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	return next, nil
}

func fhRet(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	v, err := vm.evalC(fr, nodes, in.a)
	if err != nil {
		return 0, err
	}
	// No take on success: the deferred profiler exit claims the trailing
	// steps, as in the other engines.
	vm.fret = v
	return retPC, nil
}

func fhRetVoid(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	vm.fret = IntVal(0)
	return retPC, nil
}

func fhThreshold(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	next := int(in.c)
	if vm.cdGetC(fr) > int64(in.slot) {
		next = int(in.b)
	}
	if vm.prof != nil {
		vm.prof.take(PathThreshold, vm.steps)
	}
	return next, nil
}

func fhBadTerm(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	return 0, &Trap{Kind: TrapBadProgram, Msg: "missing terminator"}
}

// ----------------------------------------------------------------------------
// Superinstruction handlers. Expression charges are batched between
// possible trap points; comments give the unfused charge sequence each
// batch stands in for.

// binLeaves applies bop to two already-fetched leaf values exactly as
// evalC's eBin case: the all-int operators resolved in place (Div and
// Mod fall through for the zero-divisor trap), everything else through
// the shared binop.
func binLeaves(op cfg.BinOp, a, b Value, pos minic.Pos) (Value, error) {
	if a.Kind == KInt && b.Kind == KInt {
		switch op {
		case cfg.BinAdd:
			return IntVal(a.I + b.I), nil
		case cfg.BinSub:
			return IntVal(a.I - b.I), nil
		case cfg.BinMul:
			return IntVal(a.I * b.I), nil
		case cfg.BinEq:
			return boolVal(a.I == b.I), nil
		case cfg.BinNe:
			return boolVal(a.I != b.I), nil
		case cfg.BinLt:
			return boolVal(a.I < b.I), nil
		case cfg.BinLe:
			return boolVal(a.I <= b.I), nil
		case cfg.BinGt:
			return boolVal(a.I > b.I), nil
		case cfg.BinGe:
			return boolVal(a.I >= b.I), nil
		}
	}
	return binop(op, a, b, pos)
}

// loadFast resolves a valid in-bounds load in place, mirroring evalC's
// eLoad fast path; the caller falls back to resolveCell otherwise.
func loadFast(ptr, idx Value) (Value, bool) {
	if ptr.Kind == KPtr && idx.Kind == KInt && !ptr.Obj.Freed {
		if off := ptr.Off + int(idx.I); off >= 0 && off < len(ptr.Obj.Data) {
			return ptr.Obj.Data[off], true
		}
	}
	return Value{}, false
}

// storeCell stores v into ptr[idx] with the fast path of assignCellC.
func storeCell(ptr, idx, v Value, pos minic.Pos) error {
	if ptr.Kind == KPtr && idx.Kind == KInt && !ptr.Obj.Freed {
		if off := ptr.Off + int(idx.I); off >= 0 && off < len(ptr.Obj.Data) {
			ptr.Obj.Data[off] = v
			return nil
		}
	}
	cell, err := resolveCell(ptr, idx, pos)
	if err != nil {
		return err
	}
	*cell = v
	return nil
}

// fhFAssignBin: dst = binop(leaf, leaf). Unfused charges: instruction
// step (fuel-checked), then eBin node + two leaves (+3, unchecked).
// Leaves cannot trap, so the batch is unobservable; the operator trap
// surfaces at the same step total as evalC's.
func fhFAssignBin(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.steps += 3
		var v Value
		if v, err = binLeaves(cfg.BinOp(in.bop),
			vm.leafC(fr, &nodes[in.a]), vm.leafC(fr, &nodes[in.b]), in.pos); err == nil {
			if in.dstGlobal {
				vm.globals[in.slot] = v
			} else {
				fr.locals[in.slot] = v
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// assignBinImm is the body of opFAssignBinImm — dst = binop(leaf,
// int-const), same charges as fhFAssignBin (the folded constant still
// pays its leaf step) — shared with the +goto fusion.
func assignBinImm(vm *VM, fr *cframe, nodes []enode, in *cinstr) error {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.steps += 3
		a := vm.leafC(fr, &nodes[in.a])
		var v Value
		if a.Kind == KInt {
			switch cfg.BinOp(in.bop) {
			case cfg.BinAdd:
				v = IntVal(a.I + in.imm)
			case cfg.BinSub:
				v = IntVal(a.I - in.imm)
			case cfg.BinMul:
				v = IntVal(a.I * in.imm)
			case cfg.BinEq:
				v = boolVal(a.I == in.imm)
			case cfg.BinNe:
				v = boolVal(a.I != in.imm)
			case cfg.BinLt:
				v = boolVal(a.I < in.imm)
			case cfg.BinLe:
				v = boolVal(a.I <= in.imm)
			case cfg.BinGt:
				v = boolVal(a.I > in.imm)
			case cfg.BinGe:
				v = boolVal(a.I >= in.imm)
			default: // Div/Mod: zero-divisor trap in binop
				v, err = binop(cfg.BinOp(in.bop), a, IntVal(in.imm), in.pos)
			}
		} else {
			v, err = binop(cfg.BinOp(in.bop), a, IntVal(in.imm), in.pos)
		}
		if err == nil {
			if in.dstGlobal {
				vm.globals[in.slot] = v
			} else {
				fr.locals[in.slot] = v
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	return err
}

func fhFAssignBinImm(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := assignBinImm(vm, fr, nodes, in); err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFAssignLoad: dst = leaf[leaf]. Unfused charges: instruction step,
// then eLoad node + two leaves (+3); the load trap surfaces after all
// three, exactly where evalC would put it.
func fhFAssignLoad(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.steps += 3
		ptr := vm.leafC(fr, &nodes[in.a])
		idx := vm.leafC(fr, &nodes[in.b])
		v, ok := loadFast(ptr, idx)
		if !ok {
			var cell *Value
			if cell, err = resolveCell(ptr, idx, in.pos); err == nil {
				v = *cell
			}
		}
		if err == nil {
			if in.dstGlobal {
				vm.globals[in.slot] = v
			} else {
				fr.locals[in.slot] = v
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFAssignLoadBin: dst = binop(leaf[leaf], leaf). Unfused charges:
// instruction step, then eBin + eLoad + its two leaves (+4), the load
// trap point, the right leaf (+1), the operator trap point. The batch
// splits at the load so both trap points see the unfused totals.
func fhFAssignLoadBin(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		ln := &nodes[in.a]
		vm.steps += 4
		ptr := vm.leafC(fr, &nodes[ln.a])
		idx := vm.leafC(fr, &nodes[ln.b])
		av, ok := loadFast(ptr, idx)
		if !ok {
			var cell *Value
			if cell, err = resolveCell(ptr, idx, ln.pos); err == nil {
				av = *cell
			}
		}
		if err == nil {
			vm.steps++
			var v Value
			if v, err = binLeaves(cfg.BinOp(in.bop),
				av, vm.leafC(fr, &nodes[in.b]), in.pos); err == nil {
				if in.dstGlobal {
					vm.globals[in.slot] = v
				} else {
					fr.locals[in.slot] = v
				}
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFAssignCell: leaf[leaf] = leaf. Unfused charges: instruction step,
// then the X, Ptr, Idx leaves (+3), then the store trap point.
func fhFAssignCell(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.steps += 3
		v := vm.leafC(fr, &nodes[in.a])
		ptr := vm.leafC(fr, &nodes[in.b])
		idx := vm.leafC(fr, &nodes[in.c])
		err = storeCell(ptr, idx, v, in.pos)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFAssignCellBin: leaf[leaf] = binop(leaf, leaf). Unfused charges:
// instruction step; X = eBin + its two leaves (+3, then the operator
// trap point); Ptr and Idx leaves (+2); then the store trap point —
// the X, Ptr, Idx order of assignCellC.
func fhFAssignCellBin(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		n := &nodes[in.a]
		vm.steps += 3
		var v Value
		if v, err = binLeaves(cfg.BinOp(n.op),
			vm.leafC(fr, &nodes[n.a]), vm.leafC(fr, &nodes[n.b]), n.pos); err == nil {
			vm.steps += 2
			err = storeCell(vm.leafC(fr, &nodes[in.b]), vm.leafC(fr, &nodes[in.c]), v, in.pos)
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFIfBin: branch on binop(leaf, leaf). Unfused charges: terminator
// step (fuel-checked; baseline on exhaustion), then eBin + two leaves
// (+3). Comparisons never trap; Div/Mod can, with no take (the deferred
// profiler exit claims those steps), matching opIf's cond-error path.
func fhFIfBin(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	vm.steps += 3
	l := vm.leafC(fr, &nodes[in.slot])
	r := vm.leafC(fr, &nodes[in.a])
	var t bool
	if l.Kind == KInt && r.Kind == KInt {
		switch cfg.BinOp(in.bop) {
		case cfg.BinEq:
			t = l.I == r.I
		case cfg.BinNe:
			t = l.I != r.I
		case cfg.BinLt:
			t = l.I < r.I
		case cfg.BinLe:
			t = l.I <= r.I
		case cfg.BinGt:
			t = l.I > r.I
		case cfg.BinGe:
			t = l.I >= r.I
		case cfg.BinAdd:
			t = l.I+r.I != 0
		case cfg.BinSub:
			t = l.I-r.I != 0
		case cfg.BinMul:
			t = l.I*r.I != 0
		default:
			v, err := binop(cfg.BinOp(in.bop), l, r, in.pos)
			if err != nil {
				return 0, err
			}
			t = v.Truthy()
		}
	} else {
		v, err := binLeaves(cfg.BinOp(in.bop), l, r, in.pos)
		if err != nil {
			return 0, err
		}
		t = v.Truthy()
	}
	next := int(in.c)
	if t {
		next = int(in.b)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	return next, nil
}

// fhFIfLeaf: branch on a leaf. Terminator step + one leaf charge.
func fhFIfLeaf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	vm.steps++
	next := int(in.c)
	if vm.leafC(fr, &nodes[in.a]).Truthy() {
		next = int(in.b)
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	return next, nil
}

// fhFRetLeaf: return a leaf. Terminator step + one leaf charge; no take
// on success, as with opRet.
func fhFRetLeaf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	vm.steps++
	vm.fret = vm.leafC(fr, &nodes[in.a])
	return retPC, nil
}

// decPrefix is the CountdownDec half of every dec+terminator
// superinstruction: its own fuel-checked step and fast-dec profiler
// charge, so fuel exhaustion between the fused halves traps at the same
// step with the same attribution as the unfused pair.
func decPrefix(vm *VM, fr *cframe, n int64) error {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.cdSetC(fr, vm.cdGetC(fr)-n)
	}
	if vm.prof != nil {
		vm.prof.take(PathFastDec, vm.steps)
	}
	return err
}

// fhFDecGoto: the paper's sampling fast path in one dispatch —
// CountdownDec fused with its fall-through Goto.
func fhFDecGoto(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := decPrefix(vm, fr, int64(in.slot)); err != nil {
		return 0, err
	}
	return gotoHalf(vm, in.b)
}

// fhFDecThreshold: CountdownDec fused with a checkpoint Threshold; the
// two component steps keep their separate fuel checks and profiler
// kinds (fast-dec, then baseline on exhaustion / threshold on success).
func fhFDecThreshold(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := decPrefix(vm, fr, int64(in.slot)); err != nil {
		return 0, err
	}
	if err := vm.step(minic.Pos{}); err != nil {
		if vm.prof != nil {
			vm.prof.take(PathBaseline, vm.steps)
		}
		return 0, err
	}
	next := int(in.c)
	if vm.cdGetC(fr) > in.imm {
		next = int(in.b)
	}
	if vm.prof != nil {
		vm.prof.take(PathThreshold, vm.steps)
	}
	return next, nil
}

// fhFDecIf / fhFDecIfBin / fhFDecIfLeaf: CountdownDec (amount in imm)
// fused with the block's conditional branch — the fast path in front of
// every loop back-edge test. The If half delegates to the exact
// unfused-If handlers, so its charges and trap behaviour are shared by
// construction.
func fhFDecIf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := decPrefix(vm, fr, in.imm); err != nil {
		return 0, err
	}
	return fhIf(vm, fr, nodes, in, pc)
}

func fhFDecIfBin(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := decPrefix(vm, fr, in.imm); err != nil {
		return 0, err
	}
	return fhFIfBin(vm, fr, nodes, in, pc)
}

func fhFDecIfLeaf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := decPrefix(vm, fr, in.imm); err != nil {
		return 0, err
	}
	return fhFIfLeaf(vm, fr, nodes, in, pc)
}

// ----------------------------------------------------------------------------
// Countdown-plumbing and call/branch glue fusions. Every handler is a
// composition of the component halves — each component keeps its own
// fuel-checked step and profiler charge, so observable behaviour is
// shared with the unfused sequence by construction.

// fhFDecExport: CountdownDec fused with the CDExport it feeds before a
// call or return.
func fhFDecExport(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := decPrefix(vm, fr, int64(in.slot)); err != nil {
		return 0, err
	}
	if err := exportHalf(vm, fr); err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFExportCall: CDExport fused with the call it hands the countdown to.
func fhFExportCall(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := exportHalf(vm, fr); err != nil {
		return 0, err
	}
	return fhCall(vm, fr, nodes, in, pc)
}

// fhFImportThreshold: the CDImport at region entry fused with the entry
// checkpoint it precedes.
func fhFImportThreshold(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := importHalf(vm, fr); err != nil {
		return 0, err
	}
	return fhThreshold(vm, fr, nodes, in, pc)
}

// fhFExportRet / fhFExportRetVoid / fhFExportRetLeaf: the CDExport at
// region exit fused with the return it precedes.
func fhFExportRet(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := exportHalf(vm, fr); err != nil {
		return 0, err
	}
	return fhRet(vm, fr, nodes, in, pc)
}

func fhFExportRetVoid(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := exportHalf(vm, fr); err != nil {
		return 0, err
	}
	return fhRetVoid(vm, fr, nodes, in, pc)
}

func fhFExportRetLeaf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	if err := exportHalf(vm, fr); err != nil {
		return 0, err
	}
	return fhFRetLeaf(vm, fr, nodes, in, pc)
}

// fhFAssignLeaf: dst = leaf. Unfused charges: instruction step, one
// leaf charge (+1). Nothing can trap after the fuel check.
func fhFAssignLeaf(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		vm.steps++
		v := vm.leafC(fr, &nodes[in.a])
		if in.dstGlobal {
			vm.globals[in.slot] = v
		} else {
			fr.locals[in.slot] = v
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFAssignBin3: dst = binop(binop(leaf, leaf), leaf). Unfused charges:
// instruction step, then outer bin + inner bin + its two leaves (+4),
// the inner operator trap point, the right leaf (+1), the outer
// operator trap point — evalC's pre-order exactly.
func fhFAssignBin3(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		n := &nodes[in.a]
		inner := &nodes[n.a]
		vm.steps += 4
		var l Value
		if l, err = binLeaves(cfg.BinOp(inner.op),
			vm.leafC(fr, &nodes[inner.a]), vm.leafC(fr, &nodes[inner.b]), inner.pos); err == nil {
			vm.steps++
			var v Value
			if v, err = binLeaves(cfg.BinOp(in.bop),
				l, vm.leafC(fr, &nodes[n.b]), in.pos); err == nil {
				if in.dstGlobal {
					vm.globals[in.slot] = v
				} else {
					fr.locals[in.slot] = v
				}
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// fhFAssignLoadLoad: dst = binop(leaf[leaf], leaf[leaf]). Unfused
// charges: instruction step, then bin + left load + its two leaves
// (+4), the left load trap point, the right load + its two leaves (+3),
// the right load trap point, the operator trap point.
func fhFAssignLoadLoad(vm *VM, fr *cframe, nodes []enode, in *cinstr, pc int) (int, error) {
	err := vm.step(minic.Pos{})
	if err == nil {
		n := &nodes[in.a]
		ln, rn := &nodes[n.a], &nodes[n.b]
		vm.steps += 4
		l, ok := loadFast(vm.leafC(fr, &nodes[ln.a]), vm.leafC(fr, &nodes[ln.b]))
		if !ok {
			var cell *Value
			if cell, err = resolveCell(vm.leafC(fr, &nodes[ln.a]),
				vm.leafC(fr, &nodes[ln.b]), ln.pos); err == nil {
				l = *cell
			}
		}
		if err == nil {
			vm.steps += 3
			r, ok := loadFast(vm.leafC(fr, &nodes[rn.a]), vm.leafC(fr, &nodes[rn.b]))
			if !ok {
				var cell *Value
				if cell, err = resolveCell(vm.leafC(fr, &nodes[rn.a]),
					vm.leafC(fr, &nodes[rn.b]), rn.pos); err == nil {
					r = *cell
				}
			}
			if err == nil {
				var v Value
				if v, err = binLeaves(cfg.BinOp(in.bop), l, r, in.pos); err == nil {
					if in.dstGlobal {
						vm.globals[in.slot] = v
					} else {
						fr.locals[in.slot] = v
					}
				}
			}
		}
	}
	if vm.prof != nil {
		vm.prof.take(PathBaseline, vm.steps)
	}
	if err != nil {
		return 0, err
	}
	return pc + 1, nil
}
