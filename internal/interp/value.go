// Package interp executes lowered MiniC programs. It is the "deployed
// machine" of the reproduction: it runs baseline, unconditionally
// instrumented, and sampled programs, maintains the next-sample countdown
// and the predicate counter vector, and models the memory behaviour the
// case studies need — in particular allocator slack, which makes buffer
// overruns only sometimes fatal ("C programs can get lucky", §3.3.3).
package interp

import (
	"fmt"

	"cbi/internal/minic"
)

// Kind discriminates runtime values.
type Kind int

const (
	// KInt is a 64-bit integer (also the result of comparisons).
	KInt Kind = iota
	// KStr is an immutable host string.
	KStr
	// KNull is the null pointer.
	KNull
	// KPtr is a pointer into a heap object, with an element offset.
	KPtr
)

// Value is a runtime value.
type Value struct {
	Kind Kind
	I    int64
	S    string
	Obj  *Object
	Off  int
}

// Object is a heap allocation. Size is the logical (requested) extent;
// len(Data) is the physical capacity including allocator slack. Accesses
// beyond Size but within capacity succeed silently — the "lucky" overruns
// of §3.3.3 — while accesses beyond capacity trap.
type Object struct {
	ID    int64
	Data  []Value
	Size  int
	Freed bool
}

// IntVal makes an integer value.
func IntVal(i int64) Value { return Value{Kind: KInt, I: i} }

// StrVal makes a string value.
func StrVal(s string) Value { return Value{Kind: KStr, S: s} }

// NullVal makes the null pointer.
func NullVal() Value { return Value{Kind: KNull} }

// PtrVal makes a pointer to obj at offset off.
func PtrVal(obj *Object, off int) Value { return Value{Kind: KPtr, Obj: obj, Off: off} }

// Truthy reports C-style truthiness.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KInt:
		return v.I != 0
	case KStr:
		return v.S != ""
	case KNull:
		return false
	case KPtr:
		return true
	}
	return false
}

// Sign classifies a value for the returns scheme (§3.2.1): negative,
// zero, or positive. Pointers are positive, null is zero.
func (v Value) Sign() int {
	switch v.Kind {
	case KInt:
		switch {
		case v.I < 0:
			return -1
		case v.I == 0:
			return 0
		default:
			return 1
		}
	case KNull:
		return 0
	case KPtr:
		return 1
	case KStr:
		if v.S == "" {
			return 0
		}
		return 1
	}
	return 0
}

// Equal reports value equality (C ==): integers by value, pointers by
// object identity and offset, strings by contents, null equal to null
// and to no non-null pointer.
func (v Value) Equal(o Value) bool {
	switch {
	case v.Kind == KInt && o.Kind == KInt:
		return v.I == o.I
	case v.Kind == KStr && o.Kind == KStr:
		return v.S == o.S
	case v.Kind == KNull && o.Kind == KNull:
		return true
	case v.Kind == KPtr && o.Kind == KPtr:
		return v.Obj == o.Obj && v.Off == o.Off
	case v.Kind == KNull && o.Kind == KInt:
		return o.I == 0
	case v.Kind == KInt && o.Kind == KNull:
		return v.I == 0
	default:
		return false
	}
}

// Less imposes the deterministic total order used for scalar comparisons:
// integers by value; null below every non-null pointer; pointers by
// allocation sequence then offset; strings lexicographically. Mixed
// int/pointer comparisons treat null/0 uniformly.
func (v Value) Less(o Value) bool {
	switch {
	case v.Kind == KInt && o.Kind == KInt:
		return v.I < o.I
	case v.Kind == KStr && o.Kind == KStr:
		return v.S < o.S
	case v.Kind == KNull:
		return o.Kind == KPtr || (o.Kind == KInt && o.I > 0)
	case o.Kind == KNull:
		return v.Kind == KInt && v.I < 0
	case v.Kind == KPtr && o.Kind == KPtr:
		if v.Obj != o.Obj {
			return v.Obj.ID < o.Obj.ID
		}
		return v.Off < o.Off
	default:
		return false
	}
}

// CmpUnordered is Cmp's result for value pairs the total order does not
// relate (e.g. a string against an integer): every ordering comparison on
// such a pair is false, matching the historical Less/Equal behaviour.
const CmpUnordered = 2

// Cmp compares two values in a single pass: -1, 0, or 1 when the pair is
// ordered under the deterministic total order of Less/Equal, CmpUnordered
// otherwise. It is the one comparison both engines dispatch <, <=, >, >=
// and the scalar-pairs probe through, replacing the old Less-then-Equal
// double walk.
func (v Value) Cmp(o Value) int {
	switch {
	case v.Kind == KInt && o.Kind == KInt:
		return cmpInt(v.I, o.I)
	case v.Kind == KStr && o.Kind == KStr:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case v.Kind == KPtr && o.Kind == KPtr:
		if v.Obj != o.Obj {
			return cmpInt(v.Obj.ID, o.Obj.ID)
		}
		return cmpInt(int64(v.Off), int64(o.Off))
	case v.Kind == KNull && o.Kind == KNull:
		return 0
	case v.Kind == KNull && o.Kind == KInt:
		return cmpInt(0, o.I)
	case v.Kind == KInt && o.Kind == KNull:
		return cmpInt(v.I, 0)
	case v.Kind == KNull && o.Kind == KPtr:
		return -1
	case v.Kind == KPtr && o.Kind == KNull:
		return 1
	default:
		return CmpUnordered
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value for diagnostics and print output.
func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KStr:
		return v.S
	case KNull:
		return "null"
	case KPtr:
		return fmt.Sprintf("ptr#%d+%d", v.Obj.ID, v.Off)
	}
	return "<bad value>"
}

// ZeroFor returns the zero value of a declared type.
func ZeroFor(t *minic.Type) Value {
	if t == nil {
		return IntVal(0)
	}
	switch t.Kind {
	case minic.TypePtr, minic.TypeStruct:
		return NullVal()
	case minic.TypeStr:
		return StrVal("")
	default:
		return IntVal(0)
	}
}
