package interp

// The peephole fusion pass. It rewrites a function's freshly compiled
// instruction stream (compiledFunc.code) into the superinstruction
// stream the threaded engine executes (compiledFunc.fcode), fusing hot
// pairs/triples into single dispatches:
//
//   - assignments whose RHS is a small fixed shape — binop of two
//     leaves, binop with an int-constant operand, a leaf-indexed load,
//     or load+binop — become one op instead of an instruction plus a
//     recursive expression walk;
//   - all-leaf cell stores become one op;
//   - conditional branches on a leaf or a leaf-leaf comparison fuse the
//     condition into the branch;
//   - returns of a leaf fuse the operand into the return;
//   - and, critically, the sampling fast path: the coalesced
//     CountdownDec that instrumentation leaves immediately before a
//     block's terminator fuses with a Goto or Threshold into one op, so
//     the paper's "decrement and fall through" costs one dispatch.
//
// Fusion is safe against jump targets by construction: the compiler
// lays blocks out contiguously and every jump target is a block entry
// (term() only emits block-entry pcs), so a fused pair can never be
// entered mid-pair. The pass fuses strictly within one block and
// remaps block-entry pcs into the fused stream afterwards.
//
// Fusion is invisible to every observable channel — step totals (also
// at mid-superinstruction trap points), trap kinds/positions, profiler
// per-path-kind charges — because each fused handler replays the exact
// fuel checks and profiler charges of the unfused sequence (fused.go).

// isLeaf reports whether a node is a non-recursing operand (constant or
// variable read): leaves never trap and never recurse in evalC.
func isLeaf(n *enode) bool { return n.kind <= eGlobal }

// fuseFunc builds out.fcode/out.fentry from out.code. starts lists
// block-entry pcs in layout order; blocks are contiguous and each ends
// with exactly one terminator.
func fuseFunc(out *compiledFunc, starts []int) {
	nodes := out.nodes
	remap := make(map[int32]int32, len(starts))
	fcode := make([]cinstr, 0, len(out.code))
	var elems []cinstr
	for bi, s := range starts {
		end := len(out.code)
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		remap[int32(s)] = int32(len(fcode))
		// Specialize every element of the block (the terminator last),
		// then pair-fuse adjacent elements left to right, re-offering the
		// fused result to the next element so chains collapse: dec+export
		// fuses to FDecExport, export+call to FExportCall, and either one
		// then absorbs a trailing block-ending Goto into gtail — so the
		// instrumented export/call/goto glue around a call site becomes a
		// single dispatch.
		elems = elems[:0]
		for i := s; i < end-1; i++ {
			elems = append(elems, specializeInstr(&out.code[i], nodes))
		}
		elems = append(elems, specializeTerm(&out.code[end-1], nodes))
		pend := elems[0]
		for k := 1; k < len(elems); k++ {
			if f, ok := fusePair(&pend, &elems[k]); ok {
				pend = f
				continue
			}
			fcode = append(fcode, pend)
			pend = elems[k]
		}
		fcode = append(fcode, pend)
	}
	// Backstop for jump targets that are not block entries: unreachable
	// for well-formed code, but fc.pc's defensive -1 lands on a trap
	// here instead of panicking the exec loop.
	bad := int32(len(fcode))
	fcode = append(fcode, cinstr{op: opBadTerm})
	mapPC := func(pc int32) int32 {
		if v, ok := remap[pc]; ok {
			return v
		}
		return bad
	}
	for i := range fcode {
		in := &fcode[i]
		if in.gtail != 0 {
			in.gtail = mapPC(in.gtail-1) + 1
		}
		switch in.op {
		case opGoto, opFDecGoto:
			in.b = mapPC(in.b)
		case opIf, opThreshold, opFIfBin, opFIfLeaf,
			opFDecThreshold, opFDecIf, opFDecIfBin, opFDecIfLeaf,
			opFImportThreshold:
			in.b = mapPC(in.b)
			in.c = mapPC(in.c)
		}
	}
	out.fcode = fcode
	out.fentry = int(mapPC(int32(out.entry)))
}

// specializeInstr rewrites one non-terminator instruction into its
// superinstruction form when its operands match a fused shape, else
// returns it unchanged.
func specializeInstr(in *cinstr, nodes []enode) cinstr {
	switch in.op {
	case opAssignLocal, opAssignGlobal:
		g := in.op == opAssignGlobal
		n := &nodes[in.a]
		switch {
		case isLeaf(n):
			return cinstr{op: opFAssignLeaf, dstGlobal: g, slot: in.slot, a: in.a}
		case n.kind == eBin:
			l, r := &nodes[n.a], &nodes[n.b]
			if isLeaf(l) && isLeaf(r) {
				if r.kind == eConst { // eConst is always KInt
					return cinstr{op: opFAssignBinImm, dstGlobal: g, slot: in.slot,
						bop: n.op, a: n.a, imm: r.val.I, pos: n.pos}
				}
				return cinstr{op: opFAssignBin, dstGlobal: g, slot: in.slot,
					bop: n.op, a: n.a, b: n.b, pos: n.pos}
			}
			if l.kind == eLoad && isLeaf(&nodes[l.a]) && isLeaf(&nodes[l.b]) && isLeaf(r) {
				return cinstr{op: opFAssignLoadBin, dstGlobal: g, slot: in.slot,
					bop: n.op, a: n.a, b: n.b, pos: n.pos}
			}
			if l.kind == eBin && isLeaf(&nodes[l.a]) && isLeaf(&nodes[l.b]) && isLeaf(r) {
				return cinstr{op: opFAssignBin3, dstGlobal: g, slot: in.slot,
					bop: n.op, a: in.a, pos: n.pos}
			}
			if l.kind == eLoad && r.kind == eLoad &&
				isLeaf(&nodes[l.a]) && isLeaf(&nodes[l.b]) &&
				isLeaf(&nodes[r.a]) && isLeaf(&nodes[r.b]) {
				return cinstr{op: opFAssignLoadLoad, dstGlobal: g, slot: in.slot,
					bop: n.op, a: in.a, pos: n.pos}
			}
		case n.kind == eLoad:
			if isLeaf(&nodes[n.a]) && isLeaf(&nodes[n.b]) {
				return cinstr{op: opFAssignLoad, dstGlobal: g, slot: in.slot,
					a: n.a, b: n.b, pos: n.pos}
			}
		}
	case opAssignCell:
		if isLeaf(&nodes[in.b]) && isLeaf(&nodes[in.c]) {
			x := &nodes[in.a]
			if isLeaf(x) {
				f := *in
				f.op = opFAssignCell
				return f
			}
			if x.kind == eBin && isLeaf(&nodes[x.a]) && isLeaf(&nodes[x.b]) {
				f := *in
				f.op = opFAssignCellBin
				return f
			}
		}
	}
	return *in
}

// specializeTerm rewrites one terminator into its superinstruction form
// when its condition/operand is a fused shape, else returns it unchanged.
func specializeTerm(in *cinstr, nodes []enode) cinstr {
	switch in.op {
	case opIf:
		n := &nodes[in.a]
		if isLeaf(n) {
			f := *in
			f.op = opFIfLeaf
			return f
		}
		if n.kind == eBin && isLeaf(&nodes[n.a]) && isLeaf(&nodes[n.b]) {
			return cinstr{op: opFIfBin, bop: n.op, slot: n.a, a: n.b,
				b: in.b, c: in.c, pos: n.pos}
		}
	case opRet:
		if isLeaf(&nodes[in.a]) {
			f := *in
			f.op = opFRetLeaf
			return f
		}
	}
	return *in
}

// fusePair fuses two adjacent (already specialized) block elements into
// one superinstruction. Two families:
//
//   - the sampling fast path: instrumentation coalesces fast-path
//     decrements to a single CountdownDec at block end, so dec+Goto,
//     dec+If, and dec+Threshold are exactly the paper's "decrement, skip
//     the probe, fall through" sequence — one dispatch;
//   - the countdown plumbing around calls and checkpoints: import at
//     function/region entry pairs with the entry checkpoint, export
//     pairs with the call or return it precedes, and dec pairs with the
//     export it feeds — the fixed glue the fleet histogram shows
//     dominating instrumented dispatch;
//   - and goto tails: any sequential instruction (fused or not)
//     followed by its block's Goto absorbs the jump into gtail, so the
//     dispatch loop runs the goto step inline after the instruction
//     instead of dispatching it.
func fusePair(x, y *cinstr) (cinstr, bool) {
	switch x.op {
	case opCountdownDec:
		switch y.op {
		case opGoto:
			return cinstr{op: opFDecGoto, slot: x.slot, b: y.b}, true
		case opThreshold:
			return cinstr{op: opFDecThreshold, slot: x.slot,
				imm: int64(y.slot), b: y.b, c: y.c}, true
		case opCDExport:
			return cinstr{op: opFDecExport, slot: x.slot}, true
		case opIf, opFIfBin, opFIfLeaf:
			// The If variants keep their operand fields; the decrement
			// rides in imm (slot is taken by opFIfBin's left operand).
			f := *y
			switch y.op {
			case opIf:
				f.op = opFDecIf
			case opFIfBin:
				f.op = opFDecIfBin
			case opFIfLeaf:
				f.op = opFDecIfLeaf
			}
			f.imm = int64(x.slot)
			return f, true
		}
	case opCDImport:
		if y.op == opThreshold {
			f := *y
			f.op = opFImportThreshold
			return f, true
		}
	case opCDExport:
		switch y.op {
		case opCall:
			f := *y
			f.op = opFExportCall
			return f, true
		case opRet:
			f := *y
			f.op = opFExportRet
			return f, true
		case opRetVoid:
			f := *y
			f.op = opFExportRetVoid
			return f, true
		case opFRetLeaf:
			f := *y
			f.op = opFExportRetLeaf
			return f, true
		}
	}
	// Goto-tail fusion: x must be a sequential instruction (its handler
	// returns pc+1 on success) without a tail already fused in.
	if y.op == opGoto && x.gtail == 0 && isSeqOp(x.op) {
		f := *x
		f.gtail = y.b + 1
		return f, true
	}
	return cinstr{}, false
}

// isSeqOp reports whether op is a sequential instruction — one whose
// handler falls through to pc+1 on success — and may therefore carry a
// fused goto tail. Terminators and the dec/import+branch fusions return
// jump targets and must not.
func isSeqOp(op copcode) bool {
	if op < opGoto {
		return true
	}
	switch op {
	case opFAssignBin, opFAssignBinImm, opFAssignLoad, opFAssignLoadBin,
		opFAssignCell, opFAssignCellBin, opFAssignLeaf, opFAssignBin3,
		opFAssignLoadLoad, opFDecExport, opFExportCall:
		return true
	}
	return false
}
