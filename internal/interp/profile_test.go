package interp

import (
	"strconv"
	"strings"
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/minic"
)

// buildProfiled parses, instruments, and optionally samples src.
func buildProfiled(t *testing.T, src string, set instrument.SchemeSet, sample bool) *cfg.Program {
	t.Helper()
	f, err := minic.Parse("prof.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(f, nil, &instrument.Schemes{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	if sample {
		prog = instrument.Sample(prog, instrument.DefaultOptions())
	}
	return prog
}

const profSrc = `
int leaf(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s = s + i; }
	return s;
}

int mid(int n) {
	return leaf(n) + leaf(n + 1);
}

int main() {
	int total = 0;
	for (int i = 0; i < 50; i++) { total = total + mid(i); }
	return 0;
}
`

// checkExact asserts the profile's attribution sums to the run's exact
// step count, per function and per kind.
func checkExact(t *testing.T, res Result) {
	t.Helper()
	if res.Profile == nil {
		t.Fatal("Profile missing with Config.Profile set")
	}
	if res.Profile.Steps != res.Steps {
		t.Errorf("Profile.Steps = %d, want %d", res.Profile.Steps, res.Steps)
	}
	var byFunc uint64
	for _, f := range res.Profile.ByFunc() {
		var ft uint64
		for _, v := range f.Kinds {
			ft += v
		}
		if ft != f.Total {
			t.Errorf("func %s: kind sum %d != total %d", f.Name, ft, f.Total)
		}
		byFunc += f.Total
	}
	if byFunc != res.Steps {
		t.Errorf("ByFunc sum = %d, want exactly Steps = %d", byFunc, res.Steps)
	}
	var byKind uint64
	for _, v := range res.Profile.Totals() {
		byKind += v
	}
	if byKind != res.Steps {
		t.Errorf("Totals sum = %d, want exactly Steps = %d", byKind, res.Steps)
	}
}

func TestProfileExactOnBaseline(t *testing.T) {
	prog := buildProfiled(t, profSrc, instrument.SchemeSet{}, false)
	res := Run(prog, Config{Seed: 1, Profile: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("run crashed: %v", res.Trap)
	}
	checkExact(t, res)
	totals := res.Profile.Totals()
	for _, k := range []PathKind{PathFastDec, PathSlowSite, PathThreshold} {
		if totals[k] != 0 {
			t.Errorf("uninstrumented run charged %d steps to %s", totals[k], k)
		}
	}
	names := map[string]bool{}
	for _, f := range res.Profile.ByFunc() {
		names[f.Name] = true
	}
	for _, want := range []string{"main", "mid", "leaf"} {
		if !names[want] {
			t.Errorf("function %s missing from profile: %v", want, names)
		}
	}
}

func TestProfileExactOnSampledRun(t *testing.T) {
	prog := buildProfiled(t, profSrc, instrument.SchemeSet{Branches: true, Returns: true}, true)
	res := Run(prog, Config{Seed: 1, Density: 1.0 / 10, CountdownSeed: 3, Profile: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("run crashed: %v", res.Trap)
	}
	checkExact(t, res)
	totals := res.Profile.Totals()
	if totals[PathFastDec] == 0 {
		t.Error("sampled run must charge fast-path decrements")
	}
	if totals[PathSlowSite] == 0 {
		t.Error("sampled run at 1/10 must fire slow-path sites")
	}
	if totals[PathThreshold] == 0 {
		t.Error("sampled run must charge threshold checks")
	}
	if totals[PathBaseline] == 0 {
		t.Error("baseline work cannot be zero")
	}
}

func TestProfileExactOnUnconditionalInstrumentation(t *testing.T) {
	prog := buildProfiled(t, profSrc, instrument.SchemeSet{Branches: true}, false)
	res := Run(prog, Config{Seed: 1, Profile: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("run crashed: %v", res.Trap)
	}
	checkExact(t, res)
	totals := res.Profile.Totals()
	if totals[PathSlowSite] == 0 {
		t.Error("unconditional instrumentation must charge site work")
	}
	if totals[PathFastDec] != 0 || totals[PathThreshold] != 0 {
		t.Errorf("unsampled program has no fast path or thresholds: %v", totals)
	}
}

func TestProfileExactOnCrashingRun(t *testing.T) {
	const crashSrc = `
int boom(int* p, int i) { return p[i]; }
int main() {
	int* a = alloc(4);
	int s = 0;
	for (int i = 0; i < 100; i++) { s = s + boom(a, i); }
	return s;
}
`
	prog := buildProfiled(t, crashSrc, instrument.SchemeSet{Bounds: true}, true)
	res := Run(prog, Config{Seed: 1, Density: 1.0 / 5, CountdownSeed: 7, Profile: true})
	if res.Outcome != OutcomeCrash {
		t.Fatal("expected a crash")
	}
	// Trap unwinding must not lose attribution: totals still exact.
	checkExact(t, res)
}

func TestProfileDisabledByDefault(t *testing.T) {
	prog := buildProfiled(t, profSrc, instrument.SchemeSet{}, false)
	res := Run(prog, Config{Seed: 1})
	if res.Profile != nil {
		t.Error("Profile must be nil unless requested")
	}
}

func TestProfileFormatAndFolded(t *testing.T) {
	prog := buildProfiled(t, profSrc, instrument.SchemeSet{Branches: true}, true)
	res := Run(prog, Config{Seed: 1, Density: 1.0 / 10, CountdownSeed: 3, Profile: true})
	checkExact(t, res)

	text := res.Profile.Format()
	if !strings.Contains(text, "function") || !strings.Contains(text, "TOTAL") {
		t.Errorf("format:\n%s", text)
	}
	// The TOTAL row's total column equals the exact step count.
	if !strings.Contains(text, " "+strconv.FormatUint(res.Steps, 10)+" ") {
		t.Errorf("TOTAL row does not show the exact step count %d:\n%s", res.Steps, text)
	}

	var b strings.Builder
	if err := res.Profile.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad folded line %q", line)
		}
		v, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad folded count in %q: %v", line, err)
		}
		stack := line[:i]
		if strings.Contains(stack, " ") {
			t.Fatalf("folded frame contains a space: %q", line)
		}
		if !strings.HasPrefix(stack, "main") {
			t.Errorf("stack %q does not start at main", stack)
		}
		sum += v
	}
	if sum != res.Steps {
		t.Errorf("folded stack sum = %d, want exactly %d", sum, res.Steps)
	}
	// Overhead kinds appear as synthetic leaf frames.
	if !strings.Contains(b.String(), "(fast-dec)") {
		t.Errorf("folded output missing overhead frames:\n%s", b.String())
	}

	// Determinism: two walks render identically.
	var b2 strings.Builder
	if err := res.Profile.WriteFolded(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("WriteFolded is not deterministic")
	}
}

func TestProfileRecursionBuildsDeepStacks(t *testing.T) {
	const recSrc = `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
`
	prog := buildProfiled(t, recSrc, instrument.SchemeSet{}, false)
	res := Run(prog, Config{Seed: 1, Profile: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("crashed: %v", res.Trap)
	}
	checkExact(t, res)
	var b strings.Builder
	if err := res.Profile.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "main;fib;fib;fib") {
		t.Errorf("recursive stacks missing:\n%s", b.String())
	}
}
