// Package monitor is the live triage console of the collection tier: it
// watches a bug hunt isolate itself while the fleet is still running.
//
// The paper's feedback reports are order-free sufficient statistics
// (§2.5), so a collector does not have to wait for the fleet to finish
// before ranking predicates — it can snapshot its accumulated state on a
// cadence, re-run the 2005 follow-up scores over it (package
// analysis/score), and publish the evolving top-K. This package
// maintains those incremental rankings and exposes them three ways:
//
//   - GET /rankings        — current (or freshly recomputed) top-K, JSON
//   - GET /watch           — Server-Sent-Events stream of snapshot /
//     converged / diverged events with churn metrics
//   - GET /dashboard       — dependency-free single-file HTML console
//
// Each snapshot carries churn relative to the previous one (a
// Kendall-tau-style rank distance plus new-entrant/dropout counts), and
// once the top-K has been stable for a configured number of consecutive
// snapshots the monitor declares convergence — the live signal the
// closed-loop adaptive-sampling roadmap item consumes.
//
// Snapshots are pure functions of a score.Accum supplied by a Source
// (collect.Server), so every published ranking is exactly what an
// offline score.Score + score.Rank pass would produce over the reports
// folded so far — see DESIGN §11 for the consistency argument.
package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/telemetry"
)

// Source supplies consistent snapshots of the live scoring statistics.
// collect.Server implements it by draining its staged-ingest rings (the
// DESIGN §13 drain barrier) and then merging its per-shard accumulators.
// Implementations must return a serial fold of a definite report subset
// that includes every report acknowledged before the call — the monitor
// publishes whatever it receives as a consistent ranking snapshot.
type Source interface {
	ScoreState() *score.Accum
}

// Config parameterizes a Monitor.
type Config struct {
	// TopK is how many ranked predicates each snapshot retains and the
	// stability window convergence is judged on (default 10).
	TopK int
	// EveryReports triggers a snapshot each time this many reports have
	// been folded (default 500; <= 0 disables the count cadence).
	EveryReports int
	// Interval additionally snapshots on a wall-clock cadence once Start
	// is called (0 disables the timer). A timer cadence means snapshots —
	// and therefore convergence — keep happening after ingest goes quiet.
	Interval time.Duration
	// StableFor is how many consecutive snapshots the top-K order must
	// survive unchanged before the monitor declares convergence
	// (default 3).
	StableFor int
	// PredicateName, when set, labels ranked counters with human-readable
	// predicate names (e.g. cfg.Program.PredicateName or
	// Manifest.PredicateName).
	PredicateName func(counter int) string
}

// Entry is one ranked predicate as published on /rankings and /watch.
type Entry struct {
	Rank       int     `json:"rank"`
	Counter    int     `json:"counter"`
	Name       string  `json:"name,omitempty"`
	Importance float64 `json:"importance"`
	Increase   float64 `json:"increase"`
	Failure    float64 `json:"failure"`
	Context    float64 `json:"context"`
	TrueFail   int     `json:"true_fail"`
	TrueOK     int     `json:"true_ok"`
}

// Churn measures how much the top-K moved between consecutive snapshots.
type Churn struct {
	// RankDistance is a normalized Kendall-tau-style distance between the
	// previous and current top-K (0 = identical order; see rankDistance).
	RankDistance float64 `json:"rank_distance"`
	NewEntrants  int     `json:"new_entrants"`
	Dropouts     int     `json:"dropouts"`
}

// Snapshot is one incremental ranking emission.
type Snapshot struct {
	Seq     int     `json:"seq"`
	Runs    int     `json:"runs"`
	Crashes int     `json:"crashes"`
	Ranked  int     `json:"ranked"` // predicates with positive Importance
	Top     []Entry `json:"top"`
	Churn   Churn   `json:"churn"`
	// Stable counts consecutive snapshots (including this one) with an
	// unchanged top-K order.
	Stable          int     `json:"stable"`
	Converged       bool    `json:"converged"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	SnapshotSeconds float64 `json:"snapshot_seconds"`
	UnixMilli       int64   `json:"unix_ms"`
}

// TriageStats is the live-triage summary embedded in the collector's
// /stats response, so scripted runs can poll convergence without parsing
// the SSE stream.
type TriageStats struct {
	RankingsSnapshots int   `json:"rankings_snapshots"`
	LastSnapshotUnix  int64 `json:"last_snapshot_unix"`
	Converged         bool  `json:"converged"`
}

// convergedEvent is the payload of the converged/diverged SSE events.
type convergedEvent struct {
	Seq       int     `json:"seq"`
	Runs      int     `json:"runs"`
	Snapshots int     `json:"snapshots"`
	Seconds   float64 `json:"seconds"`
	Top       []Entry `json:"top"`
}

type monitorMetrics struct {
	snapshots       *telemetry.Counter
	snapshotSeconds *telemetry.Histogram
	churn           *telemetry.Gauge
	entrants        *telemetry.Counter
	dropouts        *telemetry.Counter
	converged       *telemetry.Gauge
	timeToConverge  *telemetry.Gauge
	lastUnix        *telemetry.Gauge
	watchClients    *telemetry.Gauge
	dropped         *telemetry.Counter
}

// Monitor maintains the incremental rankings. Create with New, attach to
// a source with Bind (collect.Server does this for you), then feed it
// ReportFolded calls and/or Start its interval timer.
type Monitor struct {
	cfg Config
	src Source
	reg *telemetry.Registry
	m   monitorMetrics

	start  time.Time
	folded atomic.Uint64

	// snapMu serializes snapshot computation; cadence-triggered snapshots
	// use TryLock so a slow snapshot coalesces later triggers instead of
	// queueing ingest goroutines.
	snapMu sync.Mutex

	stateMu          sync.RWMutex
	cur              *Snapshot
	prevTop          []int
	stable           int
	converged        bool
	convergedRuns    int
	convergedSeq     int
	convergedSeconds float64

	subMu sync.Mutex
	subs  map[chan []byte]struct{}

	// kick wakes the snapshot worker; capacity 1 so a burst of cadence
	// crossings coalesces into one pending snapshot.
	kick      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
}

// New creates a monitor. Bind it to a source before use.
func New(cfg Config) *Monitor {
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.StableFor <= 0 {
		cfg.StableFor = 3
	}
	return &Monitor{cfg: cfg, subs: make(map[chan []byte]struct{})}
}

// Config returns the monitor's effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Bind attaches the monitor to its statistics source and telemetry
// registry, and launches the snapshot worker goroutine (stopped by
// Stop). collect.Server calls it from init; tests may call it directly.
// Later calls are ignored.
func (m *Monitor) Bind(src Source, reg *telemetry.Registry) {
	if m.src != nil {
		return
	}
	m.src = src
	if reg == nil {
		reg = telemetry.Default
	}
	m.reg = reg
	m.start = time.Now()
	m.m = monitorMetrics{
		snapshots:       reg.Counter("monitor_snapshots_total"),
		snapshotSeconds: reg.Histogram("monitor_snapshot_seconds", telemetry.DefBuckets),
		churn:           reg.Gauge("monitor_rank_churn"),
		entrants:        reg.Counter("monitor_rank_entrants_total"),
		dropouts:        reg.Counter("monitor_rank_dropouts_total"),
		converged:       reg.Gauge("monitor_converged"),
		timeToConverge:  reg.Gauge("monitor_time_to_convergence_seconds"),
		lastUnix:        reg.Gauge("monitor_last_snapshot_unix"),
		watchClients:    reg.Gauge("monitor_watch_clients"),
		dropped:         reg.Counter("monitor_events_dropped_total"),
	}
	reg.Gauge("monitor_top_k").Set(float64(m.cfg.TopK))
	m.kick = make(chan struct{}, 1)
	m.stopCh = make(chan struct{})
	// The snapshot worker: every cadence snapshot runs here, never on an
	// ingest goroutine, so the monitor's steady-state cost to the ingest
	// path is one atomic increment plus a non-blocking channel send.
	//
	// The worker self-throttles: after each snapshot it sleeps a
	// multiple of that snapshot's own duration, bounding its CPU duty
	// cycle regardless of ingest rate or state size. During a report
	// flood the cadence crossings coalesce into the one pending kick,
	// and the next snapshot covers everything since — snapshots get
	// sparser under load, never costlier. Forced Snapshot() calls skip
	// the worker entirely and are not throttled.
	go func() {
		for {
			select {
			case <-m.kick:
				snap := m.takeSnapshot(false)
				if snap == nil {
					continue
				}
				pause := time.Duration(snap.SnapshotSeconds * snapshotThrottle * float64(time.Second))
				if pause > maxSnapshotPause {
					pause = maxSnapshotPause
				}
				if pause > 0 {
					select {
					case <-time.After(pause):
					case <-m.stopCh:
						return
					}
				}
			case <-m.stopCh:
				return
			}
		}
	}()
}

// Start launches the interval snapshot timer, if one is configured.
func (m *Monitor) Start() {
	if m == nil || m.cfg.Interval <= 0 || m.stopCh == nil {
		return
	}
	m.startOnce.Do(func() {
		go func() {
			t := time.NewTicker(m.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					m.requestSnapshot()
				case <-m.stopCh:
					return
				}
			}
		}()
	})
}

// Stop halts the snapshot worker and interval timer. Safe on a nil,
// unbound, or never-started monitor.
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	m.startOnce.Do(func() {}) // a stopped monitor must not start its timer
	m.stopOnce.Do(func() {
		if m.stopCh != nil {
			close(m.stopCh)
		}
	})
}

// ReportFolded tells the monitor one more report has been folded into
// the source. It is called on the ingest path: an atomic increment, and
// on a cadence crossing a non-blocking wake of the snapshot worker
// (crossings during an in-flight snapshot coalesce into one pending).
func (m *Monitor) ReportFolded() { m.ReportsFolded(1) }

// ReportsFolded is the batched form of ReportFolded, used when many
// reports land in the source at once (a federated delta merge, a spill
// replay). One atomic add covers the whole batch; the cadence check
// fires if the add crossed any EveryReports boundary.
func (m *Monitor) ReportsFolded(n int) {
	if m == nil || m.src == nil || n <= 0 {
		return
	}
	v := m.folded.Add(uint64(n))
	if every := uint64(m.cfg.EveryReports); every > 0 && v/every != (v-uint64(n))/every {
		m.requestSnapshot()
	}
}

// requestSnapshot wakes the snapshot worker without blocking.
func (m *Monitor) requestSnapshot() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Snapshot forces a fresh snapshot through the full cadence machinery
// (sequence numbers, churn, convergence) and returns it.
func (m *Monitor) Snapshot() *Snapshot { return m.takeSnapshot(true) }

// Current returns the latest snapshot, or nil before the first one.
func (m *Monitor) Current() *Snapshot {
	if m == nil {
		return nil
	}
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur
}

// TriageStats summarizes triage state for the collector's /stats
// endpoint. Safe on a nil monitor (all zero values).
func (m *Monitor) TriageStats() TriageStats {
	if m == nil {
		return TriageStats{}
	}
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	st := TriageStats{Converged: m.converged}
	if m.cur != nil {
		st.RankingsSnapshots = m.cur.Seq
		st.LastSnapshotUnix = m.cur.UnixMilli / 1000
	}
	return st
}

// Convergence reports whether the rankings have converged and, if so, at
// which folded-report count, snapshot sequence, and elapsed seconds the
// first transition happened.
func (m *Monitor) Convergence() (runs, seq int, seconds float64, ok bool) {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	if m.convergedSeq == 0 {
		return 0, 0, 0, false
	}
	return m.convergedRuns, m.convergedSeq, m.convergedSeconds, true
}

// Rankings recomputes the ranked predicate list from the live state —
// a pure read that does not advance the snapshot sequence or the
// convergence machinery. It returns up to k entries (k <= 0 means all)
// plus the total ranked count and the run/crash totals of the state it
// scored.
func (m *Monitor) Rankings(k int) (top []Entry, ranked, runs, crashes int) {
	acc := m.src.ScoreState()
	all := score.Rank(acc.Predicates())
	return m.entries(all, k), len(all), acc.Runs, acc.Failures
}

func (m *Monitor) entries(ranked []score.Predicate, k int) []Entry {
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]Entry, len(ranked))
	for i, p := range ranked {
		out[i] = Entry{
			Rank:       i + 1,
			Counter:    p.Counter,
			Importance: p.Importance,
			Increase:   p.Increase,
			Failure:    p.Failure,
			Context:    p.Context,
			TrueFail:   p.TrueFail,
			TrueOK:     p.TrueOK,
		}
		if m.cfg.PredicateName != nil {
			out[i].Name = m.cfg.PredicateName(p.Counter)
		}
	}
	return out
}

// takeSnapshot computes one snapshot. force waits for the snapshot lock;
// cadence triggers skip instead (the next crossing will catch up).
func (m *Monitor) takeSnapshot(force bool) *Snapshot {
	if m == nil || m.src == nil {
		return nil
	}
	if force {
		m.snapMu.Lock()
	} else if !m.snapMu.TryLock() {
		return nil
	}
	defer m.snapMu.Unlock()

	t0 := time.Now()
	acc := m.src.ScoreState()
	ranked := score.Rank(acc.Predicates())
	top := m.entries(ranked, m.cfg.TopK)
	snapSec := time.Since(t0).Seconds()

	ids := make([]int, len(top))
	for i, e := range top {
		ids[i] = e.Counter
	}

	m.stateMu.Lock()
	snap := &Snapshot{
		Runs:            acc.Runs,
		Crashes:         acc.Failures,
		Ranked:          len(ranked),
		Top:             top,
		ElapsedSeconds:  time.Since(m.start).Seconds(),
		SnapshotSeconds: snapSec,
		UnixMilli:       t0.UnixMilli(),
	}
	snap.Seq = m.seqLocked() + 1
	if m.cur != nil {
		snap.Churn = churnOf(m.prevTop, ids)
	}
	if m.cur != nil && equalInts(m.prevTop, ids) {
		m.stable++
	} else {
		m.stable = 1
	}
	snap.Stable = m.stable
	wasConverged := m.converged
	// An empty ranking is trivially stable; convergence means a non-empty
	// top-K stopped moving.
	m.converged = len(ids) > 0 && m.stable >= m.cfg.StableFor
	snap.Converged = m.converged
	m.prevTop = ids
	m.cur = snap
	transition := m.converged && !wasConverged
	diverged := wasConverged && !m.converged
	if transition && m.convergedSeq == 0 {
		m.convergedRuns = snap.Runs
		m.convergedSeq = snap.Seq
		m.convergedSeconds = snap.ElapsedSeconds
	}
	m.stateMu.Unlock()

	m.m.snapshots.Inc()
	m.m.snapshotSeconds.Observe(snapSec)
	m.m.churn.Set(snap.Churn.RankDistance)
	m.m.entrants.Add(uint64(snap.Churn.NewEntrants))
	m.m.dropouts.Add(uint64(snap.Churn.Dropouts))
	m.m.lastUnix.Set(float64(t0.Unix()))
	if snap.Converged {
		m.m.converged.Set(1)
	} else {
		m.m.converged.Set(0)
	}
	if transition {
		m.m.timeToConverge.Set(snap.ElapsedSeconds)
	}

	m.publish("snapshot", snap)
	ev := convergedEvent{Seq: snap.Seq, Runs: snap.Runs, Snapshots: snap.Seq,
		Seconds: snap.ElapsedSeconds, Top: top}
	if transition {
		m.publish("converged", ev)
	}
	if diverged {
		m.publish("diverged", ev)
	}
	return snap
}

func (m *Monitor) seqLocked() int {
	if m.cur == nil {
		return 0
	}
	return m.cur.Seq
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// churnOf compares two consecutive top-K counter lists.
func churnOf(old, cur []int) Churn {
	oldSet := make(map[int]int, len(old))
	for i, c := range old {
		oldSet[c] = i
	}
	curSet := make(map[int]int, len(cur))
	for i, c := range cur {
		curSet[c] = i
	}
	ch := Churn{RankDistance: rankDistance(oldSet, curSet, len(old), len(cur))}
	for c := range curSet {
		if _, ok := oldSet[c]; !ok {
			ch.NewEntrants++
		}
	}
	for c := range oldSet {
		if _, ok := curSet[c]; !ok {
			ch.Dropouts++
		}
	}
	return ch
}

// rankDistance is a Kendall-tau-style distance between two top-K lists
// (Fagin/Kumar/Sivakumar's K^(0) "optimistic" metric): over every
// unordered pair of counters in the union, count the pairs ranked one
// way in the old list and the opposite way in the new one, treating a
// counter absent from a list as ranked below all its members; normalize
// by C(|union|, 2). Identical lists score 0; a reversed list scores 1.
func rankDistance(old, cur map[int]int, oldLen, curLen int) float64 {
	if len(old) == 0 && len(cur) == 0 {
		return 0
	}
	union := make([]int, 0, len(old)+len(cur))
	seen := make(map[int]bool, len(old)+len(cur))
	for c := range old {
		if !seen[c] {
			seen[c] = true
			union = append(union, c)
		}
	}
	for c := range cur {
		if !seen[c] {
			seen[c] = true
			union = append(union, c)
		}
	}
	if len(union) < 2 {
		return 0
	}
	rank := func(m map[int]int, miss int, c int) int {
		if r, ok := m[c]; ok {
			return r
		}
		return miss
	}
	discordant, pairs := 0, 0
	for i := 0; i < len(union); i++ {
		for j := i + 1; j < len(union); j++ {
			a, b := union[i], union[j]
			do := rank(old, oldLen, a) - rank(old, oldLen, b)
			dc := rank(cur, curLen, a) - rank(cur, curLen, b)
			if do*dc < 0 {
				discordant++
			}
			pairs++
		}
	}
	return float64(discordant) / float64(pairs)
}

// ----------------------------------------------------------------------------
// HTTP surface

// rankingsResponse is the /rankings JSON document.
type rankingsResponse struct {
	Fresh     bool    `json:"fresh"`
	Seq       int     `json:"seq"`
	Runs      int     `json:"runs"`
	Crashes   int     `json:"crashes"`
	Ranked    int     `json:"ranked"`
	Converged bool    `json:"converged"`
	Top       []Entry `json:"top"`
}

// ServeRankings handles GET /rankings?top=K[&fresh=1]. Without fresh it
// serves the latest cadence snapshot; with fresh (or before any
// snapshot, or when more entries are requested than a snapshot retains)
// it recomputes from the live state.
func (m *Monitor) ServeRankings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	k := m.cfg.TopK
	if t := r.URL.Query().Get("top"); t != "" {
		v, err := strconv.Atoi(t)
		if err != nil {
			http.Error(w, "bad top parameter", http.StatusBadRequest)
			return
		}
		k = v
	}
	fresh := r.URL.Query().Get("fresh") != ""
	cur := m.Current()
	// The cached snapshot satisfies the request when it holds at least k
	// entries, or already holds every ranked predicate there is.
	cached := !fresh && cur != nil && k > 0 &&
		(k <= len(cur.Top) || cur.Ranked <= len(cur.Top))
	var resp rankingsResponse
	if !cached {
		top, ranked, runs, crashes := m.Rankings(k)
		resp = rankingsResponse{Fresh: true, Runs: runs, Crashes: crashes,
			Ranked: ranked, Top: top}
		if cur != nil {
			resp.Seq = cur.Seq
		}
		m.stateMu.RLock()
		resp.Converged = m.converged
		m.stateMu.RUnlock()
	} else {
		top := cur.Top
		if k < len(top) {
			top = top[:k]
		}
		resp = rankingsResponse{Seq: cur.Seq, Runs: cur.Runs, Crashes: cur.Crashes,
			Ranked: cur.Ranked, Converged: cur.Converged, Top: top}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// heartbeatInterval paces the SSE keepalive comments that hold idle
// /watch connections open through proxies.
const heartbeatInterval = 15 * time.Second

// snapshotThrottle × a snapshot's own duration is the pause the cadence
// worker takes after each snapshot, capping the worker's CPU duty cycle
// at roughly 1/snapshotThrottle of a core however fast reports arrive.
// maxSnapshotPause bounds the staleness throttling can introduce when
// one snapshot is very slow (huge counter spaces).
const (
	snapshotThrottle = 255
	maxSnapshotPause = time.Second
)

// ServeWatch handles GET /watch: a Server-Sent-Events stream of
// `snapshot`, `converged`, and `diverged` events. A newly connected
// client immediately receives the latest snapshot. Slow clients drop
// events rather than stall the snapshot path.
func (m *Monitor) ServeWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ch := make(chan []byte, 32)
	m.subMu.Lock()
	m.subs[ch] = struct{}{}
	m.subMu.Unlock()
	m.m.watchClients.Add(1)
	defer func() {
		m.subMu.Lock()
		delete(m.subs, ch)
		m.subMu.Unlock()
		m.m.watchClients.Add(-1)
	}()

	if _, err := fmt.Fprintf(w, "retry: 2000\n\n"); err != nil {
		return
	}
	if cur := m.Current(); cur != nil {
		if _, err := w.Write(formatEvent("snapshot", cur)); err != nil {
			return
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case b := <-ch:
			if _, err := w.Write(b); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Publish fans one arbitrary event out to every /watch subscriber — the
// hook other collector subsystems (the ingest-quality engine's
// anomaly/recovered events) use to ride the same SSE stream. Nil-safe,
// like every Monitor method.
func (m *Monitor) Publish(event string, v any) {
	if m == nil {
		return
	}
	m.publish(event, v)
}

// publish fans one event out to every /watch subscriber, never blocking:
// a subscriber whose buffer is full misses the event (and a counter
// records the drop) so ingest latency is never hostage to a slow reader.
func (m *Monitor) publish(event string, v any) {
	b := formatEvent(event, v)
	m.subMu.Lock()
	for ch := range m.subs {
		select {
		case ch <- b:
		default:
			m.m.dropped.Inc()
		}
	}
	m.subMu.Unlock()
}

// formatEvent renders one SSE frame.
func formatEvent(event string, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return []byte("event: " + event + "\ndata: " + string(data) + "\n\n")
}
