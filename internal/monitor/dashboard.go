package monitor

import "net/http"

// ServeDashboard handles GET /dashboard: a single self-contained HTML
// page, no external assets, that subscribes to /watch via EventSource
// and polls /stats — the in-browser view of the live triage console.
func (m *Monitor) ServeDashboard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

// dashboardHTML is the whole console. Vanilla JS + inline SVG only, so
// it works from a collector on an air-gapped fleet network.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>cbi live triage</title>
<style>
  :root { --bg:#11151a; --panel:#1a2026; --fg:#d6dde4; --dim:#7a8691;
          --accent:#5db0f0; --ok:#58c472; --bad:#e06c5a; --warn:#e0b95a; }
  * { box-sizing:border-box; }
  body { margin:0; background:var(--bg); color:var(--fg);
         font:14px/1.5 ui-monospace,SFMono-Regular,Menlo,Consolas,monospace; }
  header { display:flex; align-items:baseline; gap:16px; padding:14px 20px;
           border-bottom:1px solid #2a323a; flex-wrap:wrap; }
  header h1 { font-size:16px; margin:0; font-weight:600; }
  header .badge { padding:2px 10px; border-radius:10px; font-size:12px;
                  background:#333c45; color:var(--dim); }
  header .badge.converged { background:#1f4430; color:var(--ok); }
  header .badge.live { background:#1d3a52; color:var(--accent); }
  main { display:grid; grid-template-columns:2fr 1fr; gap:16px; padding:16px 20px; }
  @media (max-width:900px) { main { grid-template-columns:1fr; } }
  section { background:var(--panel); border:1px solid #2a323a;
            border-radius:6px; padding:12px 14px; }
  section h2 { font-size:12px; margin:0 0 8px; color:var(--dim);
               text-transform:uppercase; letter-spacing:.08em; }
  table { width:100%; border-collapse:collapse; }
  th, td { text-align:left; padding:4px 8px; font-size:13px;
           border-bottom:1px solid #242c34; white-space:nowrap; }
  td.name { white-space:normal; word-break:break-all; color:var(--fg); }
  th { color:var(--dim); font-weight:500; }
  td.num { text-align:right; font-variant-numeric:tabular-nums; }
  tr.entrant td { background:#20303d; }
  .bar { display:inline-block; height:9px; background:var(--accent);
         vertical-align:middle; border-radius:2px; }
  dl { display:grid; grid-template-columns:auto auto; gap:2px 14px; margin:0; }
  dt { color:var(--dim); } dd { margin:0; text-align:right;
       font-variant-numeric:tabular-nums; }
  svg { width:100%; height:64px; display:block; }
  .spark { fill:none; stroke:var(--bad); stroke-width:1.5; }
  .sparkfill { fill:rgba(224,108,90,.15); stroke:none; }
  #log { max-height:180px; overflow-y:auto; font-size:12px; color:var(--dim); }
  #log div { padding:1px 0; }
  #log .ev-converged { color:var(--ok); }
  #log .ev-diverged { color:var(--warn); }
  #log .ev-anomaly { color:var(--bad); }
  #log .ev-recovered { color:var(--ok); }
  #anoms .anom { color:var(--bad); font-size:12px; padding:1px 0; }
  #health.ok { color:var(--ok); } #health.bad { color:var(--bad); }
  #qtop td { font-size:12px; }
  footer { padding:8px 20px; color:var(--dim); font-size:12px; }
</style>
</head>
<body>
<header>
  <h1>cbi live triage</h1>
  <span id="conn" class="badge">connecting…</span>
  <span id="conv" class="badge">not converged</span>
  <span class="badge" id="seq">snapshot –</span>
</header>
<main>
  <section style="grid-row:span 2">
    <h2>Top predicates</h2>
    <table>
      <thead><tr><th>#</th><th>Importance</th><th></th><th>Incr</th>
        <th>F</th><th>S</th><th>Predicate</th></tr></thead>
      <tbody id="rows"><tr><td colspan="7">waiting for first snapshot…</td></tr></tbody>
    </table>
  </section>
  <section>
    <h2>Ingest</h2>
    <dl>
      <dt>runs</dt><dd id="runs">–</dd>
      <dt>crashes</dt><dd id="crashes">–</dd>
      <dt>crash rate</dt><dd id="rate">–</dd>
      <dt>ranked predicates</dt><dd id="ranked">–</dd>
      <dt>rank churn</dt><dd id="churn">–</dd>
      <dt>entrants / dropouts</dt><dd id="moves">–</dd>
      <dt>stable streak</dt><dd id="stable">–</dd>
      <dt>snapshot cost</dt><dd id="cost">–</dd>
    </dl>
  </section>
  <section>
    <h2>Crash rate</h2>
    <svg id="sparkline" viewBox="0 0 300 64" preserveAspectRatio="none"></svg>
  </section>
  <section id="quality" style="display:none">
    <h2>Population health</h2>
    <dl>
      <dt>status</dt><dd id="health">–</dd>
      <dt>accept rate</dt><dd id="qaccept">–</dd>
      <dt>rejected / quarantined</dt><dd id="qreject">–</dd>
      <dt>report bytes p50 / p99</dt><dd id="qbytes">–</dd>
      <dt>nonzeros p50 / p99</dt><dd id="qnz">–</dd>
      <dt>sampling</dt><dd id="qsampling">–</dd>
    </dl>
    <div id="anoms"></div>
    <table id="qtop"><tbody></tbody></table>
  </section>
  <section style="grid-column:1 / -1">
    <h2>Events</h2>
    <div id="log"></div>
  </section>
</main>
<footer>GET /rankings?top=K · GET /watch (SSE) · GET /stats · GET /quality · GET /metrics</footer>
<script>
'use strict';
const $ = id => document.getElementById(id);
const rates = [];           // crash-rate history for the sparkline
let prevTop = new Set();

function fmt(x, d) { return x === undefined ? '–' : x.toFixed(d === undefined ? 3 : d); }

function logLine(cls, text) {
  const div = document.createElement('div');
  div.className = cls;
  div.textContent = new Date().toLocaleTimeString() + '  ' + text;
  const log = $('log');
  log.prepend(div);
  while (log.childNodes.length > 200) log.removeChild(log.lastChild);
}

function drawSpark() {
  const svg = $('sparkline');
  if (rates.length < 2) return;
  const w = 300, h = 64, pad = 4;
  const n = rates.length, max = Math.max(...rates, 1e-9);
  const pt = i => [pad + (w - 2*pad) * i / (n - 1),
                   h - pad - (h - 2*pad) * rates[i] / max];
  let line = '', area = 'M' + pt(0)[0] + ',' + (h - pad);
  for (let i = 0; i < n; i++) {
    const [x, y] = pt(i);
    line += (i ? 'L' : 'M') + x.toFixed(1) + ',' + y.toFixed(1);
    area += 'L' + x.toFixed(1) + ',' + y.toFixed(1);
  }
  area += 'L' + pt(n-1)[0].toFixed(1) + ',' + (h - pad) + 'Z';
  svg.innerHTML = '<path class="sparkfill" d="' + area + '"/>' +
                  '<path class="spark" d="' + line + '"/>';
}

function render(s) {
  $('seq').textContent = 'snapshot ' + s.seq;
  $('runs').textContent = s.runs;
  $('crashes').textContent = s.crashes;
  const rate = s.runs ? s.crashes / s.runs : 0;
  $('rate').textContent = (100 * rate).toFixed(2) + '%';
  $('ranked').textContent = s.ranked;
  $('churn').textContent = fmt(s.churn && s.churn.rank_distance);
  $('moves').textContent = s.churn ? s.churn.new_entrants + ' / ' + s.churn.dropouts : '–';
  $('stable').textContent = s.stable;
  $('cost').textContent = (1000 * s.snapshot_seconds).toFixed(1) + ' ms';
  const conv = $('conv');
  conv.textContent = s.converged ? 'converged' : 'not converged';
  conv.className = 'badge' + (s.converged ? ' converged' : '');
  rates.push(rate);
  if (rates.length > 120) rates.shift();
  drawSpark();

  const rows = $('rows');
  rows.innerHTML = '';
  const maxImp = s.top.length ? s.top[0].importance : 1;
  const nowTop = new Set();
  for (const e of s.top) {
    nowTop.add(e.counter);
    const tr = document.createElement('tr');
    if (prevTop.size && !prevTop.has(e.counter)) tr.className = 'entrant';
    const bar = '<span class="bar" style="width:' +
      Math.max(2, 60 * e.importance / (maxImp || 1)).toFixed(0) + 'px"></span>';
    tr.innerHTML =
      '<td class="num">' + e.rank + '</td>' +
      '<td class="num">' + e.importance.toFixed(4) + '</td>' +
      '<td>' + bar + '</td>' +
      '<td class="num">' + e.increase.toFixed(3) + '</td>' +
      '<td class="num">' + e.true_fail + '</td>' +
      '<td class="num">' + e.true_ok + '</td>' +
      '<td class="name"></td>';
    tr.lastChild.textContent = e.name || ('counter ' + e.counter);
    rows.appendChild(tr);
  }
  if (!s.top.length) rows.innerHTML = '<tr><td colspan="7">no ranked predicates yet</td></tr>';
  prevTop = nowTop;
}

const es = new EventSource('watch');
es.onopen = () => { const c = $('conn'); c.textContent = 'live'; c.className = 'badge live'; };
es.onerror = () => { const c = $('conn'); c.textContent = 'reconnecting…'; c.className = 'badge'; };
es.addEventListener('snapshot', ev => render(JSON.parse(ev.data)));
es.addEventListener('converged', ev => {
  const d = JSON.parse(ev.data);
  logLine('ev-converged', 'CONVERGED after ' + d.runs + ' runs, ' +
    d.snapshots + ' snapshots, ' + d.seconds.toFixed(1) + 's' +
    (d.top.length ? ' — #1 ' + (d.top[0].name || 'counter ' + d.top[0].counter) : ''));
});
es.addEventListener('diverged', ev => {
  const d = JSON.parse(ev.data);
  logLine('ev-diverged', 'diverged at snapshot ' + d.seq + ' (' + d.runs + ' runs)');
});
es.addEventListener('anomaly', ev => {
  const a = JSON.parse(ev.data);
  logLine('ev-anomaly', 'ANOMALY ' + a.kind + ' on ' + a.target +
    ' (value ' + a.value.toFixed(2) + ', baseline ' + a.baseline.toFixed(2) + ')');
});
es.addEventListener('recovered', ev => {
  const a = JSON.parse(ev.data);
  logLine('ev-recovered', 'recovered: ' + a.kind + ' on ' + a.target);
});

// Population health: poll /quality (absent unless the collector runs the
// quality engine — the panel stays hidden until the first 200).
function renderQuality(q) {
  $('quality').style.display = '';
  const h = $('health');
  const n = q.anomalies ? q.anomalies.length : 0;
  h.textContent = n ? n + ' active anomal' + (n > 1 ? 'ies' : 'y') : 'healthy';
  h.className = n ? 'bad' : 'ok';
  const acc = q.rates && q.rates['accept'];
  $('qaccept').textContent = acc ?
    acc.last_per_sec.toFixed(1) + '/s (ewma ' + acc.ewma_per_sec.toFixed(1) + '/s)' : '–';
  $('qreject').textContent = q.rejected_total + ' / ' + q.quarantined_total;
  $('qbytes').textContent = q.report_bytes.count ?
    q.report_bytes.p50.toFixed(0) + ' / ' + q.report_bytes.p99.toFixed(0) + ' B' : '–';
  $('qnz').textContent = q.report_nonzeros.count ?
    q.report_nonzeros.p50.toFixed(0) + ' / ' + q.report_nonzeros.p99.toFixed(0) : '–';
  $('qsampling').textContent = q.sampling.verdict +
    (q.sampling.reports ? ' (tv ' + q.sampling.tv_distance.toFixed(3) + ')' : '');
  const anoms = $('anoms');
  anoms.innerHTML = '';
  for (const a of q.anomalies || []) {
    const div = document.createElement('div');
    div.className = 'anom';
    div.textContent = '⚠ ' + a.kind + ' on ' + a.target;
    anoms.appendChild(div);
  }
  const tb = $('qtop').tBodies[0];
  tb.innerHTML = '';
  for (const s of (q.top_sources || []).slice(0, 5)) {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td class="name"></td><td class="num"></td>';
    tr.firstChild.textContent = s.key;
    tr.lastChild.textContent = '≤' + s.count;
    tb.appendChild(tr);
  }
}
async function pollQuality() {
  try {
    const resp = await fetch('quality');
    if (resp.ok) renderQuality(await resp.json());
  } catch (e) { /* collector without quality engine; leave hidden */ }
}
pollQuality();
setInterval(pollQuality, 2000);
</script>
</body>
</html>
`
