package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cbi/internal/analysis/score"
	"cbi/internal/report"
	"cbi/internal/telemetry"
)

// fakeSource is a Source whose state the test mutates between snapshots.
type fakeSource struct {
	acc *score.Accum
}

func (f *fakeSource) ScoreState() *score.Accum { return f.acc }

// accumOf folds the given reports into a fresh accumulator.
func accumOf(t *testing.T, n int, spans []score.SiteSpan, reps []*report.Report) *score.Accum {
	t.Helper()
	acc := score.NewAccum(n, spans)
	for _, r := range reps {
		if err := acc.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// rep builds a report with the given nonzero counters in an n-counter
// space.
func rep(id uint64, crashed bool, n int, nonzero ...int) *report.Report {
	counters := make([]uint64, n)
	for _, c := range nonzero {
		counters[c] = 1
	}
	return &report.Report{RunID: id, Program: "p", Crashed: crashed, Counters: counters}
}

func newBound(t *testing.T, cfg Config, src Source) *Monitor {
	t.Helper()
	m := New(cfg)
	m.Bind(src, telemetry.NewRegistry())
	t.Cleanup(m.Stop)
	return m
}

func TestRankDistance(t *testing.T) {
	ranks := func(ids ...int) map[int]int {
		m := make(map[int]int, len(ids))
		for i, id := range ids {
			m[id] = i
		}
		return m
	}
	cases := []struct {
		name     string
		old, cur map[int]int
		want     float64
	}{
		{"both empty", ranks(), ranks(), 0},
		{"identical", ranks(1, 2, 3), ranks(1, 2, 3), 0},
		{"reversed", ranks(1, 2, 3), ranks(3, 2, 1), 1},
		{"single swap", ranks(1, 2, 3), ranks(2, 1, 3), 1.0 / 3},
		// Disjoint top-Ks: every old member outranks every new member in
		// the old list and vice versa, so every old-new pair is discordant:
		// 4 of C(4,2)=6 pairs.
		{"disjoint", ranks(1, 2), ranks(3, 4), 4.0 / 6},
		{"one entrant at bottom", ranks(1, 2), ranks(1, 3), 1.0 / 3},
		{"singleton", ranks(1), ranks(1), 0},
	}
	for _, tc := range cases {
		got := rankDistance(tc.old, tc.cur, len(tc.old), len(tc.cur))
		if got != tc.want {
			t.Errorf("%s: rankDistance = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestChurnCounts(t *testing.T) {
	ch := churnOf([]int{1, 2, 3}, []int{2, 4, 5})
	if ch.NewEntrants != 2 || ch.Dropouts != 2 {
		t.Fatalf("churn = %+v, want 2 entrants, 2 dropouts", ch)
	}
}

// TestConvergence drives snapshots over changing then stable state and
// watches the converged flag transition (and divergence reset it).
func TestConvergence(t *testing.T) {
	const n = 4
	spans := []score.SiteSpan{{Base: 0, Len: n}}
	// State A ranks counter 0 and 1; crashes observe them true.
	repsA := []*report.Report{
		rep(0, true, n, 0, 1), rep(1, true, n, 0, 1), rep(2, false, n, 2),
		rep(3, true, n, 0), rep(4, false, n, 3),
	}
	src := &fakeSource{acc: accumOf(t, n, spans, repsA)}
	m := newBound(t, Config{TopK: 2, StableFor: 2}, src)

	s1 := m.Snapshot()
	if s1.Converged || s1.Stable != 1 {
		t.Fatalf("first snapshot: stable=%d converged=%v", s1.Stable, s1.Converged)
	}
	s2 := m.Snapshot()
	if !s2.Converged {
		t.Fatalf("second identical snapshot should converge (stable=%d)", s2.Stable)
	}
	runs, seq, _, ok := m.Convergence()
	if !ok || seq != 2 || runs != len(repsA) {
		t.Fatalf("Convergence() = (%d,%d,%v), want runs=%d seq=2", runs, seq, ok, len(repsA))
	}
	st := m.TriageStats()
	if !st.Converged || st.RankingsSnapshots != 2 || st.LastSnapshotUnix == 0 {
		t.Fatalf("TriageStats = %+v", st)
	}

	// Shift the rankings: counter 1 overtakes counter 0 → divergence.
	more := append(append([]*report.Report{}, repsA...),
		rep(5, true, n, 1), rep(6, true, n, 1), rep(7, true, n, 1),
		rep(8, true, n, 1), rep(9, true, n, 1))
	src.acc = accumOf(t, n, spans, more)
	s3 := m.Snapshot()
	if s3.Converged || s3.Stable != 1 {
		t.Fatalf("rank shift should diverge: %+v", s3)
	}
	// First-convergence record is preserved across divergence.
	if _, seq, _, ok := m.Convergence(); !ok || seq != 2 {
		t.Fatalf("first convergence record lost: seq=%d ok=%v", seq, ok)
	}
}

// TestEmptyRankingsNeverConverge: an idle collector (interval ticker
// firing on no data) must not declare victory over an empty top-K.
func TestEmptyRankingsNeverConverge(t *testing.T) {
	src := &fakeSource{acc: score.NewAccum(4, nil)}
	m := newBound(t, Config{TopK: 3, StableFor: 2}, src)
	for i := 0; i < 5; i++ {
		if s := m.Snapshot(); s.Converged {
			t.Fatalf("converged on empty rankings at snapshot %d", i+1)
		}
	}
}

// TestCadenceSnapshots: ReportFolded crossings wake the worker, which
// eventually publishes a snapshot without any forced call.
func TestCadenceSnapshots(t *testing.T) {
	const n = 4
	reps := []*report.Report{rep(0, true, n, 0), rep(1, false, n, 1)}
	src := &fakeSource{acc: accumOf(t, n, nil, reps)}
	m := newBound(t, Config{EveryReports: 2}, src)
	for i := 0; i < 4; i++ {
		m.ReportFolded()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Current() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no cadence snapshot within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if m.Current().Runs != 2 {
		t.Fatalf("snapshot runs = %d, want 2", m.Current().Runs)
	}
}

func TestServeRankings(t *testing.T) {
	const n = 6
	spans := []score.SiteSpan{{Base: 0, Len: n}}
	// Two ranked predicates (counters 0 and 1), snapshot K of 1, so
	// ?top=50 genuinely needs a fresh recompute.
	reps := []*report.Report{
		rep(0, true, n, 0, 1), rep(1, true, n, 0), rep(2, true, n, 0, 2),
		rep(3, false, n, 3), rep(4, false, n, 4), rep(5, true, n, 1),
	}
	src := &fakeSource{acc: accumOf(t, n, spans, reps)}
	m := newBound(t, Config{TopK: 1, PredicateName: func(c int) string {
		return fmt.Sprintf("pred-%d", c)
	}}, src)

	get := func(url string) rankingsResponse {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, url, nil)
		w := httptest.NewRecorder()
		m.ServeRankings(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", url, w.Code, w.Body)
		}
		var resp rankingsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Before any snapshot: served fresh from live state.
	resp := get("/rankings")
	if !resp.Fresh || len(resp.Top) == 0 || resp.Runs != len(reps) {
		t.Fatalf("pre-snapshot response: %+v", resp)
	}
	if resp.Top[0].Name != fmt.Sprintf("pred-%d", resp.Top[0].Counter) {
		t.Fatalf("predicate name not applied: %+v", resp.Top[0])
	}

	m.Snapshot()
	resp = get("/rankings")
	if resp.Fresh || resp.Seq != 1 {
		t.Fatalf("post-snapshot response should serve the cached snapshot: %+v", resp)
	}
	if resp2 := get("/rankings?fresh=1"); !resp2.Fresh {
		t.Fatal("fresh=1 should recompute")
	}
	if resp2 := get("/rankings?top=1"); len(resp2.Top) != 1 {
		t.Fatalf("top=1 returned %d entries", len(resp2.Top))
	}
	// Asking for more than the snapshot holds falls back to fresh.
	if resp2 := get("/rankings?top=50"); !resp2.Fresh {
		t.Fatal("top beyond snapshot K should recompute")
	}

	w := httptest.NewRecorder()
	m.ServeRankings(w, httptest.NewRequest(http.MethodPost, "/rankings", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /rankings = %d, want 405", w.Code)
	}
	w = httptest.NewRecorder()
	m.ServeRankings(w, httptest.NewRequest(http.MethodGet, "/rankings?top=x", nil))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad top parameter = %d, want 400", w.Code)
	}
}

// readEvent scans one SSE frame ("event:" + "data:" lines) from the
// stream, skipping comments and retry lines.
func readEvent(t *testing.T, sc *bufio.Scanner) (event string, data []byte) {
	t.Helper()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && event != "":
			return event, data
		}
	}
	t.Fatalf("SSE stream ended early: %v", sc.Err())
	return "", nil
}

func TestServeWatch(t *testing.T) {
	const n = 4
	spans := []score.SiteSpan{{Base: 0, Len: n}}
	reps := []*report.Report{
		rep(0, true, n, 0), rep(1, true, n, 0), rep(2, false, n, 1),
	}
	src := &fakeSource{acc: accumOf(t, n, spans, reps)}
	m := newBound(t, Config{TopK: 2, StableFor: 2}, src)
	m.Snapshot() // a connecting client receives the current snapshot

	ts := httptest.NewServer(http.HandlerFunc(m.ServeWatch))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	ev, data := readEvent(t, sc)
	if ev != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", ev)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || snap.Runs != len(reps) {
		t.Fatalf("initial snapshot = %+v", snap)
	}

	// The second identical snapshot converges (StableFor=2): the stream
	// carries the snapshot event then the converged event.
	m.Snapshot()
	ev, _ = readEvent(t, sc)
	if ev != "snapshot" {
		t.Fatalf("event = %q, want snapshot", ev)
	}
	ev, data = readEvent(t, sc)
	if ev != "converged" {
		t.Fatalf("event = %q, want converged", ev)
	}
	var conv convergedEvent
	if err := json.Unmarshal(data, &conv); err != nil {
		t.Fatal(err)
	}
	if conv.Seq != 2 || len(conv.Top) == 0 {
		t.Fatalf("converged event = %+v", conv)
	}

	w := httptest.NewRecorder()
	m.ServeWatch(w, httptest.NewRequest(http.MethodPost, "/watch", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /watch = %d, want 405", w.Code)
	}
}

func TestServeDashboard(t *testing.T) {
	m := newBound(t, Config{}, &fakeSource{acc: score.NewAccum(1, nil)})
	w := httptest.NewRecorder()
	m.ServeDashboard(w, httptest.NewRequest(http.MethodGet, "/dashboard", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /dashboard = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"<!DOCTYPE html>", "EventSource('watch')", "cbi live triage"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	w = httptest.NewRecorder()
	m.ServeDashboard(w, httptest.NewRequest(http.MethodPost, "/dashboard", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /dashboard = %d, want 405", w.Code)
	}
}

func TestNilMonitorAccessors(t *testing.T) {
	var m *Monitor
	if st := m.TriageStats(); st != (TriageStats{}) {
		t.Fatalf("nil TriageStats = %+v", st)
	}
	m.ReportFolded() // must not panic
	m.Stop()
	if m.Current() != nil {
		t.Fatal("nil Current should be nil")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	man := &Manifest{
		Program:     "p",
		NumCounters: 6,
		Sites:       [][2]int{{0, 3}, {3, 3}},
		Predicates:  []string{"a", "b", "c", "d", "e", "f"},
	}
	path := t.TempDir() + "/sites.json"
	if err := man.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCounters != 6 || len(got.Sites) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	spans := got.Spans()
	if spans[1] != (score.SiteSpan{Base: 3, Len: 3}) {
		t.Fatalf("spans = %+v", spans)
	}
	if got.PredicateName(2) != "c" || got.PredicateName(99) != "counter 99" {
		t.Fatalf("names = %q, %q", got.PredicateName(2), got.PredicateName(99))
	}
}
