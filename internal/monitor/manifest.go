package monitor

import (
	"encoding/json"
	"fmt"
	"os"

	"cbi/internal/analysis/score"
	"cbi/internal/cfg"
)

// Manifest is the site layout a standalone collector needs to score
// predicates with full context: the counter space, each site's counter
// span, and human-readable predicate names. `cbi-analyze -sites-out`
// writes one after instrumenting a study program; `cbi-collect -sites`
// loads it. Without a manifest the monitor still ranks (Context(P)
// degrades to 0, exactly like score.Score with nil spans), but with one
// the live rankings match an offline in-process analysis bit for bit.
type Manifest struct {
	Program     string   `json:"program"`
	NumCounters int      `json:"num_counters"`
	// Sites lists [base, len] counter spans, one per instrumentation site.
	Sites      [][2]int `json:"sites"`
	Predicates []string `json:"predicates,omitempty"`
}

// ManifestOf captures a program's site layout.
func ManifestOf(name string, prog *cfg.Program) *Manifest {
	m := &Manifest{
		Program:     name,
		NumCounters: prog.NumCounters,
		Sites:       make([][2]int, 0, len(prog.Sites)),
		Predicates:  make([]string, prog.NumCounters),
	}
	for _, s := range prog.Sites {
		m.Sites = append(m.Sites, [2]int{s.CounterBase, s.NumCounters})
	}
	for c := 0; c < prog.NumCounters; c++ {
		m.Predicates[c] = prog.PredicateName(c)
	}
	return m
}

// LoadManifest reads a manifest JSON file.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("monitor: parse manifest %s: %w", path, err)
	}
	if m.NumCounters <= 0 {
		return nil, fmt.Errorf("monitor: manifest %s: num_counters must be positive", path)
	}
	return &m, nil
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Spans converts the site list to score.SiteSpan form.
func (m *Manifest) Spans() []score.SiteSpan {
	spans := make([]score.SiteSpan, len(m.Sites))
	for i, s := range m.Sites {
		spans[i] = score.SiteSpan{Base: s[0], Len: s[1]}
	}
	return spans
}

// PredicateName returns the recorded name of a counter, falling back to
// "counter N" when the manifest carries no names.
func (m *Manifest) PredicateName(c int) string {
	if c >= 0 && c < len(m.Predicates) && m.Predicates[c] != "" {
		return m.Predicates[c]
	}
	return fmt.Sprintf("counter %d", c)
}
