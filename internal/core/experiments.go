package core

import (
	"fmt"
	"strings"
	"time"

	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/stats"
	"cbi/internal/workloads"
)

// Densities used throughout the evaluation (Table 2's columns).
var Table2Densities = []float64{1.0 / 100, 1.0 / 1000, 1.0 / 10000, 1.0 / 1000000}

// ----------------------------------------------------------------------------
// Table 1: static metrics

// Table1Row is one benchmark's static metrics.
type Table1Row struct {
	Benchmark string
	Suite     string
	Metrics   instrument.Metrics
}

// Table1 computes the static sampling-transformation metrics for every
// benchmark under the bounds (CCured-check) scheme.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range workloads.All() {
		built, err := workloads.BuildBenchmark(b.Name, instrument.SchemeSet{Bounds: true}, true)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", b.Name, err)
		}
		rows = append(rows, Table1Row{
			Benchmark: b.Name,
			Suite:     b.Suite,
			Metrics:   instrument.ComputeMetrics(built.Program),
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString(instrument.TableHeader() + "\n")
	for _, r := range rows {
		sb.WriteString(r.Metrics.Row(r.Benchmark) + "\n")
	}
	return sb.String()
}

// ----------------------------------------------------------------------------
// Table 2 / Figure 4: runtime overhead

// OverheadRow is one benchmark's relative cost under unconditional and
// sampled instrumentation, as a ratio to the check-free baseline.
// Ratios are computed over deterministic VM step counts; RatioWall
// additionally reports wall-clock ratios when measured.
type OverheadRow struct {
	Benchmark     string
	BaselineSteps uint64
	Always        float64
	Sampled       []float64 // parallel to the density list used
	WallAlways    float64
	WallSampled   []float64
}

// OverheadConfig controls the overhead measurements.
type OverheadConfig struct {
	Densities []float64
	Scheme    instrument.SchemeSet
	// Repeats averages wall-clock measurements; steps are deterministic.
	Repeats int
	// Wall enables wall-clock timing (slower; benches use it, tests not).
	Wall bool
	Seed int64
}

// MeasureOverhead runs one benchmark through baseline, unconditional, and
// sampled configurations.
func MeasureOverhead(name string, conf OverheadConfig) (OverheadRow, error) {
	if len(conf.Densities) == 0 {
		conf.Densities = Table2Densities
	}
	if conf.Repeats <= 0 {
		conf.Repeats = 3
	}
	row := OverheadRow{Benchmark: name}

	var base, uncond *Built
	{
		b, err := buildAny(name, instrument.SchemeSet{}, false, true)
		if err != nil {
			return row, err
		}
		base = b
		u, err := buildAny(name, conf.Scheme, false, false)
		if err != nil {
			return row, err
		}
		uncond = u
	}

	run := func(prog *Built, density float64, cdSeed int64) (uint64, time.Duration, error) {
		start := time.Now()
		res := interp.Run(prog.Program, interp.Config{
			Seed:          conf.Seed,
			Density:       density,
			CountdownSeed: cdSeed,
			Fuel:          2_000_000_000,
		})
		if res.Outcome != interp.OutcomeOK {
			return 0, 0, fmt.Errorf("overhead %s: crashed: %v", name, res.Trap)
		}
		return res.Steps, time.Since(start), nil
	}

	measure := func(prog *Built, density float64) (uint64, float64, error) {
		var steps uint64
		var wall time.Duration
		reps := 1
		if conf.Wall {
			reps = conf.Repeats
		}
		for i := 0; i < reps; i++ {
			s, w, err := run(prog, density, conf.Seed+int64(i))
			if err != nil {
				return 0, 0, err
			}
			steps = s
			wall += w
		}
		return steps, float64(wall) / float64(reps), nil
	}

	baseSteps, baseWall, err := measure(base, 0)
	if err != nil {
		return row, err
	}
	row.BaselineSteps = baseSteps

	alwaysSteps, alwaysWall, err := measure(uncond, 0)
	if err != nil {
		return row, err
	}
	row.Always = float64(alwaysSteps) / float64(baseSteps)
	if conf.Wall && baseWall > 0 {
		row.WallAlways = alwaysWall / baseWall
	}

	sampledBuilt, err := buildAny(name, conf.Scheme, true, false)
	if err != nil {
		return row, err
	}
	for _, d := range conf.Densities {
		s, w, err := measure(sampledBuilt, d)
		if err != nil {
			return row, err
		}
		row.Sampled = append(row.Sampled, float64(s)/float64(baseSteps))
		if conf.Wall && baseWall > 0 {
			row.WallSampled = append(row.WallSampled, w/baseWall)
		}
	}
	return row, nil
}

// Built is re-exported for the overhead helpers.
type Built = workloads.Built

// buildAny builds a Table 1 benchmark or one of the case studies.
func buildAny(name string, set instrument.SchemeSet, sampled, baseline bool) (*Built, error) {
	if baseline {
		set = instrument.SchemeSet{}
	}
	switch name {
	case "bc":
		return workloads.BuildBC(set, sampled)
	case "ccrypt":
		return workloads.BuildCcrypt(set, sampled)
	default:
		return workloads.BuildBenchmark(name, set, sampled)
	}
}

// Table2 measures every benchmark under the bounds scheme.
func Table2(conf OverheadConfig) ([]OverheadRow, error) {
	conf.Scheme = instrument.SchemeSet{Bounds: true}
	var rows []OverheadRow
	for _, b := range workloads.All() {
		row, err := MeasureOverhead(b.Name, conf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4 measures bc with scalar-pairs instrumentation across densities —
// the paper's Figure 4 (unconditional 1.13x; 1/1000 barely measurable).
// bc's fuzzed input sometimes crashes; Fig4 retries seeds until the run
// completes, since Figure 4 measures successful-run overhead.
func Fig4(conf OverheadConfig) (OverheadRow, error) {
	conf.Scheme = instrument.SchemeSet{ScalarPairs: true}
	var row OverheadRow
	var err error
	for seed := conf.Seed; seed < conf.Seed+50; seed++ {
		c := conf
		c.Seed = seed
		row, err = MeasureOverhead("bc", c)
		if err == nil {
			return row, nil
		}
	}
	return row, err
}

// FormatOverheadRows renders a Table 2 style block.
func FormatOverheadRows(rows []OverheadRow, densities []float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s", "benchmark", "always")
	for _, d := range densities {
		fmt.Fprintf(&sb, " %9s", fmt.Sprintf("1/%g", 1/d))
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 12+10*(len(densities)+1)) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8.2f", r.Benchmark, r.Always)
		for _, v := range r.Sampled {
			fmt.Fprintf(&sb, " %9.2f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ----------------------------------------------------------------------------
// §3.1.2: statically selective sampling

// SelectiveResult summarizes per-function instrumentation of one
// benchmark: code growth and worst-function overhead.
type SelectiveResult struct {
	Benchmark          string
	FullGrowth         float64 // code growth, whole-program instrumentation
	AvgSelectiveGrowth float64 // mean growth across single-function builds
	WorstOverhead      float64 // worst single-function slowdown at the density
	FuncsMeasured      int
}

// Selective reproduces the §3.1.2 experiment for one benchmark at the
// given density.
func Selective(name string, density float64, seed int64) (SelectiveResult, error) {
	out := SelectiveResult{Benchmark: name}
	b, err := workloads.ByName(name)
	if err != nil {
		return out, err
	}
	f, err := b.Parse()
	if err != nil {
		return out, err
	}
	baseline, err := instrument.BuildBaseline(f, nil)
	if err != nil {
		return out, err
	}
	baseSize := instrument.CodeSize(baseline)
	baseRes := interp.Run(baseline, interp.Config{Seed: seed, Fuel: 2_000_000_000})
	if baseRes.Outcome != interp.OutcomeOK {
		return out, fmt.Errorf("selective %s: baseline crashed", name)
	}

	full, err := instrument.Build(f, nil, instrument.SchemeSet{Bounds: true})
	if err != nil {
		return out, err
	}
	fullSampled := instrument.Sample(full, instrument.DefaultOptions())
	out.FullGrowth = float64(instrument.CodeSize(fullSampled)) / float64(baseSize)

	var growths []float64
	for _, fn := range full.FuncList {
		if fn.NumSites == 0 {
			continue
		}
		fname := fn.Name
		one, err := instrument.BuildFiltered(f, nil, instrument.SchemeSet{Bounds: true},
			func(n string) bool { return n == fname })
		if err != nil {
			return out, err
		}
		oneSampled := instrument.Sample(one, instrument.DefaultOptions())
		growths = append(growths, float64(instrument.CodeSize(oneSampled))/float64(baseSize))
		res := interp.Run(oneSampled, interp.Config{
			Seed: seed, Density: density, CountdownSeed: seed + 7, Fuel: 2_000_000_000,
		})
		if res.Outcome != interp.OutcomeOK {
			return out, fmt.Errorf("selective %s/%s: crashed", name, fname)
		}
		ratio := float64(res.Steps) / float64(baseRes.Steps)
		if ratio > out.WorstOverhead {
			out.WorstOverhead = ratio
		}
		out.FuncsMeasured++
	}
	out.AvgSelectiveGrowth = stats.Mean(growths)
	return out, nil
}

// ----------------------------------------------------------------------------
// §3.1.3: confidence arithmetic

// ConfidenceRow is one line of the §3.1.3 calculation.
type ConfidenceRow struct {
	Confidence float64
	EventRate  float64
	Density    float64
	Runs       int64
}

// ConfidenceTable reproduces the §3.1.3 numbers, including the paper's
// two worked examples.
func ConfidenceTable() []ConfidenceRow {
	var rows []ConfidenceRow
	for _, c := range []struct{ conf, rate, dens float64 }{
		{0.90, 1.0 / 100, 1.0 / 1000},
		{0.99, 1.0 / 1000, 1.0 / 1000},
		{0.90, 1.0 / 100, 1.0 / 100},
		{0.99, 1.0 / 100, 1.0 / 1000},
		{0.95, 1.0 / 1000, 1.0 / 100},
	} {
		rows = append(rows, ConfidenceRow{
			Confidence: c.conf,
			EventRate:  c.rate,
			Density:    c.dens,
			Runs:       stats.RunsNeeded(c.conf, c.rate, c.dens),
		})
	}
	return rows
}
