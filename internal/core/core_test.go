package core

import (
	"reflect"
	"strings"
	"testing"

	"cbi/internal/instrument"
)

// The §3.2 reproduction: fuzz ccrypt with sampled returns-scheme
// instrumentation and verify that predicate elimination isolates the EOF
// smoking gun.
func TestCcryptStudyIsolatesSmokingGun(t *testing.T) {
	study, err := RunCcryptStudy(4000, 1.0/100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if study.Crashes == 0 || study.Crashes == study.Runs {
		t.Fatalf("runs=%d crashes=%d", study.Runs, study.Crashes)
	}
	if len(study.Survivors) == 0 {
		t.Fatal("no survivors; the smoking gun was never sampled in a crash")
	}
	// The paper's result: the combination leaves a handful of predicates
	// (two in their data), and the xreadline() EOF predicate is among
	// them.
	if len(study.Survivors) > 6 {
		t.Errorf("too many survivors (%d):\n%s", len(study.Survivors), FormatSurvivors(study.Survivors))
	}
	foundGun := false
	for _, s := range study.Survivors {
		if strings.Contains(s.Name, "xreadline() return value == 0") {
			foundGun = true
		}
	}
	if !foundGun {
		t.Errorf("xreadline EOF predicate not among survivors:\n%s", FormatSurvivors(study.Survivors))
	}
	// Sanity on strategy counts (§3.2.3 shape): SC retains many,
	// UF retains few, the combination retains the least.
	c := study.Counts
	if !(c.UFandSC <= c.UniversalFalsehood && c.UFandSC <= c.SuccessfulCounterexample) {
		t.Errorf("combination should be smallest: %+v", c)
	}
	if c.LackOfFailingExample > c.UniversalFalsehood {
		t.Errorf("LFE should retain a subset of UF: %+v", c)
	}
}

func TestCcryptFig2Shrinks(t *testing.T) {
	study, err := RunCcryptStudy(1200, 1.0/100, 7)
	if err != nil {
		t.Fatal(err)
	}
	points := study.Fig2Points([]int{25, 100, 400, len(study.DB.Successes())}, 20, 3)
	if len(points) != 4 {
		t.Fatal("points")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Mean > points[i-1].Mean {
			t.Errorf("figure 2 not decreasing: %+v", points)
		}
	}
	// With all successes used, the count must match the full combined
	// elimination (modulo none: deterministic).
	last := points[len(points)-1]
	if int(last.Mean) != len(study.Survivors) || last.StdDev != 0 {
		t.Errorf("full-set point %+v vs %d survivors", last, len(study.Survivors))
	}
}

// The §3.3 reproduction: bc with scalar-pairs, logistic regression ranks
// the buggy line's predicates at the top.
func TestBCStudyPointsAtBuggyLine(t *testing.T) {
	study, err := RunBCStudy(BCStudyConfig{Runs: 1200, Density: 0, Seed: 11, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if study.Crashes == 0 {
		t.Fatal("no crashes")
	}
	if study.UsedFeatures == 0 || study.UsedFeatures >= study.RawFeatures {
		t.Errorf("feature elimination: %d of %d", study.UsedFeatures, study.RawFeatures)
	}
	if study.TestAccuracy < 0.85 {
		t.Errorf("test accuracy %.3f", study.TestAccuracy)
	}
	if len(study.Top) == 0 {
		t.Fatal("no ranked predicates")
	}
	// The paper's qualitative claim: the top predicates point into
	// more_arrays, and the buggy zeroing loop is among them. With exact
	// (unconditional) counters the l1 penalty concentrates weight on the
	// crash-perfect predicates, so we require the top features to sit in
	// more_arrays with at least one on the buggy line itself.
	if at := study.TopPointAtFunction(); at < 3 {
		t.Errorf("only %d of top-%d predicates point into more_arrays:\n%s",
			at, len(study.Top), FormatTop(study.Top))
	}
	if at := study.TopPointAtBug(); at < 1 {
		t.Errorf("no top predicate on the buggy line:\n%s", FormatTop(study.Top))
	}
	if study.BuggyLine <= 0 {
		t.Error("buggy line")
	}
}

func TestBCStudySampledStillWorks(t *testing.T) {
	// At 1/10 sampling with enough runs the signal survives sampling
	// noise (the paper used 1/1000 with 4,390 runs; we scale density up
	// to keep the test fast).
	study, err := RunBCStudy(BCStudyConfig{Runs: 1500, Density: 1.0 / 10, Seed: 23, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if study.TestAccuracy < 0.7 {
		t.Errorf("test accuracy %.3f", study.TestAccuracy)
	}
	if at := study.TopPointAtBug(); at < 2 {
		t.Errorf("top predicates do not point at the bug (%d):\n%s", at, FormatTop(study.Top))
	}
}

func TestTable1AllBenchmarks(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		m := r.Metrics
		if m.Functions == 0 || m.WithSites == 0 {
			t.Errorf("%s: %+v", r.Benchmark, m)
		}
		if m.AvgSitesPerFunc <= 0 || m.AvgThresholdWeight <= 0 {
			t.Errorf("%s: averages %+v", r.Benchmark, m)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "treeadd") || !strings.Contains(text, "li") {
		t.Error("format")
	}
}

func TestOverheadShapeOnOneBenchmark(t *testing.T) {
	row, err := MeasureOverhead("compress", OverheadConfig{Seed: 1, Scheme: instrument.SchemeSet{Bounds: true}})
	if err != nil {
		t.Fatal(err)
	}
	if row.Always <= 1 {
		t.Errorf("unconditional instrumentation should cost: %.3f", row.Always)
	}
	// Sampled at 1/100 must beat unconditional; sparser densities reach a
	// floor at or below the 1/100 cost.
	if len(row.Sampled) != len(Table2Densities) {
		t.Fatal("density columns")
	}
	if row.Sampled[0] >= row.Always {
		t.Errorf("1/100 sampling (%.3f) should beat always (%.3f)", row.Sampled[0], row.Always)
	}
	last := row.Sampled[len(row.Sampled)-1]
	if last > row.Sampled[0]+0.01 {
		t.Errorf("sparser sampling should not cost more: %v", row.Sampled)
	}
	if last <= 1 {
		t.Errorf("sampled code keeps some overhead (fast-path decrements): %.4f", last)
	}
	text := FormatOverheadRows([]OverheadRow{row}, Table2Densities)
	if !strings.Contains(text, "compress") {
		t.Error("format")
	}
}

func TestFig4BCOverheadShape(t *testing.T) {
	row, err := Fig4(OverheadConfig{Seed: 5, Densities: []float64{1.0 / 100, 1.0 / 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if row.Always <= 1 {
		t.Errorf("always: %.3f", row.Always)
	}
	if !(row.Sampled[1] <= row.Sampled[0] && row.Sampled[0] < row.Always) {
		t.Errorf("figure 4 shape violated: always=%.3f sampled=%v", row.Always, row.Sampled)
	}
}

func TestSelectiveSingleFunction(t *testing.T) {
	res, err := Selective("compress", 1.0/1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FuncsMeasured == 0 {
		t.Fatal("no functions measured")
	}
	// §3.1.2: single-function builds grow far less than whole-program
	// instrumentation.
	if !(1 < res.AvgSelectiveGrowth && res.AvgSelectiveGrowth < res.FullGrowth) {
		t.Errorf("growth: selective %.3f vs full %.3f", res.AvgSelectiveGrowth, res.FullGrowth)
	}
	if res.WorstOverhead <= 1 || res.WorstOverhead > res.FullGrowth+1 {
		t.Errorf("worst overhead: %.3f", res.WorstOverhead)
	}
}

func TestConfidenceTablePaperValues(t *testing.T) {
	rows := ConfidenceTable()
	if rows[0].Runs != 230258 {
		t.Errorf("row 0: %d", rows[0].Runs)
	}
	if rows[1].Runs != 4605168 {
		t.Errorf("row 1: %d", rows[1].Runs)
	}
}

func TestBuildAnyCaseStudies(t *testing.T) {
	for _, name := range []string{"bc", "ccrypt", "treeadd"} {
		var set instrument.SchemeSet
		switch name {
		case "bc":
			set.ScalarPairs = true
		case "ccrypt":
			set.Returns = true
		default:
			set.Bounds = true
		}
		b, err := buildAny(name, set, false, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Program == nil {
			t.Fatalf("%s: nil program", name)
		}
	}
	if _, err := buildAny("nonesuch", instrument.SchemeSet{}, false, false); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestStudySurvivorNamesCarryPositions(t *testing.T) {
	study, err := RunCcryptStudy(600, 1.0/20, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range study.Survivors {
		if !strings.Contains(s.Name, "ccrypt.mc:") {
			t.Errorf("survivor name lacks position: %q", s.Name)
		}
	}
}

// The default sparse analysis path must reproduce the dense oracle's
// study bit for bit: same cross-validated lambda, coefficients, ranking,
// and test accuracy.
func TestBCStudySparseMatchesDenseOracle(t *testing.T) {
	conf := BCStudyConfig{Runs: 600, Density: 1.0 / 10, Seed: 31, Epochs: 15, Workers: 2}
	sparse, err := RunBCStudy(conf)
	if err != nil {
		t.Fatal(err)
	}
	conf.DenseAnalysis = true
	conf.Workers = 1
	dense, err := RunBCStudy(conf)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Lambda != dense.Lambda {
		t.Errorf("lambda %g != %g", sparse.Lambda, dense.Lambda)
	}
	if sparse.Model.Beta0 != dense.Model.Beta0 || !reflect.DeepEqual(sparse.Model.Beta, dense.Model.Beta) {
		t.Error("models differ")
	}
	if sparse.TestAccuracy != dense.TestAccuracy {
		t.Errorf("test accuracy %v != %v", sparse.TestAccuracy, dense.TestAccuracy)
	}
	if !reflect.DeepEqual(sparse.Top, dense.Top) {
		t.Errorf("rankings differ:\n%+v\n%+v", sparse.Top, dense.Top)
	}
	if sparse.SmokingGunRank != dense.SmokingGunRank {
		t.Error("smoking-gun rank differs")
	}
}
