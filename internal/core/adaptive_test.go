package core

import (
	"strings"
	"testing"
)

func TestAdaptiveCcryptNarrowsToSmokingGun(t *testing.T) {
	res, err := RunAdaptiveCcrypt(AdaptiveConfig{
		Rounds:       3,
		RunsPerRound: 1500,
		StartDensity: 1.0 / 100,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds: %d", len(res.Rounds))
	}
	first, last := res.Rounds[0], res.Rounds[len(res.Rounds)-1]
	// The deployed site population must shrink across rounds.
	if last.Sites >= first.Sites {
		t.Errorf("sites did not shrink: %+v", res.Rounds)
	}
	// Density must escalate as the population shrinks.
	if last.Density <= first.Density {
		t.Errorf("density did not escalate: %+v", res.Rounds)
	}
	// The final survivors include the smoking gun.
	found := false
	for _, s := range res.Survivors {
		if strings.Contains(s.Name, "xreadline() return value == 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("survivors: %+v", res.Survivors)
	}
	if len(res.Survivors) > 4 {
		t.Errorf("adaptive loop should converge to few survivors: %+v", res.Survivors)
	}
	for _, r := range res.Rounds {
		if r.Crashes == 0 {
			t.Errorf("round %d saw no crashes", r.Round)
		}
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	res, err := RunAdaptiveCcrypt(AdaptiveConfig{RunsPerRound: 200, StartDensity: 1.0 / 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 { // default rounds
		t.Errorf("default rounds: %d", len(res.Rounds))
	}
	// Density growth capped at 1.
	if last := res.Rounds[len(res.Rounds)-1]; last.Density > 1 {
		t.Errorf("density exceeded 1: %+v", last)
	}
}
