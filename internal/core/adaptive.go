package core

import (
	"fmt"

	"cbi/internal/analysis/elim"
	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/minic"
	"cbi/internal/report"
	"cbi/internal/workloads"
)

// Adaptive bug isolation: §3.1.2 observes that "given a suitable dynamic
// instrumentation infrastructure, sites can be added or removed over time
// as debugging needs and intermediate results warrant". This driver
// implements that loop for the ccrypt study: each round deploys only the
// sites still under suspicion, at a density that rises as the site
// population shrinks (fewer sites -> the per-user budget affords denser
// sampling of each).

// AdaptiveRound records one deployment round.
type AdaptiveRound struct {
	Round      int
	Sites      int
	Density    float64
	Runs       int
	Crashes    int
	Candidates int // UF ∧ SC survivors in this round's data
}

// AdaptiveResult is the outcome of an adaptive study.
type AdaptiveResult struct {
	Rounds    []AdaptiveRound
	Survivors []Survivor
}

// AdaptiveConfig parameterizes RunAdaptiveCcrypt.
type AdaptiveConfig struct {
	Rounds       int
	RunsPerRound int
	// StartDensity is round 1's sampling density; each later round
	// multiplies it by DensityGrowth (default 4) capped at 1.
	StartDensity  float64
	DensityGrowth float64
	Seed          int64
	// Workers is each round's fleet concurrency (default
	// runtime.NumCPU()); round results are deterministic regardless.
	Workers int
}

// siteKey identifies a site stably across rebuilds of the same file.
func siteKey(s *cfg.Site) string {
	return fmt.Sprintf("%s|%s|%s", s.Pos, s.Fn, s.Text)
}

// RunAdaptiveCcrypt runs the multi-round adaptive isolation loop on the
// ccrypt workload with the returns scheme.
func RunAdaptiveCcrypt(conf AdaptiveConfig) (*AdaptiveResult, error) {
	if conf.Rounds <= 0 {
		conf.Rounds = 3
	}
	if conf.DensityGrowth <= 1 {
		conf.DensityGrowth = 4
	}
	file, err := minic.Parse("ccrypt.mc", workloads.CcryptSource)
	if err != nil {
		return nil, err
	}

	res := &AdaptiveResult{}
	var keep map[string]bool // nil = all sites
	density := conf.StartDensity
	var lastProg *cfg.Program
	var lastCombined []bool

	for round := 1; round <= conf.Rounds; round++ {
		schemes := &instrument.Schemes{Set: instrument.SchemeSet{Returns: true}}
		if keep != nil {
			kept := keep
			schemes.KeepSite = func(s *cfg.Site) bool { return kept[siteKey(s)] }
		}
		prog, err := cfg.Build(file, workloads.CcryptBuiltins(), schemes)
		if err != nil {
			return nil, err
		}
		sampled := instrument.Sample(prog, instrument.DefaultOptions())
		db, err := workloads.CcryptFleet(sampled, workloads.FleetConfig{
			Runs:     conf.RunsPerRound,
			Density:  density,
			SeedBase: conf.Seed + int64(round)*1_000_000,
			Workers:  conf.Workers,
		})
		if err != nil {
			return nil, err
		}
		agg := report.NewAggregate("ccrypt", prog.NumCounters)
		if err := agg.FromDB(db); err != nil {
			return nil, err
		}
		combined := elim.Intersect(elim.UniversalFalsehood(agg), elim.SuccessfulCounterexample(agg))

		res.Rounds = append(res.Rounds, AdaptiveRound{
			Round:      round,
			Sites:      len(prog.Sites),
			Density:    density,
			Runs:       db.Len(),
			Crashes:    len(db.Failures()),
			Candidates: elim.Count(combined),
		})
		lastProg, lastCombined = prog, combined

		// Next round: keep only the sites owning surviving counters.
		keep = map[string]bool{}
		for _, c := range elim.Indices(combined) {
			if s := prog.SiteForCounter(c); s != nil {
				keep[siteKey(s)] = true
			}
		}
		if len(keep) == 0 {
			// Nothing survived (e.g. no crash sampled this round): retry
			// the same deployment next round rather than shipping an
			// uninstrumented binary.
			keep = nil
		}
		density *= conf.DensityGrowth
		if density > 1 {
			density = 1
		}
	}

	for _, c := range elim.Indices(lastCombined) {
		res.Survivors = append(res.Survivors, Survivor{Counter: c, Name: lastProg.PredicateName(c)})
	}
	return res, nil
}
