// Package core ties the pipeline together: it exposes the paper's three
// applications as one-call studies (assertion-cost sharing §3.1,
// deterministic bug isolation §3.2, statistical debugging §3.3) and the
// generators for every table and figure in the evaluation.
//
// The flow mirrors the system described in the paper:
//
//	MiniC source ──instrument──▶ sites ──Sample──▶ fast/slow program
//	     │                                             │ (many remote runs)
//	     ▼                                             ▼
//	 baseline                                 counter-vector reports
//	                                                    │
//	                              elimination / logistic regression
package core

import (
	"context"
	"fmt"

	"cbi/internal/analysis/elim"
	"cbi/internal/analysis/logreg"
	"cbi/internal/analysis/score"
	"cbi/internal/cfg"
	"cbi/internal/instrument"
	"cbi/internal/report"
	"cbi/internal/telemetry"
	"cbi/internal/telemetry/trace"
	"cbi/internal/workloads"
)

// ----------------------------------------------------------------------------
// §3.2: deterministic bug isolation on ccrypt

// CcryptStudy is the outcome of the §3.2 experiment.
type CcryptStudy struct {
	Program   *cfg.Program
	DB        *report.DB
	Runs      int
	Crashes   int
	Counts    elim.StrategyCounts
	Survivors []Survivor
}

// Survivor is a predicate retained by the combined elimination.
type Survivor struct {
	Counter int
	Name    string
}

// CcryptStudyConfig parameterizes RunCcryptStudyOpts.
type CcryptStudyConfig struct {
	Runs    int
	Density float64 // 0 = unconditional instrumentation
	Seed    int64
	// Workers is the fleet's concurrency (default runtime.NumCPU();
	// results are deterministic regardless — see workloads.FleetConfig).
	Workers int
	// Submit, when set, additionally routes every fleet report through it
	// — e.g. a collect.Client's SubmitContext, exercising the full HTTP
	// ingest path of a remote collector. The context carries the run's
	// trace span when Tracer is set.
	Submit func(context.Context, *report.Report) error
	// Tracer, when set, records one distributed trace per fleet run
	// (fleet.run → fleet.execute / client.submit → server.*).
	Tracer *trace.Collector
}

// RunCcryptStudy instruments ccrypt with the returns scheme, fuzzes it
// for the given number of runs at the given sampling density, and applies
// the elimination strategies. With density 0 the instrumentation runs
// unconditionally (no sampling transformation).
func RunCcryptStudy(runs int, density float64, seed int64) (*CcryptStudy, error) {
	return RunCcryptStudyOpts(CcryptStudyConfig{Runs: runs, Density: density, Seed: seed})
}

// RunCcryptStudyOpts is RunCcryptStudy with the full configuration
// surface. Each pipeline stage records a telemetry span, so
// telemetry.Default.FormatSpanSummary() after a study shows where the
// wall-clock went.
func RunCcryptStudyOpts(conf CcryptStudyConfig) (*CcryptStudy, error) {
	sampled := conf.Density > 0
	buildSpan := telemetry.StartSpan("study.build")
	built, err := workloads.BuildCcrypt(instrument.SchemeSet{Returns: true}, sampled)
	buildSpan.End()
	if err != nil {
		return nil, err
	}
	effDensity := conf.Density
	if !sampled {
		effDensity = 0
	}
	db, err := workloads.CcryptFleet(built.Program, workloads.FleetConfig{
		Runs: conf.Runs, Density: effDensity, SeedBase: conf.Seed,
		Workers: conf.Workers, Submit: conf.Submit, Tracer: conf.Tracer,
	})
	if err != nil {
		return nil, err
	}
	aggSpan := telemetry.StartSpan("study.aggregate")
	agg := report.NewAggregate("ccrypt", built.Program.NumCounters)
	if err := agg.FromDB(db); err != nil {
		aggSpan.End()
		return nil, err
	}
	aggSpan.End()
	elimSpan := telemetry.StartSpan("study.eliminate")
	spans := siteSpans(built.Program)
	counts := elim.Summarize(agg, spans)
	combined := elim.Intersect(elim.UniversalFalsehood(agg), elim.SuccessfulCounterexample(agg))
	elimSpan.End()
	study := &CcryptStudy{
		Program: built.Program,
		DB:      db,
		Runs:    db.Len(),
		Crashes: len(db.Failures()),
		Counts:  counts,
	}
	for _, c := range elim.Indices(combined) {
		study.Survivors = append(study.Survivors, Survivor{Counter: c, Name: built.Program.PredicateName(c)})
	}
	return study, nil
}

// Fig2Points reproduces Figure 2 on an existing ccrypt study: the mean
// and standard deviation of the surviving candidate count as successful
// runs accumulate, over `trials` random orderings.
func (s *CcryptStudy) Fig2Points(sizes []int, trials int, seed int64) []elim.Point {
	agg := report.NewAggregate("ccrypt", s.Program.NumCounters)
	_ = agg.FromDB(s.DB)
	initial := elim.UniversalFalsehood(agg)
	return elim.Progressive(s.DB.Successes(), initial, sizes, trials, seed)
}

func siteSpans(p *cfg.Program) []elim.SiteSpan {
	spans := make([]elim.SiteSpan, 0, len(p.Sites))
	for _, s := range p.Sites {
		spans = append(spans, elim.SiteSpan{Base: s.CounterBase, Len: s.NumCounters})
	}
	return spans
}

// ----------------------------------------------------------------------------
// §3.3: statistical debugging on bc

// BCStudy is the outcome of the §3.3 experiment.
type BCStudy struct {
	Program      *cfg.Program
	DB           *report.DB
	Runs         int
	Crashes      int
	RawFeatures  int // total counters (the paper's 30,150)
	UsedFeatures int // after discarding always-zero counters (the 2,908)
	Lambda       float64
	Model        *logreg.Model
	TestAccuracy float64
	Top          []RankedPredicate
	// SmokingGunRank is the rank of "indx > a_count" at the buggy line
	// among positive coefficients (the paper reports 240th), or 0 if it
	// received no positive weight.
	SmokingGunRank int
	BuggyLine      int
}

// RankedPredicate is a regression feature with its coefficient.
type RankedPredicate struct {
	Counter int
	Name    string
	Beta    float64
}

// BCStudyConfig parameterizes RunBCStudy.
type BCStudyConfig struct {
	Runs    int
	Density float64 // 0 = unconditional instrumentation
	Seed    int64
	// Workers mirrors CcryptStudyConfig.Workers.
	Workers int
	Lambdas []float64 // cross-validated; default {0.05, 0.1, 0.3, 1.0}
	Epochs  int
	TopK    int
	// DenseAnalysis selects the dense O(features)-per-sample analysis
	// pipeline instead of the default sparse CSR one. The two produce
	// bit-identical models (the dense path is kept as the differential
	// oracle — see DESIGN §10); dense exists for verification and
	// benchmarking, not for production use.
	DenseAnalysis bool
	// Submit and Tracer mirror CcryptStudyConfig: optional report
	// forwarding and per-run distributed tracing.
	Submit func(context.Context, *report.Report) error
	Tracer *trace.Collector
}

// RunBCStudy instruments bc with the scalar-pairs scheme, runs the fuzz
// fleet, trains the ℓ1-regularized logistic regression of §3.3, and
// ranks the crash-predicting predicates.
func RunBCStudy(conf BCStudyConfig) (*BCStudy, error) {
	if len(conf.Lambdas) == 0 {
		conf.Lambdas = []float64{0.05, 0.1, 0.3, 1.0}
	}
	if conf.TopK == 0 {
		conf.TopK = 5
	}
	sampled := conf.Density > 0
	buildSpan := telemetry.StartSpan("study.build")
	built, err := workloads.BuildBC(instrument.SchemeSet{ScalarPairs: true}, sampled)
	buildSpan.End()
	if err != nil {
		return nil, err
	}
	db, err := workloads.BCFleet(built.Program, workloads.FleetConfig{
		Runs: conf.Runs, Density: conf.Density, SeedBase: conf.Seed,
		Workers: conf.Workers, Submit: conf.Submit, Tracer: conf.Tracer,
	})
	if err != nil {
		return nil, err
	}

	// Discard features that are zero across the whole training corpus
	// (elimination by universal falsehood, as §3.3.3 does before training).
	aggSpan := telemetry.StartSpan("study.aggregate")
	agg := report.NewAggregate("bc", built.Program.NumCounters)
	if err := agg.FromDB(db); err != nil {
		aggSpan.End()
		return nil, err
	}
	keep := elim.UniversalFalsehood(agg)
	aggSpan.End()

	regressSpan := telemetry.StartSpan("study.regress")
	trainR, cvR, testR := logreg.Split(db.Reports, 0.62, 0.07, conf.Seed+1)
	tc := logreg.TrainConfig{StepSize: 1e-2, Epochs: conf.Epochs, Seed: conf.Seed + 2, Workers: conf.Workers}
	var lambda, testAcc float64
	var model *logreg.Model
	if conf.DenseAnalysis {
		train := logreg.BuildDataset(trainR, keep)
		cv := train.Project(cvR)
		test := train.Project(testR)
		lambda, model = logreg.CrossValidate(train, cv, conf.Lambdas, tc)
		testAcc = model.Accuracy(test)
	} else {
		train := logreg.BuildSparseDataset(trainR, keep)
		cv := train.Project(cvR)
		test := train.Project(testR)
		lambda, model = logreg.CrossValidateSparse(train, cv, conf.Lambdas, tc)
		testAcc = model.AccuracySparse(test)
	}
	regressSpan.End()

	study := &BCStudy{
		Program:      built.Program,
		DB:           db,
		Runs:         db.Len(),
		Crashes:      len(db.Failures()),
		RawFeatures:  built.Program.NumCounters,
		UsedFeatures: elim.Count(keep),
		Lambda:       lambda,
		Model:        model,
		TestAccuracy: testAcc,
		BuggyLine:    workloads.BCBuggyLine(),
	}
	for _, r := range model.TopFeatures(conf.TopK) {
		study.Top = append(study.Top, RankedPredicate{
			Counter: r.Counter,
			Name:    built.Program.PredicateName(r.Counter),
			Beta:    r.Beta,
		})
	}
	if gun := study.smokingGunCounter(); gun >= 0 {
		study.SmokingGunRank = model.Rank(gun)
	}
	return study, nil
}

// smokingGunCounter finds the counter for "indx > a_count" at the buggy
// line, or -1.
func (s *BCStudy) smokingGunCounter() int {
	for _, site := range s.Program.Sites {
		if site.Fn == "more_arrays" && site.Pos.Line == s.BuggyLine &&
			site.Kind == cfg.SiteScalarPair && site.Text == "indx" {
			for i, pn := range site.PredNames {
				if pn == "> a_count" {
					return site.CounterBase + i
				}
			}
		}
	}
	return -1
}

// TopPointAtBug reports how many of the top-k predicates point at the
// buggy line inside more_arrays — the paper's headline qualitative
// result (all top five do).
func (s *BCStudy) TopPointAtBug() int {
	n := 0
	for _, t := range s.Top {
		site := s.Program.SiteForCounter(t.Counter)
		if site != nil && site.Fn == "more_arrays" && site.Pos.Line == s.BuggyLine {
			n++
		}
	}
	return n
}

// TopPointAtFunction reports how many of the top-k predicates point
// anywhere inside more_arrays. The paper observes "a high degree of
// redundancy among many instrumentation sites within more_arrays()":
// several features have equivalent predictive power, so depending on the
// sampling density the model may spread weight across the function's
// lines rather than concentrating on the zeroing loop.
func (s *BCStudy) TopPointAtFunction() int {
	n := 0
	for _, t := range s.Top {
		site := s.Program.SiteForCounter(t.Counter)
		if site != nil && site.Fn == "more_arrays" {
			n++
		}
	}
	return n
}

// ----------------------------------------------------------------------------
// Importance ranking (the 2005 follow-up scoring, package analysis/score)

// ScoredPredicate is a predicate with its Increase/Importance scores.
type ScoredPredicate struct {
	Counter    int
	Name       string
	Increase   float64
	Importance float64
}

// ImportanceRanking ranks a study's predicates by the follow-up
// Importance score. It works for any report database over a program.
func ImportanceRanking(prog *cfg.Program, db *report.DB, k int) []ScoredPredicate {
	defer telemetry.StartSpan("study.rank").End()
	spans := make([]score.SiteSpan, 0, len(prog.Sites))
	for _, s := range prog.Sites {
		spans = append(spans, score.SiteSpan{Base: s.CounterBase, Len: s.NumCounters})
	}
	var out []ScoredPredicate
	for _, p := range score.Top(score.Score(db, spans), k) {
		out = append(out, ScoredPredicate{
			Counter:    p.Counter,
			Name:       prog.PredicateName(p.Counter),
			Increase:   p.Increase,
			Importance: p.Importance,
		})
	}
	return out
}

// ImportanceRanking ranks the ccrypt study's predicates.
func (s *CcryptStudy) ImportanceRanking(k int) []ScoredPredicate {
	return ImportanceRanking(s.Program, s.DB, k)
}

// ImportanceRanking ranks the bc study's predicates.
func (s *BCStudy) ImportanceRanking(k int) []ScoredPredicate {
	return ImportanceRanking(s.Program, s.DB, k)
}

// ----------------------------------------------------------------------------
// Formatting helpers shared by cbi-bench and the examples.

// FormatSurvivors renders the ccrypt survivors one per line.
func FormatSurvivors(ss []Survivor) string {
	out := ""
	for i, s := range ss {
		out += fmt.Sprintf("%2d. %s\n", i+1, s.Name)
	}
	return out
}

// FormatTop renders ranked predicates one per line with coefficients.
func FormatTop(ts []RankedPredicate) string {
	out := ""
	for i, t := range ts {
		out += fmt.Sprintf("%2d. beta=%.4f  %s\n", i+1, t.Beta, t.Name)
	}
	return out
}
