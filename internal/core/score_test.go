package core

import (
	"strings"
	"testing"
)

// The 2005-style Importance ranking must agree with the paper's analyses
// on both case studies: on ccrypt the EOF predicate dominates; on bc the
// top predicates sit inside more_arrays.
func TestImportanceRankingCcrypt(t *testing.T) {
	study, err := RunCcryptStudy(3000, 1.0/100, 42)
	if err != nil {
		t.Fatal(err)
	}
	top := study.ImportanceRanking(5)
	if len(top) == 0 {
		t.Fatal("no scored predicates")
	}
	if !strings.Contains(top[0].Name, "xreadline() return value == 0") {
		t.Errorf("top importance predicate is %q, want the EOF smoking gun\n(full: %+v)", top[0].Name, top)
	}
	if top[0].Increase <= 0 || top[0].Importance <= 0 {
		t.Errorf("scores: %+v", top[0])
	}
	for i := 1; i < len(top); i++ {
		if top[i].Importance > top[i-1].Importance {
			t.Error("ranking not sorted")
		}
	}
}

func TestImportanceRankingBC(t *testing.T) {
	study, err := RunBCStudy(BCStudyConfig{Runs: 1000, Density: 1.0 / 10, Seed: 5, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	top := study.ImportanceRanking(5)
	if len(top) == 0 {
		t.Fatal("no scored predicates")
	}
	// The top predicate should state the bug condition directly: inside
	// more_arrays, the array pool is smaller than the variable pool.
	site := study.Program.SiteForCounter(top[0].Counter)
	if site == nil || site.Fn != "more_arrays" {
		t.Errorf("top importance predicate not in more_arrays: %+v", top[0])
	}
	// And the top five should all be about a_count being anomalously
	// small — comparisons against a_count or sites in more_arrays.
	relevant := 0
	for _, p := range top {
		s := study.Program.SiteForCounter(p.Counter)
		if (s != nil && s.Fn == "more_arrays") || strings.Contains(p.Name, "a_count") {
			relevant++
		}
	}
	if relevant < 4 {
		t.Errorf("only %d of top 5 importance predicates involve the array pool: %+v", relevant, top)
	}
}
