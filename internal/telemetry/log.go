package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// SetLogWriter enables structured JSON event logging on the default
// registry (nil disables it).
func SetLogWriter(w io.Writer) { Default.SetLogWriter(w) }

// SetLogWriter directs one-JSON-object-per-line event logging to w, or
// disables it when w is nil. Span ends and server/client events are
// emitted only while a writer is set, so the hot path stays free of
// allocation when logging is off.
func (r *Registry) SetLogWriter(w io.Writer) {
	r.mu.Lock()
	r.logW = w
	r.mu.Unlock()
	r.logOn.Store(w != nil)
}

// LogEnabled reports whether a log writer is set. Callers building
// expensive field maps should check it first.
func (r *Registry) LogEnabled() bool { return r.logOn.Load() }

// Event emits one structured log line: {"ts":...,"event":...,<fields>}.
// It is a no-op when logging is disabled. Keys "ts" and "event" in
// fields are overwritten.
func (r *Registry) Event(event string, fields map[string]any) {
	if !r.logOn.Load() {
		return
	}
	obj := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		obj[k] = v
	}
	obj["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	obj["event"] = event
	line, err := json.Marshal(obj)
	if err != nil {
		return
	}
	line = append(line, '\n')
	r.mu.Lock()
	if r.logW != nil {
		_, _ = r.logW.Write(line)
	}
	r.mu.Unlock()
}

// Event emits a structured log line on the default registry.
func Event(event string, fields map[string]any) { Default.Event(event, fields) }
