package telemetry

import (
	"strings"
	"testing"
)

// stripBuildInfo drops the toolchain-dependent cbi_build_info family so
// golden comparisons are machine-independent.
func stripBuildInfo(exposition string) string {
	var kept []string
	for _, line := range strings.SplitAfter(exposition, "\n") {
		if line == "" || strings.Contains(line, "cbi_build_info") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "")
}

// TestExpositionEscapingGolden pins the exposition of label values that
// need escaping: backslash, double quote, and newline must come out as
// \\, \" and \n, and Labels-composed names must round-trip through
// WritePrometheus verbatim.
func TestExpositionEscapingGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`paths_total` + Labels("dir", `C:\tmp`)).Add(1)
	r.Counter(`paths_total` + Labels("dir", `say "hi"`)).Add(2)
	r.Counter(`paths_total` + Labels("dir", "two\nlines")).Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := stripBuildInfo(b.String())
	want := `# TYPE paths_total counter
paths_total{dir="C:\\tmp"} 1
paths_total{dir="say \"hi\""} 2
paths_total{dir="two\nlines"} 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionLabeledHistogramGolden pins the sample ordering for a
// labeled histogram family: per child, buckets ascending by le with the
// le label joined after the child's own labels, then the +Inf bucket,
// then _sum and _count — and children of one family sorted by label
// string, interleaved complete (all of one child before the next).
func TestExpositionLabeledHistogramGolden(t *testing.T) {
	r := NewRegistry()
	fold := r.Histogram(`step_seconds`+Labels("op", "fold"), []float64{0.5, 1, 10})
	fold.Observe(0.25)
	fold.Observe(0.5)
	fold.Observe(0.5)
	fold.Observe(20)
	merge := r.Histogram(`step_seconds`+Labels("op", "merge"), []float64{0.5, 1, 10})
	merge.Observe(2)
	r.Gauge("aa_ratio").Set(0.5) // sorts before step_seconds: family order check

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := stripBuildInfo(b.String())
	want := `# TYPE aa_ratio gauge
aa_ratio 0.5
# TYPE step_seconds histogram
step_seconds_bucket{op="fold",le="0.5"} 3
step_seconds_bucket{op="fold",le="1"} 3
step_seconds_bucket{op="fold",le="10"} 3
step_seconds_bucket{op="fold",le="+Inf"} 4
step_seconds_sum{op="fold"} 21.25
step_seconds_count{op="fold"} 4
step_seconds_bucket{op="merge",le="0.5"} 0
step_seconds_bucket{op="merge",le="1"} 0
step_seconds_bucket{op="merge",le="10"} 1
step_seconds_bucket{op="merge",le="+Inf"} 1
step_seconds_sum{op="merge"} 2
step_seconds_count{op="merge"} 1
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEscapeLabelValue covers the escaper directly, including the
// fast path for clean strings.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"", ""},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{"unicode ✓ ok", "unicode ✓ ok"},
	}
	for _, tc := range cases {
		if got := EscapeLabelValue(tc.in); got != tc.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestLabelsPanics: malformed label layouts are programming errors.
func TestLabelsPanics(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"odd"},
		{"k", "v", "dangling"},
		{"bad key", "v"},
		{"", "v"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Labels(%q) must panic", args)
				}
			}()
			Labels(args...)
		}()
	}
}
