// Package telemetry is a dependency-free observability layer for the
// collection infrastructure: monotonic counters, gauges, and fixed-bucket
// histograms held in a registry, with atomics on the hot path and
// Prometheus-text-format snapshotting for scraping; plus lightweight
// timing spans (span.go), a health endpoint (health.go), and structured
// JSON event logging (log.go).
//
// Metric names follow Prometheus conventions and may carry a constant
// label set inline:
//
//	reg.Counter("collect_reports_accepted_total").Inc()
//	reg.Counter(`collect_reports_rejected_total{reason="decode"}`).Inc()
//	reg.Histogram("collect_decode_seconds", telemetry.DefBuckets).Observe(dt)
//
// Lookups take the registry mutex; hot loops should fetch the metric once
// and hold the pointer. All metric operations themselves are lock-free.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets, in seconds. They span
// 10µs..10s, which covers report decode/fold, HTTP submit round-trips,
// and whole interpreter runs.
var DefBuckets = []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// StepBuckets are buckets for interpreter step/fuel counts.
var StepBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// SizeBuckets are buckets for byte sizes (report payloads).
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 1 << 20}

// FineBuckets are sub-millisecond latency buckets, in seconds, for hot
// handlers that answer in microseconds (the collector's staged ingest
// path enqueues and returns without folding) — DefBuckets' first bound
// would lump every such request into one bucket.
var FineBuckets = []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 0.1, 0.5}

// ----------------------------------------------------------------------------
// Metric kinds

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (compare-and-swap loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with inclusive upper bounds, in
// the Prometheus style (cumulative buckets plus a +Inf overflow, a sum,
// and a count).
type Histogram struct {
	upper   []float64 // sorted upper bounds, excluding +Inf
	buckets []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not strictly increasing: %v", upper))
		}
	}
	return &Histogram{
		upper:   append([]float64(nil), upper...),
		buckets: make([]atomic.Uint64, len(upper)),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v: inclusive upper bound
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CumulativeCounts returns the cumulative per-bucket counts, one per
// upper bound plus a final +Inf entry.
func (h *Histogram) CumulativeCounts() []uint64 {
	out := make([]uint64, len(h.upper)+1)
	var acc uint64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		out[i] = acc
	}
	out[len(h.upper)] = acc + h.inf.Load()
	return out
}

// ----------------------------------------------------------------------------
// Registry

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metricEntry struct {
	family string // name without the label set
	labels string // `k="v",...` without braces; empty if unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics and span statistics. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metricEntry // full name -> entry
	families map[string]metricKind   // family name -> kind, for TYPE consistency
	spans    map[string]*SpanStat
	spanSeq  []string // span names in first-start order
	logW     io.Writer
	logOn    atomic.Bool
}

// NewRegistry creates a registry holding only the standard
// cbi_build_info gauge (see buildinfo.go).
func NewRegistry() *Registry {
	r := &Registry{
		metrics:  make(map[string]*metricEntry),
		families: make(map[string]metricKind),
		spans:    make(map[string]*SpanStat),
	}
	r.registerBuildInfo()
	return r
}

// Default is the process-wide registry used by the package-level helpers.
var Default = NewRegistry()

// C returns (creating if needed) a counter in the default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns (creating if needed) a gauge in the default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns (creating if needed) a histogram in the default registry.
func H(name string, buckets []float64) *Histogram { return Default.Histogram(name, buckets) }

// splitName separates `family{k="v"}` into family and the label body.
// It panics on malformed names: metric names are compile-time constants,
// so a bad one is a programming error.
func splitName(name string) (family, labels string) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			panic("telemetry: malformed metric name " + strconv.Quote(name))
		}
		family, labels = name[:i], name[i+1:len(name)-1]
		if labels == "" {
			panic("telemetry: empty label set in " + strconv.Quote(name))
		}
	}
	if !validFamily(family) {
		panic("telemetry: invalid metric name " + strconv.Quote(family))
	}
	return family, labels
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double quote, and newline become \\, \"
// and \n. Metric names composed with Labels carry already-escaped
// bodies, so WritePrometheus can emit them verbatim.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Labels renders alternating key/value pairs as an inline label block
// `{k1="v1",k2="v2"}`, escaping each value per the exposition format. Use
// it to compose metric names whose label values are not compile-time
// constants:
//
//	reg.Counter("collect_http_requests_total" + telemetry.Labels("endpoint", path, "code", code))
//
// It panics on an odd number of arguments or an invalid key — label
// layouts, unlike values, are programming constants.
func Labels(kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic("telemetry: Labels needs alternating key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if !validFamily(kv[i]) {
			panic("telemetry: invalid label key " + strconv.Quote(kv[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validFamily(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) entry(name string, kind metricKind, buckets []float64) *metricEntry {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	if k, ok := r.families[family]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: family %s registered as %s, requested as %s", family, k, kind))
	}
	e := &metricEntry{family: family, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = newHistogram(buckets)
	}
	r.metrics[name] = e
	r.families[family] = kind
	return e
}

// Counter returns the named counter, creating it at zero if needed.
func (r *Registry) Counter(name string) *Counter {
	return r.entry(name, kindCounter, nil).c
}

// Gauge returns the named gauge, creating it at zero if needed.
func (r *Registry) Gauge(name string) *Gauge {
	return r.entry(name, kindGauge, nil).g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds if needed. The buckets of an existing histogram
// are not changed.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	return r.entry(name, kindHistogram, buckets).h
}

// ----------------------------------------------------------------------------
// Prometheus text exposition

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelJoin(existing, extra string) string {
	if existing == "" {
		return extra
	}
	if extra == "" {
		return existing
	}
	return existing + "," + extra
}

// WritePrometheus writes a snapshot of every metric in the Prometheus
// text exposition format (version 0.0.4), families sorted by name and
// labeled children sorted within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	entries := make(map[string]*metricEntry, len(r.metrics))
	for name, e := range r.metrics {
		entries[name] = e
	}
	r.mu.Unlock()

	sort.Slice(names, func(i, j int) bool {
		a, b := entries[names[i]], entries[names[j]]
		if a.family != b.family {
			return a.family < b.family
		}
		return a.labels < b.labels
	})

	var b strings.Builder
	lastFamily := ""
	for _, name := range names {
		e := entries[name]
		if e.family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.family, e.kind)
			lastFamily = e.family
		}
		switch e.kind {
		case kindCounter:
			writeSample(&b, e.family, e.labels, strconv.FormatUint(e.c.Value(), 10))
		case kindGauge:
			writeSample(&b, e.family, e.labels, formatFloat(e.g.Value()))
		case kindHistogram:
			cum := e.h.CumulativeCounts()
			for i, ub := range e.h.upper {
				le := fmt.Sprintf("le=%q", formatFloat(ub))
				writeSample(&b, e.family+"_bucket", labelJoin(e.labels, le), strconv.FormatUint(cum[i], 10))
			}
			writeSample(&b, e.family+"_bucket", labelJoin(e.labels, `le="+Inf"`), strconv.FormatUint(cum[len(cum)-1], 10))
			writeSample(&b, e.family+"_sum", e.labels, formatFloat(e.h.Sum()))
			writeSample(&b, e.family+"_count", e.labels, strconv.FormatUint(e.h.Count(), 10))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// Handler returns an http.Handler serving the exposition snapshot,
// suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
