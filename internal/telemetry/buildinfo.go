package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// buildVersion and buildGoVersion are read once at process start; every
// registry exports them as the constant `cbi_build_info` gauge so any
// scraped /metrics page identifies the binary that produced it.
var buildVersion, buildGoVersion = readBuildInfo()

func readBuildInfo() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	// A VCS revision is more useful than "(devel)" when present.
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			version = s.Value[:12]
		}
	}
	return version, goVersion
}

// registerBuildInfo pins the standard build-information gauge (value 1,
// identity in the labels) into a registry; NewRegistry calls it so every
// exposition carries it.
func (r *Registry) registerBuildInfo() {
	r.Gauge(fmt.Sprintf(`cbi_build_info{version=%q,go_version=%q}`, buildVersion, buildGoVersion)).Set(1)
}

// BuildVersion returns the version string exported in cbi_build_info.
func BuildVersion() string { return buildVersion }
