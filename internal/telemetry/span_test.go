package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSpanRecordsHistogramAndSummary(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("analyze.train")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	r.StartSpan("analyze.train").End()
	r.StartSpan("fleet.run").End()

	sum := r.SpanSummary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d entries, want 2", len(sum))
	}
	if sum[0].Name != "analyze.train" || sum[0].Count != 2 {
		t.Errorf("first span = %+v", sum[0])
	}
	if sum[1].Name != "fleet.run" || sum[1].Count != 1 {
		t.Errorf("second span = %+v", sum[1])
	}
	if sum[0].Total < sum[0].Max || sum[0].Min > sum[0].Max {
		t.Errorf("inconsistent aggregates: %+v", sum[0])
	}
	if got := r.Histogram(`span_seconds{span="analyze.train"}`, DefBuckets).Count(); got != 2 {
		t.Errorf("span histogram count = %d, want 2", got)
	}
	text := r.FormatSpanSummary()
	if !strings.Contains(text, "analyze.train") || !strings.Contains(text, "stage timings") {
		t.Errorf("summary text:\n%s", text)
	}
	top := r.TopSpans(1)
	if len(top) != 1 {
		t.Fatalf("TopSpans(1) = %v", top)
	}
}

// seedSpan plants a deterministic aggregate, bypassing the wall clock.
func seedSpan(r *Registry, name string, count uint64, total, min, max time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans[name] = &SpanStat{Name: name, Count: count, Total: total, Min: min, Max: max}
	r.spanSeq = append(r.spanSeq, name)
}

func TestTopSpansOrdering(t *testing.T) {
	r := NewRegistry()
	seedSpan(r, "fold", 10, 300*time.Millisecond, time.Millisecond, 90*time.Millisecond)
	seedSpan(r, "decode", 10, 500*time.Millisecond, time.Millisecond, 80*time.Millisecond)
	seedSpan(r, "rank", 1, 100*time.Millisecond, 100*time.Millisecond, 100*time.Millisecond)
	// Ties on Total break by name, ascending.
	seedSpan(r, "zeta", 2, 300*time.Millisecond, time.Millisecond, time.Millisecond)

	got := r.TopSpans(0)
	wantOrder := []string{"decode", "fold", "zeta", "rank"}
	if len(got) != len(wantOrder) {
		t.Fatalf("TopSpans(0) returned %d spans, want %d", len(got), len(wantOrder))
	}
	for i, name := range wantOrder {
		if got[i].Name != name {
			t.Errorf("TopSpans[%d] = %s, want %s", i, got[i].Name, name)
		}
	}

	top2 := r.TopSpans(2)
	if len(top2) != 2 || top2[0].Name != "decode" || top2[1].Name != "fold" {
		t.Errorf("TopSpans(2) = %+v", top2)
	}
	// k larger than the population returns everything.
	if got := r.TopSpans(99); len(got) != 4 {
		t.Errorf("TopSpans(99) returned %d spans", len(got))
	}
	if got := NewRegistry().TopSpans(3); len(got) != 0 {
		t.Errorf("empty registry TopSpans = %+v", got)
	}
}

func TestFormatSpanSummaryOrderingAndRounding(t *testing.T) {
	r := NewRegistry()
	if r.FormatSpanSummary() != "" {
		t.Error("empty registry must format to empty string")
	}
	// First-start order, not alphabetical or by total.
	seedSpan(r, "zz.first", 3, 3001500*time.Nanosecond, 999500*time.Nanosecond, 1100*time.Microsecond)
	seedSpan(r, "aa.second", 1, 1234567*time.Nanosecond, 1234567*time.Nanosecond, 1234567*time.Nanosecond)
	seedSpan(r, "big.third", 2, 3*time.Second+1500*time.Microsecond, time.Second, 2*time.Second)

	text := r.FormatSpanSummary()
	if !strings.HasPrefix(text, "stage timings:\n") {
		t.Errorf("missing header:\n%s", text)
	}
	zi := strings.Index(text, "zz.first")
	ai := strings.Index(text, "aa.second")
	if zi < 0 || ai < 0 || zi > ai {
		t.Errorf("spans out of first-start order (zz at %d, aa at %d):\n%s", zi, ai, text)
	}
	// >= 1s totals round to milliseconds: big.third's 3.0015s -> "3.002s".
	if !strings.Contains(text, "3.002s total") {
		t.Errorf("second-scale rounding:\n%s", text)
	}
	// Millisecond-scale durations round to whole microseconds: zz.first's
	// total of 3001.5µs rounds up to "3.002ms", its avg of 1000.5µs to
	// "1.001ms"; its sub-millisecond min prints at 100ns precision.
	if !strings.Contains(text, "3.002ms total") {
		t.Errorf("millisecond-scale total rounding:\n%s", text)
	}
	if !strings.Contains(text, "avg 1.001ms") {
		t.Errorf("millisecond-scale rounding:\n%s", text)
	}
	if !strings.Contains(text, "min 999.5µs") {
		t.Errorf("sub-millisecond rounding:\n%s", text)
	}
	// Single-count spans omit the (avg, min, max) tail.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "aa.second") && strings.Contains(line, "avg") {
			t.Errorf("single-count span must not print avg: %q", line)
		}
	}
	// 1234567ns rounds to the nearest microsecond: "1.235ms".
	if !strings.Contains(text, "1.235ms") {
		t.Errorf("microsecond rounding:\n%s", text)
	}
	if !strings.Contains(text, "3×") || !strings.Contains(text, "1×") || !strings.Contains(text, "2×") {
		t.Errorf("counts missing:\n%s", text)
	}
}

func TestHealthTransitions(t *testing.T) {
	var h Health
	get := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get(); code != 503 || !strings.Contains(body, "starting") {
		t.Errorf("starting: %d %q", code, body)
	}
	h.Set(HealthOK)
	if code, body := get(); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("ok: %d %q", code, body)
	}
	h.Set(HealthShuttingDown)
	if code, body := get(); code != 503 || !strings.Contains(body, "shutting-down") {
		t.Errorf("shutting down: %d %q", code, body)
	}
}

func TestEventLogging(t *testing.T) {
	r := NewRegistry()
	r.Event("dropped", nil) // disabled: must not panic
	var buf strings.Builder
	r.SetLogWriter(&buf)
	if !r.LogEnabled() {
		t.Fatal("LogEnabled after SetLogWriter")
	}
	r.Event("report_accepted", map[string]any{"run_id": 7, "bytes": 123})
	r.StartSpan("stage").End()
	r.SetLogWriter(nil)
	r.Event("after_disable", nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["event"] != "report_accepted" || first["bytes"] != float64(123) {
		t.Errorf("line 0 = %v", first)
	}
	if _, ok := first["ts"]; !ok {
		t.Error("missing ts")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if second["event"] != "span" || second["span"] != "stage" {
		t.Errorf("line 1 = %v", second)
	}
}

func TestRegistryHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}
