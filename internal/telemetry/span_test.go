package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSpanRecordsHistogramAndSummary(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("analyze.train")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	r.StartSpan("analyze.train").End()
	r.StartSpan("fleet.run").End()

	sum := r.SpanSummary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d entries, want 2", len(sum))
	}
	if sum[0].Name != "analyze.train" || sum[0].Count != 2 {
		t.Errorf("first span = %+v", sum[0])
	}
	if sum[1].Name != "fleet.run" || sum[1].Count != 1 {
		t.Errorf("second span = %+v", sum[1])
	}
	if sum[0].Total < sum[0].Max || sum[0].Min > sum[0].Max {
		t.Errorf("inconsistent aggregates: %+v", sum[0])
	}
	if got := r.Histogram(`span_seconds{span="analyze.train"}`, DefBuckets).Count(); got != 2 {
		t.Errorf("span histogram count = %d, want 2", got)
	}
	text := r.FormatSpanSummary()
	if !strings.Contains(text, "analyze.train") || !strings.Contains(text, "stage timings") {
		t.Errorf("summary text:\n%s", text)
	}
	top := r.TopSpans(1)
	if len(top) != 1 {
		t.Fatalf("TopSpans(1) = %v", top)
	}
}

func TestHealthTransitions(t *testing.T) {
	var h Health
	get := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get(); code != 503 || !strings.Contains(body, "starting") {
		t.Errorf("starting: %d %q", code, body)
	}
	h.Set(HealthOK)
	if code, body := get(); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("ok: %d %q", code, body)
	}
	h.Set(HealthShuttingDown)
	if code, body := get(); code != 503 || !strings.Contains(body, "shutting-down") {
		t.Errorf("shutting down: %d %q", code, body)
	}
}

func TestEventLogging(t *testing.T) {
	r := NewRegistry()
	r.Event("dropped", nil) // disabled: must not panic
	var buf strings.Builder
	r.SetLogWriter(&buf)
	if !r.LogEnabled() {
		t.Fatal("LogEnabled after SetLogWriter")
	}
	r.Event("report_accepted", map[string]any{"run_id": 7, "bytes": 123})
	r.StartSpan("stage").End()
	r.SetLogWriter(nil)
	r.Event("after_disable", nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["event"] != "report_accepted" || first["bytes"] != float64(123) {
		t.Errorf("line 0 = %v", first)
	}
	if _, ok := first["ts"]; !ok {
		t.Error("missing ts")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if second["event"] != "span" || second["span"] != "stage" {
		t.Errorf("line 1 = %v", second)
	}
}

func TestRegistryHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}
