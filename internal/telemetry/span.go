package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is a lightweight timing span: StartSpan marks the beginning of a
// pipeline stage, End records its duration into the registry — a
// `span_seconds{span="<name>"}` histogram plus per-name aggregate stats
// for the human-readable summary — and emits a structured log event when
// JSON logging is enabled.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins a named span in the default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// StartSpan begins a named span.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{reg: r, name: name, start: time.Now()}
}

// End records the span and returns its duration. Calling End more than
// once records the span more than once; don't.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.reg.Histogram(fmt.Sprintf("span_seconds{span=%q}", s.name), DefBuckets).Observe(d.Seconds())
	s.reg.mu.Lock()
	st, ok := s.reg.spans[s.name]
	if !ok {
		st = &SpanStat{Name: s.name, Min: d, Max: d}
		s.reg.spans[s.name] = st
		s.reg.spanSeq = append(s.reg.spanSeq, s.name)
	}
	st.Count++
	st.Total += d
	if d < st.Min {
		st.Min = d
	}
	if d > st.Max {
		st.Max = d
	}
	s.reg.mu.Unlock()
	s.reg.Event("span", map[string]any{"span": s.name, "seconds": d.Seconds()})
	return d
}

// SpanStat aggregates every End() of one span name.
type SpanStat struct {
	Name  string
	Count uint64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// SpanSummary returns per-span aggregates in first-start order.
func (r *Registry) SpanSummary() []SpanStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanStat, 0, len(r.spanSeq))
	for _, name := range r.spanSeq {
		out = append(out, *r.spans[name])
	}
	return out
}

// FormatSpanSummary renders the stage-timing table printed at the end of
// an isolation run. Empty when no spans were recorded.
func (r *Registry) FormatSpanSummary() string {
	spans := r.SpanSummary()
	if len(spans) == 0 {
		return ""
	}
	wide := 0
	for _, s := range spans {
		if len(s.Name) > wide {
			wide = len(s.Name)
		}
	}
	var b strings.Builder
	b.WriteString("stage timings:\n")
	for _, s := range spans {
		avg := time.Duration(0)
		if s.Count > 0 {
			avg = s.Total / time.Duration(s.Count)
		}
		fmt.Fprintf(&b, "  %-*s %5d× %12s total", wide, s.Name, s.Count, roundDur(s.Total))
		if s.Count > 1 {
			fmt.Fprintf(&b, "  (avg %s, min %s, max %s)", roundDur(avg), roundDur(s.Min), roundDur(s.Max))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// roundDur trims durations to a readable precision.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// TopSpans returns the k span names with the largest total time,
// descending (ties by name for determinism).
func (r *Registry) TopSpans(k int) []SpanStat {
	spans := r.SpanSummary()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Total != spans[j].Total {
			return spans[i].Total > spans[j].Total
		}
		return spans[i].Name < spans[j].Name
	})
	if k > 0 && len(spans) > k {
		spans = spans[:k]
	}
	return spans
}
