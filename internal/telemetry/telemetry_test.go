package telemetry

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("requests_total") != c {
		t.Error("Counter must return the same instance per name")
	}
	g := r.Gauge("queue_depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	// Boundary values land in the bucket whose upper bound they equal
	// (inclusive le), below-first goes to the first bucket, above-last to
	// +Inf.
	for _, v := range []float64{0.5, 1, 2, 2.5, 5, 7} {
		h.Observe(v)
	}
	cum := h.CumulativeCounts()
	want := []uint64{2, 3, 5, 6} // le=1, le=2, le=5, +Inf
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 18 {
		t.Errorf("sum = %g, want 18", h.Sum())
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted buckets must panic")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1, 2})
}

func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest_total").Add(42)
	r.Counter(`rejected_total{reason="decode"}`).Add(3)
	r.Counter(`rejected_total{reason="fold"}`)
	r.Gauge("crash_ratio").Set(0.25)
	h := r.Histogram("decode_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// The build-info gauge is present in every registry with
	// toolchain-dependent labels; strip it before the golden compare.
	var kept []string
	for _, line := range strings.SplitAfter(b.String(), "\n") {
		if line == "" || strings.Contains(line, "cbi_build_info") {
			continue
		}
		kept = append(kept, line)
	}
	got := strings.Join(kept, "")
	want := `# TYPE crash_ratio gauge
crash_ratio 0.25
# TYPE decode_seconds histogram
decode_seconds_bucket{le="0.001"} 1
decode_seconds_bucket{le="0.01"} 2
decode_seconds_bucket{le="+Inf"} 3
decode_seconds_sum 5.0025
decode_seconds_count 3
# TYPE ingest_total counter
ingest_total 42
# TYPE rejected_total counter
rejected_total{reason="decode"} 3
rejected_total{reason="fold"} 0
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestBuildInfoGaugePresent(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "# TYPE cbi_build_info gauge") {
		t.Errorf("missing build-info TYPE line:\n%s", text)
	}
	re := regexp.MustCompile(`cbi_build_info\{version="[^"]+",go_version="[^"]+"\} 1\n`)
	if !re.MatchString(text) {
		t.Errorf("missing build-info sample:\n%s", text)
	}
	if BuildVersion() == "" {
		t.Error("BuildVersion must not be empty")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name must panic")
		}
	}()
	r.Gauge("x_total")
}

func TestFamilyKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter(`y_total{a="1"}`)
	defer func() {
		if recover() == nil {
			t.Error("conflicting family kind must panic")
		}
	}()
	r.Gauge(`y_total{a="2"}`)
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "9abc", "with space", "trailing{", `x{a="1"`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			h := r.Histogram("work_seconds", DefBuckets)
			g := r.Gauge("level")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("work_seconds", DefBuckets).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("level").Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
}
