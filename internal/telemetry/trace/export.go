package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events plus "M" metadata events), the schema Perfetto and
// chrome://tracing load natively.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every finished span as Chrome trace-event
// JSON. Each trace gets its own named track (tid), so one fleet run's
// spans nest vertically within a track while distinct runs stack as
// separate tracks. Timestamps are microseconds relative to the earliest
// span, keeping the numbers small and the viewer anchored at zero.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	recs := c.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })

	var epoch int64 // ns of the earliest span
	for i, r := range recs {
		if ns := r.Start.UnixNano(); i == 0 || ns < epoch {
			epoch = ns
		}
	}

	tids := make(map[string]int)
	f := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, r := range recs {
		tid, ok := tids[r.TraceID]
		if !ok {
			tid = len(tids) + 1
			tids[r.TraceID] = tid
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]string{"name": "trace " + shortID(r.TraceID)},
			})
		}
		args := map[string]string{
			"trace_id": r.TraceID,
			"span_id":  r.SpanID,
		}
		if r.ParentID != "" {
			args["parent_id"] = r.ParentID
		}
		for k, v := range r.Attrs {
			args[k] = v
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: r.Name,
			Cat:  "cbi",
			Ph:   "X",
			Ts:   float64(r.Start.UnixNano()-epoch) / 1e3,
			Dur:  float64(r.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func shortID(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}

// WriteJSONL exports every finished span as one JSON object per line,
// the format fleet scripts grep and join offline.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range c.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile exports to path, choosing the format by extension: ".jsonl"
// gets JSONL, anything else the Chrome trace-event JSON.
func (c *Collector) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if hasSuffixFold(path, ".jsonl") {
		werr = c.WriteJSONL(f)
	} else {
		werr = c.WriteChromeTrace(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func hasSuffixFold(s, suffix string) bool {
	if len(s) < len(suffix) {
		return false
	}
	tail := s[len(s)-len(suffix):]
	for i := 0; i < len(suffix); i++ {
		a, b := tail[i], suffix[i]
		if a >= 'A' && a <= 'Z' {
			a += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}
