// Package trace provides hierarchical distributed tracing for the
// collection pipeline: one trace follows a single deployed run from the
// fleet harness through HTTP submission (with retries) into the
// collector's decode and fold stages.
//
// The model is deliberately small — a trace is a tree of timed spans
// sharing one 128-bit trace ID — but it crosses process boundaries: the
// client forwards its span context in an `X-CBI-Trace` header and the
// server continues the same trace, so a single export shows
// fleet.run → client.submit → server.decode → server.fold end to end.
//
// Finished spans accumulate in a Collector and export to Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing, see
// export.go) or JSONL.
//
// All span methods are safe on a nil *Span and all collector methods on
// a nil *Collector; call sites stay branch-free when tracing is off and
// pay nothing but the nil checks.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Header is the HTTP header carrying trace context across the wire. Its
// value is "<trace-id>-<span-id>": 32 lowercase hex chars, a dash, 16
// lowercase hex chars (a simplified W3C traceparent).
const Header = "X-CBI-Trace"

// idRand is a process-local PRNG for span IDs, seeded once from
// crypto/rand so concurrent collectors never collide, without paying a
// syscall per span.
var idRand = struct {
	sync.Mutex
	*rand.Rand
}{Rand: rand.New(rand.NewSource(func() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}()))}

func randHex(nbytes int) string {
	b := make([]byte, nbytes)
	idRand.Lock()
	for i := 0; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], idRand.Uint64())
	}
	if rem := len(b) % 8; rem != 0 {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], idRand.Uint64())
		copy(b[len(b)-rem:], w[:rem])
	}
	idRand.Unlock()
	return hex.EncodeToString(b)
}

// NewTraceID returns a fresh 128-bit trace ID in lowercase hex.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a fresh 64-bit span ID in lowercase hex.
func NewSpanID() string { return randHex(8) }

// Record is one finished span as stored by the Collector.
type Record struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Span is a live (unfinished) span. Create roots with
// Collector.StartSpan or Collector.ContinueSpan, children with
// StartChild, and call End exactly once.
type Span struct {
	col      *Collector
	traceID  string
	spanID   string
	parentID string
	name     string
	start    time.Time
	attrs    map[string]string
}

// Collector accumulates finished spans in memory for export at process
// exit. It is safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	records []Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// StartSpan opens a root span in a brand-new trace. Returns nil when the
// collector is nil (tracing disabled).
func (c *Collector) StartSpan(name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{
		col:     c,
		traceID: NewTraceID(),
		spanID:  NewSpanID(),
		name:    name,
		start:   time.Now(),
	}
}

// ContinueSpan opens a span that continues the trace described by an
// incoming Header value: same trace ID, parented to the remote span.
// A missing or malformed header starts a fresh trace instead, so a
// collector behind a mixed fleet still records untraced ingests.
func (c *Collector) ContinueSpan(name, header string) *Span {
	if c == nil {
		return nil
	}
	sp := c.StartSpan(name)
	if traceID, spanID, ok := ParseHeader(header); ok {
		sp.traceID = traceID
		sp.parentID = spanID
	}
	return sp
}

// Len returns the number of finished spans recorded so far.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Records returns a snapshot of the finished spans in end order.
func (c *Collector) Records() []Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}

// StartChild opens a child span in the same trace. Nil-safe: a nil
// receiver returns nil, so untraced paths thread through unchanged.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		col:      s.col,
		traceID:  s.traceID,
		spanID:   NewSpanID(),
		parentID: s.spanID,
		name:     name,
		start:    time.Now(),
	}
}

// SetAttr attaches a key/value attribute (no-op on nil).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// HeaderValue renders the span context for the X-CBI-Trace header
// ("" on nil, which callers must treat as "do not set the header").
func (s *Span) HeaderValue() string {
	if s == nil {
		return ""
	}
	return s.traceID + "-" + s.spanID
}

// ParseHeader splits an X-CBI-Trace value into trace and span IDs.
func ParseHeader(v string) (traceID, spanID string, ok bool) {
	i := strings.IndexByte(v, '-')
	if i < 0 {
		return "", "", false
	}
	traceID, spanID = v[:i], v[i+1:]
	if len(traceID) != 32 || len(spanID) != 16 || !isHex(traceID) || !isHex(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// End finishes the span and records it in its collector (no-op on nil).
// Calling End twice records the span twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := Record{
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	}
	s.col.mu.Lock()
	s.col.records = append(s.col.records, rec)
	s.col.mu.Unlock()
}

// ----------------------------------------------------------------------------
// Context plumbing

type ctxKey struct{}

// NewContext returns ctx carrying sp. A nil span yields ctx unchanged,
// so FromContext on the result stays nil — tracing stays off end to end.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
