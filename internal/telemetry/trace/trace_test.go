package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLineage(t *testing.T) {
	col := NewCollector()
	root := col.StartSpan("fleet.run")
	root.SetAttr("workload", "ccrypt")
	child := root.StartChild("client.submit")
	grand := child.StartChild("client.attempt")
	grand.End()
	child.End()
	root.End()

	recs := col.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// End order: attempt, submit, run.
	attempt, submit, run := recs[0], recs[1], recs[2]
	if run.TraceID != submit.TraceID || run.TraceID != attempt.TraceID {
		t.Errorf("trace IDs diverge: %s %s %s", run.TraceID, submit.TraceID, attempt.TraceID)
	}
	if run.ParentID != "" {
		t.Errorf("root has parent %q", run.ParentID)
	}
	if submit.ParentID != run.SpanID {
		t.Errorf("submit parent = %q, want %q", submit.ParentID, run.SpanID)
	}
	if attempt.ParentID != submit.SpanID {
		t.Errorf("attempt parent = %q, want %q", attempt.ParentID, submit.SpanID)
	}
	if run.Attrs["workload"] != "ccrypt" {
		t.Errorf("attrs = %v", run.Attrs)
	}
	if len(run.TraceID) != 32 || len(run.SpanID) != 16 {
		t.Errorf("id lengths: trace %d, span %d", len(run.TraceID), len(run.SpanID))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	col := NewCollector()
	sp := col.StartSpan("client.submit")
	hv := sp.HeaderValue()
	traceID, spanID, ok := ParseHeader(hv)
	if !ok {
		t.Fatalf("ParseHeader(%q) rejected", hv)
	}
	if traceID != sp.TraceID() || spanID != sp.SpanID() {
		t.Errorf("round trip: got %s/%s, want %s/%s", traceID, spanID, sp.TraceID(), sp.SpanID())
	}

	cont := col.ContinueSpan("server.ingest", hv)
	if cont.TraceID() != sp.TraceID() {
		t.Errorf("continued trace ID %s, want %s", cont.TraceID(), sp.TraceID())
	}
	cont.End()
	sp.End()
	recs := col.Records()
	if recs[0].ParentID != sp.SpanID() {
		t.Errorf("continued span parent %q, want %q", recs[0].ParentID, sp.SpanID())
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	for _, v := range []string{
		"", "nodash", "short-abc",
		strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16), // non-hex
		strings.Repeat("a", 32) + "-" + strings.Repeat("a", 15), // short span
		strings.Repeat("A", 32) + "-" + strings.Repeat("a", 16), // uppercase
	} {
		if _, _, ok := ParseHeader(v); ok {
			t.Errorf("ParseHeader(%q) accepted", v)
		}
	}
}

func TestContinueSpanWithBadHeaderStartsFreshTrace(t *testing.T) {
	col := NewCollector()
	sp := col.ContinueSpan("server.ingest", "garbage")
	if sp.TraceID() == "" || len(sp.TraceID()) != 32 {
		t.Errorf("fresh trace ID %q", sp.TraceID())
	}
	sp.End()
	if col.Records()[0].ParentID != "" {
		t.Error("bad header must not produce a parent link")
	}
}

func TestNilSafety(t *testing.T) {
	var col *Collector
	sp := col.StartSpan("x")
	if sp != nil {
		t.Fatal("nil collector must yield nil span")
	}
	child := sp.StartChild("y")
	if child != nil {
		t.Fatal("nil span must yield nil child")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.HeaderValue() != "" || sp.TraceID() != "" || sp.SpanID() != "" {
		t.Error("nil span accessors must return empty")
	}
	if col.Len() != 0 || col.Records() != nil {
		t.Error("nil collector accessors must return zero values")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil span must not be stored in context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	col := NewCollector()
	sp := col.StartSpan("fleet.run")
	ctx := NewContext(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Error("span lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context must yield nil span")
	}
}

func TestChromeTraceExport(t *testing.T) {
	col := NewCollector()
	root := col.StartSpan("fleet.run")
	time.Sleep(time.Millisecond)
	child := root.StartChild("client.submit")
	child.SetAttr("attempt", "1")
	child.End()
	root.End()
	other := col.StartSpan("other.trace")
	other.End()

	var b strings.Builder
	if err := col.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	// 3 spans + 2 thread_name metadata events (one per trace).
	if len(f.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(f.TraceEvents), b.String())
	}
	byName := map[string][]int{}
	for i, ev := range f.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], i)
	}
	run := f.TraceEvents[byName["fleet.run"][0]]
	sub := f.TraceEvents[byName["client.submit"][0]]
	oth := f.TraceEvents[byName["other.trace"][0]]
	if run.Ph != "X" || sub.Ph != "X" {
		t.Errorf("span phase: %s %s, want X", run.Ph, sub.Ph)
	}
	if run.Tid != sub.Tid {
		t.Errorf("same-trace spans on different tracks: %d vs %d", run.Tid, sub.Tid)
	}
	if oth.Tid == run.Tid {
		t.Error("distinct traces must get distinct tracks")
	}
	// Nesting: the child's [ts, ts+dur] lies within the parent's.
	if sub.Ts < run.Ts || sub.Ts+sub.Dur > run.Ts+run.Dur+1 { // +1µs rounding slack
		t.Errorf("child [%f,%f] not nested in parent [%f,%f]",
			sub.Ts, sub.Ts+sub.Dur, run.Ts, run.Ts+run.Dur)
	}
	if sub.Args["parent_id"] != run.Args["span_id"] {
		t.Errorf("args parent link: %q vs %q", sub.Args["parent_id"], run.Args["span_id"])
	}
	if sub.Args["attempt"] != "1" {
		t.Errorf("attr lost: %v", sub.Args)
	}
}

func TestJSONLExport(t *testing.T) {
	col := NewCollector()
	col.StartSpan("a").End()
	col.StartSpan("b").End()
	var b strings.Builder
	if err := col.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %q not JSON: %v", line, err)
		}
		if r.Name != "a" && r.Name != "b" {
			t.Errorf("unexpected record %+v", r)
		}
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	col := NewCollector()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := col.StartSpan("concurrent")
				sp.StartChild("child").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if col.Len() != workers*per*2 {
		t.Errorf("recorded %d spans, want %d", col.Len(), workers*per*2)
	}
	ids := make(map[string]bool)
	for _, r := range col.Records() {
		if ids[r.SpanID] {
			t.Fatalf("duplicate span ID %s", r.SpanID)
		}
		ids[r.SpanID] = true
	}
}
