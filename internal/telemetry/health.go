package telemetry

import (
	"net/http"
	"sync/atomic"
)

// HealthState is the lifecycle position reported by /healthz.
type HealthState int32

const (
	// HealthStarting means the process is up but not yet serving.
	HealthStarting HealthState = iota
	// HealthOK means the server is accepting work.
	HealthOK
	// HealthShuttingDown means a graceful drain is in progress; load
	// balancers should stop sending new work.
	HealthShuttingDown
)

func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthShuttingDown:
		return "shutting-down"
	default:
		return "starting"
	}
}

// Health is an atomic lifecycle flag with an http.Handler face: 200 while
// serving, 503 before readiness and during drain. The zero value reports
// HealthStarting.
type Health struct{ state atomic.Int32 }

// Set moves the health to the given state.
func (h *Health) Set(s HealthState) { h.state.Store(int32(s)) }

// State returns the current state.
func (h *Health) State() HealthState { return HealthState(h.state.Load()) }

// ServeHTTP implements the /healthz contract.
func (h *Health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	st := h.State()
	w.Header().Set("Content-Type", "application/json")
	if st != HealthOK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write([]byte(`{"status":"` + st.String() + `"}` + "\n"))
}
