// Package stats provides the distributional and closed-form calculations
// used across the reproduction: geometric-distribution facts for the
// sampler tests, the confidence-run-count arithmetic of §3.1.3, and small
// summary-statistics helpers for the figures.
package stats

import (
	"math"
	"sort"
)

// GeometricMean returns the mean of the geometric distribution with
// success probability p: 1/p. This is the expected countdown for sampling
// density p (§2.1: "a geometric distribution whose mean value is the
// inverse of the sampling density").
func GeometricMean(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// GeometricPMF returns P(X = k) for the geometric distribution with
// success probability p, k >= 1.
func GeometricPMF(p float64, k int64) float64 {
	if k < 1 || p <= 0 || p > 1 {
		return 0
	}
	return math.Pow(1-p, float64(k-1)) * p
}

// GeometricVariance returns the variance (1-p)/p².
func GeometricVariance(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return (1 - p) / (p * p)
}

// RunsNeeded returns the number of runs required to observe, with the
// given confidence, at least one sample of an event that occurs in a
// fraction eventRate of runs when sampling at the given density. This is
// the §3.1.3 calculation:
//
//	n = ceil( log(1-confidence) / log(1 - eventRate*density) )
//
// The paper's examples: RunsNeeded(0.90, 1.0/100, 1.0/1000) = 230258 runs
// for 90% confidence of seeing a once-per-hundred-runs event, and
// RunsNeeded(0.99, 1.0/1000, 1.0/1000) = 4605168 runs for 99% confidence
// of seeing a once-per-thousand-runs event, both at 1/1000 sampling.
func RunsNeeded(confidence, eventRate, density float64) int64 {
	q := eventRate * density
	if q <= 0 || confidence <= 0 || confidence >= 1 {
		return math.MaxInt64
	}
	n := math.Log(1-confidence) / math.Log(1-q)
	return int64(math.Ceil(n))
}

// ObservationProbability returns the probability of observing the event
// at least once in n runs (the inverse of RunsNeeded).
func ObservationProbability(eventRate, density float64, n int64) float64 {
	q := eventRate * density
	if q <= 0 {
		return 0
	}
	return 1 - math.Pow(1-q, float64(n))
}

// MinutesToCollect returns how many minutes a deployment needs to gather
// `runs` runs, given a fleet size and a per-user run rate. This is the
// paper's Office XP arithmetic (§3.1.3): sixty million users running
// twice a week produce 230,258 runs every ~19 minutes.
func MinutesToCollect(runs int64, users int64, runsPerUserPerWeek float64) float64 {
	if users <= 0 || runsPerUserPerWeek <= 0 {
		return math.Inf(1)
	}
	runsPerMinute := float64(users) * runsPerUserPerWeek / (7 * 24 * 60)
	return float64(runs) / runsPerMinute
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// MeanInt is Mean over integer data.
func MeanInt(xs []int) float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = float64(x)
	}
	return Mean(ys)
}

// ChiSquareUniform computes the chi-square statistic of observed counts
// against a uniform expectation. Used by the sampler fairness tests to
// reject the periodic sampler and accept the geometric one.
func ChiSquareUniform(observed []int64) float64 {
	if len(observed) == 0 {
		return 0
	}
	var total int64
	for _, o := range observed {
		total += o
	}
	expected := float64(total) / float64(len(observed))
	if expected == 0 {
		return 0
	}
	var chi float64
	for _, o := range observed {
		d := float64(o) - expected
		chi += d * d / expected
	}
	return chi
}
