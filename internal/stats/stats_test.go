package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunsNeededPaperValues(t *testing.T) {
	// §3.1.3's exact numbers.
	if got := RunsNeeded(0.90, 1.0/100, 1.0/1000); got != 230258 {
		t.Errorf("90%% of 1/100 event at 1/1000 sampling: %d, want 230258", got)
	}
	if got := RunsNeeded(0.99, 1.0/1000, 1.0/1000); got != 4605168 {
		t.Errorf("99%% of 1/1000 event at 1/1000 sampling: %d, want 4605168", got)
	}
}

func TestRunsNeededDegenerateInputs(t *testing.T) {
	if RunsNeeded(0.9, 0, 0.5) != math.MaxInt64 {
		t.Error("zero event rate")
	}
	if RunsNeeded(0, 0.5, 0.5) != math.MaxInt64 {
		t.Error("zero confidence")
	}
	if RunsNeeded(1, 0.5, 0.5) != math.MaxInt64 {
		t.Error("certainty is unreachable")
	}
}

func TestObservationProbabilityInvertsRunsNeeded(t *testing.T) {
	err := quick.Check(func(c, e, d uint16) bool {
		conf := 0.5 + float64(c%45)/100 // 0.50 .. 0.94
		rate := 1.0 / float64(e%500+2)
		dens := 1.0 / float64(d%2000+2)
		n := RunsNeeded(conf, rate, dens)
		p := ObservationProbability(rate, dens, n)
		// Running the computed number of runs must reach the confidence,
		// and one fewer run must not.
		return p >= conf && ObservationProbability(rate, dens, n-1) < conf+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestMinutesToCollectPaperExamples(t *testing.T) {
	// §3.1.3: 60M Office XP licensees, two Word runs per week, produce
	// 230,258 runs "every nineteen minutes".
	m := MinutesToCollect(230258, 60_000_000, 2)
	if m < 18 || m > 20 {
		t.Errorf("Office XP example: %.1f minutes, want ~19", m)
	}
	// And 4,605,168 runs "takes less than seven hours to gather".
	h := MinutesToCollect(4605168, 60_000_000, 2) / 60
	if h >= 7 || h < 6 {
		t.Errorf("second example: %.2f hours, want just under 7", h)
	}
	if !math.IsInf(MinutesToCollect(100, 0, 2), 1) {
		t.Error("no users means never")
	}
}

func TestGeometricFacts(t *testing.T) {
	if GeometricMean(0.25) != 4 {
		t.Error("mean")
	}
	if !math.IsInf(GeometricMean(0), 1) {
		t.Error("mean at 0")
	}
	if GeometricVariance(0.5) != 2 {
		t.Error("variance")
	}
	if !math.IsInf(GeometricVariance(0), 1) {
		t.Error("variance at 0")
	}
	if GeometricPMF(0.5, 1) != 0.5 {
		t.Error("pmf k=1")
	}
	if GeometricPMF(0.5, 2) != 0.25 {
		t.Error("pmf k=2")
	}
	if GeometricPMF(0.5, 0) != 0 {
		t.Error("pmf k=0")
	}
	// PMF sums to ~1.
	var sum float64
	for k := int64(1); k < 200; k++ {
		sum += GeometricPMF(0.1, k)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("pmf sum: %f", sum)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean: %f", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2.138) > 0.01 {
		t.Errorf("stddev: %f", StdDev(xs))
	}
	if Median(xs) != 4.5 {
		t.Errorf("median: %f", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || Median(nil) != 0 {
		t.Error("empty-input behaviour")
	}
	if MeanInt([]int{1, 2, 3}) != 2 {
		t.Error("MeanInt")
	}
}

func TestChiSquareUniform(t *testing.T) {
	if ChiSquareUniform([]int64{100, 100, 100}) != 0 {
		t.Error("uniform data should score 0")
	}
	if ChiSquareUniform([]int64{300, 0, 0}) <= ChiSquareUniform([]int64{110, 95, 95}) {
		t.Error("skewed data should score higher")
	}
	if ChiSquareUniform(nil) != 0 || ChiSquareUniform([]int64{0, 0}) != 0 {
		t.Error("degenerate inputs")
	}
}
