package instrument

import (
	"fmt"
	"strings"

	"cbi/internal/cfg"
)

// FuncMetrics are the per-function static metrics of Table 1.
type FuncMetrics struct {
	Name            string
	Weightless      bool
	Sites           int
	ThresholdChecks int
	Weights         []int
}

// Metrics are the whole-program static metrics of Table 1.
type Metrics struct {
	Functions  int // total non-library functions
	Weightless int
	WithSites  int // functions directly containing at least one site
	// Averages over the functions that directly contain sites.
	AvgSitesPerFunc    float64
	AvgChecksPerFunc   float64
	AvgThresholdWeight float64
	PerFunc            []FuncMetrics
}

// ComputeMetrics derives Table 1's static metrics from a sampled program
// (apply Sample first; threshold data comes from the transformation).
func ComputeMetrics(p *cfg.Program) Metrics {
	var m Metrics
	var totalSites, totalChecks, totalWeight, weightCount int
	for _, fn := range p.FuncList {
		fm := FuncMetrics{
			Name:            fn.Name,
			Weightless:      fn.Weightless,
			Sites:           fn.NumSites,
			ThresholdChecks: len(fn.ThresholdWeights),
			Weights:         fn.ThresholdWeights,
		}
		m.PerFunc = append(m.PerFunc, fm)
		m.Functions++
		if fn.Weightless {
			m.Weightless++
		}
		if fn.NumSites > 0 {
			m.WithSites++
			totalSites += fn.NumSites
			totalChecks += fm.ThresholdChecks
			for _, w := range fm.Weights {
				totalWeight += w
				weightCount++
			}
		}
	}
	if m.WithSites > 0 {
		m.AvgSitesPerFunc = float64(totalSites) / float64(m.WithSites)
		m.AvgChecksPerFunc = float64(totalChecks) / float64(m.WithSites)
	}
	if weightCount > 0 {
		m.AvgThresholdWeight = float64(totalWeight) / float64(weightCount)
	}
	return m
}

// Row renders the metrics as a Table 1 row:
// total weightless has-sites avg-sites avg-checks avg-weight.
func (m Metrics) Row(benchmark string) string {
	return fmt.Sprintf("%-10s %5d %10d %8d %9.1f %16.1f %16.1f",
		benchmark, m.Functions, m.Weightless, m.WithSites,
		m.AvgSitesPerFunc, m.AvgChecksPerFunc, m.AvgThresholdWeight)
}

// TableHeader returns the Table 1 column header matching Row's layout.
func TableHeader() string {
	return fmt.Sprintf("%-10s %5s %10s %8s %9s %16s %16s\n%s",
		"benchmark", "total", "weightless", "sites", "avg sites", "threshold checks", "threshold weight",
		strings.Repeat("-", 88))
}
