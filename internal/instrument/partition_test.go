package instrument

import (
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/interp"
	"cbi/internal/minic"
)

// buildPartition builds one partition of the site population.
func buildPartition(t *testing.T, src string, set SchemeSet, idx, count int) *cfg.Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(f, nil, &Schemes{Set: set, PartCount: count, PartIndex: idx})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const partitionSrc = `
int work(int* buf, int n) {
	int total = 0;
	for (int i = 0; i < n; i++) {
		total += buf[i];
		buf[i] = total % 100;
	}
	return total;
}
int main() {
	int* buf = alloc(32);
	for (int i = 0; i < 32; i++) { buf[i] = i; }
	int r = 0;
	for (int k = 0; k < 4; k++) { r = work(buf, 32); }
	return r % 251;
}
`

func TestPartitionsCoverAllSitesExactlyOnce(t *testing.T) {
	set := SchemeSet{Bounds: true, Branches: true}
	f, err := minic.Parse("t.mc", partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(f, nil, set)
	if err != nil {
		t.Fatal(err)
	}
	fullNames := map[string]int{}
	for _, s := range full.Sites {
		fullNames[s.PredicateName(-1)]++
	}

	const parts = 3
	partNames := map[string]int{}
	totalSites := 0
	for idx := 0; idx < parts; idx++ {
		p := buildPartition(t, partitionSrc, set, idx, parts)
		totalSites += len(p.Sites)
		for _, s := range p.Sites {
			partNames[s.PredicateName(-1)]++
		}
		if len(p.Sites) >= len(full.Sites) {
			t.Errorf("partition %d has %d sites, full build %d", idx, len(p.Sites), len(full.Sites))
		}
	}
	if totalSites != len(full.Sites) {
		t.Errorf("partitions hold %d sites, full build %d", totalSites, len(full.Sites))
	}
	for name, n := range fullNames {
		if partNames[name] != n {
			t.Errorf("site %q appears %d times across partitions, want %d", name, partNames[name], n)
		}
	}
}

func TestPartitionedProgramsPreserveSemantics(t *testing.T) {
	f, err := minic.Parse("t.mc", partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBaseline(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := interp.Run(base, interp.Config{})
	for idx := 0; idx < 3; idx++ {
		p := buildPartition(t, partitionSrc, SchemeSet{Bounds: true}, idx, 3)
		sp := Sample(p, DefaultOptions())
		got := interp.Run(sp, interp.Config{Density: 1.0 / 10, CountdownSeed: int64(idx)})
		if got.Outcome != interp.OutcomeOK || got.ExitCode != want.ExitCode {
			t.Errorf("partition %d diverged: %v", idx, got.Trap)
		}
	}
}

func TestPartitionDisabledKeepsEverything(t *testing.T) {
	p0 := buildPartition(t, partitionSrc, SchemeSet{Bounds: true}, 0, 0)
	p1 := buildPartition(t, partitionSrc, SchemeSet{Bounds: true}, 0, 1)
	f, err := minic.Parse("t.mc", partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(f, nil, SchemeSet{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Sites) != len(full.Sites) || len(p1.Sites) != len(full.Sites) {
		t.Error("PartCount <= 1 must keep all sites")
	}
}
