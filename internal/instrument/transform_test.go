package instrument

import (
	"strings"
	"testing"

	"cbi/internal/cfg"
	"cbi/internal/minic"
)

const loopProgram = `
int work(int* buf, int n) {
	int total = 0;
	for (int i = 0; i < n; i++) {
		total += buf[i];
	}
	return total;
}

int main() {
	int* buf = alloc(8);
	for (int i = 0; i < 8; i++) {
		buf[i] = i;
	}
	return work(buf, 8);
}
`

func buildInstrumented(t *testing.T, src string, set SchemeSet) *cfg.Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(f, nil, set)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBoundsSchemePlacesSitesAtHeapAccesses(t *testing.T) {
	p := buildInstrumented(t, loopProgram, SchemeSet{Bounds: true})
	// work: buf[i] load; main: buf[i] store. Two sites.
	if len(p.Sites) != 2 {
		t.Fatalf("sites: %d", len(p.Sites))
	}
	for _, s := range p.Sites {
		if s.Kind != cfg.SiteBounds || s.NumCounters != 2 {
			t.Errorf("site: %+v", s)
		}
	}
}

func TestReturnsSchemeObservesCalls(t *testing.T) {
	p := buildInstrumented(t, loopProgram, SchemeSet{Returns: true})
	// alloc() and work() both return scalars.
	if len(p.Sites) != 2 {
		t.Fatalf("sites: %d (%v)", len(p.Sites), siteTexts(p))
	}
	name := p.PredicateName(p.Sites[1].CounterBase + 2)
	if !strings.Contains(name, "work() return value > 0") {
		t.Errorf("predicate: %q", name)
	}
}

func TestScalarPairsScheme(t *testing.T) {
	p := buildInstrumented(t, `
int g1 = 5;
void f(int a, int* q) {
	int b = 3;
	int c = a;
	int* r = q;
}
`, SchemeSet{ScalarPairs: true})
	// b=3: pairs with a, g1 (int), not q (int*). -> 2 sites
	// c=a: pairs with a, b, g1 -> 3 sites
	// r=q: pairs with q (int*), plus null check -> 2 sites
	var pair, null int
	for _, s := range p.Sites {
		switch s.Kind {
		case cfg.SiteScalarPair:
			pair++
		case cfg.SiteNullCheck:
			null++
		}
	}
	if pair != 6 || null != 1 {
		t.Errorf("pair=%d null=%d, want 6/1\n%v", pair, null, siteTexts(p))
	}
}

func TestBranchesAndAssertsSchemes(t *testing.T) {
	p := buildInstrumented(t, `
void f(int n) {
	assert(n >= 0);
	if (n > 2) { n = 2; }
	while (n > 0) { n--; }
}
`, SchemeSet{Branches: true, Asserts: true})
	var branch, asserts int
	for _, s := range p.Sites {
		switch s.Kind {
		case cfg.SiteBranch:
			branch++
		case cfg.SiteAssert:
			asserts++
		}
	}
	if branch != 2 || asserts != 1 {
		t.Errorf("branch=%d assert=%d\n%v", branch, asserts, siteTexts(p))
	}
}

func TestFilterRestrictsInstrumentation(t *testing.T) {
	f, err := minic.Parse("t.mc", loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildFiltered(f, nil, SchemeSet{Bounds: true}, func(fn string) bool { return fn == "work" })
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 1 || p.Sites[0].Fn != "work" {
		t.Fatalf("sites: %v", siteTexts(p))
	}
	if p.Funcs["main"].NumSites != 0 {
		t.Error("main should be uninstrumented")
	}
}

func siteTexts(p *cfg.Program) []string {
	var out []string
	for _, s := range p.Sites {
		out = append(out, s.Fn+": "+s.Text)
	}
	return out
}

// ----------------------------------------------------------------------------
// Transformation structure

func TestSampleCreatesThresholds(t *testing.T) {
	p := buildInstrumented(t, loopProgram, SchemeSet{Bounds: true})
	sp := Sample(p, DefaultOptions())
	if !sp.Sampled {
		t.Error("Sampled flag")
	}
	work := sp.Funcs["work"]
	if work.Weightless {
		t.Error("work has sites")
	}
	if len(work.ThresholdWeights) == 0 {
		t.Fatalf("work has no threshold checks:\n%s", cfg.DumpFunc(work))
	}
	// The loop back edge gives a threshold check with weight >= 1.
	for _, w := range work.ThresholdWeights {
		if w < 1 {
			t.Errorf("threshold weight %d", w)
		}
	}
	// Fast path must contain countdown decrements, slow path guarded sites.
	dump := cfg.DumpFunc(work)
	if !strings.Contains(dump, "countdown -=") {
		t.Errorf("no fast-path decrement:\n%s", dump)
	}
	if !strings.Contains(dump, "if (--countdown == 0)") {
		t.Errorf("no slow-path guard:\n%s", dump)
	}
	if !strings.Contains(dump, "if countdown >") {
		t.Errorf("no threshold check:\n%s", dump)
	}
}

func TestSampleWeightlessFunctionsUntouched(t *testing.T) {
	p := buildInstrumented(t, `
int helper(int x) { return x + 1; }
int main() { int* b = alloc(2); b[0] = helper(1); return b[0]; }
`, SchemeSet{Bounds: true})
	sp := Sample(p, DefaultOptions())
	helper := sp.Funcs["helper"]
	if !helper.Weightless {
		t.Fatal("helper should be weightless")
	}
	dump := cfg.DumpFunc(helper)
	for _, bad := range []string{"countdown", "site#"} {
		if strings.Contains(dump, bad) {
			t.Errorf("weightless body mentions %q:\n%s", bad, dump)
		}
	}
}

func TestSampleSplitsAfterNonWeightlessCalls(t *testing.T) {
	p := buildInstrumented(t, `
int noisy() { int* p = alloc(1); p[0] = 1; return p[0]; }
int main() {
	int a = noisy();
	int b = noisy();
	return a + b;
}
`, SchemeSet{Bounds: true})
	sp := Sample(p, DefaultOptions())
	main := sp.Funcs["main"]
	// main has no sites of its own but calls non-weightless noisy():
	// it must not be weightless, and must re-import the countdown after
	// each call in localized mode.
	if main.Weightless {
		t.Fatal("main calls non-weightless noisy()")
	}
	dump := cfg.DumpFunc(main)
	imports := strings.Count(dump, "countdown = global_countdown")
	if imports < 3 { // entry + after 2 calls
		t.Errorf("imports: %d\n%s", imports, dump)
	}
	exports := strings.Count(dump, "global_countdown = countdown")
	if exports < 3 { // before 2 calls + before return
		t.Errorf("exports: %d\n%s", exports, dump)
	}
}

func TestSampleEveryCycleHasCheckpoint(t *testing.T) {
	srcs := []string{
		loopProgram,
		`int f(int n) { int s = 0; while (n > 0) { int* p = alloc(1); p[0] = n; s += p[0]; n--; } return s; }`,
		`int f(int n) { int s = 0; for (int i = 0; i < n; i++) { for (int j = 0; j < i; j++) { int* p = alloc(1); p[j % 1] = j; s += p[0]; } } return s; }`,
	}
	for _, src := range srcs {
		p := buildInstrumented(t, src, SchemeSet{Bounds: true})
		sp := Sample(p, DefaultOptions())
		for _, fn := range sp.FuncList {
			assertCyclesSafe(t, fn)
		}
	}
}

// assertCyclesSafe verifies the key invariant of §2.2: starting from any
// threshold check and walking forward, only a bounded number of sites is
// crossed before the next threshold check; equivalently, no cycle
// consists solely of non-threshold blocks containing sites.
func assertCyclesSafe(t *testing.T, fn *cfg.Func) {
	t.Helper()
	// Any cycle among blocks must pass through a Threshold terminator or a
	// block with zero guarded sites... stronger: walk: from every block,
	// following edges that do not enter a threshold block, we must not be
	// able to return to the starting block if any block on the path has a
	// site.
	isCheck := func(b *cfg.Block) bool {
		_, ok := b.Term.(*cfg.Threshold)
		return ok
	}
	// For countdown-safety we need: every cycle containing a GuardedSite
	// or CountdownDec passes through a Threshold. Find strongly-connected
	// behaviour via simple DFS cycle enumeration on the "no-threshold"
	// subgraph.
	var hasCountdownOp = func(b *cfg.Block) bool {
		for _, in := range b.Instrs {
			switch in.(type) {
			case *cfg.GuardedSite, *cfg.CountdownDec:
				return true
			}
		}
		return false
	}
	// Build subgraph excluding threshold blocks; look for reachable cycles
	// containing countdown ops.
	state := map[*cfg.Block]int{}
	var stack []*cfg.Block
	var dfs func(b *cfg.Block)
	dfs = func(b *cfg.Block) {
		state[b] = 1
		stack = append(stack, b)
		for _, s := range cfg.Succs(b.Term) {
			if isCheck(s) {
				continue
			}
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				// Found a cycle s..b; check for countdown ops.
				for i := len(stack) - 1; i >= 0; i-- {
					if hasCountdownOp(stack[i]) {
						t.Errorf("%s: cycle without threshold check contains countdown ops:\n%s",
							fn.Name, cfg.DumpFunc(fn))
						return
					}
					if stack[i] == s {
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[b] = 2
	}
	for _, b := range fn.Blocks {
		if state[b] == 0 && !isCheck(b) {
			dfs(b)
		}
	}
}

func TestSampleCheckPerSiteMode(t *testing.T) {
	p := buildInstrumented(t, loopProgram, SchemeSet{Bounds: true})
	opt := DefaultOptions()
	opt.CheckPerSite = true
	sp := Sample(p, opt)
	work := sp.Funcs["work"]
	dump := cfg.DumpFunc(work)
	if strings.Contains(dump, "if countdown >") {
		t.Errorf("check-per-site mode must not create thresholds:\n%s", dump)
	}
	if !strings.Contains(dump, "if (--countdown == 0)") {
		t.Errorf("sites must be individually guarded:\n%s", dump)
	}
	if len(work.ThresholdWeights) != 0 {
		t.Error("no threshold weights expected")
	}
}

func TestSampleGlobalCountdownMode(t *testing.T) {
	p := buildInstrumented(t, loopProgram, SchemeSet{Bounds: true})
	opt := DefaultOptions()
	opt.LocalizeCountdown = false
	sp := Sample(p, opt)
	dump := cfg.DumpProgram(sp)
	if strings.Contains(dump, "global_countdown") {
		t.Errorf("global mode should not import/export:\n%s", dump)
	}
	if sp.Funcs["work"].LocalCountdown {
		t.Error("LocalCountdown flag should be false")
	}
}

func TestCoalescingMergesDecrements(t *testing.T) {
	src := `
void f(int* p) {
	p[0] = 1;
	p[1] = 2;
	p[2] = 3;
	p[3] = 4;
}
void g() { int* b = alloc(4); f(b); }
`
	p := buildInstrumented(t, src, SchemeSet{Bounds: true})

	on := Sample(p, DefaultOptions())
	fnOn := on.Funcs["f"]
	maxDec := 0
	for _, b := range fnOn.Blocks {
		for _, in := range b.Instrs {
			if d, ok := in.(*cfg.CountdownDec); ok && d.N > maxDec {
				maxDec = d.N
			}
		}
	}
	if maxDec != 4 {
		t.Errorf("coalesced decrement: %d, want 4:\n%s", maxDec, cfg.DumpFunc(fnOn))
	}

	p2 := buildInstrumented(t, src, SchemeSet{Bounds: true})
	opt := DefaultOptions()
	opt.CoalesceDecrements = false
	off := Sample(p2, opt)
	for _, b := range off.Funcs["f"].Blocks {
		for _, in := range b.Instrs {
			if d, ok := in.(*cfg.CountdownDec); ok && d.N != 1 {
				t.Errorf("uncoalesced mode has merged decrement %d", d.N)
			}
		}
	}
}

func TestSeparateCompilationIsConservative(t *testing.T) {
	src := `
int pureLeaf(int x) { return x * 2; }
int caller() { return pureLeaf(21); }
`
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	// Instrument nothing at all: both functions are weightless under
	// whole-program analysis.
	p, err := Build(f, nil, SchemeSet{})
	if err != nil {
		t.Fatal(err)
	}
	whole := Sample(p, DefaultOptions())
	if !whole.Funcs["caller"].Weightless {
		t.Error("whole-program: caller should be weightless")
	}
	opt := DefaultOptions()
	opt.SeparateCompilation = true
	sep := Sample(p, opt)
	if sep.Funcs["caller"].Weightless {
		t.Error("separate compilation: caller must be conservative")
	}
	if !sep.Funcs["pureLeaf"].Weightless {
		t.Error("pureLeaf has no calls and no sites; still weightless")
	}
}

func TestWeightBoundsSitesOnPaths(t *testing.T) {
	// A diamond: one arm has 3 sites, the other 1; the entry threshold
	// weight must be the max path weight plus any shared sites.
	src := `
void f(int* p, int c) {
	if (c) {
		p[0] = 1;
		p[1] = 2;
		p[2] = 3;
	} else {
		p[0] = 9;
	}
}
`
	p := buildInstrumented(t, src, SchemeSet{Bounds: true})
	sp := Sample(p, DefaultOptions())
	fn := sp.Funcs["f"]
	if len(fn.ThresholdWeights) != 1 {
		t.Fatalf("weights: %v\n%s", fn.ThresholdWeights, cfg.DumpFunc(fn))
	}
	if fn.ThresholdWeights[0] != 3 {
		t.Errorf("entry weight %d, want 3 (max path)", fn.ThresholdWeights[0])
	}
}

func TestMetricsComputation(t *testing.T) {
	p := buildInstrumented(t, loopProgram, SchemeSet{Bounds: true})
	sp := Sample(p, DefaultOptions())
	m := ComputeMetrics(sp)
	if m.Functions != 2 {
		t.Errorf("functions: %d", m.Functions)
	}
	if m.WithSites != 2 {
		t.Errorf("with sites: %d", m.WithSites)
	}
	if m.AvgSitesPerFunc != 1 {
		t.Errorf("avg sites: %f", m.AvgSitesPerFunc)
	}
	if m.AvgChecksPerFunc <= 0 || m.AvgThresholdWeight <= 0 {
		t.Errorf("averages: %+v", m)
	}
	row := m.Row("loop")
	if !strings.HasPrefix(row, "loop") {
		t.Errorf("row: %q", row)
	}
	if TableHeader() == "" {
		t.Error("header")
	}
}

func TestCodeSizeGrowth(t *testing.T) {
	f, err := minic.Parse("t.mc", loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBaseline(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(f, nil, SchemeSet{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := Sample(inst, DefaultOptions())
	if !(CodeSize(base) < CodeSize(inst)) {
		t.Error("instrumentation should grow code")
	}
	if !(CodeSize(inst) < CodeSize(sp)) {
		t.Error("sampling transformation should grow code further (two clones)")
	}
}
