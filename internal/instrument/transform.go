package instrument

import (
	"fmt"

	"cbi/internal/cfg"
)

// Options configures the sampling transformation. The zero value disables
// every optimization; use DefaultOptions for the paper's configuration.
type Options struct {
	// CoalesceDecrements merges fast-path countdown decrements within a
	// block into a single adjustment (§2.4's hand-assisted optimization;
	// the countdown cannot alias anything, so decrements move freely
	// between reads).
	CoalesceDecrements bool
	// LocalizeCountdown keeps the countdown in a frame-local variable,
	// importing from and exporting to the global around calls to
	// non-weightless functions and at entry/exit (§2.4).
	LocalizeCountdown bool
	// SeparateCompilation disables the interprocedural weightless-function
	// analysis: every call to a user function is conservatively assumed to
	// change the countdown (§2.3's "callee compiled separately" case,
	// which §3.2.5 notes applies to ccrypt's one-object-at-a-time build).
	SeparateCompilation bool
	// CheckPerSite disables fast-path/slow-path cloning and threshold
	// checks entirely: every site individually decrements and tests the
	// countdown. This is the "simpler but slower pattern" the
	// transformation devolves to in the worst case (§3.2.5), kept as an
	// ablation.
	CheckPerSite bool
}

// DefaultOptions returns the paper's configuration: cloning with
// threshold checks, coalesced decrements, localized countdown, and
// whole-program weightless analysis.
func DefaultOptions() Options {
	return Options{CoalesceDecrements: true, LocalizeCountdown: true}
}

// Sample applies the sampling transformation (§2.2–2.4) to an
// instrumented program, returning a new program whose functions are
// rewritten into fast-path/slow-path form. The input program is not
// modified; sites and counter numbering are shared.
func Sample(p *cfg.Program, opt Options) *cfg.Program {
	np := &cfg.Program{
		File:        p.File,
		Structs:     p.Structs,
		Globals:     p.Globals,
		Funcs:       map[string]*cfg.Func{},
		Builtins:    p.Builtins,
		Sites:       p.Sites,
		NumCounters: p.NumCounters,
		Sampled:     true,
	}
	weightless := weightlessSet(p, opt)
	for _, fn := range p.FuncList {
		nf := transformFunc(fn, opt, weightless)
		np.Funcs[nf.Name] = nf
		np.FuncList = append(np.FuncList, nf)
	}
	return np
}

// weightlessSet returns the per-function weightless verdicts used by the
// transformation. In SeparateCompilation mode, callee bodies cannot be
// examined, so only functions with no sites and no user-function calls at
// all are weightless.
func weightlessSet(p *cfg.Program, opt Options) map[string]bool {
	wl := map[string]bool{}
	for _, fn := range p.FuncList {
		if !opt.SeparateCompilation {
			wl[fn.Name] = fn.Weightless
			continue
		}
		w := fn.NumSites == 0
		if w {
		scan:
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					if c, ok := in.(*cfg.Call); ok && !c.Builtin {
						w = false
						break scan
					}
				}
			}
		}
		wl[fn.Name] = w
	}
	return wl
}

func transformFunc(fn *cfg.Func, opt Options, weightless map[string]bool) *cfg.Func {
	nf := &cfg.Func{
		Name:       fn.Name,
		Params:     fn.Params,
		Locals:     fn.Locals,
		Ret:        fn.Ret,
		NumSites:   fn.NumSites,
		Weightless: weightless[fn.Name],
	}
	if nf.Weightless {
		// Weightless functions require no cloning or countdown management
		// of any kind (§2.3); copy the body verbatim.
		nf.Entry, nf.Blocks = copyBlocks(fn)
		return nf
	}
	t := &transformer{fn: fn, nf: nf, opt: opt, weightless: weightless}
	t.buildShape()
	t.findCheckpoints()
	if opt.CheckPerSite {
		t.emitCheckPerSite()
	} else {
		t.computeWeights()
		t.emitClones()
	}
	t.finish()
	return nf
}

// copyBlocks deep-copies a function body without changes.
func copyBlocks(fn *cfg.Func) (*cfg.Block, []*cfg.Block) {
	m := map[*cfg.Block]*cfg.Block{}
	for _, b := range fn.Blocks {
		m[b] = &cfg.Block{ID: b.ID, LoopHead: b.LoopHead}
	}
	for _, b := range fn.Blocks {
		nb := m[b]
		nb.Instrs = append([]cfg.Instr(nil), b.Instrs...)
		nb.Term = cloneTerm(b.Term, func(s *cfg.Block) *cfg.Block { return m[s] })
	}
	var blocks []*cfg.Block
	for _, b := range fn.Blocks {
		blocks = append(blocks, m[b])
	}
	return m[fn.Entry], blocks
}

func cloneTerm(t cfg.Term, remap func(*cfg.Block) *cfg.Block) cfg.Term {
	switch x := t.(type) {
	case *cfg.Goto:
		return &cfg.Goto{To: remap(x.To), BackEdge: x.BackEdge}
	case *cfg.If:
		return &cfg.If{Cond: x.Cond, Then: remap(x.Then), Else: remap(x.Else),
			ThenBack: x.ThenBack, ElseBack: x.ElseBack}
	case *cfg.Ret:
		return &cfg.Ret{X: x.X}
	case *cfg.Threshold:
		return &cfg.Threshold{Weight: x.Weight, Fast: remap(x.Fast), Slow: remap(x.Slow)}
	default:
		panic(fmt.Sprintf("unknown terminator %T", t))
	}
}

// transformer carries the per-function transformation state.
type transformer struct {
	fn         *cfg.Func
	nf         *cfg.Func
	opt        Options
	weightless map[string]bool

	shape      []*cfg.Block // blocks after splitting at calls
	entryShape *cfg.Block
	postCall   map[*cfg.Block]bool // shape blocks entered by returning calls
	checkpoint map[*cfg.Block]bool
	weights    map[*cfg.Block]int
}

func (t *transformer) countdownAffectingCall(in cfg.Instr) (*cfg.Call, bool) {
	c, ok := in.(*cfg.Call)
	if !ok || c.Builtin || t.weightless[c.Callee] {
		return nil, false
	}
	return c, true
}

// buildShape deep-copies the body, splitting each block after every call
// to a non-weightless function: the callee consumes an unknown amount of
// countdown, so the acyclic region cannot extend below the call (§2.3).
func (t *transformer) buildShape() {
	t.postCall = map[*cfg.Block]bool{}
	first := map[*cfg.Block]*cfg.Block{}
	type pending struct {
		last *cfg.Block
		term cfg.Term
	}
	var pendings []pending
	for _, b := range t.fn.Blocks {
		cur := &cfg.Block{LoopHead: b.LoopHead}
		first[b] = cur
		t.shape = append(t.shape, cur)
		for _, in := range b.Instrs {
			cur.Instrs = append(cur.Instrs, in)
			if _, split := t.countdownAffectingCall(in); split {
				next := &cfg.Block{}
				t.postCall[next] = true
				cur.Term = &cfg.Goto{To: next}
				t.shape = append(t.shape, next)
				cur = next
			}
		}
		pendings = append(pendings, pending{last: cur, term: b.Term})
	}
	for _, p := range pendings {
		p.term = cloneTerm(p.term, func(s *cfg.Block) *cfg.Block { return first[s] })
		p.last.Term = p.term
	}
	t.entryShape = first[t.fn.Entry]
	for i, b := range t.shape {
		b.ID = i
	}
}

// findCheckpoints marks threshold-check locations: function entry, back
// edge targets (one check per loop, §2.2), and post-call continuations.
func (t *transformer) findCheckpoints() {
	t.checkpoint = map[*cfg.Block]bool{t.entryShape: true}
	for b := range t.postCall {
		t.checkpoint[b] = true
	}
	tmp := &cfg.Func{Entry: t.entryShape, Blocks: t.shape}
	byID := map[int]*cfg.Block{}
	for _, b := range t.shape {
		byID[b.ID] = b
	}
	for e := range cfg.BackEdges(tmp) {
		t.checkpoint[byID[e[1]]] = true
	}
}

// computeWeights assigns each checkpoint the maximum number of sites on
// any path from it to the next checkpoint (§2.2). Because every cycle
// contains a checkpoint, the traversal is acyclic.
func (t *transformer) computeWeights() {
	t.weights = map[*cfg.Block]int{}
	state := map[*cfg.Block]int{} // 1 = visiting, 2 = done
	var walk func(b *cfg.Block) int
	walk = func(b *cfg.Block) int {
		if state[b] == 2 {
			return t.weights[b]
		}
		if state[b] == 1 {
			panic("instrument: cycle without checkpoint")
		}
		state[b] = 1
		w := cfg.CountSites(b)
		best := 0
		for _, s := range cfg.Succs(b.Term) {
			if t.checkpoint[s] {
				continue
			}
			if v := walk(s); v > best {
				best = v
			}
		}
		state[b] = 2
		t.weights[b] = w + best
		return t.weights[b]
	}
	for b := range t.checkpoint {
		walk(b)
	}
}

// emitClones produces the fast and slow clones of every shape block and
// joins them with threshold-check blocks (§2.2, Figure 1).
func (t *transformer) emitClones() {
	localize := t.opt.LocalizeCountdown
	fast := map[*cfg.Block]*cfg.Block{}
	slow := map[*cfg.Block]*cfg.Block{}
	for _, b := range t.shape {
		fast[b] = &cfg.Block{LoopHead: b.LoopHead}
		slow[b] = &cfg.Block{LoopHead: b.LoopHead}
	}

	// Checkpoint blocks decide fast vs slow. Zero-weight checks are
	// discarded (§2.2): no sample can land before the next checkpoint, so
	// jump straight to the fast path.
	check := map[*cfg.Block]*cfg.Block{}
	for _, b := range t.shape { // shape order keeps the layout deterministic
		if !t.checkpoint[b] {
			continue
		}
		cb := &cfg.Block{}
		if localize && (t.postCall[b] || b == t.entryShape) {
			cb.Instrs = append(cb.Instrs, &cfg.CDImport{})
		}
		w := t.weights[b]
		if w == 0 {
			cb.Term = &cfg.Goto{To: fast[b]}
		} else {
			cb.Term = &cfg.Threshold{Weight: w, Fast: fast[b], Slow: slow[b]}
			t.nf.ThresholdWeights = append(t.nf.ThresholdWeights, w)
		}
		check[b] = cb
	}

	remapTo := func(variant map[*cfg.Block]*cfg.Block) func(*cfg.Block) *cfg.Block {
		return func(s *cfg.Block) *cfg.Block {
			if t.checkpoint[s] {
				return check[s]
			}
			return variant[s]
		}
	}

	for _, b := range t.shape {
		fb, sb := fast[b], slow[b]
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *cfg.SiteInstr:
				fb.Instrs = append(fb.Instrs, &cfg.CountdownDec{N: 1})
				sb.Instrs = append(sb.Instrs, &cfg.GuardedSite{Site: x.Site})
			default:
				if _, affects := t.countdownAffectingCall(in); affects && localize {
					fb.Instrs = append(fb.Instrs, &cfg.CDExport{})
					sb.Instrs = append(sb.Instrs, &cfg.CDExport{})
				}
				fb.Instrs = append(fb.Instrs, in)
				sb.Instrs = append(sb.Instrs, in)
			}
		}
		if _, isRet := b.Term.(*cfg.Ret); isRet && localize {
			fb.Instrs = append(fb.Instrs, &cfg.CDExport{})
			sb.Instrs = append(sb.Instrs, &cfg.CDExport{})
		}
		fb.Term = cloneTerm(b.Term, remapTo(fast))
		sb.Term = cloneTerm(b.Term, remapTo(slow))
	}

	if t.opt.CoalesceDecrements {
		for _, b := range fast {
			coalesceDecrements(b)
		}
	}

	t.nf.Entry = check[t.entryShape]
	t.nf.LocalCountdown = localize
	t.nf.Blocks = append(t.nf.Blocks, t.nf.Entry)
	for _, b := range t.shape {
		if cb, ok := check[b]; ok && b != t.entryShape {
			t.nf.Blocks = append(t.nf.Blocks, cb)
		}
	}
	for _, b := range t.shape {
		t.nf.Blocks = append(t.nf.Blocks, fast[b], slow[b])
	}
}

// emitCheckPerSite produces the degenerate transformation: one countdown
// test per site, no cloning, no thresholds (§3.2.5's fallback pattern).
func (t *transformer) emitCheckPerSite() {
	localize := t.opt.LocalizeCountdown
	out := map[*cfg.Block]*cfg.Block{}
	for _, b := range t.shape {
		out[b] = &cfg.Block{LoopHead: b.LoopHead}
	}
	for _, b := range t.shape {
		nb := out[b]
		if localize && (t.postCall[b] || b == t.entryShape) {
			nb.Instrs = append(nb.Instrs, &cfg.CDImport{})
		}
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *cfg.SiteInstr:
				nb.Instrs = append(nb.Instrs, &cfg.GuardedSite{Site: x.Site})
			default:
				if _, affects := t.countdownAffectingCall(in); affects && localize {
					nb.Instrs = append(nb.Instrs, &cfg.CDExport{})
				}
				nb.Instrs = append(nb.Instrs, in)
			}
		}
		if _, isRet := b.Term.(*cfg.Ret); isRet && localize {
			nb.Instrs = append(nb.Instrs, &cfg.CDExport{})
		}
		nb.Term = cloneTerm(b.Term, func(s *cfg.Block) *cfg.Block { return out[s] })
	}
	t.nf.Entry = out[t.entryShape]
	t.nf.LocalCountdown = localize
	for _, b := range t.shape {
		t.nf.Blocks = append(t.nf.Blocks, out[b])
	}
}

// finish prunes unreachable blocks (zero-weight regions leave orphaned
// slow clones) and renumbers.
func (t *transformer) finish() {
	reach := cfg.Reachable(t.nf)
	var kept []*cfg.Block
	for _, b := range t.nf.Blocks {
		if reach[b] {
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	t.nf.Blocks = kept
}

// coalesceDecrements merges CountdownDec instructions within a block,
// deferring the accumulated adjustment until just before an instruction
// that observes the countdown (a CDExport) or the end of the block. The
// countdown is invisible to ordinary instructions, so this motion is
// always sound — exactly the liberty §2.4 laments that a conventional C
// compiler will not take with a global countdown.
func coalesceDecrements(b *cfg.Block) {
	var out []cfg.Instr
	pending := 0
	flush := func() {
		if pending > 0 {
			out = append(out, &cfg.CountdownDec{N: pending})
			pending = 0
		}
	}
	for _, in := range b.Instrs {
		switch x := in.(type) {
		case *cfg.CountdownDec:
			pending += x.N
		case *cfg.CDExport, *cfg.CDImport, *cfg.GuardedSite, *cfg.SiteInstr:
			flush()
			out = append(out, in)
		case *cfg.Call:
			// In localized mode a CDExport precedes any countdown-visible
			// call; a bare call cannot observe the countdown. In global
			// mode non-weightless calls read the global, but those calls
			// are always preceded by the end of the region (a checkpoint
			// follows), so flushing at block end suffices. Flush anyway
			// for non-builtin calls to stay conservative.
			if !x.Builtin {
				flush()
			}
			out = append(out, in)
		default:
			out = append(out, in)
		}
	}
	flush()
	b.Instrs = out
}

// CodeSize returns the total number of instructions and terminators in
// the program: the static code-growth measure of §3.1.2.
func CodeSize(p *cfg.Program) int {
	n := 0
	for _, fn := range p.FuncList {
		for _, b := range fn.Blocks {
			n += len(b.Instrs) + 1
		}
	}
	return n
}
