// Package instrument implements the paper's instrumentation schemes and
// its sampling transformation.
//
// Schemes decide what to observe:
//
//   - Returns (§3.2.1): the sign of every scalar function return value.
//   - ScalarPairs (§3.3.1): each just-assigned scalar compared against
//     every other same-typed variable in scope, and pointers against null.
//   - Bounds (§3.1): CCured-style null/bounds checks before heap accesses.
//   - Asserts (§3.1): user assert() calls become sampled checks.
//   - Branches: branch-direction predicates (a later-CBI extension).
//
// The transformation (transform.go) decides how often to observe: it
// clones each function into an instrumentation-free fast path and a fully
// guarded slow path, joined by geometric-countdown threshold checks.
package instrument

import (
	"fmt"

	"cbi/internal/cfg"
	"cbi/internal/minic"
)

// SchemeSet selects which instrumentation schemes are active.
type SchemeSet struct {
	Returns     bool
	ScalarPairs bool
	Branches    bool
	Bounds      bool
	Asserts     bool
}

// Schemes is a cfg.Instrumenter that applies a SchemeSet, optionally
// restricted to functions accepted by Filter (the paper's statically
// selective sampling, §3.1.2: instrumenting one function, one module, or
// one object file at a time).
type Schemes struct {
	Set SchemeSet
	// Filter restricts instrumentation to functions it accepts; nil
	// accepts every function.
	Filter func(funcName string) bool
	// PartCount/PartIndex split the site population across executables
	// (§3.1.2: "one can easily create multiple executables where each
	// contains a subset of the complete instrumentation"). With
	// PartCount = n, build n programs with PartIndex 0..n-1; every site
	// of the full build appears in exactly one of them. Zero disables
	// partitioning.
	PartCount int
	PartIndex int
	// KeepSite, when set, admits only sites it accepts. Site identity is
	// stable across rebuilds of the same file (function, position, text),
	// so adaptive deployments can rebuild with only the sites that
	// earlier rounds left as candidates (§3.1.2: "sites can be added or
	// removed over time as debugging needs and intermediate results
	// warrant").
	KeepSite func(*cfg.Site) bool

	siteSeq int // deterministic site counter for partitioning
}

var _ cfg.Instrumenter = (*Schemes)(nil)

func (s *Schemes) active(fn *cfg.Func) bool {
	return s.Filter == nil || s.Filter(fn.Name)
}

// admit applies site partitioning and the KeepSite filter: each candidate
// site is deterministically assigned to one partition by its creation
// sequence number, then filtered.
func (s *Schemes) admit(sites []*cfg.Site) []*cfg.Site {
	if s.PartCount <= 1 && s.KeepSite == nil {
		return sites
	}
	var kept []*cfg.Site
	for _, site := range sites {
		inPart := s.PartCount <= 1 || s.siteSeq%s.PartCount == s.PartIndex
		s.siteSeq++
		if inPart && (s.KeepSite == nil || s.KeepSite(site)) {
			kept = append(kept, site)
		}
	}
	return kept
}

// NeedsReturnValues reports whether discarded call results must be
// materialized for the returns scheme.
func (s *Schemes) NeedsReturnValues() bool { return s.Set.Returns }

// AfterCall implements the returns scheme: one site with three counters
// for negative, zero, and positive return values (§3.2.1).
func (s *Schemes) AfterCall(fn *cfg.Func, callee string, ret *minic.Type, dst *cfg.Var, pos minic.Pos) []*cfg.Site {
	if !s.Set.Returns || !s.active(fn) {
		return nil
	}
	return s.admit([]*cfg.Site{{
		Kind:        cfg.SiteReturns,
		Fn:          fn.Name,
		Pos:         pos,
		Text:        callee + "() return value",
		Args:        []cfg.Expr{&cfg.VarUse{V: dst}},
		NumCounters: 3,
		PredNames:   []string{"< 0", "== 0", "> 0"},
	}})
}

// AfterAssign implements the scalar-pairs scheme (§3.3.1): the updated
// variable is compared to every other same-typed variable in scope (one
// site with three counters per pair) and, for pointers, to null (one site
// with two counters).
func (s *Schemes) AfterAssign(fn *cfg.Func, dst *cfg.Var, scope []*cfg.Var, pos minic.Pos) []*cfg.Site {
	if !s.Set.ScalarPairs || !s.active(fn) {
		return nil
	}
	var sites []*cfg.Site
	for _, b := range scope {
		if b == dst || b.Name == dst.Name || !b.Type.Equal(dst.Type) {
			continue
		}
		sites = append(sites, &cfg.Site{
			Kind:        cfg.SiteScalarPair,
			Fn:          fn.Name,
			Pos:         pos,
			Text:        dst.Name,
			Args:        []cfg.Expr{&cfg.VarUse{V: dst}, &cfg.VarUse{V: b}},
			NumCounters: 3,
			PredNames:   []string{"< " + b.Name, "== " + b.Name, "> " + b.Name},
		})
	}
	if dst.Type.IsPointer() {
		sites = append(sites, &cfg.Site{
			Kind:        cfg.SiteNullCheck,
			Fn:          fn.Name,
			Pos:         pos,
			Text:        dst.Name,
			Args:        []cfg.Expr{&cfg.VarUse{V: dst}},
			NumCounters: 2,
			PredNames:   []string{"== null", "!= null"},
		})
	}
	return s.admit(sites)
}

// AtBranch implements the branches scheme: two counters recording how
// often the condition was false and true.
func (s *Schemes) AtBranch(fn *cfg.Func, cond cfg.Expr, pos minic.Pos) []*cfg.Site {
	if !s.Set.Branches || !s.active(fn) {
		return nil
	}
	return s.admit([]*cfg.Site{{
		Kind:        cfg.SiteBranch,
		Fn:          fn.Name,
		Pos:         pos,
		Text:        "branch " + cfg.FormatExpr(cond),
		Args:        []cfg.Expr{cond},
		NumCounters: 2,
		PredNames:   []string{"is false", "is true"},
	}})
}

// AtMemAccess implements the bounds scheme (§3.1): a CCured-style dynamic
// memory-safety check before each heap load or store, counting observed
// null pointers and out-of-bounds indices.
func (s *Schemes) AtMemAccess(fn *cfg.Func, ptr, idx cfg.Expr, pos minic.Pos) []*cfg.Site {
	if !s.Set.Bounds || !s.active(fn) {
		return nil
	}
	return s.admit([]*cfg.Site{{
		Kind:        cfg.SiteBounds,
		Fn:          fn.Name,
		Pos:         pos,
		Text:        fmt.Sprintf("check %s[%s]", cfg.FormatExpr(ptr), cfg.FormatExpr(idx)),
		Args:        []cfg.Expr{ptr, idx},
		NumCounters: 2,
		PredNames:   []string{"pointer is null", "index out of bounds"},
	}})
}

// AtAssert implements the asserts scheme (§3.1): each user assert()
// becomes a sampled site; when sampled and violated, the run aborts just
// as the eager assertion would.
func (s *Schemes) AtAssert(fn *cfg.Func, cond cfg.Expr, pos minic.Pos) []*cfg.Site {
	if !s.Set.Asserts || !s.active(fn) {
		return nil
	}
	return s.admit([]*cfg.Site{{
		Kind:        cfg.SiteAssert,
		Fn:          fn.Name,
		Pos:         pos,
		Text:        "assert " + cfg.FormatExpr(cond),
		Args:        []cfg.Expr{cond},
		NumCounters: 2,
		PredNames:   []string{"held", "violated"},
	}})
}

// Build parses nothing; it lowers an already-parsed file with the given
// schemes. It is the main entry point for producing an instrumented
// (unconditional) program; apply Sample to add the sampling
// transformation.
func Build(file *minic.File, builtins map[string]minic.BuiltinSig, set SchemeSet) (*cfg.Program, error) {
	return cfg.Build(file, builtins, &Schemes{Set: set})
}

// BuildFiltered is Build restricted to functions accepted by filter
// (statically selective sampling, §3.1.2).
func BuildFiltered(file *minic.File, builtins map[string]minic.BuiltinSig, set SchemeSet, filter func(string) bool) (*cfg.Program, error) {
	return cfg.Build(file, builtins, &Schemes{Set: set, Filter: filter})
}

// BuildBaseline lowers the file with no instrumentation at all: the
// "dynamic checks removed" baseline of Table 2.
func BuildBaseline(file *minic.File, builtins map[string]minic.BuiltinSig) (*cfg.Program, error) {
	return cfg.Build(file, builtins, nil)
}
