// Package logreg implements the statistical-debugging model of §3.3:
// ℓ1-regularized logistic regression over predicate counters, trained by
// stochastic gradient ascent, with feature scaling and cross-validated
// choice of the regularization strength. Predicates with the largest
// trained coefficients are the suggested places to look for the bug.
package logreg

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cbi/internal/report"
	"cbi/internal/telemetry"
)

// Dataset is a dense design matrix over the retained features.
type Dataset struct {
	// X[i][j] is the (scaled) value of feature j in run i.
	X [][]float64
	// Y[i] is the outcome label: 1 = crashed, 0 = succeeded.
	Y []int
	// FeatureIdx maps dataset feature j back to its counter index.
	FeatureIdx []int
	// Scale holds the per-feature scaling applied (divide-by), so test
	// data can reuse the training transform.
	Scale []float64
}

// BuildDataset extracts the counters retained by keep (nil keeps all)
// from the reports, scales each feature to [0,1] by its maximum, then
// normalizes to unit sample variance (§3.3.3: "all the input features are
// shifted and scaled to lie on the interval [0,1], then normalized to
// have unit sample variance").
func BuildDataset(reports []*report.Report, keep []bool) *Dataset {
	defer telemetry.StartSpan("logreg.build_dataset").End()
	if len(reports) == 0 {
		return &Dataset{}
	}
	n := len(reports[0].Counters)
	var idx []int
	for j := 0; j < n; j++ {
		if keep == nil || (j < len(keep) && keep[j]) {
			idx = append(idx, j)
		}
	}
	ds := &Dataset{FeatureIdx: idx}
	raw := make([][]float64, len(reports))
	for i, r := range reports {
		row := make([]float64, len(idx))
		for jj, j := range idx {
			row[jj] = float64(r.Counters[j])
		}
		raw[i] = row
		ds.Y = append(ds.Y, r.Label())
	}
	// Scale to [0,1] by max, then unit variance.
	ds.Scale = make([]float64, len(idx))
	for j := range idx {
		maxv := 0.0
		for i := range raw {
			if raw[i][j] > maxv {
				maxv = raw[i][j]
			}
		}
		if maxv == 0 {
			maxv = 1
		}
		mean, m2 := 0.0, 0.0
		for i := range raw {
			v := raw[i][j] / maxv
			delta := v - mean
			mean += delta / float64(i+1)
			m2 += delta * (v - mean)
		}
		variance := 0.0
		if len(raw) > 1 {
			variance = m2 / float64(len(raw)-1)
		}
		std := math.Sqrt(variance)
		if std == 0 {
			std = 1
		}
		ds.Scale[j] = maxv * std
	}
	ds.X = raw
	for i := range ds.X {
		for j := range idx {
			ds.X[i][j] /= ds.Scale[j]
		}
	}
	return ds
}

// Split partitions the reports into train/cv/test sets with the given
// fractions (§3.3.3 uses roughly 62%/7%/31%).
//
// Fractions are clamped to [0,1], and a cvFrac that would push the
// train+cv total past the whole set is reduced so the split never
// over-allocates. Integer truncation on a small report set can round a
// positive cvFrac down to zero runs; in that case one run is moved from
// the test set into cv (when at least two non-train runs exist), so a
// requested cross-validation set is never silently empty.
func Split(reports []*report.Report, trainFrac, cvFrac float64, seed int64) (train, cv, test []*report.Report) {
	n := len(reports)
	trainFrac = clampFrac(trainFrac)
	cvFrac = clampFrac(cvFrac)
	if trainFrac+cvFrac > 1 {
		cvFrac = 1 - trainFrac
	}
	nTrain := int(trainFrac * float64(n))
	nCV := int(cvFrac * float64(n))
	if cvFrac > 0 && nCV == 0 && n-nTrain >= 2 {
		nCV = 1
	}
	if nTrain+nCV > n {
		nCV = n - nTrain
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for i, pi := range perm {
		switch {
		case i < nTrain:
			train = append(train, reports[pi])
		case i < nTrain+nCV:
			cv = append(cv, reports[pi])
		default:
			test = append(test, reports[pi])
		}
	}
	return train, cv, test
}

func clampFrac(f float64) float64 {
	switch {
	case f < 0:
		return 0
	case f > 1:
		return 1
	}
	return f
}

// Model is a trained logistic-regression classifier.
type Model struct {
	Beta0      float64
	Beta       []float64
	FeatureIdx []int
	Lambda     float64
}

// TrainConfig controls stochastic gradient ascent.
type TrainConfig struct {
	// Lambda is the ℓ1 regularization strength (§3.3.3 cross-validates to
	// 0.3 for bc).
	Lambda float64
	// StepSize is the SGA step (§3.3.3 uses 1e-5 on bc's scale; defaults
	// to 1e-3 here).
	StepSize float64
	// Epochs is the number of passes through the training set (the paper's
	// model "usually converges within sixty iterations").
	Epochs int
	// Seed shuffles the visit order.
	Seed int64
	// Workers bounds the concurrency of CrossValidate's independent
	// per-lambda fits (0 = NumCPU). Each fit seeds its own RNG from Seed,
	// so the selected model is bit-identical at any worker count. Train
	// itself is always sequential: SGA is an inherently ordered scan.
	Workers int
}

// permute fills buf with the same permutation rand.Perm would return
// from the same generator state — the identical in-place Fisher–Yates,
// consuming one Intn per element — without rand.Perm's per-call
// allocation. The result is independent of buf's prior contents.
func permute(rng *rand.Rand, buf []int) {
	for i := range buf {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
}

// Train fits the model by maximizing the ℓ1-penalized log likelihood
// with stochastic gradient ascent (§3.3.2). The ℓ1 subgradient uses
// clipping at zero so coefficients are truly sparse.
func Train(ds *Dataset, conf TrainConfig) *Model {
	defer telemetry.StartSpan("logreg.train").End()
	if conf.StepSize == 0 {
		conf.StepSize = 1e-3
	}
	if conf.Epochs == 0 {
		conf.Epochs = 60
	}
	m := &Model{Beta: make([]float64, len(ds.FeatureIdx)), FeatureIdx: ds.FeatureIdx, Lambda: conf.Lambda}
	rng := rand.New(rand.NewSource(conf.Seed))
	step := conf.StepSize
	perm := make([]int, len(ds.X))
	for epoch := 0; epoch < conf.Epochs; epoch++ {
		permute(rng, perm)
		for _, i := range perm {
			x := ds.X[i]
			mu := m.prob(x)
			g := float64(ds.Y[i]) - mu
			m.Beta0 += step * g
			for j, xv := range x {
				if xv == 0 && m.Beta[j] == 0 {
					continue
				}
				b := m.Beta[j] + step*g*xv
				// ℓ1 shrinkage with clipping at zero (truncated gradient).
				shrink := step * conf.Lambda
				switch {
				case b > shrink:
					b -= shrink
				case b < -shrink:
					b += shrink
				default:
					b = 0
				}
				m.Beta[j] = b
			}
		}
	}
	return m
}

func (m *Model) prob(x []float64) float64 {
	z := m.Beta0
	for j, xv := range x {
		if xv != 0 {
			z += m.Beta[j] * xv
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict returns the crash probability for a feature row.
func (m *Model) Predict(x []float64) float64 { return m.prob(x) }

// Classify quantizes Predict at 1/2 (§3.3.2).
func (m *Model) Classify(x []float64) int {
	if m.prob(x) > 0.5 {
		return 1
	}
	return 0
}

// Accuracy returns the fraction of rows classified correctly.
func (m *Model) Accuracy(ds *Dataset) float64 {
	if len(ds.X) == 0 {
		return 0
	}
	ok := 0
	for i, x := range ds.X {
		if m.Classify(x) == ds.Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(ds.X))
}

// NonzeroCount returns the number of features with nonzero coefficients —
// the sparsity the ℓ1 penalty buys.
func (m *Model) NonzeroCount() int {
	n := 0
	for _, b := range m.Beta {
		if b != 0 {
			n++
		}
	}
	return n
}

// Ranked is a feature with its trained coefficient.
type Ranked struct {
	Counter int // counter index in the program's counter space
	Beta    float64
}

// TopFeatures returns the k features with the largest positive
// coefficients — the crash predictors (§3.3.3: "predicates with the
// largest β coefficients suggest where to begin looking for the bug").
func (m *Model) TopFeatures(k int) []Ranked {
	var all []Ranked
	for j, b := range m.Beta {
		if b > 0 {
			all = append(all, Ranked{Counter: m.FeatureIdx[j], Beta: b})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Beta != all[j].Beta {
			return all[i].Beta > all[j].Beta
		}
		return all[i].Counter < all[j].Counter
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// Rank returns the 1-based rank of the given counter among positive
// coefficients, or 0 if its coefficient is not positive. (§3.3.3 reports
// the smoking-gun predicate ranked 240th.)
func (m *Model) Rank(counter int) int {
	all := m.TopFeatures(0)
	for i, r := range all {
		if r.Counter == counter {
			return i + 1
		}
	}
	return 0
}

// CrossValidate trains one model per lambda and returns the lambda whose
// model classifies the cv set best, with ties going to the stronger
// regularization (sparser model).
//
// The per-lambda fits are independent (each Train seeds its own RNG from
// conf.Seed), so they fan out across conf.Workers goroutines; the winner
// is then chosen by scanning lambdas in their given order, exactly as
// the serial loop did, making the selected lambda and model bit-identical
// at any worker count.
func CrossValidate(train, cv *Dataset, lambdas []float64, conf TrainConfig) (float64, *Model) {
	defer telemetry.StartSpan("logreg.cross_validate").End()
	models := make([]*Model, len(lambdas))
	accs := make([]float64, len(lambdas))
	fanOut(len(lambdas), conf.Workers, func(k int) {
		c := conf
		c.Lambda = lambdas[k]
		models[k] = Train(train, c)
		accs[k] = models[k].Accuracy(cv)
	})
	return pickBest(lambdas, models, accs)
}

// pickBest replays the serial cross-validation selection: lambdas in
// input order, best cv accuracy wins, ties go to the sparser model.
func pickBest(lambdas []float64, models []*Model, accs []float64) (float64, *Model) {
	bestLambda := 0.0
	var bestModel *Model
	bestAcc := -1.0
	for k, l := range lambdas {
		better := accs[k] > bestAcc ||
			(accs[k] == bestAcc && bestModel != nil && models[k].NonzeroCount() < bestModel.NonzeroCount())
		if better {
			bestAcc, bestLambda, bestModel = accs[k], l, models[k]
		}
	}
	return bestLambda, bestModel
}

// fanOut runs f(0..n-1) on a pool of `workers` goroutines (0 = NumCPU),
// degenerating to an inline loop when one worker suffices.
func fanOut(n, workers int, f func(k int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			f(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				f(k)
			}
		}()
	}
	wg.Wait()
}

// Project applies a training dataset's feature selection and scaling to
// fresh reports, producing a compatible dataset.
func (ds *Dataset) Project(reports []*report.Report) *Dataset {
	out := &Dataset{FeatureIdx: ds.FeatureIdx, Scale: ds.Scale}
	for _, r := range reports {
		row := make([]float64, len(ds.FeatureIdx))
		for jj, j := range ds.FeatureIdx {
			row[jj] = float64(r.Counters[j]) / ds.Scale[jj]
		}
		out.X = append(out.X, row)
		out.Y = append(out.Y, r.Label())
	}
	return out
}
