package logreg

import (
	"math/rand"
	"reflect"
	"testing"

	"cbi/internal/report"
)

// denseFromSparse expands a CSR dataset row back to a dense vector.
func denseFromSparse(ds *SparseDataset, i int) []float64 {
	row := make([]float64, len(ds.FeatureIdx))
	for e := ds.RowStart[i]; e < ds.RowStart[i+1]; e++ {
		row[ds.Cols[e]] = ds.Vals[e]
	}
	return row
}

func TestPermuteMatchesRandPerm(t *testing.T) {
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	buf := make([]int, 17)
	// Repeated rounds on the same buffer must track rand.Perm exactly:
	// the result is independent of buf's prior contents.
	for round := 0; round < 5; round++ {
		want := a.Perm(17)
		permute(b, buf)
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("round %d: %v != %v", round, buf, want)
		}
	}
}

func TestSplitSmallSets(t *testing.T) {
	reports := synthDB(9, 4, 0, 1, 1)
	// 9 runs at 62%/7%: truncation gives nTrain=5, nCV=0 — a silently
	// empty cross-validation set. One run must be moved from test to cv.
	train, cv, test := Split(reports, 0.62, 0.07, 3)
	if len(cv) != 1 {
		t.Errorf("cv size %d, want 1", len(cv))
	}
	if len(train)+len(cv)+len(test) != 9 {
		t.Error("coverage")
	}
	// Overfull fractions must not over-allocate: cvFrac is reduced to the
	// remaining mass (here 0.2), so train gets its share and cv+test split
	// the rest.
	train, cv, test = Split(reports, 0.8, 0.8, 3)
	if len(train) != 7 || len(cv) != 1 || len(test) != 1 {
		t.Errorf("overfull: %d/%d/%d", len(train), len(cv), len(test))
	}
	// Out-of-range fractions clamp instead of panicking or going negative.
	train, cv, test = Split(reports, -0.5, 2.0, 3)
	if len(train) != 0 || len(cv) != 9 || len(test) != 0 {
		t.Errorf("clamped: %d/%d/%d", len(train), len(cv), len(test))
	}
	// A single run cannot populate cv (no second non-train run to take).
	_, cv, _ = Split(reports[:1], 0.0, 0.07, 3)
	if len(cv) != 0 {
		t.Errorf("1-run cv size %d", len(cv))
	}
}

func TestBuildSparseDatasetMatchesDense(t *testing.T) {
	reports := synthDB(300, 40, 7, 12, 11)
	keep := make([]bool, 40)
	for j := range keep {
		keep[j] = j%3 != 1 // drop a third of the features
	}
	for _, k := range [][]bool{nil, keep} {
		dense := BuildDataset(reports, k)
		sparse := BuildSparseDataset(reports, k)
		if !reflect.DeepEqual(sparse.FeatureIdx, dense.FeatureIdx) {
			t.Fatalf("feature index: %v vs %v", sparse.FeatureIdx, dense.FeatureIdx)
		}
		if !reflect.DeepEqual(sparse.Scale, dense.Scale) {
			t.Fatal("scale factors differ")
		}
		if !reflect.DeepEqual(sparse.Y, dense.Y) {
			t.Fatal("labels differ")
		}
		for i := range dense.X {
			if !reflect.DeepEqual(denseFromSparse(sparse, i), dense.X[i]) {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestTrainSparseMatchesDense(t *testing.T) {
	reports := synthDB(500, 60, 3, 9, 21)
	dense := BuildDataset(reports, nil)
	sparse := BuildSparseDataset(reports, nil)
	for _, lambda := range []float64{0, 0.1, 0.3, 1.0} {
		conf := TrainConfig{Lambda: lambda, StepSize: 1e-2, Epochs: 25, Seed: 5}
		dm := Train(dense, conf)
		sm := TrainSparse(sparse, conf)
		if dm.Beta0 != sm.Beta0 {
			t.Errorf("lambda %g: Beta0 %v != %v", lambda, sm.Beta0, dm.Beta0)
		}
		if !reflect.DeepEqual(sm.Beta, dm.Beta) {
			for j := range dm.Beta {
				if dm.Beta[j] != sm.Beta[j] {
					t.Errorf("lambda %g: Beta[%d] %v != %v", lambda, j, sm.Beta[j], dm.Beta[j])
				}
			}
			t.Fatalf("lambda %g: coefficients differ", lambda)
		}
		// Accuracy over the same rows must also agree bitwise.
		if da, sa := dm.Accuracy(dense), sm.AccuracySparse(sparse); da != sa {
			t.Errorf("lambda %g: accuracy %v != %v", lambda, sa, da)
		}
	}
}

func TestProjectSparseMatchesDense(t *testing.T) {
	trainR := synthDB(200, 30, 2, 5, 31)
	freshR := synthDB(80, 30, 2, 5, 32)
	dense := BuildDataset(trainR, nil).Project(freshR)
	sparse := BuildSparseDataset(trainR, nil).Project(freshR)
	if !reflect.DeepEqual(sparse.Y, dense.Y) {
		t.Fatal("labels differ")
	}
	for i := range dense.X {
		if !reflect.DeepEqual(denseFromSparse(sparse, i), dense.X[i]) {
			t.Fatalf("projected row %d differs", i)
		}
	}
}

// The full pipeline: parallel sparse cross-validation must select the
// same lambda and the bit-identical model as the serial dense oracle.
func TestCrossValidateSparseParallelMatchesDenseSerial(t *testing.T) {
	reports := synthDB(800, 50, 7, 12, 41)
	trainR, cvR, _ := Split(reports, 0.62, 0.07, 42)
	lambdas := []float64{0.05, 0.1, 0.3, 1.0}

	dtrain := BuildDataset(trainR, nil)
	dcv := dtrain.Project(cvR)
	dl, dm := CrossValidate(dtrain, dcv, lambdas, TrainConfig{StepSize: 1e-2, Epochs: 20, Seed: 43, Workers: 1})

	strain := BuildSparseDataset(trainR, nil)
	scv := strain.Project(cvR)
	sl, sm := CrossValidateSparse(strain, scv, lambdas, TrainConfig{StepSize: 1e-2, Epochs: 20, Seed: 43, Workers: 8})

	if dl != sl {
		t.Fatalf("selected lambda %g != %g", sl, dl)
	}
	if dm.Beta0 != sm.Beta0 || !reflect.DeepEqual(sm.Beta, dm.Beta) {
		t.Fatal("selected models differ")
	}
	if !reflect.DeepEqual(sm.TopFeatures(10), dm.TopFeatures(10)) {
		t.Fatal("top-10 rankings differ")
	}
}

// Dense cross-validation itself must be worker-count invariant.
func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	reports := synthDB(400, 30, 4, 8, 51)
	trainR, cvR, _ := Split(reports, 0.62, 0.07, 52)
	train := BuildDataset(trainR, nil)
	cv := train.Project(cvR)
	lambdas := []float64{0.05, 0.1, 0.3, 1.0}
	l1, m1 := CrossValidate(train, cv, lambdas, TrainConfig{StepSize: 1e-2, Epochs: 15, Seed: 53, Workers: 1})
	l8, m8 := CrossValidate(train, cv, lambdas, TrainConfig{StepSize: 1e-2, Epochs: 15, Seed: 53, Workers: 8})
	if l1 != l8 || m1.Beta0 != m8.Beta0 || !reflect.DeepEqual(m1.Beta, m8.Beta) {
		t.Fatal("worker count changed the selected model")
	}
}

// Decoded reports carry the sparse cache; building from them must equal
// building from dense-scanned originals.
func TestBuildSparseFromDecodedReports(t *testing.T) {
	reports := synthDB(120, 25, 3, 7, 61)
	var decoded []*report.Report
	for _, r := range reports {
		d, err := report.Decode(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, d)
	}
	a := BuildSparseDataset(reports, nil)
	b := BuildSparseDataset(decoded, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cached vs dense-scanned build differs")
	}
}
