// Sparse analysis engine: a CSR design matrix built straight from each
// report's nonzero counters, and a stochastic-gradient trainer whose ℓ1
// shrinkage is applied lazily, so per-sample cost is O(nonzeros) instead
// of O(features). Both are bit-identical to the dense implementations in
// logreg.go, which remain as differential oracles (see DESIGN §10 for
// the equivalence argument).

package logreg

import (
	"math"
	"math/rand"

	"cbi/internal/report"
	"cbi/internal/telemetry"
)

// SparseDataset is the CSR (compressed sparse row) counterpart of
// Dataset: row i's features are Cols[RowStart[i]:RowStart[i+1]] with
// scaled values Vals[...], column indices ascending within each row.
// Only nonzero counters are stored — at 1/100 sampling density that is
// a small fraction of the retained feature space.
type SparseDataset struct {
	RowStart []int32
	Cols     []int32
	Vals     []float64
	// Y[i] is the outcome label: 1 = crashed, 0 = succeeded.
	Y []int
	// FeatureIdx maps dataset column j back to its counter index.
	FeatureIdx []int
	// Scale holds the per-feature scaling applied (divide-by), identical
	// bit for bit to the dense BuildDataset transform.
	Scale []float64
}

// Rows returns the number of samples.
func (ds *SparseDataset) Rows() int {
	if len(ds.RowStart) == 0 {
		return 0
	}
	return len(ds.RowStart) - 1
}

// NNZ returns the number of stored (nonzero) entries.
func (ds *SparseDataset) NNZ() int { return len(ds.Cols) }

// BuildSparseDataset extracts the counters retained by keep (nil keeps
// all) from the reports into CSR form, applying exactly the dense
// builder's §3.3.3 transform: scale each feature to [0,1] by its
// maximum, then normalize to unit sample variance. The per-feature
// Scale factors — and therefore every stored value — are bit-identical
// to BuildDataset's, because the variance recurrence replays the same
// floating-point operations in the same order, running the all-zero
// gaps between a feature's nonzeros through the same per-row update.
func BuildSparseDataset(reports []*report.Report, keep []bool) *SparseDataset {
	defer telemetry.StartSpan("logreg.build_sparse_dataset").End()
	if len(reports) == 0 {
		return &SparseDataset{}
	}
	n := len(reports[0].Counters)
	// colOf maps counter index -> dataset column, -1 for dropped counters.
	colOf := make([]int32, n)
	var idx []int
	for j := 0; j < n; j++ {
		if keep == nil || (j < len(keep) && keep[j]) {
			colOf[j] = int32(len(idx))
			idx = append(idx, j)
		} else {
			colOf[j] = -1
		}
	}
	ds := &SparseDataset{FeatureIdx: idx}
	rows := len(reports)

	// CSR fill from each report's sparse form (counter indices ascend, so
	// columns ascend within a row). Values are raw counts for now; the
	// scale division lands after Scale is known.
	ds.RowStart = make([]int32, 1, rows+1)
	for _, r := range reports {
		r.ForEachNonzero(func(j int, c uint64) {
			if col := colOf[j]; col >= 0 {
				ds.Cols = append(ds.Cols, col)
				ds.Vals = append(ds.Vals, float64(c))
			}
		})
		ds.RowStart = append(ds.RowStart, int32(len(ds.Cols)))
		ds.Y = append(ds.Y, r.Label())
	}

	// Transpose to CSC so each feature's nonzeros can be walked in row
	// order with the zero gaps run as a register-resident loop.
	nnz := len(ds.Cols)
	features := len(idx)
	colPtr := make([]int32, features+1)
	for _, c := range ds.Cols {
		colPtr[c+1]++
	}
	for j := 0; j < features; j++ {
		colPtr[j+1] += colPtr[j]
	}
	colRow := make([]int32, nnz)
	colVal := make([]float64, nnz)
	fill := append([]int32(nil), colPtr[:features]...)
	for i := 0; i < rows; i++ {
		for e := ds.RowStart[i]; e < ds.RowStart[i+1]; e++ {
			c := ds.Cols[e]
			colRow[fill[c]] = int32(i)
			colVal[fill[c]] = ds.Vals[e]
			fill[c]++
		}
	}

	// Per-feature max scale + unit-variance normalization, replaying the
	// dense builder's exact operation sequence (see its comments).
	ds.Scale = make([]float64, features)
	for j := 0; j < features; j++ {
		lo, hi := colPtr[j], colPtr[j+1]
		maxv := 0.0
		for e := lo; e < hi; e++ {
			if colVal[e] > maxv {
				maxv = colVal[e]
			}
		}
		if maxv == 0 {
			maxv = 1
		}
		mean, m2 := 0.0, 0.0
		if lo < hi {
			next := lo
			for i := 0; i < rows; i++ {
				v := 0.0
				if next < hi && int(colRow[next]) == i {
					v = colVal[next] / maxv
					next++
				}
				delta := v - mean
				mean += delta / float64(i+1)
				m2 += delta * (v - mean)
			}
		}
		// A feature with no nonzeros leaves mean and m2 at exactly 0, the
		// same values the dense all-zero loop produces, so skipping it is
		// safe.
		variance := 0.0
		if rows > 1 {
			variance = m2 / float64(rows-1)
		}
		std := math.Sqrt(variance)
		if std == 0 {
			std = 1
		}
		ds.Scale[j] = maxv * std
	}
	for e := range ds.Vals {
		ds.Vals[e] /= ds.Scale[ds.Cols[e]]
	}
	return ds
}

// Project applies this dataset's feature selection and scaling to fresh
// reports, producing a compatible sparse dataset (the CSR counterpart of
// Dataset.Project).
func (ds *SparseDataset) Project(reports []*report.Report) *SparseDataset {
	out := &SparseDataset{FeatureIdx: ds.FeatureIdx, Scale: ds.Scale}
	maxCounter := 0
	for _, j := range ds.FeatureIdx {
		if j >= maxCounter {
			maxCounter = j + 1
		}
	}
	colOf := make([]int32, maxCounter)
	for i := range colOf {
		colOf[i] = -1
	}
	for col, j := range ds.FeatureIdx {
		colOf[j] = int32(col)
	}
	out.RowStart = make([]int32, 1, len(reports)+1)
	for _, r := range reports {
		r.ForEachNonzero(func(j int, c uint64) {
			if j >= maxCounter {
				return
			}
			if col := colOf[j]; col >= 0 {
				out.Cols = append(out.Cols, col)
				out.Vals = append(out.Vals, float64(c)/ds.Scale[col])
			}
		})
		out.RowStart = append(out.RowStart, int32(len(out.Cols)))
		out.Y = append(out.Y, r.Label())
	}
	return out
}

// TrainSparse fits the same model as Train — bit for bit, given the same
// dataset values, config, and therefore visit order — in O(nonzeros) per
// sample instead of O(features).
//
// The dense trainer soft-thresholds every nonzero coefficient once per
// sample, even when the sample does not touch the feature: an untouched
// coefficient's update is Beta[j] += step·g·0 (a float64 no-op) followed
// by one shrink step. TrainSparse defers that work: owed[j] counts the
// samples whose shrinkage has not yet been applied to Beta[j], and the
// arrears are paid the next time feature j is touched (or at the end of
// training), replaying the identical one-compare-one-subtract threshold
// steps in the identical order. Because a coefficient driven to zero
// stays zero under further shrinkage, the catch-up loop stops early, so
// its amortized cost is bounded by the shrink steps the dense trainer
// would have executed on nonzero coefficients — without the dense
// trainer's O(features) scan per sample.
func TrainSparse(ds *SparseDataset, conf TrainConfig) *Model {
	defer telemetry.StartSpan("logreg.train_sparse").End()
	if conf.StepSize == 0 {
		conf.StepSize = 1e-3
	}
	if conf.Epochs == 0 {
		conf.Epochs = 60
	}
	features := len(ds.FeatureIdx)
	m := &Model{Beta: make([]float64, features), FeatureIdx: ds.FeatureIdx, Lambda: conf.Lambda}
	rng := rand.New(rand.NewSource(conf.Seed))
	step := conf.StepSize
	shrink := step * conf.Lambda
	rows := ds.Rows()
	perm := make([]int, rows)
	// applied[j] = number of samples whose shrinkage is already reflected
	// in Beta[j]; t = samples processed so far.
	applied := make([]int, features)
	t := 0
	for epoch := 0; epoch < conf.Epochs; epoch++ {
		permute(rng, perm)
		for _, i := range perm {
			lo, hi := ds.RowStart[i], ds.RowStart[i+1]
			// Pay the shrinkage arrears for this sample's features first,
			// so the margin sees the coefficients the dense trainer would
			// have at this point.
			z := m.Beta0
			for e := lo; e < hi; e++ {
				j := ds.Cols[e]
				if shrink != 0 {
					m.Beta[j] = catchUp(m.Beta[j], t-applied[j], shrink)
				}
				z += m.Beta[j] * ds.Vals[e]
			}
			mu := 1 / (1 + math.Exp(-z))
			g := float64(ds.Y[i]) - mu
			m.Beta0 += step * g
			for e := lo; e < hi; e++ {
				j := ds.Cols[e]
				b := m.Beta[j] + step*g*ds.Vals[e]
				// ℓ1 shrinkage with clipping at zero (truncated gradient),
				// identical to the dense update.
				switch {
				case b > shrink:
					b -= shrink
				case b < -shrink:
					b += shrink
				default:
					b = 0
				}
				m.Beta[j] = b
				applied[j] = t + 1
			}
			t++
		}
	}
	if shrink != 0 {
		for j := range m.Beta {
			m.Beta[j] = catchUp(m.Beta[j], t-applied[j], shrink)
		}
	}
	return m
}

// catchUp applies `owed` deferred soft-threshold steps to b, stopping
// early once b reaches zero (where further shrinkage is a fixpoint).
// Each step is the dense trainer's exact compare-and-subtract, so the
// result is bit-identical to applying them eagerly.
func catchUp(b float64, owed int, shrink float64) float64 {
	for ; owed > 0 && b != 0; owed-- {
		switch {
		case b > shrink:
			b -= shrink
		case b < -shrink:
			b += shrink
		default:
			b = 0
		}
	}
	return b
}

// probSparse computes the crash probability for CSR row i, accumulating
// coefficient terms in the same ascending-column order as the dense
// prob, so the sum is bit-identical.
func (m *Model) probSparse(ds *SparseDataset, i int) float64 {
	z := m.Beta0
	for e := ds.RowStart[i]; e < ds.RowStart[i+1]; e++ {
		z += m.Beta[ds.Cols[e]] * ds.Vals[e]
	}
	return 1 / (1 + math.Exp(-z))
}

// AccuracySparse returns the fraction of rows classified correctly — the
// sparse counterpart of Accuracy.
func (m *Model) AccuracySparse(ds *SparseDataset) float64 {
	rows := ds.Rows()
	if rows == 0 {
		return 0
	}
	ok := 0
	for i := 0; i < rows; i++ {
		class := 0
		if m.probSparse(ds, i) > 0.5 {
			class = 1
		}
		if class == ds.Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(rows)
}

// CrossValidateSparse mirrors CrossValidate on CSR datasets: the
// independent per-lambda TrainSparse fits fan out across conf.Workers
// goroutines and the winner is selected in lambda order. Because
// TrainSparse is bit-identical to Train and AccuracySparse to Accuracy,
// the selected lambda and model match the dense serial cross-validation
// exactly.
func CrossValidateSparse(train, cv *SparseDataset, lambdas []float64, conf TrainConfig) (float64, *Model) {
	defer telemetry.StartSpan("logreg.cross_validate_sparse").End()
	models := make([]*Model, len(lambdas))
	accs := make([]float64, len(lambdas))
	fanOut(len(lambdas), conf.Workers, func(k int) {
		c := conf
		c.Lambda = lambdas[k]
		models[k] = TrainSparse(train, c)
		accs[k] = models[k].AccuracySparse(cv)
	})
	return pickBest(lambdas, models, accs)
}
