package logreg

import (
	"math"
	"math/rand"
	"testing"

	"cbi/internal/report"
)

// synthDB builds a dataset where counter `signal` strongly predicts
// crashes, counter `weak` is mildly correlated, and the rest are noise.
func synthDB(n, counters, signal, weak int, seed int64) []*report.Report {
	rng := rand.New(rand.NewSource(seed))
	var out []*report.Report
	for i := 0; i < n; i++ {
		crash := rng.Intn(4) == 0
		c := make([]uint64, counters)
		for j := 0; j < counters; j++ {
			if rng.Intn(3) == 0 {
				c[j] = uint64(rng.Intn(5))
			}
		}
		if crash {
			c[signal] = uint64(5 + rng.Intn(5))
			if rng.Intn(3) > 0 {
				c[weak] = uint64(1 + rng.Intn(3))
			}
		} else {
			c[signal] = 0
			if rng.Intn(8) == 0 {
				c[weak] = 1
			}
		}
		out = append(out, &report.Report{Program: "p", Crashed: crash, Counters: c})
	}
	return out
}

func TestBuildDatasetScaling(t *testing.T) {
	reports := []*report.Report{
		{Counters: []uint64{0, 10, 3}, Crashed: false},
		{Counters: []uint64{0, 20, 1}, Crashed: true},
		{Counters: []uint64{0, 0, 2}, Crashed: false},
	}
	ds := BuildDataset(reports, nil)
	if len(ds.FeatureIdx) != 3 || len(ds.X) != 3 {
		t.Fatalf("shape: %d x %d", len(ds.X), len(ds.FeatureIdx))
	}
	if ds.Y[1] != 1 || ds.Y[0] != 0 {
		t.Error("labels")
	}
	// Feature 1 scaled: values 10,20,0 -> /20 -> {0.5,1,0}, then unit
	// variance. Check the variance is ~1.
	var vals []float64
	for i := range ds.X {
		vals = append(vals, ds.X[i][1])
	}
	mean := (vals[0] + vals[1] + vals[2]) / 3
	varr := 0.0
	for _, v := range vals {
		varr += (v - mean) * (v - mean)
	}
	varr /= 2
	if math.Abs(varr-1) > 1e-9 {
		t.Errorf("variance: %f", varr)
	}
}

func TestBuildDatasetWithKeepMask(t *testing.T) {
	reports := []*report.Report{{Counters: []uint64{1, 2, 3}}}
	ds := BuildDataset(reports, []bool{true, false, true})
	if len(ds.FeatureIdx) != 2 || ds.FeatureIdx[0] != 0 || ds.FeatureIdx[1] != 2 {
		t.Errorf("%v", ds.FeatureIdx)
	}
	if BuildDataset(nil, nil).X != nil {
		t.Error("empty input")
	}
}

func TestSplitFractions(t *testing.T) {
	reports := synthDB(1000, 5, 0, 1, 1)
	train, cv, test := Split(reports, 0.6, 0.1, 7)
	if len(train) != 600 || len(cv) != 100 || len(test) != 300 {
		t.Errorf("%d/%d/%d", len(train), len(cv), len(test))
	}
	// Disjoint and covering.
	seen := map[*report.Report]bool{}
	for _, r := range train {
		seen[r] = true
	}
	for _, r := range cv {
		if seen[r] {
			t.Fatal("overlap train/cv")
		}
		seen[r] = true
	}
	for _, r := range test {
		if seen[r] {
			t.Fatal("overlap test")
		}
		seen[r] = true
	}
	if len(seen) != 1000 {
		t.Error("coverage")
	}
}

func TestTrainRecoversSignalFeature(t *testing.T) {
	reports := synthDB(2000, 30, 7, 12, 2)
	trainR, cvR, testR := Split(reports, 0.6, 0.1, 3)
	train := BuildDataset(trainR, nil)
	cv := train.Project(cvR)
	test := train.Project(testR)

	lambda, model := CrossValidate(train, cv, []float64{0.01, 0.1, 0.3, 1.0}, TrainConfig{StepSize: 1e-2, Epochs: 60, Seed: 4})
	if model == nil {
		t.Fatal("no model")
	}
	if acc := model.Accuracy(test); acc < 0.9 {
		t.Errorf("test accuracy %.3f (lambda %g)", acc, lambda)
	}
	top := model.TopFeatures(1)
	if len(top) == 0 || top[0].Counter != 7 {
		t.Errorf("top feature: %+v, want counter 7", top)
	}
	if r := model.Rank(7); r != 1 {
		t.Errorf("rank of signal: %d", r)
	}
	if model.Rank(29) == 1 {
		t.Error("noise feature ranked first")
	}
}

func TestL1SparsifiesModel(t *testing.T) {
	reports := synthDB(1200, 50, 3, 9, 5)
	ds := BuildDataset(reports, nil)
	loose := Train(ds, TrainConfig{Lambda: 0, StepSize: 1e-2, Epochs: 30, Seed: 1})
	tight := Train(ds, TrainConfig{Lambda: 1.0, StepSize: 1e-2, Epochs: 30, Seed: 1})
	if tight.NonzeroCount() >= loose.NonzeroCount() {
		t.Errorf("l1 should sparsify: %d vs %d nonzero", tight.NonzeroCount(), loose.NonzeroCount())
	}
	if tight.NonzeroCount() == 0 {
		t.Error("over-regularized to empty model")
	}
}

func TestPredictAndClassifyBounds(t *testing.T) {
	m := &Model{Beta0: 0, Beta: []float64{2}, FeatureIdx: []int{0}}
	if p := m.Predict([]float64{10}); p <= 0.5 || p > 1 {
		t.Errorf("p=%f", p)
	}
	if m.Classify([]float64{10}) != 1 || m.Classify([]float64{-10}) != 0 {
		t.Error("classify")
	}
	if m.Predict([]float64{0}) != 0.5 {
		t.Error("sigmoid(0)")
	}
}

func TestTopFeaturesOrderingAndTies(t *testing.T) {
	m := &Model{Beta: []float64{0.5, -1, 0.5, 2, 0}, FeatureIdx: []int{10, 11, 12, 13, 14}}
	top := m.TopFeatures(0)
	if len(top) != 3 {
		t.Fatalf("%+v", top)
	}
	if top[0].Counter != 13 {
		t.Errorf("first: %+v", top[0])
	}
	// Tie between counters 10 and 12 broken by index.
	if top[1].Counter != 10 || top[2].Counter != 12 {
		t.Errorf("tie order: %+v", top)
	}
	if m.Rank(11) != 0 {
		t.Error("negative coefficient should be unranked")
	}
	limited := m.TopFeatures(2)
	if len(limited) != 2 {
		t.Error("k limit")
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	m := &Model{}
	if m.Accuracy(&Dataset{}) != 0 {
		t.Error("empty accuracy")
	}
}
