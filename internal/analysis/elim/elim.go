// Package elim implements the predicate-elimination strategies of §3.2:
// given many runs of an instrumented program, it discards predicates whose
// observed behaviour is inconsistent with the hypothesis "this predicate
// being true causes (or raises the risk of) failure", leaving a small set
// of candidate bug predictors.
package elim

import (
	"math/rand"

	"cbi/internal/report"
	"cbi/internal/stats"
	"cbi/internal/telemetry"
)

// SiteSpan describes the counter range of one instrumentation site (e.g.
// the three sign counters of a returns site). Elimination by lack of
// failing coverage operates on spans: a site none of whose counters was
// ever nonzero in a failing run was not even reached by failures.
type SiteSpan struct {
	Base int
	Len  int
}

// UniversalFalsehood retains counters that were nonzero on at least one
// run; counters zero on all runs "likely represent predicates that can
// never be true" (§3.2.2).
func UniversalFalsehood(a *report.Aggregate) []bool {
	keep := make([]bool, a.NumCounters)
	for i := range keep {
		keep[i] = a.NonzeroInSuccess[i] || a.NonzeroInFailure[i]
	}
	return keep
}

// LackOfFailingCoverage retains counters whose site was reached in at
// least one failing run (§3.2.2).
func LackOfFailingCoverage(a *report.Aggregate, spans []SiteSpan) []bool {
	keep := make([]bool, a.NumCounters)
	for _, sp := range spans {
		reached := false
		for i := sp.Base; i < sp.Base+sp.Len && i < a.NumCounters; i++ {
			if a.NonzeroInFailure[i] {
				reached = true
				break
			}
		}
		if reached {
			for i := sp.Base; i < sp.Base+sp.Len && i < a.NumCounters; i++ {
				keep[i] = true
			}
		}
	}
	return keep
}

// LackOfFailingExample retains counters nonzero on at least one failed
// run; the rest "likely represent predicates that need not be true for a
// failure to occur" (§3.2.2).
func LackOfFailingExample(a *report.Aggregate) []bool {
	return append([]bool(nil), a.NonzeroInFailure...)
}

// SuccessfulCounterexample retains counters that are zero on every
// successful run; a counter observed true in a successful run "must
// represent a predicate that can be true without a subsequent program
// failure" (§3.2.2). This strategy assumes the bug is deterministic.
func SuccessfulCounterexample(a *report.Aggregate) []bool {
	keep := make([]bool, a.NumCounters)
	for i := range keep {
		keep[i] = !a.NonzeroInSuccess[i]
	}
	return keep
}

// Intersect combines strategies: a counter survives only if every
// strategy retains it. With no arguments it returns nil.
func Intersect(sets ...[]bool) []bool {
	if len(sets) == 0 {
		return nil
	}
	out := append([]bool(nil), sets[0]...)
	for _, s := range sets[1:] {
		for i := range out {
			out[i] = out[i] && i < len(s) && s[i]
		}
	}
	return out
}

// Count returns the number of retained counters.
func Count(set []bool) int {
	n := 0
	for _, b := range set {
		if b {
			n++
		}
	}
	return n
}

// Indices returns the retained counter indices in order.
func Indices(set []bool) []int {
	var out []int
	for i, b := range set {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// ----------------------------------------------------------------------------
// Progressive refinement (Figure 2)

// Point is one x-position of Figure 2: the candidate-predicate count
// after elimination by successful counterexample over subsets of a given
// number of successful runs, summarized over many random subsets.
type Point struct {
	Runs   int
	Mean   float64
	StdDev float64
}

// Progressive reproduces Figure 2's experiment: starting from the
// candidate set initial (typically UniversalFalsehood over all runs), it
// draws `trials` random subsets of the successful runs at each size in
// sizes, applies elimination by successful counterexample using only that
// subset, and records the mean and standard deviation of the surviving
// predicate count.
func Progressive(successes []*report.Report, initial []bool, sizes []int, trials int, seed int64) []Point {
	defer telemetry.StartSpan("elim.progressive").End()
	rng := rand.New(rand.NewSource(seed))
	numCounters := len(initial)
	points := make([]Point, 0, len(sizes))
	for _, size := range sizes {
		if size > len(successes) {
			size = len(successes)
		}
		counts := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(len(successes))
			seen := make([]bool, numCounters)
			for _, ri := range perm[:size] {
				for i, c := range successes[ri].Counters {
					if c != 0 {
						seen[i] = true
					}
				}
			}
			n := 0
			for i := range initial {
				if initial[i] && !seen[i] {
					n++
				}
			}
			counts = append(counts, float64(n))
		}
		points = append(points, Point{
			Runs:   size,
			Mean:   stats.Mean(counts),
			StdDev: stats.StdDev(counts),
		})
	}
	return points
}

// StrategyCounts reports, for each §3.2.3-style strategy applied
// independently, how many candidate predicates remain. spans is needed for
// lack of failing coverage.
type StrategyCounts struct {
	Total                    int
	UniversalFalsehood       int
	LackOfFailingCoverage    int
	LackOfFailingExample     int
	SuccessfulCounterexample int
	UFandSC                  int // the paper's headline combination
	LFEandSC                 int
	LFCandSC                 int
}

// Summarize applies every strategy to the aggregate.
func Summarize(a *report.Aggregate, spans []SiteSpan) StrategyCounts {
	defer telemetry.StartSpan("elim.summarize").End()
	uf := UniversalFalsehood(a)
	lfc := LackOfFailingCoverage(a, spans)
	lfe := LackOfFailingExample(a)
	sc := SuccessfulCounterexample(a)
	return StrategyCounts{
		Total:                    a.NumCounters,
		UniversalFalsehood:       Count(uf),
		LackOfFailingCoverage:    Count(lfc),
		LackOfFailingExample:     Count(lfe),
		SuccessfulCounterexample: Count(sc),
		UFandSC:                  Count(Intersect(uf, sc)),
		LFEandSC:                 Count(Intersect(lfe, sc)),
		LFCandSC:                 Count(Intersect(lfc, sc)),
	}
}
