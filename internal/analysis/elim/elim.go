// Package elim implements the predicate-elimination strategies of §3.2:
// given many runs of an instrumented program, it discards predicates whose
// observed behaviour is inconsistent with the hypothesis "this predicate
// being true causes (or raises the risk of) failure", leaving a small set
// of candidate bug predictors.
package elim

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"cbi/internal/report"
	"cbi/internal/stats"
	"cbi/internal/telemetry"
)

// SiteSpan describes the counter range of one instrumentation site (e.g.
// the three sign counters of a returns site). Elimination by lack of
// failing coverage operates on spans: a site none of whose counters was
// ever nonzero in a failing run was not even reached by failures.
type SiteSpan struct {
	Base int
	Len  int
}

// UniversalFalsehood retains counters that were nonzero on at least one
// run; counters zero on all runs "likely represent predicates that can
// never be true" (§3.2.2).
func UniversalFalsehood(a *report.Aggregate) []bool {
	keep := make([]bool, a.NumCounters)
	for i := range keep {
		keep[i] = a.NonzeroInSuccess[i] || a.NonzeroInFailure[i]
	}
	return keep
}

// LackOfFailingCoverage retains counters whose site was reached in at
// least one failing run (§3.2.2).
func LackOfFailingCoverage(a *report.Aggregate, spans []SiteSpan) []bool {
	keep := make([]bool, a.NumCounters)
	for _, sp := range spans {
		reached := false
		for i := sp.Base; i < sp.Base+sp.Len && i < a.NumCounters; i++ {
			if a.NonzeroInFailure[i] {
				reached = true
				break
			}
		}
		if reached {
			for i := sp.Base; i < sp.Base+sp.Len && i < a.NumCounters; i++ {
				keep[i] = true
			}
		}
	}
	return keep
}

// LackOfFailingExample retains counters nonzero on at least one failed
// run; the rest "likely represent predicates that need not be true for a
// failure to occur" (§3.2.2).
func LackOfFailingExample(a *report.Aggregate) []bool {
	return append([]bool(nil), a.NonzeroInFailure...)
}

// SuccessfulCounterexample retains counters that are zero on every
// successful run; a counter observed true in a successful run "must
// represent a predicate that can be true without a subsequent program
// failure" (§3.2.2). This strategy assumes the bug is deterministic.
func SuccessfulCounterexample(a *report.Aggregate) []bool {
	keep := make([]bool, a.NumCounters)
	for i := range keep {
		keep[i] = !a.NonzeroInSuccess[i]
	}
	return keep
}

// Intersect combines strategies: a counter survives only if every
// strategy retains it. With no arguments it returns nil.
func Intersect(sets ...[]bool) []bool {
	if len(sets) == 0 {
		return nil
	}
	out := append([]bool(nil), sets[0]...)
	for _, s := range sets[1:] {
		for i := range out {
			out[i] = out[i] && i < len(s) && s[i]
		}
	}
	return out
}

// Count returns the number of retained counters.
func Count(set []bool) int {
	n := 0
	for _, b := range set {
		if b {
			n++
		}
	}
	return n
}

// Indices returns the retained counter indices in order.
func Indices(set []bool) []int {
	var out []int
	for i, b := range set {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// ----------------------------------------------------------------------------
// Progressive refinement (Figure 2)

// Point is one x-position of Figure 2: the candidate-predicate count
// after elimination by successful counterexample over subsets of a given
// number of successful runs, summarized over many random subsets.
type Point struct {
	Runs   int
	Mean   float64
	StdDev float64
}

// Progressive reproduces Figure 2's experiment: starting from the
// candidate set initial (typically UniversalFalsehood over all runs), it
// draws `trials` random subsets of the successful runs at each size in
// sizes, applies elimination by successful counterexample using only that
// subset, and records the mean and standard deviation of the surviving
// predicate count.
//
// Sizes larger than the success set clamp to it; sizes that clamp to the
// same effective value produce ONE point (the duplicates would be
// identical distributions). Trials run on ProgressiveWorkers' default
// worker pool; results are independent of the worker count.
func Progressive(successes []*report.Report, initial []bool, sizes []int, trials int, seed int64) []Point {
	return ProgressiveWorkers(successes, initial, sizes, trials, seed, 0)
}

// ProgressiveWorkers is Progressive with an explicit concurrency bound
// (0 = NumCPU, 1 = serial). Each (size, trial) pair derives its own RNG
// from the seed, so every trial's subset — and therefore every point —
// is identical at any worker count.
func ProgressiveWorkers(successes []*report.Report, initial []bool, sizes []int, trials int, seed int64, workers int) []Point {
	defer telemetry.StartSpan("elim.progressive").End()
	n := len(successes)
	// One point per distinct effective size: requested sizes past the
	// success count clamp and would otherwise duplicate.
	var effSizes []int
	dup := make(map[int]bool)
	for _, size := range sizes {
		if size > n {
			size = n
		}
		if !dup[size] {
			dup[size] = true
			effSizes = append(effSizes, size)
		}
	}
	// Counting survivors only needs the candidate indices, and subset
	// coverage only needs each report's nonzeros. Pre-build the sparse
	// forms serially: Nonzeros caches on first call and is not safe for
	// concurrent construction.
	candidates := Indices(initial)
	for _, r := range successes {
		r.Nonzeros()
	}

	counts := make([][]float64, len(effSizes))
	for k := range counts {
		counts[k] = make([]float64, trials)
	}
	tasks := len(effSizes) * trials
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > tasks {
		workers = tasks
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	worker := func() {
		defer wg.Done()
		// Per-worker scratch, reused across trials: an identity permutation
		// buffer restored by reverting its swaps, and a generation-marked
		// "seen" set that clears in O(1).
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		swaps := make([]int, 0, n)
		seen := make([]int32, len(initial))
		gen := int32(0)
		for {
			task := int(next.Add(1)) - 1
			if task >= tasks {
				return
			}
			k, trial := task/trials, task%trials
			size := effSizes[k]
			rng := rand.New(rand.NewSource(trialSeed(seed, size, trial)))
			// Partial Fisher–Yates: only the first `size` draws of a full
			// shuffle are needed to pick a uniform subset.
			swaps = swaps[:0]
			for i := 0; i < size; i++ {
				j := i + rng.Intn(n-i)
				perm[i], perm[j] = perm[j], perm[i]
				swaps = append(swaps, j)
			}
			gen++
			for _, ri := range perm[:size] {
				successes[ri].ForEachNonzero(func(i int, c uint64) {
					seen[i] = gen
				})
			}
			surv := 0
			for _, i := range candidates {
				if seen[i] != gen {
					surv++
				}
			}
			counts[k][trial] = float64(surv)
			// Undo the swaps in reverse so perm is the identity again.
			for i := len(swaps) - 1; i >= 0; i-- {
				perm[i], perm[swaps[i]] = perm[swaps[i]], perm[i]
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()

	points := make([]Point, 0, len(effSizes))
	for k, size := range effSizes {
		points = append(points, Point{
			Runs:   size,
			Mean:   stats.Mean(counts[k]),
			StdDev: stats.StdDev(counts[k]),
		})
	}
	return points
}

// trialSeed derives an independent, well-mixed RNG seed for one
// (size, trial) pair via splitmix64-style finalization, so trials can be
// scheduled on any worker in any order.
func trialSeed(seed int64, size, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z ^= uint64(size)*0xff51afd7ed558ccd + uint64(trial)*0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// StrategyCounts reports, for each §3.2.3-style strategy applied
// independently, how many candidate predicates remain. spans is needed for
// lack of failing coverage.
type StrategyCounts struct {
	Total                    int
	UniversalFalsehood       int
	LackOfFailingCoverage    int
	LackOfFailingExample     int
	SuccessfulCounterexample int
	UFandSC                  int // the paper's headline combination
	LFEandSC                 int
	LFCandSC                 int
}

// Summarize applies every strategy to the aggregate.
func Summarize(a *report.Aggregate, spans []SiteSpan) StrategyCounts {
	defer telemetry.StartSpan("elim.summarize").End()
	uf := UniversalFalsehood(a)
	lfc := LackOfFailingCoverage(a, spans)
	lfe := LackOfFailingExample(a)
	sc := SuccessfulCounterexample(a)
	return StrategyCounts{
		Total:                    a.NumCounters,
		UniversalFalsehood:       Count(uf),
		LackOfFailingCoverage:    Count(lfc),
		LackOfFailingExample:     Count(lfe),
		SuccessfulCounterexample: Count(sc),
		UFandSC:                  Count(Intersect(uf, sc)),
		LFEandSC:                 Count(Intersect(lfe, sc)),
		LFCandSC:                 Count(Intersect(lfc, sc)),
	}
}
