package elim

import (
	"reflect"
	"testing"

	"cbi/internal/report"
)

// fixture: 8 counters across 3 sites (spans 0-2, 3-5, 6-7).
//
//	counter 0: true in failures only        -> the smoking gun
//	counter 1: true in successes and failures
//	counter 2: never true
//	counter 3: true in successes only
//	counter 4: never true
//	counter 5: never true (site 1 reached only via counter 3 in successes)
//	counter 6: never true  (site 2 never reached in failures)
//	counter 7: true in successes only (site 2)
func fixtureDB(t *testing.T) *report.DB {
	t.Helper()
	db := report.NewDB("p", 8)
	add := func(crashed bool, counters []uint64) {
		t.Helper()
		if err := db.Add(&report.Report{Program: "p", Crashed: crashed, Counters: counters}); err != nil {
			t.Fatal(err)
		}
	}
	add(false, []uint64{0, 2, 0, 1, 0, 0, 0, 4})
	add(false, []uint64{0, 1, 0, 0, 0, 0, 0, 0})
	add(true, []uint64{3, 1, 0, 0, 0, 0, 0, 0})
	add(true, []uint64{1, 0, 0, 0, 0, 0, 0, 0})
	return db
}

var spans = []SiteSpan{{0, 3}, {3, 3}, {6, 2}}

func aggregate(t *testing.T, db *report.DB) *report.Aggregate {
	t.Helper()
	a := report.NewAggregate("p", 8)
	if err := a.FromDB(db); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStrategiesIndividually(t *testing.T) {
	a := aggregate(t, fixtureDB(t))

	uf := UniversalFalsehood(a)
	if got := Indices(uf); !equalInts(got, []int{0, 1, 3, 7}) {
		t.Errorf("universal falsehood: %v", got)
	}
	lfe := LackOfFailingExample(a)
	if got := Indices(lfe); !equalInts(got, []int{0, 1}) {
		t.Errorf("lack of failing example: %v", got)
	}
	lfc := LackOfFailingCoverage(a, spans)
	if got := Indices(lfc); !equalInts(got, []int{0, 1, 2}) {
		t.Errorf("lack of failing coverage: %v", got)
	}
	sc := SuccessfulCounterexample(a)
	if got := Indices(sc); !equalInts(got, []int{0, 2, 4, 5, 6}) {
		t.Errorf("successful counterexample: %v", got)
	}
}

func TestCombinationIsolatesSmokingGun(t *testing.T) {
	a := aggregate(t, fixtureDB(t))
	// §3.2.3's combination: (universal falsehood) ∧ (successful
	// counterexample) = sometimes true in failures, never in successes.
	combined := Intersect(UniversalFalsehood(a), SuccessfulCounterexample(a))
	if got := Indices(combined); !equalInts(got, []int{0}) {
		t.Errorf("combination: %v, want [0]", got)
	}
}

func TestSubsetRelations(t *testing.T) {
	// (universal falsehood) and (lack of failing coverage) each eliminate
	// a subset of what (lack of failing example) eliminates — i.e. retain
	// supersets of LFE's retained set (§3.2.2).
	a := aggregate(t, fixtureDB(t))
	uf := UniversalFalsehood(a)
	lfc := LackOfFailingCoverage(a, spans)
	lfe := LackOfFailingExample(a)
	for i := range lfe {
		if lfe[i] && !uf[i] {
			t.Errorf("counter %d retained by LFE but not UF", i)
		}
		if lfe[i] && !lfc[i] {
			t.Errorf("counter %d retained by LFE but not LFC", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	a := aggregate(t, fixtureDB(t))
	s := Summarize(a, spans)
	if s.Total != 8 {
		t.Error("total")
	}
	if s.UniversalFalsehood != 4 || s.LackOfFailingExample != 2 ||
		s.LackOfFailingCoverage != 3 || s.SuccessfulCounterexample != 5 {
		t.Errorf("%+v", s)
	}
	if s.UFandSC != 1 || s.LFEandSC != 1 {
		t.Errorf("combinations: %+v", s)
	}
}

func TestIntersectAndHelpers(t *testing.T) {
	if Intersect() != nil {
		t.Error("empty intersect")
	}
	got := Intersect([]bool{true, true, false}, []bool{true, false, true})
	if Count(got) != 1 || !got[0] {
		t.Errorf("%v", got)
	}
	// Mismatched lengths: missing entries are treated as false.
	short := Intersect([]bool{true, true}, []bool{true})
	if Count(short) != 1 {
		t.Errorf("short: %v", short)
	}
}

func TestProgressiveShrinksMonotonically(t *testing.T) {
	// Synthetic: 40 counters. Counter 0 never true in successes; the rest
	// become "seen true in a success" at varying frequencies, so more
	// successful runs -> more elimination.
	const nc = 40
	db := report.NewDB("p", nc)
	for i := 0; i < 500; i++ {
		counters := make([]uint64, nc)
		for j := 1; j < nc; j++ {
			if i%(j+1) == 0 {
				counters[j] = 1
			}
		}
		if err := db.Add(&report.Report{Program: "p", Counters: counters}); err != nil {
			t.Fatal(err)
		}
	}
	initial := make([]bool, nc)
	for i := range initial {
		initial[i] = true
	}
	points := Progressive(db.Successes(), initial, []int{5, 50, 500}, 30, 1)
	if len(points) != 3 {
		t.Fatalf("points: %d", len(points))
	}
	if !(points[0].Mean > points[1].Mean && points[1].Mean > points[2].Mean) {
		t.Errorf("means not decreasing: %+v", points)
	}
	// With all 500 runs every subset is identical: zero variance, and the
	// survivor is exactly counter 0 (every other j is hit by run i=0).
	last := points[2]
	if last.StdDev != 0 || last.Mean != 1 {
		t.Errorf("full-set point: %+v", last)
	}
	// Requesting more runs than exist clamps.
	clamped := Progressive(db.Successes(), initial, []int{10000}, 5, 1)
	if clamped[0].Runs != 500 {
		t.Errorf("clamp: %+v", clamped[0])
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// successFleet builds a synthetic success-only report set for the
// Progressive tests below.
func successFleet(t *testing.T, runs, nc int) *report.DB {
	t.Helper()
	db := report.NewDB("p", nc)
	for i := 0; i < runs; i++ {
		counters := make([]uint64, nc)
		for j := 1; j < nc; j++ {
			if i%(j+1) == 0 {
				counters[j] = 1
			}
		}
		if err := db.Add(&report.Report{Program: "p", Counters: counters}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestProgressiveDedupesClampedSizes(t *testing.T) {
	db := successFleet(t, 500, 20)
	initial := make([]bool, 20)
	for i := range initial {
		initial[i] = true
	}
	// 600 and 10000 both clamp to the 500 available successes; together
	// with an explicit 500 they must yield ONE point, not three.
	points := Progressive(db.Successes(), initial, []int{50, 600, 500, 10000}, 5, 1)
	if len(points) != 2 {
		t.Fatalf("points: %+v", points)
	}
	if points[0].Runs != 50 || points[1].Runs != 500 {
		t.Errorf("sizes: %+v", points)
	}
}

func TestProgressiveParallelMatchesSerial(t *testing.T) {
	db := successFleet(t, 300, 35)
	initial := make([]bool, 35)
	for i := range initial {
		initial[i] = true
	}
	sizes := []int{5, 30, 100, 300}
	serial := ProgressiveWorkers(db.Successes(), initial, sizes, 25, 7, 1)
	parallel := ProgressiveWorkers(db.Successes(), initial, sizes, 25, 7, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker count changed the points:\n%+v\n%+v", serial, parallel)
	}
}
