package score

import (
	"reflect"
	"testing"

	"cbi/internal/report"
)

func testSpans() []SiteSpan {
	return []SiteSpan{{Base: 0, Len: 3}, {Base: 3, Len: 3}, {Base: 6, Len: 2}}
}

func foldedAccum(t *testing.T, spans []SiteSpan, runs int) *Accum {
	t.Helper()
	a := NewAccum(8, spans)
	for i := 0; i < runs; i++ {
		r := &report.Report{RunID: uint64(i + 1), Crashed: i%3 == 0, Counters: make([]uint64, 8)}
		r.Counters[i%8] = uint64(i + 1)
		r.Counters[(i*5)%8] += 1
		if err := a.Fold(r); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// statsEqual compares the wire-carried statistics (the fold scratch is
// private derived state and intentionally differs between a folded
// accumulator and a decoded one).
func statsEqual(a, b *Accum) bool {
	return a.NumCounters == b.NumCounters &&
		a.Runs == b.Runs && a.Failures == b.Failures &&
		reflect.DeepEqual(a.TrueFail, b.TrueFail) &&
		reflect.DeepEqual(a.TrueOK, b.TrueOK) &&
		reflect.DeepEqual(a.SiteObsFail, b.SiteObsFail) &&
		reflect.DeepEqual(a.SiteObsOK, b.SiteObsOK)
}

func TestAccumStatsRoundTrip(t *testing.T) {
	spans := testSpans()
	a := foldedAccum(t, spans, 30)
	got, err := DecodeAccumStats(a.EncodeStats(), spans)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
	// The decoded accumulator must score identically — rankings are the
	// product the root actually serves.
	if !reflect.DeepEqual(Rank(a.Predicates()), Rank(got.Predicates())) {
		t.Fatal("decoded accumulator ranks differently")
	}

	// Span-cardinality disagreement is a refusal, not a silent remap.
	if _, err := DecodeAccumStats(a.EncodeStats(), nil); err == nil {
		t.Error("span mismatch accepted")
	}
}

func TestAccumCloneStatsIsIndependent(t *testing.T) {
	a := foldedAccum(t, testSpans(), 12)
	c := a.CloneStats()
	if !statsEqual(a, c) {
		t.Fatal("clone stats differ from original")
	}
	c.TrueFail[2] += 7
	c.SiteObsOK[1] += 1
	c.Runs++
	if a.TrueFail[2] == c.TrueFail[2] || a.SiteObsOK[1] == c.SiteObsOK[1] || a.Runs == c.Runs {
		t.Fatal("clone shares storage with the original")
	}
}

// TestAccumDiffMergeIdentity mirrors the aggregate algebra for scoring
// state: base + Diff(cur, base) == cur, so delta merges leave the root
// accumulator — and therefore its rankings — bit-identical to a serial
// fold.
func TestAccumDiffMergeIdentity(t *testing.T) {
	spans := testSpans()
	cur := foldedAccum(t, spans, 40)
	base := foldedAccum(t, spans, 25) // same fold prefix

	delta, err := cur.Diff(base)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := base.CloneStats()
	if err := rebuilt.Merge(delta); err != nil {
		t.Fatal(err)
	}
	if !statsEqual(rebuilt, cur) {
		t.Fatal("base + Diff(cur, base) != cur")
	}
	if !reflect.DeepEqual(Rank(rebuilt.Predicates()), Rank(cur.Predicates())) {
		t.Fatal("rebuilt accumulator ranks differently")
	}

	if _, err := base.Diff(cur); err == nil {
		t.Error("regressed diff accepted")
	}
}

func TestDecodeAccumStatsRejectsMalformed(t *testing.T) {
	spans := testSpans()
	good := foldedAccum(t, spans, 8).EncodeStats()
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)-2],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeAccumStats(data, spans); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
