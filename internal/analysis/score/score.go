// Package score implements the predicate scoring model that the CBI
// project developed as the successor to this paper's analyses (Liblit et
// al., "Scalable Statistical Bug Isolation", PLDI 2005). It is included
// as the natural extension of §3: where §3.2's elimination needs
// deterministic bugs and §3.3's regression trains a global classifier,
// these scores rank each predicate locally:
//
//	Failure(P) = F(P) / (F(P) + S(P))
//	Context(P) = F(P observed) / (F(P observed) + S(P observed))
//	Increase(P) = Failure(P) - Context(P)
//	Importance(P) = harmonic mean of Increase(P) and
//	                log(F(P)) / log(totalFailures)
//
// where F/S count failing/successful runs in which P was sampled true,
// and "observed" counts runs in which P's site was sampled at all —
// which is exactly what this paper's counter triples make computable
// under sparse sampling.
package score

import (
	"math"
	"sort"

	"cbi/internal/report"
)

// SiteSpan mirrors elim.SiteSpan: the counter range of one site.
type SiteSpan struct {
	Base int
	Len  int
}

// Predicate is one scored predicate.
type Predicate struct {
	Counter    int
	TrueFail   int // F(P): failing runs observing P true
	TrueOK     int // S(P): successful runs observing P true
	ObsFail    int // failing runs where P's site was sampled at all
	ObsOK      int // successful runs where P's site was sampled at all
	Failure    float64
	Context    float64
	Increase   float64
	Importance float64
}

// Score computes the per-predicate statistics over a report database.
// spans gives each site's counter range; observation of any counter in a
// span counts as observing every predicate of that site.
func Score(db *report.DB, spans []SiteSpan) []Predicate {
	n := db.NumCounters
	preds := make([]Predicate, n)
	for i := range preds {
		preds[i].Counter = i
	}
	totalFailures := 0

	// Map counter -> its span, for observation accounting.
	spanOf := make([]int, n)
	for i := range spanOf {
		spanOf[i] = -1
	}
	for si, sp := range spans {
		for c := sp.Base; c < sp.Base+sp.Len && c < n; c++ {
			spanOf[c] = si
		}
	}

	siteObserved := make([]bool, len(spans))
	for _, r := range db.Reports {
		fail := r.Crashed
		if fail {
			totalFailures++
		}
		for i := range siteObserved {
			siteObserved[i] = false
		}
		for c, v := range r.Counters {
			if v == 0 {
				continue
			}
			if fail {
				preds[c].TrueFail++
			} else {
				preds[c].TrueOK++
			}
			if si := spanOf[c]; si >= 0 {
				siteObserved[si] = true
			}
		}
		for si, obs := range siteObserved {
			if !obs {
				continue
			}
			sp := spans[si]
			for c := sp.Base; c < sp.Base+sp.Len && c < n; c++ {
				if fail {
					preds[c].ObsFail++
				} else {
					preds[c].ObsOK++
				}
			}
		}
	}

	finishScores(preds, totalFailures)
	return preds
}

// finishScores fills the float-valued scores of each predicate from its
// integer counts. It is the single scoring code path shared by the
// offline Score and the incremental Accum, which is what makes live
// collector rankings bit-identical to an offline pass over the same
// reports.
func finishScores(preds []Predicate, totalFailures int) {
	logNumF := math.Log(float64(totalFailures))
	for i := range preds {
		p := &preds[i]
		if t := p.TrueFail + p.TrueOK; t > 0 {
			p.Failure = float64(p.TrueFail) / float64(t)
		}
		if o := p.ObsFail + p.ObsOK; o > 0 {
			p.Context = float64(p.ObsFail) / float64(o)
		}
		p.Increase = p.Failure - p.Context
		if p.Increase > 0 && p.TrueFail > 0 && totalFailures > 1 {
			rel := math.Log(float64(p.TrueFail)) / logNumF
			if rel > 0 {
				p.Importance = 2 / (1/p.Increase + 1/rel)
			}
		}
	}
}

// Rank returns the predicates with positive Importance, highest first.
func Rank(preds []Predicate) []Predicate {
	var out []Predicate
	for _, p := range preds {
		if p.Importance > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Importance != out[j].Importance {
			return out[i].Importance > out[j].Importance
		}
		return out[i].Counter < out[j].Counter
	})
	return out
}

// Top returns the k highest-Importance predicates.
func Top(preds []Predicate, k int) []Predicate {
	ranked := Rank(preds)
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}
