package score

import (
	"math"
	"testing"

	"cbi/internal/report"
)

// Fixture: 6 counters in 2 spans of 3.
//
//	counter 0: true iff the run fails (the real bug predictor)
//	counter 1: always true when site 0 sampled (pure context)
//	counter 2: never true
//	counter 3: true in a few successes only
//	counter 4/5: never true (site 1 reached only via counter 3)
func fixture(t *testing.T) *report.DB {
	t.Helper()
	db := report.NewDB("p", 6)
	add := func(crashed bool, c ...uint64) {
		t.Helper()
		if err := db.Add(&report.Report{Program: "p", Crashed: crashed, Counters: c}); err != nil {
			t.Fatal(err)
		}
	}
	// 10 failing runs: counters 0 and 1 observed true.
	for i := 0; i < 10; i++ {
		add(true, 2, 1, 0, 0, 0, 0)
	}
	// 30 successful runs observing site 0 (counter 1 only).
	for i := 0; i < 30; i++ {
		add(false, 0, 3, 0, 0, 0, 0)
	}
	// 5 successful runs observing site 1.
	for i := 0; i < 5; i++ {
		add(false, 0, 0, 0, 1, 0, 0)
	}
	return db
}

var spans = []SiteSpan{{0, 3}, {3, 3}}

func TestScoreStatistics(t *testing.T) {
	preds := Score(fixture(t), spans)
	p0 := preds[0]
	if p0.TrueFail != 10 || p0.TrueOK != 0 {
		t.Errorf("counter 0 truth counts: %+v", p0)
	}
	if p0.ObsFail != 10 || p0.ObsOK != 30 {
		t.Errorf("counter 0 observation counts: %+v", p0)
	}
	if p0.Failure != 1.0 {
		t.Errorf("Failure: %f", p0.Failure)
	}
	if math.Abs(p0.Context-0.25) > 1e-9 {
		t.Errorf("Context: %f", p0.Context)
	}
	if math.Abs(p0.Increase-0.75) > 1e-9 {
		t.Errorf("Increase: %f", p0.Increase)
	}
	if p0.Importance <= 0 {
		t.Errorf("Importance: %f", p0.Importance)
	}

	// Counter 1 is pure context: true in failures and successes alike at
	// the site's base rate, so Increase is 0.
	p1 := preds[1]
	if math.Abs(p1.Increase) > 1e-9 {
		t.Errorf("context predicate Increase: %f", p1.Increase)
	}
	if p1.Importance != 0 {
		t.Errorf("context predicate Importance: %f", p1.Importance)
	}

	// Counter 3 is success-only: non-positive Increase (its site is
	// never observed in failures, so Failure = Context = 0) and zero
	// Importance.
	p3 := preds[3]
	if p3.Increase > 0 {
		t.Errorf("success-only predicate Increase: %f", p3.Increase)
	}
	if p3.Importance != 0 {
		t.Errorf("success-only Importance: %f", p3.Importance)
	}
}

func TestRankAndTop(t *testing.T) {
	preds := Score(fixture(t), spans)
	ranked := Rank(preds)
	if len(ranked) != 1 || ranked[0].Counter != 0 {
		t.Fatalf("ranked: %+v", ranked)
	}
	top := Top(preds, 5)
	if len(top) != 1 {
		t.Errorf("top: %+v", top)
	}
	if len(Top(preds, 0)) != 1 {
		t.Error("k=0 means all")
	}
}

func TestScoreEmptyDB(t *testing.T) {
	db := report.NewDB("p", 3)
	preds := Score(db, []SiteSpan{{0, 3}})
	for _, p := range preds {
		if p.Importance != 0 || p.Failure != 0 {
			t.Errorf("%+v", p)
		}
	}
}

func TestImportanceIsHarmonicMean(t *testing.T) {
	// Construct a case with known values: 4 failures total; predicate
	// true in 2 of them, site observed in failures only.
	db := report.NewDB("p", 2)
	for i := 0; i < 4; i++ {
		c := []uint64{0, 1}
		if i < 2 {
			c[0] = 1
		}
		if err := db.Add(&report.Report{Program: "p", Crashed: true, Counters: c}); err != nil {
			t.Fatal(err)
		}
	}
	// Some successes never observing the site keep Context meaningful.
	for i := 0; i < 4; i++ {
		if err := db.Add(&report.Report{Program: "p", Crashed: false, Counters: []uint64{0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	preds := Score(db, []SiteSpan{{0, 2}})
	p := preds[0]
	// Failure = 1 (true only in failures); Context = 1 (site observed
	// only in failures) -> Increase = 0 -> Importance 0.
	if p.Increase != 0 || p.Importance != 0 {
		t.Errorf("%+v", p)
	}
}
