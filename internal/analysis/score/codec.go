package score

// Accum wire codec: the scoring-statistics section of the "CBA1" merge
// envelope (package collect) and of an edge collector's spilled state.
// Like the report.Aggregate codec it is sparse — only counters (and
// sites) with a nonzero observation count get an entry — and it
// serializes full states and deltas alike, because a delta is just an
// Accum holding the difference of two cumulative states (Diff).
//
//	uvarint NumCounters
//	uvarint #spans (layout cardinality only; the receiver supplies the
//	        actual spans and rejects a cardinality mismatch — the
//	        "authenticated by shape" rule)
//	uvarint Runs
//	uvarint Failures
//	uvarint #counter entries
//	repeated: uvarint indexDelta, uvarint trueFail, uvarint trueOK
//	uvarint #site entries
//	repeated: uvarint indexDelta, uvarint obsFail, uvarint obsOK

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadAccum is returned when an encoded accumulator is malformed.
var ErrBadAccum = errors.New("score: malformed accumulator encoding")

type statsEncoder struct{ buf []byte }

func (e *statsEncoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

type statsDecoder struct {
	buf []byte
	off int
	err bool
}

func (d *statsDecoder) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = true
		return 0
	}
	d.off += n
	return v
}

// EncodeStats serializes the accumulator's public statistics. The
// private fold scratch (span map, generation marks) is derived state
// and never crosses the wire.
func (a *Accum) EncodeStats() []byte {
	e := &statsEncoder{}
	e.uvarint(uint64(a.NumCounters))
	e.uvarint(uint64(len(a.Spans)))
	e.uvarint(uint64(a.Runs))
	e.uvarint(uint64(a.Failures))
	entries := 0
	for i := range a.TrueFail {
		if a.TrueFail[i] != 0 || a.TrueOK[i] != 0 {
			entries++
		}
	}
	e.uvarint(uint64(entries))
	prev := 0
	for i := range a.TrueFail {
		if a.TrueFail[i] == 0 && a.TrueOK[i] == 0 {
			continue
		}
		e.uvarint(uint64(i - prev))
		prev = i
		e.uvarint(uint64(a.TrueFail[i]))
		e.uvarint(uint64(a.TrueOK[i]))
	}
	sites := 0
	for i := range a.SiteObsFail {
		if a.SiteObsFail[i] != 0 || a.SiteObsOK[i] != 0 {
			sites++
		}
	}
	e.uvarint(uint64(sites))
	prev = 0
	for i := range a.SiteObsFail {
		if a.SiteObsFail[i] == 0 && a.SiteObsOK[i] == 0 {
			continue
		}
		e.uvarint(uint64(i - prev))
		prev = i
		e.uvarint(uint64(a.SiteObsFail[i]))
		e.uvarint(uint64(a.SiteObsOK[i]))
	}
	return e.buf
}

// DecodeAccumStats parses a payload produced by EncodeStats. spans is
// the receiver's own site layout; decoding fails unless its cardinality
// matches the sender's, so two collectors can only merge scoring state
// when they agree on the site structure. The result is suitable as a
// Merge source (its fold scratch is rebuilt lazily if it is ever used
// as a Merge target that adopts shape).
func DecodeAccumStats(data []byte, spans []SiteSpan) (*Accum, error) {
	d := &statsDecoder{buf: data}
	n := d.uvarint()
	nSpans := d.uvarint()
	runs := d.uvarint()
	failures := d.uvarint()
	entries := d.uvarint()
	if d.err || n > 1<<28 || entries > n || failures > runs {
		return nil, ErrBadAccum
	}
	if int(nSpans) != len(spans) {
		return nil, fmt.Errorf("score: accumulator has %d site spans, want %d", nSpans, len(spans))
	}
	a := NewAccum(int(n), spans)
	if a.TrueFail == nil {
		// NumCounters 0 with spans: alloc never ran; force the slices so
		// the entry loops below have a target.
		a.alloc()
	}
	a.Runs = int(runs)
	a.Failures = int(failures)
	idx := 0
	for i := uint64(0); i < entries; i++ {
		delta := d.uvarint()
		tf := d.uvarint()
		tok := d.uvarint()
		if d.err {
			return nil, ErrBadAccum
		}
		idx += int(delta)
		if idx < 0 || idx >= int(n) {
			return nil, ErrBadAccum
		}
		a.TrueFail[idx] = int(tf)
		a.TrueOK[idx] = int(tok)
	}
	sites := d.uvarint()
	if d.err || sites > nSpans {
		return nil, ErrBadAccum
	}
	idx = 0
	for i := uint64(0); i < sites; i++ {
		delta := d.uvarint()
		of := d.uvarint()
		ook := d.uvarint()
		if d.err {
			return nil, ErrBadAccum
		}
		idx += int(delta)
		if idx < 0 || idx >= int(nSpans) {
			return nil, ErrBadAccum
		}
		a.SiteObsFail[idx] = int(of)
		a.SiteObsOK[idx] = int(ook)
	}
	if d.off != len(data) {
		return nil, ErrBadAccum
	}
	return a, nil
}

// CloneStats copies the accumulator's public statistics (the baseline a
// federated edge diffs the next epoch against). The clone shares the
// span slice — layouts are immutable once a server starts — and carries
// no fold scratch; it is a Diff/Merge operand, not a Fold target.
func (a *Accum) CloneStats() *Accum {
	return &Accum{
		NumCounters: a.NumCounters,
		Spans:       a.Spans,
		Runs:        a.Runs,
		Failures:    a.Failures,
		TrueFail:    append([]int(nil), a.TrueFail...),
		TrueOK:      append([]int(nil), a.TrueOK...),
		SiteObsFail: append([]int(nil), a.SiteObsFail...),
		SiteObsOK:   append([]int(nil), a.SiteObsOK...),
	}
}

// Diff returns the delta from base to a. Every Accum statistic is a
// per-run sum, so the delta of two cumulative states subtracts
// field-wise, and merging the result upstream reproduces a serial fold
// exactly (the tree-merge legality argument, DESIGN §14). base may be
// nil or empty, in which case the delta is a itself.
func (a *Accum) Diff(base *Accum) (*Accum, error) {
	if base == nil || (base.Runs == 0 && base.NumCounters == 0) {
		return a.CloneStats(), nil
	}
	if base.NumCounters != a.NumCounters {
		return nil, fmt.Errorf("score: diff shape %d, want %d", base.NumCounters, a.NumCounters)
	}
	if len(base.Spans) != len(a.Spans) {
		return nil, fmt.Errorf("score: diff has %d site spans, want %d", len(base.Spans), len(a.Spans))
	}
	if base.Runs > a.Runs || base.Failures > a.Failures {
		return nil, fmt.Errorf("score: diff base ahead of current state (%d runs > %d)", base.Runs, a.Runs)
	}
	d := &Accum{
		NumCounters: a.NumCounters,
		Spans:       a.Spans,
		Runs:        a.Runs - base.Runs,
		Failures:    a.Failures - base.Failures,
		TrueFail:    make([]int, len(a.TrueFail)),
		TrueOK:      make([]int, len(a.TrueOK)),
		SiteObsFail: make([]int, len(a.SiteObsFail)),
		SiteObsOK:   make([]int, len(a.SiteObsOK)),
	}
	for i := range a.TrueFail {
		if a.TrueFail[i] < base.TrueFail[i] || a.TrueOK[i] < base.TrueOK[i] {
			return nil, fmt.Errorf("score: diff counter %d went backwards", i)
		}
		d.TrueFail[i] = a.TrueFail[i] - base.TrueFail[i]
		d.TrueOK[i] = a.TrueOK[i] - base.TrueOK[i]
	}
	for i := range a.SiteObsFail {
		if a.SiteObsFail[i] < base.SiteObsFail[i] || a.SiteObsOK[i] < base.SiteObsOK[i] {
			return nil, fmt.Errorf("score: diff site %d went backwards", i)
		}
		d.SiteObsFail[i] = a.SiteObsFail[i] - base.SiteObsFail[i]
		d.SiteObsOK[i] = a.SiteObsOK[i] - base.SiteObsOK[i]
	}
	return d, nil
}
