package score

import (
	"fmt"

	"cbi/internal/report"
)

// Accum holds the order-free sufficient statistics behind Score, so the
// per-predicate rankings can be maintained incrementally as reports
// arrive instead of requiring a retained report database. Every field is
// a sum over runs (run/failure totals, per-counter observed-true run
// counts, per-site observed-at-all run counts), so folding reports into
// independent accumulators and merging them yields exactly the same
// state as folding every report serially — the same merge-legality
// argument as report.Aggregate (DESIGN §8), extended to the 2005
// follow-up scores.
//
// Predicates() then computes the identical arithmetic as Score over
// those counts (the two share one code path), so for any report set D:
//
//	acc.Predicates() == Score(D, spans)   bit for bit,
//
// whenever acc was built by folding exactly the reports of D with the
// same spans.
type Accum struct {
	NumCounters int
	Spans       []SiteSpan
	Runs        int
	Failures    int
	// TrueFail[c] / TrueOK[c] count failing / successful runs in which
	// counter c was observed true (nonzero).
	TrueFail []int
	TrueOK   []int
	// SiteObsFail[s] / SiteObsOK[s] count failing / successful runs in
	// which any counter of site s was nonzero — the "site was sampled at
	// all" denominator of Context(P).
	SiteObsFail []int
	SiteObsOK   []int

	// spanOf maps counter -> owning site (last span wins, exactly as in
	// Score), and mark/gen is generation-marked scratch so Fold touches
	// only the sites a report actually observed.
	spanOf []int
	mark   []int
	gen    int
}

// NewAccum creates an empty accumulator for a counter space and site
// layout. numCounters may be 0 ("accept any"): the shape is then adopted
// from the first folded report, mirroring report.Aggregate. spans may be
// nil, in which case no predicate has site context and Context(P) stays
// 0 — the same degradation as Score with nil spans.
func NewAccum(numCounters int, spans []SiteSpan) *Accum {
	a := &Accum{NumCounters: numCounters, Spans: spans}
	if numCounters > 0 {
		a.alloc()
	}
	return a
}

func (a *Accum) alloc() {
	n := a.NumCounters
	a.TrueFail = make([]int, n)
	a.TrueOK = make([]int, n)
	a.SiteObsFail = make([]int, len(a.Spans))
	a.SiteObsOK = make([]int, len(a.Spans))
	a.spanOf = make([]int, n)
	for i := range a.spanOf {
		a.spanOf[i] = -1
	}
	for si, sp := range a.Spans {
		for c := sp.Base; c < sp.Base+sp.Len && c < n; c++ {
			a.spanOf[c] = si
		}
	}
	a.mark = make([]int, len(a.Spans))
}

// Fold absorbs one report. Cost is O(nonzero counters), not O(counter
// space). Not safe for concurrent use; callers stripe accumulators and
// Merge them (collect.Server holds one per ingest shard).
func (a *Accum) Fold(r *report.Report) error {
	if a.NumCounters == 0 && a.Runs == 0 && len(r.Counters) > 0 {
		a.NumCounters = len(r.Counters)
		a.alloc()
	}
	if len(r.Counters) != a.NumCounters {
		return fmt.Errorf("score: counter vector length %d, want %d", len(r.Counters), a.NumCounters)
	}
	a.Runs++
	obsTrue, obsSite := a.TrueOK, a.SiteObsOK
	if r.Crashed {
		a.Failures++
		obsTrue, obsSite = a.TrueFail, a.SiteObsFail
	}
	a.gen++
	r.ForEachNonzero(func(i int, _ uint64) {
		obsTrue[i]++
		if si := a.spanOf[i]; si >= 0 && a.mark[si] != a.gen {
			a.mark[si] = a.gen
			obsSite[si]++
		}
	})
	return nil
}

// FoldBatch absorbs pre-merged batch statistics (report.BatchStats).
// Only legal when the accumulator carries no site spans: Context(P)
// counts runs in which a *site* was observed at all, a per-report fact
// that a per-counter merge cannot reconstruct. Without spans, every
// Accum statistic is a per-counter sum over runs, sums commute, and the
// result is bit-identical to folding each observed report individually.
// An empty accumulator adopts the batch's shape, mirroring Fold.
func (a *Accum) FoldBatch(b *report.BatchStats) error {
	if len(a.Spans) != 0 {
		return fmt.Errorf("score: batch fold requires an accumulator without site spans")
	}
	if a.NumCounters == 0 && a.Runs == 0 && b.NumCounters > 0 {
		a.NumCounters = b.NumCounters
		a.alloc()
	}
	if b.NumCounters != a.NumCounters {
		return fmt.Errorf("score: batch counter space %d, want %d", b.NumCounters, a.NumCounters)
	}
	a.Runs += b.Runs
	a.Failures += b.Crashes
	for _, i := range b.Touched {
		a.TrueOK[i] += int(b.SuccRuns[i])
		a.TrueFail[i] += int(b.FailRuns[i])
	}
	return nil
}

// Merge absorbs another accumulator. Both must describe the same counter
// space and site layout (an empty a adopts o's). Merge is the order-free
// shard combiner: fold-into-shards-then-merge equals a serial fold.
func (a *Accum) Merge(o *Accum) error {
	if o.Runs == 0 && o.NumCounters == 0 {
		return nil
	}
	if a.NumCounters == 0 && a.Runs == 0 && o.NumCounters > 0 {
		a.NumCounters = o.NumCounters
		if len(a.Spans) == 0 {
			a.Spans = o.Spans
		}
		a.alloc()
	}
	if o.NumCounters != a.NumCounters {
		return fmt.Errorf("score: accumulator shape %d, want %d", o.NumCounters, a.NumCounters)
	}
	if len(o.Spans) != len(a.Spans) {
		return fmt.Errorf("score: accumulator has %d site spans, want %d", len(o.Spans), len(a.Spans))
	}
	a.Runs += o.Runs
	a.Failures += o.Failures
	for i := range o.TrueFail {
		a.TrueFail[i] += o.TrueFail[i]
		a.TrueOK[i] += o.TrueOK[i]
	}
	for i := range o.SiteObsFail {
		a.SiteObsFail[i] += o.SiteObsFail[i]
		a.SiteObsOK[i] += o.SiteObsOK[i]
	}
	return nil
}

// Predicates computes the scored predicates from the accumulated counts.
// The result is bit-identical to Score over the same reports and spans:
// the observation expansion mirrors Score's site loop and the float
// arithmetic is the shared finishScores.
func (a *Accum) Predicates() []Predicate {
	n := a.NumCounters
	preds := make([]Predicate, n)
	for i := range preds {
		preds[i].Counter = i
		preds[i].TrueFail = a.TrueFail[i]
		preds[i].TrueOK = a.TrueOK[i]
	}
	for si, sp := range a.Spans {
		of, oo := a.SiteObsFail[si], a.SiteObsOK[si]
		for c := sp.Base; c < sp.Base+sp.Len && c < n; c++ {
			preds[c].ObsFail += of
			preds[c].ObsOK += oo
		}
	}
	finishScores(preds, a.Failures)
	return preds
}
