package score

import (
	"math/rand"
	"reflect"
	"testing"

	"cbi/internal/report"
)

// randomDB builds a report set with sparse counters and a mixed
// crash/success population.
func randomDB(rng *rand.Rand, runs, n int) *report.DB {
	db := report.NewDB("p", n)
	for i := 0; i < runs; i++ {
		counters := make([]uint64, n)
		for c := 0; c < n; c++ {
			if rng.Float64() < 0.2 {
				counters[c] = uint64(rng.Intn(5) + 1)
			}
		}
		rep := &report.Report{
			RunID:    uint64(i),
			Program:  "p",
			Crashed:  rng.Float64() < 0.3,
			Counters: counters,
		}
		if err := db.Add(rep); err != nil {
			panic(err)
		}
	}
	return db
}

// TestAccumMatchesScore is the bit-identity property the live rankings
// rest on: folding every report of a DB into an Accum and calling
// Predicates must equal Score over the same DB and spans, every field
// exactly — including under nil spans, overlapping spans, and spans
// clamped by the counter space.
func TestAccumMatchesScore(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		spans []SiteSpan
	}{
		{"nil spans", 12, nil},
		{"disjoint spans", 12, []SiteSpan{{0, 3}, {3, 3}, {6, 3}, {9, 3}}},
		{"partial coverage", 12, []SiteSpan{{2, 4}}},
		{"overlapping spans", 12, []SiteSpan{{0, 6}, {4, 6}}},
		{"span past end", 12, []SiteSpan{{8, 10}}},
		{"empty span", 12, []SiteSpan{{0, 0}, {1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			db := randomDB(rng, 200, tc.n)
			acc := NewAccum(tc.n, tc.spans)
			for _, rep := range db.Reports {
				if err := acc.Fold(rep); err != nil {
					t.Fatal(err)
				}
			}
			got := acc.Predicates()
			want := Score(db, tc.spans)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Accum.Predicates diverges from Score\n got: %+v\nwant: %+v", got[:4], want[:4])
			}
			if !reflect.DeepEqual(Rank(got), Rank(want)) {
				t.Fatal("ranked views diverge")
			}
		})
	}
}

// TestAccumMergeIsSerialFold: striping reports across accumulators and
// merging — in any order — equals one serial fold.
func TestAccumMergeIsSerialFold(t *testing.T) {
	const n = 16
	spans := []SiteSpan{{0, 4}, {4, 4}, {8, 8}}
	rng := rand.New(rand.NewSource(11))
	db := randomDB(rng, 300, n)

	serial := NewAccum(n, spans)
	for _, rep := range db.Reports {
		if err := serial.Fold(rep); err != nil {
			t.Fatal(err)
		}
	}

	const shards = 5
	parts := make([]*Accum, shards)
	for i := range parts {
		parts[i] = NewAccum(n, spans)
	}
	for _, rep := range db.Reports {
		if err := parts[rep.RunID%shards].Fold(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Merge in a scrambled order: the statistics are order-free sums.
	merged := NewAccum(n, spans)
	for _, i := range []int{3, 0, 4, 2, 1} {
		if err := merged.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(merged.Predicates(), serial.Predicates()) {
		t.Fatal("sharded merge diverges from serial fold")
	}
}

// BenchmarkAccumFold: the per-report cost the collector pays on the
// ingest path when a live monitor is attached (ccrypt-ish shape: 1710
// counters, 855 two-counter sites, ~1% density).
func BenchmarkAccumFold(b *testing.B) {
	const n = 1710
	spans := make([]SiteSpan, n/2)
	for i := range spans {
		spans[i] = SiteSpan{Base: 2 * i, Len: 2}
	}
	rng := rand.New(rand.NewSource(3))
	reps := make([]*report.Report, 256)
	for i := range reps {
		counters := make([]uint64, n)
		for c := 0; c < n; c++ {
			if rng.Float64() < 0.01 {
				counters[c] = uint64(rng.Intn(5) + 1)
			}
		}
		reps[i] = &report.Report{RunID: uint64(i), Crashed: i%3 == 0, Counters: counters}
		reps[i].Nonzeros() // warm the sparse cache, as decoded reports have it
	}
	acc := NewAccum(n, spans)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := acc.Fold(reps[i%len(reps)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAccumFoldBatchMatchesFold: for a span-free accumulator (the
// collector's AggregateOnly staged-folder configuration), applying
// pre-merged report.BatchStats must be bit-identical to folding each
// report individually — same scores, same internal counts.
func TestAccumFoldBatchMatchesFold(t *testing.T) {
	const n, runs = 24, 211
	rng := rand.New(rand.NewSource(17))
	db := randomDB(rng, runs, n)

	serial := NewAccum(n, nil)
	for _, rep := range db.Reports {
		if err := serial.Fold(rep); err != nil {
			t.Fatal(err)
		}
	}

	batched := NewAccum(n, nil)
	var bs report.BatchStats
	for at := 0; at < runs; {
		end := at + 1 + rng.Intn(16)
		if end > runs {
			end = runs
		}
		bs.Reset(n)
		for _, rep := range db.Reports[at:end] {
			if err := bs.Observe(rep); err != nil {
				t.Fatal(err)
			}
		}
		if err := batched.FoldBatch(&bs); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if batched.Runs != serial.Runs || batched.Failures != serial.Failures ||
		!reflect.DeepEqual(batched.TrueFail, serial.TrueFail) ||
		!reflect.DeepEqual(batched.TrueOK, serial.TrueOK) {
		t.Fatal("batched counts diverge from per-report folds")
	}
	if !reflect.DeepEqual(batched.Predicates(), serial.Predicates()) {
		t.Fatal("batched scores diverge from per-report folds")
	}
}

// TestAccumFoldBatchRequiresNoSpans: Context(P) needs the per-report
// "site observed at all" fact, which a per-counter merge cannot carry —
// a spanned accumulator must refuse the batch path outright rather than
// silently miscount.
func TestAccumFoldBatchRequiresNoSpans(t *testing.T) {
	var bs report.BatchStats
	bs.Reset(4)
	if err := bs.Observe(&report.Report{RunID: 1, Counters: []uint64{1, 0, 2, 0}}); err != nil {
		t.Fatal(err)
	}
	spanned := NewAccum(4, []SiteSpan{{0, 2}, {2, 2}})
	if err := spanned.FoldBatch(&bs); err == nil {
		t.Fatal("FoldBatch with site spans should error")
	}

	// A 0-counter, span-free accumulator adopts the batch's shape.
	empty := NewAccum(0, nil)
	if err := empty.FoldBatch(&bs); err != nil {
		t.Fatal(err)
	}
	if empty.NumCounters != 4 || empty.Runs != 1 || empty.TrueOK[2] != 1 {
		t.Fatalf("batch-adopt got shape %d runs %d", empty.NumCounters, empty.Runs)
	}
	bs.Reset(7)
	if err := empty.FoldBatch(&bs); err == nil {
		t.Fatal("FoldBatch with mismatched shape should error")
	}
}

// TestAccumAdoptShape: a 0-counter accumulator adopts the first report's
// shape (and a merge source's shape), like report.Aggregate.
func TestAccumAdoptShape(t *testing.T) {
	acc := NewAccum(0, nil)
	rep := &report.Report{RunID: 1, Counters: []uint64{0, 2, 1}}
	if err := acc.Fold(rep); err != nil {
		t.Fatal(err)
	}
	if acc.NumCounters != 3 {
		t.Fatalf("adopted shape %d, want 3", acc.NumCounters)
	}
	if err := acc.Fold(&report.Report{RunID: 2, Counters: []uint64{1}}); err == nil {
		t.Fatal("fold with mismatched shape should error")
	}

	empty := NewAccum(0, nil)
	if err := empty.Merge(acc); err != nil {
		t.Fatal(err)
	}
	if empty.NumCounters != 3 || empty.Runs != 1 {
		t.Fatalf("merge-adopt got shape %d runs %d", empty.NumCounters, empty.Runs)
	}
	other := NewAccum(5, nil)
	if err := other.Merge(acc); err == nil {
		t.Fatal("merge with mismatched shape should error")
	}
	badSpans := NewAccum(3, []SiteSpan{{0, 3}})
	if err := badSpans.Merge(acc); err == nil {
		t.Fatal("merge with mismatched span count should error")
	}
}
