// Package traces analyzes the bounded ordered traces (flight recorder)
// that this reproduction adds as the paper's deferred future work (§2.5
// leaves "partial traces (with ordering information)" open). Each report
// may carry the site IDs of the last few sampled probe firings; across
// many runs, sites that disproportionately appear in the final moments of
// crashing runs localize where the program was when it died — the
// crash-context information that pure counters deliberately discard.
package traces

import (
	"sort"

	"cbi/internal/report"
)

// SiteStat summarizes one site's presence in run tails.
type SiteStat struct {
	SiteID int
	// CrashTail / OKTail count runs of each outcome whose trace window
	// contains the site.
	CrashTail int
	OKTail    int
	// CrashFrac and OKFrac are those counts normalized by the number of
	// runs of each outcome that carried a trace at all.
	CrashFrac float64
	OKFrac    float64
	// Score is CrashFrac - OKFrac, the ordering analogue of the Increase
	// score: positive means "being near this site at the end of a run
	// predicts the crash".
	Score float64
}

// Neighborhood computes tail statistics over the last `window` events of
// every traced run (window <= 0 uses each run's full trace).
func Neighborhood(db *report.DB, window int) []SiteStat {
	stats := map[int]*SiteStat{}
	crashRuns, okRuns := 0, 0
	for _, r := range db.Reports {
		if len(r.Trace) == 0 {
			continue
		}
		if r.Crashed {
			crashRuns++
		} else {
			okRuns++
		}
		tail := r.Trace
		if window > 0 && len(tail) > window {
			tail = tail[len(tail)-window:]
		}
		seen := map[int]bool{}
		for _, id := range tail {
			if seen[id] {
				continue
			}
			seen[id] = true
			st := stats[id]
			if st == nil {
				st = &SiteStat{SiteID: id}
				stats[id] = st
			}
			if r.Crashed {
				st.CrashTail++
			} else {
				st.OKTail++
			}
		}
	}
	out := make([]SiteStat, 0, len(stats))
	for _, st := range stats {
		if crashRuns > 0 {
			st.CrashFrac = float64(st.CrashTail) / float64(crashRuns)
		}
		if okRuns > 0 {
			st.OKFrac = float64(st.OKTail) / float64(okRuns)
		}
		st.Score = st.CrashFrac - st.OKFrac
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].SiteID < out[j].SiteID
	})
	return out
}

// LastSites returns, for crashing runs only, how often each site was the
// very last sampled event — the closest ordered approximation to "where
// did it die" available under sampling.
func LastSites(db *report.DB) map[int]int {
	out := map[int]int{}
	for _, r := range db.Reports {
		if !r.Crashed || len(r.Trace) == 0 {
			continue
		}
		out[r.Trace[len(r.Trace)-1]]++
	}
	return out
}
