package traces

import (
	"testing"

	"cbi/internal/instrument"
	"cbi/internal/report"
	"cbi/internal/workloads"
)

func TestNeighborhoodSynthetic(t *testing.T) {
	db := report.NewDB("p", 1)
	add := func(crashed bool, trace ...int) {
		t.Helper()
		if err := db.Add(&report.Report{Program: "p", Crashed: crashed,
			Counters: []uint64{0}, Trace: trace}); err != nil {
			t.Fatal(err)
		}
	}
	// Site 9 ends every crashing run; site 1 is everywhere; site 5 only
	// in successes.
	add(true, 1, 2, 9)
	add(true, 1, 9)
	add(true, 1, 9)
	add(false, 1, 5)
	add(false, 5, 1)
	add(false, 1)

	stats := Neighborhood(db, 0)
	if len(stats) == 0 || stats[0].SiteID != 9 {
		t.Fatalf("top site: %+v", stats)
	}
	if stats[0].Score != 1.0 {
		t.Errorf("site 9 score: %f", stats[0].Score)
	}
	// Site 1 appears in all runs: score 0.
	for _, s := range stats {
		if s.SiteID == 1 && s.Score != 0 {
			t.Errorf("site 1 score: %f", s.Score)
		}
		if s.SiteID == 5 && s.Score >= 0 {
			t.Errorf("site 5 score: %f", s.Score)
		}
	}

	last := LastSites(db)
	if last[9] != 3 || len(last) != 1 {
		t.Errorf("last sites: %v", last)
	}
}

func TestNeighborhoodWindow(t *testing.T) {
	db := report.NewDB("p", 1)
	_ = db.Add(&report.Report{Program: "p", Crashed: true, Counters: []uint64{0},
		Trace: []int{7, 7, 7, 3}})
	stats := Neighborhood(db, 1)
	if len(stats) != 1 || stats[0].SiteID != 3 {
		t.Fatalf("window should keep only the last event: %+v", stats)
	}
}

func TestNeighborhoodIgnoresUntracedRuns(t *testing.T) {
	db := report.NewDB("p", 1)
	_ = db.Add(&report.Report{Program: "p", Crashed: true, Counters: []uint64{0}})
	if got := Neighborhood(db, 0); len(got) != 0 {
		t.Errorf("%+v", got)
	}
	if got := LastSites(db); len(got) != 0 {
		t.Errorf("%+v", got)
	}
}

// Integration: with density-1 sampling and the flight recorder on, the
// last sampled event of every crashing ccrypt run is the EOF xreadline
// return probe — the trace points directly at the death site.
func TestCcryptFlightRecorder(t *testing.T) {
	built, err := workloads.BuildCcrypt(instrument.SchemeSet{Returns: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workloads.CcryptFleet(built.Program, workloads.FleetConfig{
		Runs: 400, Density: 1, SeedBase: 3, TraceCapacity: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Failures()) == 0 {
		t.Fatal("no crashes")
	}
	var gunSite int = -1
	for _, s := range built.Program.Sites {
		if s.Text == "xreadline() return value" {
			gunSite = s.ID
		}
	}
	if gunSite < 0 {
		t.Fatal("xreadline site missing")
	}
	last := LastSites(db)
	if last[gunSite] != len(db.Failures()) {
		t.Errorf("xreadline last in %d of %d crashes: %v", last[gunSite], len(db.Failures()), last)
	}
	// The neighborhood analysis localizes the death region: the top sites
	// must all live in the prompt code (prompt_overwrite or the helpers it
	// calls), and the gun site itself must rank highly with a strong
	// score. Crash-only neighbors may edge out the gun because the gun
	// also fires in successful prompts.
	stats := Neighborhood(db, 4)
	// The region covers the prompt and its caller: the last events before
	// the EOF crash are try_encrypt's file_exists/flag_force probes
	// followed by the prompt's own probes.
	crashRegion := map[string]bool{"prompt_overwrite": true, "classify_response": true, "try_encrypt": true}
	for i, s := range stats[:3] {
		site := built.Program.Sites[s.SiteID]
		if !crashRegion[site.Fn] {
			t.Errorf("top-%d neighborhood site in %s, want the prompt region", i+1, site.Fn)
		}
	}
	rank := -1
	for i, s := range stats {
		if s.SiteID == gunSite {
			rank = i
			break
		}
	}
	if rank < 0 || rank > 4 || stats[rank].Score <= 0.5 {
		t.Errorf("xreadline site rank %d (stats %+v)", rank, stats)
	}
}
