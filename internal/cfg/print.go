package cfg

import (
	"fmt"
	"strings"
)

// DumpProgram renders the whole program's CFG as text.
func DumpProgram(p *Program) string {
	var sb strings.Builder
	for _, fn := range p.FuncList {
		sb.WriteString(DumpFunc(fn))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DumpFunc renders one function's CFG as text, one block per paragraph.
// Threshold checks and countdown operations introduced by the sampling
// transformation are shown explicitly, making the dump a textual analogue
// of the paper's Figure 1 code-layout diagram.
func DumpFunc(fn *Func) string {
	var sb strings.Builder
	attrs := ""
	if fn.Weightless {
		attrs += " [weightless]"
	}
	if fn.LocalCountdown {
		attrs += " [local countdown]"
	}
	fmt.Fprintf(&sb, "func %s (sites=%d)%s:\n", fn.Name, fn.NumSites, attrs)
	for _, b := range fn.Blocks {
		head := fmt.Sprintf("  b%d:", b.ID)
		if b.LoopHead {
			head += " (loop head)"
		}
		sb.WriteString(head + "\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", FormatInstr(in))
		}
		fmt.Fprintf(&sb, "    %s\n", FormatTerm(b.Term))
	}
	return sb.String()
}

// FormatInstr renders a single instruction.
func FormatInstr(in Instr) string {
	switch x := in.(type) {
	case *Assign:
		return fmt.Sprintf("%s = %s", FormatLValue(x.LV), FormatExpr(x.X))
	case *Call:
		dst := ""
		if x.Dst != nil {
			dst = x.Dst.Name + " = "
		}
		var args []string
		for _, a := range x.Args {
			args = append(args, FormatExpr(a))
		}
		return fmt.Sprintf("%s%s(%s)", dst, x.Callee, strings.Join(args, ", "))
	case *SiteInstr:
		return fmt.Sprintf("site#%d %s {%s}", x.Site.ID, x.Site.Kind, x.Site.Text)
	case *GuardedSite:
		return fmt.Sprintf("if (--countdown == 0) { site#%d %s {%s}; countdown = next() }",
			x.Site.ID, x.Site.Kind, x.Site.Text)
	case *CountdownDec:
		return fmt.Sprintf("countdown -= %d", x.N)
	case *CDImport:
		return "countdown = global_countdown"
	case *CDExport:
		return "global_countdown = countdown"
	default:
		return "<unknown instr>"
	}
}

// FormatTerm renders a terminator.
func FormatTerm(t Term) string {
	switch x := t.(type) {
	case *Goto:
		s := fmt.Sprintf("goto b%d", x.To.ID)
		if x.BackEdge {
			s += " (back edge)"
		}
		return s
	case *If:
		return fmt.Sprintf("if %s goto b%d else b%d", FormatExpr(x.Cond), x.Then.ID, x.Else.ID)
	case *Ret:
		if x.X == nil {
			return "return"
		}
		return "return " + FormatExpr(x.X)
	case *Threshold:
		return fmt.Sprintf("if countdown > %d goto b%d (fast) else b%d (slow)",
			x.Weight, x.Fast.ID, x.Slow.ID)
	case nil:
		return "<no terminator>"
	default:
		return "<unknown terminator>"
	}
}

// FormatExpr renders a pure expression.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *Const:
		return fmt.Sprintf("%d", x.V)
	case *StrConst:
		return fmt.Sprintf("%q", x.S)
	case *Null:
		return "null"
	case *VarUse:
		return x.V.Name
	case *Un:
		return x.Op.String() + FormatExpr(x.X)
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.X), x.Op, FormatExpr(x.Y))
	case *Load:
		return fmt.Sprintf("%s[%s]", FormatExpr(x.Ptr), FormatExpr(x.Idx))
	case *NewObj:
		return "new " + x.StructName
	default:
		return "<unknown expr>"
	}
}

// FormatLValue renders an assignment target.
func FormatLValue(lv LValue) string {
	switch x := lv.(type) {
	case *VarRef:
		return x.V.Name
	case *CellRef:
		return fmt.Sprintf("%s[%s]", FormatExpr(x.Ptr), FormatExpr(x.Idx))
	default:
		return "<unknown lvalue>"
	}
}
