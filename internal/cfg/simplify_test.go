package cfg

import (
	"testing"

	"cbi/internal/minic"
)

func TestSimplifyReducesBlockCount(t *testing.T) {
	srcs := []string{
		"int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }",
		"int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2 == 0) { continue; } s++; } return s; }",
		"int f(int c) { if (1) { return c; } return 0; }",
	}
	for _, src := range srcs {
		p := build(t, src)
		fn := p.Funcs["f"]
		before := len(fn.Blocks)
		Simplify(fn)
		after := len(fn.Blocks)
		if after > before {
			t.Errorf("%q: simplify grew blocks %d -> %d", src, before, after)
		}
		// The constant-branch program must lose its dead arm entirely.
		if src == srcs[2] && after >= before {
			t.Errorf("constant fold did not shrink: %d -> %d\n%s", before, after, DumpFunc(fn))
		}
	}
}

func TestSimplifyPreservesLoopHeads(t *testing.T) {
	p := build(t, "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }")
	fn := p.Funcs["f"]
	Simplify(fn)
	heads := 0
	for _, b := range fn.Blocks {
		if b.LoopHead {
			heads++
		}
	}
	if heads != 1 {
		t.Fatalf("loop head lost:\n%s", DumpFunc(fn))
	}
	if len(BackEdges(fn)) != 1 {
		t.Fatalf("back edge lost:\n%s", DumpFunc(fn))
	}
}

func TestSimplifyKeepsThresholdTargets(t *testing.T) {
	// Build a program with a testInstrumenter, hand-run the simplifier on
	// the unsampled form, and verify sites survive.
	f, err := minic.Parse("t.mc", `
int f() { int a = rand(5); int b = rand(7); return a + b; }
int main() { return f(); }
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(f, nil, &testInstrumenter{})
	if err != nil {
		t.Fatal(err)
	}
	SimplifyProgram(p)
	sites := 0
	for _, fn := range p.FuncList {
		sites += len(FuncSites(fn))
	}
	if sites != len(p.Sites) {
		t.Errorf("sites lost by simplify: %d of %d", sites, len(p.Sites))
	}
}
