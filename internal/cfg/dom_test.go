package cfg

import (
	"testing"

	"cbi/internal/minic"
)

func TestDominatorsDiamond(t *testing.T) {
	p := build(t, `
int f(int c) {
	int r = 0;
	if (c) { r = 1; } else { r = 2; }
	return r;
}`)
	fn := p.Funcs["f"]
	d := ComputeDominators(fn)
	entry := fn.Entry
	for _, b := range fn.Blocks {
		if !d.Dominates(entry, b) {
			t.Errorf("entry must dominate b%d", b.ID)
		}
	}
	// The join block (terminating with Ret) is dominated only by itself
	// and the entry — not by either arm.
	var join *Block
	for _, b := range fn.Blocks {
		if _, ok := b.Term.(*Ret); ok {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join")
	}
	if d.Idom(join) != entry {
		t.Errorf("idom(join) = b%d, want entry b%d", d.Idom(join).ID, entry.ID)
	}
	arms := Succs(entry.Term)
	for _, arm := range arms {
		if arm != join && d.Dominates(arm, join) {
			t.Errorf("arm b%d must not dominate the join", arm.ID)
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	p := build(t, `
int f(int n) {
	int s = 0;
	while (n > 0) {
		s += n;
		n--;
	}
	return s;
}`)
	fn := p.Funcs["f"]
	d := ComputeDominators(fn)
	// The loop head dominates the loop body and the back-edge source.
	var head *Block
	for _, b := range fn.Blocks {
		if b.LoopHead {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	byID := map[int]*Block{}
	for _, b := range fn.Blocks {
		byID[b.ID] = b
	}
	for e := range BackEdges(fn) {
		if !d.Dominates(head, byID[e[0]]) {
			t.Errorf("head does not dominate back-edge source b%d", e[0])
		}
	}
}

func TestNaturalLoopsMatchLoweringHeads(t *testing.T) {
	srcs := []string{
		"void f(int n) { while (n) { n--; } }",
		"void f(int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < i; j++) { n += 0; } } }",
		"void f(int n) { while (n) { if (n % 2 == 0) { n -= 2; } else { n--; } } }",
		"int f(int n) { int s = 0; for (;;) { s++; if (s > n) { break; } } return s; }",
	}
	for _, src := range srcs {
		f, err := minic.Parse("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Build(f, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		fn := p.Funcs["f"]
		loops := NaturalLoops(fn)
		headers := map[*Block]bool{}
		for _, l := range loops {
			headers[l.Header] = true
			// Every loop contains its header and the back edge source,
			// and every loop block reaches the header without leaving.
			if !l.Blocks[l.Header] {
				t.Errorf("%q: loop misses its header", src)
			}
			for b := range l.Blocks {
				d := ComputeDominators(fn)
				if !d.Dominates(l.Header, b) {
					t.Errorf("%q: loop block b%d not dominated by header", src, b.ID)
				}
			}
		}
		for _, b := range fn.Blocks {
			if b.LoopHead != headers[b] {
				t.Errorf("%q: b%d LoopHead=%v but natural-loop header=%v\n%s",
					src, b.ID, b.LoopHead, headers[b], DumpFunc(fn))
			}
		}
	}
}

func TestNaturalLoopNesting(t *testing.T) {
	p := build(t, `
void f(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < i; j++) {
			n += 0;
		}
	}
}`)
	fn := p.Funcs["f"]
	loops := NaturalLoops(fn)
	if len(loops) != 2 {
		t.Fatalf("loops: %d", len(loops))
	}
	// One loop contains the other.
	a, b := loops[0], loops[1]
	inner, outer := a, b
	if len(a.Blocks) > len(b.Blocks) {
		inner, outer = b, a
	}
	for blk := range inner.Blocks {
		if !outer.Blocks[blk] {
			t.Errorf("inner block b%d not inside outer loop", blk.ID)
		}
	}
}
