package cfg

// Simplify is a cleanup pass over lowered (or transformed) functions:
//
//  1. jump threading: edges into an empty block whose only content is an
//     unconditional Goto are redirected to its target;
//  2. block merging: a block whose single successor has no other
//     predecessors is fused with it;
//  3. constant branch folding: If terminators with constant conditions
//     become Gotos.
//
// Lowering and the sampling transformation both create empty connector
// blocks (loop exits, short-circuit joins, zero-weight checkpoint stubs);
// removing them reduces interpreter dispatch work for every configuration
// equally, so overhead ratios are unaffected while absolute run time
// improves. The pass never crosses Threshold terminators, whose targets
// are semantically meaningful (fast/slow entry points).
func Simplify(fn *Func) {
	changed := true
	for changed {
		changed = false
		prune(fn) // merge decisions below assume only live blocks remain
		if threadJumps(fn) {
			changed = true
		}
		if foldConstBranches(fn) {
			changed = true
		}
		if mergeBlocks(fn) {
			changed = true
		}
	}
	prune(fn)
}

// SimplifyProgram runs Simplify on every function.
func SimplifyProgram(p *Program) {
	for _, fn := range p.FuncList {
		Simplify(fn)
	}
}

// threadJumps redirects edges that point at empty forwarding blocks.
func threadJumps(fn *Func) bool {
	target := func(b *Block) *Block {
		// Follow chains of empty Goto blocks (bounded to avoid cycles of
		// empty blocks, which structured lowering cannot produce but a
		// hostile CFG could).
		seen := 0
		for len(b.Instrs) == 0 && seen < 64 {
			g, ok := b.Term.(*Goto)
			if !ok || g.To == b {
				break
			}
			// Preserve loop-head identity: the sampling transformation
			// needs back-edge targets intact, so do not thread through
			// loop heads.
			if b.LoopHead {
				break
			}
			b = g.To
			seen++
		}
		return b
	}
	changed := false
	redirect := func(b **Block, back *bool) {
		nt := target(*b)
		if nt != *b {
			// Threading a back edge keeps its back-edge nature only if
			// the new target is the loop head; lowering never creates
			// back edges into empty forwarders, so drop the flag risk by
			// skipping back edges entirely.
			if back != nil && *back {
				return
			}
			*b = nt
			changed = true
		}
	}
	for _, b := range fn.Blocks {
		switch t := b.Term.(type) {
		case *Goto:
			redirect(&t.To, &t.BackEdge)
		case *If:
			redirect(&t.Then, &t.ThenBack)
			redirect(&t.Else, &t.ElseBack)
		case *Threshold:
			// Threshold targets are clone entry points; leave them.
		}
	}
	return changed
}

// foldConstBranches turns If terminators with constant conditions into
// unconditional jumps.
func foldConstBranches(fn *Func) bool {
	changed := false
	for _, b := range fn.Blocks {
		t, ok := b.Term.(*If)
		if !ok {
			continue
		}
		c, ok := t.Cond.(*Const)
		if !ok {
			continue
		}
		if c.V != 0 {
			b.Term = &Goto{To: t.Then, BackEdge: t.ThenBack}
		} else {
			b.Term = &Goto{To: t.Else, BackEdge: t.ElseBack}
		}
		changed = true
	}
	return changed
}

// mergeBlocks fuses straight-line pairs: b -> s where s has exactly one
// predecessor and b's terminator is a plain forward Goto.
func mergeBlocks(fn *Func) bool {
	preds := map[*Block]int{}
	for _, b := range fn.Blocks {
		for _, s := range Succs(b.Term) {
			preds[s]++
		}
	}
	changed := false
	dead := map[*Block]bool{} // blocks fused away this pass
	for _, b := range fn.Blocks {
		if dead[b] {
			continue
		}
		for {
			g, ok := b.Term.(*Goto)
			if !ok || g.BackEdge || g.To == b || g.To == fn.Entry {
				break
			}
			s := g.To
			if preds[s] != 1 || s.LoopHead || dead[s] {
				break
			}
			b.Instrs = append(b.Instrs, s.Instrs...)
			b.Term = s.Term
			s.Instrs = nil
			s.Term = &Ret{} // orphaned; pruned before the next pass
			dead[s] = true
			changed = true
		}
	}
	return changed
}

// prune drops unreachable blocks and renumbers the survivors.
func prune(fn *Func) {
	reach := Reachable(fn)
	var kept []*Block
	for _, b := range fn.Blocks {
		if reach[b] {
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	fn.Blocks = kept
}
