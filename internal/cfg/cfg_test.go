package cfg

import (
	"strings"
	"testing"

	"cbi/internal/minic"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildSimpleFunction(t *testing.T) {
	p := build(t, "int add(int a, int b) { return a + b; }")
	fn := p.Funcs["add"]
	if fn == nil {
		t.Fatal("missing func")
	}
	if len(fn.Params) != 2 || fn.Params[0].Slot != 0 || fn.Params[1].Slot != 1 {
		t.Fatalf("params: %+v", fn.Params)
	}
	if len(fn.Blocks) != 1 {
		t.Fatalf("blocks: %d", len(fn.Blocks))
	}
	ret, ok := fn.Entry.Term.(*Ret)
	if !ok || ret.X == nil {
		t.Fatalf("terminator: %v", FormatTerm(fn.Entry.Term))
	}
}

func TestBuildWhileLoopShape(t *testing.T) {
	p := build(t, "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }")
	fn := p.Funcs["f"]
	back := BackEdges(fn)
	if len(back) != 1 {
		t.Fatalf("back edges: %v", back)
	}
	// The lowering-time BackEdge flags must agree with the DFS analysis.
	flagged := loweringBackEdges(fn)
	if len(flagged) != 1 {
		t.Fatalf("flagged back edges: %v", flagged)
	}
	for e := range back {
		if !flagged[e] {
			t.Errorf("DFS back edge %v not flagged by lowering", e)
		}
	}
	// Exactly one loop head.
	heads := 0
	for _, b := range fn.Blocks {
		if b.LoopHead {
			heads++
		}
	}
	if heads != 1 {
		t.Errorf("loop heads: %d", heads)
	}
}

// loweringBackEdges collects edges flagged BackEdge during lowering.
func loweringBackEdges(fn *Func) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, b := range fn.Blocks {
		switch x := b.Term.(type) {
		case *Goto:
			if x.BackEdge {
				out[[2]int{b.ID, x.To.ID}] = true
			}
		case *If:
			if x.ThenBack {
				out[[2]int{b.ID, x.Then.ID}] = true
			}
			if x.ElseBack {
				out[[2]int{b.ID, x.Else.ID}] = true
			}
		}
	}
	return out
}

func TestBackEdgeFlagsMatchDFSOnManyShapes(t *testing.T) {
	srcs := []string{
		"void f() { while (1) { break; } }",
		"void f(int n) { for (int i = 0; i < n; i++) { if (i % 2 == 0) { continue; } } }",
		"void f(int n) { while (n) { while (n) { n--; } n--; } }",
		"void f(int n) { for (;;) { if (n > 3) { break; } n++; } }",
		"void f(int n) { int i = 0; while (i < n) { int j = 0; while (j < i) { j++; } i++; } }",
		"void f(int a, int b) { while (a && b) { a--; } }",
	}
	for _, src := range srcs {
		p := build(t, src)
		fn := p.Funcs["f"]
		dfs := BackEdges(fn)
		flagged := loweringBackEdges(fn)
		for e := range dfs {
			if !flagged[e] {
				t.Errorf("%q: DFS back edge %v missing from lowering flags\n%s", src, e, DumpFunc(fn))
			}
		}
		for e := range flagged {
			if !dfs[e] {
				t.Errorf("%q: lowering flagged %v but DFS disagrees\n%s", src, e, DumpFunc(fn))
			}
		}
	}
}

func TestBuildForLoopContinueTargetsPost(t *testing.T) {
	// continue in a for loop must execute the post statement; the edge to
	// the post block is a forward edge, and post->head is the back edge.
	p := build(t, "void f(int n) { for (int i = 0; i < n; i++) { if (i == 3) { continue; } } }")
	fn := p.Funcs["f"]
	if len(BackEdges(fn)) != 1 {
		t.Fatalf("want exactly 1 back edge:\n%s", DumpFunc(fn))
	}
}

func TestCallFlattening(t *testing.T) {
	p := build(t, `
int g(int x) { return x + 1; }
int f() { return g(g(1)) + g(2); }
`)
	fn := p.Funcs["f"]
	calls := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok {
				calls++
				if c.Dst == nil {
					t.Error("call result should be materialized")
				}
			}
		}
	}
	if calls != 3 {
		t.Errorf("calls: %d, want 3", calls)
	}
	// The return expression must be pure (no calls).
	ret := fn.Blocks[len(fn.Blocks)-1].Term.(*Ret)
	if _, ok := ret.X.(*Bin); !ok {
		t.Errorf("return expr: %s", FormatExpr(ret.X))
	}
}

func TestShortCircuitLowersToControlFlow(t *testing.T) {
	p := build(t, "int f(int* p) { if (p != null && p[0] > 2) { return 1; } return 0; }")
	fn := p.Funcs["f"]
	if len(fn.Blocks) < 4 {
		t.Fatalf("short circuit should add blocks:\n%s", DumpFunc(fn))
	}
	// No Bin with && anywhere.
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*Assign); ok {
				if hasAndOr(a.X) {
					t.Errorf("&& leaked into pure expr: %s", FormatExpr(a.X))
				}
			}
		}
		if ifTerm, ok := b.Term.(*If); ok && hasAndOr(ifTerm.Cond) {
			t.Errorf("&& leaked into branch cond: %s", FormatExpr(ifTerm.Cond))
		}
	}
}

func hasAndOr(e Expr) bool {
	switch x := e.(type) {
	case *Bin:
		// "&&"/"||" have no BinOp encoding; an un-internable operator
		// would have failed lowering, so only recurse.
		return hasAndOr(x.X) || hasAndOr(x.Y)
	case *Un:
		return hasAndOr(x.X)
	case *Load:
		return hasAndOr(x.Ptr) || hasAndOr(x.Idx)
	}
	return false
}

func TestWeightlessAnalysis(t *testing.T) {
	// With no instrumenter there are no sites, so everything is weightless.
	p := build(t, `
int leaf(int x) { return x * 2; }
int mid(int x) { return leaf(x) + 1; }
int top(int x) { return mid(x); }
`)
	for _, fn := range p.FuncList {
		if !fn.Weightless {
			t.Errorf("%s should be weightless", fn.Name)
		}
	}
}

func TestWeightlessPropagation(t *testing.T) {
	f, err := minic.Parse("t.mc", `
int leaf(int x) { return x * 2; }
int sited() { int r = rand(10); return r; }
int callsSited(int x) { return sited() + leaf(x); }
int callsLeaf(int x) { return leaf(x); }
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(f, nil, &testInstrumenter{})
	if err != nil {
		t.Fatal(err)
	}
	// With the returns scheme every instrumented call is itself a site, so
	// only call-free leaf functions stay weightless (cf. §3.2.5).
	want := map[string]bool{"leaf": true, "sited": false, "callsSited": false, "callsLeaf": false}
	for name, w := range want {
		if p.Funcs[name].Weightless != w {
			t.Errorf("%s: weightless=%v, want %v", name, p.Funcs[name].Weightless, w)
		}
	}
}

// testInstrumenter places a returns-style site after every scalar call.
type testInstrumenter struct{ sites int }

func (ti *testInstrumenter) NeedsReturnValues() bool { return true }
func (ti *testInstrumenter) AfterCall(fn *Func, callee string, ret *minic.Type, dst *Var, pos minic.Pos) []*Site {
	ti.sites++
	return []*Site{{
		Kind: SiteReturns, Fn: fn.Name, Pos: pos,
		Text:        callee + "() return value",
		Args:        []Expr{&VarUse{V: dst}},
		NumCounters: 3, PredNames: []string{"< 0", "== 0", "> 0"},
	}}
}
func (ti *testInstrumenter) AfterAssign(fn *Func, dst *Var, scope []*Var, pos minic.Pos) []*Site {
	return nil
}
func (ti *testInstrumenter) AtBranch(fn *Func, cond Expr, pos minic.Pos) []*Site { return nil }
func (ti *testInstrumenter) AtMemAccess(fn *Func, ptr, idx Expr, pos minic.Pos) []*Site {
	return nil
}
func (ti *testInstrumenter) AtAssert(fn *Func, cond Expr, pos minic.Pos) []*Site { return nil }

func TestSiteRegistration(t *testing.T) {
	f, err := minic.Parse("t.mc", `
int f() { int a = rand(5); int b = rand(7); return a + b; }
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(f, nil, &testInstrumenter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 2 {
		t.Fatalf("sites: %d", len(p.Sites))
	}
	if p.NumCounters != 6 {
		t.Fatalf("counters: %d", p.NumCounters)
	}
	if p.Sites[0].CounterBase != 0 || p.Sites[1].CounterBase != 3 {
		t.Fatalf("bases: %d %d", p.Sites[0].CounterBase, p.Sites[1].CounterBase)
	}
	for c := 0; c < 6; c++ {
		s := p.SiteForCounter(c)
		if s == nil || c < s.CounterBase || c >= s.CounterBase+s.NumCounters {
			t.Errorf("SiteForCounter(%d) = %v", c, s)
		}
	}
	if p.SiteForCounter(6) != nil || p.SiteForCounter(-1) != nil {
		t.Error("out-of-range counters should have no site")
	}
	name := p.PredicateName(4)
	if !strings.Contains(name, "rand() return value == 0") {
		t.Errorf("predicate name: %q", name)
	}
	if p.Funcs["f"].NumSites != 2 {
		t.Errorf("f.NumSites = %d", p.Funcs["f"].NumSites)
	}
	if p.Funcs["f"].Weightless {
		t.Error("f has sites, cannot be weightless")
	}
}

func TestGlobalLowering(t *testing.T) {
	p := build(t, `
int g = 42;
int* buf;
string msg = "hello";
int f() { return g; }
`)
	if len(p.Globals) != 3 {
		t.Fatalf("globals: %d", len(p.Globals))
	}
	if p.Global("g") == nil || p.Global("g").Slot != 0 || !p.Global("g").Global {
		t.Errorf("g: %+v", p.Global("g"))
	}
	if p.Global("nope") != nil {
		t.Error("unexpected global")
	}
}

func TestGlobalInitMustBeLiteral(t *testing.T) {
	f, err := minic.Parse("t.mc", "int g = rand(3);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(f, nil, nil); err == nil {
		t.Error("non-literal global init should fail")
	}
}

func TestLowerGlobalInit(t *testing.T) {
	if c, ok := LowerGlobalInit(&minic.IntLit{Value: 7}).(*Const); !ok || c.V != 7 {
		t.Error("int literal")
	}
	if c, ok := LowerGlobalInit(&minic.UnaryExpr{Op: "-", X: &minic.IntLit{Value: 7}}).(*Const); !ok || c.V != -7 {
		t.Error("negative literal")
	}
	if _, ok := LowerGlobalInit(&minic.NullLit{}).(*Null); !ok {
		t.Error("null literal")
	}
	if s, ok := LowerGlobalInit(&minic.StrLit{Value: "x"}).(*StrConst); !ok || s.S != "x" {
		t.Error("string literal")
	}
}

func TestCompoundAssignToCell(t *testing.T) {
	p := build(t, "void f(int* p, int i) { p[i] += 5; }")
	fn := p.Funcs["f"]
	// Must contain exactly one Assign to a CellRef whose RHS reloads the cell.
	found := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			a, ok := in.(*Assign)
			if !ok {
				continue
			}
			if _, ok := a.LV.(*CellRef); ok {
				found = true
				bin, ok := a.X.(*Bin)
				if !ok || bin.Op != BinAdd {
					t.Errorf("compound rhs: %s", FormatExpr(a.X))
				}
			}
		}
	}
	if !found {
		t.Error("no cell store found")
	}
}

func TestPruneDropsUnreachable(t *testing.T) {
	p := build(t, "int f() { return 1; int x = 2; return x; }")
	fn := p.Funcs["f"]
	if len(fn.Blocks) != 1 {
		t.Fatalf("unreachable code not pruned:\n%s", DumpFunc(fn))
	}
}

func TestDumpContainsStructure(t *testing.T) {
	p := build(t, "int f(int n) { while (n > 0) { n--; } return n; }")
	out := DumpProgram(p)
	for _, want := range []string{"func f", "loop head", "goto", "back edge", "return n"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFieldAccessLowering(t *testing.T) {
	p := build(t, `
struct node { int val; struct node* next; };
int sum(struct node* head) {
	int s = 0;
	while (head != null) {
		s += head->val;
		head = head->next;
	}
	return s;
}
void set(struct node* n) { (*n).val = 9; n->next = null; }
`)
	if p.Structs["node"].Index["next"] != 1 {
		t.Errorf("field index: %+v", p.Structs["node"].Index)
	}
	if p.Funcs["set"] == nil {
		t.Fatal("missing set")
	}
}

func TestReachableAndSuccs(t *testing.T) {
	p := build(t, "int f(int n) { if (n) { return 1; } return 0; }")
	fn := p.Funcs["f"]
	r := Reachable(fn)
	if len(r) != len(fn.Blocks) {
		t.Errorf("reachable %d, blocks %d", len(r), len(fn.Blocks))
	}
	ifTerm := fn.Entry.Term.(*If)
	if len(Succs(ifTerm)) != 2 {
		t.Error("if should have 2 successors")
	}
	if Succs(&Ret{}) != nil {
		t.Error("ret has no successors")
	}
}
