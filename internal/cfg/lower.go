package cfg

import (
	"fmt"

	"cbi/internal/minic"
)

// Instrumenter decides where instrumentation sites go during lowering.
// Package instrument provides implementations for the paper's schemes
// (returns §3.2, scalar-pairs §3.3, bounds/asserts §3.1, branches).
// All methods may return nil to decline a site.
type Instrumenter interface {
	// NeedsReturnValues makes the lowerer materialize discarded scalar call
	// results into temporaries so AfterCall can observe them.
	NeedsReturnValues() bool
	// AfterCall fires after a call that produced a scalar result in dst.
	AfterCall(fn *Func, callee string, ret *minic.Type, dst *Var, pos minic.Pos) []*Site
	// AfterAssign fires after a direct assignment to the named (non-temp)
	// scalar variable dst. scope lists the other visible named variables.
	AfterAssign(fn *Func, dst *Var, scope []*Var, pos minic.Pos) []*Site
	// AtBranch fires before a conditional branch on cond.
	AtBranch(fn *Func, cond Expr, pos minic.Pos) []*Site
	// AtMemAccess fires before a heap load or store of cell ptr[idx].
	AtMemAccess(fn *Func, ptr, idx Expr, pos minic.Pos) []*Site
	// AtAssert may claim a user assert(cond) call as a sampled site.
	// If it returns nil the assert stays an always-on runtime check.
	AtAssert(fn *Func, cond Expr, pos minic.Pos) []*Site
}

// LowerError reports a lowering problem.
type LowerError struct {
	Pos minic.Pos
	Msg string
}

func (e *LowerError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Build checks and lowers a parsed file into a Program. inst may be nil
// for an uninstrumented (baseline) build. builtins may be nil, defaulting
// to minic.DefaultBuiltins().
func Build(file *minic.File, builtins map[string]minic.BuiltinSig, inst Instrumenter) (*Program, error) {
	if builtins == nil {
		builtins = minic.DefaultBuiltins()
	}
	if err := minic.Check(file, builtins); err != nil {
		return nil, err
	}
	p := &Program{
		File:     file,
		Structs:  map[string]*StructInfo{},
		Funcs:    map[string]*Func{},
		Builtins: builtins,
	}
	for _, s := range file.Structs {
		si := &StructInfo{Name: s.Name, Fields: s.Fields, Index: map[string]int{}}
		for i, f := range s.Fields {
			si.Index[f.Name] = i
		}
		p.Structs[s.Name] = si
	}
	for i, g := range file.Globals {
		if g.Init != nil && !isLiteral(g.Init) {
			return nil, &LowerError{Pos: g.Pos, Msg: "global initializer must be a literal"}
		}
		p.Globals = append(p.Globals, &Var{Name: g.Name, Type: g.Type, Slot: i, Global: true})
	}
	for _, fd := range file.Funcs {
		lw := &lowerer{prog: p, file: file, inst: inst}
		fn, err := lw.lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		p.Funcs[fd.Name] = fn
		p.FuncList = append(p.FuncList, fn)
	}
	computeWeightless(p)
	return p, nil
}

func isLiteral(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit, *minic.StrLit, *minic.NullLit:
		return true
	case *minic.UnaryExpr:
		if x.Op == "-" {
			_, ok := x.X.(*minic.IntLit)
			return ok
		}
	}
	return false
}

// LowerGlobalInit converts a (pre-validated) literal global initializer.
func LowerGlobalInit(e minic.Expr) Expr {
	switch x := e.(type) {
	case *minic.IntLit:
		return &Const{V: x.Value}
	case *minic.StrLit:
		return &StrConst{S: x.Value}
	case *minic.NullLit:
		return &Null{}
	case *minic.UnaryExpr:
		if lit, ok := x.X.(*minic.IntLit); ok && x.Op == "-" {
			return &Const{V: -lit.Value}
		}
	}
	return &Const{}
}

// computeWeightless runs the interprocedural weightless-function analysis
// (§2.3): a function is weightless iff it contains no instrumentation
// sites and calls only weightless functions. Builtins are weightless.
func computeWeightless(p *Program) {
	// Start optimistic, then strip until fixpoint.
	for _, fn := range p.FuncList {
		fn.Weightless = fn.NumSites == 0
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range p.FuncList {
			if !fn.Weightless {
				continue
			}
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					call, ok := in.(*Call)
					if !ok || call.Builtin {
						continue
					}
					callee := p.Funcs[call.Callee]
					if callee != nil && !callee.Weightless {
						fn.Weightless = false
						changed = true
					}
				}
			}
		}
	}
}

// ----------------------------------------------------------------------------
// Lowerer

type loopCtx struct {
	continueTo   *Block
	breakTo      *Block
	continueBack bool // continue edge is a back edge (while loops)
}

type lowerer struct {
	prog   *Program
	file   *minic.File
	inst   Instrumenter
	fn     *Func
	cur    *Block
	scopes []map[string]*Var
	loops  []loopCtx
	temps  int
}

var _ minic.TypeEnv = (*lowerer)(nil)

func (lw *lowerer) VarType(name string) *minic.Type {
	if v := lw.lookup(name); v != nil {
		return v.Type
	}
	return nil
}

func (lw *lowerer) StructDecl(name string) *minic.StructDecl { return lw.file.Struct(name) }

func (lw *lowerer) CallRet(name string) *minic.Type {
	if fn := lw.file.Func(name); fn != nil {
		return fn.Ret
	}
	if sig, ok := lw.prog.Builtins[name]; ok {
		return sig.Ret
	}
	return nil
}

func (lw *lowerer) lookup(name string) *Var {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v
		}
	}
	return lw.prog.Global(name)
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: len(lw.fn.Blocks)}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) emit(in Instr) { lw.cur.Instrs = append(lw.cur.Instrs, in) }

func (lw *lowerer) emitSites(sites []*Site) {
	for _, s := range sites {
		lw.prog.registerSite(s)
		lw.fn.NumSites++
		lw.emit(&SiteInstr{Site: s})
	}
}

func (lw *lowerer) seal(t Term) {
	if lw.cur.Term == nil {
		lw.cur.Term = t
	}
}

func (lw *lowerer) declare(name string, t *minic.Type, temp bool) *Var {
	v := &Var{Name: name, Type: t, Slot: len(lw.fn.Locals), Temp: temp}
	lw.fn.Locals = append(lw.fn.Locals, v)
	if !temp {
		lw.scopes[len(lw.scopes)-1][name] = v
	}
	return v
}

func (lw *lowerer) newTemp(t *minic.Type) *Var {
	lw.temps++
	return lw.declare(fmt.Sprintf("%%t%d", lw.temps), t, true)
}

// scopeVars returns the visible named variables (locals inner-to-outer,
// then globals), for the scalar-pairs scheme.
func (lw *lowerer) scopeVars() []*Var {
	var vars []*Var
	seen := map[string]bool{}
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		for _, v := range lw.scopes[i] {
			if !seen[v.Name] {
				seen[v.Name] = true
				vars = append(vars, v)
			}
		}
	}
	// Map iteration order is random; sort locals by slot for determinism.
	sortVarsBySlot(vars)
	for _, g := range lw.prog.Globals {
		if !seen[g.Name] {
			vars = append(vars, g)
		}
	}
	return vars
}

func sortVarsBySlot(vars []*Var) {
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j].Slot < vars[j-1].Slot; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
}

func (lw *lowerer) lowerFunc(fd *minic.FuncDecl) (*Func, error) {
	fn := &Func{Name: fd.Name, Ret: fd.Ret}
	lw.fn = fn
	lw.scopes = []map[string]*Var{{}}
	fn.Entry = lw.newBlock()
	lw.cur = fn.Entry
	for _, p := range fd.Params {
		v := lw.declare(p.Name, p.Type, false)
		fn.Params = append(fn.Params, v)
	}
	if err := lw.lowerBlock(fd.Body); err != nil {
		return nil, err
	}
	lw.seal(&Ret{}) // implicit return at fall-through
	lw.prune()
	return fn, nil
}

// prune drops unreachable blocks and renumbers.
func (lw *lowerer) prune() {
	reach := Reachable(lw.fn)
	var kept []*Block
	for _, b := range lw.fn.Blocks {
		if reach[b] {
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	lw.fn.Blocks = kept
}

func (lw *lowerer) lowerBlock(b *minic.Block) error {
	lw.scopes = append(lw.scopes, map[string]*Var{})
	defer func() { lw.scopes = lw.scopes[:len(lw.scopes)-1] }()
	for _, s := range b.Stmts {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s minic.Stmt) error {
	switch x := s.(type) {
	case *minic.Block:
		return lw.lowerBlock(x)
	case *minic.VarDecl:
		return lw.lowerVarDecl(x)
	case *minic.AssignStmt:
		return lw.lowerAssign(x)
	case *minic.ExprStmt:
		return lw.lowerExprStmt(x)
	case *minic.IfStmt:
		return lw.lowerIf(x)
	case *minic.WhileStmt:
		return lw.lowerWhile(x)
	case *minic.ForStmt:
		return lw.lowerFor(x)
	case *minic.ReturnStmt:
		var e Expr
		if x.X != nil {
			var err error
			e, err = lw.lowerExpr(x.X)
			if err != nil {
				return err
			}
		}
		lw.seal(&Ret{X: e})
		lw.cur = lw.newBlock() // dead code region
		return nil
	case *minic.BreakStmt:
		lc := lw.loops[len(lw.loops)-1]
		lw.seal(&Goto{To: lc.breakTo})
		lw.cur = lw.newBlock()
		return nil
	case *minic.ContinueStmt:
		lc := lw.loops[len(lw.loops)-1]
		lw.seal(&Goto{To: lc.continueTo, BackEdge: lc.continueBack})
		lw.cur = lw.newBlock()
		return nil
	}
	return &LowerError{Msg: "unknown statement"}
}

func (lw *lowerer) lowerVarDecl(x *minic.VarDecl) error {
	// Lower the initializer before declaring, so "int x = x;" cannot see
	// the new variable.
	var init Expr
	if x.Init != nil {
		if call, ok := x.Init.(*minic.CallExpr); ok && call.Callee != "assert" {
			v := lw.declare(x.Name, x.Type, false)
			if err := lw.lowerCallInto(call, v); err != nil {
				return err
			}
			lw.afterAssignHook(v, x.Pos)
			return nil
		}
		var err error
		init, err = lw.lowerExpr(x.Init)
		if err != nil {
			return err
		}
	}
	v := lw.declare(x.Name, x.Type, false)
	if init == nil {
		init = zeroValue(x.Type)
	}
	lw.emit(&Assign{LV: &VarRef{V: v}, X: init, Pos: x.Pos})
	if x.Init != nil {
		lw.afterAssignHook(v, x.Pos)
	}
	return nil
}

func zeroValue(t *minic.Type) Expr {
	if t.IsPointer() || t.Kind == minic.TypeStruct {
		return &Null{}
	}
	if t.Kind == minic.TypeStr {
		return &StrConst{S: ""}
	}
	return &Const{V: 0}
}

func (lw *lowerer) afterAssignHook(v *Var, pos minic.Pos) {
	if lw.inst == nil || v.Temp || !v.Type.IsScalar() {
		return
	}
	lw.emitSites(lw.inst.AfterAssign(lw.fn, v, lw.scopeVars(), pos))
}

func (lw *lowerer) lowerAssign(x *minic.AssignStmt) error {
	// Direct call result into a named variable: v = f(...).
	if id, ok := x.LHS.(*minic.Ident); ok && x.Op == "=" {
		if call, ok := x.RHS.(*minic.CallExpr); ok && call.Callee != "assert" {
			v := lw.lookup(id.Name)
			if v == nil {
				return &LowerError{Pos: id.Pos, Msg: fmt.Sprintf("undefined variable %q", id.Name)}
			}
			if err := lw.lowerCallInto(call, v); err != nil {
				return err
			}
			lw.afterAssignHook(v, x.Pos)
			return nil
		}
	}

	rhs, err := lw.lowerExpr(x.RHS)
	if err != nil {
		return err
	}
	lv, loadLV, v, err := lw.lowerLValue(x.LHS)
	if err != nil {
		return err
	}
	if x.Op != "=" {
		op, ok := BinOpOf(x.Op[:1]) // "+=" -> "+"
		if !ok {
			return &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("unknown compound operator %q", x.Op)}
		}
		rhs = &Bin{Op: op, X: loadLV, Y: rhs, Pos: x.Pos}
	}
	lw.emit(&Assign{LV: lv, X: rhs, Pos: x.Pos})
	if v != nil {
		lw.afterAssignHook(v, x.Pos)
	}
	return nil
}

// lowerLValue lowers an assignment target. It returns the LValue, an
// equivalent load expression (for compound assignments), and the target
// Var when the target is a plain variable.
func (lw *lowerer) lowerLValue(e minic.Expr) (LValue, Expr, *Var, error) {
	switch x := e.(type) {
	case *minic.Ident:
		v := lw.lookup(x.Name)
		if v == nil {
			return nil, nil, nil, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("undefined variable %q", x.Name)}
		}
		return &VarRef{V: v}, &VarUse{V: v}, v, nil
	case *minic.IndexExpr:
		ptr, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, nil, nil, err
		}
		idx, err := lw.lowerExpr(x.I)
		if err != nil {
			return nil, nil, nil, err
		}
		ptr, idx = lw.materialize(ptr, minicPtrType(lw, x.X)), lw.materializeInt(idx)
		lw.memAccessHook(ptr, idx, x.Pos)
		return &CellRef{Ptr: ptr, Idx: idx, Pos: x.Pos}, &Load{Ptr: ptr, Idx: idx, Pos: x.Pos}, nil, nil
	case *minic.UnaryExpr: // *p = ...
		ptr, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, nil, nil, err
		}
		ptr = lw.materialize(ptr, minicPtrType(lw, x.X))
		idx := Expr(&Const{V: 0})
		lw.memAccessHook(ptr, idx, x.Pos)
		return &CellRef{Ptr: ptr, Idx: idx, Pos: x.Pos}, &Load{Ptr: ptr, Idx: idx, Pos: x.Pos}, nil, nil
	case *minic.FieldExpr:
		ptr, fieldIdx, err := lw.lowerFieldBase(x)
		if err != nil {
			return nil, nil, nil, err
		}
		ptr = lw.materialize(ptr, nil)
		idx := Expr(&Const{V: int64(fieldIdx)})
		lw.memAccessHook(ptr, idx, x.Pos)
		return &CellRef{Ptr: ptr, Idx: idx, Pos: x.Pos}, &Load{Ptr: ptr, Idx: idx, Pos: x.Pos}, nil, nil
	}
	return nil, nil, nil, &LowerError{Pos: e.ExprPos(), Msg: "not an lvalue"}
}

func minicPtrType(lw *lowerer, e minic.Expr) *minic.Type {
	t, err := minic.TypeOfExpr(e, lw)
	if err != nil {
		return nil
	}
	return t
}

// materialize ensures the expression is a trivially re-evaluable atom
// (variable or constant), assigning it to a temp otherwise. Used when an
// expression will be evaluated more than once (compound assignment,
// memory-access probes).
func (lw *lowerer) materialize(e Expr, t *minic.Type) Expr {
	switch e.(type) {
	case *VarUse, *Const, *StrConst, *Null:
		return e
	}
	if t == nil {
		t = minic.PtrTo(minic.IntType)
	}
	v := lw.newTemp(t)
	lw.emit(&Assign{LV: &VarRef{V: v}, X: e})
	return &VarUse{V: v}
}

func (lw *lowerer) materializeInt(e Expr) Expr { return lw.materialize(e, minic.IntType) }

func (lw *lowerer) memAccessHook(ptr, idx Expr, pos minic.Pos) {
	if lw.inst == nil {
		return
	}
	lw.emitSites(lw.inst.AtMemAccess(lw.fn, ptr, idx, pos))
}

func (lw *lowerer) lowerExprStmt(x *minic.ExprStmt) error {
	call, ok := x.X.(*minic.CallExpr)
	if !ok {
		// Pure expression statement: evaluate for effect-free value.
		e, err := lw.lowerExpr(x.X)
		if err != nil {
			return err
		}
		_ = e // no effect; traps were the only observable behaviour
		return nil
	}
	if call.Callee == "assert" {
		return lw.lowerAssert(call)
	}
	ret := lw.CallRet(call.Callee)
	var dst *Var
	if ret != nil && ret.IsScalar() && lw.inst != nil && lw.inst.NeedsReturnValues() {
		dst = lw.newTemp(ret)
	}
	return lw.lowerCallInto(call, dst)
}

func (lw *lowerer) lowerAssert(call *minic.CallExpr) error {
	cond, err := lw.lowerExpr(call.Args[0])
	if err != nil {
		return err
	}
	if lw.inst != nil {
		if sites := lw.inst.AtAssert(lw.fn, cond, call.Pos); len(sites) > 0 {
			lw.emitSites(sites)
			return nil
		}
	}
	lw.emit(&Call{Callee: "assert", Args: []Expr{cond}, Builtin: true, Pos: call.Pos})
	return nil
}

// lowerCallInto lowers a call storing the result in dst (nil to discard),
// firing the AfterCall hook.
func (lw *lowerer) lowerCallInto(call *minic.CallExpr, dst *Var) error {
	if ret := lw.CallRet(call.Callee); dst != nil && (ret == nil || ret.Kind == minic.TypeVoid) {
		return &LowerError{Pos: call.Pos, Msg: fmt.Sprintf("void call %q used as value", call.Callee)}
	}
	var args []Expr
	for _, a := range call.Args {
		e, err := lw.lowerExpr(a)
		if err != nil {
			return err
		}
		args = append(args, e)
	}
	_, isBuiltin := lw.prog.Builtins[call.Callee]
	lw.emit(&Call{Dst: dst, Callee: call.Callee, Args: args, Builtin: isBuiltin, Pos: call.Pos})
	ret := lw.CallRet(call.Callee)
	if lw.inst != nil && dst != nil && ret != nil && ret.IsScalar() {
		lw.emitSites(lw.inst.AfterCall(lw.fn, call.Callee, ret, dst, call.Pos))
	}
	return nil
}

func (lw *lowerer) lowerIf(x *minic.IfStmt) error {
	cond, err := lw.lowerExpr(x.Cond)
	if err != nil {
		return err
	}
	if lw.inst != nil {
		lw.emitSites(lw.inst.AtBranch(lw.fn, cond, x.Pos))
	}
	thenB := lw.newBlock()
	elseB := lw.newBlock()
	exit := elseB
	if x.Else != nil {
		exit = lw.newBlock()
	}
	lw.seal(&If{Cond: cond, Then: thenB, Else: elseB})
	lw.cur = thenB
	if err := lw.lowerStmt(x.Then); err != nil {
		return err
	}
	lw.seal(&Goto{To: exit})
	if x.Else != nil {
		lw.cur = elseB
		if err := lw.lowerStmt(x.Else); err != nil {
			return err
		}
		lw.seal(&Goto{To: exit})
	}
	lw.cur = exit
	return nil
}

func (lw *lowerer) lowerWhile(x *minic.WhileStmt) error {
	head := lw.newBlock()
	head.LoopHead = true
	lw.seal(&Goto{To: head})
	lw.cur = head
	cond, err := lw.lowerExpr(x.Cond)
	if err != nil {
		return err
	}
	if lw.inst != nil {
		lw.emitSites(lw.inst.AtBranch(lw.fn, cond, x.Pos))
	}
	body := lw.newBlock()
	exit := lw.newBlock()
	lw.seal(&If{Cond: cond, Then: body, Else: exit})
	lw.loops = append(lw.loops, loopCtx{continueTo: head, breakTo: exit, continueBack: true})
	lw.cur = body
	if err := lw.lowerStmt(x.Body); err != nil {
		return err
	}
	lw.seal(&Goto{To: head, BackEdge: true})
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = exit
	return nil
}

func (lw *lowerer) lowerFor(x *minic.ForStmt) error {
	lw.scopes = append(lw.scopes, map[string]*Var{})
	defer func() { lw.scopes = lw.scopes[:len(lw.scopes)-1] }()
	if x.Init != nil {
		if err := lw.lowerStmt(x.Init); err != nil {
			return err
		}
	}
	head := lw.newBlock()
	head.LoopHead = true
	lw.seal(&Goto{To: head})
	lw.cur = head
	body := lw.newBlock()
	exit := lw.newBlock()
	if x.Cond != nil {
		cond, err := lw.lowerExpr(x.Cond)
		if err != nil {
			return err
		}
		if lw.inst != nil {
			lw.emitSites(lw.inst.AtBranch(lw.fn, cond, x.Pos))
		}
		lw.seal(&If{Cond: cond, Then: body, Else: exit})
	} else {
		lw.seal(&Goto{To: body})
	}
	post := lw.newBlock()
	lw.loops = append(lw.loops, loopCtx{continueTo: post, breakTo: exit})
	lw.cur = body
	if err := lw.lowerStmt(x.Body); err != nil {
		return err
	}
	lw.seal(&Goto{To: post})
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = post
	if x.Post != nil {
		if err := lw.lowerStmt(x.Post); err != nil {
			return err
		}
	}
	lw.seal(&Goto{To: head, BackEdge: true})
	lw.cur = exit
	return nil
}

// ----------------------------------------------------------------------------
// Expressions

func (lw *lowerer) lowerExpr(e minic.Expr) (Expr, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return &Const{V: x.Value}, nil
	case *minic.StrLit:
		return &StrConst{S: x.Value}, nil
	case *minic.NullLit:
		return &Null{}, nil
	case *minic.Ident:
		v := lw.lookup(x.Name)
		if v == nil {
			return nil, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("undefined variable %q", x.Name)}
		}
		return &VarUse{V: v}, nil
	case *minic.UnaryExpr:
		if x.Op == "*" {
			ptr, err := lw.lowerExpr(x.X)
			if err != nil {
				return nil, err
			}
			ptr = lw.materialize(ptr, minicPtrType(lw, x.X))
			idx := Expr(&Const{V: 0})
			lw.memAccessHook(ptr, idx, x.Pos)
			return &Load{Ptr: ptr, Idx: idx, Pos: x.Pos}, nil
		}
		sub, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		op, ok := UnOpOf(x.Op)
		if !ok {
			return nil, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("unknown unary operator %q", x.Op)}
		}
		return &Un{Op: op, X: sub}, nil
	case *minic.BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			return lw.lowerShortCircuit(x)
		}
		a, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		b, err := lw.lowerExpr(x.Y)
		if err != nil {
			return nil, err
		}
		op, ok := BinOpOf(x.Op)
		if !ok {
			return nil, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("unknown operator %q", x.Op)}
		}
		return &Bin{Op: op, X: a, Y: b, Pos: x.Pos}, nil
	case *minic.CallExpr:
		if x.Callee == "assert" {
			if err := lw.lowerAssert(x); err != nil {
				return nil, err
			}
			return &Const{V: 0}, nil
		}
		ret := lw.CallRet(x.Callee)
		if ret == nil || ret.Kind == minic.TypeVoid {
			return nil, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("void call %q used as value", x.Callee)}
		}
		dst := lw.newTemp(ret)
		if err := lw.lowerCallInto(x, dst); err != nil {
			return nil, err
		}
		return &VarUse{V: dst}, nil
	case *minic.IndexExpr:
		ptr, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := lw.lowerExpr(x.I)
		if err != nil {
			return nil, err
		}
		ptr = lw.materialize(ptr, minicPtrType(lw, x.X))
		idx = lw.materializeInt(idx)
		lw.memAccessHook(ptr, idx, x.Pos)
		return &Load{Ptr: ptr, Idx: idx, Pos: x.Pos}, nil
	case *minic.FieldExpr:
		ptr, fieldIdx, err := lw.lowerFieldBase(x)
		if err != nil {
			return nil, err
		}
		ptr = lw.materialize(ptr, nil)
		idx := Expr(&Const{V: int64(fieldIdx)})
		lw.memAccessHook(ptr, idx, x.Pos)
		return &Load{Ptr: ptr, Idx: idx, Pos: x.Pos}, nil
	case *minic.NewExpr:
		si := lw.prog.Structs[x.StructName]
		if si == nil {
			return nil, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("unknown struct %q", x.StructName)}
		}
		return &NewObj{StructName: x.StructName, NumFields: len(si.Fields)}, nil
	}
	return nil, &LowerError{Msg: "unknown expression"}
}

// lowerFieldBase resolves p->f and (*p).f to a base pointer expression and
// a field index.
func (lw *lowerer) lowerFieldBase(x *minic.FieldExpr) (Expr, int, error) {
	base := x.X
	if !x.Arrow {
		un, ok := base.(*minic.UnaryExpr)
		if !ok || un.Op != "*" {
			return nil, 0, &LowerError{Pos: x.Pos, Msg: "field access requires a pointer (use -> or (*p).f)"}
		}
		base = un.X
	}
	bt, err := minic.TypeOfExpr(base, lw)
	if err != nil {
		return nil, 0, err
	}
	if !bt.IsPointer() || bt.Elem.Kind != minic.TypeStruct {
		return nil, 0, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("field access on non struct pointer %s", bt)}
	}
	si := lw.prog.Structs[bt.Elem.StructName]
	if si == nil {
		return nil, 0, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("unknown struct %q", bt.Elem.StructName)}
	}
	idx, ok := si.Index[x.Name]
	if !ok {
		return nil, 0, &LowerError{Pos: x.Pos, Msg: fmt.Sprintf("struct %s has no field %q", si.Name, x.Name)}
	}
	ptr, err := lw.lowerExpr(base)
	if err != nil {
		return nil, 0, err
	}
	return ptr, idx, nil
}

// lowerShortCircuit expands && and || into control flow so that the right
// operand is only evaluated when needed (it may trap or call).
func (lw *lowerer) lowerShortCircuit(x *minic.BinaryExpr) (Expr, error) {
	res := lw.newTemp(minic.IntType)
	a, err := lw.lowerExpr(x.X)
	if err != nil {
		return nil, err
	}
	rhsB := lw.newBlock()
	exit := lw.newBlock()
	if x.Op == "&&" {
		lw.emit(&Assign{LV: &VarRef{V: res}, X: &Const{V: 0}})
		lw.seal(&If{Cond: a, Then: rhsB, Else: exit})
	} else {
		lw.emit(&Assign{LV: &VarRef{V: res}, X: &Const{V: 1}})
		lw.seal(&If{Cond: a, Then: exit, Else: rhsB})
	}
	lw.cur = rhsB
	b, err := lw.lowerExpr(x.Y)
	if err != nil {
		return nil, err
	}
	lw.emit(&Assign{LV: &VarRef{V: res}, X: &Un{Op: UnNot, X: &Un{Op: UnNot, X: b}}})
	lw.seal(&Goto{To: exit})
	lw.cur = exit
	return &VarUse{V: res}, nil
}
