package cfg

// Dominator analysis and natural-loop detection. The paper notes that
// optimal threshold-check placement is NP-hard and settles for function
// entries plus loop back edges (§2.2); these analyses provide the
// classical machinery that justifies that placement: a back edge u→h with
// h dominating u delimits a natural loop, and placing one check at every
// such h guarantees every cycle is cut.
//
// The implementation is the Cooper–Harvey–Kennedy iterative algorithm on
// a reverse-postorder numbering.

// Dominators holds immediate-dominator information for one function.
type Dominators struct {
	fn    *Func
	rpo   []*Block       // reverse postorder, entry first
	order map[*Block]int // block -> rpo index
	idom  map[*Block]*Block
}

// ComputeDominators builds the dominator tree of fn's reachable blocks.
func ComputeDominators(fn *Func) *Dominators {
	d := &Dominators{fn: fn, order: map[*Block]int{}, idom: map[*Block]*Block{}}

	// Postorder DFS, then reverse.
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range Succs(b.Term) {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if fn.Entry == nil {
		return d
	}
	dfs(fn.Entry)
	for i := len(post) - 1; i >= 0; i-- {
		d.order[post[i]] = len(d.rpo)
		d.rpo = append(d.rpo, post[i])
	}

	preds := map[*Block][]*Block{}
	for _, b := range d.rpo {
		for _, s := range Succs(b.Term) {
			preds[s] = append(preds[s], b)
		}
	}

	d.idom[fn.Entry] = fn.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *Block
			for _, p := range preds[b] {
				if d.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *Block) *Block {
	for a != b {
		for d.order[a] > d.order[b] {
			a = d.idom[a]
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator (the entry dominates itself).
func (d *Dominators) Idom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (d *Dominators) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		parent := d.idom[b]
		if parent == nil || parent == b {
			return false
		}
		b = parent
	}
}

// Loop is a natural loop: the blocks reachable backwards from a back
// edge's source without leaving the header's dominance region.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
}

// NaturalLoops finds the natural loops of fn. Back edges whose target
// does not dominate their source (irreducible control flow) are skipped;
// MiniC's structured lowering never produces them.
func NaturalLoops(fn *Func) []*Loop {
	d := ComputeDominators(fn)
	byHeader := map[*Block]*Loop{}
	var headers []*Block
	byID := map[int]*Block{}
	for _, b := range fn.Blocks {
		byID[b.ID] = b
	}
	for e := range BackEdges(fn) {
		src, hdr := byID[e[0]], byID[e[1]]
		if src == nil || hdr == nil || !d.Dominates(hdr, src) {
			continue
		}
		loop := byHeader[hdr]
		if loop == nil {
			loop = &Loop{Header: hdr, Blocks: map[*Block]bool{hdr: true}}
			byHeader[hdr] = loop
			headers = append(headers, hdr)
		}
		// Walk predecessors from the back edge source up to the header.
		preds := predecessors(fn)
		stack := []*Block{src}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if loop.Blocks[b] {
				continue
			}
			loop.Blocks[b] = true
			for _, p := range preds[b] {
				stack = append(stack, p)
			}
		}
	}
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// predecessors builds the reverse adjacency of fn's blocks.
func predecessors(fn *Func) map[*Block][]*Block {
	preds := map[*Block][]*Block{}
	for _, b := range fn.Blocks {
		for _, s := range Succs(b.Term) {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}
