// Package cfg lowers MiniC ASTs to control-flow graphs and provides the
// graph analyses the sampling transformation depends on: back-edge
// detection, reachability, and site accounting.
//
// The CFG is the representation the paper's transformation is defined on:
// instrumentation sites are explicit instructions, loops are explicit back
// edges, and the sampling transformation (package instrument) rewrites
// these graphs into fast-path/slow-path clones joined by threshold checks.
package cfg

import (
	"fmt"

	"cbi/internal/minic"
)

// ----------------------------------------------------------------------------
// Program structure

// Program is a whole lowered program.
type Program struct {
	File     *minic.File
	Structs  map[string]*StructInfo
	Globals  []*Var // global variables, slot-indexed
	Funcs    map[string]*Func
	FuncList []*Func // deterministic declaration order
	Builtins map[string]minic.BuiltinSig

	// Sites lists every instrumentation site in counter-allocation order.
	Sites []*Site
	// NumCounters is the total size of a run's counter vector.
	NumCounters int

	// Sampled reports whether the sampling transformation has been applied
	// (package instrument sets this).
	Sampled bool
}

// StructInfo is the lowered layout of a struct: fields become consecutive
// heap cells.
type StructInfo struct {
	Name   string
	Fields []minic.Field
	Index  map[string]int
}

// Func is a lowered function.
type Func struct {
	Name   string
	Params []*Var
	Locals []*Var // all locals including params and temps, slot-indexed
	Ret    *minic.Type
	Entry  *Block
	Blocks []*Block

	// NumSites counts instrumentation sites directly contained in the body.
	NumSites int
	// Weightless is set by the weightless-function analysis (§2.3): the
	// function contains no sites and calls only weightless functions.
	Weightless bool
	// LocalCountdown is set by the sampling transformation when the
	// function maintains the next-sample countdown in a frame-local
	// variable (§2.4).
	LocalCountdown bool
	// ThresholdWeights records the weight of every threshold check placed
	// in this function by the sampling transformation, for static metrics
	// (Table 1).
	ThresholdWeights []int
}

// Var is a variable: a global, a named local/parameter, or a compiler
// temporary.
type Var struct {
	Name   string
	Type   *minic.Type
	Slot   int
	Global bool
	Temp   bool
}

func (v *Var) String() string { return v.Name }

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term
	// LoopHead marks targets of back edges created by loop lowering.
	LoopHead bool
}

// ----------------------------------------------------------------------------
// Instructions

// Instr is a non-terminator instruction.
type Instr interface{ instr() }

// Assign stores the value of X into LV.
type Assign struct {
	LV  LValue
	X   Expr
	Pos minic.Pos
}

// Call invokes a function or builtin. Dst receives the result and may be
// nil for void calls or discarded results. Args are pure expressions.
type Call struct {
	Dst     *Var
	Callee  string
	Args    []Expr
	Builtin bool
	Pos     minic.Pos
}

// SiteInstr executes an instrumentation probe unconditionally. This is the
// form produced by lowering; the sampling transformation replaces it with
// GuardedSite (slow path) and CountdownDec (fast path).
type SiteInstr struct {
	Site *Site
}

// GuardedSite is a slow-path probe: decrement the next-sample countdown
// and, if it reaches zero, execute the probe and reset the countdown from
// the geometric bank (§2.1).
type GuardedSite struct {
	Site *Site
}

// CountdownDec decrements the next-sample countdown by N without sampling.
// The transformation coalesces consecutive fast-path decrements into a
// single instruction (§2.4).
type CountdownDec struct {
	N int
}

// CDImport copies the global next-sample countdown into the frame-local
// copy (§2.4: at function entry and after calls to non-weightless callees).
type CDImport struct{}

// CDExport copies the frame-local countdown back to the global (§2.4: at
// function exit and before calls to non-weightless callees).
type CDExport struct{}

func (*Assign) instr()       {}
func (*Call) instr()         {}
func (*SiteInstr) instr()    {}
func (*GuardedSite) instr()  {}
func (*CountdownDec) instr() {}
func (*CDImport) instr()     {}
func (*CDExport) instr()     {}

// ----------------------------------------------------------------------------
// Terminators

// Term is a block terminator.
type Term interface{ term() }

// Goto transfers control unconditionally. BackEdge marks loop back edges.
type Goto struct {
	To       *Block
	BackEdge bool
}

// If branches on a pure condition.
type If struct {
	Cond     Expr
	Then     *Block
	Else     *Block
	ThenBack bool
	ElseBack bool
}

// Ret returns from the function. X may be nil.
type Ret struct {
	X Expr
}

// Threshold is the paper's threshold check (§2.2): if the next-sample
// countdown exceeds Weight, no sample can land in the acyclic region
// ahead, so execution proceeds on the instrumentation-free fast path.
type Threshold struct {
	Weight int
	Fast   *Block
	Slow   *Block
}

func (*Goto) term()      {}
func (*If) term()        {}
func (*Ret) term()       {}
func (*Threshold) term() {}

// Succs returns the successor blocks of t.
func Succs(t Term) []*Block {
	switch x := t.(type) {
	case *Goto:
		return []*Block{x.To}
	case *If:
		return []*Block{x.Then, x.Else}
	case *Threshold:
		return []*Block{x.Fast, x.Slow}
	default:
		return nil
	}
}

// ----------------------------------------------------------------------------
// Pure expressions

// Expr is a side-effect-free expression. Calls never appear here: the
// lowerer flattens them into Call instructions with temporaries. Pure
// expressions may still trap (null dereference, out-of-bounds, division
// by zero).
type Expr interface{ expr() }

// Const is an integer constant.
type Const struct{ V int64 }

// StrConst is a string constant.
type StrConst struct{ S string }

// Null is the null pointer.
type Null struct{}

// VarUse reads a variable.
type VarUse struct{ V *Var }

// UnOp is a typed unary operator. Operator spellings are interned to
// these enums at CFG-build time so the interpreters dispatch on a small
// integer instead of comparing strings on every step.
type UnOp uint8

const (
	UnNeg UnOp = iota // -
	UnNot             // !
)

// String returns the source spelling, for the printer and diagnostics.
func (op UnOp) String() string {
	if op == UnNeg {
		return "-"
	}
	return "!"
}

// UnOpOf interns a MiniC unary operator spelling.
func UnOpOf(s string) (UnOp, bool) {
	switch s {
	case "-":
		return UnNeg, true
	case "!":
		return UnNot, true
	}
	return 0, false
}

// BinOp is a typed binary operator.
type BinOp uint8

const (
	BinAdd BinOp = iota // +
	BinSub              // -
	BinMul              // *
	BinDiv              // /
	BinMod              // %
	BinEq               // ==
	BinNe               // !=
	BinLt               // <
	BinLe               // <=
	BinGt               // >
	BinGe               // >=
)

var binOpNames = [...]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinMod: "%",
	BinEq: "==", BinNe: "!=", BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=",
}

// String returns the source spelling, for the printer and diagnostics.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "?"
}

// IsComparison reports whether the operator yields a boolean.
func (op BinOp) IsComparison() bool { return op >= BinEq }

// BinOpOf interns a MiniC binary operator spelling ("&&" and "||" are not
// binary operators at this level; the lowerer expands them).
func BinOpOf(s string) (BinOp, bool) {
	for op, name := range binOpNames {
		if name == s {
			return BinOp(op), true
		}
	}
	return 0, false
}

// Un applies "-" or "!".
type Un struct {
	Op UnOp
	X  Expr
}

// Bin applies an arithmetic or comparison operator. "&&" and "||" never
// appear: the lowerer expands them to control flow to preserve
// short-circuit evaluation.
type Bin struct {
	Op   BinOp
	X, Y Expr
	Pos  minic.Pos
}

// Load reads heap cell Ptr[Idx]. Dereference *p lowers to Load{p, 0}.
type Load struct {
	Ptr Expr
	Idx Expr
	Pos minic.Pos
}

// NewObj allocates a struct instance with NumFields cells.
type NewObj struct {
	StructName string
	NumFields  int
}

func (*Const) expr()    {}
func (*StrConst) expr() {}
func (*Null) expr()     {}
func (*VarUse) expr()   {}
func (*Un) expr()       {}
func (*Bin) expr()      {}
func (*Load) expr()     {}
func (*NewObj) expr()   {}

// ----------------------------------------------------------------------------
// LValues

// LValue is an assignment target.
type LValue interface{ lvalue() }

// VarRef targets a variable.
type VarRef struct{ V *Var }

// CellRef targets heap cell Ptr[Idx]; field stores and *p stores lower
// here too.
type CellRef struct {
	Ptr Expr
	Idx Expr
	Pos minic.Pos
}

func (*VarRef) lvalue()  {}
func (*CellRef) lvalue() {}

// ----------------------------------------------------------------------------
// Instrumentation sites

// SiteKind classifies instrumentation sites by probe semantics.
type SiteKind int

const (
	// SiteReturns observes the sign of a function return value
	// (§3.2.1): three counters for < 0, == 0, > 0.
	SiteReturns SiteKind = iota
	// SiteScalarPair compares a just-assigned scalar against another
	// in-scope scalar (§3.3.1): three counters for <, ==, >.
	SiteScalarPair
	// SiteNullCheck compares a just-assigned pointer against null
	// (§3.3.1): two counters for == null, != null.
	SiteNullCheck
	// SiteBranch observes a branch condition: two counters for
	// false, true. (A later-CBI extension scheme.)
	SiteBranch
	// SiteBounds is a CCured-style memory-safety check before a heap
	// access (§3.1): two counters for null-pointer and out-of-bounds.
	SiteBounds
	// SiteAssert samples a user assert() call (§3.1): two counters for
	// held, violated. A violated assertion traps the run.
	SiteAssert
)

// String returns the scheme name of the kind.
func (k SiteKind) String() string {
	switch k {
	case SiteReturns:
		return "returns"
	case SiteScalarPair:
		return "scalar-pairs"
	case SiteNullCheck:
		return "null-check"
	case SiteBranch:
		return "branches"
	case SiteBounds:
		return "bounds"
	case SiteAssert:
		return "asserts"
	default:
		return "unknown"
	}
}

// Site is one instrumentation site: a probe with a fixed number of
// counters starting at CounterBase in the run's counter vector.
type Site struct {
	ID          int
	Kind        SiteKind
	Fn          string
	Pos         minic.Pos
	Text        string // human-readable subject, e.g. "xreadline() return value"
	Args        []Expr // pure expressions evaluated when the probe fires
	CounterBase int
	NumCounters int
	PredNames   []string // one per counter, e.g. "== 0"
}

// PredicateName returns the full name of the site's i-th predicate in the
// paper's reporting style: "file.mc:122: xreadline() return value == 0".
func (s *Site) PredicateName(i int) string {
	suffix := ""
	if i >= 0 && i < len(s.PredNames) {
		suffix = " " + s.PredNames[i]
	}
	return fmt.Sprintf("%s: %s(): %s%s", s.Pos.LineString(), s.Fn, s.Text, suffix)
}

// PredicateName resolves a counter index to its predicate name.
func (p *Program) PredicateName(counter int) string {
	s := p.SiteForCounter(counter)
	if s == nil {
		return fmt.Sprintf("counter#%d", counter)
	}
	return s.PredicateName(counter - s.CounterBase)
}

// SiteForCounter returns the site owning the given counter index, or nil.
func (p *Program) SiteForCounter(counter int) *Site {
	// Sites are allocated in order; binary search.
	lo, hi := 0, len(p.Sites)
	for lo < hi {
		mid := (lo + hi) / 2
		s := p.Sites[mid]
		switch {
		case counter < s.CounterBase:
			hi = mid
		case counter >= s.CounterBase+s.NumCounters:
			lo = mid + 1
		default:
			return s
		}
	}
	return nil
}

// registerSite assigns the site its ID and counter range.
func (p *Program) registerSite(s *Site) {
	s.ID = len(p.Sites)
	s.CounterBase = p.NumCounters
	p.NumCounters += s.NumCounters
	p.Sites = append(p.Sites, s)
}

// Global returns the global variable with the given name, or nil.
func (p *Program) Global(name string) *Var {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// ----------------------------------------------------------------------------
// Graph analyses

// BackEdges computes the back edges of fn by depth-first search from the
// entry block: an edge u->v is a back edge if v is on the current DFS
// stack. This is independent of the lowering-time BackEdge flags and is
// used to verify them and to place threshold checks.
func BackEdges(fn *Func) map[[2]int]bool {
	back := map[[2]int]bool{}
	state := make(map[*Block]int) // 0 unvisited, 1 on stack, 2 done
	var dfs func(b *Block)
	dfs = func(b *Block) {
		state[b] = 1
		for _, s := range Succs(b.Term) {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				back[[2]int{b.ID, s.ID}] = true
			}
		}
		state[b] = 2
	}
	if fn.Entry != nil {
		dfs(fn.Entry)
	}
	return back
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(fn *Func) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range Succs(b.Term) {
			walk(s)
		}
	}
	walk(fn.Entry)
	return seen
}

// CountSites returns the number of SiteInstr/GuardedSite instructions in b.
func CountSites(b *Block) int {
	n := 0
	for _, in := range b.Instrs {
		switch in.(type) {
		case *SiteInstr, *GuardedSite:
			n++
		}
	}
	return n
}

// FuncSites returns all sites referenced by fn's blocks, in block order.
func FuncSites(fn *Func) []*Site {
	var sites []*Site
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *SiteInstr:
				sites = append(sites, x.Site)
			case *GuardedSite:
				sites = append(sites, x.Site)
			}
		}
	}
	return sites
}
