package cfg

import (
	"strings"
	"testing"

	"cbi/internal/minic"
)

func TestFormatInstrAllKinds(t *testing.T) {
	v := &Var{Name: "x", Slot: 0}
	site := &Site{ID: 3, Kind: SiteBounds, Text: "check p[i]"}
	cases := map[Instr]string{
		&Assign{LV: &VarRef{V: v}, X: &Const{V: 5}}:                     "x = 5",
		&Call{Dst: v, Callee: "f", Args: []Expr{&Const{V: 1}, &Null{}}}: "x = f(1, null)",
		&Call{Callee: "g"}:       "g()",
		&SiteInstr{Site: site}:   "site#3 bounds {check p[i]}",
		&GuardedSite{Site: site}: "if (--countdown == 0) { site#3 bounds {check p[i]}; countdown = next() }",
		&CountdownDec{N: 4}:      "countdown -= 4",
		&CDImport{}:              "countdown = global_countdown",
		&CDExport{}:              "global_countdown = countdown",
	}
	for in, want := range cases {
		if got := FormatInstr(in); got != want {
			t.Errorf("FormatInstr: got %q, want %q", got, want)
		}
	}
}

func TestFormatTermAllKinds(t *testing.T) {
	b0 := &Block{ID: 0}
	b1 := &Block{ID: 1}
	cases := map[Term]string{
		&Goto{To: b0}:                               "goto b0",
		&Goto{To: b1, BackEdge: true}:               "goto b1 (back edge)",
		&If{Cond: &Const{V: 1}, Then: b0, Else: b1}: "if 1 goto b0 else b1",
		&Ret{}:                "return",
		&Ret{X: &Const{V: 2}}: "return 2",
		&Threshold{Weight: 5, Fast: b0, Slow: b1}: "if countdown > 5 goto b0 (fast) else b1 (slow)",
		nil: "<no terminator>",
	}
	for term, want := range cases {
		if got := FormatTerm(term); got != want {
			t.Errorf("FormatTerm: got %q, want %q", got, want)
		}
	}
}

func TestFormatExprAllKinds(t *testing.T) {
	v := &Var{Name: "y"}
	cases := map[Expr]string{
		&Const{V: -3}:                  "-3",
		&StrConst{S: "hi"}:             `"hi"`,
		&Null{}:                        "null",
		&VarUse{V: v}:                  "y",
		&Un{Op: UnNot, X: &VarUse{V: v}}:                   "!y",
		&Bin{Op: BinAdd, X: &Const{V: 1}, Y: &Const{V: 2}}: "(1 + 2)",
		&Load{Ptr: &VarUse{V: v}, Idx: &Const{V: 0}}:    "y[0]",
		&NewObj{StructName: "node"}:                     "new node",
	}
	for e, want := range cases {
		if got := FormatExpr(e); got != want {
			t.Errorf("FormatExpr: got %q, want %q", got, want)
		}
	}
	if got := FormatLValue(&CellRef{Ptr: &VarUse{V: v}, Idx: &Const{V: 1}}); got != "y[1]" {
		t.Errorf("FormatLValue: %q", got)
	}
}

func TestSiteKindStrings(t *testing.T) {
	want := map[SiteKind]string{
		SiteReturns:    "returns",
		SiteScalarPair: "scalar-pairs",
		SiteNullCheck:  "null-check",
		SiteBranch:     "branches",
		SiteBounds:     "bounds",
		SiteAssert:     "asserts",
		SiteKind(99):   "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}

func TestVarString(t *testing.T) {
	if (&Var{Name: "abc"}).String() != "abc" {
		t.Error("Var.String")
	}
}

func TestDumpSampledFunctionMentionsEverything(t *testing.T) {
	f, err := minic.Parse("t.mc", `
int g() { int* p = alloc(2); p[0] = 1; return p[0]; }
int main() { int a = g(); int b = g(); return a + b; }
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(f, nil, &testInstrumenter{})
	if err != nil {
		t.Fatal(err)
	}
	// Manually mark main as using a local countdown and dump.
	p.Funcs["main"].LocalCountdown = true
	dump := DumpFunc(p.Funcs["main"])
	if !strings.Contains(dump, "[local countdown]") {
		t.Errorf("dump: %s", dump)
	}
}

// ----------------------------------------------------------------------------
// Lowering edge cases

func TestLowerErrors(t *testing.T) {
	srcs := []string{
		// void call used as a value.
		"void v() { } int main() { int x = v(); return x; }",
	}
	for _, src := range srcs {
		f, err := minic.Parse("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Build(f, nil, nil); err == nil {
			t.Errorf("%q: want lowering error", src)
		}
	}
}

func TestLowerStringAndCharHandling(t *testing.T) {
	p := build(t, `
string greeting = "hey";
int main() {
	string s = greeting;
	if (streq(s, "hey") && strget(s, 0) == 'h') { return 0; }
	return 1;
}
`)
	if p.Funcs["main"] == nil {
		t.Fatal("main missing")
	}
}

func TestLowerDerefStoreAndLoad(t *testing.T) {
	p := build(t, `
int main() {
	int* p = alloc(1);
	*p = 9;
	int v = *p;
	*p += 2;
	return v + *p;
}
`)
	res := p.Funcs["main"]
	if res == nil {
		t.Fatal("main missing")
	}
}

func TestLowerNestedCallsInConditions(t *testing.T) {
	p := build(t, `
int f(int x) { return x * 2; }
int main() {
	if (f(2) > 3 && f(1) < f(3)) { return 1; }
	while (f(0) > 0) { return 2; }
	for (int i = f(1); i < f(4); i += f(1)) { }
	return 0;
}
`)
	// All calls must be flattened to Call instrs; terms stay pure.
	for _, b := range p.Funcs["main"].Blocks {
		if ifT, ok := b.Term.(*If); ok && hasAndOr(ifT.Cond) {
			t.Error("short-circuit leaked")
		}
	}
}

func TestLowerGlobalCompoundAssign(t *testing.T) {
	p := build(t, `
int g = 10;
void bump() { g += 5; g++; }
int main() { bump(); return g; }
`)
	if p.Funcs["bump"] == nil {
		t.Fatal("bump missing")
	}
}

func TestIsLiteralForms(t *testing.T) {
	cases := []struct {
		src string
		ok  bool
	}{
		{"int g = 1;", true},
		{"int g = -1;", true},
		{"string g = \"s\";", true},
		{"int* g = null;", true},
		{"int g = 1 + 2;", false},
	}
	for _, tc := range cases {
		f, err := minic.Parse("t.mc", tc.src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Build(f, nil, nil)
		if (err == nil) != tc.ok {
			t.Errorf("%q: err=%v, want ok=%v", tc.src, err, tc.ok)
		}
	}
}
