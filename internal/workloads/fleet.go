package workloads

import (
	"cbi/internal/cfg"
	"cbi/internal/interp"
	"cbi/internal/report"
)

// ReportOf converts a VM result into a §2.5 feedback report.
func ReportOf(program string, id uint64, res interp.Result) *report.Report {
	rep := &report.Report{
		RunID:    id,
		Program:  program,
		Crashed:  res.Outcome == interp.OutcomeCrash,
		ExitCode: res.ExitCode,
		Counters: res.Counters,
		Trace:    res.Trace,
	}
	if res.Trap != nil {
		rep.TrapKind = res.Trap.Kind.String()
	}
	return rep
}

// FleetConfig parameterizes a fuzzing fleet: many independent runs of one
// instrumented program, each with its own random input and its own
// countdown bank, mimicking the paper's thousands of scripted trials.
type FleetConfig struct {
	Runs     int
	Density  float64
	SeedBase int64
	Fuel     uint64
	// TraceCapacity enables the bounded ordered trace (see
	// interp.Config.TraceCapacity).
	TraceCapacity int
	// Submit, when set, receives every report as it is produced (e.g. a
	// collect.Server's Submit); reports are also returned in the DB.
	Submit func(*report.Report) error
}

// CcryptFleet runs the ccrypt program across many randomized worlds.
// prog must have been built against CcryptBuiltins().
func CcryptFleet(prog *cfg.Program, fc FleetConfig) (*report.DB, error) {
	db := report.NewDB("ccrypt", prog.NumCounters)
	for i := 0; i < fc.Runs; i++ {
		seed := fc.SeedBase + int64(i)
		world := NewCcryptWorld(seed*2654435761 + 1)
		res := interp.Run(prog, interp.Config{
			Seed:          seed,
			Density:       fc.Density,
			CountdownSeed: seed*40503 + 7,
			Fuel:          fc.Fuel,
			TraceCapacity: fc.TraceCapacity,
			Intrinsics:    world.Intrinsics(),
		})
		rep := ReportOf("ccrypt", uint64(i), res)
		if err := db.Add(rep); err != nil {
			return nil, err
		}
		if fc.Submit != nil {
			if err := fc.Submit(rep); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// BCFleet runs the bc program across many random self-generated inputs.
// prog must have been built against minic.DefaultBuiltins() (the program
// generates its own input with rand()).
func BCFleet(prog *cfg.Program, fc FleetConfig) (*report.DB, error) {
	db := report.NewDB("bc", prog.NumCounters)
	for i := 0; i < fc.Runs; i++ {
		seed := fc.SeedBase + int64(i)
		res := interp.Run(prog, interp.Config{
			Seed:          seed*6364136223846793005 + 1442695040888963407,
			Density:       fc.Density,
			CountdownSeed: seed*40503 + 11,
			Fuel:          fc.Fuel,
			TraceCapacity: fc.TraceCapacity,
		})
		rep := ReportOf("bc", uint64(i), res)
		if err := db.Add(rep); err != nil {
			return nil, err
		}
		if fc.Submit != nil {
			if err := fc.Submit(rep); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// SiteSpansOf lists each site's counter range, as needed by elimination
// by lack of failing coverage.
func SiteSpansOf(prog *cfg.Program) [][2]int {
	spans := make([][2]int, 0, len(prog.Sites))
	for _, s := range prog.Sites {
		spans = append(spans, [2]int{s.CounterBase, s.NumCounters})
	}
	return spans
}
