package workloads

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/cfg"
	"cbi/internal/interp"
	"cbi/internal/report"
	"cbi/internal/telemetry"
	"cbi/internal/telemetry/trace"
)

// ReportOf converts a VM result into a §2.5 feedback report.
func ReportOf(program string, id uint64, res interp.Result) *report.Report {
	rep := &report.Report{
		RunID:    id,
		Program:  program,
		Crashed:  res.Outcome == interp.OutcomeCrash,
		ExitCode: res.ExitCode,
		Counters: res.Counters,
		Trace:    res.Trace,
	}
	if res.Trap != nil {
		rep.TrapKind = res.Trap.Kind.String()
	}
	return rep
}

// FleetConfig parameterizes a fuzzing fleet: many independent runs of one
// instrumented program, each with its own random input and its own
// countdown bank, mimicking the paper's thousands of scripted trials.
type FleetConfig struct {
	Runs     int
	Density  float64
	SeedBase int64
	Fuel     uint64
	// Engine selects the execution engine (default interp.EngineFused).
	// With the bytecode engines the program is lowered to bytecode once,
	// before the workers launch, and the read-only compiled form is shared
	// by every worker goroutine.
	Engine interp.Engine
	// Workers is the number of runs executed concurrently (default
	// runtime.NumCPU()). Per-run seeds derive deterministically from the
	// run index, and results are merged in run-ID order, so the produced
	// DB is bit-identical to a serial (Workers: 1) fleet.
	Workers int
	// TraceCapacity enables the bounded ordered trace (see
	// interp.Config.TraceCapacity).
	TraceCapacity int
	// Submit, when set, receives every report as it is produced (e.g. a
	// collect.Client's SubmitContext); reports are also returned in the
	// DB. The context carries the run's trace span when Tracer is set,
	// so a trace-aware submitter extends the same trace across the wire.
	// With Workers > 1 Submit is called concurrently and must be safe
	// for concurrent use (collect.Client is, including batched mode).
	Submit func(context.Context, *report.Report) error
	// Tracer, when set, opens one distributed-tracing trace per run: a
	// fleet.run root span whose context flows into Submit.
	Tracer *trace.Collector
}

// fleetMetrics caches the per-workload telemetry handles so the run loop
// touches only atomics.
type fleetMetrics struct {
	runs       *telemetry.Counter
	crashes    *telemetry.Counter
	crashRatio *telemetry.Gauge
	runSeconds *telemetry.Histogram
	runSteps   *telemetry.Histogram
}

func newFleetMetrics(workload string) fleetMetrics {
	label := fmt.Sprintf("{workload=%q}", workload)
	return fleetMetrics{
		runs:       telemetry.C("fleet_runs_total" + label),
		crashes:    telemetry.C("fleet_crashes_total" + label),
		crashRatio: telemetry.G("fleet_crash_ratio" + label),
		runSeconds: telemetry.H("fleet_run_seconds", telemetry.DefBuckets),
		runSteps:   telemetry.H("fleet_run_steps", telemetry.StepBuckets),
	}
}

// runFleet drives the shared fleet loop: one interpreter run per
// iteration, per-run duration/fuel histograms, crash counters, and the
// crash-rate gauge, all under a "fleet.<workload>" span.
//
// Runs execute on a pool of fc.Workers goroutines. Each run's seed
// derives only from its index (confFor(i)), and every worker writes its
// report into a run-ID-indexed slot, so the assembled DB is
// bit-identical to the serial loop regardless of scheduling.
func runFleet(workload string, prog *cfg.Program, fc FleetConfig,
	confFor func(i int) interp.Config) (*report.DB, error) {
	span := telemetry.StartSpan("fleet." + workload)
	defer span.End()
	workers := fc.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > fc.Runs && fc.Runs > 0 {
		workers = fc.Runs
	}
	telemetry.G(fmt.Sprintf("fleet_workers{workload=%q}", workload)).Set(float64(workers))
	telemetry.G(fmt.Sprintf("vm_engine{workload=%q,engine=%q}", workload, fc.Engine)).Set(1)
	m := newFleetMetrics(workload)

	// Compile once, share everywhere: the bytecode form is immutable, so
	// all workers execute the same Compiled with per-run state confined
	// to their own VMs.
	var code *interp.Compiled
	if fc.Engine != interp.EngineTree {
		compileSpan := telemetry.StartSpan("fleet.compile")
		code = interp.Compile(prog)
		compileSpan.End()
	}

	var (
		reps    = make([]*report.Report, fc.Runs)
		crashed atomic.Int64
		next    atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		errRun  int
		errVal  error
	)
	// fail records the error from the lowest-indexed failing run, so the
	// reported error is deterministic even under concurrent failures.
	fail := func(i int, err error) {
		errMu.Lock()
		if errVal == nil || i < errRun {
			errRun, errVal = i, err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	// One trace per deployed run: execute + submit nest under it, and
	// the collector's ingest spans continue it (all nil-safe when no
	// Tracer is configured).
	runOne := func(i int) error {
		runSpan := fc.Tracer.StartSpan("fleet.run")
		defer runSpan.End()
		runSpan.SetAttr("workload", workload)
		runSpan.SetAttr("run_id", strconv.Itoa(i))
		execSpan := runSpan.StartChild("fleet.execute")
		conf := confFor(i)
		conf.Engine = fc.Engine
		t0 := time.Now()
		var res interp.Result
		if code != nil {
			res = code.Run(conf)
		} else {
			res = interp.Run(prog, conf)
		}
		m.runSeconds.Observe(time.Since(t0).Seconds())
		execSpan.End()
		m.runSteps.Observe(float64(res.Steps))
		m.runs.Inc()
		if res.Outcome == interp.OutcomeCrash {
			m.crashes.Inc()
			crashed.Add(1)
			runSpan.SetAttr("crashed", "true")
		}
		rep := ReportOf(workload, uint64(i), res)
		reps[i] = rep
		if fc.Submit != nil {
			return fc.Submit(trace.NewContext(context.Background(), runSpan), rep)
		}
		return nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= fc.Runs {
					return
				}
				if err := runOne(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errVal != nil {
		return nil, errVal
	}

	// Assemble in run-ID order: Add validates each report's shape exactly
	// as the serial loop did, and ordering is independent of scheduling.
	db := report.NewDB(workload, prog.NumCounters)
	for _, rep := range reps {
		if err := db.Add(rep); err != nil {
			return nil, err
		}
	}
	if fc.Runs > 0 {
		m.crashRatio.Set(float64(crashed.Load()) / float64(fc.Runs))
	}
	return db, nil
}

// CcryptFleet runs the ccrypt program across many randomized worlds.
// prog must have been built against CcryptBuiltins().
func CcryptFleet(prog *cfg.Program, fc FleetConfig) (*report.DB, error) {
	return runFleet("ccrypt", prog, fc, func(i int) interp.Config {
		seed := fc.SeedBase + int64(i)
		world := NewCcryptWorld(seed*2654435761 + 1)
		return interp.Config{
			Seed:          seed,
			Density:       fc.Density,
			CountdownSeed: seed*40503 + 7,
			Fuel:          fc.Fuel,
			TraceCapacity: fc.TraceCapacity,
			Intrinsics:    world.Intrinsics(),
		}
	})
}

// BCFleet runs the bc program across many random self-generated inputs.
// prog must have been built against minic.DefaultBuiltins() (the program
// generates its own input with rand()).
func BCFleet(prog *cfg.Program, fc FleetConfig) (*report.DB, error) {
	return runFleet("bc", prog, fc, func(i int) interp.Config {
		seed := fc.SeedBase + int64(i)
		return interp.Config{
			Seed:          seed*6364136223846793005 + 1442695040888963407,
			Density:       fc.Density,
			CountdownSeed: seed*40503 + 11,
			Fuel:          fc.Fuel,
			TraceCapacity: fc.TraceCapacity,
		}
	})
}

// SiteSpansOf lists each site's counter range, as needed by elimination
// by lack of failing coverage.
func SiteSpansOf(prog *cfg.Program) [][2]int {
	spans := make([][2]int, 0, len(prog.Sites))
	for _, s := range prog.Sites {
		spans = append(spans, [2]int{s.CounterBase, s.NumCounters})
	}
	return spans
}
