package workloads

// MiniC kernels named after the Olden benchmarks used in §3.1. Each is a
// deterministic program that exercises the pointer-and-loop shapes of its
// namesake: tree building/walking, list traversal, dense numeric loops.
// Every heap access is a CCured-style check site under the bounds scheme,
// which is what Table 1's site counts and Table 2's overheads measure.

func init() {
	register("treeadd", "olden", treeaddSrc)
	register("bisort", "olden", bisortSrc)
	register("em3d", "olden", em3dSrc)
	register("health", "olden", healthSrc)
	register("mst", "olden", mstSrc)
	register("perimeter", "olden", perimeterSrc)
	register("power", "olden", powerSrc)
	register("tsp", "olden", tspSrc)
	register("bh", "olden", bhSrc)
}

const treeaddSrc = `
// treeadd: build a binary tree and sum it repeatedly.
struct tree {
	int val;
	struct tree* left;
	struct tree* right;
};

struct tree* build(int depth) {
	struct tree* t = new tree;
	t->val = 1;
	if (depth <= 1) {
		t->left = null;
		t->right = null;
		return t;
	}
	t->left = build(depth - 1);
	t->right = build(depth - 1);
	return t;
}

int sum(struct tree* t) {
	if (t == null) { return 0; }
	return t->val + sum(t->left) + sum(t->right);
}

int main() {
	struct tree* t = build(10);
	int s = 0;
	for (int i = 0; i < 8; i++) {
		s = sum(t);
	}
	if (s != 1023) { return 1; }
	return 0;
}
`

const bisortSrc = `
// bisort: bitonic sort over an integer array.
void swap(int* a, int i, int j) {
	int t = a[i];
	a[i] = a[j];
	a[j] = t;
}

void bimerge(int* a, int lo, int n, int dir) {
	if (n <= 1) { return; }
	int m = n / 2;
	for (int i = lo; i < lo + m; i++) {
		int x = a[i];
		int y = a[i + m];
		if ((dir == 1 && x > y) || (dir == 0 && x < y)) {
			swap(a, i, i + m);
		}
	}
	bimerge(a, lo, m, dir);
	bimerge(a, lo + m, m, dir);
}

void bisort(int* a, int lo, int n, int dir) {
	if (n <= 1) { return; }
	int m = n / 2;
	bisort(a, lo, m, 1);
	bisort(a, lo + m, m, 0);
	bimerge(a, lo, n, dir);
}

int main() {
	int n = 256;
	int* a = alloc(n);
	for (int i = 0; i < n; i++) {
		a[i] = (i * 37 + 11) % 101;
	}
	bisort(a, 0, n, 1);
	for (int i = 1; i < n; i++) {
		if (a[i - 1] > a[i]) { return 1; }
	}
	return 0;
}
`

const em3dSrc = `
// em3d: relaxation over a bipartite graph of E and H nodes.
struct enode {
	int value;
	struct enode* dep1;
	struct enode* dep2;
	struct enode* next;
};

struct enode* makeList(int n, int seed) {
	struct enode* head = null;
	for (int i = 0; i < n; i++) {
		struct enode* e = new enode;
		e->value = (seed * 17 + i * 31) % 1000;
		e->dep1 = null;
		e->dep2 = null;
		e->next = head;
		head = e;
	}
	return head;
}

struct enode* nth(struct enode* l, int k) {
	while (k > 0 && l != null) {
		l = l->next;
		k--;
	}
	return l;
}

void wire(struct enode* from, struct enode* to, int n) {
	int i = 0;
	struct enode* e = from;
	while (e != null) {
		e->dep1 = nth(to, (i * 7 + 3) % n);
		e->dep2 = nth(to, (i * 13 + 5) % n);
		e = e->next;
		i++;
	}
}

void relax(struct enode* l) {
	struct enode* e = l;
	while (e != null) {
		e->value = e->value - (e->dep1->value + e->dep2->value) / 2;
		e = e->next;
	}
}

int checksum(struct enode* l) {
	int s = 0;
	while (l != null) {
		s += l->value;
		l = l->next;
	}
	return s;
}

int main() {
	int n = 48;
	struct enode* enodes = makeList(n, 3);
	struct enode* hnodes = makeList(n, 7);
	wire(enodes, hnodes, n);
	wire(hnodes, enodes, n);
	for (int iter = 0; iter < 12; iter++) {
		relax(enodes);
		relax(hnodes);
	}
	int s = checksum(enodes) + checksum(hnodes);
	if (s == 987654321) { return 1; }
	return 0;
}
`

const healthSrc = `
// health: hospital queue simulation with linked patient lists.
struct patient {
	int arrived;
	int treated;
	struct patient* next;
};

int lcgState = 12345;

int lcg(int n) {
	lcgState = (lcgState * 1103515245 + 12345) % 2147483647;
	if (lcgState < 0) { lcgState = -lcgState; }
	return lcgState % n;
}

struct patient* push(struct patient* q, struct patient* p) {
	p->next = q;
	return p;
}

struct patient* treatOne(struct patient* q, int now) {
	// Pop the oldest patient (tail).
	if (q == null) { return null; }
	if (q->next == null) {
		q->treated = now;
		return null;
	}
	struct patient* cur = q;
	while (cur->next->next != null) {
		cur = cur->next;
	}
	cur->next->treated = now;
	cur->next = null;
	return q;
}

int main() {
	struct patient* waiting = null;
	int total = 0;
	for (int t = 0; t < 400; t++) {
		if (lcg(100) < 35) {
			struct patient* p = new patient;
			p->arrived = t;
			p->treated = -1;
			p->next = null;
			waiting = push(waiting, p);
			total++;
		}
		if (lcg(100) < 40) {
			waiting = treatOne(waiting, t);
		}
	}
	int backlog = 0;
	struct patient* cur = waiting;
	while (cur != null) {
		backlog++;
		cur = cur->next;
	}
	if (backlog > total) { return 1; }
	return 0;
}
`

const mstSrc = `
// mst: Prim's minimum spanning tree over a dense weight matrix.
int weight(int i, int j) {
	int w = (i * 31 + j * 17) % 97 + 1;
	return w;
}

void initState(int* dist, int* used, int n) {
	for (int i = 0; i < n; i++) {
		dist[i] = 1000000;
		used[i] = 0;
	}
	dist[0] = 0;
}

int pickNearest(int* dist, int* used, int n) {
	int best = -1;
	for (int i = 0; i < n; i++) {
		if (used[i] == 0 && (best == -1 || dist[i] < dist[best])) {
			best = i;
		}
	}
	return best;
}

void relaxFrom(int* dist, int* used, int n, int src) {
	for (int j = 0; j < n; j++) {
		if (used[j] == 0) {
			int w = weight(src, j);
			if (w < dist[j]) { dist[j] = w; }
		}
	}
}

int main() {
	int n = 48;
	int* dist = alloc(n);
	int* used = alloc(n);
	initState(dist, used, n);
	int total = 0;
	for (int step = 0; step < n; step++) {
		int best = pickNearest(dist, used, n);
		used[best] = 1;
		total += dist[best];
		relaxFrom(dist, used, n, best);
	}
	if (total <= 0) { return 1; }
	return 0;
}
`

const perimeterSrc = `
// perimeter: quadtree construction and black-region perimeter estimate.
struct quad {
	int color; // 0 white, 1 black, 2 grey
	struct quad* nw;
	struct quad* ne;
	struct quad* sw;
	struct quad* se;
};

struct quad* buildTree(int depth, int x, int y, int size) {
	struct quad* q = new quad;
	if (depth == 0) {
		int v = (x * x + y * y) % 7;
		if (v < 3) { q->color = 1; } else { q->color = 0; }
		q->nw = null;
		q->ne = null;
		q->sw = null;
		q->se = null;
		return q;
	}
	int h = size / 2;
	q->nw = buildTree(depth - 1, x, y, h);
	q->ne = buildTree(depth - 1, x + h, y, h);
	q->sw = buildTree(depth - 1, x, y + h, h);
	q->se = buildTree(depth - 1, x + h, y + h, h);
	if (q->nw->color == q->ne->color && q->sw->color == q->se->color
		&& q->nw->color == q->sw->color && q->nw->color != 2) {
		q->color = q->nw->color;
	} else {
		q->color = 2;
	}
	return q;
}

int countEdges(struct quad* q, int size) {
	if (q == null) { return 0; }
	if (q->color == 1) { return 4 * size; }
	if (q->color == 0) { return 0; }
	int h = size / 2;
	return countEdges(q->nw, h) + countEdges(q->ne, h)
		+ countEdges(q->sw, h) + countEdges(q->se, h);
}

int main() {
	int s = 0;
	for (int rep = 0; rep < 3; rep++) {
		struct quad* root = buildTree(6, rep, rep, 64);
		s += countEdges(root, 64);
	}
	if (s <= 0) { return 1; }
	return 0;
}
`

const powerSrc = `
// power: hierarchical power network load propagation.
struct node {
	int load;
	struct node* child;
	struct node* sibling;
};

struct node* buildLevel(int fanout, int depth, int seed) {
	if (depth == 0) { return null; }
	struct node* first = null;
	for (int i = 0; i < fanout; i++) {
		struct node* n = new node;
		n->load = (seed * 13 + i * 7) % 20 + 1;
		n->child = buildLevel(fanout, depth - 1, seed + i);
		n->sibling = first;
		first = n;
	}
	return first;
}

int propagate(struct node* n) {
	int total = 0;
	while (n != null) {
		total += n->load + propagate(n->child);
		n = n->sibling;
	}
	return total;
}

void adjust(struct node* n, int delta) {
	while (n != null) {
		n->load += delta;
		if (n->load < 1) { n->load = 1; }
		adjust(n->child, delta);
		n = n->sibling;
	}
}

int main() {
	struct node* root = buildLevel(4, 5, 3);
	int prev = 0;
	for (int iter = 0; iter < 10; iter++) {
		int total = propagate(root);
		if (total > prev) { adjust(root, -1); } else { adjust(root, 1); }
		prev = total;
	}
	if (prev <= 0) { return 1; }
	return 0;
}
`

const tspSrc = `
// tsp: nearest-neighbour tour over a deterministic point set.
int distSq(int* xs, int* ys, int i, int j) {
	int dx = xs[i] - xs[j];
	int dy = ys[i] - ys[j];
	return dx * dx + dy * dy;
}

void makePoints(int* xs, int* ys, int* visited, int n) {
	for (int i = 0; i < n; i++) {
		xs[i] = (i * 73 + 19) % 500;
		ys[i] = (i * 151 + 7) % 500;
		visited[i] = 0;
	}
}

int nearestUnvisited(int* xs, int* ys, int* visited, int n, int cur) {
	int best = -1;
	int bestDist = 0;
	for (int j = 0; j < n; j++) {
		if (visited[j] == 0) {
			int d = distSq(xs, ys, cur, j);
			if (best == -1 || d < bestDist) {
				best = j;
				bestDist = d;
			}
		}
	}
	return best;
}

int tour(int* xs, int* ys, int* visited, int n) {
	int cur = 0;
	visited[0] = 1;
	int total = 0;
	for (int step = 1; step < n; step++) {
		int best = nearestUnvisited(xs, ys, visited, n, cur);
		visited[best] = 1;
		total += distSq(xs, ys, cur, best);
		cur = best;
	}
	return total;
}

int main() {
	int n = 96;
	int* xs = alloc(n);
	int* ys = alloc(n);
	int* visited = alloc(n);
	makePoints(xs, ys, visited, n);
	int total = tour(xs, ys, visited, n);
	if (total <= 0) { return 1; }
	return 0;
}
`

const bhSrc = `
// bh: pairwise gravitational force accumulation (Barnes-Hut flavour).
void makeBodies(int* x, int* y, int* m, int* vx, int* vy, int n) {
	for (int i = 0; i < n; i++) {
		x[i] = (i * 67 + 5) % 1000;
		y[i] = (i * 41 + 13) % 1000;
		m[i] = i % 9 + 1;
		vx[i] = 0;
		vy[i] = 0;
	}
}

int forceOn(int* x, int* y, int* m, int n, int i, int axis) {
	int f = 0;
	for (int j = 0; j < n; j++) {
		if (j != i) {
			int dx = x[j] - x[i];
			int dy = y[j] - y[i];
			int d2 = dx * dx + dy * dy + 1;
			int g = m[i] * m[j] * 1000 / d2;
			if (axis == 0) { f += g * dx / 100; } else { f += g * dy / 100; }
		}
	}
	return f;
}

void advance(int* x, int* y, int* vx, int* vy, int n) {
	for (int i = 0; i < n; i++) {
		x[i] += vx[i] / 1000;
		y[i] += vy[i] / 1000;
	}
}

int energy(int* x, int* y, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += x[i] + y[i];
	}
	return s;
}

int main() {
	int n = 56;
	int* x = alloc(n);
	int* y = alloc(n);
	int* m = alloc(n);
	int* vx = alloc(n);
	int* vy = alloc(n);
	makeBodies(x, y, m, vx, vy, n);
	for (int step = 0; step < 4; step++) {
		for (int i = 0; i < n; i++) {
			vx[i] += forceOn(x, y, m, n, i, 0);
			vy[i] += forceOn(x, y, m, n, i, 1);
		}
		advance(x, y, vx, vy, n);
	}
	int s = energy(x, y, n);
	if (s == -1) { return 1; }
	return 0;
}
`
