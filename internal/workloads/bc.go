package workloads

import "strings"

// BCSource is the §3.3 case study: a calculator whose storage pools grow
// on demand. more_arrays() was created by copying more_variables() and
// renaming the globals — and exactly as in GNU bc 1.06, the second loop's
// bound was missed in the renaming: it zeroes up to v_count in a buffer
// sized by a_count. When the variable pool has grown well past the array
// pool, the overrun escapes the allocator's slack and the run dies; when
// it hasn't, the program "gets lucky" and terminates successfully
// (§3.3.3). The bug is therefore non-deterministic with respect to every
// instrumented predicate.
//
// The program generates its own random workload with the seeded rand()
// builtin, standing in for the paper's nine megabytes of random input.
const BCSource = `
// bc: calculator with on-demand storage pools (variables, arrays,
// functions), plus an expression evaluator for arithmetic noise.
int v_count = 6;
int a_count = 6;
int f_count = 6;
int scale = 0;
int i_base = 10;
int o_base = 10;
int use_math = 0;
int opterr = 0;
int next_func = 0;

int** variables;
int** arrays;
int** functions;

void init_storage() {
	variables = alloc(v_count);
	arrays = alloc(a_count);
	functions = alloc(f_count);
	for (int i = 0; i < v_count; i++) { variables[i] = null; }
	for (int i = 0; i < a_count; i++) { arrays[i] = null; }
	for (int i = 0; i < f_count; i++) { functions[i] = null; }
}

void more_variables() {
	int indx;
	int old_count;
	int** old_var;

	old_count = v_count;
	old_var = variables;

	v_count += 6;
	variables = alloc(v_count);

	for (indx = 1; indx < old_count; indx++) {
		variables[indx] = old_var[indx];
	}
	for (; indx < v_count; indx++) {
		variables[indx] = null;
	}
	free(old_var);
}

void more_functions() {
	int indx;
	int old_count;
	int** old_f;

	old_count = f_count;
	old_f = functions;

	f_count += 6;
	functions = alloc(f_count);

	for (indx = 1; indx < old_count; indx++) {
		functions[indx] = old_f[indx];
	}
	for (; indx < f_count; indx++) {
		functions[indx] = null;
	}
	free(old_f);
}

void more_arrays() {
	int indx;
	int old_count;
	int** old_ary;

	old_count = a_count;
	old_ary = arrays;

	a_count += 6;
	arrays = alloc(a_count);

	for (indx = 1; indx < old_count; indx++) {
		arrays[indx] = old_ary[indx];
	}
	// BUG (bc 1.06 storage.c:176): bound should be a_count. The rename
	// from more_variables() missed this loop.
	for (; indx < v_count; indx++) {
		arrays[indx] = null;
	}
	free(old_ary);
}

void define_variable(int n, int value) {
	while (n >= v_count) {
		more_variables();
	}
	int* cell = alloc(1);
	cell[0] = value;
	variables[n] = cell;
}

int lookup_variable(int n) {
	if (n >= v_count) { return 0; }
	int* cell = variables[n];
	if (cell == null) { return 0; }
	return cell[0];
}

void define_array(int n, int size) {
	while (n >= a_count) {
		more_arrays();
	}
	int* store = alloc(size + 1);
	store[0] = size;
	arrays[n] = store;
}

void array_set(int n, int i, int value) {
	if (n >= a_count) { return; }
	int* store = arrays[n];
	if (store == null) { return; }
	int size = store[0];
	if (i < 0 || i >= size) { return; }
	store[i + 1] = value;
}

void define_function(int n) {
	while (n >= f_count) {
		more_functions();
	}
	int* body = alloc(2);
	body[0] = n;
	body[1] = next_func;
	functions[n] = body;
	next_func++;
}

int apply_scale(int value) {
	int s = scale;
	int result = value;
	while (s > 0) {
		result = result * 10;
		s--;
	}
	return result;
}

int eval_term(int seed) {
	int v = seed % 97;
	int w = lookup_variable(seed % v_count);
	if (use_math > 0) {
		v = v + w * 2;
	} else {
		v = v + w;
	}
	return v;
}

int eval_expr(int seed) {
	int acc = 0;
	int n = seed % 7 + 1;
	for (int i = 0; i < n; i++) {
		int t = eval_term(seed + i * 13);
		int op = (seed + i) % 3;
		if (op == 0) { acc = acc + t; }
		if (op == 1) { acc = acc - t; }
		if (op == 2) { acc = acc + apply_scale(t) % 1009; }
	}
	return acc;
}

int main() {
	init_storage();
	int result = 0;
	int nops = 30 + rand(120);
	for (int i = 0; i < nops; i++) {
		int op = rand(100);
		if (op < 25) {
			int n = rand(v_count + 10);
			define_variable(n, rand(1000));
		} else if (op < 50) {
			int n = rand(10);
			define_array(n, rand(8) + 1);
			array_set(n, rand(8), rand(100));
		} else if (op < 56) {
			define_function(rand(10));
		} else if (op < 62) {
			scale = rand(6);
			i_base = rand(15) + 2;
			o_base = rand(15) + 2;
			use_math = rand(2);
		} else {
			result = result + eval_expr(rand(100000));
		}
	}
	if (result == -123456789) { return 2; }
	return 0;
}
`

// BCBuggyLine returns the source line of the buggy zeroing loop in
// more_arrays — the `for (; indx < v_count; ...)` after the BUG comment.
// (more_variables contains the same loop legitimately, so the comment
// anchors the search.) Analyses use it to check whether top-ranked
// predicates point at the bug, the paper's storage.c:176.
func BCBuggyLine() int {
	bug := strings.Index(BCSource, "// BUG")
	if bug < 0 {
		return -1
	}
	loop := strings.Index(BCSource[bug:], "for (; indx < v_count; indx++)")
	if loop < 0 {
		return -1
	}
	return 1 + strings.Count(BCSource[:bug+loop], "\n")
}
